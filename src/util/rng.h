// Deterministic random number generation.
//
// All randomized components (synthetic benchmark generation, placement
// perturbation, test fuzzing) draw from an explicitly seeded Rng so that
// every experiment in the paper reproduction is bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace pdw::util {

/// SplitMix64-seeded xoshiro256** generator. Deterministic across platforms
/// (unlike std::uniform_int_distribution, whose mapping is
/// implementation-defined) — important because benchmark assays are generated
/// from fixed seeds and their shape must not vary between standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int intIn(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Pick a uniformly random element index for a container of given size.
  /// Requires size > 0.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace pdw::util

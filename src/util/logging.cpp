#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/trace.h"

namespace pdw::util {

namespace {

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel initialLogLevel() {
  const char* env = std::getenv("PDW_LOG_LEVEL");
  return env != nullptr ? parseLogLevel(env) : LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initialLogLevel()};
std::mutex g_emit_mutex;
LogSink g_sink;  // guarded by g_emit_mutex; empty -> stderr

}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel reloadLogLevelFromEnv() {
  const LogLevel level = initialLogLevel();
  setLogLevel(level);
  return level;
}

LogLevel parseLogLevel(std::string_view name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

void setLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace detail {
void emit(LogLevel level, std::string_view tag, const std::string& message) {
  // Format the whole line first, then hand it over in ONE write, so lines
  // from concurrent threads can interleave but never shear mid-line.
  std::string line;
  line.reserve(tag.size() + message.size() + 24);
  line += '[';
  line += levelName(level);
  line += "] (t";
  line += std::to_string(obs::currentThreadId());
  line += ") ";
  line += tag;
  line += ": ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}
}  // namespace detail

}  // namespace pdw::util

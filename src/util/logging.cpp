#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pdw::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parseLogLevel(std::string_view name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {
void emit(LogLevel level, std::string_view tag, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s: %s\n", levelName(level),
               static_cast<int>(tag.size()), tag.data(), message.c_str());
}
}  // namespace detail

}  // namespace pdw::util

// Small non-cryptographic 64-bit hashing helpers (splitmix64 mixing),
// shared by everything that fingerprints problem state: the route cache's
// chip/options keys and the service layer's (arch, schedule) request
// fingerprints. Header-only so hot key-building loops inline fully.
//
// These hashes identify cache entries; callers that cannot tolerate a
// collision must keep the full key alongside (as RouteKey does).
#pragma once

#include <cstdint>
#include <cstring>

namespace pdw::util::hash {

/// splitmix64: cheap, well-distributed 64-bit mixer.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combine (seed first, then value).
inline std::uint64_t combine(std::uint64_t seed, std::uint64_t value) {
  return mix(seed ^ mix(value));
}

/// Fold a double's bit pattern in (0.0 and -0.0 hash differently; callers
/// fingerprinting solver knobs want exact-representation identity).
inline std::uint64_t combineDouble(std::uint64_t seed, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return combine(seed, bits);
}

/// Fold a byte string in, order-dependently.
inline std::uint64_t combineBytes(std::uint64_t seed, const char* data,
                                  std::size_t size) {
  for (std::size_t i = 0; i < size; ++i)
    seed = combine(seed, static_cast<unsigned char>(data[i]));
  return seed;
}

}  // namespace pdw::util::hash

// ASCII table rendering for benchmark harness output.
//
// The benches print paper-style comparison tables (Table II, Fig. 4/5 series)
// to stdout; this writer keeps columns aligned and also exports CSV so the
// series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pdw::util {

/// Column-aligned text table with an optional title, rendered with a
/// box-drawing-free ASCII style that is diffable in golden tests.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; pads/truncates to the header width.
  void addRow(std::vector<std::string> row);

  /// Appends a horizontal separator before the next row.
  void addSeparator();

  void setTitle(std::string title) { title_ = std::move(title); }

  std::size_t rowCount() const { return rows_.size(); }

  /// Render aligned ASCII to `out`.
  void render(std::ostream& out) const;

  /// Render as CSV (title omitted, separators omitted).
  void renderCsv(std::ostream& out) const;

  std::string toString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace pdw::util

// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdw::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Format a double with `decimals` fraction digits ("12.34").
std::string fixed(double value, int decimals);

/// Format a percentage improvement "(base - value) / base * 100" with two
/// decimals, as the paper's I_m columns do. Returns "0.00" when base == 0.
std::string improvementPercent(double base, double value);

}  // namespace pdw::util

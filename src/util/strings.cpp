#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace pdw::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      return out;
    }
    out.emplace_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto isSpace = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && isSpace(text.front())) text.remove_prefix(1);
  while (!text.empty() && isSpace(text.back())) text.remove_suffix(1);
  return text;
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string fixed(double value, int decimals) {
  return format("%.*f", decimals, value);
}

std::string improvementPercent(double base, double value) {
  if (base == 0.0) return "0.00";
  return fixed((base - value) / base * 100.0, 2);
}

}  // namespace pdw::util

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <string>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdw::util {

namespace {

// Handles resolved once; every update after that is one relaxed atomic.
obs::Counter& tasksExecuted() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kPoolTasksExecuted);
  return c;
}

obs::Counter& tasksStolen() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kPoolTasksStolen);
  return c;
}

obs::Gauge& queueDepth() {
  static obs::Gauge& g = obs::Registry::instance().gauge(obs::names::kPoolQueueDepth);
  return g;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads > 1 ? num_threads - 1 : 0;
  queues_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back(
        [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::hardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::submit(Task task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    WorkerQueue& q = *queues_[next_queue_];
    next_queue_ = (next_queue_ + 1) % queues_.size();
    std::lock_guard<std::mutex> qlock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  queueDepth().set(static_cast<double>(
      pending_.fetch_add(1, std::memory_order_relaxed) + 1));
  wake_.notify_all();
}

bool ThreadPool::tryPop(std::size_t self, Task& task) {
  // Own queue: newest first (LIFO).
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal: oldest task (FIFO) from the next non-empty victim.
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      tasksStolen().increment();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  obs::setThreadName("pdw-worker-" + std::to_string(self + 1));
  for (;;) {
    Task task;
    if (tryPop(self, task)) {
      queueDepth().set(static_cast<double>(
          pending_.fetch_sub(1, std::memory_order_relaxed) - 1));
      {
        PDW_TRACE_SPAN("pool", "task");
        task();
      }
      tasksExecuted().increment();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stopping_) return;
    wake_.wait_for(lock, std::chrono::milliseconds(50));
    if (stopping_) return;
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    PDW_TRACE_SPAN("pool", "parallel_for");
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  PDW_TRACE_SPAN("pool", "parallel_for");

  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::size_t n;
    std::function<void(std::size_t)> fn;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;  // first exception, guarded by mutex
  };
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = fn;

  const auto drain = [](const std::shared_ptr<Batch>& b) {
    for (;;) {
      const std::size_t i = b->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b->n) return;
      try {
        b->fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(b->mutex);
        if (!b->error) b->error = std::current_exception();
      }
      if (b->completed.fetch_add(1, std::memory_order_acq_rel) + 1 == b->n) {
        std::lock_guard<std::mutex> lock(b->mutex);
        b->done.notify_all();
      }
    }
  };

  // One helper per worker (indices self-schedule, so surplus helpers simply
  // exit), plus the calling thread.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) submit([batch, drain] {
    drain(batch);
  });
  drain(batch);

  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&] {
    return batch->completed.load(std::memory_order_acquire) == batch->n;
  });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace pdw::util

// Minimal leveled logging facility.
//
// The library is a batch optimization tool; logging is used for solver
// progress and diagnostic traces, never for results (results flow through
// return values). The default level is Warn so tests and benches stay quiet.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace pdw::util {

enum class LogLevel {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5,
};

/// Global log level. Messages below this level are discarded. The initial
/// level is read from the PDW_LOG_LEVEL environment variable at startup
/// (Warn when unset or unknown).
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Re-read PDW_LOG_LEVEL and apply it; returns the level that took effect.
LogLevel reloadLogLevelFromEnv();

/// Parse a level name ("trace", "debug", "info", "warn", "error", "off").
/// Unknown names return Warn.
LogLevel parseLogLevel(std::string_view name);

/// Receives one fully-formatted line (trailing '\n' included) per log
/// statement, called under the emit lock. Empty sink -> stderr. Intended
/// for tests; keep the callback cheap.
using LogSink = std::function<void(std::string_view)>;
void setLogSink(LogSink sink);

namespace detail {
void emit(LogLevel level, std::string_view tag, const std::string& message);
}

/// Stream-style log statement builder:
///   PDW_LOG(Info, "ilp") << "nodes explored: " << n;
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view tag)
      : level_(level), tag_(tag), enabled_(level >= logLevel()) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  ~LogStatement() {
    if (enabled_) detail::emit(level_, tag_, stream_.str());
  }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace pdw::util

#define PDW_LOG(level, tag) \
  ::pdw::util::LogStatement(::pdw::util::LogLevel::level, (tag))

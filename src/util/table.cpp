#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace pdw::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{std::move(row), pending_separator_});
  pending_separator_ = false;
}

void Table::addSeparator() { pending_separator_ = true; }

void Table::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const Row& row : rows_)
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());

  const auto renderLine = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  const auto renderRule = [&] {
    out << "+";
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  renderRule();
  renderLine(header_);
  renderRule();
  for (const Row& row : rows_) {
    if (row.separator_before) renderRule();
    renderLine(row.cells);
  }
  renderRule();
}

void Table::renderCsv(std::ostream& out) const {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  const auto renderLine = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << escape(cells[c]);
    }
    out << '\n';
  };
  renderLine(header_);
  for (const Row& row : rows_) renderLine(row.cells);
}

std::string Table::toString() const {
  std::ostringstream out;
  render(out);
  return out.str();
}

}  // namespace pdw::util

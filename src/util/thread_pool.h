// Work-stealing thread pool for the parallel PDW runtime.
//
// Each worker owns a deque: it pops its own work from the back (LIFO, warm
// caches) and steals from other workers' fronts (FIFO, oldest task) when its
// deque runs dry. `parallelFor` is the main entry point: it fans a loop body
// out over the workers *and* the calling thread, self-scheduling indices
// through an atomic cursor so uneven iterations (ILP solves of very
// different sizes) balance automatically.
//
// Determinism contract: the pool never decides *what* is computed, only
// *where*. Loop bodies write to index-owned slots, so results are identical
// for any worker count — a pool of size 1 (or 0 workers) executes inline and
// reproduces the sequential behavior bit-for-bit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdw::util {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// `num_threads` <= 1 creates no workers: every call runs inline on the
  /// caller. `num_threads` = n creates n - 1 workers (the caller is the
  /// n-th lane of every parallelFor).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread), >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueue a task for asynchronous execution. Tasks are distributed
  /// round-robin; idle workers steal. With no workers the task runs inline.
  void submit(Task task);

  /// Run fn(0) .. fn(n-1), blocking until all complete. The caller
  /// participates. The first exception thrown by any iteration is rethrown
  /// on the caller after the batch drains. Do not nest parallelFor inside a
  /// loop body (workers would block on the inner batch).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardwareConcurrency();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void workerLoop(std::size_t self);
  bool tryPop(std::size_t self, Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::size_t next_queue_ = 0;  // round-robin submit cursor (under wake_mutex_)
  bool stopping_ = false;
  std::atomic<std::int64_t> pending_{0};  // queued tasks (pool.queue_depth)
};

}  // namespace pdw::util

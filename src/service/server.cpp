#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "service/daemon.h"
#include "service/protocol.h"
#include "util/logging.h"

namespace pdw::service {

std::size_t serveStdio(Daemon& daemon, std::istream& in, std::ostream& out) {
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    out << daemon.handleLine(line) << "\n" << std::flush;
    if (daemon.shutdownRequested()) break;
  }
  return lines;
}

SocketServer::SocketServer(Daemon& daemon, std::string path)
    : daemon_(daemon), path_(std::move(path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path too long: " + path_);
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  ::unlink(path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen " + path_ + ": " + why);
  }
}

SocketServer::~SocketServer() {
  stop();
  // If run() was never entered there are no connection threads; just close.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!path_.empty()) ::unlink(path_.c_str());
}

void SocketServer::run() {
  PDW_LOG(Info, "pdwd") << "listening on " << path_;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down by stop()
    }
    reapFinished();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, fd, done] {
      serveConnection(fd);
      done->store(true, std::memory_order_release);
    });
    connections_.push_back({std::move(thread), std::move(done)});
  }
  // run() owns the joins: stop() only unblocks accept(), so a connection
  // thread that triggers shutdown never tries to join itself.
  for (Connection& c : connections_)
    if (c.thread.joinable()) c.thread.join();
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  PDW_LOG(Info, "pdwd") << "server loop done";
}

void SocketServer::reapFinished() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();  // finished: the join cannot block
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::stop() {
  // Idempotent and safe from any thread (including connection threads):
  // shutting down the listening socket makes the blocked accept() in run()
  // return, and run() then drains the connection threads itself. The fd is
  // intentionally not closed here — run() may still be blocked on it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void SocketServer::serveConnection(int fd) {
  // Bounded line framing: a line that exceeds the protocol byte cap stops
  // accumulating (the cap+1-byte prefix we keep is enough for parseRequest
  // to refuse it as "oversize"), so a newline-free flood costs O(cap)
  // memory, not O(input).
  std::string buffer;
  bool overflowed = false;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      const char c = chunk[i];
      if (c != '\n') {
        if (buffer.size() <= kMaxRequestBytes)
          buffer.push_back(c);
        else
          overflowed = true;
        continue;
      }
      if (!buffer.empty() || overflowed) {
        const std::string out = daemon_.handleLine(buffer) + "\n";
        std::size_t written = 0;
        while (written < out.size()) {
          // MSG_NOSIGNAL: a peer that hung up before reading its response
          // (normal for clients with timeouts) yields EPIPE here instead of
          // delivering SIGPIPE, whose default disposition would kill the
          // whole daemon.
          const ssize_t w = ::send(fd, out.data() + written,
                                   out.size() - written, MSG_NOSIGNAL);
          if (w <= 0) {
            ::close(fd);
            return;
          }
          written += static_cast<std::size_t>(w);
        }
      }
      buffer.clear();
      overflowed = false;
      if (daemon_.shutdownRequested()) {
        ::close(fd);
        stop();  // unblock the accept loop; run() drains and returns
        return;
      }
    }
  }
  ::close(fd);
}

}  // namespace pdw::service

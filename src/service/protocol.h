// pdwd wire protocol: JSON-lines over a local socket (or stdio).
//
// Requests are one `pdw-req-1` JSON object per line, responses one
// `pdw-resp-1` object per line. The parser is strict about types (a
// numeric field sent as a string is a protocol error, never a silent
// default) and the daemon always answers — malformed, truncated,
// type-confused or oversized input yields a structured error response,
// never a dropped connection or a crash. Unknown object keys are ignored
// for forward compatibility.
//
// Request schema (fields beyond `schema` optional unless noted):
//   {"schema":"pdw-req-1","type":"solve","id":"r1","benchmark":"PCR",
//    "budget_s":4.0,"deadline_ms":2000,"cache":true,"cuts":"on",
//    "engine":"revised","cache_version":2,"sleep_ms":0}
//   type: solve (default) | resolve | metrics | ping | invalidate | shutdown
//   benchmark: Table-II name; required for solve unless sleep_ms > 0
//   budget_s: scheduling-ILP budget (0 = daemon default)
//   deadline_ms: total budget from admission; expired-in-queue requests
//     answer status "deadline", and the remaining deadline caps the solver
//     budget of requests that do run
//   cache: opt out of the shared plan/route caches with false
//   cache_version: client's cache generation; a value above the daemon's
//     current version invalidates the shared caches before solving
//   sleep_ms: load-harness aid — hold a lane for this long instead of
//     solving (admission, queueing and deadlines behave exactly as for a
//     real solve)
//
// Resolve requests (type "resolve") describe an online perturbation of the
// named benchmark's last solved schedule and are served by the daemon's
// resident per-benchmark incremental pipeline (DESIGN.md §15). Fields
// (benchmark required; at least one perturbation required):
//   delay_op:    operation id to delay by delay_s seconds
//   delay_task:  fluid-task id to delay by delay_s seconds
//   delay_s:     required (> 0) with delay_op / delay_task
//   block_cell:  "x:y" cell wash routing must avoid from now on
//   remove_task: waste-bound task id to cancel
// The response carries warm:true when a primed pipeline served the delta
// incrementally, plus a "resolve" object with the reuse bookkeeping
// (frontier_cells, reused_cells, routes_reused, full_fallback).
//
// Response statuses: ok | budget_hit (plan present, solver budget-capped) |
// rejected (admission queue full) | deadline (expired before running) |
// error (malformed request; `error` carries the message, `code` the class).
//
// Lines above kMaxRequestBytes are rejected with code "oversize" — the
// documented byte cap that bounds per-connection buffering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "assay/schedule.h"

namespace pdw::service {

/// Documented request-line byte cap (excluding the newline). Longer lines
/// are answered with a structured "oversize" error and discarded.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

inline constexpr const char* kRequestSchema = "pdw-req-1";
inline constexpr const char* kResponseSchema = "pdw-resp-1";

enum class RequestType { Solve, Resolve, Metrics, Ping, Invalidate, Shutdown };

const char* toString(RequestType type);

struct Request {
  RequestType type = RequestType::Solve;
  std::string id;            ///< client correlation token, echoed verbatim
  std::string benchmark;     ///< Table-II benchmark name (solve)
  double budget_s = 0.0;     ///< scheduling-ILP budget; 0 = daemon default
  double deadline_ms = 0.0;  ///< total deadline from admission; 0 = none
  bool use_cache = true;     ///< plan/route cache participation
  std::string cuts;          ///< "" | "on" | "off" | "gomory" | "cover"
  std::string engine;        ///< "" | LP backend name ("revised", "dense")
  std::uint64_t cache_version = 0;  ///< > daemon version => invalidate first
  double sleep_ms = 0.0;     ///< test/load aid: hold a lane, skip the solve
  // Resolve perturbation fields (type == Resolve only; -1 / "" = unset).
  int delay_op = -1;         ///< operation id delayed by delay_s
  int delay_task = -1;       ///< fluid-task id delayed by delay_s
  double delay_s = 0.0;      ///< seconds; required with delay_op/delay_task
  std::string block_cell;    ///< "x:y" cell to exclude from wash routing
  int remove_task = -1;      ///< waste-bound task id to cancel
};

/// Result of parsing one request line: either a request or an error with a
/// machine-readable code ("oversize" | "parse" | "schema" | "type" |
/// "value").
struct ParsedRequest {
  std::optional<Request> request;
  std::string error;
  std::string error_code;

  bool ok() const { return request.has_value(); }
};

/// Parse and validate one request line. Never throws; enforces
/// kMaxRequestBytes first so arbitrarily long garbage is cheap to refuse.
ParsedRequest parseRequest(std::string_view line);

/// Parse a strict "x:y" cell spec (non-negative decimal integers, nothing
/// else). Used for the resolve `block_cell` field at both the protocol
/// boundary and the daemon.
bool parseCellSpec(const std::string& spec, int* x, int* y);

/// One-line structured error response (`status:"error"`).
std::string errorResponse(const std::string& id, const std::string& code,
                          const std::string& message);

/// Fields of a solve response (shared between fresh and cached results; a
/// cached CachedPlan is exactly this minus the per-request fields).
struct SolveReply {
  std::string status;  ///< "ok" | "budget_hit" | "rejected" | "deadline"
  bool warm = false;   ///< served from the shared plan cache
  int n_wash = 0;
  double l_wash_mm = 0.0;
  double t_assay = 0.0;
  double wash_time_s = 0.0;
  bool proven_optimal = false;
  std::string plan;      ///< canonical plan serialization ("" when absent)
  double wall_ms = 0.0;  ///< admission-to-response wall clock
  double queue_ms = 0.0; ///< time spent waiting for a lane
  std::string error;     ///< message when status == "error"
  std::string code;      ///< error class when status == "error"
  // Resolve-only bookkeeping (serialized as a "resolve" object when
  // is_resolve; mirrors pdw::ResolveStats).
  bool is_resolve = false;
  int frontier_cells = 0;
  int reused_cells = 0;
  int routes_reused = 0;
  bool full_fallback = false;
};

/// Serialize a solve response line (no trailing newline).
std::string solveResponse(const std::string& id, const std::string& trace,
                          const SolveReply& reply);

/// Serialize a ping/invalidate/shutdown acknowledgement.
std::string ackResponse(RequestType type, const std::string& id,
                        const std::string& trace, std::uint64_t version);

/// Serialize a metrics-scrape response: the full `pdw-metrics-1` registry
/// export embedded as the `metrics` member (pass Registry::exportJson()).
std::string metricsResponse(const std::string& id, const std::string& trace,
                            const std::string& metrics_json);

/// Canonical, deterministic, byte-stable serialization of a washed
/// schedule: every operation (id, device, start, end) and every fluid task
/// (id, kind, fluid, start, end, full path) in id order. Two plans are the
/// same if and only if their serializations are byte-identical — the
/// cross-socket extension of the PR 1 determinism guarantee is asserted on
/// exactly this string.
std::string canonicalPlan(const assay::AssaySchedule& schedule);

/// 64-bit fingerprint of a timed schedule (ops + tasks + paths), used with
/// core::chipFingerprint as the (arch, schedule) part of plan-cache keys.
std::uint64_t scheduleFingerprint(const assay::AssaySchedule& schedule);

}  // namespace pdw::service

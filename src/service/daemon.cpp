#include "service/daemon.h"

#include <algorithm>
#include <future>
#include <utility>

#include "assay/benchmarks.h"
#include "core/pipeline.h"
#include "core/route_cache.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/synthesizer.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pdw::service {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

obs::Counter& counterOf(const char* name) {
  return obs::Registry::instance().counter(name);
}

}  // namespace

/// Lazily-built synthesis context of one Table-II benchmark. The graph must
/// outlive the schedule (which points into it and into the chip), so the
/// whole bundle is kept alive for the daemon lifetime and shared read-only
/// by every request for that benchmark.
struct Daemon::BenchContext {
  assay::Benchmark benchmark;  ///< owns the sequencing graph
  synth::SynthResult synth;    ///< owns the chip; schedule points into both
  std::uint64_t chip_fingerprint = 0;
  std::uint64_t schedule_fingerprint = 0;
};

/// Resident incremental pipeline of one benchmark (resolve requests). The
/// pipeline carries the solved-base state deltas compose on, so all resolve
/// traffic for a benchmark serializes on `mutex` — the point of resolve is
/// that each request is a cheap repair, not a parallel cold solve.
struct Daemon::ResolveContext {
  std::mutex mutex;
  std::unique_ptr<Pipeline> pipeline;  ///< created + primed on first use
};

/// One admitted solve request in flight between handleLine() (the waiting
/// transport thread) and a lane.
struct Daemon::Job {
  Request req;
  Clock::time_point admitted;
  std::string trace;
  std::uint64_t seq = 0;  ///< numeric part of `trace`, for span ids
  std::promise<SolveReply> done;
};

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      plan_cache_(std::max<std::size_t>(1, options_.plan_cache_capacity)) {
  options_.lanes = std::max(1, options_.lanes);
  options_.queue_capacity = std::max<std::size_t>(1, options_.queue_capacity);
  pool_ = std::make_shared<util::ThreadPool>(
      options_.threads > 0 ? options_.threads
                           : util::ThreadPool::hardwareConcurrency());
  route_cache_ = std::make_shared<core::RouteCache>(
      std::max<std::size_t>(1, options_.route_cache_capacity));
  lanes_.reserve(static_cast<std::size_t>(options_.lanes));
  for (int i = 0; i < options_.lanes; ++i)
    lanes_.emplace_back([this] { laneLoop(); });
  PDW_LOG(Info, "pdwd") << "daemon up: " << options_.lanes << " lanes, queue "
                        << options_.queue_capacity << ", pool "
                        << pool_->size();
}

Daemon::~Daemon() { shutdown(); }

std::string Daemon::handleLine(std::string_view line) {
  ParsedRequest parsed = parseRequest(line);
  if (!parsed.ok()) {
    counterOf(obs::names::kPdwdErrors).increment();
    return errorResponse("", parsed.error_code, parsed.error);
  }
  counterOf(obs::names::kPdwdRequests).increment();
  Request req = std::move(*parsed.request);
  const std::uint64_t seq =
      trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string trace = "t-" + std::to_string(seq);

  switch (req.type) {
    case RequestType::Ping:
      return ackResponse(RequestType::Ping, req.id, trace,
                         plan_cache_.version());
    case RequestType::Metrics:
      return metricsResponse(req.id, trace,
                             obs::Registry::instance().exportJson());
    case RequestType::Invalidate:
      return ackResponse(RequestType::Invalidate, req.id, trace,
                         invalidateCaches());
    case RequestType::Shutdown: {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        shutdown_requested_ = true;
      }
      return ackResponse(RequestType::Shutdown, req.id, trace,
                         plan_cache_.version());
    }
    case RequestType::Solve:
    case RequestType::Resolve:
      break;  // both go through admission below
  }

  // Unknown benchmarks are refused at admission so the outcome counters
  // keep their partition invariant (every *admitted* solve ends as ok /
  // budget_hit / deadline).
  if (!req.benchmark.empty()) {
    bool known = false;
    for (assay::BenchmarkId candidate : assay::allBenchmarks())
      if (req.benchmark == assay::toString(candidate)) known = true;
    if (!known) {
      counterOf(obs::names::kPdwdErrors).increment();
      return errorResponse(req.id, "value",
                           "unknown benchmark \"" + req.benchmark + "\"");
    }
  }

  Job job;
  job.req = std::move(req);
  job.admitted = Clock::now();
  job.trace = trace;
  job.seq = seq;
  std::future<SolveReply> done = job.done.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ || shutdown_requested_ || queue_.size() >=
                                                options_.queue_capacity) {
      counterOf(obs::names::kPdwdRejectedQueueFull).increment();
      SolveReply reply;
      reply.status = "rejected";
      return solveResponse(job.req.id, trace, reply);
    }
    // A cache-using client bumping its generation invalidates before its
    // solve runs. Only now — a request rejected above, or one opting out of
    // the caches, must not wipe shared state for every other client. Done
    // under queue_mutex_ so the job cannot be dequeued before the bump, and
    // under invalidate_mutex_ (route epoch first, then plan version) so the
    // two caches advance as one observable step; the recheck under the lock
    // keeps a racing same-version client from invalidating twice.
    if (job.req.use_cache &&
        job.req.cache_version > plan_cache_.version()) {
      std::lock_guard<std::mutex> invalidate_lock(invalidate_mutex_);
      if (job.req.cache_version > plan_cache_.version()) {
        route_cache_->invalidate();
        plan_cache_.bumpTo(job.req.cache_version);
      }
    }
    queue_.push_back(&job);
    obs::Registry::instance()
        .gauge(obs::names::kPdwdQueueDepth)
        .set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();

  SolveReply reply = done.get();
  reply.wall_ms = secondsSince(job.admitted) * 1000.0;

  obs::Registry::instance()
      .histogram(obs::names::kPdwdRequestSeconds)
      .observe(reply.wall_ms / 1000.0);
  if (reply.wall_ms / 1000.0 > options_.slow_request_seconds) {
    counterOf(obs::names::kPdwdSlowRequests).increment();
    PDW_LOG(Warn, "pdwd") << "slow request " << trace << " id=\""
                          << job.req.id << "\" benchmark=\""
                          << job.req.benchmark << "\" status="
                          << reply.status << " wall=" << reply.wall_ms
                          << "ms queue=" << reply.queue_ms << "ms";
  }
  return solveResponse(job.req.id, trace, reply);
}

void Daemon::laneLoop() {
  obs::setThreadName("pdwd-lane");
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-before-exit: stopping_ alone never abandons admitted work.
      if (queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
      obs::Registry::instance()
          .gauge(obs::names::kPdwdQueueDepth)
          .set(static_cast<double>(queue_.size()));
    }
    runJob(*job);
  }
}

void Daemon::runJob(Job& job) {
  const double queue_s = secondsSince(job.admitted);
  obs::Registry::instance()
      .histogram(obs::names::kPdwdQueueWaitSeconds)
      .observe(queue_s);
  PDW_TRACE_SPAN_ID("pdwd", "request", static_cast<long long>(job.seq));

  SolveReply reply;
  reply.queue_ms = queue_s * 1000.0;

  double remaining_s = -1.0;  // < 0: no deadline
  if (job.req.deadline_ms > 0.0) {
    remaining_s = job.req.deadline_ms / 1000.0 - queue_s;
    if (remaining_s <= 0.0) {
      counterOf(obs::names::kPdwdDeadlineExpired).increment();
      reply.status = "deadline";
      job.done.set_value(std::move(reply));
      return;
    }
  }

  if (job.req.sleep_ms > 0.0) {
    // Load-harness path: hold the lane without touching the solver.
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(job.req.sleep_ms, remaining_s < 0.0
                                       ? job.req.sleep_ms
                                       : remaining_s * 1000.0)));
    counterOf(obs::names::kPdwdSolveOk).increment();
    reply.status = "ok";
    job.done.set_value(std::move(reply));
    return;
  }

  std::string error;
  SolveReply solved = job.req.type == RequestType::Resolve
                          ? resolveRequest(job.req, &error)
                          : solveRequest(job.req, remaining_s, &error);
  solved.queue_ms = reply.queue_ms;
  if (!error.empty()) {
    counterOf(obs::names::kPdwdErrors).increment();
    solved.status = "error";
    solved.code = "value";
    solved.error = error;
    PDW_LOG(Warn, "pdwd") << "request " << job.trace << " failed: " << error;
  } else if (solved.status == "ok") {
    counterOf(obs::names::kPdwdSolveOk).increment();
  } else {
    counterOf(obs::names::kPdwdBudgetHits).increment();
  }
  job.done.set_value(std::move(solved));
}

SolveReply Daemon::solveRequest(const Request& req, double remaining_s,
                                std::string* error) {
  SolveReply reply;
  std::shared_ptr<BenchContext> ctx = benchContext(req.benchmark, error);
  if (!ctx) return reply;

  // Resolve the effective solver configuration: request overrides, daemon
  // defaults, and the remaining deadline as a hard cap on both stages.
  double budget_s =
      req.budget_s > 0.0 ? req.budget_s : options_.default_budget_s;
  double path_budget_s = options_.path_budget_s;
  // When the remaining deadline caps a budget, the solver config absorbs a
  // measured wall-clock value — a near-unique fingerprint that would
  // pollute the plan-cache key space (never warm-hitting, LRU-evicting
  // useful entries) and could memoize a deadline-truncated result. Such
  // requests bypass the plan cache entirely; the deadline still binds.
  bool deadline_capped = false;
  if (remaining_s >= 0.0) {
    if (remaining_s < budget_s) {
      budget_s = remaining_s;
      deadline_capped = true;
    }
    if (remaining_s < path_budget_s) {
      path_budget_s = remaining_s;
      deadline_capped = true;
    }
  }

  core::PdwOptions options;
  options.withThreads(pool_->size())
      .withScheduleBudget(budget_s, options_.default_budget_nodes)
      .withPathBudget(path_budget_s, options_.path_budget_nodes)
      .withSharedPool(pool_);
  const std::string& engine =
      !req.engine.empty() ? req.engine : options_.engine;
  if (!engine.empty()) options.withEngine(engine);
  const std::string& cuts = !req.cuts.empty() ? req.cuts : options_.cuts;
  if (cuts == "on") options.withCuts(true);
  else if (cuts == "off") options.withCuts(false);
  else if (cuts == "gomory") options.withCuts(true, false);
  else if (cuts == "cover") options.withCuts(false, true);
  if (options_.flight.enabled || !options_.flight.path.empty())
    options.withFlightRecording(options_.flight);
  if (req.use_cache) options.withSharedRouteCache(route_cache_);

  PlanKey key;
  key.chip_fingerprint = ctx->chip_fingerprint;
  key.schedule_fingerprint = ctx->schedule_fingerprint;
  const std::string config = options.solver.fingerprint();
  key.config_fingerprint =
      util::hash::combineBytes(0x70647764u /* 'pdwd' */, config.data(),
                               config.size());

  const bool use_plan_cache = req.use_cache && !deadline_capped;
  std::uint64_t version = 0;
  if (use_plan_cache) {
    version = plan_cache_.version();
    if (std::optional<CachedPlan> cached = plan_cache_.lookup(key)) {
      reply.status = cached->status;
      reply.warm = true;
      reply.n_wash = cached->n_wash;
      reply.l_wash_mm = cached->l_wash_mm;
      reply.t_assay = cached->t_assay;
      reply.wash_time_s = cached->wash_time_s;
      reply.proven_optimal = cached->proven_optimal;
      reply.plan = cached->plan;
      return reply;
    }
  }

  Pipeline pipeline(options);
  PdwResult result = pipeline.run(ctx->synth.schedule);

  const assay::AssaySchedule& schedule = result.schedule();
  reply.status = result.plan.proven_optimal ? "ok" : "budget_hit";
  reply.n_wash = schedule.washCount();
  reply.l_wash_mm = schedule.washLengthMm();
  reply.t_assay = schedule.completionTime();
  reply.wash_time_s = schedule.totalWashTime();
  reply.proven_optimal = result.plan.proven_optimal;
  reply.plan = canonicalPlan(schedule);

  if (use_plan_cache) {
    CachedPlan cached;
    cached.status = reply.status;
    cached.n_wash = reply.n_wash;
    cached.l_wash_mm = reply.l_wash_mm;
    cached.t_assay = reply.t_assay;
    cached.wash_time_s = reply.wash_time_s;
    cached.proven_optimal = reply.proven_optimal;
    cached.plan = reply.plan;
    plan_cache_.insert(key, std::move(cached), version);
  }
  return reply;
}

SolveReply Daemon::resolveRequest(const Request& req, std::string* error) {
  SolveReply reply;
  reply.is_resolve = true;
  std::shared_ptr<BenchContext> ctx = benchContext(req.benchmark, error);
  if (!ctx) return reply;

  core::ScheduleDelta delta;
  if (req.delay_op >= 0)
    delta.op_delays.push_back({req.delay_op, req.delay_s});
  if (req.delay_task >= 0)
    delta.task_delays.push_back({req.delay_task, req.delay_s});
  if (!req.block_cell.empty()) {
    int x = 0, y = 0;
    parseCellSpec(req.block_cell, &x, &y);  // format validated at parse
    delta.blocked_cells.push_back(arch::Cell{x, y});
  }
  if (req.remove_task >= 0) delta.removed_tasks.push_back(req.remove_task);

  std::shared_ptr<ResolveContext> rc;
  {
    std::lock_guard<std::mutex> lock(resolve_mutex_);
    std::shared_ptr<ResolveContext>& slot = resolve_[req.benchmark];
    if (!slot) slot = std::make_shared<ResolveContext>();
    rc = slot;
  }

  std::lock_guard<std::mutex> lock(rc->mutex);
  const bool warm = rc->pipeline && rc->pipeline->canResolve();
  if (!rc->pipeline) {
    // Resident pipelines run with the daemon defaults: per-request budget /
    // engine / cuts overrides would fork the resident solved-base state the
    // deltas compose on.
    core::PdwOptions options;
    options.withThreads(pool_->size())
        .withScheduleBudget(options_.default_budget_s,
                            options_.default_budget_nodes)
        .withPathBudget(options_.path_budget_s, options_.path_budget_nodes)
        .withSharedPool(pool_)
        .withSharedRouteCache(route_cache_);
    if (!options_.engine.empty()) options.withEngine(options_.engine);
    if (options_.cuts == "on") options.withCuts(true);
    else if (options_.cuts == "off") options.withCuts(false);
    else if (options_.cuts == "gomory") options.withCuts(true, false);
    else if (options_.cuts == "cover") options.withCuts(false, true);
    if (options_.flight.enabled || !options_.flight.path.empty())
      options.withFlightRecording(options_.flight);
    rc->pipeline = std::make_unique<Pipeline>(std::move(options));
  }
  // Cold prime on first use: the pipeline must have solved the benchmark's
  // base schedule once before deltas can repair it.
  if (!rc->pipeline->canResolve()) rc->pipeline->run(ctx->synth.schedule);

  PdwResult result = rc->pipeline->resolve(delta);
  if (!result.resolve.valid) {
    *error = result.resolve.error;
    return reply;
  }

  const assay::AssaySchedule& schedule = result.schedule();
  reply.status = "ok";
  reply.warm = warm;
  reply.n_wash = schedule.washCount();
  reply.l_wash_mm = schedule.washLengthMm();
  reply.t_assay = schedule.completionTime();
  reply.wash_time_s = schedule.totalWashTime();
  reply.proven_optimal = result.plan.proven_optimal;
  reply.plan = canonicalPlan(schedule);
  reply.frontier_cells = result.resolve.frontier_cells;
  reply.reused_cells = result.resolve.reused_cells;
  reply.routes_reused = result.resolve.routes_reused;
  reply.full_fallback = result.resolve.full_fallback;
  return reply;
}

std::shared_ptr<Daemon::BenchContext> Daemon::benchContext(
    const std::string& name, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(bench_mutex_);
    const auto it = bench_.find(name);
    if (it != bench_.end()) return it->second;
  }

  std::optional<assay::BenchmarkId> id;
  for (assay::BenchmarkId candidate : assay::allBenchmarks())
    if (name == assay::toString(candidate)) id = candidate;
  if (!id) {
    *error = "unknown benchmark \"" + name + "\"";
    return nullptr;
  }

  // Built outside the lock: synthesis is deterministic, so a racing double
  // build produces identical contexts and first-emplace wins.
  auto ctx = std::make_shared<BenchContext>();
  ctx->benchmark = assay::makeBenchmark(*id);
  ctx->synth = synth::synthesize(*ctx->benchmark.graph);
  ctx->chip_fingerprint = core::chipFingerprint(*ctx->synth.chip);
  ctx->schedule_fingerprint = scheduleFingerprint(ctx->synth.schedule);

  std::lock_guard<std::mutex> lock(bench_mutex_);
  const auto [it, inserted] = bench_.emplace(name, std::move(ctx));
  return it->second;
}

bool Daemon::shutdownRequested() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return shutdown_requested_;
}

void Daemon::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && lanes_.empty()) return;
    stopping_ = true;
    shutdown_requested_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& lane : lanes_)
    if (lane.joinable()) lane.join();
  lanes_.clear();
  PDW_LOG(Info, "pdwd") << "daemon down";
}

std::uint64_t Daemon::invalidateCaches() {
  // Route epoch first, then plan version, under invalidate_mutex_: a client
  // that observes the new plan-cache version is guaranteed the route cache
  // has already turned its epoch over (and the admission bumpTo path holds
  // the same mutex, so the two bumps never interleave).
  std::lock_guard<std::mutex> lock(invalidate_mutex_);
  route_cache_->invalidate();
  return plan_cache_.invalidate();
}

std::uint64_t Daemon::cacheVersion() const { return plan_cache_.version(); }

std::uint64_t Daemon::routeCacheEpoch() const { return route_cache_->epoch(); }

DaemonStats Daemon::stats() const {
  DaemonStats stats;
  stats.requests = counterOf(obs::names::kPdwdRequests).value();
  stats.solve_ok = counterOf(obs::names::kPdwdSolveOk).value();
  stats.budget_hits = counterOf(obs::names::kPdwdBudgetHits).value();
  stats.deadline_expired =
      counterOf(obs::names::kPdwdDeadlineExpired).value();
  stats.rejected_queue_full =
      counterOf(obs::names::kPdwdRejectedQueueFull).value();
  stats.errors = counterOf(obs::names::kPdwdErrors).value();
  return stats;
}

}  // namespace pdw::service

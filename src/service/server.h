// pdwd transports: a unix-domain-socket server and a stdio loop.
//
// Both are thin line pumps over Daemon::handleLine — they own no protocol
// logic beyond framing. The socket server accepts connections on a
// filesystem path and serves each on its own thread; reading is bounded:
// a line that outgrows the protocol byte cap stops being buffered, and the
// daemon answers it with the structured "oversize" error once its newline
// arrives (the connection stays usable). serveStdio() pumps newline-
// delimited requests from an istream to an ostream — the transport behind
// `pdwd --stdio` and the tier-1 smoke stage, which pipe request batches
// through the daemon without needing socat/netcat.
//
// Both loops exit after the daemon accepts a shutdown request, once every
// in-flight response has been written.
#pragma once

#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace pdw::service {

class Daemon;

/// Serve newline-delimited requests from `in` to `out`, one response line
/// per request line, until EOF or an accepted shutdown request. Returns the
/// number of request lines processed.
std::size_t serveStdio(Daemon& daemon, std::istream& in, std::ostream& out);

class SocketServer {
 public:
  /// Binds and listens on unix-domain socket `path` (an existing socket
  /// file at that path is replaced). Throws std::runtime_error when the
  /// socket cannot be created.
  SocketServer(Daemon& daemon, std::string path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept loop: serves every connection on its own thread; returns after
  /// stop() or an accepted shutdown request. Call from the main thread.
  void run();

  /// Unblock run()'s accept loop. Idempotent, callable from any thread —
  /// including a connection thread (the shutdown request path calls it);
  /// run() itself joins the connection threads before returning.
  void stop();

  const std::string& path() const { return path_; }

 private:
  /// A connection thread plus its completion flag. The flag lets the accept
  /// loop join-and-erase finished threads as it goes, so a long-running
  /// daemon serving many short-lived connections does not accumulate
  /// exited-but-unjoined threads without bound.
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void serveConnection(int fd);
  /// Join and drop every connection whose thread has finished. Only called
  /// from the accept loop (run()), which is the sole owner of connections_.
  void reapFinished();

  Daemon& daemon_;
  std::string path_;
  int listen_fd_ = -1;
  std::vector<Connection> connections_;
};

}  // namespace pdw::service

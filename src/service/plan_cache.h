// Versioned plan cache for the pdwd service.
//
// Memoizes the full solved outcome of a request — wash plan metrics plus
// the canonical plan serialization — keyed by everything that determines
// it: the chip fingerprint, the base-schedule fingerprint, and the solver
// configuration fingerprint (which, via ilp::fingerprint, covers budgets,
// cuts and engine choice). A warm hit skips the entire pipeline: necessity
// analysis, clustering, routing, model build, presolve and branch-and-
// bound.
//
// Budget-capped outcomes ("budget_hit") are cached too: the solver is
// deterministic under a node budget, so the capped plan is as reproducible
// as a proven-optimal one, and budget-heavy benchmarks would otherwise
// never warm up.
//
// Versioning: the cache carries a monotonically increasing version.
// invalidate() (or a request with cache_version above the current value)
// empties the cache and bumps the version; inserts carry the version they
// were computed under and are dropped as stale if it no longer matches —
// the same epoch discipline as core::RouteCache.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "service/protocol.h"

namespace pdw::service {

/// Identity of a cacheable solve: fingerprints of the chip, the base
/// schedule, and the resolved solver configuration.
struct PlanKey {
  std::uint64_t chip_fingerprint = 0;
  std::uint64_t schedule_fingerprint = 0;
  std::uint64_t config_fingerprint = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const;
};

/// The memoized outcome: everything a solve response carries except the
/// per-request fields (wall/queue time, warm flag, id, trace).
struct CachedPlan {
  std::string status;  ///< "ok" | "budget_hit"
  int n_wash = 0;
  double l_wash_mm = 0.0;
  double t_assay = 0.0;
  double wash_time_s = 0.0;
  bool proven_optimal = false;
  std::string plan;  ///< canonicalPlan() serialization
};

struct PlanCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;
  std::int64_t stale_drops = 0;
  std::int64_t invalidations = 0;
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity);

  std::optional<CachedPlan> lookup(const PlanKey& key);

  /// Memoize `plan` if the cache is still at `version` (as captured before
  /// the solve). Returns false and drops the entry when a concurrent
  /// invalidation made it stale.
  bool insert(const PlanKey& key, CachedPlan plan, std::uint64_t version);

  /// Current cache version (generation). Starts at 0.
  std::uint64_t version() const;

  /// Drop everything and advance the version. Returns the new version.
  std::uint64_t invalidate();

  /// Invalidate only if `target` is above the current version; the version
  /// then becomes exactly `target` (so repeated client bumps converge).
  /// Returns the (possibly unchanged) current version.
  std::uint64_t bumpTo(std::uint64_t target);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;

 private:
  struct Entry {
    PlanKey key;
    CachedPlan plan;
  };

  void insertLocked(const PlanKey& key, CachedPlan plan);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t version_ = 0;  ///< guarded by mutex_
  std::list<Entry> lru_;       ///< front = most recently used
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> map_;
  PlanCacheStats stats_;
};

}  // namespace pdw::service

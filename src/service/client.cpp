#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace pdw::service {

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

bool LineClient::connect(const std::string& path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool LineClient::send(std::string_view line) {
  if (fd_ < 0) return false;
  std::string out(line);
  out.push_back('\n');
  std::size_t written = 0;
  while (written < out.size()) {
    // MSG_NOSIGNAL: a daemon that already closed the connection must surface
    // as a failed send (EPIPE), not a SIGPIPE in the client process.
    const ssize_t w = ::send(fd_, out.data() + written, out.size() - written,
                             MSG_NOSIGNAL);
    if (w <= 0) return false;
    written += static_cast<std::size_t>(w);
  }
  return true;
}

std::optional<std::string> LineClient::roundTrip(std::string_view line) {
  if (!send(line)) return std::nullopt;
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace pdw::service

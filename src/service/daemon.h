// pdwd core: a resident wash-optimization service.
//
// The daemon owns the shared runtime — one work-stealing thread pool, one
// epoch-guarded route cache, one versioned plan cache, one lazily-built
// synthesis context per Table-II benchmark — and runs N solver lanes over a
// bounded admission queue. handleLine() is the whole protocol surface: any
// transport (unix socket, stdio, an in-process test) feeds it one request
// line and writes back the one response line it returns. That keeps the
// transport layer trivial and makes the full daemon testable without a
// socket.
//
// Request lifecycle (solve):
//   parse -> admit (bounded queue; full -> "rejected" immediately)
//         -> wait for a lane   (deadline can expire here -> "deadline")
//         -> plan-cache lookup (warm hit skips the entire pipeline)
//         -> Pipeline::run() on the shared pool, budget capped by the
//            remaining deadline
//         -> epoch-guarded plan-cache insert, response.
//
// Every request gets a process-unique trace id ("t-<n>"), stamped into the
// response, the tracing span and the slow-request log line. Outcomes are
// accounted in the pdwd.* registry metrics (see obs/metric_names.h for the
// partition invariant the tests and obs_check verify).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "service/plan_cache.h"
#include "service/protocol.h"

namespace pdw::util {
class ThreadPool;
}
namespace pdw::core {
class RouteCache;
}

namespace pdw::service {

struct DaemonOptions {
  /// Concurrent solver lanes (each runs one Pipeline at a time).
  int lanes = 2;
  /// Bounded admission queue: waiting requests beyond this are rejected.
  std::size_t queue_capacity = 16;
  /// Shared work-stealing pool width (0 = hardware concurrency).
  int threads = 0;
  std::size_t route_cache_capacity = 4096;
  std::size_t plan_cache_capacity = 256;
  /// Scheduling-ILP budget applied when a request does not set budget_s.
  double default_budget_s = 4.0;
  std::int64_t default_budget_nodes = 60000;
  /// Per-operation wash-path ILP budget.
  double path_budget_s = 1.0;
  std::int64_t path_budget_nodes = 8000;
  /// Requests slower than this (admission to response, seconds) are logged
  /// at Warn with their trace id and counted in pdwd.slow_requests.
  double slow_request_seconds = 5.0;
  /// Default LP backend ("" = library default); per-request engine wins.
  std::string engine;
  /// Default cut policy ("" = library default, else on|off|gomory|cover).
  std::string cuts;
  /// Solver flight recorder (dump_on_limit: budget/deadline-capped solves
  /// dump their search tail). Enabled when `flight.path` is non-empty.
  obs::FlightConfig flight;
};

struct DaemonStats {
  std::int64_t requests = 0;
  std::int64_t solve_ok = 0;
  std::int64_t budget_hits = 0;
  std::int64_t deadline_expired = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t errors = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options = {});
  /// Drains and joins the lanes (equivalent to shutdown()).
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Process one request line, blocking until its response is ready.
  /// Thread-safe: every transport connection calls this concurrently.
  /// Always returns exactly one response line (no trailing newline).
  std::string handleLine(std::string_view line);

  /// True once a shutdown request was accepted; transports should stop
  /// reading. New solve requests are rejected from that point on.
  bool shutdownRequested() const;

  /// Stop admitting, finish every already-admitted request, join the lanes.
  /// Idempotent.
  void shutdown();

  /// Invalidate the shared plan + route caches as one observable step and
  /// return the new version: by the time cacheVersion() reports it, the
  /// route-cache epoch has already advanced (see invalidate_mutex_).
  std::uint64_t invalidateCaches();

  /// Current plan-cache version (generation).
  std::uint64_t cacheVersion() const;

  /// Current route-cache epoch. Coherence contract with cacheVersion():
  /// any observer that reads cacheVersion() first and routeCacheEpoch()
  /// second sees epoch advances >= version advances — the route epoch
  /// always bumps before the plan version under invalidate_mutex_.
  std::uint64_t routeCacheEpoch() const;

  DaemonStats stats() const;
  const DaemonOptions& options() const { return options_; }

 private:
  struct BenchContext;
  struct ResolveContext;
  struct Job;

  /// Runs on a lane: solve / resolve (or sleep) and fill the job's reply.
  void runJob(Job& job);
  SolveReply solveRequest(const Request& req, double remaining_s,
                          std::string* error);
  /// Incremental delta-solve against the benchmark's resident pipeline
  /// (created and cold-primed on first use).
  SolveReply resolveRequest(const Request& req, std::string* error);
  void laneLoop();
  std::shared_ptr<BenchContext> benchContext(const std::string& name,
                                             std::string* error);

  DaemonOptions options_;
  std::shared_ptr<util::ThreadPool> pool_;
  std::shared_ptr<core::RouteCache> route_cache_;
  PlanCache plan_cache_;
  /// Held across the plan-cache version bump AND the route-cache epoch bump
  /// (route first), in every invalidation path — so no observer can see one
  /// cache invalidated while the other still serves the old generation.
  std::mutex invalidate_mutex_;

  mutable std::mutex bench_mutex_;
  std::map<std::string, std::shared_ptr<BenchContext>> bench_;

  /// Resident incremental pipelines, one per benchmark (resolve requests).
  /// Each context serializes its own pipeline; the map mutex only guards
  /// creation/lookup.
  std::mutex resolve_mutex_;
  std::map<std::string, std::shared_ptr<ResolveContext>> resolve_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job*> queue_;      ///< waiting jobs (admitted, no lane yet)
  bool stopping_ = false;       ///< lanes exit once queue drains
  bool shutdown_requested_ = false;
  std::vector<std::thread> lanes_;

  std::atomic<std::uint64_t> trace_seq_{0};
};

}  // namespace pdw::service

// Minimal blocking pdwd client: connect to the daemon's unix socket, send
// one request line, read one response line. Used by the bench_pdwd load
// generator's --connect mode and the socket round-trip tests; real
// deployments can speak the protocol from anything that can write lines to
// a socket (see README "Running pdwd").
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace pdw::service {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connect to the unix-domain socket at `path`. False on failure (the
  /// client stays unconnected and can retry).
  bool connect(const std::string& path);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send `line` (a newline is appended) without waiting for the response.
  /// False on any I/O failure. Lets a caller hang up before the daemon
  /// replies — the disconnect-before-read tests use this.
  bool send(std::string_view line);

  /// Send `line` (a newline is appended) and block for the one response
  /// line. nullopt on any I/O failure or EOF.
  std::optional<std::string> roundTrip(std::string_view line);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace pdw::service

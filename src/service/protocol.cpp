#include "service/protocol.h"

#include <cmath>
#include <sstream>

#include "obs/json.h"
#include "util/hash.h"

namespace pdw::service {

namespace {

using obs::json::Value;

/// Doubles in responses and canonical plans are printed with enough digits
/// to round-trip (plans must be byte-stable, so the format is fixed here
/// and nowhere else).
std::string formatDouble(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

struct FieldError {
  std::string message;
  std::string code;
};

/// Strict typed field extraction: present-but-wrong-type is an error
/// ("type"), absent leaves the default in place.
std::optional<FieldError> readString(const Value& doc, const char* key,
                                     std::string* out) {
  const Value* v = doc.find(key);
  if (!v) return std::nullopt;
  if (!v->isString())
    return FieldError{std::string(key) + " must be a string", "type"};
  *out = v->string;
  return std::nullopt;
}

std::optional<FieldError> readNumber(const Value& doc, const char* key,
                                     double* out) {
  const Value* v = doc.find(key);
  if (!v) return std::nullopt;
  if (!v->isNumber())
    return FieldError{std::string(key) + " must be a number", "type"};
  if (!std::isfinite(v->number))
    return FieldError{std::string(key) + " must be finite", "value"};
  *out = v->number;
  return std::nullopt;
}

std::optional<FieldError> readBool(const Value& doc, const char* key,
                                   bool* out) {
  const Value* v = doc.find(key);
  if (!v) return std::nullopt;
  if (v->kind != Value::Kind::Bool)
    return FieldError{std::string(key) + " must be a boolean", "type"};
  *out = v->boolean;
  return std::nullopt;
}

/// Non-negative integer id field (op/task ids in resolve requests); absent
/// leaves -1 in place.
std::optional<FieldError> readIndex(const Value& doc, const char* key,
                                    int* out) {
  const Value* v = doc.find(key);
  if (!v) return std::nullopt;
  if (!v->isNumber())
    return FieldError{std::string(key) + " must be a number", "type"};
  if (!std::isfinite(v->number) || v->number < 0.0 ||
      v->number != std::floor(v->number) || v->number > 2147483647.0)
    return FieldError{std::string(key) + " must be a non-negative integer",
                      "value"};
  *out = static_cast<int>(v->number);
  return std::nullopt;
}

ParsedRequest fail(std::string message, std::string code) {
  ParsedRequest parsed;
  parsed.error = std::move(message);
  parsed.error_code = std::move(code);
  return parsed;
}

}  // namespace

bool parseCellSpec(const std::string& spec, int* x, int* y) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size())
    return false;
  long long vals[2] = {0, 0};
  const std::string parts[2] = {spec.substr(0, colon),
                                spec.substr(colon + 1)};
  for (int i = 0; i < 2; ++i) {
    if (parts[i].size() > 9) return false;
    for (char c : parts[i]) {
      if (c < '0' || c > '9') return false;
      vals[i] = vals[i] * 10 + (c - '0');
    }
  }
  *x = static_cast<int>(vals[0]);
  *y = static_cast<int>(vals[1]);
  return true;
}

const char* toString(RequestType type) {
  switch (type) {
    case RequestType::Solve: return "solve";
    case RequestType::Resolve: return "resolve";
    case RequestType::Metrics: return "metrics";
    case RequestType::Ping: return "ping";
    case RequestType::Invalidate: return "invalidate";
    case RequestType::Shutdown: return "shutdown";
  }
  return "?";
}

ParsedRequest parseRequest(std::string_view line) {
  if (line.size() > kMaxRequestBytes)
    return fail("request line exceeds " + std::to_string(kMaxRequestBytes) +
                    " bytes",
                "oversize");
  const std::optional<Value> doc = obs::json::parse(line);
  if (!doc) return fail("malformed JSON", "parse");
  if (!doc->isObject()) return fail("request must be a JSON object", "parse");

  const Value* schema = doc->find("schema");
  if (!schema || !schema->isString() || schema->string != kRequestSchema)
    return fail(std::string("schema must be \"") + kRequestSchema + "\"",
                "schema");

  Request req;
  std::string type_name = "solve";
  if (auto err = readString(*doc, "type", &type_name))
    return fail(err->message, err->code);
  if (type_name == "solve") {
    req.type = RequestType::Solve;
  } else if (type_name == "resolve") {
    req.type = RequestType::Resolve;
  } else if (type_name == "metrics") {
    req.type = RequestType::Metrics;
  } else if (type_name == "ping") {
    req.type = RequestType::Ping;
  } else if (type_name == "invalidate") {
    req.type = RequestType::Invalidate;
  } else if (type_name == "shutdown") {
    req.type = RequestType::Shutdown;
  } else {
    return fail("unknown request type \"" + type_name + "\"", "value");
  }

  if (auto err = readString(*doc, "id", &req.id))
    return fail(err->message, err->code);
  if (auto err = readString(*doc, "benchmark", &req.benchmark))
    return fail(err->message, err->code);
  if (auto err = readNumber(*doc, "budget_s", &req.budget_s))
    return fail(err->message, err->code);
  if (auto err = readNumber(*doc, "deadline_ms", &req.deadline_ms))
    return fail(err->message, err->code);
  if (auto err = readBool(*doc, "cache", &req.use_cache))
    return fail(err->message, err->code);
  if (auto err = readString(*doc, "cuts", &req.cuts))
    return fail(err->message, err->code);
  if (auto err = readString(*doc, "engine", &req.engine))
    return fail(err->message, err->code);
  if (auto err = readNumber(*doc, "sleep_ms", &req.sleep_ms))
    return fail(err->message, err->code);
  if (auto err = readIndex(*doc, "delay_op", &req.delay_op))
    return fail(err->message, err->code);
  if (auto err = readIndex(*doc, "delay_task", &req.delay_task))
    return fail(err->message, err->code);
  if (auto err = readNumber(*doc, "delay_s", &req.delay_s))
    return fail(err->message, err->code);
  if (auto err = readString(*doc, "block_cell", &req.block_cell))
    return fail(err->message, err->code);
  if (auto err = readIndex(*doc, "remove_task", &req.remove_task))
    return fail(err->message, err->code);
  double version = 0.0;
  if (auto err = readNumber(*doc, "cache_version", &version))
    return fail(err->message, err->code);
  // Bound at 2^53, the last exact double integer: beyond it the value is
  // ambiguous, and a huge value (say 1e300) would make the uint64 cast
  // undefined behavior — or park the cache one ++ away from wrapping to 0.
  constexpr double kMaxCacheVersion = 9007199254740992.0;  // 2^53
  if (version < 0.0 || version != std::floor(version) ||
      version >= kMaxCacheVersion)
    return fail("cache_version must be a non-negative integer below 2^53",
                "value");
  req.cache_version = static_cast<std::uint64_t>(version);

  if (req.budget_s < 0.0) return fail("budget_s must be >= 0", "value");
  if (req.deadline_ms < 0.0) return fail("deadline_ms must be >= 0", "value");
  if (req.sleep_ms < 0.0) return fail("sleep_ms must be >= 0", "value");
  if (!req.cuts.empty() && req.cuts != "on" && req.cuts != "off" &&
      req.cuts != "gomory" && req.cuts != "cover")
    return fail("cuts must be on|off|gomory|cover", "value");
  if (req.type == RequestType::Solve && req.benchmark.empty() &&
      req.sleep_ms <= 0.0)
    return fail("solve requires a benchmark", "value");
  if (req.type == RequestType::Resolve) {
    if (req.benchmark.empty())
      return fail("resolve requires a benchmark", "value");
    const bool has_delay = req.delay_op >= 0 || req.delay_task >= 0;
    if (has_delay && req.delay_s <= 0.0)
      return fail("delay_op/delay_task require delay_s > 0", "value");
    if (!has_delay && req.delay_s > 0.0)
      return fail("delay_s requires delay_op or delay_task", "value");
    if (!req.block_cell.empty()) {
      int x = 0, y = 0;
      if (!parseCellSpec(req.block_cell, &x, &y))
        return fail("block_cell must be \"x:y\" with non-negative integers",
                    "value");
    }
    if (!has_delay && req.block_cell.empty() && req.remove_task < 0)
      return fail("resolve requires at least one perturbation "
                  "(delay_op, delay_task, block_cell, remove_task)",
                  "value");
  }

  ParsedRequest parsed;
  parsed.request = std::move(req);
  return parsed;
}

std::string errorResponse(const std::string& id, const std::string& code,
                          const std::string& message) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kResponseSchema << "\""
      << ",\"id\":" << obs::json::quote(id) << ",\"status\":\"error\""
      << ",\"code\":" << obs::json::quote(code)
      << ",\"error\":" << obs::json::quote(message) << "}";
  return out.str();
}

std::string solveResponse(const std::string& id, const std::string& trace,
                          const SolveReply& reply) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kResponseSchema << "\""
      << ",\"id\":" << obs::json::quote(id)
      << ",\"trace\":" << obs::json::quote(trace)
      << ",\"status\":" << obs::json::quote(reply.status)
      << ",\"warm\":" << (reply.warm ? "true" : "false");
  if (!reply.plan.empty()) {
    out << ",\"n_wash\":" << reply.n_wash
        << ",\"l_wash_mm\":" << formatDouble(reply.l_wash_mm)
        << ",\"t_assay\":" << formatDouble(reply.t_assay)
        << ",\"wash_time_s\":" << formatDouble(reply.wash_time_s)
        << ",\"proven_optimal\":" << (reply.proven_optimal ? "true" : "false")
        << ",\"plan\":" << obs::json::quote(reply.plan);
  }
  if (reply.status == "error")
    out << ",\"code\":" << obs::json::quote(reply.code)
        << ",\"error\":" << obs::json::quote(reply.error);
  if (reply.is_resolve)
    out << ",\"resolve\":{\"frontier_cells\":" << reply.frontier_cells
        << ",\"reused_cells\":" << reply.reused_cells
        << ",\"routes_reused\":" << reply.routes_reused
        << ",\"full_fallback\":" << (reply.full_fallback ? "true" : "false")
        << "}";
  out << ",\"wall_ms\":" << formatDouble(reply.wall_ms)
      << ",\"queue_ms\":" << formatDouble(reply.queue_ms) << "}";
  return out.str();
}

std::string ackResponse(RequestType type, const std::string& id,
                        const std::string& trace, std::uint64_t version) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kResponseSchema << "\""
      << ",\"id\":" << obs::json::quote(id)
      << ",\"trace\":" << obs::json::quote(trace) << ",\"status\":\"ok\""
      << ",\"type\":\"" << toString(type) << "\""
      << ",\"cache_version\":" << version << "}";
  return out.str();
}

std::string metricsResponse(const std::string& id, const std::string& trace,
                            const std::string& metrics_json) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kResponseSchema << "\""
      << ",\"id\":" << obs::json::quote(id)
      << ",\"trace\":" << obs::json::quote(trace) << ",\"status\":\"ok\""
      << ",\"type\":\"metrics\",\"metrics\":" << metrics_json << "}";
  return out.str();
}

std::string canonicalPlan(const assay::AssaySchedule& schedule) {
  std::ostringstream out;
  out.precision(12);
  out << "ops";
  for (const assay::OpSchedule& op : schedule.opSchedules())
    out << ";" << op.op << ",d" << op.device << "," << op.start << ","
        << op.end;
  out << "|tasks";
  for (const assay::FluidTask& task : schedule.tasks()) {
    out << ";" << task.id << "," << toString(task.kind) << ",f" << task.fluid
        << "," << task.start << "," << task.end << ",[";
    bool first = true;
    for (const arch::Cell& c : task.path.cells()) {
      if (!first) out << " ";
      first = false;
      out << c.x << ":" << c.y;
    }
    out << "]";
  }
  return out.str();
}

std::uint64_t scheduleFingerprint(const assay::AssaySchedule& schedule) {
  using util::hash::combine;
  using util::hash::combineDouble;
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const assay::OpSchedule& op : schedule.opSchedules()) {
    h = combine(h, static_cast<std::uint64_t>(op.op));
    h = combine(h, static_cast<std::uint64_t>(op.device));
    h = combineDouble(h, op.start);
    h = combineDouble(h, op.end);
  }
  for (const assay::FluidTask& task : schedule.tasks()) {
    h = combine(h, static_cast<std::uint64_t>(task.id));
    h = combine(h, static_cast<std::uint64_t>(task.kind));
    h = combine(h, static_cast<std::uint64_t>(task.fluid));
    h = combineDouble(h, task.start);
    h = combineDouble(h, task.end);
    for (const arch::Cell& c : task.path.cells())
      h = combine(h, (static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(c.x))
                      << 32) |
                         static_cast<std::uint32_t>(c.y));
  }
  return h;
}

}  // namespace pdw::service

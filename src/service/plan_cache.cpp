#include "service/plan_cache.h"

#include <algorithm>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/hash.h"

namespace pdw::service {

namespace {

obs::Counter& hitCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kPdwdPlanCacheHits);
  return c;
}

obs::Counter& missCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kPdwdPlanCacheMisses);
  return c;
}

obs::Counter& staleDropCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kPdwdPlanCacheStaleDrops);
  return c;
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& key) const {
  using util::hash::combine;
  return static_cast<std::size_t>(
      combine(combine(key.chip_fingerprint, key.schedule_fingerprint),
              key.config_fingerprint));
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::optional<CachedPlan> PlanCache::lookup(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    missCounter().increment();
    return std::nullopt;
  }
  ++stats_.hits;
  hitCounter().increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

bool PlanCache::insert(const PlanKey& key, CachedPlan plan,
                       std::uint64_t version) {
  // Version check and insert share one critical section so an invalidation
  // can only land wholly before (entry dropped as stale) or wholly after
  // (entry cleared along with its generation).
  std::lock_guard<std::mutex> lock(mutex_);
  if (version != version_) {
    ++stats_.stale_drops;
    staleDropCounter().increment();
    return false;
  }
  insertLocked(key, std::move(plan));
  return true;
}

void PlanCache::insertLocked(const PlanKey& key, CachedPlan plan) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  map_.emplace(key, lru_.begin());
  ++stats_.inserts;
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::uint64_t PlanCache::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

std::uint64_t PlanCache::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++version_;
  map_.clear();
  lru_.clear();
  ++stats_.invalidations;
  obs::Registry::instance()
      .counter(obs::names::kPdwdCacheInvalidations)
      .increment();
  return version_;
}

std::uint64_t PlanCache::bumpTo(std::uint64_t target) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (target <= version_) return version_;
  version_ = target;
  map_.clear();
  lru_.clear();
  ++stats_.invalidations;
  obs::Registry::instance()
      .counter(obs::names::kPdwdCacheInvalidations)
      .increment();
  return version_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pdw::service

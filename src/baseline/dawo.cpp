#include "baseline/dawo.h"

#include <chrono>
#include <map>

#include "core/wash_path_ilp.h"
#include "util/logging.h"
#include "wash/contamination.h"
#include "wash/necessity.h"
#include "wash/rescheduler.h"

namespace pdw::baseline {

namespace {
using Clock = std::chrono::steady_clock;
}

wash::WashPlanResult runDawo(const assay::AssaySchedule& base,
                             const DawoOptions& options) {
  const auto start = Clock::now();
  wash::WashPlanResult result;
  result.method = "DAWO";

  // Demand-driven contamination analysis: spots are washed when a later
  // flow of a *different* fluid type reuses them (Type 1 and Type 2 are
  // standard in the wash literature and part of [10]'s demand model). The
  // waste-flow analysis (Type 3) is PDW's contribution and absent here, as
  // are target clustering, global path routing and removal integration.
  const wash::ContaminationTracker tracker(base);
  wash::NecessityOptions necessity_options;
  necessity_options.enable_type1 = true;
  necessity_options.enable_type2 = true;
  necessity_options.enable_type3 = false;
  wash::NecessityResult necessity =
      analyzeWashNecessity(tracker, necessity_options);
  result.necessity = necessity.stats;

  if (necessity.targets.empty()) {
    result.schedule = base;
    result.proven_optimal = true;
    result.solve_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

  // One wash operation per contaminated spot group: the spots deposited by
  // the same task (or operation) form one group ("wash operations are
  // first introduced based on the positions of contaminated spots") —
  // PDW's wider, window-driven clustering plus its global ILP routing is
  // exactly what this baseline lacks.
  std::map<std::pair<assay::TaskId, assay::OpId>, wash::WashOperation>
      grouped;
  for (wash::WashTarget& target : necessity.targets) {
    grouped[{target.contaminating_task, target.contaminating_op}]
        .targets.push_back(target);
  }

  // Spot-based merging: two groups whose contaminated spots overlap and
  // whose service windows are compatible are the *same* region to a
  // position-driven method — wash it once.
  std::vector<wash::WashOperation> regions;
  for (auto& [key, op] : grouped) {
    op.refreshWindow();
    regions.push_back(std::move(op));
  }
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < regions.size() && !merged; ++i)
      for (std::size_t j = i + 1; j < regions.size() && !merged; ++j) {
        const auto cells_i = regions[i].targetCells();
        const auto cells_j = regions[j].targetCells();
        bool spots_shared = false;
        for (const arch::Cell& a : cells_i)
          for (const arch::Cell& b : cells_j)
            if (a == b) spots_shared = true;
        if (!spots_shared) continue;
        const double ready =
            std::max(regions[i].ready, regions[j].ready);
        const double deadline =
            std::min(regions[i].deadline, regions[j].deadline);
        if (deadline - ready < 1.0) continue;  // incompatible windows
        regions[i].targets.insert(regions[i].targets.end(),
                                  regions[j].targets.begin(),
                                  regions[j].targets.end());
        regions[i].refreshWindow();
        regions.erase(regions.begin() + static_cast<std::ptrdiff_t>(j));
        merged = true;
      }
  }

  std::vector<wash::WashOperation> washes;
  for (wash::WashOperation& op : regions) {
    // BFS wash path, computed independently (no sharing across washes).
    const auto path =
        core::routeWashPathHeuristic(base.chip(), op.targetCells());
    if (!path) {
      PDW_LOG(Error, "dawo") << "wash path unroutable; dropping "
                             << op.targets.size() << " targets";
      continue;
    }
    op.path = *path;
    washes.push_back(std::move(op));
  }

  // Sweep-line interval assignment.
  result.schedule = wash::rescheduleWithWashes(base, washes, options.wash);
  result.solve_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace pdw::baseline

// DAWO: the delay-aware wash optimization baseline of the paper's
// evaluation (ref. [10], reimplemented from the paper's description):
//
//   "wash operations are first introduced based on the positions of
//    contaminated spots. Next, the breadth-first-search algorithm is
//    employed to compute wash paths on the chip. Moreover, a sweep-line
//    method is used to assign wash operations to appropriate time
//    intervals."
//
// Concretely: every contaminated spot group (the spots deposited by one
// fluidic task/operation) that is reused later becomes one wash operation —
// demand-driven, so the Type-1 "never reused" exemption applies, but the
// Type-2/3 analyses and the removal integration of PDW do not. Wash paths
// are BFS nearest-port chains computed independently per operation (no
// resource sharing), and the sweep-line assignment is the greedy
// earliest-slot insertion of wash::rescheduleWithWashes.
#pragma once

#include "assay/schedule.h"
#include "wash/plan.h"
#include "wash/wash_op.h"

namespace pdw::baseline {

struct DawoOptions {
  wash::WashParams wash;
};

wash::WashPlanResult runDawo(const assay::AssaySchedule& base,
                             const DawoOptions& options = {});

}  // namespace pdw::baseline

// Result type shared by PDW and the DAWO baseline: a washed, re-timed
// schedule plus bookkeeping about how it was obtained.
#pragma once

#include <string>

#include "assay/schedule.h"
#include "wash/necessity.h"

namespace pdw::wash {

struct WashPlanResult {
  /// The washed schedule (same graph/chip as the base schedule).
  assay::AssaySchedule schedule;
  /// Wash-necessity statistics of the analysis pass.
  NecessityStats necessity;
  /// Removal tasks merged into washes (paper §II-B, psi = 1 in eq. 7/21).
  int integrated_removals = 0;
  /// Wall-clock seconds spent in optimization.
  double solve_seconds = 0.0;
  /// True when the scheduler proved optimality (vs best-effort incumbent).
  bool proven_optimal = false;
  /// Human-readable method tag ("PDW", "DAWO", ablation variants).
  std::string method;
};

}  // namespace pdw::wash

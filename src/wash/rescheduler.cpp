#include "wash/rescheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <set>

#include "util/thread_pool.h"

namespace pdw::wash {

namespace {

using assay::AssaySchedule;
using assay::FluidTask;
using assay::OpId;
using assay::TaskId;
using assay::TaskKind;

struct Item {
  enum class Kind { Op, Task, Wash } kind;
  int index;         // OpId / TaskId / wash index
  double order_key;  // base start (washes: just before earliest blocker)
};

class Engine {
 public:
  Engine(const AssaySchedule& base, const std::vector<WashOperation>& washes,
         const WashParams& params, util::ThreadPool* pool)
      : base_(base), washes_(washes), params_(params), pool_(pool) {}

  AssaySchedule run() {
    buildItems();
    AssaySchedule out(&base_.graph(), &base_.chip());

    // Pre-create all tasks/ops so ids are stable, then assign times in
    // item order.
    for (const assay::OpSchedule& s : base_.opSchedules())
      out.addOpSchedule(s);
    for (const FluidTask& t : base_.tasks()) out.addTask(t);
    std::vector<TaskId> wash_task_ids;
    for (std::size_t w = 0; w < washes_.size(); ++w) {
      FluidTask task;
      task.kind = TaskKind::Wash;
      task.fluid = base_.graph().fluids().buffer();
      task.path = washes_[w].path;
      task.payload_begin = 0;
      task.payload_end = -1;
      wash_task_ids.push_back(out.addTask(task));
    }

    precomputeConflicts(out);

    std::map<arch::DeviceId, double> device_free;
    std::map<TaskId, double> wash_floor;  // blocking task -> min start

    for (const Item& item : items_) {
      switch (item.kind) {
        case Item::Kind::Op: {
          assay::OpSchedule& s = out.opSchedule(item.index);
          double lb = device_free[s.device];
          for (const FluidTask& t : out.tasks())
            if (assigned_tasks_.count(t.id) && t.consumer == item.index &&
                t.kind != TaskKind::Wash)
              lb = std::max(lb, t.end);
          const double dur = base_.graph().op(item.index).duration_s;
          const double start = opSlot(out, s.device, lb, dur, item.index);
          s.start = start;
          s.end = start + dur;
          device_free[s.device] = s.end;
          assigned_ops_.insert(item.index);
          break;
        }
        case Item::Kind::Task: {
          FluidTask& t = out.task(item.index);
          double lb = taskLowerBound(out, t);
          const auto floor_it = wash_floor.find(t.id);
          if (floor_it != wash_floor.end())
            lb = std::max(lb, floor_it->second);
          const double dur = base_.task(t.id).duration();
          const double start = taskSlot(out, t.id, lb, dur, &t);
          t.start = start;
          t.end = start + dur;
          assigned_tasks_.insert(t.id);
          break;
        }
        case Item::Kind::Wash: {
          const WashOperation& w =
              washes_[static_cast<std::size_t>(item.index)];
          FluidTask& t = out.task(
              wash_task_ids[static_cast<std::size_t>(item.index)]);
          double lb = w.ready;  // base-schedule floor if a source lags
          for (const WashTarget& target : w.targets) {
            if (target.contaminating_task >= 0 &&
                assigned_tasks_.count(target.contaminating_task))
              lb = std::max(lb, out.task(target.contaminating_task).end);
            if (target.contaminating_op >= 0 &&
                assigned_ops_.count(target.contaminating_op))
              lb = std::max(lb, out.opSchedule(target.contaminating_op).end);
          }
          const double dur = w.duration(params_, base_.chip().pitchMm());
          const double start = taskSlot(out, t.id, lb, dur, nullptr);
          t.start = start;
          t.end = start + dur;
          assigned_tasks_.insert(t.id);
          // Blocking tasks must wait for the wash to finish.
          for (const WashTarget& target : w.targets)
            if (target.blocking_task >= 0) {
              double& floor = wash_floor[target.blocking_task];
              floor = std::max(floor, t.end);
            }
          break;
        }
      }
    }
    return out;
  }

 private:
  /// Path-overlap and device-crossing predicates are pure functions of the
  /// (immutable) task paths, but the sweep below queries them O(T) times
  /// per placement. Precompute both tables once — rows are independent, so
  /// the pool fans them out; every worker writes only its own row, keeping
  /// the result identical for any thread count.
  void precomputeConflicts(const AssaySchedule& out) {
    const std::size_t n_tasks = out.tasks().size();
    const std::size_t n_devices = base_.chip().devices().size();
    overlap_.assign(n_tasks, std::vector<char>(n_tasks, 0));
    crosses_.assign(n_tasks, std::vector<char>(n_devices, 0));
    const auto fill_row = [&](std::size_t a) {
      const arch::FlowPath& path = out.tasks()[a].path;
      for (std::size_t b = 0; b < n_tasks; ++b)
        overlap_[a][b] = path.overlaps(out.tasks()[b].path) ? 1 : 0;
      for (std::size_t d = 0; d < n_devices; ++d)
        crosses_[a][d] =
            path.contains(base_.chip().devices()[d].cell) ? 1 : 0;
    };
    if (pool_ != nullptr) {
      pool_->parallelFor(n_tasks, fill_row);
    } else {
      for (std::size_t a = 0; a < n_tasks; ++a) fill_row(a);
    }
  }

  bool pathsOverlap(TaskId a, TaskId b) const {
    return overlap_[static_cast<std::size_t>(a)]
                   [static_cast<std::size_t>(b)] != 0;
  }

  bool pathCrossesDevice(TaskId task, arch::DeviceId device) const {
    return crosses_[static_cast<std::size_t>(task)]
                   [static_cast<std::size_t>(device)] != 0;
  }

  void buildItems() {
    for (const assay::OpSchedule& s : base_.opSchedules())
      items_.push_back({Item::Kind::Op, s.op, s.start});
    for (const FluidTask& t : base_.tasks())
      items_.push_back({Item::Kind::Task, t.id, t.start});
    for (std::size_t w = 0; w < washes_.size(); ++w) {
      // Slot the wash right after its contamination is complete (ready =
      // latest contaminating end in the base schedule): every contaminating
      // item sorts before it, every blocking task (start >= ready) after.
      items_.push_back(
          {Item::Kind::Wash, static_cast<int>(w), washes_[w].ready - 0.25});
    }
    // Total order: ties on order_key break on (kind, index) — the same
    // order stable_sort produced from the push sequence above (ops, then
    // tasks, then washes, each ascending) — so equal-key items never depend
    // on container iteration order and rescheduled plans are byte-identical
    // across thread counts.
    std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
      if (a.order_key != b.order_key) return a.order_key < b.order_key;
      if (a.kind != b.kind) return a.kind < b.kind;
      return a.index < b.index;
    });
  }

  /// Precedence lower bound of a base task (mirrors the synthesizer's and
  /// the validator's rules).
  double taskLowerBound(const AssaySchedule& out, const FluidTask& t) const {
    double lb = 0.0;
    if (t.producer >= 0 && assigned_ops_.count(t.producer))
      lb = std::max(lb, out.opSchedule(t.producer).end);
    if (t.kind == TaskKind::ExcessRemoval) {
      // After its matching transport.
      if (t.matching_transport >= 0 &&
          assigned_tasks_.count(t.matching_transport)) {
        lb = std::max(lb, out.task(t.matching_transport).end);
      } else {
        for (const FluidTask& other : out.tasks())
          if (other.kind == TaskKind::Transport &&
              other.producer == t.producer &&
              other.consumer == t.consumer &&
              assigned_tasks_.count(other.id))
            lb = std::max(lb, other.end);
      }
    }
    if (t.kind == TaskKind::WasteRemoval && t.producer >= 0) {
      // After every outgoing transport of the producing op.
      for (const FluidTask& other : out.tasks())
        if (other.kind == TaskKind::Transport &&
            other.producer == t.producer && assigned_tasks_.count(other.id))
          lb = std::max(lb, other.end);
    }
    return lb;
  }

  /// Earliest start >= lb with no spatial/temporal conflict against
  /// already-assigned tasks and ops. When `self` is a base task,
  /// contamination-unsafe conflicting pairs are kept in assignment order
  /// (start after the assigned one) even if a gap would fit — the necessity
  /// analysis is only valid for the base use order. Tasks never slip into
  /// gaps before assigned operations whose device cell they cross, for the
  /// same reason.
  double taskSlot(const AssaySchedule& out, TaskId path_task, double lb,
                  double dur, const FluidTask* self) const {
    double start = lb;
    // Hard floors first: assignment-order preservation.
    for (const FluidTask& other : out.tasks()) {
      if (!assigned_tasks_.count(other.id)) continue;
      if (other.duration() <= 1e-9) continue;
      if (!pathsOverlap(path_task, other.id)) continue;
      const bool safe =
          self == nullptr ||
          reorderSafe(base_.graph().fluids(), *self, other);
      if (!safe) start = std::max(start, other.end);
    }
    if (self != nullptr) {
      for (const assay::OpSchedule& o : out.opSchedules()) {
        if (!assigned_ops_.count(o.op)) continue;
        if (self->consumer == o.op) continue;  // own consumer comes later
        if (pathCrossesDevice(path_task, o.device))
          start = std::max(start, o.end);
      }
    }
    bool moved = true;
    while (moved) {
      moved = false;
      const double end = start + dur;
      for (const FluidTask& other : out.tasks()) {
        if (!assigned_tasks_.count(other.id)) continue;
        if (other.end <= start + 1e-9 || other.start >= end - 1e-9) continue;
        if (other.duration() <= 1e-9) continue;
        if (pathsOverlap(path_task, other.id)) {
          start = other.end;
          moved = true;
          break;
        }
      }
      if (moved) continue;
      for (const assay::OpSchedule& o : out.opSchedules()) {
        if (!assigned_ops_.count(o.op)) continue;
        if (o.end <= start + 1e-9 || o.start >= end - 1e-9) continue;
        if (pathCrossesDevice(path_task, o.device)) {
          start = o.end;
          moved = true;
          break;
        }
      }
    }
    return start;
  }

  /// Earliest start >= lb at which no assigned task crosses `device`'s
  /// cell. Assignment order against crossing tasks is preserved (no
  /// gap-filling before a task that already crossed the device in base
  /// order).
  double opSlot(const AssaySchedule& out, arch::DeviceId device, double lb,
                double dur, assay::OpId self) const {
    double start = lb;
    for (const FluidTask& other : out.tasks()) {
      if (!assigned_tasks_.count(other.id)) continue;
      if (other.duration() <= 1e-9) continue;
      if (other.consumer == self) continue;  // own inputs end before us
      if (pathCrossesDevice(other.id, device))
        start = std::max(start, other.end);
    }
    bool moved = true;
    while (moved) {
      moved = false;
      const double end = start + dur;
      for (const FluidTask& other : out.tasks()) {
        if (!assigned_tasks_.count(other.id)) continue;
        if (other.end <= start + 1e-9 || other.start >= end - 1e-9) continue;
        if (other.duration() <= 1e-9) continue;
        if (pathCrossesDevice(other.id, device)) {
          start = other.end;
          moved = true;
          break;
        }
      }
    }
    return start;
  }

  const AssaySchedule& base_;
  const std::vector<WashOperation>& washes_;
  const WashParams& params_;
  util::ThreadPool* pool_;
  std::vector<Item> items_;
  std::vector<std::vector<char>> overlap_;  ///< [task][task] path overlap
  std::vector<std::vector<char>> crosses_;  ///< [task][device] cell crossing
  std::set<OpId> assigned_ops_;
  std::set<TaskId> assigned_tasks_;
};

}  // namespace

AssaySchedule rescheduleWithWashes(const AssaySchedule& base,
                                   const std::vector<WashOperation>& washes,
                                   const WashParams& params,
                                   util::ThreadPool* pool) {
  Engine engine(base, washes, params, pool);
  return engine.run();
}

}  // namespace pdw::wash

// Fixed-order rescheduler: insert wash operations into a base schedule by
// greedy earliest-slot assignment.
//
// Items (operations, fluidic tasks, washes) are processed in base-schedule
// order — washes slotted just before their earliest blocking task — and
// each is assigned the earliest start that satisfies its precedence lower
// bounds and conflicts with nothing already placed. Blocking tasks are
// pushed past their wash's end, which cascades exactly like the sweep-line
// interval assignment of the DAWO baseline [10]; PDW uses the same engine
// only as a fallback when the scheduling ILP fails within its budget.
//
// The output is valid by construction (same invariants the sim validator
// checks).
#pragma once

#include <vector>

#include "wash/plan.h"
#include "wash/wash_op.h"

namespace pdw::util {
class ThreadPool;
}

namespace pdw::wash {

/// Insert `washes` into `base` and retime everything downstream. The
/// returned schedule contains all base ops/tasks (same ids) plus one Wash
/// task per wash operation, appended in input order.
///
/// `pool` (optional, non-owning) parallelizes the path-overlap /
/// device-crossing precomputation that feeds the sweep; the assignment
/// sweep itself is order-dependent and stays sequential, so the result is
/// identical with or without a pool.
assay::AssaySchedule rescheduleWithWashes(
    const assay::AssaySchedule& base, const std::vector<WashOperation>& washes,
    const WashParams& params, util::ThreadPool* pool = nullptr);

}  // namespace pdw::wash

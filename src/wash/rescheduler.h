// Fixed-order rescheduler: insert wash operations into a base schedule by
// greedy earliest-slot assignment.
//
// Items (operations, fluidic tasks, washes) are processed in base-schedule
// order — washes slotted just before their earliest blocking task — and
// each is assigned the earliest start that satisfies its precedence lower
// bounds and conflicts with nothing already placed. Blocking tasks are
// pushed past their wash's end, which cascades exactly like the sweep-line
// interval assignment of the DAWO baseline [10]; PDW uses the same engine
// only as a fallback when the scheduling ILP fails within its budget.
//
// The output is valid by construction (same invariants the sim validator
// checks).
#pragma once

#include <vector>

#include "wash/plan.h"
#include "wash/wash_op.h"

namespace pdw::wash {

/// Insert `washes` into `base` and retime everything downstream. The
/// returned schedule contains all base ops/tasks (same ids) plus one Wash
/// task per wash operation, appended in input order.
assay::AssaySchedule rescheduleWithWashes(
    const assay::AssaySchedule& base, const std::vector<WashOperation>& washes,
    const WashParams& params);

}  // namespace pdw::wash

#include "wash/necessity.h"

#include <optional>

#include "util/strings.h"

namespace pdw::wash {

namespace {

struct Residue {
  assay::FluidId fluid = -1;
  double since = 0.0;
  assay::TaskId task = -1;
  assay::OpId op = -1;
};

/// True if `fluid` is an input of operation `op` (a parent's result or an
/// injected reagent) — the device-cell generalization of Type 2: "if the
/// residue left in a device has the same type as the subsequent input
/// fluid, wash ... can be avoided".
bool isInputOf(const assay::SequencingGraph& graph, assay::FluidId fluid,
               assay::OpId op) {
  if (op < 0) return false;
  for (assay::FluidId r : graph.op(op).reagent_inputs)
    if (r == fluid) return true;
  for (assay::OpId parent : graph.parents(op))
    if (graph.op(parent).result == fluid) return true;
  return false;
}

}  // namespace

std::string NecessityStats::describe() const {
  return util::format(
      "states=%d type1=%d type2=%d type3=%d targets=%d",
      contaminated_cell_states, skipped_type1, skipped_type2, skipped_type3,
      targets);
}

NecessityResult analyzeWashNecessity(const ContaminationTracker& tracker,
                                     const NecessityOptions& options) {
  NecessityResult result;
  const assay::AssaySchedule& schedule = tracker.schedule();
  const assay::FluidRegistry& fluids = schedule.graph().fluids();
  const double horizon = schedule.completionTime();

  const auto emitTarget = [&](arch::Cell cell, const Residue& residue,
                              double deadline, assay::TaskId blocking) {
    WashTarget target;
    target.cell = cell;
    target.residue = residue.fluid;
    target.ready = residue.since;
    target.deadline = deadline;
    target.contaminating_task = residue.task;
    target.contaminating_op = residue.op;
    target.blocking_task = blocking;
    result.targets.push_back(target);
    ++result.stats.targets;
  };

  for (const arch::Cell& cell : tracker.usedCells()) {
    std::optional<Residue> residue;
    for (const CellUse& use : tracker.usesOf(cell)) {
      if (residue) {
        ++result.stats.contaminated_cell_states;
        const bool dangerous = fluids.contaminates(residue->fluid, use.fluid);
        const bool input_exempt =
            dangerous && isInputOf(schedule.graph(), residue->fluid, use.op);
        if (use.critical) {
          if (!dangerous || input_exempt) {
            if (options.enable_type2) {
              ++result.stats.skipped_type2;
            } else {
              emitTarget(cell, *residue, use.start, use.task);
              residue.reset();
            }
          } else {
            emitTarget(cell, *residue, use.start, use.task);
            residue.reset();  // assume the wash happened before `use`
          }
        } else if (use.task >= 0) {
          // Waste-bound flush (excess/waste removal) or wash: Type 3.
          const bool is_wash =
              schedule.task(use.task).kind == assay::TaskKind::Wash;
          if (!is_wash) {
            if (options.enable_type3) {
              ++result.stats.skipped_type3;
            } else if (dangerous) {
              emitTarget(cell, *residue, use.start, use.task);
              residue.reset();
            }
          }
        }
      }
      if (use.deposits) {
        if (fluids.kind(use.fluid) == assay::FluidKind::Buffer) {
          residue.reset();  // wash leaves the cell clean
        } else {
          // The deposit source is the task, or the operation for device
          // deposits (use.op also names the consumer op on transport uses —
          // that is not the contaminator).
          residue = Residue{use.fluid, use.end, use.task,
                            use.task >= 0 ? -1 : use.op};
        }
      }
    }
    if (residue) {
      ++result.stats.contaminated_cell_states;
      if (options.enable_type1) {
        ++result.stats.skipped_type1;
      } else {
        // Ablation: even dead residue must be washed; the deadline is open
        // (blocking_task = -1 makes the wash extend T_assay instead).
        emitTarget(cell, *residue, horizon, -1);
      }
    }
  }
  return result;
}

}  // namespace pdw::wash

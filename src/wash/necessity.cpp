#include "wash/necessity.h"

#include <optional>

#include "util/strings.h"

namespace pdw::wash {

namespace {

struct Residue {
  assay::FluidId fluid = -1;
  double since = 0.0;
  assay::TaskId task = -1;
  assay::OpId op = -1;
};

/// True if `fluid` is an input of operation `op` (a parent's result or an
/// injected reagent) — the device-cell generalization of Type 2: "if the
/// residue left in a device has the same type as the subsequent input
/// fluid, wash ... can be avoided".
bool isInputOf(const assay::SequencingGraph& graph, assay::FluidId fluid,
               assay::OpId op) {
  if (op < 0) return false;
  for (assay::FluidId r : graph.op(op).reagent_inputs)
    if (r == fluid) return true;
  for (assay::OpId parent : graph.parents(op))
    if (graph.op(parent).result == fluid) return true;
  return false;
}

bool sameUse(const CellUse& a, const CellUse& b) {
  return a.start == b.start && a.end == b.end && a.fluid == b.fluid &&
         a.critical == b.critical && a.deposits == b.deposits &&
         a.task == b.task && a.op == b.op;
}

bool sameUses(const std::vector<CellUse>& a, const std::vector<CellUse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!sameUse(a[i], b[i])) return false;
  return true;
}

/// The per-cell walk of eqs. 9-11: a pure function of the cell's use list
/// (and the horizon, only when Type 1 is disabled) — the invariant the
/// incremental path relies on to reuse unchanged cells verbatim.
CellNecessity analyzeCell(const assay::AssaySchedule& schedule,
                          arch::Cell cell, const std::vector<CellUse>& uses,
                          double horizon, const NecessityOptions& options) {
  CellNecessity out;
  const assay::FluidRegistry& fluids = schedule.graph().fluids();

  const auto emitTarget = [&](const Residue& residue, double deadline,
                              assay::TaskId blocking) {
    WashTarget target;
    target.cell = cell;
    target.residue = residue.fluid;
    target.ready = residue.since;
    target.deadline = deadline;
    target.contaminating_task = residue.task;
    target.contaminating_op = residue.op;
    target.blocking_task = blocking;
    out.targets.push_back(target);
    ++out.stats.targets;
  };

  std::optional<Residue> residue;
  for (const CellUse& use : uses) {
    if (residue) {
      ++out.stats.contaminated_cell_states;
      const bool dangerous = fluids.contaminates(residue->fluid, use.fluid);
      const bool input_exempt =
          dangerous && isInputOf(schedule.graph(), residue->fluid, use.op);
      if (use.critical) {
        if (!dangerous || input_exempt) {
          if (options.enable_type2) {
            ++out.stats.skipped_type2;
          } else {
            emitTarget(*residue, use.start, use.task);
            residue.reset();
          }
        } else {
          emitTarget(*residue, use.start, use.task);
          residue.reset();  // assume the wash happened before `use`
        }
      } else if (use.task >= 0) {
        // Waste-bound flush (excess/waste removal) or wash: Type 3.
        const bool is_wash =
            schedule.task(use.task).kind == assay::TaskKind::Wash;
        if (!is_wash) {
          if (options.enable_type3) {
            ++out.stats.skipped_type3;
          } else if (dangerous) {
            emitTarget(*residue, use.start, use.task);
            residue.reset();
          }
        }
      }
    }
    if (use.deposits) {
      if (fluids.kind(use.fluid) == assay::FluidKind::Buffer) {
        residue.reset();  // wash leaves the cell clean
      } else {
        // The deposit source is the task, or the operation for device
        // deposits (use.op also names the consumer op on transport uses —
        // that is not the contaminator).
        residue = Residue{use.fluid, use.end, use.task,
                          use.task >= 0 ? -1 : use.op};
      }
    }
  }
  if (residue) {
    ++out.stats.contaminated_cell_states;
    if (options.enable_type1) {
      ++out.stats.skipped_type1;
    } else {
      // Ablation: even dead residue must be washed; the deadline is open
      // (blocking_task = -1 makes the wash extend T_assay instead).
      emitTarget(*residue, horizon, -1);
    }
  }
  return out;
}

void accumulate(NecessityResult& result, const CellNecessity& cell) {
  result.targets.insert(result.targets.end(), cell.targets.begin(),
                        cell.targets.end());
  result.stats.contaminated_cell_states +=
      cell.stats.contaminated_cell_states;
  result.stats.skipped_type1 += cell.stats.skipped_type1;
  result.stats.skipped_type2 += cell.stats.skipped_type2;
  result.stats.skipped_type3 += cell.stats.skipped_type3;
  result.stats.targets += cell.stats.targets;
}

bool sameOptions(const NecessityOptions& a, const NecessityOptions& b) {
  return a.enable_type1 == b.enable_type1 &&
         a.enable_type2 == b.enable_type2 &&
         a.enable_type3 == b.enable_type3;
}

}  // namespace

std::string NecessityStats::describe() const {
  return util::format(
      "states=%d type1=%d type2=%d type3=%d targets=%d",
      contaminated_cell_states, skipped_type1, skipped_type2, skipped_type3,
      targets);
}

NecessityResult analyzeWashNecessity(const ContaminationTracker& tracker,
                                     const NecessityOptions& options,
                                     NecessityMemo* memo) {
  NecessityResult result;
  const assay::AssaySchedule& schedule = tracker.schedule();
  const double horizon = schedule.completionTime();
  if (memo != nullptr) {
    memo->cells.clear();
    memo->horizon = horizon;
    memo->options = options;
    memo->valid = true;
  }
  for (const arch::Cell& cell : tracker.usedCells()) {
    CellNecessity analysis =
        analyzeCell(schedule, cell, tracker.usesOf(cell), horizon, options);
    accumulate(result, analysis);
    if (memo != nullptr) {
      analysis.uses = tracker.usesOf(cell);
      memo->cells.emplace(cell, std::move(analysis));
    }
  }
  return result;
}

NecessityResult analyzeWashNecessityDelta(const ContaminationTracker& tracker,
                                          NecessityMemo& memo,
                                          const NecessityOptions& options,
                                          NecessityDeltaStats* delta_stats) {
  const assay::AssaySchedule& schedule = tracker.schedule();
  const double horizon = schedule.completionTime();
  // With Type 1 disabled, trailing residues embed the horizon in their
  // open deadline, so a moved completion time invalidates every memoized
  // cell, not just the frontier.
  const bool memo_usable =
      memo.valid && sameOptions(memo.options, options) &&
      (options.enable_type1 || memo.horizon == horizon);

  NecessityResult result;
  NecessityDeltaStats stats;
  stats.full_fallback = !memo_usable;
  std::map<arch::Cell, CellNecessity> fresh;
  for (const arch::Cell& cell : tracker.usedCells()) {
    const std::vector<CellUse>& uses = tracker.usesOf(cell);
    const auto prev = memo_usable ? memo.cells.find(cell) : memo.cells.end();
    CellNecessity analysis;
    if (prev != memo.cells.end() && sameUses(prev->second.uses, uses)) {
      analysis = prev->second;
      ++stats.reused_cells;
      stats.reused_targets += static_cast<int>(analysis.targets.size());
    } else {
      analysis = analyzeCell(schedule, cell, uses, horizon, options);
      analysis.uses = uses;
      ++stats.frontier_cells;
      stats.recomputed_targets += static_cast<int>(analysis.targets.size());
    }
    accumulate(result, analysis);
    fresh.emplace(cell, std::move(analysis));
  }
  memo.cells = std::move(fresh);
  memo.horizon = horizon;
  memo.options = options;
  memo.valid = true;
  if (delta_stats != nullptr) *delta_stats = stats;
  return result;
}

}  // namespace pdw::wash

// Wash-necessity analysis (paper §II-A / eqs. 9-11).
//
// Walks every cell's chronological use list (ContaminationTracker) and emits
// a WashTarget only when residue would actually corrupt a later critical
// use. The three paper exemptions fall out of the walk:
//   Type 1 - residue never touched by a later critical use,
//   Type 2 - the next use carries the same fluid type (or a fluid that is an
//            input of the same consuming operation, for device cells),
//   Type 3 - the next use is waste-bound (excess/waste removal).
// Each exemption can be disabled individually for the ablation study.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "wash/contamination.h"

namespace pdw::wash {

/// A cell that must be washed inside a specific window.
struct WashTarget {
  arch::Cell cell;
  assay::FluidId residue = -1;
  /// When the residue is deposited (t^c_{x,y} of eq. 9): wash cannot start
  /// before this (eq. 16's t_{j,e}).
  double ready = 0.0;
  /// Start of the critical use that requires cleanliness (eq. 16's t_{j,s}).
  double deadline = 0.0;
  /// Task/op that deposited the residue (one of the two is >= 0).
  assay::TaskId contaminating_task = -1;
  assay::OpId contaminating_op = -1;
  /// The critical use that needs the cell clean.
  assay::TaskId blocking_task = -1;
};

struct NecessityOptions {
  bool enable_type1 = true;
  bool enable_type2 = true;
  bool enable_type3 = true;
};

struct NecessityStats {
  int contaminated_cell_states = 0;  ///< residue states inspected
  int skipped_type1 = 0;
  int skipped_type2 = 0;
  int skipped_type3 = 0;
  int targets = 0;
  std::string describe() const;
};

struct NecessityResult {
  std::vector<WashTarget> targets;
  NecessityStats stats;
};

/// Per-cell walk result: the memoizable unit of incremental re-analysis.
/// `uses` is the chronological use list the walk saw — a later delta
/// analysis reuses `targets`/`stats` verbatim iff the cell's use list is
/// unchanged (the walk is a pure function of it, plus the horizon when
/// Type 1 is disabled).
struct CellNecessity {
  std::vector<CellUse> uses;
  std::vector<WashTarget> targets;
  NecessityStats stats;  ///< this cell's contribution only
};

/// Memoized per-cell analysis of one schedule, consumed and refreshed by
/// analyzeWashNecessityDelta. Keyed row-major like
/// ContaminationTracker::usedCells(), so merged results replay in the exact
/// order of a full analysis.
struct NecessityMemo {
  std::map<arch::Cell, CellNecessity> cells;
  double horizon = 0.0;  ///< completionTime() the walk used (Type-1-off only)
  NecessityOptions options;
  bool valid = false;
};

/// Reuse accounting of one incremental re-analysis.
struct NecessityDeltaStats {
  int frontier_cells = 0;    ///< cells whose use list changed (recomputed)
  int reused_cells = 0;      ///< cells carried over from the memo
  int recomputed_targets = 0;
  int reused_targets = 0;
  bool full_fallback = false;  ///< memo unusable (options/horizon changed)
};

/// Analyze a (wash-free) base schedule. With an exemption disabled, the
/// corresponding residues become targets: Type-1 residues get the schedule
/// end as deadline, Type-2/3 residues the start of their next use.
/// When `memo` is non-null it is filled for later incremental reuse.
NecessityResult analyzeWashNecessity(const ContaminationTracker& tracker,
                                     const NecessityOptions& options = {},
                                     NecessityMemo* memo = nullptr);

/// Incremental re-analysis: walk only the contamination frontier — cells
/// whose use list differs from `memo` — and copy every other cell's targets
/// straight from it. Returns exactly what analyzeWashNecessity(tracker,
/// options) would (same targets, same order, same stats); `memo` is updated
/// in place to describe `tracker`. A memo recorded under different options
/// (or, with Type 1 disabled, a different horizon — open-deadline targets
/// embed it) forces a full recompute, reported via
/// NecessityDeltaStats::full_fallback.
NecessityResult analyzeWashNecessityDelta(const ContaminationTracker& tracker,
                                          NecessityMemo& memo,
                                          const NecessityOptions& options,
                                          NecessityDeltaStats* delta_stats);

}  // namespace pdw::wash

// Wash-necessity analysis (paper §II-A / eqs. 9-11).
//
// Walks every cell's chronological use list (ContaminationTracker) and emits
// a WashTarget only when residue would actually corrupt a later critical
// use. The three paper exemptions fall out of the walk:
//   Type 1 - residue never touched by a later critical use,
//   Type 2 - the next use carries the same fluid type (or a fluid that is an
//            input of the same consuming operation, for device cells),
//   Type 3 - the next use is waste-bound (excess/waste removal).
// Each exemption can be disabled individually for the ablation study.
#pragma once

#include <string>
#include <vector>

#include "wash/contamination.h"

namespace pdw::wash {

/// A cell that must be washed inside a specific window.
struct WashTarget {
  arch::Cell cell;
  assay::FluidId residue = -1;
  /// When the residue is deposited (t^c_{x,y} of eq. 9): wash cannot start
  /// before this (eq. 16's t_{j,e}).
  double ready = 0.0;
  /// Start of the critical use that requires cleanliness (eq. 16's t_{j,s}).
  double deadline = 0.0;
  /// Task/op that deposited the residue (one of the two is >= 0).
  assay::TaskId contaminating_task = -1;
  assay::OpId contaminating_op = -1;
  /// The critical use that needs the cell clean.
  assay::TaskId blocking_task = -1;
};

struct NecessityOptions {
  bool enable_type1 = true;
  bool enable_type2 = true;
  bool enable_type3 = true;
};

struct NecessityStats {
  int contaminated_cell_states = 0;  ///< residue states inspected
  int skipped_type1 = 0;
  int skipped_type2 = 0;
  int skipped_type3 = 0;
  int targets = 0;
  std::string describe() const;
};

struct NecessityResult {
  std::vector<WashTarget> targets;
  NecessityStats stats;
};

/// Analyze a (wash-free) base schedule. With an exemption disabled, the
/// corresponding residues become targets: Type-1 residues get the schedule
/// end as deadline, Type-2/3 residues the start of their next use.
NecessityResult analyzeWashNecessity(const ContaminationTracker& tracker,
                                     const NecessityOptions& options = {});

}  // namespace pdw::wash

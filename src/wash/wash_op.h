// Wash operations: a clustered set of wash targets served by one buffer
// flush along one wash path.
#pragma once

#include <string>
#include <vector>

#include "arch/path.h"
#include "wash/necessity.h"

namespace pdw::wash {

/// Physical constants of wash execution (paper §III/§IV).
struct WashParams {
  /// Flow velocity v_f in mm/s (paper uses 10 mm/s, citing [13]).
  double flow_velocity_mm_s = 10.0;
  /// Contaminant dissolution time t_d in seconds (eq. 17, citing [11]).
  double dissolution_s = 2.0;
};

struct WashOperation {
  std::vector<WashTarget> targets;
  arch::FlowPath path;  ///< [flow port -> targets -> waste port]

  /// Earliest start: every target's residue must exist (max ready;
  /// eq. 16's t_{j,e}).
  double ready = 0.0;
  /// Latest end: the earliest blocking use (min deadline; eq. 16's t_{j,s}).
  /// May be +infinity when no target has a blocking task.
  double deadline = 0.0;

  /// t(w) = L(l_w)/v_f + t_d (eq. 17).
  double duration(const WashParams& params, double pitch_mm) const {
    return path.lengthMm(pitch_mm) / params.flow_velocity_mm_s +
           params.dissolution_s;
  }

  /// Cells the wash must cover (eq. 15's wt_i).
  std::vector<arch::Cell> targetCells() const;

  /// Recompute ready/deadline from the target list.
  void refreshWindow();
};

/// Cluster wash targets into operations: targets join a cluster while their
/// windows keep a non-empty intersection (with `min_window` slack for the
/// wash itself) and stay within `max_span` grid distance of the cluster —
/// one flush then serves all of them (paper §II-C computes one optimized
/// path per group of wash requirements).
struct ClusterOptions {
  double min_window_s = 2.0;
  int max_span = 16;
};

std::vector<WashOperation> clusterTargets(std::vector<WashTarget> targets,
                                          const ClusterOptions& options = {});

}  // namespace pdw::wash

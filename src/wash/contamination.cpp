#include "wash/contamination.h"

#include <algorithm>

namespace pdw::wash {

using assay::FluidTask;
using assay::TaskKind;

namespace {

bool depositsOnCritical(const assay::FluidRegistry& fluids,
                        const assay::FluidTask& dep,
                        const assay::FluidTask& crit) {
  if (crit.kind != TaskKind::Transport) return false;  // non-critical
  if (!fluids.contaminates(dep.fluid, crit.fluid)) return false;
  const auto dep_cells = dep.payloadCells();
  const auto crit_cells = crit.payloadCells();
  for (const arch::Cell& c : dep_cells)
    for (const arch::Cell& d : crit_cells)
      if (c == d) return true;
  return false;
}

}  // namespace

bool reorderSafe(const assay::FluidRegistry& fluids, const assay::FluidTask& a,
                 const assay::FluidTask& b) {
  if (a.kind == TaskKind::Wash || b.kind == TaskKind::Wash)
    return true;  // buffer deposits are neutral
  return !depositsOnCritical(fluids, a, b) &&
         !depositsOnCritical(fluids, b, a);
}

ContaminationTracker::ContaminationTracker(
    const assay::AssaySchedule& schedule)
    : schedule_(&schedule) {
  for (assay::TaskId id : schedule.tasksByStart())
    recordTask(schedule.task(id));
  for (const assay::OpSchedule& op : schedule.opSchedules()) recordOp(op);
  for (auto& [cell, uses] : uses_) {
    std::stable_sort(uses.begin(), uses.end(),
                     [](const CellUse& a, const CellUse& b) {
                       return a.start < b.start;
                     });
  }
}

void ContaminationTracker::recordTask(const FluidTask& task) {
  // Integrated excess removals (paper eq. 7 with psi = 1) have zero
  // duration: no fluid moves, the covering wash performs the flush.
  if (task.duration() <= 1e-9) return;
  const auto& chip = schedule_->chip();
  const std::vector<arch::Cell> payload = task.payloadCells();

  switch (task.kind) {
    case TaskKind::Transport: {
      for (std::size_t i = 0; i < payload.size(); ++i) {
        const arch::Cell cell = payload[i];
        if (chip.isPortCell(cell)) continue;
        CellUse use;
        use.start = task.start;
        use.end = task.end;
        use.fluid = task.fluid;
        use.task = task.id;
        use.op = task.consumer;
        // The first payload cell holds the plug already (source device);
        // every later cell must be clean and keeps residue afterwards.
        use.critical = i > 0 || task.producer < 0;
        use.deposits = true;
        // Reagent injections start at the port: the port cell is skipped
        // above, so the first tracked cell is genuinely critical.
        add(cell, use);
      }
      break;
    }
    case TaskKind::ExcessRemoval:
    case TaskKind::WasteRemoval: {
      for (const arch::Cell& cell : payload) {
        if (chip.isPortCell(cell)) continue;
        CellUse use;
        use.start = task.start;
        use.end = task.end;
        use.fluid = task.fluid;
        use.task = task.id;
        use.critical = false;  // waste-bound: Type 3
        use.deposits = true;
        add(cell, use);
      }
      break;
    }
    case TaskKind::Wash: {
      for (const arch::Cell& cell : task.path.cells()) {
        if (chip.isPortCell(cell)) continue;
        CellUse use;
        use.start = task.start;
        use.end = task.end;
        use.fluid = schedule_->graph().fluids().buffer();
        use.task = task.id;
        use.critical = false;
        use.deposits = true;  // deposits neutral buffer == cleans
        add(cell, use);
      }
      break;
    }
  }
}

void ContaminationTracker::recordOp(const assay::OpSchedule& op) {
  CellUse use;
  use.start = op.start;
  use.end = op.end;
  use.fluid = schedule_->graph().op(op.op).result;
  use.op = op.op;
  use.critical = false;  // input cleanliness was checked on arrival
  use.deposits = true;   // the device keeps the result's residue
  add(schedule_->chip().device(op.device).cell, use);
}

void ContaminationTracker::add(arch::Cell cell, CellUse use) {
  uses_[cell].push_back(use);
}

const std::vector<CellUse>& ContaminationTracker::usesOf(
    arch::Cell cell) const {
  const auto it = uses_.find(cell);
  return it == uses_.end() ? empty_ : it->second;
}

std::vector<arch::Cell> ContaminationTracker::usedCells() const {
  std::vector<arch::Cell> cells;
  cells.reserve(uses_.size());
  for (const auto& [cell, uses] : uses_) cells.push_back(cell);
  return cells;
}

}  // namespace pdw::wash

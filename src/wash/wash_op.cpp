#include "wash/wash_op.h"

#include <algorithm>
#include <limits>

namespace pdw::wash {

std::vector<arch::Cell> WashOperation::targetCells() const {
  std::vector<arch::Cell> cells;
  cells.reserve(targets.size());
  for (const WashTarget& t : targets)
    if (std::find(cells.begin(), cells.end(), t.cell) == cells.end())
      cells.push_back(t.cell);
  return cells;
}

void WashOperation::refreshWindow() {
  ready = 0.0;
  deadline = std::numeric_limits<double>::infinity();
  for (const WashTarget& t : targets) {
    ready = std::max(ready, t.ready);
    if (t.blocking_task >= 0) deadline = std::min(deadline, t.deadline);
  }
}

std::vector<WashOperation> clusterTargets(std::vector<WashTarget> targets,
                                          const ClusterOptions& options) {
  // Earliest-deadline-first greedy clustering: each unassigned target seeds
  // a cluster; later targets join while the shared window stays at least
  // min_window_s wide and the cluster stays spatially compact.
  std::sort(targets.begin(), targets.end(),
            [](const WashTarget& a, const WashTarget& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              if (a.ready != b.ready) return a.ready < b.ready;
              return a.cell < b.cell;
            });

  std::vector<WashOperation> ops;
  std::vector<bool> assigned(targets.size(), false);
  for (std::size_t seed = 0; seed < targets.size(); ++seed) {
    if (assigned[seed]) continue;
    WashOperation op;
    op.targets.push_back(targets[seed]);
    assigned[seed] = true;
    double ready = targets[seed].ready;
    double deadline = targets[seed].blocking_task >= 0
                          ? targets[seed].deadline
                          : std::numeric_limits<double>::infinity();

    for (std::size_t i = seed + 1; i < targets.size(); ++i) {
      if (assigned[i]) continue;
      const WashTarget& candidate = targets[i];
      const double new_ready = std::max(ready, candidate.ready);
      const double new_deadline =
          candidate.blocking_task >= 0
              ? std::min(deadline, candidate.deadline)
              : deadline;
      if (new_deadline - new_ready < options.min_window_s) continue;

      bool close = true;
      for (const WashTarget& member : op.targets)
        if (arch::manhattan(member.cell, candidate.cell) > options.max_span)
          close = false;
      if (!close) continue;

      op.targets.push_back(candidate);
      assigned[i] = true;
      ready = new_ready;
      deadline = new_deadline;
    }

    op.refreshWindow();
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace pdw::wash

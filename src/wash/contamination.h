// Contamination tracking: replay a schedule and derive, per grid cell, the
// chronological sequence of fluid "uses" with their contamination semantics.
//
// Per-kind semantics (derived from the paper's §II examples; see the
// payload-span comment on assay::FluidTask):
//   * Transport: payload cells after the first are CRITICAL (the plug must
//     not pick up residue) and DEPOSIT the plug's fluid. The first payload
//     cell is the source device/port whose content *is* the plug.
//   * Excess/waste removal: payload cells are NON-critical (the flushed
//     fluid is headed for waste — paper Type 3, Q_p = 1) but DEPOSIT the
//     flushed fluid's residue.
//   * Wash: all path cells NON-critical; deposits neutral buffer, i.e.
//     cleans (eq. 17's dissolution makes the channel residue-free).
//   * Operation: its device cell deposits the operation's result at the
//     operation's end ("after operation o_3 is finished, detector_1 is
//     contaminated").
// Port cells are never tracked (they are off-chip interfaces, not washable
// channel cells).
#pragma once

#include <map>
#include <vector>

#include "assay/schedule.h"

namespace pdw::wash {

/// One chronological use of a cell.
struct CellUse {
  double start = 0.0;
  double end = 0.0;
  assay::FluidId fluid = -1;
  /// The plug must find the cell clean (else the assay is corrupted).
  bool critical = false;
  /// The use leaves this fluid's residue behind.
  bool deposits = false;
  /// Task that performs the use, or -1 when it is an operation.
  assay::TaskId task = -1;
  /// Operation owning the use: the consumer op for transports, the
  /// executing op for device deposits; -1 otherwise.
  assay::OpId op = -1;
};

/// True if executing `a` and `b` in either order is contamination-safe:
/// neither deposits residue on a cell the other traverses critically with a
/// contaminable fluid. Pairs failing this must keep their base-schedule
/// order (the necessity analysis is only valid for that order) — used by
/// both the scheduling ILP and the greedy rescheduler.
bool reorderSafe(const assay::FluidRegistry& fluids,
                 const assay::FluidTask& a, const assay::FluidTask& b);

class ContaminationTracker {
 public:
  explicit ContaminationTracker(const assay::AssaySchedule& schedule);

  /// Uses of one cell, ordered by (start, task creation order).
  const std::vector<CellUse>& usesOf(arch::Cell cell) const;

  /// All cells with at least one use, row-major order.
  std::vector<arch::Cell> usedCells() const;

  const assay::AssaySchedule& schedule() const { return *schedule_; }

 private:
  void recordTask(const assay::FluidTask& task);
  void recordOp(const assay::OpSchedule& op);
  void add(arch::Cell cell, CellUse use);

  const assay::AssaySchedule* schedule_;
  std::map<arch::Cell, std::vector<CellUse>> uses_;
  std::vector<CellUse> empty_;
};

}  // namespace pdw::wash

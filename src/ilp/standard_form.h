// Bound-independent standard form of an LP/MILP model.
//
// Branch-and-bound solves thousands of node LPs that differ from each other
// only in variable bounds. Everything structural — which tableau columns
// exist, how they map back to model variables, the raw constraint
// coefficients, senses and right-hand sides, where each row's slack and
// artificial columns live — is invariant across nodes, so it is computed
// once per MIP solve and shared by every node LP (see DESIGN.md §11).
//
// Layout decisions that make the structure bound-invariant:
//  * Every model variable gets one structural column (shifted to lower
//    bound 0 at load time); a variable that is fully free *in the base
//    model* gets a second, negated column (x = x+ - x-). Whether a variable
//    is split is decided from the base bounds only — branching tightens
//    bounds, and when a node gives a split variable a finite lower bound
//    the load simply pins the negative column to zero.
//  * Whether a row's right-hand side needs a sign flip depends on the
//    bounds (the rhs is shifted by the lower bounds), and a flipped
//    LessEqual row becomes GreaterEqual — which needs an artificial. So
//    every row reserves an artificial column up front, and every non-Equal
//    row reserves a slack/surplus column; a load that does not need a
//    reserved artificial leaves its column all-zero with upper bound 0, and
//    the tableau geometry never changes between loads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ilp/model.h"
#include "ilp/types.h"

namespace pdw::ilp {

struct StandardForm {
  /// How a column maps back to a model variable:
  /// model_value += sign * (shift + column_value), with `shift` supplied at
  /// load time (it is the node's lower bound, not structure).
  struct Column {
    int model_var = -1;  ///< -1 for slack/surplus/artificial columns
    double sign = 1.0;
    bool artificial = false;
  };

  int num_rows = 0;
  int num_cols = 0;

  std::vector<Column> columns;
  /// Per model variable: its structural column, and the negated second
  /// column of a free split (-1 otherwise).
  std::vector<int> first_col;
  std::vector<int> second_col;
  /// Per row: reserved slack/surplus column (-1 for Equal rows) and the
  /// always-reserved artificial column.
  std::vector<int> slack_col;
  std::vector<int> artificial_col;

  /// Raw (unshifted, unflipped) rows over structural columns.
  std::vector<std::vector<std::pair<int, double>>> rows;
  std::vector<Sense> senses;
  std::vector<double> rhs;

  /// Objective coefficients per column (zero on slack/artificial columns).
  std::vector<double> objective;

  /// Compressed-sparse-column view of the structural constraint matrix over
  /// *model* variables (no free splits, no slack/artificial columns —
  /// engines that handle bounds natively, like the revised simplex, index it
  /// directly by VarId). Duplicate (row, var) terms are merged.
  struct Csc {
    int num_rows = 0;
    int num_cols = 0;
    std::vector<int> col_start;  ///< size num_cols + 1
    std::vector<int> row_index;  ///< size nnz, ascending within a column
    std::vector<double> value;   ///< size nnz

    std::int64_t nonzeros() const {
      return static_cast<std::int64_t>(row_index.size());
    }
  };
  Csc csc;

  static StandardForm build(const Model& model);
  /// Build just the CSC view (cheaper than build() when the caller does not
  /// need the dense-tableau column layout).
  static Csc buildStructuralCsc(const Model& model);
};

}  // namespace pdw::ilp

#include "ilp/solver.h"

#include <cstdio>

#include "ilp/branch_bound.h"
#include "ilp/lp_backend.h"
#include "ilp/presolve.h"

namespace pdw::ilp {

std::string fingerprint(const SolveParams& params) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "engine=%s tl=%.3g nodes=%lld iters=%lld gap=%.3g presolve=%d "
      "probing=%d coeftight=%d cuts=%d%s%s cutrounds=%d branch=%s "
      "warm=%d rc=%d portfolio=%d",
      params.engine.empty() ? defaultLpBackendName().c_str()
                            : params.engine.c_str(),
      params.time_limit_seconds, static_cast<long long>(params.node_limit),
      static_cast<long long>(params.simplex_iteration_limit), params.mip_gap,
      params.enable_presolve ? 1 : 0, params.probing ? 1 : 0,
      params.coef_tightening ? 1 : 0, params.cuts.enabled ? 1 : 0,
      params.cuts.enabled && !params.cuts.gomory ? " -gomory" : "",
      params.cuts.enabled && !params.cuts.cover ? " -cover" : "",
      params.cuts.max_rounds,
      params.branch_rule == BranchRule::Pseudocost ? "pseudocost" : "mostfrac",
      params.warm_lp ? 1 : 0, params.rc_fixing ? 1 : 0,
      params.portfolio_threads);
  return buf;
}

Solution solve(const Model& model, const SolveParams& params) {
  if (!params.enable_presolve) return solveMip(model, params);

  Model reduced = model;
  PresolveOptions options;
  options.feasibility_tol = params.feasibility_tol;
  options.probing = params.probing;
  options.coef_tightening = params.coef_tightening;
  const PresolveResult pre = presolve(reduced, options);
  if (pre.infeasible) {
    Solution result;
    result.status = SolveStatus::Infeasible;
    return result;
  }
  return solveMip(reduced, params);
}

}  // namespace pdw::ilp

#include "ilp/solver.h"

#include "ilp/branch_bound.h"
#include "ilp/presolve.h"

namespace pdw::ilp {

Solution solve(const Model& model, const SolveParams& params) {
  if (!params.enable_presolve) return solveMip(model, params);

  Model reduced = model;
  const PresolveResult pre = presolve(reduced, params.feasibility_tol);
  if (pre.infeasible) {
    Solution result;
    result.status = SolveStatus::Infeasible;
    return result;
  }
  return solveMip(reduced, params);
}

}  // namespace pdw::ilp

#include "ilp/standard_form.h"

#include <cassert>
#include <cmath>

namespace pdw::ilp {

StandardForm StandardForm::build(const Model& model) {
  StandardForm form;
  const int n_model = model.numVars();
  form.first_col.assign(static_cast<std::size_t>(n_model), -1);
  form.second_col.assign(static_cast<std::size_t>(n_model), -1);

  const auto addColumn = [&form](Column info) {
    form.columns.push_back(info);
    return static_cast<int>(form.columns.size()) - 1;
  };

  // Structural columns. The split decision uses the *base* bounds: branching
  // only tightens, so a base-bounded variable stays single-column at every
  // node, and a base-free variable keeps both columns (the load pins the
  // second one when a node bound makes the split unnecessary).
  for (int j = 0; j < n_model; ++j) {
    const Variable& v = model.var(j);
    if (std::isfinite(v.lower)) {
      form.first_col[static_cast<std::size_t>(j)] =
          addColumn(Column{j, 1.0, false});
    } else {
      assert(!std::isfinite(v.upper) &&
             "variables must have a finite lower bound or be fully free");
      form.first_col[static_cast<std::size_t>(j)] =
          addColumn(Column{j, 1.0, false});
      form.second_col[static_cast<std::size_t>(j)] =
          addColumn(Column{j, -1.0, false});
    }
  }

  const int m = model.numConstraints();
  form.rows.resize(static_cast<std::size_t>(m));
  form.senses.resize(static_cast<std::size_t>(m));
  form.rhs.resize(static_cast<std::size_t>(m));
  form.slack_col.assign(static_cast<std::size_t>(m), -1);
  form.artificial_col.assign(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const Constraint& c = model.constraint(i);
    auto& row = form.rows[static_cast<std::size_t>(i)];
    for (const auto& [var, coeff] : c.expr.terms()) {
      row.emplace_back(form.first_col[static_cast<std::size_t>(var)], coeff);
      const int col2 = form.second_col[static_cast<std::size_t>(var)];
      if (col2 >= 0) row.emplace_back(col2, -coeff);
    }
    form.senses[static_cast<std::size_t>(i)] = c.sense;
    form.rhs[static_cast<std::size_t>(i)] = c.rhs;
  }

  // Reserved slack/surplus + artificial columns, in row order so the layout
  // matches the historical per-solve construction closely.
  for (int i = 0; i < m; ++i) {
    if (form.senses[static_cast<std::size_t>(i)] != Sense::Equal)
      form.slack_col[static_cast<std::size_t>(i)] =
          addColumn(Column{-1, 1.0, false});
    form.artificial_col[static_cast<std::size_t>(i)] =
        addColumn(Column{-1, 1.0, true});
  }

  form.num_rows = m;
  form.num_cols = static_cast<int>(form.columns.size());

  form.objective.assign(static_cast<std::size_t>(form.num_cols), 0.0);
  for (const auto& [var, coeff] : model.objective().terms()) {
    form.objective[static_cast<std::size_t>(
        form.first_col[static_cast<std::size_t>(var)])] += coeff;
    const int col2 = form.second_col[static_cast<std::size_t>(var)];
    if (col2 >= 0) form.objective[static_cast<std::size_t>(col2)] -= coeff;
  }
  return form;
}

}  // namespace pdw::ilp

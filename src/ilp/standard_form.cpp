#include "ilp/standard_form.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdw::ilp {

StandardForm::Csc StandardForm::buildStructuralCsc(const Model& model) {
  Csc csc;
  csc.num_rows = model.numConstraints();
  csc.num_cols = model.numVars();
  // Count pass (duplicates counted, merged during the sort below).
  std::vector<int> counts(static_cast<std::size_t>(csc.num_cols) + 1, 0);
  for (int i = 0; i < csc.num_rows; ++i)
    for (const auto& [var, coeff] : model.constraint(i).expr.terms())
      ++counts[static_cast<std::size_t>(var) + 1];
  csc.col_start.assign(static_cast<std::size_t>(csc.num_cols) + 1, 0);
  for (int j = 0; j < csc.num_cols; ++j)
    csc.col_start[static_cast<std::size_t>(j) + 1] =
        csc.col_start[static_cast<std::size_t>(j)] +
        counts[static_cast<std::size_t>(j) + 1];
  const std::size_t raw_nnz =
      static_cast<std::size_t>(csc.col_start[static_cast<std::size_t>(csc.num_cols)]);
  csc.row_index.resize(raw_nnz);
  csc.value.resize(raw_nnz);
  std::vector<int> cursor(csc.col_start.begin(), csc.col_start.end() - 1);
  for (int i = 0; i < csc.num_rows; ++i) {
    for (const auto& [var, coeff] : model.constraint(i).expr.terms()) {
      const int slot = cursor[static_cast<std::size_t>(var)]++;
      csc.row_index[static_cast<std::size_t>(slot)] = i;
      csc.value[static_cast<std::size_t>(slot)] = coeff;
    }
  }
  // Rows land in ascending order per column already (outer loop over rows),
  // so merging duplicates is a linear compaction.
  std::size_t out = 0;
  std::vector<int> merged_start(static_cast<std::size_t>(csc.num_cols) + 1, 0);
  for (int j = 0; j < csc.num_cols; ++j) {
    merged_start[static_cast<std::size_t>(j)] = static_cast<int>(out);
    std::size_t k = static_cast<std::size_t>(csc.col_start[static_cast<std::size_t>(j)]);
    const std::size_t end =
        static_cast<std::size_t>(csc.col_start[static_cast<std::size_t>(j) + 1]);
    while (k < end) {
      const int row = csc.row_index[k];
      double v = csc.value[k];
      ++k;
      while (k < end && csc.row_index[k] == row) {
        v += csc.value[k];
        ++k;
      }
      if (v != 0.0) {
        csc.row_index[out] = row;
        csc.value[out] = v;
        ++out;
      }
    }
  }
  merged_start[static_cast<std::size_t>(csc.num_cols)] = static_cast<int>(out);
  csc.row_index.resize(out);
  csc.value.resize(out);
  csc.col_start = std::move(merged_start);
  return csc;
}

StandardForm StandardForm::build(const Model& model) {
  StandardForm form;
  const int n_model = model.numVars();
  form.first_col.assign(static_cast<std::size_t>(n_model), -1);
  form.second_col.assign(static_cast<std::size_t>(n_model), -1);

  const auto addColumn = [&form](Column info) {
    form.columns.push_back(info);
    return static_cast<int>(form.columns.size()) - 1;
  };

  // Structural columns. The split decision uses the *base* bounds: branching
  // only tightens, so a base-bounded variable stays single-column at every
  // node, and a base-free variable keeps both columns (the load pins the
  // second one when a node bound makes the split unnecessary).
  for (int j = 0; j < n_model; ++j) {
    const Variable& v = model.var(j);
    if (std::isfinite(v.lower)) {
      form.first_col[static_cast<std::size_t>(j)] =
          addColumn(Column{j, 1.0, false});
    } else {
      assert(!std::isfinite(v.upper) &&
             "variables must have a finite lower bound or be fully free");
      form.first_col[static_cast<std::size_t>(j)] =
          addColumn(Column{j, 1.0, false});
      form.second_col[static_cast<std::size_t>(j)] =
          addColumn(Column{j, -1.0, false});
    }
  }

  const int m = model.numConstraints();
  form.rows.resize(static_cast<std::size_t>(m));
  form.senses.resize(static_cast<std::size_t>(m));
  form.rhs.resize(static_cast<std::size_t>(m));
  form.slack_col.assign(static_cast<std::size_t>(m), -1);
  form.artificial_col.assign(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const Constraint& c = model.constraint(i);
    auto& row = form.rows[static_cast<std::size_t>(i)];
    for (const auto& [var, coeff] : c.expr.terms()) {
      row.emplace_back(form.first_col[static_cast<std::size_t>(var)], coeff);
      const int col2 = form.second_col[static_cast<std::size_t>(var)];
      if (col2 >= 0) row.emplace_back(col2, -coeff);
    }
    form.senses[static_cast<std::size_t>(i)] = c.sense;
    form.rhs[static_cast<std::size_t>(i)] = c.rhs;
  }

  // Reserved slack/surplus + artificial columns, in row order so the layout
  // matches the historical per-solve construction closely.
  for (int i = 0; i < m; ++i) {
    if (form.senses[static_cast<std::size_t>(i)] != Sense::Equal)
      form.slack_col[static_cast<std::size_t>(i)] =
          addColumn(Column{-1, 1.0, false});
    form.artificial_col[static_cast<std::size_t>(i)] =
        addColumn(Column{-1, 1.0, true});
  }

  form.num_rows = m;
  form.num_cols = static_cast<int>(form.columns.size());
  form.csc = buildStructuralCsc(model);

  form.objective.assign(static_cast<std::size_t>(form.num_cols), 0.0);
  for (const auto& [var, coeff] : model.objective().terms()) {
    form.objective[static_cast<std::size_t>(
        form.first_col[static_cast<std::size_t>(var)])] += coeff;
    const int col2 = form.second_col[static_cast<std::size_t>(var)];
    if (col2 >= 0) form.objective[static_cast<std::size_t>(col2)] -= coeff;
  }
  return form;
}

}  // namespace pdw::ilp

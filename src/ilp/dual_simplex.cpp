#include "ilp/dual_simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ilp/basis_lu.h"
#include "obs/flight.h"

namespace pdw::ilp {

SimplexEngine::SimplexEngine(const Model& model, const SolveParams& params)
    : model_(model), params_(params), form_(StandardForm::build(model)) {
  num_rows_ = form_.num_rows;
  num_cols_ = form_.num_cols;
  width_ = num_cols_ + 1;  // + rhs column
}

double* SimplexEngine::rowPtr(int row) {
  return tableau_.data() +
         static_cast<std::size_t>(row) * static_cast<std::size_t>(width_);
}
const double* SimplexEngine::rowPtr(int row) const {
  return tableau_.data() +
         static_cast<std::size_t>(row) * static_cast<std::size_t>(width_);
}

double SimplexEngine::debugMaxRowResidual() const {
  if (tableau_.empty()) return 0.0;
  std::vector<double> w(static_cast<std::size_t>(num_cols_), 0.0);
  for (int i = 0; i < num_rows_; ++i)
    w[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        rowPtr(i)[num_cols_];
  for (int c = 0; c < num_cols_; ++c)
    if (complemented_[static_cast<std::size_t>(c)])
      w[static_cast<std::size_t>(c)] =
          col_upper_[static_cast<std::size_t>(c)] -
          w[static_cast<std::size_t>(c)];
  double worst = 0.0;
  for (int i = 0; i < num_rows_; ++i) {
    double activity = 0.0;
    for (const auto& [col, coeff] : form_.rows[static_cast<std::size_t>(i)])
      activity += coeff * (w[static_cast<std::size_t>(col)] +
                           shift_[static_cast<std::size_t>(col)]);
    const double f = debug_flip_[static_cast<std::size_t>(i)] ? -1.0 : 1.0;
    double lhs = f * (activity - form_.rhs[static_cast<std::size_t>(i)]);
    const int slack = form_.slack_col[static_cast<std::size_t>(i)];
    if (slack >= 0)
      lhs += debug_slack_sign_[static_cast<std::size_t>(i)] *
             w[static_cast<std::size_t>(slack)];
    const int art = form_.artificial_col[static_cast<std::size_t>(i)];
    if (art >= 0) lhs += w[static_cast<std::size_t>(art)];
    worst = std::max(worst, std::abs(lhs));
  }
  return worst;
}

std::int64_t SimplexEngine::blandThreshold() const {
  if (params_.bland_iteration_override > 0)
    return params_.bland_iteration_override;
  return 2000 + 40LL * (num_rows_ + num_cols_);
}

bool SimplexEngine::isEnteringCandidate(int col, bool phase1) const {
  const StandardForm::Column& info =
      form_.columns[static_cast<std::size_t>(col)];
  if (!phase1 && info.artificial) return false;
  if (col_upper_[static_cast<std::size_t>(col)] < kEps) return false;  // fixed
  return true;
}

// ---- cold path: two-phase primal from scratch ----------------------------

void SimplexEngine::loadCold(const std::vector<double>& lower,
                             const std::vector<double>& upper) {
  const int n_model = model_.numVars();

  tableau_.assign(static_cast<std::size_t>(num_rows_ + 2) *
                      static_cast<std::size_t>(width_),
                  0.0);
  basis_.assign(static_cast<std::size_t>(num_rows_), -1);
  is_basic_.assign(static_cast<std::size_t>(num_cols_), 0);
  complemented_.assign(static_cast<std::size_t>(num_cols_), 0);
  shift_.assign(static_cast<std::size_t>(num_cols_), 0.0);
  col_upper_.assign(static_cast<std::size_t>(num_cols_), kInfinity);
  cur_lower_ = lower;
  cur_upper_ = upper;
  has_artificials_ = false;

  // Column bounds/offsets from the node's bound vectors.
  for (int j = 0; j < n_model; ++j) {
    const double lb = lower[static_cast<std::size_t>(j)];
    const double ub = upper[static_cast<std::size_t>(j)];
    const int c1 = form_.first_col[static_cast<std::size_t>(j)];
    const int c2 = form_.second_col[static_cast<std::size_t>(j)];
    if (std::isfinite(lb)) {
      shift_[static_cast<std::size_t>(c1)] = lb;
      col_upper_[static_cast<std::size_t>(c1)] =
          std::isfinite(ub) ? ub - lb : kInfinity;
      // A base-free variable bounded at this node: pin the negative half.
      if (c2 >= 0) col_upper_[static_cast<std::size_t>(c2)] = 0.0;
    } else {
      assert(c2 >= 0 && !std::isfinite(ub) &&
             "variables must have a finite lower bound or be fully free");
    }
  }

  // Rows: rhs shifted by the offsets, sign-flipped non-negative, slack or
  // artificial made basic. Reserved artificial columns a load does not use
  // stay all-zero and pinned at upper bound 0.
  debug_flip_.assign(static_cast<std::size_t>(num_rows_), 0);
  debug_slack_sign_.assign(static_cast<std::size_t>(num_rows_), 0.0);
  for (int i = 0; i < num_rows_; ++i) {
    double* row = rowPtr(i);
    double rhs = form_.rhs[static_cast<std::size_t>(i)];
    for (const auto& [col, coeff] : form_.rows[static_cast<std::size_t>(i)]) {
      row[col] += coeff;
      rhs -= coeff * shift_[static_cast<std::size_t>(col)];
    }
    Sense sense = form_.senses[static_cast<std::size_t>(i)];
    if (rhs < 0.0) {
      for (int c = 0; c < num_cols_; ++c) row[c] = -row[c];
      rhs = -rhs;
      if (sense == Sense::LessEqual) sense = Sense::GreaterEqual;
      else if (sense == Sense::GreaterEqual) sense = Sense::LessEqual;
      debug_flip_[static_cast<std::size_t>(i)] = 1;
    }
    debug_slack_sign_[static_cast<std::size_t>(i)] =
        sense == Sense::LessEqual ? 1.0
        : form_.slack_col[static_cast<std::size_t>(i)] >= 0 ? -1.0
                                                            : 0.0;
    const int slack = form_.slack_col[static_cast<std::size_t>(i)];
    const int artificial = form_.artificial_col[static_cast<std::size_t>(i)];
    col_upper_[static_cast<std::size_t>(artificial)] = 0.0;
    if (sense == Sense::LessEqual) {
      row[slack] = 1.0;
      basis_[static_cast<std::size_t>(i)] = slack;
    } else {
      if (slack >= 0) row[slack] = -1.0;  // surplus
      row[artificial] = 1.0;
      col_upper_[static_cast<std::size_t>(artificial)] = kInfinity;
      basis_[static_cast<std::size_t>(i)] = artificial;
      has_artificials_ = true;
    }
    is_basic_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(i)])] = 1;
    row[num_cols_] = rhs;
  }

  // Phase-2 cost row: the model objective over structural columns.
  double* cost2 = rowPtr(num_rows_);
  for (int c = 0; c < num_cols_; ++c)
    cost2[c] = form_.objective[static_cast<std::size_t>(c)];
  // Phase-1 cost row: +1 on the artificials in use, then eliminate the
  // (artificial) basis entries so the row holds genuine reduced costs.
  double* cost1 = rowPtr(num_rows_ + 1);
  for (int c = 0; c < num_cols_; ++c)
    if (form_.columns[static_cast<std::size_t>(c)].artificial &&
        col_upper_[static_cast<std::size_t>(c)] > kEps)
      cost1[c] = 1.0;
  for (int i = 0; i < num_rows_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (form_.columns[static_cast<std::size_t>(b)].artificial) {
      const double* row = rowPtr(i);
      for (int c = 0; c <= num_cols_; ++c) cost1[c] -= row[c];
    }
  }
}

LpResult SimplexEngine::runCold(const std::vector<double>& lower,
                                const std::vector<double>& upper) {
  ready_ = false;
  warm_since_cold_ = 0;

  LpResult result;
  for (int j = 0; j < model_.numVars(); ++j) {
    if (lower[static_cast<std::size_t>(j)] >
        upper[static_cast<std::size_t>(j)] + kEps) {
      result.status = LpStatus::Infeasible;
      result.iterations = call_iterations_;
      return result;
    }
  }

  loadCold(lower, upper);

  // Phase 1: minimize the sum of artificial variables.
  if (has_artificials_) {
    const LpStatus phase1 = iterate(/*phase1=*/true);
    result.iterations = call_iterations_;
    if (phase1 == LpStatus::IterLimit) {
      result.status = LpStatus::IterLimit;
      return result;
    }
    // Phase-1 objective is bounded below by zero, so Unbounded cannot
    // happen; any other non-optimal outcome is a numerical failure.
    if (phase1 != LpStatus::Optimal) {
      result.status = LpStatus::IterLimit;
      return result;
    }
    if (phase1Infeasibility() > 1e-6) {
      result.status = LpStatus::Infeasible;
      return result;
    }
    expelArtificials();
  }

  const LpStatus phase2 = iterate(/*phase1=*/false);
  result.iterations = call_iterations_;
  if (phase2 != LpStatus::Optimal) {
    result.status = phase2;
    return result;
  }

  result.status = LpStatus::Optimal;
  result.values = extractValues();
  result.objective = model_.objective().evaluate(result.values);
  ready_ = true;
  return result;
}

LpResult SimplexEngine::coldSolve(const std::vector<double>& lower,
                                  const std::vector<double>& upper) {
  call_iterations_ = 0;
  call_dual_pivots_ = 0;
  return runCold(lower, upper);
}

LpResult SimplexEngine::solve(const std::vector<double>& lower,
                              const std::vector<double>& upper,
                              bool allow_warm, bool* used_warm,
                              std::int64_t* dual_pivots) {
  call_iterations_ = 0;
  call_dual_pivots_ = 0;
  bool warm = false;
  LpResult result;
  if (allow_warm && ready_ && warm_since_cold_ < kColdRefreshInterval) {
    if (std::optional<LpResult> r = warmSolve(lower, upper)) {
      warm = true;
      ++warm_since_cold_;
      result = std::move(*r);
    }
  }
  if (!warm) result = runCold(lower, upper);
  if (used_warm) *used_warm = warm;
  if (dual_pivots) *dual_pivots = call_dual_pivots_;
  return result;
}

// ---- warm path: bound deltas + dual simplex ------------------------------

std::optional<LpResult> SimplexEngine::warmSolve(
    const std::vector<double>& lower, const std::vector<double>& upper) {
  const int n_model = model_.numVars();

  // Validation pass: nothing is mutated until the whole delta is known to
  // be expressible, so bailing out leaves the engine state untouched.
  for (int j = 0; j < n_model; ++j) {
    const double lb = lower[static_cast<std::size_t>(j)];
    const double ub = upper[static_cast<std::size_t>(j)];
    if (lb > ub + kEps) {
      // Trivially empty box: report without touching the tableau, so the
      // engine can keep warm-starting from its current state.
      LpResult result;
      result.status = LpStatus::Infeasible;
      result.iterations = call_iterations_;
      return result;
    }
    if (lb == cur_lower_[static_cast<std::size_t>(j)] &&
        ub == cur_upper_[static_cast<std::size_t>(j)])
      continue;
    // Split (base-free) variables and a complemented column losing its
    // finite upper bound cannot absorb an in-place bound delta.
    if (form_.second_col[static_cast<std::size_t>(j)] >= 0) return std::nullopt;
    const int c = form_.first_col[static_cast<std::size_t>(j)];
    if (complemented_[static_cast<std::size_t>(c)] && !std::isfinite(ub))
      return std::nullopt;
  }

  // Apply the deltas. For column c with effective offset e (its lower
  // bound, or its upper bound while complemented), every row r of the
  // tableau — constraint and cost rows alike — satisfies
  // d(rhs_r)/d(e) = -sigma * t_rc with sigma = -1 iff complemented, because
  // pivots and complements are uniform row/column operations over the
  // initially loaded system (DESIGN.md §11).
  for (int j = 0; j < n_model; ++j) {
    const double lb = lower[static_cast<std::size_t>(j)];
    const double ub = upper[static_cast<std::size_t>(j)];
    if (lb == cur_lower_[static_cast<std::size_t>(j)] &&
        ub == cur_upper_[static_cast<std::size_t>(j)])
      continue;
    const int c = form_.first_col[static_cast<std::size_t>(j)];
    const bool comp = complemented_[static_cast<std::size_t>(c)] != 0;
    const double sigma = comp ? -1.0 : 1.0;
    const double e_old =
        comp ? cur_upper_[static_cast<std::size_t>(j)]
             : cur_lower_[static_cast<std::size_t>(j)];
    const double e_new = comp ? ub : lb;
    const double delta = e_new - e_old;
    if (delta != 0.0) {
      for (int r = 0; r < num_rows_ + 2; ++r) {
        double* row = rowPtr(r);
        if (row[c] != 0.0) row[num_cols_] -= sigma * row[c] * delta;
      }
    }
    shift_[static_cast<std::size_t>(c)] = lb;
    col_upper_[static_cast<std::size_t>(c)] =
        std::isfinite(ub) ? ub - lb : kInfinity;
    cur_lower_[static_cast<std::size_t>(j)] = lb;
    cur_upper_[static_cast<std::size_t>(j)] = ub;
  }

  // Dual feasibility repair. Bound changes never touch reduced costs, but
  // loosening a bound can resurrect a column that was pinned (lb == ub) at
  // the previous optimum with a negative reduced cost — it was allowed to
  // stay at the "wrong" bound because it could not move. Flipping such a
  // column to its other bound (complementing negates its reduced cost)
  // restores dual feasibility; a genuinely drifted column with no finite
  // bound to flip to forces a cold rebuild.
  const double* cost2 = rowPtr(num_rows_);
  for (int c = 0; c < num_cols_; ++c) {
    if (is_basic_[static_cast<std::size_t>(c)]) continue;
    if (!isEnteringCandidate(c, /*phase1=*/false)) continue;
    if (cost2[c] < -1e-7) {
      if (!std::isfinite(col_upper_[static_cast<std::size_t>(c)]))
        return std::nullopt;
      complementColumn(c);
    }
  }

  const DualStatus status = dualIterate();
  if (status == DualStatus::Stalled) {
    // Degenerate-pivot stall aborts the warm re-solve; the caller falls
    // back to a cold solve (surfacing as a WarmMiss in the lane's stats).
    if (flight_)
      flight_->record(obs::FlightEventKind::DualStall, -1,
                      static_cast<double>(call_dual_pivots_));
    return std::nullopt;
  }

  LpResult result;
  result.iterations = call_iterations_;
  if (status == DualStatus::Infeasible) {
    // Never report infeasibility from the warm path: the verdict comes from
    // a single violated row at the end of a pivot chain, exactly where
    // accumulated amplification noise concentrates, so a drifted tableau can
    // "prove" infeasibility of a feasible box (and the drifted state would
    // then poison every later warm solve). Fall back to the cold two-phase
    // solve, which both confirms the verdict exactly and rebuilds the
    // tableau from scratch.
    return std::nullopt;
  }

  // Post-solve drift scan (cheap O(n)): dual pivots should have preserved
  // reduced-cost non-negativity; rescue via cold solve if they did not.
  for (int c = 0; c < num_cols_; ++c) {
    if (is_basic_[static_cast<std::size_t>(c)]) continue;
    if (!isEnteringCandidate(c, /*phase1=*/false)) continue;
    if (cost2[c] < -1e-6) return std::nullopt;
  }

  result.status = LpStatus::Optimal;
  result.values = extractValues();
  result.objective = model_.objective().evaluate(result.values);
  ready_ = true;
  return result;
}

SimplexEngine::DualStatus SimplexEngine::dualIterate() {
  // A healthy warm re-solve takes a handful of pivots; anything beyond this
  // cap is cheaper to restart cold than to keep pivoting. The cap scales
  // with the model because the dual path also re-optimizes across *large*
  // bound deltas (best-first jumps to a distant subtree), which legitimately
  // needs more pivots than the one-bound child-node case.
  const std::int64_t cap = 1000 + 4LL * (num_rows_ + num_cols_);
  const std::int64_t bland_threshold = blandThreshold();
  const double tol = params_.feasibility_tol;
  std::int64_t local = 0;

  while (true) {
    if (local >= cap) return DualStatus::Stalled;
    const bool bland = local > bland_threshold;

    // Leaving row: the basic variable most out of bounds (below zero, or
    // above its upper bound — the latter is complemented first so it leaves
    // at zero like every dual step). Bland mode takes the smallest row
    // index instead, for termination under degeneracy.
    int leave = -1;
    bool at_upper = false;
    double worst = tol;
    for (int i = 0; i < num_rows_; ++i) {
      // A row whose basic column is still an (expelled, pinned-at-zero)
      // artificial is redundant: its structural coefficients are all below
      // the expel threshold, so its rhs only carries accumulated bound-delta
      // noise. Treating that noise as a bound violation either "proves"
      // infeasibility from a row that constrains nothing or forces a pivot
      // on a ~1e-7 element, amplifying the noise into the whole tableau and
      // corrupting every later warm solve.
      if (form_.columns[static_cast<std::size_t>(
                            basis_[static_cast<std::size_t>(i)])]
              .artificial)
        continue;
      const double value = rowPtr(i)[num_cols_];
      const double ub = col_upper_[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(i)])];
      double viol = -value;
      bool up = false;
      if (std::isfinite(ub) && value - ub > viol) {
        viol = value - ub;
        up = true;
      }
      if (viol > worst) {
        leave = i;
        at_upper = up;
        if (bland) break;
        worst = viol;
      }
    }
    if (leave < 0) return DualStatus::Optimal;
    if (at_upper) complementBasic(leave);

    // Dual ratio test: entering column minimizing cost_c / -t_c over
    // columns with t_c < 0 (ties: larger |t_c|, or smaller index under
    // Bland). No candidate means the row proves primal infeasibility.
    const double* row = rowPtr(leave);
    const double* costs = rowPtr(num_rows_);
    int entering = -1;
    bool tiny_candidate = false;
    double best_ratio = kInfinity;
    double best_mag = 0.0;
    for (int c = 0; c < num_cols_; ++c) {
      if (!isEnteringCandidate(c, /*phase1=*/false)) continue;
      const double alpha = row[c];
      if (alpha >= -kEps) continue;
      // Pivoting on a near-kEps element scales the pivot row by up to 1e9,
      // amplifying accumulated rounding noise into macroscopic tableau
      // corruption that every later warm solve inherits. Such columns are
      // not admissible pivots; if they are the only candidates, the state
      // is numerically unsafe and the caller must rebuild cold.
      if (alpha > -kDualPivotTol) {
        tiny_candidate = true;
        continue;
      }
      double ratio = costs[c] / (-alpha);
      if (ratio < 0.0) ratio = 0.0;  // dual-feasibility noise
      const bool strictly_better = ratio < best_ratio - kEps;
      const bool tie =
          !strictly_better && ratio <= best_ratio + kEps && entering >= 0 &&
          (bland ? c < entering : std::abs(alpha) > best_mag);
      if (strictly_better || (entering < 0) || tie) {
        best_ratio = std::min(ratio, best_ratio);
        entering = c;
        best_mag = std::abs(alpha);
      }
    }
    if (entering < 0) {
      // Only numerically-unsafe candidates: neither pivoting nor an
      // infeasibility verdict is trustworthy — fall back to a cold solve.
      if (tiny_candidate) return DualStatus::Stalled;
      return DualStatus::Infeasible;
    }

    pivot(leave, entering);
    ++call_iterations_;
    ++call_dual_pivots_;
    ++local;
  }
}

// ---- primal simplex internals (shared with the cold path) ----------------

LpStatus SimplexEngine::iterate(bool phase1) {
  const int cost_row = phase1 ? num_rows_ + 1 : num_rows_;
  const std::int64_t bland_threshold = blandThreshold();
  // Per-run cap: a healthy simplex finishes in O(rows + cols) pivots;
  // anything far beyond that is numerical trouble, and under
  // branch-and-bound one pathological LP must not eat the whole budget.
  const std::int64_t per_run_cap = std::min<std::int64_t>(
      params_.simplex_iteration_limit,
      120LL * (num_rows_ + num_cols_) + 5000);
  std::int64_t local_iterations = 0;

  while (true) {
    if (call_iterations_ >= per_run_cap) return LpStatus::IterLimit;
    const bool bland = local_iterations > bland_threshold;

    // Pricing: pick the entering column.
    const double* costs = rowPtr(cost_row);
    int entering = -1;
    double best = -params_.feasibility_tol;
    for (int col = 0; col < num_cols_; ++col) {
      if (costs[col] >= -params_.feasibility_tol) continue;
      if (!isEnteringCandidate(col, phase1)) continue;
      if (bland) {
        entering = col;
        break;
      }
      if (costs[col] < best) {
        best = costs[col];
        entering = col;
      }
    }
    if (entering < 0) return LpStatus::Optimal;

    ++call_iterations_;
    ++local_iterations;

    // Ratio test. Every nonbasic variable sits at zero (complement
    // invariant), so the entering variable increases from zero by t.
    double t_limit = col_upper_[static_cast<std::size_t>(entering)];
    int leave_row = -1;
    bool leave_at_upper = false;
    double best_pivot_mag = 0.0;
    for (int i = 0; i < num_rows_; ++i) {
      const double* row = rowPtr(i);
      const double alpha = row[entering];
      const double value = row[num_cols_];
      double ratio;
      bool at_upper;
      if (alpha > kEps) {
        ratio = value / alpha;  // basic drops to its lower bound (0)
        at_upper = false;
      } else if (alpha < -kEps) {
        const double ub = col_upper_[static_cast<std::size_t>(
            basis_[static_cast<std::size_t>(i)])];
        if (!std::isfinite(ub)) continue;
        ratio = (ub - value) / (-alpha);  // basic rises to its upper bound
        at_upper = true;
      } else {
        continue;
      }
      if (ratio < 0.0) ratio = 0.0;  // numerical noise on degenerate rows
      const bool strictly_better = ratio < t_limit - kEps;
      const bool tie =
          !strictly_better && ratio <= t_limit + kEps && leave_row >= 0 &&
          pivotPreferred(i, alpha, best_pivot_mag, bland, leave_row);
      if (strictly_better || tie) {
        t_limit = std::min(ratio, t_limit);
        leave_row = i;
        leave_at_upper = at_upper;
        best_pivot_mag = std::abs(alpha);
      }
    }

    if (!std::isfinite(t_limit)) return LpStatus::Unbounded;

    if (leave_row < 0) {
      // The entering variable's own upper bound binds first: bound flip.
      complementColumn(entering);
      continue;
    }

    if (leave_at_upper) {
      // The leaving basic variable exits at its upper bound; complement it
      // so it leaves at zero like every other nonbasic variable.
      complementBasic(leave_row);
    }
    pivot(leave_row, entering);
  }
}

bool SimplexEngine::pivotPreferred(int row, double alpha, double best_mag,
                                   bool bland, int current_row) const {
  if (bland) {
    return basis_[static_cast<std::size_t>(row)] <
           basis_[static_cast<std::size_t>(current_row)];
  }
  return std::abs(alpha) > best_mag;
}

void SimplexEngine::complementColumn(int col) {
  const double ub = col_upper_[static_cast<std::size_t>(col)];
  assert(std::isfinite(ub));
  for (int i = 0; i < num_rows_ + 2; ++i) {
    double* row = rowPtr(i);
    row[num_cols_] -= row[col] * ub;
    row[col] = -row[col];
  }
  complemented_[static_cast<std::size_t>(col)] ^= 1;
}

void SimplexEngine::complementBasic(int row) {
  const int b = basis_[static_cast<std::size_t>(row)];
  complementColumn(b);
  double* r = rowPtr(row);
  for (int c = 0; c <= num_cols_; ++c) r[c] = -r[c];
}

void SimplexEngine::pivot(int row, int col) {
  double* pivot_row = rowPtr(row);
  const double pivot_value = pivot_row[col];
  assert(std::abs(pivot_value) > kEps);
  const double inv = 1.0 / pivot_value;
  for (int c = 0; c <= num_cols_; ++c) pivot_row[c] *= inv;
  pivot_row[col] = 1.0;  // exact

  for (int i = 0; i < num_rows_ + 2; ++i) {
    if (i == row) continue;
    double* r = rowPtr(i);
    const double factor = r[col];
    if (factor == 0.0) continue;
    for (int c = 0; c <= num_cols_; ++c) r[c] -= factor * pivot_row[c];
    r[col] = 0.0;  // exact
  }
  is_basic_[static_cast<std::size_t>(
      basis_[static_cast<std::size_t>(row)])] = 0;
  is_basic_[static_cast<std::size_t>(col)] = 1;
  basis_[static_cast<std::size_t>(row)] = col;
}

double SimplexEngine::phase1Infeasibility() const {
  double total = 0.0;
  for (int i = 0; i < num_rows_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (form_.columns[static_cast<std::size_t>(b)].artificial)
      total += std::max(0.0, rowPtr(i)[num_cols_]);
  }
  return total;
}

void SimplexEngine::expelArtificials() {
  for (int i = 0; i < num_rows_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    if (!form_.columns[static_cast<std::size_t>(b)].artificial) continue;
    const double* row = rowPtr(i);
    int replacement = -1;
    for (int col = 0; col < num_cols_; ++col) {
      if (form_.columns[static_cast<std::size_t>(col)].artificial) continue;
      if (std::abs(row[col]) > 1e-7) {
        replacement = col;
        break;
      }
    }
    if (replacement >= 0) {
      pivot(i, replacement);
    }
    // else: the row is redundant; the artificial stays basic at zero.
  }
  // Pin every nonbasic artificial so it can never re-enter.
  for (int col = 0; col < num_cols_; ++col)
    if (form_.columns[static_cast<std::size_t>(col)].artificial)
      col_upper_[static_cast<std::size_t>(col)] = 0.0;
}

std::vector<double> SimplexEngine::extractValues() const {
  std::vector<double> col_value(static_cast<std::size_t>(num_cols_), 0.0);
  for (int i = 0; i < num_rows_; ++i)
    col_value[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        rowPtr(i)[num_cols_];
  std::vector<double> values(static_cast<std::size_t>(model_.numVars()), 0.0);
  for (int col = 0; col < num_cols_; ++col) {
    const StandardForm::Column& info =
        form_.columns[static_cast<std::size_t>(col)];
    if (info.model_var < 0) continue;
    double v = col_value[static_cast<std::size_t>(col)];
    if (complemented_[static_cast<std::size_t>(col)])
      v = col_upper_[static_cast<std::size_t>(col)] - v;
    values[static_cast<std::size_t>(info.model_var)] +=
        info.sign * (v + shift_[static_cast<std::size_t>(col)]);
  }
  return values;
}

void SimplexEngine::collectReducedCostFixes(double gap, double integrality_tol,
                                            std::vector<Fix>* out) const {
  if (!ready_ || !std::isfinite(gap)) return;
  const double* cost2 = rowPtr(num_rows_);
  for (int c = 0; c < num_cols_; ++c) {
    const StandardForm::Column& info =
        form_.columns[static_cast<std::size_t>(c)];
    if (info.model_var < 0 || info.sign < 0) continue;
    const VarId var = info.model_var;
    // Split variables map one model variable onto two columns; the single
    // -column reduced-cost argument below does not apply to them.
    if (form_.second_col[static_cast<std::size_t>(var)] >= 0) continue;
    if (model_.var(var).type == VarType::Continuous) continue;
    if (is_basic_[static_cast<std::size_t>(c)]) continue;
    if (col_upper_[static_cast<std::size_t>(c)] < kEps) continue;  // fixed
    // Nonbasic at a bound: moving the variable by one integer step costs at
    // least its reduced cost, so cost > gap proves no improving solution
    // moves it.
    if (cost2[c] <= gap + 1e-6) continue;
    double value = shift_[static_cast<std::size_t>(c)];
    if (complemented_[static_cast<std::size_t>(c)])
      value += col_upper_[static_cast<std::size_t>(c)];
    // Only fix to (near-)integral bounds — an unattainable fractional bound
    // would invalidate the one-integer-step cost argument.
    if (std::abs(value - std::round(value)) > integrality_tol) continue;
    out->push_back(Fix{var, std::round(value)});
  }
}

bool SimplexEngine::tableauRow(VarId var, TableauRowView* out) const {
  const int n = model_.numVars();
  const int m = form_.num_rows;
  if (!ready_ || out == nullptr || var < 0 || var >= n) return false;
  assert(m == num_rows_);

  // Map each basic tableau column to its canonical column. Artificial
  // columns have no canonical counterpart, and a free-split variable with
  // both halves basic would map one canonical column twice; either case
  // aborts the extraction (the separator skips the variable).
  std::vector<int> slack_row(static_cast<std::size_t>(num_cols_), -1);
  for (int r = 0; r < m; ++r) {
    const int sc = form_.slack_col[static_cast<std::size_t>(r)];
    if (sc >= 0) slack_row[static_cast<std::size_t>(sc)] = r;
  }
  const int total = n + m;
  std::vector<int> canon_basis(static_cast<std::size_t>(m), -1);
  std::vector<char> is_canon_basic(static_cast<std::size_t>(total), 0);
  int pos = -1;
  for (int i = 0; i < num_rows_; ++i) {
    const int c = basis_[static_cast<std::size_t>(i)];
    const StandardForm::Column& info =
        form_.columns[static_cast<std::size_t>(c)];
    int canon = -1;
    if (info.artificial) return false;
    if (info.model_var >= 0) {
      // Either half of a free split represents the same model variable; the
      // canonical basis is equally nonsingular with the +1-signed column.
      canon = info.model_var;
    } else {
      const int r = slack_row[static_cast<std::size_t>(c)];
      if (r < 0) return false;
      canon = n + r;
    }
    if (is_canon_basic[static_cast<std::size_t>(canon)]) return false;
    is_canon_basic[static_cast<std::size_t>(canon)] = 1;
    canon_basis[static_cast<std::size_t>(i)] = canon;
    if (canon == var) pos = i;
  }
  if (pos < 0) return false;  // `var` is nonbasic at this optimum

  if (!canon_csc_built_) {
    canon_csc_ = StandardForm::buildStructuralCsc(model_);
    canon_csc_built_ = true;
  }

  // Factorize the canonical basis (structural columns from the CSC, slack
  // columns are unit vectors); one BTRAN with e_pos yields row `pos` of
  // B^{-1}, indexed by constraint row.
  std::vector<BasisLu::SparseColumn> cols(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const int canon = canon_basis[static_cast<std::size_t>(i)];
    BasisLu::SparseColumn& col = cols[static_cast<std::size_t>(i)];
    if (canon < n) {
      for (int k = canon_csc_.col_start[static_cast<std::size_t>(canon)];
           k < canon_csc_.col_start[static_cast<std::size_t>(canon) + 1]; ++k)
        col.emplace_back(canon_csc_.row_index[static_cast<std::size_t>(k)],
                         canon_csc_.value[static_cast<std::size_t>(k)]);
    } else {
      col.emplace_back(canon - n, 1.0);
    }
  }
  BasisLu lu;
  if (!lu.factor(m, cols)) return false;
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  y[static_cast<std::size_t>(pos)] = 1.0;
  lu.btran(y);

  // Current point in canonical space: model values unwound from the
  // tableau, slack values from the row activities.
  const std::vector<double> xv = extractValues();
  std::vector<double> xs(static_cast<std::size_t>(m), 0.0);
  for (int r = 0; r < m; ++r) {
    const Constraint& con = model_.constraint(r);
    xs[static_cast<std::size_t>(r)] = con.rhs - con.expr.evaluate(xv);
  }

  out->coeff.assign(static_cast<std::size_t>(total), 0.0);
  out->status.assign(static_cast<std::size_t>(total), ColStatus::Basic);
  out->lower.resize(static_cast<std::size_t>(total));
  out->upper.resize(static_cast<std::size_t>(total));
  double rhs = xv[static_cast<std::size_t>(var)];
  for (int j = 0; j < total; ++j) {
    double lo, up, value;
    if (j < n) {
      lo = cur_lower_[static_cast<std::size_t>(j)];
      up = cur_upper_[static_cast<std::size_t>(j)];
      value = xv[static_cast<std::size_t>(j)];
    } else {
      const Sense sense = model_.constraint(j - n).sense;
      lo = sense == Sense::LessEqual ? 0.0
           : sense == Sense::Equal   ? 0.0
                                     : -kInfinity;
      up = sense == Sense::GreaterEqual ? 0.0
           : sense == Sense::Equal      ? 0.0
                                        : kInfinity;
      value = xs[static_cast<std::size_t>(j - n)];
    }
    out->lower[static_cast<std::size_t>(j)] = lo;
    out->upper[static_cast<std::size_t>(j)] = up;
    if (is_canon_basic[static_cast<std::size_t>(j)]) continue;
    double a;
    if (j < n) {
      a = 0.0;
      for (int k = canon_csc_.col_start[static_cast<std::size_t>(j)];
           k < canon_csc_.col_start[static_cast<std::size_t>(j) + 1]; ++k)
        a += y[static_cast<std::size_t>(
                canon_csc_.row_index[static_cast<std::size_t>(k)])] *
             canon_csc_.value[static_cast<std::size_t>(k)];
    } else {
      a = y[static_cast<std::size_t>(j - n)];
    }
    out->coeff[static_cast<std::size_t>(j)] = a;
    rhs += a * value;
    const double tol = 1e-6 * (1.0 + std::abs(value));
    if (up - lo < kEps || std::abs(value - lo) <= tol) {
      out->status[static_cast<std::size_t>(j)] = ColStatus::AtLower;
    } else if (std::abs(value - up) <= tol) {
      out->status[static_cast<std::size_t>(j)] = ColStatus::AtUpper;
    } else if (!std::isfinite(lo) && !std::isfinite(up)) {
      out->status[static_cast<std::size_t>(j)] = ColStatus::Free;
    } else {
      return false;  // nonbasic resting strictly inside its bounds
    }
  }
  out->rhs = rhs;
  return true;
}

}  // namespace pdw::ilp

#include "ilp/lp_backend.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "ilp/dual_simplex.h"
#include "ilp/revised_simplex.h"
#include "util/logging.h"

namespace pdw::ilp {

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, LpBackendFactory> factories;

  Registry() {
    factories["dense"] = [](const Model& model, const SolveParams& params) {
      return std::make_unique<SimplexEngine>(model, params);
    };
    factories["revised"] = [](const Model& model, const SolveParams& params) {
      return std::make_unique<RevisedSimplex>(model, params);
    };
  }

  static Registry& instance() {
    static Registry registry;
    return registry;
  }
};

}  // namespace

void registerLpBackend(const std::string& name, LpBackendFactory factory) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.factories[name] = std::move(factory);
}

const std::string& defaultLpBackendName() {
  static const std::string name = "revised";
  return name;
}

std::unique_ptr<LpBackend> makeLpBackend(const std::string& name,
                                         const Model& model,
                                         const SolveParams& params) {
  Registry& reg = Registry::instance();
  const std::string& resolved = name.empty() ? defaultLpBackendName() : name;
  LpBackendFactory factory;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.factories.find(resolved);
    if (it == reg.factories.end()) {
      PDW_LOG(Warn, "ilp") << "unknown LP backend '" << resolved
                           << "', using '" << defaultLpBackendName() << "'";
      it = reg.factories.find(defaultLpBackendName());
    }
    factory = it->second;
  }
  return factory(model, params);
}

std::vector<std::string> lpBackendNames() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  return names;
}

}  // namespace pdw::ilp

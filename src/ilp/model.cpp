#include "ilp/model.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace pdw::ilp {

const char* toString(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "Optimal";
    case SolveStatus::Feasible: return "Feasible";
    case SolveStatus::Infeasible: return "Infeasible";
    case SolveStatus::Unbounded: return "Unbounded";
    case SolveStatus::IterLimit: return "IterLimit";
    case SolveStatus::NodeLimit: return "NodeLimit";
    case SolveStatus::TimeLimit: return "TimeLimit";
    case SolveStatus::Error: return "Error";
  }
  return "?";
}

const char* toString(Sense sense) {
  switch (sense) {
    case Sense::LessEqual: return "<=";
    case Sense::GreaterEqual: return ">=";
    case Sense::Equal: return "=";
  }
  return "?";
}

VarId Model::addContinuous(double lower, double upper, std::string name) {
  assert(lower <= upper);
  vars_.push_back(Variable{std::move(name), VarType::Continuous, lower, upper});
  return static_cast<VarId>(vars_.size()) - 1;
}

VarId Model::addInteger(double lower, double upper, std::string name) {
  assert(lower <= upper);
  vars_.push_back(Variable{std::move(name), VarType::Integer, lower, upper});
  return static_cast<VarId>(vars_.size()) - 1;
}

VarId Model::addBinary(std::string name) {
  vars_.push_back(Variable{std::move(name), VarType::Binary, 0.0, 1.0});
  return static_cast<VarId>(vars_.size()) - 1;
}

ConstraintId Model::addConstr(const LinExpr& expr, Sense sense, double rhs,
                              std::string name) {
  Constraint c;
  c.name = std::move(name);
  c.expr = expr;
  c.rhs = rhs - expr.constant();
  c.expr.setConstant(0.0);
  c.sense = sense;
  constraints_.push_back(std::move(c));
  return static_cast<ConstraintId>(constraints_.size()) - 1;
}

void Model::setObjective(LinExpr objective) {
  objective_ = std::move(objective);
}

void Model::setBounds(VarId var, double lower, double upper) {
  assert(lower <= upper);
  auto& v = vars_[static_cast<std::size_t>(var)];
  v.lower = lower;
  v.upper = upper;
}

void Model::setConstraintCoefficient(ConstraintId c, VarId var, double coeff) {
  constraints_[static_cast<std::size_t>(c)].expr.setCoefficient(var, coeff);
}

void Model::setConstraintRhs(ConstraintId c, double rhs) {
  constraints_[static_cast<std::size_t>(c)].rhs = rhs;
}

int Model::removeConstraints(const std::vector<char>& remove) {
  assert(remove.size() == constraints_.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (remove[i]) continue;
    if (kept != i) constraints_[kept] = std::move(constraints_[i]);
    ++kept;
  }
  const int removed = static_cast<int>(constraints_.size() - kept);
  constraints_.resize(kept);
  return removed;
}

int Model::numIntegerVars() const {
  int count = 0;
  for (const Variable& v : vars_)
    if (v.type != VarType::Continuous) ++count;
  return count;
}

bool Model::isFeasible(const std::vector<double>& values, double tol) const {
  return firstViolation(values, tol).empty();
}

std::string Model::firstViolation(const std::vector<double>& values,
                                  double tol) const {
  if (values.size() != vars_.size()) return "wrong value-vector arity";
  const auto varName = [&](std::size_t j) {
    return vars_[j].name.empty() ? "x" + std::to_string(j) : vars_[j].name;
  };
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    const Variable& v = vars_[j];
    if (values[j] < v.lower - tol || values[j] > v.upper + tol)
      return "bound violated: " + varName(j) + " = " +
             std::to_string(values[j]) + " not in [" +
             std::to_string(v.lower) + ", " + std::to_string(v.upper) + "]";
    if (v.type != VarType::Continuous &&
        std::abs(values[j] - std::round(values[j])) > tol)
      return "integrality violated: " + varName(j) + " = " +
             std::to_string(values[j]);
  }
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    const Constraint& c = constraints_[i];
    const double lhs = c.expr.evaluate(values);
    const bool bad = (c.sense == Sense::LessEqual && lhs > c.rhs + tol) ||
                     (c.sense == Sense::GreaterEqual && lhs < c.rhs - tol) ||
                     (c.sense == Sense::Equal &&
                      std::abs(lhs - c.rhs) > tol);
    if (bad) {
      std::string terms;
      for (const auto& [var, coeff] : c.expr.terms()) {
        terms += " + " + std::to_string(coeff) + "*" +
                 varName(static_cast<std::size_t>(var)) + "(" +
                 std::to_string(values[static_cast<std::size_t>(var)]) + ")";
      }
      return "constraint " + std::to_string(i) +
             (c.name.empty() ? "" : " (" + c.name + ")") +
             " violated: lhs=" + std::to_string(lhs) + " " +
             toString(c.sense) + " rhs=" + std::to_string(c.rhs) + " [" +
             terms + " ]";
    }
  }
  return {};
}

std::string Model::debugString() const {
  std::ostringstream out;
  const auto varName = [&](VarId v) {
    const Variable& var = vars_[static_cast<std::size_t>(v)];
    if (!var.name.empty()) return var.name;
    return "x" + std::to_string(v);
  };
  const auto exprString = [&](const LinExpr& e) {
    std::ostringstream s;
    bool first = true;
    for (const auto& [var, coeff] : e.terms()) {
      if (!first) s << (coeff >= 0 ? " + " : " - ");
      else if (coeff < 0) s << "-";
      first = false;
      const double mag = std::abs(coeff);
      if (mag != 1.0) s << mag << " ";
      s << varName(var);
    }
    if (first) s << "0";
    return s.str();
  };

  out << "minimize " << exprString(objective_) << "\n";
  out << "subject to\n";
  for (const Constraint& c : constraints_) {
    out << "  ";
    if (!c.name.empty()) out << c.name << ": ";
    out << exprString(c.expr) << " " << toString(c.sense) << " " << c.rhs
        << "\n";
  }
  out << "bounds\n";
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    const Variable& v = vars_[j];
    out << "  " << v.lower << " <= " << varName(static_cast<VarId>(j))
        << " <= " << v.upper;
    if (v.type == VarType::Binary) out << " (bin)";
    if (v.type == VarType::Integer) out << " (int)";
    out << "\n";
  }
  return out.str();
}

}  // namespace pdw::ilp

// Bound-propagation presolve.
//
// Tightens variable bounds by propagating constraint activities to a
// fixpoint, then drops rows the final bounds prove redundant. Neither step
// removes feasible points, so the reduced model has exactly the same
// solution set; it shrinks the branch-and-bound tree, tames big-M
// constraints (the scheduling formulation of the paper is big-M-heavy,
// eqs. 2/3/8/19/20), and shrinks the standard form every node LP pivots on.
#pragma once

#include "ilp/model.h"

namespace pdw::ilp {

struct PresolveResult {
  bool infeasible = false;
  int bounds_tightened = 0;
  int rows_removed = 0;
  int rounds = 0;
};

/// Tighten bounds and drop redundant rows in place. Returns infeasible=true
/// when a constraint is proven unsatisfiable by interval arithmetic.
PresolveResult presolve(Model& model, double feasibility_tol = 1e-7,
                        int max_rounds = 10);

}  // namespace pdw::ilp

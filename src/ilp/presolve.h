// Bound-propagation presolve with probing and coefficient strengthening.
//
// Three reductions, none of which removes an integer-feasible point:
//
//  * Activity propagation — tightens variable bounds from constraint
//    activity intervals to a fixpoint, then drops rows the final bounds
//    prove redundant (the original presolve).
//  * Coefficient strengthening — for a binary variable in an inequality
//    whose activity bounds show slack when the variable is at its loose
//    setting, the big-M coefficient (and rhs) shrink to the smallest values
//    that admit exactly the same 0/1 behaviour. The LP relaxation tightens;
//    the integer solution set is untouched. This is the classic big-M taming
//    step for the paper's scheduling rows (eqs. 2/3/8/19/20).
//  * Probing — tentatively fix each binary to 0 and to 1, propagate each
//    fixing to a local fixpoint, and harvest: a fixing whose propagation is
//    infeasible fixes the variable the *other* way permanently; when both
//    sides survive, every other variable's bounds can be relaxed-joined
//    across the two branches (min of lowers / max of uppers), which often
//    tightens them globally.
//
// All three shrink the branch-and-bound tree and the standard form every
// node LP pivots on; the reduced model has exactly the same solution set.
#pragma once

#include "ilp/model.h"

namespace pdw::ilp {

struct PresolveOptions {
  double feasibility_tol = 1e-7;
  int max_rounds = 10;
  /// Enable the probing pass (SolveParams::probing).
  bool probing = true;
  /// Enable big-M coefficient strengthening (SolveParams::coef_tightening).
  bool coef_tightening = true;
  /// Probing work cap: maximum binaries probed (both directions each).
  /// <= 0 disables the cap.
  int probe_var_limit = 2000;
  /// Per-probe propagation cap in row relaxations (worklist pops).
  int probe_row_limit = 20000;
};

struct PresolveResult {
  bool infeasible = false;
  int bounds_tightened = 0;
  int rows_removed = 0;
  int rounds = 0;
  /// Coefficients (and their rhs) shrunk by coefficient strengthening.
  int coefficients_tightened = 0;
  /// Binaries permanently fixed because one probe direction was infeasible.
  int probed_fixings = 0;
  /// Bounds tightened by joining the two probe branches.
  int probed_bounds = 0;
};

/// Tighten bounds, strengthen coefficients, probe binaries and drop
/// redundant rows in place. Returns infeasible=true when any step proves
/// the model unsatisfiable.
PresolveResult presolve(Model& model, const PresolveOptions& options);

/// Back-compat convenience overload (activity propagation defaults).
PresolveResult presolve(Model& model, double feasibility_tol = 1e-7,
                        int max_rounds = 10);

}  // namespace pdw::ilp

// Common vocabulary types for the ILP subsystem.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/flight.h"

namespace pdw::ilp {

/// Index of a decision variable inside a Model.
using VarId = int;

/// Index of a linear constraint inside a Model.
using ConstraintId = int;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarType {
  Continuous,
  Integer,
  Binary,  ///< integer with implicit bounds [0, 1]
};

/// Constraint comparison sense: expr (sense) rhs.
enum class Sense {
  LessEqual,
  GreaterEqual,
  Equal,
};

enum class SolveStatus {
  Optimal,       ///< proven optimal (within tolerances)
  Feasible,      ///< feasible incumbent found, optimality not proven (limits)
  Infeasible,    ///< proven infeasible
  Unbounded,     ///< LP relaxation unbounded below
  IterLimit,     ///< simplex iteration cap hit without conclusion
  NodeLimit,     ///< branch-and-bound node cap hit without incumbent
  TimeLimit,     ///< wall-clock limit hit without incumbent
  Error,         ///< internal numerical failure
};

const char* toString(SolveStatus status);
const char* toString(Sense sense);

/// Outcome of one LP (relaxation) solve, shared by every LpBackend.
enum class LpStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterLimit,
};

struct LpResult {
  LpStatus status = LpStatus::IterLimit;
  double objective = 0.0;
  /// One value per model variable (integrality ignored).
  std::vector<double> values;
  std::int64_t iterations = 0;
  /// Basis (re)factorizations performed during this call (always 0 for the
  /// dense tableau backend, which has no factorized basis).
  std::int64_t factorizations = 0;
};

/// Search/solve statistics, filled by the solver.
struct SolveStats {
  std::int64_t simplex_iterations = 0;
  std::int64_t nodes_explored = 0;
  double best_bound = -kInfinity;  ///< proven lower bound (minimization)
  double wall_seconds = 0.0;
  /// Cutting planes materialized into the model by the root separation loop
  /// (cuts.h): total, per family, survivors after activity-based eviction,
  /// evicted count and separation rounds run. `cuts_added` counts every cut
  /// the loop added (== gomory + cover added), before eviction.
  int cuts_added = 0;
  int cuts_gomory = 0;
  int cuts_cover = 0;
  int cuts_gomory_active = 0;
  int cuts_cover_active = 0;
  int cuts_evicted = 0;
  int cut_rounds = 0;
  /// Portfolio race (SolveParams::portfolio_threads >= 2) bookkeeping:
  /// nodes explored by the racing depth-first diver, and whether the diver
  /// certified optimality before the canonical search proved it itself.
  std::int64_t portfolio_nodes = 0;
  bool race_certified = false;
  /// Node LPs run by the in-tree simplex engine (root + children).
  std::int64_t lp_solves = 0;
  /// Non-root node LPs re-optimized by the warm dual-simplex path vs. those
  /// that fell back to a cold two-phase primal solve.
  std::int64_t warm_hits = 0;
  std::int64_t warm_misses = 0;
  /// Dual-simplex pivots performed across all warm re-solves (subset of
  /// `simplex_iterations`, which also counts cold primal pivots).
  std::int64_t dual_pivots = 0;
  /// Integer variables fixed by reduced-cost bound tightening.
  std::int64_t rc_fixed = 0;
  /// Sparse-basis (re)factorizations across all node LPs (revised backend
  /// only; the dense tableau backend reports 0).
  std::int64_t refactorizations = 0;
};

/// Result of solving a Model. `values` is indexed by VarId of the *original*
/// model (presolve-eliminated variables are filled back in).
struct Solution {
  SolveStatus status = SolveStatus::Error;
  double objective = 0.0;
  std::vector<double> values;
  SolveStats stats;

  bool hasSolution() const {
    return status == SolveStatus::Optimal || status == SolveStatus::Feasible;
  }
  double value(VarId v) const { return values[static_cast<std::size_t>(v)]; }
  /// Convenience for 0-1 variables: value rounded to bool.
  bool boolValue(VarId v) const { return value(v) > 0.5; }
};

/// Branch-variable selection rule (branch_bound.cpp).
enum class BranchRule {
  /// Product-rule pseudocost scores learned from observed LP-bound
  /// degradations, falling back to most-fractional while a variable has no
  /// history in either direction. The default.
  Pseudocost,
  /// The pre-PR-6 rule: branch on the integer variable whose LP value is
  /// farthest from integral. Kept selectable for A/B runs.
  MostFractional,
};

/// Root cutting-plane knobs (cuts.h). Cuts are generated once at the root
/// of every MIP solve, materialized as ordinary model rows, and therefore
/// shared by the canonical and diver lanes; within a lane they ride the
/// warm-start contract unchanged (no rows are ever added mid-search).
struct CutParams {
  bool enabled = true;   ///< master switch for the root separation loop
  bool gomory = true;    ///< Gomory mixed-integer cuts from the tableau
  bool cover = true;     ///< knapsack-cover cuts on 0-1 rows
  int max_rounds = 8;    ///< separation rounds at the root
  int max_per_round = 32;  ///< cut cap per round (most-violated first)
  /// Gomory cuts with more than max(16, max_support_frac * numVars())
  /// nonzero model terms are discarded: dense cut rows destroy the basis-LU
  /// sparsity and cost more per simplex iteration across the whole search
  /// than their root-bound improvement buys back.
  double max_support_frac = 0.4;
  /// Tailing-off guard: stop separating when a round improves the root LP
  /// bound by less than tailoff_tol * (1 + |bound|).
  double tailoff_tol = 1e-4;
  /// A pool cut slack at the round's LP optimum for this many consecutive
  /// rounds is evicted before the cuts are materialized for the search.
  int evict_after_rounds = 2;
};

/// Knobs for the solver; defaults suit the PDW models.
struct SolveParams {
  /// LP engine for every node-LP / pure-LP solve, resolved through the
  /// LpBackend registry (lp_backend.h). "" picks the registry default
  /// ("revised", the sparse revised simplex); "dense" selects the dense
  /// tableau engine kept as the cross-check oracle.
  std::string engine;
  double time_limit_seconds = 10.0;
  std::int64_t node_limit = 200000;
  std::int64_t simplex_iteration_limit = 400000;
  double integrality_tol = 1e-6;
  double feasibility_tol = 1e-7;
  double mip_gap = 1e-6;        ///< relative gap for early stop
  bool enable_presolve = true;
  /// Probing presolve (presolve.h): tentatively fix each binary both ways,
  /// propagate, fix variables whose one branch is infeasible and tighten
  /// bounds valid across both branches. Requires enable_presolve.
  bool probing = true;
  /// Big-M coefficient strengthening in presolve: shrink binary big-M
  /// coefficients to the smallest value the activity bounds prove
  /// sufficient. Requires enable_presolve.
  bool coef_tightening = true;
  /// Root cutting planes; see CutParams.
  CutParams cuts;
  /// Branch-variable selection; see BranchRule.
  BranchRule branch_rule = BranchRule::Pseudocost;
  bool log_progress = false;
  /// Optional warm start (one value per model variable). If it is feasible
  /// it seeds the branch-and-bound incumbent, so the solver never returns
  /// anything worse than this point (the paper's "best-effort within the
  /// time limit" semantics).
  std::vector<double> warm_start;
  /// Warm re-entry repair (the delta-solve path): clamp each warm-start
  /// value into its variable's bounds before the feasibility check. A warm
  /// point projected from a previous solve of a *perturbed* model (slightly
  /// widened horizon, re-pinned binaries) often sits epsilon outside the new
  /// box while remaining structurally sound; clamping lets it seed the
  /// incumbent instead of being rejected wholesale. Never loosens the
  /// feasibility check itself — a clamped-but-violating point is still
  /// rejected.
  bool warm_clamp = false;
  /// Warm-start node LP relaxations with the dual simplex from the previous
  /// node's optimal basis (the basis stays dual-feasible under bound
  /// changes). Falls back to the cold two-phase primal deterministically, so
  /// results are identical either way — this is a speed knob for ablation.
  bool warm_lp = true;
  /// Fix integer variables whose reduced cost proves they cannot move
  /// without exceeding the incumbent (applied to both children at branch
  /// time). Never cuts off an improving solution.
  bool rc_fixing = true;
  /// Iteration count after which pricing switches to Bland's rule inside one
  /// LP solve (anti-cycling). 0 = automatic (scales with model size); tests
  /// set 1 to exercise the Bland path directly.
  std::int64_t bland_iteration_override = 0;
  /// Flight recorder (obs/flight.h): when `flight.enabled`, every
  /// branch-and-bound lane records structured search events into a bounded
  /// ring and dumps them as `pdw-flight-1` JSONL per the config's triggers
  /// (explicit path, budget-capped solve, slow solve). Off by default —
  /// disabled lanes pay one null check per event site.
  obs::FlightConfig flight;
  /// >= 2 races the canonical best-bound search against a depth-first diver
  /// on a second thread. The diver publishes feasible objectives through an
  /// atomic incumbent bound; the canonical search stops early once its own
  /// incumbent matches a diver-certified optimum. The returned variable
  /// assignment is always the canonical one, so results are identical to a
  /// single-threaded solve (only stats/status certification differ).
  int portfolio_threads = 1;
};

/// Compact one-line description of the solver knobs that affect results or
/// performance ("engine=revised tl=4 nodes=60000 ..."), stamped into
/// `pdw-run-1` records so stored runs are only compared within one
/// configuration. Defined in solver.cpp.
std::string fingerprint(const SolveParams& params);

}  // namespace pdw::ilp

// Root cutting planes: Gomory mixed-integer cuts and knapsack-cover cuts.
//
// The separation loop runs once per MIP solve, at the root, before any
// branch-and-bound lane starts (DESIGN.md §13). Cuts are derived from the
// root LP optimum, deduplicated through a shared CutPool, materialized as
// ordinary model rows — so the canonical and diver lanes both inherit them
// for free and the warm-start contract inside each lane is untouched — and
// aged out by activity before the search begins. Within the loop itself the
// engine-side rows are appended incrementally (LpBackend::addCutRows): each
// cut row arrives with its slack basic, the current basis stays
// dual-feasible, and the next round's LP is a warm dual re-solve rather
// than a cold rebuild.
//
// Validity: a Gomory mixed-integer cut derived from a tableau row of the
// engine's optimal basis is satisfied by every integer-feasible point and
// violated by the fractional vertex it was derived from (by exactly the
// fractional part f0 of the basic variable). A cover cut `sum_{j in C} z_j
// <= |C| - 1` is valid whenever the complemented row proves the cover items
// cannot all be 1 simultaneously. Both families only ever remove fractional
// LP points, never integer ones, so plans are unchanged — only the tree
// shrinks.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ilp/lp_backend.h"
#include "ilp/model.h"
#include "ilp/types.h"

namespace pdw::obs {
class FlightRecorder;
}

namespace pdw::ilp {

enum class CutFamily : std::uint8_t { Gomory, Cover };

/// One cut in model-variable space, normalized to `terms . x <= rhs`.
struct Cut {
  std::vector<std::pair<VarId, double>> terms;  ///< sorted by VarId, merged
  double rhs = 0.0;
  CutFamily family = CutFamily::Gomory;
  /// LHS minus RHS at the LP point the cut was separated from (> 0).
  double violation = 0.0;
};

/// Outcome of one root separation run (mirrored into SolveStats).
struct CutStats {
  int added = 0;   ///< cuts materialized, before eviction (gomory + cover)
  int gomory = 0;
  int cover = 0;
  int gomory_active = 0;  ///< survivors after activity-based eviction
  int cover_active = 0;
  int evicted = 0;
  int rounds = 0;
};

/// Deduplicating cut pool shared by all separators within one root loop.
/// Identity is the normalized support: term vars plus coefficients and rhs
/// scaled to unit max-magnitude and quantized, so the same cut rederived in
/// a later round (or by both lanes' families) is recognized and dropped.
class CutPool {
 public:
  /// True when the cut is new (and now owned by the pool); false when a
  /// duplicate was already present.
  bool add(const Cut& cut);

  std::size_t size() const { return keys_.size(); }

 private:
  std::vector<std::vector<std::int64_t>> keys_;  ///< sorted normalized keys
};

/// Derive the Gomory mixed-integer cut from the optimal-tableau row of
/// basic variable `basic_var` (which must have a fractional LP value).
/// `view` is the engine's canonical-space row (LpBackend::tableauRow), and
/// `model` supplies integrality of the columns and the coefficients of the
/// slack rows substituted back out. Returns nullopt when the row yields no
/// usable cut (integral rhs, a free nonbasic with support, or numerics).
std::optional<Cut> gmiCut(const LpBackend::TableauRowView& view,
                          VarId basic_var, const Model& model,
                          double integrality_tol);

/// Separate violated minimal-cover cuts from every binary-only inequality
/// row of `model` at LP point `x`, appending them to `out`.
void coverCuts(const Model& model, const std::vector<double>& x,
               std::vector<Cut>* out);

/// Run the root separation loop: solve the root LP of `model` with a fresh
/// backend, alternate (separate -> materialize -> warm re-solve) for at
/// most `params.cuts.max_rounds` rounds, then evict cuts that stayed slack
/// for `params.cuts.evict_after_rounds` consecutive rounds. Mutates `model`
/// by appending the surviving cut rows. `check_point`, when non-empty, is a
/// known integer-feasible point used as a validity guard — any candidate
/// cut it violates is discarded. Records one CutAdded flight event per
/// materialized cut into `flight` (may be null).
CutStats separateRootCuts(Model& model, const SolveParams& params,
                          const std::vector<double>& check_point,
                          obs::FlightRecorder* flight);

}  // namespace pdw::ilp

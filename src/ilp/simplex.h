// Standalone LP solve entry point.
//
// This is the pure-LP front door of the solver stack (the reproduction's
// substitute for Gurobi, see DESIGN.md §2). It routes one cold solve
// through the engine-agnostic LpBackend seam (lp_backend.h, DESIGN.md §12),
// so the same backends — the sparse revised simplex and the dense-tableau
// oracle — serve pure LPs, node LPs and the lazy-cut callback alike, and no
// solve bypasses the obs instrumentation.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.h"
#include "ilp/types.h"

namespace pdw::ilp {

/// Solve the LP relaxation of `model` (variable types are ignored), through
/// the LpBackend selected by `params.engine` (lp_backend.h). LpStatus and
/// LpResult live in ilp/types.h, shared by every backend.
///
/// If `lower_override` / `upper_override` are non-null they replace the
/// model's variable bounds — this is how branch-and-bound explores nodes
/// without copying the model.
///
/// Preconditions (dense backend only): every variable either has a finite
/// lower bound, or is fully free (-inf, +inf); fully-free variables are
/// split internally. The revised backend handles bounds natively.
LpResult solveLp(const Model& model, const SolveParams& params,
                 const std::vector<double>* lower_override = nullptr,
                 const std::vector<double>* upper_override = nullptr);

}  // namespace pdw::ilp

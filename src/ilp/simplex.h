// Two-phase primal simplex for linear programs with variable bounds.
//
// This is the LP engine under the branch-and-bound MILP solver (the
// reproduction's substitute for Gurobi, see DESIGN.md §2). Design choices:
//
//  * Full dense tableau. PDW models are small (hundreds of rows/columns);
//    a dense tableau keeps the implementation auditable and cache-friendly.
//  * Upper bounds are handled implicitly with the classic "complement"
//    transformation (a nonbasic variable at its upper bound is replaced by
//    its complement so every nonbasic variable sits at zero), so bounds do
//    not inflate the row count — essential because branch-and-bound tightens
//    bounds at every node.
//  * Phase 1 minimizes the sum of artificial variables; basic artificials
//    are driven out (or pinned to zero on redundant rows) before phase 2.
//  * Dantzig pricing with a largest-pivot tie-break, falling back to Bland's
//    rule after an iteration threshold to guarantee termination under
//    degeneracy.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.h"
#include "ilp/types.h"

namespace pdw::ilp {

enum class LpStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterLimit,
};

struct LpResult {
  LpStatus status = LpStatus::IterLimit;
  double objective = 0.0;
  /// One value per model variable (integrality ignored).
  std::vector<double> values;
  std::int64_t iterations = 0;
};

/// Solve the LP relaxation of `model` (variable types are ignored).
///
/// If `lower_override` / `upper_override` are non-null they replace the
/// model's variable bounds — this is how branch-and-bound explores nodes
/// without copying the model.
///
/// Preconditions: every variable either has a finite lower bound, or is
/// fully free (-inf, +inf); fully-free variables are split internally.
LpResult solveLp(const Model& model, const SolveParams& params,
                 const std::vector<double>* lower_override = nullptr,
                 const std::vector<double>* upper_override = nullptr);

}  // namespace pdw::ilp

#include "ilp/basis_lu.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pdw::ilp {

namespace {

// Density above which Markowitz bookkeeping loses to a plain dense LU.
constexpr double kDenseModeDensity = 0.18;
// Fill-in abort: sparse elimination that crosses this active-density mark
// restarts in dense mode instead of thrashing the sparse row lists.
constexpr double kFillAbortDensity = 0.30;

}  // namespace

void BasisLu::clearFactors() {
  prow_.clear();
  pcol_.clear();
  diag_.clear();
  l_start_.clear();
  l_entries_.clear();
  u_start_.clear();
  u_entries_.clear();
  dense_lu_.clear();
  dense_perm_.clear();
  eta_pos_.clear();
  eta_pivot_.clear();
  eta_start_.assign(1, 0);
  eta_entries_.clear();
  eta_nnz_ = 0;
  factor_nnz_ = 0;
  dense_mode_ = false;
  valid_ = false;
}

bool BasisLu::factor(int m, const std::vector<SparseColumn>& cols) {
  assert(static_cast<int>(cols.size()) == m);
  clearFactors();
  m_ = m;
  if (m == 0) {
    valid_ = true;
    return true;
  }
  std::size_t nnz = 0;
  for (const SparseColumn& col : cols) nnz += col.size();
  const double density =
      static_cast<double>(nnz) / (static_cast<double>(m) * m);
  bool ok = false;
  if (m >= 32 && density > kDenseModeDensity) {
    ok = factorDense(cols);
  } else {
    ok = factorSparse(cols);
    if (!ok && m >= 32 && !dense_lu_.empty()) {
      // factorSparse aborted on fill-in (not singularity); retry dense.
      ok = factorDense(cols);
    }
  }
  valid_ = ok;
  return ok;
}

bool BasisLu::factorSparse(const std::vector<SparseColumn>& cols) {
  const int m = m_;
  // Row-major working copy: rows[i] = (position, value) entries.
  std::vector<std::vector<std::pair<int, double>>> rows(m);
  std::vector<int> col_count(m, 0);
  std::size_t nnz = 0;
  for (int pos = 0; pos < m; ++pos) {
    for (const auto& [row, val] : cols[pos]) {
      assert(row >= 0 && row < m);
      if (val == 0.0) continue;
      rows[row].emplace_back(pos, val);
      ++col_count[pos];
      ++nnz;
    }
  }
  // col_rows: candidate rows per position, appended lazily (may hold stale
  // rows whose entry got cancelled; verified against row contents on use).
  std::vector<std::vector<int>> col_rows(m);
  for (int i = 0; i < m; ++i)
    for (const auto& [pos, val] : rows[i]) col_rows[pos].push_back(i);

  std::vector<char> row_active(m, 1), col_active(m, 1);
  prow_.reserve(m);
  pcol_.reserve(m);
  diag_.reserve(m);
  l_start_.reserve(m + 1);
  u_start_.reserve(m + 1);

  // Dense accumulator for row combination.
  std::vector<double> acc(m, 0.0);
  std::vector<int> acc_stamp(m, -1);
  int stamp = 0;

  const std::size_t fill_cap = static_cast<std::size_t>(
      std::max(4096.0, kFillAbortDensity * static_cast<double>(m) * m));

  for (int k = 0; k < m; ++k) {
    // ---- Markowitz pivot search over all active entries -----------------
    int piv_row = -1, piv_pos = -1;
    double piv_val = 0.0;
    long best_cost = -1;
    double best_mag = 0.0;
    for (int i = 0; i < m; ++i) {
      if (!row_active[i]) continue;
      const auto& row = rows[i];
      if (row.empty()) continue;
      double row_max = 0.0;
      for (const auto& [pos, val] : row) row_max = std::max(row_max, std::abs(val));
      if (row_max < kAbsPivotTol) continue;
      const double mag_floor = std::max(kAbsPivotTol, kRelPivotTol * row_max);
      const long rc = static_cast<long>(row.size()) - 1;
      for (const auto& [pos, val] : row) {
        const double mag = std::abs(val);
        if (mag < mag_floor) continue;
        const long cost = rc * (static_cast<long>(col_count[pos]) - 1);
        const bool better =
            best_cost < 0 || cost < best_cost ||
            (cost == best_cost &&
             (mag > best_mag ||
              (mag == best_mag &&
               (i < piv_row || (i == piv_row && pos < piv_pos)))));
        if (better) {
          best_cost = cost;
          best_mag = mag;
          piv_row = i;
          piv_pos = pos;
          piv_val = val;
        }
      }
    }
    if (piv_row < 0) return false;  // singular: no admissible pivot left

    prow_.push_back(piv_row);
    pcol_.push_back(piv_pos);
    diag_.push_back(piv_val);
    row_active[piv_row] = 0;
    col_active[piv_pos] = 0;

    // Freeze the pivot row as U row k (entries over still-active positions).
    std::vector<std::pair<int, double>>& prow_entries = rows[piv_row];
    u_start_.push_back(static_cast<int>(u_entries_.size()));
    for (const auto& [pos, val] : prow_entries) {
      --col_count[pos];
      if (pos == piv_pos) continue;
      u_entries_.emplace_back(pos, val);
    }

    // ---- eliminate the pivot position from the remaining active rows ----
    l_start_.push_back(static_cast<int>(l_entries_.size()));
    std::vector<int>& cand = col_rows[piv_pos];
    for (int i : cand) {
      if (!row_active[i]) continue;
      std::vector<std::pair<int, double>>& row = rows[i];
      double v = 0.0;
      bool found = false;
      for (const auto& [pos, val] : row) {
        if (pos == piv_pos) {
          v = val;
          found = true;
          break;
        }
      }
      if (!found || v == 0.0) continue;  // stale candidate
      const double mult = v / piv_val;
      l_entries_.emplace_back(i, mult);

      // row_i -= mult * pivot_row, dropping the pivot position.
      ++stamp;
      for (const auto& [pos, val] : row) {
        if (pos == piv_pos) continue;
        acc[pos] = val;
        acc_stamp[pos] = stamp;
      }
      for (const auto& [pos, val] : prow_entries) {
        if (pos == piv_pos) continue;
        if (acc_stamp[pos] == stamp) {
          acc[pos] -= mult * val;
        } else {
          acc[pos] = -mult * val;
          acc_stamp[pos] = stamp;
        }
      }
      for (const auto& [pos, val] : row) --col_count[pos];
      nnz -= row.size();
      std::vector<std::pair<int, double>> next;
      next.reserve(row.size() + prow_entries.size());
      // Keep original-order positions first, then pivot-row fill-in, so the
      // rebuild is deterministic without a sort.
      for (const auto& [pos, val] : row) {
        if (pos == piv_pos || acc_stamp[pos] != stamp) continue;
        if (std::abs(acc[pos]) > kDropTol) next.emplace_back(pos, acc[pos]);
        acc_stamp[pos] = -1;
      }
      for (const auto& [pos, val] : prow_entries) {
        if (pos == piv_pos || acc_stamp[pos] != stamp) continue;
        if (std::abs(acc[pos]) > kDropTol) {
          next.emplace_back(pos, acc[pos]);
          col_rows[pos].push_back(i);  // fill-in
        }
        acc_stamp[pos] = -1;
      }
      row.swap(next);
      for (const auto& [pos, val] : row) ++col_count[pos];
      nnz += row.size();
    }
    cand.clear();

    if (nnz > fill_cap && m >= 32) {
      // Signal factor() to retry densely (dense_lu_ non-empty = fill abort,
      // distinct from the singular `return false` above).
      dense_lu_.assign(1, 0.0);
      return false;
    }
  }
  l_start_.push_back(static_cast<int>(l_entries_.size()));
  u_start_.push_back(static_cast<int>(u_entries_.size()));
  factor_nnz_ = static_cast<std::int64_t>(l_entries_.size()) +
                static_cast<std::int64_t>(u_entries_.size()) + m;
  work_.assign(m, 0.0);
  work2_.assign(m, 0.0);
  return true;
}

bool BasisLu::factorDense(const std::vector<SparseColumn>& cols) {
  const int m = m_;
  dense_mode_ = true;
  dense_lu_.assign(static_cast<std::size_t>(m) * m, 0.0);
  for (int pos = 0; pos < m; ++pos)
    for (const auto& [row, val] : cols[pos])
      dense_lu_[static_cast<std::size_t>(row) * m + pos] += val;

  std::vector<int> order(m);
  for (int i = 0; i < m; ++i) order[i] = i;  // order[k] = original row of row k
  double* a = dense_lu_.data();
  for (int k = 0; k < m; ++k) {
    int best = k;
    double best_mag = std::abs(a[static_cast<std::size_t>(order[k]) * m + k]);
    for (int i = k + 1; i < m; ++i) {
      const double mag = std::abs(a[static_cast<std::size_t>(order[i]) * m + k]);
      if (mag > best_mag) {
        best_mag = mag;
        best = i;
      }
    }
    if (best_mag < kAbsPivotTol) return false;  // singular
    std::swap(order[k], order[best]);
    const double* pr = a + static_cast<std::size_t>(order[k]) * m;
    const double piv = pr[k];
    for (int i = k + 1; i < m; ++i) {
      double* ri = a + static_cast<std::size_t>(order[i]) * m;
      const double mult = ri[k] / piv;
      if (mult == 0.0) continue;
      ri[k] = mult;
      for (int j = k + 1; j < m; ++j) ri[j] -= mult * pr[j];
    }
  }
  dense_perm_ = std::move(order);
  factor_nnz_ = static_cast<std::int64_t>(m) * m;
  work_.assign(m, 0.0);
  work2_.assign(m, 0.0);
  return true;
}

void BasisLu::ftran(std::vector<double>& x) const {
  assert(valid_ && static_cast<int>(x.size()) == m_);
  const int m = m_;
  if (m == 0) return;
  if (dense_mode_) {
    // y = L^{-1} P x (forward), then back-substitute U; positions == steps.
    std::vector<double>& y = work_;
    const double* a = dense_lu_.data();
    for (int k = 0; k < m; ++k) {
      double v = x[dense_perm_[k]];
      const double* rk = a + static_cast<std::size_t>(dense_perm_[k]) * m;
      for (int j = 0; j < k; ++j) v -= rk[j] * y[j];
      y[k] = v;
    }
    for (int k = m - 1; k >= 0; --k) {
      double v = y[k];
      const double* rk = a + static_cast<std::size_t>(dense_perm_[k]) * m;
      for (int j = k + 1; j < m; ++j) v -= rk[j] * x[j];
      x[k] = v / rk[k];
    }
  } else {
    // Forward eliminate in row space: after step k, x[prow_[k]] is final.
    for (int k = 0; k < m; ++k) {
      const double xk = x[prow_[k]];
      if (xk != 0.0) {
        for (int e = l_start_[k]; e < l_start_[k + 1]; ++e)
          x[l_entries_[e].first] -= l_entries_[e].second * xk;
      }
    }
    // Back substitution: solution indexed by position, via scratch.
    std::vector<double>& sol = work_;
    for (int k = m - 1; k >= 0; --k) {
      double v = x[prow_[k]];
      for (int e = u_start_[k]; e < u_start_[k + 1]; ++e)
        v -= u_entries_[e].second * sol[u_entries_[e].first];
      sol[pcol_[k]] = v / diag_[k];
    }
    x.swap(sol);
  }
  applyEtasFtran(x);
}

void BasisLu::btran(std::vector<double>& x) const {
  assert(valid_ && static_cast<int>(x.size()) == m_);
  const int m = m_;
  if (m == 0) return;
  applyEtasBtran(x);
  if (dense_mode_) {
    std::vector<double>& y = work_;
    const double* a = dense_lu_.data();
    // Solve U^T z = x (forward over steps).
    for (int k = 0; k < m; ++k) {
      double v = x[k];
      for (int j = 0; j < k; ++j)
        v -= a[static_cast<std::size_t>(dense_perm_[j]) * m + k] * y[j];
      y[k] = v / a[static_cast<std::size_t>(dense_perm_[k]) * m + k];
    }
    // Solve L^T w = z (backward); scatter to original rows.
    for (int k = m - 1; k >= 0; --k) {
      double v = y[k];
      for (int j = k + 1; j < m; ++j)
        v -= a[static_cast<std::size_t>(dense_perm_[j]) * m + k] * y[j];
      y[k] = v;
    }
    for (int k = 0; k < m; ++k) x[dense_perm_[k]] = y[k];
  } else {
    // Solve U^T z = x: z_k = (x[pcol_k] - partial) / diag_k, where `partial`
    // accumulates earlier steps' U entries hitting position pcol_k.
    std::vector<double>& accum = work_;
    std::fill(accum.begin(), accum.end(), 0.0);
    std::vector<double>& z = work2_;
    for (int k = 0; k < m; ++k) {
      const double zk = (x[pcol_[k]] - accum[pcol_[k]]) / diag_[k];
      z[k] = zk;
      if (zk != 0.0) {
        for (int e = u_start_[k]; e < u_start_[k + 1]; ++e)
          accum[u_entries_[e].first] += u_entries_[e].second * zk;
      }
    }
    // Solve L^T w = z (backward over steps). L entry (row i, mult) at step k
    // couples step k with the step where row i is pivotal; iterating k
    // descending and keeping w indexed by original row makes w[row of later
    // step] final before it is consumed.
    std::vector<double>& w = work_;
    for (int k = 0; k < m; ++k) w[prow_[k]] = z[k];
    for (int k = m - 1; k >= 0; --k) {
      double v = w[prow_[k]];
      for (int e = l_start_[k]; e < l_start_[k + 1]; ++e)
        v -= l_entries_[e].second * w[l_entries_[e].first];
      w[prow_[k]] = v;
    }
    x.swap(w);
  }
}

bool BasisLu::update(int pos, const std::vector<double>& alpha) {
  assert(valid_ && pos >= 0 && pos < m_ &&
         static_cast<int>(alpha.size()) == m_);
  const double piv = alpha[pos];
  if (std::abs(piv) < kUpdatePivotTol) return false;
  eta_pos_.push_back(pos);
  eta_pivot_.push_back(piv);
  std::int64_t nnz = 1;
  for (int i = 0; i < m_; ++i) {
    if (i == pos) continue;
    const double v = alpha[i];
    if (std::abs(v) > kDropTol) {
      eta_entries_.emplace_back(i, v);
      ++nnz;
    }
  }
  eta_start_.push_back(static_cast<int>(eta_entries_.size()));
  eta_nnz_ += nnz;
  return true;
}

void BasisLu::applyEtasFtran(std::vector<double>& x) const {
  // E = I except column r = alpha; solve E w = v in sequence:
  //   w_r = v_r / alpha_r,  w_i = v_i - alpha_i * w_r.
  const int n_eta = static_cast<int>(eta_pos_.size());
  for (int e = 0; e < n_eta; ++e) {
    const int r = eta_pos_[e];
    const double wr = x[r] / eta_pivot_[e];
    x[r] = wr;
    if (wr != 0.0) {
      for (int t = eta_start_[e]; t < eta_start_[e + 1]; ++t)
        x[eta_entries_[t].first] -= eta_entries_[t].second * wr;
    }
  }
}

void BasisLu::applyEtasBtran(std::vector<double>& x) const {
  // Solve E^T w = v, most recent eta first:
  //   w_i = v_i (i != r),  w_r = (v_r - sum_{i != r} alpha_i v_i) / alpha_r.
  for (int e = static_cast<int>(eta_pos_.size()) - 1; e >= 0; --e) {
    const int r = eta_pos_[e];
    double v = x[r];
    for (int t = eta_start_[e]; t < eta_start_[e + 1]; ++t)
      v -= eta_entries_[t].second * x[eta_entries_[t].first];
    x[r] = v / eta_pivot_[e];
  }
}

}  // namespace pdw::ilp

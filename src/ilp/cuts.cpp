#include "ilp/cuts.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/flight.h"
#include "util/logging.h"

namespace pdw::ilp {

namespace {

constexpr double kFracMin = 0.005;    ///< min fractional part for a GMI row
constexpr double kCoeffDrop = 1e-12;  ///< relative zero threshold for cuts
constexpr double kMaxDynamism = 1e7;  ///< max |coeff| ratio within one cut
constexpr double kMinViolation = 1e-5;

double fractionalPart(double v) { return v - std::floor(v); }

/// Finalize a >=-form cut `coeff . x >= rhs` over dense model-variable
/// coefficients into a normalized <=-form Cut. Returns false on an empty,
/// badly scaled, or near-zero cut.
bool finalizeCut(const std::vector<double>& coeff, double rhs,
                 CutFamily family, Cut* out) {
  double max_mag = 0.0;
  for (double c : coeff) max_mag = std::max(max_mag, std::abs(c));
  if (max_mag < 1e-10) return false;
  double min_mag = max_mag;
  out->terms.clear();
  for (VarId v = 0; v < static_cast<VarId>(coeff.size()); ++v) {
    const double c = coeff[static_cast<std::size_t>(v)];
    if (std::abs(c) <= kCoeffDrop * max_mag) continue;
    min_mag = std::min(min_mag, std::abs(c));
    // >= form negates into the canonical <= form here.
    out->terms.emplace_back(v, -c);
  }
  if (out->terms.empty()) return false;
  if (max_mag / min_mag > kMaxDynamism) return false;
  out->rhs = -rhs;
  out->family = family;
  return true;
}

}  // namespace

bool CutPool::add(const Cut& cut) {
  double max_mag = 0.0;
  for (const auto& [var, c] : cut.terms) max_mag = std::max(max_mag, std::abs(c));
  if (max_mag <= 0.0) return false;
  const double scale = 1e9 / max_mag;
  std::vector<std::int64_t> key;
  key.reserve(cut.terms.size() * 2 + 2);
  for (const auto& [var, c] : cut.terms) {
    key.push_back(static_cast<std::int64_t>(var));
    key.push_back(static_cast<std::int64_t>(std::llround(c * scale)));
  }
  key.push_back(-1);
  key.push_back(static_cast<std::int64_t>(std::llround(cut.rhs * scale)));
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it != keys_.end() && *it == key) return false;
  keys_.insert(it, std::move(key));
  return true;
}

std::optional<Cut> gmiCut(const LpBackend::TableauRowView& view,
                          VarId basic_var, const Model& model,
                          double integrality_tol) {
  const int n = model.numVars();
  const int total = static_cast<int>(view.coeff.size());
  const int m = total - n;
  if (m < 0 || m != model.numConstraints()) return std::nullopt;

  // Substitute every nonbasic column to its at-bound displacement
  // t_j >= 0 (t = x - l at lower, t = u - x at upper), giving
  //   x_basic + sum_j a'_j t_j = b'.
  struct Term {
    int col;
    double coeff;   ///< a'_j, the substituted coefficient
    bool at_upper;  ///< which bound the column rests at
    bool integral;  ///< t_j is provably integer-valued
  };
  std::vector<Term> terms;
  double b = view.rhs;
  for (int j = 0; j < total; ++j) {
    if (view.status[static_cast<std::size_t>(j)] == LpBackend::ColStatus::Basic)
      continue;
    const double a = view.coeff[static_cast<std::size_t>(j)];
    if (a == 0.0) continue;
    const LpBackend::ColStatus st = view.status[static_cast<std::size_t>(j)];
    if (st == LpBackend::ColStatus::Free) {
      // A free nonbasic has no sign-constrained displacement; no GMI cut
      // can be derived from this row.
      if (std::abs(a) > 1e-11) return std::nullopt;
      continue;
    }
    const bool at_upper = st == LpBackend::ColStatus::AtUpper;
    const double bound = at_upper ? view.upper[static_cast<std::size_t>(j)]
                                  : view.lower[static_cast<std::size_t>(j)];
    if (!std::isfinite(bound)) return std::nullopt;
    const bool integral =
        j < n && model.var(j).type != VarType::Continuous &&
        std::abs(bound - std::round(bound)) <= 1e-9;
    b -= a * bound;
    terms.push_back(Term{j, at_upper ? -a : a, at_upper, integral});
  }

  const double f0 = fractionalPart(b);
  if (f0 < kFracMin || f0 > 1.0 - kFracMin) return std::nullopt;

  // GMI coefficients in t-space: sum_j gamma_j t_j >= f0.
  std::vector<double> model_coeff(static_cast<std::size_t>(n), 0.0);
  double rhs = f0;
  for (const Term& t : terms) {
    double gamma;
    if (t.integral) {
      const double fj = fractionalPart(t.coeff);
      gamma = fj <= f0 + 1e-12 ? fj : f0 * (1.0 - fj) / (1.0 - f0);
    } else {
      gamma = t.coeff >= 0.0 ? t.coeff : f0 * (-t.coeff) / (1.0 - f0);
    }
    if (gamma <= 1e-13) continue;

    // Substitute t_j back out into model-variable space (>= form).
    if (t.col < n) {
      if (t.at_upper) {
        model_coeff[static_cast<std::size_t>(t.col)] -= gamma;
        rhs -= gamma * view.upper[static_cast<std::size_t>(t.col)];
      } else {
        model_coeff[static_cast<std::size_t>(t.col)] += gamma;
        rhs += gamma * view.lower[static_cast<std::size_t>(t.col)];
      }
    } else {
      // Slack of row r: s_r = rhs_r - a_r . x.
      const Constraint& con = model.constraint(t.col - n);
      const double sign = t.at_upper ? 1.0 : -1.0;
      for (const auto& [var, c] : con.expr.terms())
        model_coeff[static_cast<std::size_t>(var)] += sign * gamma * c;
      rhs += sign * gamma * con.rhs;
    }
  }
  (void)integrality_tol;
  (void)basic_var;

  Cut cut;
  if (!finalizeCut(model_coeff, rhs, CutFamily::Gomory, &cut))
    return std::nullopt;
  cut.violation = f0;
  return cut;
}

void coverCuts(const Model& model, const std::vector<double>& x,
               std::vector<Cut>* out) {
  constexpr int kMaxRowTerms = 100;
  for (ConstraintId ci = 0; ci < model.numConstraints(); ++ci) {
    const Constraint& con = model.constraint(ci);
    if (con.sense == Sense::Equal) continue;
    const auto& row = con.expr.terms();
    if (row.size() < 2 || row.size() > kMaxRowTerms) continue;
    if (!std::isfinite(con.rhs)) continue;

    // Normalize to <= and require a pure 0-1 row.
    const double flip = con.sense == Sense::GreaterEqual ? -1.0 : 1.0;
    bool binary_row = true;
    for (const auto& [var, c] : row) {
      (void)c;
      const Variable& v = model.var(var);
      if (v.type == VarType::Continuous || v.lower < -1e-9 ||
          v.upper > 1.0 + 1e-9) {
        binary_row = false;
        break;
      }
    }
    if (!binary_row) continue;

    // Complement negative coefficients (z = 1 - x) so every item weight is
    // positive: sum_j w_j z_j <= budget.
    struct Item {
      VarId var;
      double weight;
      double z;  ///< LP value of the (possibly complemented) item
      bool complemented;
    };
    std::vector<Item> items;
    double budget = flip * con.rhs;
    for (const auto& [var, c] : row) {
      const double a = flip * c;
      if (a > 1e-12) {
        items.push_back(Item{var, a, x[static_cast<std::size_t>(var)], false});
      } else if (a < -1e-12) {
        budget -= a;
        items.push_back(
            Item{var, -a, 1.0 - x[static_cast<std::size_t>(var)], true});
      }
    }
    if (items.size() < 2 || budget < -1e-9) continue;
    double total_weight = 0.0;
    for (const Item& it : items) total_weight += it.weight;
    if (total_weight <= budget + 1e-9) continue;  // no cover exists

    // Greedy cover: take items by LP value (descending) until the weight
    // budget is exceeded, then minimalize from the lightest-valued end.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.z != b.z) return a.z > b.z;
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.var < b.var;
    });
    std::vector<Item> cover;
    double cover_weight = 0.0;
    for (const Item& it : items) {
      if (cover_weight > budget + 1e-9) break;
      cover.push_back(it);
      cover_weight += it.weight;
    }
    if (cover_weight <= budget + 1e-9) continue;
    for (std::size_t k = cover.size(); k-- > 0;) {
      if (cover_weight - cover[k].weight > budget + 1e-9) {
        cover_weight -= cover[k].weight;
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }

    // Cover inequality sum_{j in C} z_j <= |C| - 1, violated at the LP
    // point; substitute complements back out.
    double z_sum = 0.0;
    for (const Item& it : cover) z_sum += it.z;
    const double violation =
        z_sum - (static_cast<double>(cover.size()) - 1.0);
    if (violation < 1e-3) continue;

    Cut cut;
    cut.family = CutFamily::Cover;
    cut.violation = violation;
    cut.rhs = static_cast<double>(cover.size()) - 1.0;
    for (const Item& it : cover) {
      if (it.complemented) {
        cut.terms.emplace_back(it.var, -1.0);
        cut.rhs -= 1.0;
      } else {
        cut.terms.emplace_back(it.var, 1.0);
      }
    }
    std::sort(cut.terms.begin(), cut.terms.end());
    out->push_back(std::move(cut));
  }
}

CutStats separateRootCuts(Model& model, const SolveParams& params,
                          const std::vector<double>& check_point,
                          obs::FlightRecorder* flight) {
  CutStats stats;
  if (!params.cuts.enabled) return stats;
  if (model.numIntegerVars() == 0 || model.numConstraints() == 0) return stats;

  const int n = model.numVars();
  std::vector<double> lower(static_cast<std::size_t>(n));
  std::vector<double> upper(static_cast<std::size_t>(n));
  for (VarId v = 0; v < n; ++v) {
    lower[static_cast<std::size_t>(v)] = model.var(v).lower;
    upper[static_cast<std::size_t>(v)] = model.var(v).upper;
  }

  auto engine = makeLpBackend(params.engine, model, params);
  LpResult lp = engine->coldSolve(lower, upper);
  if (lp.status != LpStatus::Optimal) return stats;

  CutPool pool;
  struct Materialized {
    ConstraintId row;
    CutFamily family;
    int inactive = 0;
  };
  std::vector<Materialized> mat;

  const auto evalCut = [](const Cut& cut, const std::vector<double>& point) {
    double lhs = 0.0;
    for (const auto& [var, c] : cut.terms)
      lhs += c * point[static_cast<std::size_t>(var)];
    return lhs;
  };

  int quiet_rounds = 0;  // consecutive rounds with no root-bound progress
  for (int round = 0; round < params.cuts.max_rounds; ++round) {
    stats.rounds = round + 1;

    std::vector<Cut> candidates;
    if (params.cuts.gomory) {
      // Fractional integer variables, most-fractional first.
      std::vector<std::pair<double, VarId>> frac;
      for (VarId v = 0; v < n; ++v) {
        if (model.var(v).type == VarType::Continuous) continue;
        const double value = lp.values[static_cast<std::size_t>(v)];
        const double dist = std::abs(value - std::round(value));
        if (dist > params.integrality_tol) frac.emplace_back(-dist, v);
      }
      std::sort(frac.begin(), frac.end());
      const int attempts = std::min<int>(static_cast<int>(frac.size()),
                                         4 * params.cuts.max_per_round);
      const int max_support = std::max(
          16, static_cast<int>(params.cuts.max_support_frac * n));
      LpBackend::TableauRowView view;
      for (int k = 0; k < attempts; ++k) {
        const VarId v = frac[static_cast<std::size_t>(k)].second;
        if (!engine->tableauRow(v, &view)) continue;
        auto cut = gmiCut(view, v, model, params.integrality_tol);
        if (!cut) continue;
        // Density cap: dense rows make every later FTRAN/BTRAN and LU
        // refactorization pay for this cut, across both lanes.
        if (static_cast<int>(cut->terms.size()) > max_support) continue;
        // Re-measure the violation in model space: the substitution chain
        // is numerically exact only up to rounding.
        cut->violation = evalCut(*cut, lp.values) - cut->rhs;
        if (cut->violation < kMinViolation) continue;
        candidates.push_back(std::move(*cut));
      }
    }
    if (params.cuts.cover) coverCuts(model, lp.values, &candidates);

    // Validity guard: a correct cut can never cut off a known
    // integer-feasible point; discard (and flag) any candidate that does.
    if (!check_point.empty()) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double lhs = evalCut(candidates[i], check_point);
        if (lhs > candidates[i].rhs + 1e-6) {
          PDW_LOG(Warn, "ilp")
              << "discarding invalid candidate cut (family "
              << (candidates[i].family == CutFamily::Gomory ? "gomory"
                                                            : "cover")
              << ", violates check point by " << lhs - candidates[i].rhs
              << ")";
          continue;
        }
        if (kept != i) candidates[kept] = std::move(candidates[i]);
        ++kept;
      }
      candidates.resize(kept);
    }

    // Deterministic selection: most violated first, shorter support wins
    // ties, then lexicographic support.
    std::sort(candidates.begin(), candidates.end(),
              [](const Cut& a, const Cut& b) {
                if (a.violation != b.violation) return a.violation > b.violation;
                if (a.terms.size() != b.terms.size())
                  return a.terms.size() < b.terms.size();
                return a.terms < b.terms;
              });

    int added_this_round = 0;
    std::vector<LpBackend::CutRow> engine_rows;
    for (Cut& cut : candidates) {
      if (added_this_round >= params.cuts.max_per_round) break;
      if (!pool.add(cut)) continue;
      LinExpr expr;
      for (const auto& [var, c] : cut.terms) expr.add(var, c);
      const ConstraintId row = model.addLessEqual(
          expr, cut.rhs,
          cut.family == CutFamily::Gomory ? "cut_gmi" : "cut_cover");
      mat.push_back(Materialized{row, cut.family, 0});
      LpBackend::CutRow er;
      er.terms = cut.terms;
      er.sense = Sense::LessEqual;
      er.rhs = cut.rhs;
      engine_rows.push_back(std::move(er));
      ++added_this_round;
      ++stats.added;
      if (cut.family == CutFamily::Gomory)
        ++stats.gomory;
      else
        ++stats.cover;
      if (flight)
        flight->record(obs::FlightEventKind::CutAdded, 0, cut.violation,
                       cut.family == CutFamily::Gomory ? 0.0 : 1.0);
    }
    if (added_this_round == 0) break;

    // Re-optimize over the extended row set: incrementally (cut slacks
    // enter basic, warm dual re-solve) when the backend supports it, else
    // by rebuilding the backend over the augmented model.
    const double prev_obj = lp.objective;
    if (engine->addCutRows(engine_rows)) {
      lp = engine->solve(lower, upper, /*allow_warm=*/true);
    } else {
      engine = makeLpBackend(params.engine, model, params);
      lp = engine->coldSolve(lower, upper);
    }
    if (lp.status != LpStatus::Optimal) break;
    // Tailing off: two consecutive rounds that barely move the root bound
    // mean further rounds only bloat the row set the search inherits (a
    // single flat round often precedes more progress and is forgiven).
    if (std::abs(lp.objective - prev_obj) <=
        params.cuts.tailoff_tol * (1.0 + std::abs(prev_obj)))
      ++quiet_rounds;
    else
      quiet_rounds = 0;
    const bool tailed_off = quiet_rounds >= 2;

    // Activity aging: a cut slack at this round's optimum has not bound
    // the relaxation; evict it after `evict_after_rounds` such rounds.
    for (Materialized& mc : mat) {
      const Constraint& con = model.constraint(mc.row);
      const double slack = con.rhs - con.expr.evaluate(lp.values);
      if (slack > 1e-7 * (1.0 + std::abs(con.rhs)))
        ++mc.inactive;
      else
        mc.inactive = 0;
    }
    if (tailed_off) break;
  }

  std::vector<char> drop(static_cast<std::size_t>(model.numConstraints()), 0);
  for (const Materialized& mc : mat) {
    if (mc.inactive >= params.cuts.evict_after_rounds) {
      drop[static_cast<std::size_t>(mc.row)] = 1;
      ++stats.evicted;
    } else if (mc.family == CutFamily::Gomory) {
      ++stats.gomory_active;
    } else {
      ++stats.cover_active;
    }
  }
  if (stats.evicted > 0) model.removeConstraints(drop);

  PDW_LOG(Debug, "ilp") << "root cuts: " << stats.added << " added ("
                        << stats.gomory << " gomory, " << stats.cover
                        << " cover), " << stats.evicted << " evicted in "
                        << stats.rounds << " rounds";
  return stats;
}

}  // namespace pdw::ilp

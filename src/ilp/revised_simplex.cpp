#include "ilp/revised_simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/flight.h"

namespace pdw::ilp {

RevisedSimplex::RevisedSimplex(const Model& model, const SolveParams& params)
    : model_(model),
      params_(params),
      csc_(StandardForm::buildStructuralCsc(model)) {
  n_ = model.numVars();
  m_ = model.numConstraints();
  total_ = n_ + m_;

  cost_.assign(static_cast<std::size_t>(n_), 0.0);
  for (const auto& [var, coeff] : model.objective().terms())
    cost_[static_cast<std::size_t>(var)] += coeff;

  rhs_.resize(static_cast<std::size_t>(m_));
  slack_lb_.resize(static_cast<std::size_t>(m_));
  slack_ub_.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model.constraint(i);
    rhs_[static_cast<std::size_t>(i)] = c.rhs;
    switch (c.sense) {
      case Sense::LessEqual:
        slack_lb_[static_cast<std::size_t>(i)] = 0.0;
        slack_ub_[static_cast<std::size_t>(i)] = kInfinity;
        break;
      case Sense::GreaterEqual:
        slack_lb_[static_cast<std::size_t>(i)] = -kInfinity;
        slack_ub_[static_cast<std::size_t>(i)] = 0.0;
        break;
      case Sense::Equal:
        slack_lb_[static_cast<std::size_t>(i)] = 0.0;
        slack_ub_[static_cast<std::size_t>(i)] = 0.0;
        break;
    }
  }

  alpha_.resize(static_cast<std::size_t>(m_));
  rho_.resize(static_cast<std::size_t>(m_));
  row_.resize(static_cast<std::size_t>(total_));
}

std::int64_t RevisedSimplex::blandThreshold() const {
  if (params_.bland_iteration_override > 0)
    return params_.bland_iteration_override;
  return 2000 + 40LL * (m_ + total_);
}

std::int64_t RevisedSimplex::perRunCap() const {
  return std::min<std::int64_t>(params_.simplex_iteration_limit,
                                120LL * (m_ + total_) + 5000);
}

void RevisedSimplex::columnEntries(int col, BasisLu::SparseColumn* out) const {
  out->clear();
  if (col < n_) {
    for (int k = csc_.col_start[static_cast<std::size_t>(col)];
         k < csc_.col_start[static_cast<std::size_t>(col) + 1]; ++k)
      out->emplace_back(csc_.row_index[static_cast<std::size_t>(k)],
                        csc_.value[static_cast<std::size_t>(k)]);
  } else {
    out->emplace_back(col - n_, 1.0);
  }
}

void RevisedSimplex::ftranColumn(int col, std::vector<double>* alpha) const {
  alpha->assign(static_cast<std::size_t>(m_), 0.0);
  if (col < n_) {
    for (int k = csc_.col_start[static_cast<std::size_t>(col)];
         k < csc_.col_start[static_cast<std::size_t>(col) + 1]; ++k)
      (*alpha)[static_cast<std::size_t>(
          csc_.row_index[static_cast<std::size_t>(k)])] =
          csc_.value[static_cast<std::size_t>(k)];
  } else {
    (*alpha)[static_cast<std::size_t>(col - n_)] = 1.0;
  }
  lu_.ftran(*alpha);
}

void RevisedSimplex::pivotRow(int pos, std::vector<double>* rho,
                              std::vector<double>* row) const {
  rho->assign(static_cast<std::size_t>(m_), 0.0);
  (*rho)[static_cast<std::size_t>(pos)] = 1.0;
  lu_.btran(*rho);
  // Price every nonbasic column against rho (including currently fixed
  // columns — their reduced costs must stay maintained so a later bound
  // loosening can warm-start). Basic slots are left stale on purpose.
  for (int j = 0; j < total_; ++j) {
    if (pos_of_[static_cast<std::size_t>(j)] >= 0) continue;
    double v = 0.0;
    if (j < n_) {
      for (int k = csc_.col_start[static_cast<std::size_t>(j)];
           k < csc_.col_start[static_cast<std::size_t>(j) + 1]; ++k)
        v += csc_.value[static_cast<std::size_t>(k)] *
             (*rho)[static_cast<std::size_t>(
                 csc_.row_index[static_cast<std::size_t>(k)])];
    } else {
      v = (*rho)[static_cast<std::size_t>(j - n_)];
    }
    (*row)[static_cast<std::size_t>(j)] = v;
  }
}

bool RevisedSimplex::refactor() {
  std::vector<BasisLu::SparseColumn> cols(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i)
    columnEntries(basis_[static_cast<std::size_t>(i)],
                  &cols[static_cast<std::size_t>(i)]);
  if (!lu_.factor(m_, cols)) return false;
  ++call_factorizations_;
  if (flight_) flight_->record(obs::FlightEventKind::Refactorization);
  // Re-anchor drift: both the basic values and the reduced costs are
  // recomputed from scratch against the fresh factors.
  computeBasicValues();
  computeDuals();
  return true;
}

void RevisedSimplex::computeBasicValues() {
  std::vector<double>& r = alpha_;
  r.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i)
    r[static_cast<std::size_t>(i)] = rhs_[static_cast<std::size_t>(i)];
  for (int j = 0; j < total_; ++j) {
    if (pos_of_[static_cast<std::size_t>(j)] >= 0) continue;
    const double xj = x_[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    if (j < n_) {
      for (int k = csc_.col_start[static_cast<std::size_t>(j)];
           k < csc_.col_start[static_cast<std::size_t>(j) + 1]; ++k)
        r[static_cast<std::size_t>(
            csc_.row_index[static_cast<std::size_t>(k)])] -=
            csc_.value[static_cast<std::size_t>(k)] * xj;
    } else {
      r[static_cast<std::size_t>(j - n_)] -= xj;
    }
  }
  lu_.ftran(r);
  for (int i = 0; i < m_; ++i)
    x_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] =
        r[static_cast<std::size_t>(i)];
}

void RevisedSimplex::computeDuals() {
  std::vector<double>& y = rho_;
  y.assign(static_cast<std::size_t>(m_), 0.0);
  for (int i = 0; i < m_; ++i)
    y[static_cast<std::size_t>(i)] = cost(basis_[static_cast<std::size_t>(i)]);
  lu_.btran(y);
  for (int j = 0; j < total_; ++j) {
    if (pos_of_[static_cast<std::size_t>(j)] >= 0) {
      d_[static_cast<std::size_t>(j)] = 0.0;
      continue;
    }
    if (j < n_) {
      double v = cost_[static_cast<std::size_t>(j)];
      for (int k = csc_.col_start[static_cast<std::size_t>(j)];
           k < csc_.col_start[static_cast<std::size_t>(j) + 1]; ++k)
        v -= csc_.value[static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(
                 csc_.row_index[static_cast<std::size_t>(k)])];
      d_[static_cast<std::size_t>(j)] = v;
    } else {
      d_[static_cast<std::size_t>(j)] = -y[static_cast<std::size_t>(j - n_)];
    }
  }
}

void RevisedSimplex::resetDevex() {
  devex_.assign(static_cast<std::size_t>(total_), 1.0);
}

// ---- cold path: dual Phase 1 + devex primal Phase 2 ----------------------

void RevisedSimplex::loadCold(const std::vector<double>& lower,
                              const std::vector<double>& upper) {
  lb_.assign(static_cast<std::size_t>(total_), 0.0);
  ub_.assign(static_cast<std::size_t>(total_), 0.0);
  vstat_.assign(static_cast<std::size_t>(total_), VStat::Basic);
  x_.assign(static_cast<std::size_t>(total_), 0.0);
  d_.assign(static_cast<std::size_t>(total_), 0.0);
  basis_.resize(static_cast<std::size_t>(m_));
  pos_of_.assign(static_cast<std::size_t>(total_), -1);

  for (int j = 0; j < n_; ++j) {
    const double lb = lower[static_cast<std::size_t>(j)];
    const double ub = upper[static_cast<std::size_t>(j)];
    lb_[static_cast<std::size_t>(j)] = lb;
    ub_[static_cast<std::size_t>(j)] = ub;
    if (std::isfinite(lb)) {
      vstat_[static_cast<std::size_t>(j)] = VStat::Lower;
      x_[static_cast<std::size_t>(j)] = lb;
    } else if (std::isfinite(ub)) {
      vstat_[static_cast<std::size_t>(j)] = VStat::Upper;
      x_[static_cast<std::size_t>(j)] = ub;
    } else {
      vstat_[static_cast<std::size_t>(j)] = VStat::Free;
      x_[static_cast<std::size_t>(j)] = 0.0;
    }
  }
  for (int i = 0; i < m_; ++i) {
    const int s = n_ + i;
    lb_[static_cast<std::size_t>(s)] = slack_lb_[static_cast<std::size_t>(i)];
    ub_[static_cast<std::size_t>(s)] = slack_ub_[static_cast<std::size_t>(i)];
    basis_[static_cast<std::size_t>(i)] = s;
    pos_of_[static_cast<std::size_t>(s)] = i;
    vstat_[static_cast<std::size_t>(s)] = VStat::Basic;
  }
  cur_lower_ = lower;
  cur_upper_ = upper;
}

bool RevisedSimplex::hasPrimalViolation() const {
  const double tol = params_.feasibility_tol;
  for (int i = 0; i < m_; ++i) {
    const int p = basis_[static_cast<std::size_t>(i)];
    const double v = x_[static_cast<std::size_t>(p)];
    if (v < lb_[static_cast<std::size_t>(p)] - tol ||
        v > ub_[static_cast<std::size_t>(p)] + tol)
      return true;
  }
  return false;
}

LpResult RevisedSimplex::runCold(const std::vector<double>& lower,
                                 const std::vector<double>& upper) {
  ready_ = false;
  warm_since_cold_ = 0;

  LpResult result;
  for (int j = 0; j < n_; ++j) {
    if (lower[static_cast<std::size_t>(j)] >
        upper[static_cast<std::size_t>(j)] + kEps) {
      result.status = LpStatus::Infeasible;
      result.iterations = call_iterations_;
      result.factorizations = call_factorizations_;
      return result;
    }
  }

  loadCold(lower, upper);
  if (!refactor()) {  // all-slack basis: cannot fail, defensive only
    result.status = LpStatus::IterLimit;
    result.iterations = call_iterations_;
    result.factorizations = call_factorizations_;
    return result;
  }
  resetDevex();

  // Phase 1: zero-cost dual simplex from the all-slack basis (every basis
  // is dual-feasible for the zero objective, so dual pivots just chase out
  // the bound violations). Skipped entirely when the slack start is already
  // primal feasible.
  if (hasPrimalViolation()) {
    const DualStatus phase1 = dualIterate(/*zero_cost=*/true, perRunCap());
    result.iterations = call_iterations_;
    result.factorizations = call_factorizations_;
    if (phase1 == DualStatus::Stalled) {
      result.status = LpStatus::IterLimit;
      return result;
    }
    if (phase1 == DualStatus::Infeasible) {
      result.status = LpStatus::Infeasible;
      return result;
    }
    computeDuals();  // restore real-cost reduced costs for Phase 2
  }

  const LpStatus phase2 = primalIterate();
  result.iterations = call_iterations_;
  result.factorizations = call_factorizations_;
  if (phase2 != LpStatus::Optimal) {
    result.status = phase2;
    return result;
  }

  result.status = LpStatus::Optimal;
  result.values = extractValues();
  result.objective = model_.objective().evaluate(result.values);
  ready_ = true;
  return result;
}

LpResult RevisedSimplex::coldSolve(const std::vector<double>& lower,
                                   const std::vector<double>& upper) {
  call_iterations_ = 0;
  call_dual_pivots_ = 0;
  call_factorizations_ = 0;
  return runCold(lower, upper);
}

LpResult RevisedSimplex::solve(const std::vector<double>& lower,
                               const std::vector<double>& upper,
                               bool allow_warm, bool* used_warm,
                               std::int64_t* dual_pivots) {
  call_iterations_ = 0;
  call_dual_pivots_ = 0;
  call_factorizations_ = 0;
  bool warm = false;
  LpResult result;
  if (allow_warm && ready_ && warm_since_cold_ < kColdRefreshInterval) {
    if (std::optional<LpResult> r = warmSolve(lower, upper)) {
      warm = true;
      ++warm_since_cold_;
      result = std::move(*r);
    }
  }
  if (!warm) result = runCold(lower, upper);
  if (used_warm) *used_warm = warm;
  if (dual_pivots) *dual_pivots = call_dual_pivots_;
  return result;
}

// ---- warm path: aggregated bound deltas + dual simplex -------------------

std::optional<LpResult> RevisedSimplex::warmSolve(
    const std::vector<double>& lower, const std::vector<double>& upper) {
  // Validation pass: nothing is mutated until the whole delta is known to
  // be expressible, so bailing out leaves the engine state untouched.
  for (int j = 0; j < n_; ++j) {
    const double lb = lower[static_cast<std::size_t>(j)];
    const double ub = upper[static_cast<std::size_t>(j)];
    if (lb > ub + kEps) {
      // Trivially empty box: report without touching the engine, so it can
      // keep warm-starting from its current state.
      LpResult result;
      result.status = LpStatus::Infeasible;
      result.iterations = call_iterations_;
      result.factorizations = call_factorizations_;
      return result;
    }
    if (lb == cur_lower_[static_cast<std::size_t>(j)] &&
        ub == cur_upper_[static_cast<std::size_t>(j)])
      continue;
    switch (vstat_[static_cast<std::size_t>(j)]) {
      case VStat::Basic:
        break;  // bound changes on basic columns only move the violation set
      case VStat::Lower:
        if (!std::isfinite(lb)) return std::nullopt;
        break;
      case VStat::Upper:
        if (!std::isfinite(ub)) return std::nullopt;
        break;
      case VStat::Free:
        // Free nonbasic columns rest at a value, not a bound; a bound
        // appearing under them is a cold-restart case (it never happens in
        // branch-and-bound, which only branches on bounded integers).
        return std::nullopt;
    }
  }

  // Apply: move every changed nonbasic column to its new bound and fold all
  // the deltas into ONE aggregated right-hand-side correction — a single
  // FTRAN re-prices the whole basic solution regardless of how many bounds
  // changed (the dense engine pays one rank-one pass per changed column).
  std::vector<double> agg(static_cast<std::size_t>(m_), 0.0);
  bool any_delta = false;
  const auto addColumnTimes = [&](int j, double delta) {
    if (j < n_) {
      for (int k = csc_.col_start[static_cast<std::size_t>(j)];
           k < csc_.col_start[static_cast<std::size_t>(j) + 1]; ++k)
        agg[static_cast<std::size_t>(
            csc_.row_index[static_cast<std::size_t>(k)])] +=
            csc_.value[static_cast<std::size_t>(k)] * delta;
    } else {
      agg[static_cast<std::size_t>(j - n_)] += delta;
    }
    any_delta = true;
  };

  for (int j = 0; j < n_; ++j) {
    const double lb = lower[static_cast<std::size_t>(j)];
    const double ub = upper[static_cast<std::size_t>(j)];
    if (lb == cur_lower_[static_cast<std::size_t>(j)] &&
        ub == cur_upper_[static_cast<std::size_t>(j)])
      continue;
    double delta = 0.0;
    switch (vstat_[static_cast<std::size_t>(j)]) {
      case VStat::Lower:
        delta = lb - x_[static_cast<std::size_t>(j)];
        x_[static_cast<std::size_t>(j)] = lb;
        break;
      case VStat::Upper:
        delta = ub - x_[static_cast<std::size_t>(j)];
        x_[static_cast<std::size_t>(j)] = ub;
        break;
      default:
        break;
    }
    lb_[static_cast<std::size_t>(j)] = lb;
    ub_[static_cast<std::size_t>(j)] = ub;
    cur_lower_[static_cast<std::size_t>(j)] = lb;
    cur_upper_[static_cast<std::size_t>(j)] = ub;
    if (delta != 0.0) addColumnTimes(j, delta);
  }

  // Dual feasibility repair. Bound changes never touch reduced costs, but
  // loosening a bound can resurrect a column that was pinned (lb == ub) at
  // the previous optimum while resting at the dual-wrong bound — it was
  // allowed to stay there because it could not move. Flip it to the other
  // bound; a column with no finite bound to flip to forces a cold rebuild
  // (mutations are fine past this point, the fallback reloads everything).
  for (int j = 0; j < total_; ++j) {
    if (pos_of_[static_cast<std::size_t>(j)] >= 0 || fixedCol(j)) continue;
    const double dj = d_[static_cast<std::size_t>(j)];
    if (vstat_[static_cast<std::size_t>(j)] == VStat::Lower && dj < -1e-7) {
      if (!std::isfinite(ub_[static_cast<std::size_t>(j)]))
        return std::nullopt;
      const double delta =
          ub_[static_cast<std::size_t>(j)] - x_[static_cast<std::size_t>(j)];
      x_[static_cast<std::size_t>(j)] = ub_[static_cast<std::size_t>(j)];
      vstat_[static_cast<std::size_t>(j)] = VStat::Upper;
      if (delta != 0.0) addColumnTimes(j, delta);
    } else if (vstat_[static_cast<std::size_t>(j)] == VStat::Upper &&
               dj > 1e-7) {
      if (!std::isfinite(lb_[static_cast<std::size_t>(j)]))
        return std::nullopt;
      const double delta =
          lb_[static_cast<std::size_t>(j)] - x_[static_cast<std::size_t>(j)];
      x_[static_cast<std::size_t>(j)] = lb_[static_cast<std::size_t>(j)];
      vstat_[static_cast<std::size_t>(j)] = VStat::Lower;
      if (delta != 0.0) addColumnTimes(j, delta);
    } else if (vstat_[static_cast<std::size_t>(j)] == VStat::Free &&
               std::abs(dj) > 1e-7) {
      return std::nullopt;
    }
  }

  if (any_delta) {
    lu_.ftran(agg);  // agg becomes B^{-1} N delta, by position
    for (int i = 0; i < m_; ++i)
      x_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] -=
          agg[static_cast<std::size_t>(i)];
  }

  // Re-optimize with the dual simplex; the cap mirrors SimplexEngine — a
  // healthy warm re-solve takes a handful of pivots, and large best-first
  // jumps legitimately need more, scaling with the model.
  const std::int64_t cap = 1000 + 4LL * (m_ + total_);
  const DualStatus status = dualIterate(/*zero_cost=*/false, cap);
  if (status == DualStatus::Stalled) {
    // Degenerate-pivot stall aborts the warm re-solve; the caller falls
    // back to a cold solve (surfacing as a WarmMiss in the lane's stats).
    if (flight_)
      flight_->record(obs::FlightEventKind::DualStall, -1,
                      static_cast<double>(call_dual_pivots_));
    return std::nullopt;
  }

  LpResult result;
  result.iterations = call_iterations_;
  result.factorizations = call_factorizations_;
  if (status == DualStatus::Infeasible) {
    // The basis stays dual-feasible, so the engine remains warm-startable.
    result.status = LpStatus::Infeasible;
    return result;
  }

  // Post-solve drift scan (cheap O(n)): dual pivots should have preserved
  // the reduced-cost sign conditions; rescue via cold solve if they did not.
  for (int j = 0; j < total_; ++j) {
    if (pos_of_[static_cast<std::size_t>(j)] >= 0 || fixedCol(j)) continue;
    const double dj = d_[static_cast<std::size_t>(j)];
    switch (vstat_[static_cast<std::size_t>(j)]) {
      case VStat::Lower:
        if (dj < -1e-6) return std::nullopt;
        break;
      case VStat::Upper:
        if (dj > 1e-6) return std::nullopt;
        break;
      case VStat::Free:
        if (std::abs(dj) > 1e-6) return std::nullopt;
        break;
      case VStat::Basic:
        break;
    }
  }

  result.status = LpStatus::Optimal;
  result.values = extractValues();
  result.objective = model_.objective().evaluate(result.values);
  ready_ = true;
  return result;
}

// ---- iteration cores -----------------------------------------------------

RevisedSimplex::DualStatus RevisedSimplex::dualIterate(bool zero_cost,
                                                       std::int64_t cap) {
  const std::int64_t bland_threshold = blandThreshold();
  const double tol = params_.feasibility_tol;
  std::int64_t local = 0;
  int retries = 0;

  while (true) {
    if (local >= cap) return DualStatus::Stalled;
    const bool bland = local > bland_threshold;

    // Leaving row: the basic variable most out of bounds (Bland mode takes
    // the smallest row index instead, for termination under degeneracy).
    int r = -1;
    bool above = false;
    double worst = tol;
    for (int i = 0; i < m_; ++i) {
      const int p = basis_[static_cast<std::size_t>(i)];
      const double v = x_[static_cast<std::size_t>(p)];
      double viol = lb_[static_cast<std::size_t>(p)] - v;
      bool up = false;
      const double over = v - ub_[static_cast<std::size_t>(p)];
      if (over > viol) {
        viol = over;
        up = true;
      }
      if (viol > worst) {
        r = i;
        above = up;
        if (bland) break;
        worst = viol;
      }
    }
    if (r < 0) return DualStatus::Optimal;
    const int p = basis_[static_cast<std::size_t>(r)];

    pivotRow(r, &rho_, &row_);

    // Dual ratio test over sign-eligible columns. With the row normalized
    // by sgn (+1 when the leaving variable is above its upper bound, -1
    // below its lower), an at-lower column needs a positive normalized
    // entry to help, an at-upper column a negative one, and dual
    // feasibility survives exactly for the minimum-ratio column (ties:
    // larger |entry|, or smaller index under Bland). No candidate means the
    // row proves primal infeasibility. Phase 1 (zero_cost) treats every
    // reduced cost as 0, so all eligible ratios tie at 0 and the
    // largest-entry tie-break picks the numerically safest pivot.
    const double sgn = above ? 1.0 : -1.0;
    int q = -1;
    double best_ratio = kInfinity;
    double best_mag = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (pos_of_[static_cast<std::size_t>(j)] >= 0 || fixedCol(j)) continue;
      const double ahat = sgn * row_[static_cast<std::size_t>(j)];
      bool eligible = false;
      switch (vstat_[static_cast<std::size_t>(j)]) {
        case VStat::Lower:
          eligible = ahat > kEps;
          break;
        case VStat::Upper:
          eligible = ahat < -kEps;
          break;
        case VStat::Free:
          eligible = std::abs(ahat) > kEps;
          break;
        case VStat::Basic:
          break;
      }
      if (!eligible) continue;
      double ratio =
          zero_cost ? 0.0 : d_[static_cast<std::size_t>(j)] / ahat;
      if (ratio < 0.0) ratio = 0.0;  // dual-feasibility noise
      const bool strictly_better = ratio < best_ratio - kEps;
      const bool tie = !strictly_better && ratio <= best_ratio + kEps &&
                       q >= 0 &&
                       (bland ? j < q : std::abs(ahat) > best_mag);
      if (strictly_better || q < 0 || tie) {
        best_ratio = std::min(ratio, best_ratio);
        q = j;
        best_mag = std::abs(ahat);
      }
    }
    if (q < 0) return DualStatus::Infeasible;

    ftranColumn(q, &alpha_);
    const double piv = alpha_[static_cast<std::size_t>(r)];
    if (std::abs(piv) < kEps) {
      // FTRAN disagrees with the priced row — stale factors; re-anchor.
      if (++retries > 3 || !refactor()) return DualStatus::Stalled;
      continue;
    }
    retries = 0;

    // Primal step: drive the leaving variable exactly onto its violated
    // bound; the entering variable absorbs the move.
    const double target = above ? ub_[static_cast<std::size_t>(p)]
                                : lb_[static_cast<std::size_t>(p)];
    const double tq = (x_[static_cast<std::size_t>(p)] - target) / piv;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double a = alpha_[static_cast<std::size_t>(i)];
      if (a != 0.0)
        x_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] -=
            tq * a;
    }
    const double xq_new = x_[static_cast<std::size_t>(q)] + tq;
    const double theta = zero_cost ? 0.0 : d_[static_cast<std::size_t>(q)] / piv;

    x_[static_cast<std::size_t>(p)] = target;
    x_[static_cast<std::size_t>(q)] = xq_new;
    basis_[static_cast<std::size_t>(r)] = q;
    pos_of_[static_cast<std::size_t>(q)] = r;
    pos_of_[static_cast<std::size_t>(p)] = -1;
    vstat_[static_cast<std::size_t>(q)] = VStat::Basic;
    vstat_[static_cast<std::size_t>(p)] = above ? VStat::Upper : VStat::Lower;
    ++call_iterations_;
    ++local;
    if (!zero_cost) ++call_dual_pivots_;

    const int interval =
        lu_.usedDenseMode() ? kRefactorDense : kRefactorSparse;
    bool refreshed = false;
    if (lu_.updates() + 1 >= interval || !lu_.update(r, alpha_)) {
      if (!refactor()) return DualStatus::Stalled;
      refreshed = true;
    }
    if (!refreshed && !zero_cost) {
      // Incremental reduced-cost update from the priced pivot row.
      for (int j = 0; j < total_; ++j) {
        if (pos_of_[static_cast<std::size_t>(j)] >= 0 || j == p) continue;
        const double arj = row_[static_cast<std::size_t>(j)];
        if (arj != 0.0) d_[static_cast<std::size_t>(j)] -= theta * arj;
      }
      d_[static_cast<std::size_t>(p)] = -theta;
      d_[static_cast<std::size_t>(q)] = 0.0;
    }
  }
}

LpStatus RevisedSimplex::primalIterate() {
  const std::int64_t bland_threshold = blandThreshold();
  const std::int64_t per_run_cap = perRunCap();
  const double tol = params_.feasibility_tol;
  std::int64_t local = 0;
  int retries = 0;

  while (true) {
    if (call_iterations_ >= per_run_cap) return LpStatus::IterLimit;
    const bool bland = local > bland_threshold;

    // Devex pricing: entering column maximizing d^2 / weight among columns
    // whose reduced cost violates its sign condition (Bland: smallest such
    // index).
    int q = -1;
    double best_score = 0.0;
    for (int j = 0; j < total_; ++j) {
      if (pos_of_[static_cast<std::size_t>(j)] >= 0 || fixedCol(j)) continue;
      const double dj = d_[static_cast<std::size_t>(j)];
      bool viol = false;
      switch (vstat_[static_cast<std::size_t>(j)]) {
        case VStat::Lower:
          viol = dj < -tol;
          break;
        case VStat::Upper:
          viol = dj > tol;
          break;
        case VStat::Free:
          viol = std::abs(dj) > tol;
          break;
        case VStat::Basic:
          break;
      }
      if (!viol) continue;
      if (bland) {
        q = j;
        break;
      }
      const double score = dj * dj / devex_[static_cast<std::size_t>(j)];
      if (score > best_score) {
        best_score = score;
        q = j;
      }
    }
    if (q < 0) return LpStatus::Optimal;

    const double dq = d_[static_cast<std::size_t>(q)];
    const double sigma = (vstat_[static_cast<std::size_t>(q)] == VStat::Upper)
                             ? -1.0
                         : (vstat_[static_cast<std::size_t>(q)] == VStat::Lower)
                             ? 1.0
                             : (dq < 0.0 ? 1.0 : -1.0);
    ftranColumn(q, &alpha_);

    // Ratio test: step t >= 0 along sigma until a basic variable hits a
    // bound (ties: larger |entry|, smaller leaving index under Bland) or
    // the entering column reaches its own opposite bound (a bound flip —
    // no basis change).
    double t_best = kInfinity;
    int r = -1;
    bool leave_at_upper = false;
    double best_mag = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double delta = sigma * alpha_[static_cast<std::size_t>(i)];
      if (std::abs(delta) <= kEps) continue;
      const int p = basis_[static_cast<std::size_t>(i)];
      double t;
      bool up;
      if (delta > 0.0) {  // basic value decreases with t
        if (!std::isfinite(lb_[static_cast<std::size_t>(p)])) continue;
        t = (x_[static_cast<std::size_t>(p)] -
             lb_[static_cast<std::size_t>(p)]) /
            delta;
        up = false;
      } else {  // basic value increases with t
        if (!std::isfinite(ub_[static_cast<std::size_t>(p)])) continue;
        t = (ub_[static_cast<std::size_t>(p)] -
             x_[static_cast<std::size_t>(p)]) /
            (-delta);
        up = true;
      }
      if (t < 0.0) t = 0.0;  // degeneracy noise
      const bool strictly_better = t < t_best - kEps;
      const bool tie =
          !strictly_better && t <= t_best + kEps && r >= 0 &&
          (bland ? p < basis_[static_cast<std::size_t>(r)]
                 : std::abs(delta) > best_mag);
      if (strictly_better || r < 0 || tie) {
        t_best = std::min(t, t_best);
        r = i;
        leave_at_upper = up;
        best_mag = std::abs(delta);
      }
    }
    double t_bound = kInfinity;
    if (std::isfinite(lb_[static_cast<std::size_t>(q)]) &&
        std::isfinite(ub_[static_cast<std::size_t>(q)]))
      t_bound = ub_[static_cast<std::size_t>(q)] -
                lb_[static_cast<std::size_t>(q)];

    if (t_bound <= t_best) {
      if (!std::isfinite(t_bound)) return LpStatus::Unbounded;
      for (int i = 0; i < m_; ++i) {
        const double delta = sigma * alpha_[static_cast<std::size_t>(i)];
        if (delta != 0.0)
          x_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] -=
              t_bound * delta;
      }
      vstat_[static_cast<std::size_t>(q)] =
          (vstat_[static_cast<std::size_t>(q)] == VStat::Lower) ? VStat::Upper
                                                                : VStat::Lower;
      x_[static_cast<std::size_t>(q)] =
          (vstat_[static_cast<std::size_t>(q)] == VStat::Upper)
              ? ub_[static_cast<std::size_t>(q)]
              : lb_[static_cast<std::size_t>(q)];
      ++call_iterations_;
      ++local;
      continue;
    }
    if (r < 0) return LpStatus::Unbounded;

    const double piv = alpha_[static_cast<std::size_t>(r)];
    if (std::abs(piv) < kEps) {
      if (++retries > 3 || !refactor()) return LpStatus::IterLimit;
      continue;
    }
    retries = 0;
    const int p = basis_[static_cast<std::size_t>(r)];

    const int interval =
        lu_.usedDenseMode() ? kRefactorDense : kRefactorSparse;
    const bool want_refresh = lu_.updates() + 1 >= interval;
    // The priced pivot row (for the reduced-cost/devex updates) must be
    // computed against the pre-pivot factors.
    if (!want_refresh) pivotRow(r, &rho_, &row_);

    const double t = t_best;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double delta = sigma * alpha_[static_cast<std::size_t>(i)];
      if (delta != 0.0)
        x_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] -=
            t * delta;
    }
    x_[static_cast<std::size_t>(q)] += sigma * t;
    x_[static_cast<std::size_t>(p)] = leave_at_upper
                                          ? ub_[static_cast<std::size_t>(p)]
                                          : lb_[static_cast<std::size_t>(p)];
    basis_[static_cast<std::size_t>(r)] = q;
    pos_of_[static_cast<std::size_t>(q)] = r;
    pos_of_[static_cast<std::size_t>(p)] = -1;
    vstat_[static_cast<std::size_t>(q)] = VStat::Basic;
    vstat_[static_cast<std::size_t>(p)] =
        leave_at_upper ? VStat::Upper : VStat::Lower;
    ++call_iterations_;
    ++local;

    bool refreshed = true;
    if (!want_refresh && lu_.update(r, alpha_)) {
      refreshed = false;
    } else if (!refactor()) {
      return LpStatus::IterLimit;
    }
    if (!refreshed) {
      const double theta = dq / piv;
      const double wq = devex_[static_cast<std::size_t>(q)];
      bool blown = false;
      for (int j = 0; j < total_; ++j) {
        if (pos_of_[static_cast<std::size_t>(j)] >= 0 || j == p) continue;
        const double arj = row_[static_cast<std::size_t>(j)];
        if (arj == 0.0) continue;
        d_[static_cast<std::size_t>(j)] -= theta * arj;
        const double ref = (arj / piv) * (arj / piv) * wq;
        if (ref > devex_[static_cast<std::size_t>(j)]) {
          devex_[static_cast<std::size_t>(j)] = ref;
          if (ref > 1e8) blown = true;
        }
      }
      d_[static_cast<std::size_t>(p)] = -theta;
      d_[static_cast<std::size_t>(q)] = 0.0;
      devex_[static_cast<std::size_t>(p)] = std::max(wq / (piv * piv), 1.0);
      if (devex_[static_cast<std::size_t>(p)] > 1e8) blown = true;
      if (blown) resetDevex();
    }
  }
}

bool RevisedSimplex::tableauRow(VarId var, TableauRowView* out) const {
  if (!ready_ || var < 0 || var >= n_) return false;
  const int pos = pos_of_[static_cast<std::size_t>(var)];
  if (pos < 0) return false;

  pivotRow(pos, &rho_, &row_);
  out->coeff.assign(static_cast<std::size_t>(total_), 0.0);
  out->status.resize(static_cast<std::size_t>(total_));
  out->lower.resize(static_cast<std::size_t>(total_));
  out->upper.resize(static_cast<std::size_t>(total_));

  // The row equation x_var + sum_j a_j x_j = rhs must hold identically over
  // the row space, so the constant is recovered from the *current* point:
  // nonbasic columns rest exactly at x_.
  double rhs = x_[static_cast<std::size_t>(var)];
  for (int j = 0; j < total_; ++j) {
    out->lower[static_cast<std::size_t>(j)] = lb_[static_cast<std::size_t>(j)];
    out->upper[static_cast<std::size_t>(j)] = ub_[static_cast<std::size_t>(j)];
    if (pos_of_[static_cast<std::size_t>(j)] >= 0) {
      out->status[static_cast<std::size_t>(j)] = ColStatus::Basic;
      continue;
    }
    switch (vstat_[static_cast<std::size_t>(j)]) {
      case VStat::Lower:
        out->status[static_cast<std::size_t>(j)] = ColStatus::AtLower;
        break;
      case VStat::Upper:
        out->status[static_cast<std::size_t>(j)] = ColStatus::AtUpper;
        break;
      default:
        out->status[static_cast<std::size_t>(j)] = ColStatus::Free;
        break;
    }
    const double a = row_[static_cast<std::size_t>(j)];
    out->coeff[static_cast<std::size_t>(j)] = a;
    if (a != 0.0) rhs += a * x_[static_cast<std::size_t>(j)];
  }
  out->rhs = rhs;
  return true;
}

bool RevisedSimplex::addCutRows(const std::vector<CutRow>& rows) {
  if (rows.empty()) return true;
  const int added = static_cast<int>(rows.size());
  const int old_m = m_;

  for (const CutRow& row : rows) {
    rhs_.push_back(row.rhs);
    switch (row.sense) {
      case Sense::LessEqual:
        slack_lb_.push_back(0.0);
        slack_ub_.push_back(kInfinity);
        break;
      case Sense::GreaterEqual:
        slack_lb_.push_back(-kInfinity);
        slack_ub_.push_back(0.0);
        break;
      case Sense::Equal:
        slack_lb_.push_back(0.0);
        slack_ub_.push_back(0.0);
        break;
    }
  }

  // Extend the CSC: per-column new entries arrive in ascending row order
  // (cut k lands on row old_m + k), so appending them after each column's
  // existing entries keeps rows sorted within columns.
  std::vector<std::vector<std::pair<int, double>>> extra(
      static_cast<std::size_t>(n_));
  for (int k = 0; k < added; ++k)
    for (const auto& [v, c] : rows[static_cast<std::size_t>(k)].terms)
      if (v >= 0 && v < n_ && c != 0.0)
        extra[static_cast<std::size_t>(v)].emplace_back(old_m + k, c);
  StandardForm::Csc next;
  next.num_rows = old_m + added;
  next.num_cols = n_;
  next.col_start.resize(static_cast<std::size_t>(n_) + 1);
  next.col_start[0] = 0;
  for (int j = 0; j < n_; ++j) {
    const int old_len = csc_.col_start[static_cast<std::size_t>(j) + 1] -
                        csc_.col_start[static_cast<std::size_t>(j)];
    next.col_start[static_cast<std::size_t>(j) + 1] =
        next.col_start[static_cast<std::size_t>(j)] + old_len +
        static_cast<int>(extra[static_cast<std::size_t>(j)].size());
  }
  next.row_index.reserve(static_cast<std::size_t>(next.col_start.back()));
  next.value.reserve(static_cast<std::size_t>(next.col_start.back()));
  for (int j = 0; j < n_; ++j) {
    for (int k = csc_.col_start[static_cast<std::size_t>(j)];
         k < csc_.col_start[static_cast<std::size_t>(j) + 1]; ++k) {
      next.row_index.push_back(csc_.row_index[static_cast<std::size_t>(k)]);
      next.value.push_back(csc_.value[static_cast<std::size_t>(k)]);
    }
    for (const auto& [row, coeff] : extra[static_cast<std::size_t>(j)]) {
      next.row_index.push_back(row);
      next.value.push_back(coeff);
    }
  }
  csc_ = std::move(next);

  m_ += added;
  total_ = n_ + m_;
  alpha_.resize(static_cast<std::size_t>(m_));
  rho_.resize(static_cast<std::size_t>(m_));
  row_.resize(static_cast<std::size_t>(total_));

  // Extend the loaded state, if any: each new slack enters the basis at the
  // value its row activity dictates, with reduced cost 0. Block structure
  // makes this exact — the extended basis is [[B, 0], [C, I]], so the old
  // duals and basic values are untouched and the new rows' duals are 0:
  // the state stays dual-feasible and only the new slacks may sit out of
  // bounds, which the next warm dual re-solve drives out.
  if (!vstat_.empty()) {
    for (int k = 0; k < added; ++k) {
      const int row = old_m + k;
      const int s = n_ + row;
      double activity = 0.0;
      for (const auto& [v, c] : rows[static_cast<std::size_t>(k)].terms)
        if (v >= 0 && v < n_) activity += c * x_[static_cast<std::size_t>(v)];
      lb_.push_back(slack_lb_[static_cast<std::size_t>(row)]);
      ub_.push_back(slack_ub_[static_cast<std::size_t>(row)]);
      vstat_.push_back(VStat::Basic);
      x_.push_back(rhs_[static_cast<std::size_t>(row)] - activity);
      d_.push_back(0.0);
      basis_.push_back(s);
      pos_of_.push_back(row);
      if (!devex_.empty()) devex_.push_back(1.0);
    }
    if (ready_ && !refactor()) ready_ = false;
  }
  return true;
}

std::vector<double> RevisedSimplex::extractValues() const {
  std::vector<double> values(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j)
    values[static_cast<std::size_t>(j)] = x_[static_cast<std::size_t>(j)];
  return values;
}

void RevisedSimplex::collectReducedCostFixes(double gap,
                                             double integrality_tol,
                                             std::vector<Fix>* out) const {
  if (!ready_ || !std::isfinite(gap)) return;
  for (int j = 0; j < n_; ++j) {
    if (pos_of_[static_cast<std::size_t>(j)] >= 0) continue;
    if (model_.var(j).type == VarType::Continuous) continue;
    if (fixedCol(j)) continue;
    // Nonbasic at a bound: moving the variable by one integer step costs at
    // least |reduced cost|, so a margin above the incumbent gap proves no
    // improving solution moves it.
    double margin = 0.0;
    switch (vstat_[static_cast<std::size_t>(j)]) {
      case VStat::Lower:
        margin = d_[static_cast<std::size_t>(j)];
        break;
      case VStat::Upper:
        margin = -d_[static_cast<std::size_t>(j)];
        break;
      default:
        continue;
    }
    if (margin <= gap + 1e-6) continue;
    const double value = x_[static_cast<std::size_t>(j)];
    // Only fix to (near-)integral bounds — an unattainable fractional bound
    // would invalidate the one-integer-step cost argument.
    if (std::abs(value - std::round(value)) > integrality_tol) continue;
    out->push_back(Fix{j, std::round(value)});
  }
}

}  // namespace pdw::ilp

// Engine-agnostic LP backend seam.
//
// Branch-and-bound, the lazy-cut callback and the standalone `ilp::solve`
// LP path all talk to this interface instead of a concrete simplex
// implementation, so the MILP layer does not know which LP engine is
// underneath (the solver-abstraction shape of TCPSPSuite's
// contrib/ilpabstraction, DESIGN.md §12). Two backends ship in-tree:
//
//  * "revised" (default) — sparse revised simplex over a factorized basis
//    (revised_simplex.h): CSC storage, Markowitz LU with product-form
//    updates and periodic refactorization, native bounded-variable columns,
//    devex pricing.
//  * "dense" — the original dense-tableau SimplexEngine (dual_simplex.h),
//    kept as the cross-check oracle for the differential test suite.
//
// Both honor the same warm-start contract (DESIGN.md §11): `solve` with
// `allow_warm` re-optimizes with the dual simplex from the engine's current
// basis after the caller's bound deltas, falls back to a cold solve
// deterministically, and exposes reduced-cost fixing at the node optimum.
// Backends are stateful and single-threaded by design — one instance per
// branch-and-bound lane.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ilp/types.h"

namespace pdw::obs {
class FlightRecorder;
}

namespace pdw::ilp {

class Model;

class LpBackend {
 public:
  /// A reduced-cost bound fixing: `var` provably sits at `value` in every
  /// improving solution of the current subtree.
  struct Fix {
    VarId var = -1;
    double value = 0.0;
  };

  /// Where a canonical column sits in the basis the backend last solved
  /// with. The canonical column space is shared by both engines: columns
  /// 0..n-1 are the model variables, column n+r is the slack of constraint
  /// row r defined by `a_r . x + s_r = rhs_r` (so s_r >= 0 for LessEqual,
  /// s_r <= 0 for GreaterEqual, s_r == 0 for Equal rows).
  enum class ColStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };

  /// One row of the optimal simplex tableau in the canonical column space,
  /// extracted by tableauRow(). The equation
  ///
  ///   x_var + sum_j coeff[j] * col_j = rhs        (j over nonbasic columns)
  ///
  /// holds for every point satisfying the constraint rows, which is what a
  /// Gomory derivation needs. `coeff` entries of basic columns are zeroed;
  /// `lower`/`upper` carry the bounds of every canonical column under the
  /// engine's current load (slack bounds come from the row sense).
  struct TableauRowView {
    std::vector<double> coeff;
    std::vector<ColStatus> status;
    std::vector<double> lower, upper;
    double rhs = 0.0;
  };

  /// A cut row to append to the engine: `terms . x (sense) rhs`. Terms are
  /// sorted by VarId with duplicates merged (LinExpr discipline).
  struct CutRow {
    std::vector<std::pair<VarId, double>> terms;
    Sense sense = Sense::LessEqual;
    double rhs = 0.0;
  };

  virtual ~LpBackend() = default;

  /// Solve the LP with the given bounds. When `allow_warm` and the backend
  /// holds a usable dual-feasible state, re-optimizes with the dual simplex
  /// (setting *used_warm); otherwise runs a cold solve. Either path returns
  /// the same status/objective (the warm path is exact, not approximate).
  /// `dual_pivots` receives the dual pivots of this call.
  virtual LpResult solve(const std::vector<double>& lower,
                         const std::vector<double>& upper, bool allow_warm,
                         bool* used_warm = nullptr,
                         std::int64_t* dual_pivots = nullptr) = 0;

  /// Full cold solve from scratch (also resets the warm state).
  virtual LpResult coldSolve(const std::vector<double>& lower,
                             const std::vector<double>& upper) = 0;

  /// True when the backend holds a dual-feasible basis a warm solve can
  /// start from.
  virtual bool warmReady() const = 0;

  /// Reduced-cost fixings at the current optimum: every nonbasic integer
  /// variable whose reduced cost exceeds `gap` (incumbent objective minus
  /// this LP's objective) by a safety margin. Only valid immediately after
  /// a solve that returned Optimal.
  virtual void collectReducedCostFixes(double gap, double integrality_tol,
                                       std::vector<Fix>* out) const = 0;

  /// Extract the optimal-tableau row of the *basic* model variable `var`
  /// into `out` (see TableauRowView). Only meaningful immediately after a
  /// solve that returned Optimal. Returns false when `var` is nonbasic, the
  /// backend holds no optimal basis, or extraction is not supported — the
  /// Gomory separator just skips the variable then.
  virtual bool tableauRow(VarId var, TableauRowView* out) const {
    (void)var;
    (void)out;
    return false;
  }

  /// Append cut rows to the engine *without* rebuilding its standard form:
  /// each row arrives with its slack basic, so the current basis stays
  /// valid and dual-feasible and the next `solve(..., allow_warm=true)`
  /// re-optimizes with the dual simplex from it (the classic cut-loop warm
  /// start). Returns false when the backend does not support incremental
  /// rows — the separation loop then rebuilds a fresh backend over the
  /// augmented model and cold-solves, which is slower but identical.
  virtual bool addCutRows(const std::vector<CutRow>& rows) {
    (void)rows;
    return false;
  }

  /// Registry name of this backend ("revised", "dense", ...).
  virtual const char* name() const = 0;

  /// Attach a flight recorder (obs/flight.h) owned by the calling lane; the
  /// backend records engine-level events (refactorizations, degenerate-pivot
  /// stalls) into it. nullptr (the default) disables recording. The recorder
  /// must outlive the backend or be detached before destruction.
  virtual void setFlightRecorder(obs::FlightRecorder* recorder) {
    (void)recorder;
  }
};

/// Factory signature: `model` and `params` must outlive the backend.
using LpBackendFactory = std::function<std::unique_ptr<LpBackend>(
    const Model& model, const SolveParams& params)>;

/// Register a backend under `name` (replaces a previous registration of the
/// same name). The built-ins "revised" and "dense" are pre-registered.
void registerLpBackend(const std::string& name, LpBackendFactory factory);

/// Instantiate the backend selected by `name` ("" resolves to
/// defaultLpBackendName()). An unknown name falls back to the default with
/// a warning — solves must not fail over a config typo.
std::unique_ptr<LpBackend> makeLpBackend(const std::string& name,
                                         const Model& model,
                                         const SolveParams& params);

/// Registered backend names, sorted (for CLI help / diagnostics).
std::vector<std::string> lpBackendNames();

/// Name the empty engine string resolves to ("revised").
const std::string& defaultLpBackendName();

}  // namespace pdw::ilp

// Public entry point of the ILP subsystem.
//
// Usage (mirrors how src/core builds the paper's formulations):
//
//   ilp::Model m;
//   auto t_start = m.addContinuous(0, 1e4, "t_s");
//   auto order = m.addBinary("kappa");
//   m.addGreaterEqual(LinExpr(t_start) + (1.0 - LinExpr(order)) * bigM, ...);
//   m.setObjective(0.4 * LinExpr(t_assay) + ...);
//   ilp::Solution sol = ilp::solve(m, params);
#pragma once

#include "ilp/model.h"
#include "ilp/types.h"

namespace pdw::ilp {

/// Solve `model` (LP or MILP) with optional presolve. The model is copied
/// internally when presolve is enabled, so `model` is never mutated.
Solution solve(const Model& model, const SolveParams& params = {});

}  // namespace pdw::ilp

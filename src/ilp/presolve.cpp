#include "ilp/presolve.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace pdw::ilp {

namespace {

/// Scratch bounds presolve operates on; written back to the model once at
/// the end (and thrown away entirely for probe branches).
struct Bounds {
  std::vector<double> lower, upper;
};

struct Activity {
  double min = 0.0;
  double max = 0.0;
  bool min_finite = true;
  bool max_finite = true;
};

Activity rowActivity(const Constraint& c, const Bounds& b) {
  Activity activity;
  for (const auto& [var, coeff] : c.expr.terms()) {
    const double lo = b.lower[static_cast<std::size_t>(var)];
    const double hi = b.upper[static_cast<std::size_t>(var)];
    const double lo_term = coeff > 0 ? coeff * lo : coeff * hi;
    const double hi_term = coeff > 0 ? coeff * hi : coeff * lo;
    if (std::isfinite(lo_term)) activity.min += lo_term;
    else activity.min_finite = false;
    if (std::isfinite(hi_term)) activity.max += hi_term;
    else activity.max_finite = false;
  }
  return activity;
}

/// Worklist bound propagation over `bounds`. Seeded with `seed` rows;
/// tightening a variable re-queues every row it appears in. Returns false
/// on proven infeasibility. `max_pops <= 0` means unbounded.
bool propagate(const Model& model,
               const std::vector<std::vector<int>>& rows_of_var,
               Bounds& bounds, const std::vector<int>& seed, double tol,
               int max_pops, int* tightened) {
  const int num_rows = model.numConstraints();
  std::vector<char> queued(static_cast<std::size_t>(num_rows), 0);
  std::vector<int> queue;
  queue.reserve(seed.size());
  for (int r : seed) {
    if (r < num_rows && !queued[static_cast<std::size_t>(r)]) {
      queued[static_cast<std::size_t>(r)] = 1;
      queue.push_back(r);
    }
  }

  int pops = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    if (max_pops > 0 && ++pops > max_pops) break;  // budget: stop, stay valid
    const int ci = queue[head];
    queued[static_cast<std::size_t>(ci)] = 0;
    const Constraint& c = model.constraint(ci);
    const Activity activity = rowActivity(c, bounds);

    if (c.sense != Sense::GreaterEqual && activity.min_finite &&
        activity.min > c.rhs + tol)
      return false;
    if (c.sense != Sense::LessEqual && activity.max_finite &&
        activity.max < c.rhs - tol)
      return false;

    for (const auto& [var, coeff] : c.expr.terms()) {
      const std::size_t v = static_cast<std::size_t>(var);
      const bool integer = model.var(var).type != VarType::Continuous;
      double new_lower = bounds.lower[v];
      double new_upper = bounds.upper[v];

      const double own_min =
          coeff > 0 ? coeff * bounds.lower[v] : coeff * bounds.upper[v];
      const double own_max =
          coeff > 0 ? coeff * bounds.upper[v] : coeff * bounds.lower[v];
      const bool others_min_finite =
          activity.min_finite && std::isfinite(own_min);
      const bool others_max_finite =
          activity.max_finite && std::isfinite(own_max);
      const double others_min =
          others_min_finite ? activity.min - own_min : 0.0;
      const double others_max =
          others_max_finite ? activity.max - own_max : 0.0;

      if (c.sense != Sense::GreaterEqual && others_min_finite) {
        // a_j x_j <= rhs - others_min
        const double budget = c.rhs - others_min;
        if (coeff > 0) {
          double candidate = budget / coeff;
          if (integer) candidate = std::floor(candidate + tol);
          new_upper = std::min(new_upper, candidate);
        } else {
          double candidate = budget / coeff;
          if (integer) candidate = std::ceil(candidate - tol);
          new_lower = std::max(new_lower, candidate);
        }
      }
      if (c.sense != Sense::LessEqual && others_max_finite) {
        // a_j x_j >= rhs - others_max
        const double budget = c.rhs - others_max;
        if (coeff > 0) {
          double candidate = budget / coeff;
          if (integer) candidate = std::ceil(candidate - tol);
          new_lower = std::max(new_lower, candidate);
        } else {
          double candidate = budget / coeff;
          if (integer) candidate = std::floor(candidate + tol);
          new_upper = std::min(new_upper, candidate);
        }
      }

      if (new_lower > new_upper + tol) return false;
      new_upper = std::max(new_upper, new_lower);  // clamp tiny crossings
      if (new_lower > bounds.lower[v] + 1e-12 ||
          new_upper < bounds.upper[v] - 1e-12) {
        bounds.lower[v] = new_lower;
        bounds.upper[v] = new_upper;
        if (tightened) ++*tightened;
        for (int r : rows_of_var[v]) {
          if (!queued[static_cast<std::size_t>(r)]) {
            queued[static_cast<std::size_t>(r)] = 1;
            queue.push_back(r);
          }
        }
      }
    }
  }
  return true;
}

bool isUnfixedBinary(const Model& model, const Bounds& b, VarId var,
                     double tol) {
  return model.var(var).type != VarType::Continuous &&
         b.lower[static_cast<std::size_t>(var)] > -tol &&
         b.upper[static_cast<std::size_t>(var)] < 1.0 + tol &&
         b.upper[static_cast<std::size_t>(var)] -
                 b.lower[static_cast<std::size_t>(var)] >
             tol;
}

/// Big-M coefficient strengthening over one inequality row, both
/// orientations handled by pre-negating GreaterEqual rows. Returns the
/// number of coefficients shrunk (the model is mutated in place).
int strengthenRow(Model& model, ConstraintId ci, const Bounds& bounds,
                  double tol) {
  const Constraint& c = model.constraint(ci);
  if (c.sense == Sense::Equal) return 0;
  const double flip = c.sense == Sense::GreaterEqual ? -1.0 : 1.0;

  int changed = 0;
  // Terms are re-read each iteration: a strengthening changes the row.
  for (std::size_t k = 0; k < model.constraint(ci).expr.terms().size(); ++k) {
    const auto [var, raw_coeff] = model.constraint(ci).expr.terms()[k];
    if (!isUnfixedBinary(model, bounds, var, tol)) continue;
    const double a = flip * raw_coeff;
    const double b = flip * model.constraint(ci).rhs;

    // Max activity of the other terms (<= orientation); must be finite.
    Activity activity = rowActivity(model.constraint(ci), bounds);
    if (flip < 0) {
      std::swap(activity.min, activity.max);
      std::swap(activity.min_finite, activity.max_finite);
      activity.min = -activity.min;
      activity.max = -activity.max;
    }
    const double own_max = std::max(a * 0.0, a * 1.0);
    if (!activity.max_finite) continue;
    const double others_max = activity.max - own_max;

    if (a > tol) {
      // Slack when x=0: d = b - others_max. If 0 < d < a, both the
      // coefficient and the rhs shrink by d; the x=1 face is unchanged and
      // the x=0 face becomes exactly the activity bound.
      const double d = b - others_max;
      if (d > tol && a > d + tol) {
        model.setConstraintCoefficient(ci, var, flip * (a - d));
        model.setConstraintRhs(ci, flip * (b - d));
        ++changed;
      }
    } else if (a < -tol) {
      // Slack when x=1: d = (b - a) - others_max. The coefficient rises
      // toward 0 by d; rhs unchanged, x=0 face unchanged.
      const double d = (b - a) - others_max;
      if (d > tol) {
        const double na = std::min(a + d, 0.0);
        model.setConstraintCoefficient(ci, var, flip * na);
        ++changed;
        if (na == 0.0) --k;  // term removed; re-examine this slot
      }
    }
  }
  return changed;
}

std::vector<std::vector<int>> buildAdjacency(const Model& model) {
  std::vector<std::vector<int>> rows_of_var(
      static_cast<std::size_t>(model.numVars()));
  for (int ci = 0; ci < model.numConstraints(); ++ci)
    for (const auto& [var, coeff] : model.constraint(ci).expr.terms()) {
      (void)coeff;
      rows_of_var[static_cast<std::size_t>(var)].push_back(ci);
    }
  return rows_of_var;
}

std::vector<int> allRows(const Model& model) {
  std::vector<int> rows(static_cast<std::size_t>(model.numConstraints()));
  for (int ci = 0; ci < model.numConstraints(); ++ci)
    rows[static_cast<std::size_t>(ci)] = ci;
  return rows;
}

}  // namespace

PresolveResult presolve(Model& model, const PresolveOptions& options) {
  PresolveResult result;
  const double tol = options.feasibility_tol;

  Bounds bounds;
  bounds.lower.resize(static_cast<std::size_t>(model.numVars()));
  bounds.upper.resize(static_cast<std::size_t>(model.numVars()));
  for (VarId v = 0; v < model.numVars(); ++v) {
    bounds.lower[static_cast<std::size_t>(v)] = model.var(v).lower;
    bounds.upper[static_cast<std::size_t>(v)] = model.var(v).upper;
  }
  std::vector<std::vector<int>> rows_of_var = buildAdjacency(model);

  // Alternate propagation and coefficient strengthening to a joint
  // fixpoint: each strengthening changes activities, which can unlock more
  // bound tightening, and vice versa.
  for (int round = 0; round < options.max_rounds; ++round) {
    result.rounds = round + 1;
    int tightened = 0;
    if (!propagate(model, rows_of_var, bounds, allRows(model), tol,
                   /*max_pops=*/0, &tightened)) {
      result.infeasible = true;
      return result;
    }
    result.bounds_tightened += tightened;

    int strengthened = 0;
    if (options.coef_tightening) {
      for (int ci = 0; ci < model.numConstraints(); ++ci)
        strengthened += strengthenRow(model, ci, bounds, tol);
      result.coefficients_tightened += strengthened;
    }
    if (tightened == 0 && strengthened == 0) break;
    if (strengthened > 0) rows_of_var = buildAdjacency(model);
  }

  // Probing: fix each binary both ways, propagate each branch in scratch
  // bounds, and harvest permanent fixings (one side infeasible) and
  // branch-joined bounds (both sides feasible).
  if (options.probing && !result.infeasible) {
    Bounds probe0, probe1;
    int probed = 0;
    bool any_probe_change = false;
    for (VarId v = 0; v < model.numVars(); ++v) {
      if (!isUnfixedBinary(model, bounds, v, tol)) continue;
      if (options.probe_var_limit > 0 && probed >= options.probe_var_limit)
        break;
      ++probed;
      const std::size_t vi = static_cast<std::size_t>(v);
      const std::vector<int>& seed = rows_of_var[vi];

      probe0 = bounds;
      probe0.lower[vi] = probe0.upper[vi] = 0.0;
      const bool feasible0 = propagate(model, rows_of_var, probe0, seed, tol,
                                       options.probe_row_limit, nullptr);
      probe1 = bounds;
      probe1.lower[vi] = probe1.upper[vi] = 1.0;
      const bool feasible1 = propagate(model, rows_of_var, probe1, seed, tol,
                                       options.probe_row_limit, nullptr);

      if (!feasible0 && !feasible1) {
        result.infeasible = true;
        return result;
      }
      if (!feasible0 || !feasible1) {
        // One branch dies; adopt the surviving branch's propagated bounds
        // wholesale (they are exactly what the fixing implies).
        bounds = feasible0 ? probe0 : probe1;
        ++result.probed_fixings;
        any_probe_change = true;
        continue;
      }
      // Both branches live: any bound valid in *both* is valid globally.
      for (std::size_t w = 0; w < bounds.lower.size(); ++w) {
        const double nl = std::min(probe0.lower[w], probe1.lower[w]);
        const double nu = std::max(probe0.upper[w], probe1.upper[w]);
        if (nl > bounds.lower[w] + 1e-12 || nu < bounds.upper[w] - 1e-12) {
          bounds.lower[w] = std::max(bounds.lower[w], nl);
          bounds.upper[w] = std::min(bounds.upper[w], nu);
          ++result.probed_bounds;
          any_probe_change = true;
        }
      }
    }
    // Probing-derived bounds can unlock one more propagation fixpoint.
    if (any_probe_change) {
      int tightened = 0;
      if (!propagate(model, rows_of_var, bounds, allRows(model), tol,
                     /*max_pops=*/0, &tightened)) {
        result.infeasible = true;
        return result;
      }
      result.bounds_tightened += tightened;
    }
  }

  // Write the final bounds back to the model.
  for (VarId v = 0; v < model.numVars(); ++v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    if (bounds.lower[vi] != model.var(v).lower ||
        bounds.upper[vi] != model.var(v).upper)
      model.setBounds(v, bounds.lower[vi], bounds.upper[vi]);
  }

  // Redundant-row elimination under the final bounds: an inequality whose
  // worst-case activity already satisfies it can never bind, at the root or
  // in any branch-and-bound subtree (branching only tightens bounds, which
  // only shrinks the activity interval). Equalities are never dropped — they
  // pin the solution even when currently satisfied as an interval.
  std::vector<char> drop(static_cast<std::size_t>(model.numConstraints()), 0);
  for (int ci = 0; ci < model.numConstraints(); ++ci) {
    const Constraint& c = model.constraint(ci);
    if (c.sense == Sense::Equal) continue;
    const Activity activity = rowActivity(c, bounds);
    const bool redundant =
        c.sense == Sense::LessEqual
            ? (activity.max_finite && activity.max <= c.rhs + tol)
            : (activity.min_finite && activity.min >= c.rhs - tol);
    if (redundant) drop[static_cast<std::size_t>(ci)] = 1;
  }
  result.rows_removed = model.removeConstraints(drop);

  PDW_LOG(Debug, "ilp") << "presolve tightened " << result.bounds_tightened
                        << " bounds, " << result.coefficients_tightened
                        << " coefficients, fixed " << result.probed_fixings
                        << " probed binaries (+" << result.probed_bounds
                        << " probed bounds) and removed "
                        << result.rows_removed << " redundant rows in "
                        << result.rounds << " rounds";
  return result;
}

PresolveResult presolve(Model& model, double feasibility_tol, int max_rounds) {
  PresolveOptions options;
  options.feasibility_tol = feasibility_tol;
  options.max_rounds = max_rounds;
  // The legacy entry point is pure activity propagation (pre-PR-6
  // behaviour); the solver path opts into probing/strengthening explicitly.
  options.probing = false;
  options.coef_tightening = false;
  return presolve(model, options);
}

}  // namespace pdw::ilp

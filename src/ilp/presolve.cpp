#include "ilp/presolve.h"

#include <cmath>

#include "util/logging.h"

namespace pdw::ilp {

namespace {

struct Activity {
  double min = 0.0;
  double max = 0.0;
  bool min_finite = true;
  bool max_finite = true;
};

Activity rowActivity(const Model& model, const Constraint& c) {
  Activity activity;
  for (const auto& [var, coeff] : c.expr.terms()) {
    const Variable& v = model.var(var);
    const double lo_term = coeff > 0 ? coeff * v.lower : coeff * v.upper;
    const double hi_term = coeff > 0 ? coeff * v.upper : coeff * v.lower;
    if (std::isfinite(lo_term)) activity.min += lo_term;
    else activity.min_finite = false;
    if (std::isfinite(hi_term)) activity.max += hi_term;
    else activity.max_finite = false;
  }
  return activity;
}

}  // namespace

PresolveResult presolve(Model& model, double feasibility_tol, int max_rounds) {
  PresolveResult result;

  for (int round = 0; round < max_rounds; ++round) {
    result.rounds = round + 1;
    bool changed = false;

    for (int ci = 0; ci < model.numConstraints(); ++ci) {
      const Constraint& c = model.constraint(ci);
      const Activity activity = rowActivity(model, c);

      // Infeasibility by interval arithmetic.
      if (c.sense != Sense::GreaterEqual && activity.min_finite &&
          activity.min > c.rhs + feasibility_tol) {
        result.infeasible = true;
        return result;
      }
      if (c.sense != Sense::LessEqual && activity.max_finite &&
          activity.max < c.rhs - feasibility_tol) {
        result.infeasible = true;
        return result;
      }

      // Implied bounds: for `sum a_j x_j <= rhs`,
      //   a_j x_j <= rhs - minActivity(others)  =>  tighten x_j.
      // Equalities propagate in both directions.
      for (const auto& [var, coeff] : c.expr.terms()) {
        const Variable& v = model.var(var);
        const bool integer = v.type != VarType::Continuous;
        double new_lower = v.lower;
        double new_upper = v.upper;

        // Contribution of the other terms to the activity bounds.
        const double own_min =
            coeff > 0 ? coeff * v.lower : coeff * v.upper;
        const double own_max =
            coeff > 0 ? coeff * v.upper : coeff * v.lower;
        const bool others_min_finite =
            activity.min_finite && std::isfinite(own_min);
        const bool others_max_finite =
            activity.max_finite && std::isfinite(own_max);
        const double others_min =
            others_min_finite ? activity.min - own_min : 0.0;
        const double others_max =
            others_max_finite ? activity.max - own_max : 0.0;

        if (c.sense != Sense::GreaterEqual && others_min_finite) {
          // a_j x_j <= rhs - others_min
          const double budget = c.rhs - others_min;
          if (coeff > 0) {
            double candidate = budget / coeff;
            if (integer) candidate = std::floor(candidate + feasibility_tol);
            new_upper = std::min(new_upper, candidate);
          } else {
            double candidate = budget / coeff;
            if (integer) candidate = std::ceil(candidate - feasibility_tol);
            new_lower = std::max(new_lower, candidate);
          }
        }
        if (c.sense != Sense::LessEqual && others_max_finite) {
          // a_j x_j >= rhs - others_max
          const double budget = c.rhs - others_max;
          if (coeff > 0) {
            double candidate = budget / coeff;
            if (integer) candidate = std::ceil(candidate - feasibility_tol);
            new_lower = std::max(new_lower, candidate);
          } else {
            double candidate = budget / coeff;
            if (integer) candidate = std::floor(candidate + feasibility_tol);
            new_upper = std::min(new_upper, candidate);
          }
        }

        if (new_lower > new_upper + feasibility_tol) {
          result.infeasible = true;
          return result;
        }
        new_upper = std::max(new_upper, new_lower);  // clamp tiny crossings
        if (new_lower > v.lower + 1e-12 || new_upper < v.upper - 1e-12) {
          model.setBounds(var, new_lower, new_upper);
          ++result.bounds_tightened;
          changed = true;
        }
      }
    }

    if (!changed) break;
  }

  // Redundant-row elimination under the final bounds: an inequality whose
  // worst-case activity already satisfies it can never bind, at the root or
  // in any branch-and-bound subtree (branching only tightens bounds, which
  // only shrinks the activity interval). Equalities are never dropped — they
  // pin the solution even when currently satisfied as an interval.
  std::vector<char> drop(static_cast<std::size_t>(model.numConstraints()), 0);
  for (int ci = 0; ci < model.numConstraints(); ++ci) {
    const Constraint& c = model.constraint(ci);
    if (c.sense == Sense::Equal) continue;
    const Activity activity = rowActivity(model, c);
    const bool redundant =
        c.sense == Sense::LessEqual
            ? (activity.max_finite && activity.max <= c.rhs + feasibility_tol)
            : (activity.min_finite && activity.min >= c.rhs - feasibility_tol);
    if (redundant) drop[static_cast<std::size_t>(ci)] = 1;
  }
  result.rows_removed = model.removeConstraints(drop);

  PDW_LOG(Debug, "ilp") << "presolve tightened " << result.bounds_tightened
                        << " bounds and removed " << result.rows_removed
                        << " redundant rows in " << result.rounds << " rounds";
  return result;
}

}  // namespace pdw::ilp

// Branch-and-bound MILP solver over the simplex LP engine.
//
// Best-bound node selection with fractional branching; bound changes are
// stored as per-node diffs so node creation is O(1). The solver is a
// best-effort engine (time / node / iteration limits) exactly like the
// paper's 15-minute-capped Gurobi runs: the incumbent at the limit is
// returned with status Feasible.
#pragma once

#include "ilp/model.h"
#include "ilp/types.h"

namespace pdw::ilp {

/// Solve `model` as a mixed-integer program. Pure-LP models are delegated to
/// the simplex directly.
Solution solveMip(const Model& model, const SolveParams& params);

}  // namespace pdw::ilp

#include "ilp/expr.h"

#include <algorithm>
#include <cmath>

namespace pdw::ilp {

namespace {
constexpr double kZeroCoeffTol = 0.0;  // exact-zero removal only
}

LinExpr LinExpr::term(VarId var, double coeff) {
  LinExpr e;
  e.add(var, coeff);
  return e;
}

void LinExpr::add(VarId var, double coeff) {
  if (coeff == kZeroCoeffTol) return;
  terms_.emplace_back(var, coeff);
  normalize();
}

double LinExpr::coefficient(VarId var) const {
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), var,
      [](const auto& term, VarId v) { return term.first < v; });
  return it != terms_.end() && it->first == var ? it->second : 0.0;
}

void LinExpr::setCoefficient(VarId var, double coeff) {
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), var,
      [](const auto& term, VarId v) { return term.first < v; });
  if (it != terms_.end() && it->first == var) {
    if (coeff == 0.0)
      terms_.erase(it);
    else
      it->second = coeff;
  } else if (coeff != 0.0) {
    terms_.insert(it, {var, coeff});
  }
}

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  constant_ += other.constant_;
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  normalize();
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& other) {
  constant_ -= other.constant_;
  for (const auto& [var, coeff] : other.terms_)
    terms_.emplace_back(var, -coeff);
  normalize();
  return *this;
}

LinExpr& LinExpr::operator*=(double factor) {
  constant_ *= factor;
  if (factor == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [var, coeff] : terms_) coeff *= factor;
  return *this;
}

double LinExpr::evaluate(const std::vector<double>& values) const {
  double total = constant_;
  for (const auto& [var, coeff] : terms_)
    total += coeff * values[static_cast<std::size_t>(var)];
  return total;
}

void LinExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms_.size();) {
    VarId var = terms_[i].first;
    double coeff = 0.0;
    while (i < terms_.size() && terms_[i].first == var) {
      coeff += terms_[i].second;
      ++i;
    }
    if (coeff != 0.0) terms_[out++] = {var, coeff};
  }
  terms_.resize(out);
}

}  // namespace pdw::ilp

#include "ilp/branch_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "ilp/simplex.h"
#include "util/logging.h"

namespace pdw::ilp {

namespace {

using Clock = std::chrono::steady_clock;

struct Node {
  int parent = -1;    ///< index into the node arena, -1 for root
  VarId var = -1;     ///< variable whose bound this node changes
  double lower = 0.0;
  double upper = 0.0;
  double bound = -kInfinity;  ///< LP bound inherited from the parent
  int depth = 0;
};

struct QueueEntry {
  double bound;
  int node;
  bool operator>(const QueueEntry& other) const {
    return bound > other.bound;
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const SolveParams& params)
      : model_(model), params_(params), start_(Clock::now()) {
    for (VarId v = 0; v < model.numVars(); ++v)
      if (model.var(v).type != VarType::Continuous) integer_vars_.push_back(v);
  }

  Solution run() {
    Solution result;
    base_lower_.resize(static_cast<std::size_t>(model_.numVars()));
    base_upper_.resize(static_cast<std::size_t>(model_.numVars()));
    for (VarId v = 0; v < model_.numVars(); ++v) {
      base_lower_[static_cast<std::size_t>(v)] = model_.var(v).lower;
      base_upper_[static_cast<std::size_t>(v)] = model_.var(v).upper;
    }

    // Warm start: a feasible caller-provided point seeds the incumbent.
    if (params_.warm_start.size() ==
        static_cast<std::size_t>(model_.numVars())) {
      std::vector<double> warm = params_.warm_start;
      for (VarId v : integer_vars_)
        warm[static_cast<std::size_t>(v)] =
            std::round(warm[static_cast<std::size_t>(v)]);
      const std::string violation = model_.firstViolation(warm, 1e-5);
      if (violation.empty()) {
        incumbent_ = std::move(warm);
        incumbent_obj_ = model_.objective().evaluate(incumbent_);
        has_incumbent_ = true;
      } else {
        PDW_LOG(Info, "ilp") << "warm start rejected: " << violation;
      }
    }

    nodes_.push_back(Node{});  // root: no bound change
    open_.push(QueueEntry{-kInfinity, 0});

    bool hit_limit = false;
    bool lp_trouble = false;

    while (!open_.empty()) {
      if (elapsedSeconds() > params_.time_limit_seconds ||
          stats_.nodes_explored >= params_.node_limit ||
          stats_.simplex_iterations >= params_.simplex_iteration_limit) {
        hit_limit = true;
        break;
      }

      const QueueEntry entry = open_.top();
      open_.pop();
      if (has_incumbent_ && entry.bound >= incumbent_obj_ - absTol()) continue;

      resolveBounds(entry.node);
      ++stats_.nodes_explored;

      LpResult lp = solveLp(model_, params_, &lower_, &upper_);
      stats_.simplex_iterations += lp.iterations;

      if (lp.status == LpStatus::Infeasible) continue;
      if (lp.status == LpStatus::Unbounded) {
        // Unboundedness of a node relaxation implies the MILP is unbounded
        // unless integrality cuts it off; we report it conservatively only
        // from the root node.
        if (entry.node == 0 && !has_incumbent_) {
          result.status = SolveStatus::Unbounded;
          fillStats(result);
          return result;
        }
        lp_trouble = true;
        continue;
      }
      if (lp.status == LpStatus::IterLimit) {
        lp_trouble = true;  // optimality can no longer be certified
        continue;
      }

      if (has_incumbent_ && lp.objective >= incumbent_obj_ - absTol())
        continue;

      const VarId branch_var = pickBranchVariable(lp.values);
      if (branch_var < 0) {
        acceptIncumbent(lp);
        if (gapClosed()) break;
        continue;
      }

      const double value = lp.values[static_cast<std::size_t>(branch_var)];
      const double floor_value = std::floor(value + params_.integrality_tol);
      pushChild(entry.node, branch_var,
                lower_[static_cast<std::size_t>(branch_var)], floor_value,
                lp.objective);
      pushChild(entry.node, branch_var, floor_value + 1.0,
                upper_[static_cast<std::size_t>(branch_var)], lp.objective);
    }

    fillStats(result);
    if (has_incumbent_) {
      result.objective = incumbent_obj_;
      result.values = incumbent_;
      result.status = (hit_limit || lp_trouble || !open_.empty())
                          ? SolveStatus::Feasible
                          : SolveStatus::Optimal;
      if (gapClosed()) result.status = SolveStatus::Optimal;
    } else if (hit_limit) {
      result.status = elapsedSeconds() > params_.time_limit_seconds
                          ? SolveStatus::TimeLimit
                          : SolveStatus::NodeLimit;
    } else if (lp_trouble) {
      result.status = SolveStatus::IterLimit;
    } else {
      result.status = SolveStatus::Infeasible;
    }
    return result;
  }

 private:
  double absTol() const { return 1e-9; }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void fillStats(Solution& result) {
    stats_.wall_seconds = elapsedSeconds();
    stats_.best_bound = open_.empty()
                            ? (has_incumbent_ ? incumbent_obj_ : kInfinity)
                            : open_.top().bound;
    result.stats = stats_;
  }

  bool gapClosed() const {
    if (!has_incumbent_) return false;
    if (open_.empty()) return true;
    const double bound = open_.top().bound;
    const double gap = (incumbent_obj_ - bound) /
                       std::max(1.0, std::abs(incumbent_obj_));
    return gap <= params_.mip_gap;
  }

  /// Reconstruct the bound vectors for a node by walking its diff chain.
  void resolveBounds(int node) {
    lower_ = base_lower_;
    upper_ = base_upper_;
    chain_.clear();
    for (int n = node; n > 0; n = nodes_[static_cast<std::size_t>(n)].parent)
      chain_.push_back(n);
    // Apply root-to-leaf so deeper (tighter) changes win.
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
      const Node& n = nodes_[static_cast<std::size_t>(*it)];
      lower_[static_cast<std::size_t>(n.var)] = n.lower;
      upper_[static_cast<std::size_t>(n.var)] = n.upper;
    }
  }

  /// Most-fractional branching: the integer variable whose LP value is
  /// farthest from the nearest integer. Returns -1 when the LP point is
  /// integral within tolerance.
  VarId pickBranchVariable(const std::vector<double>& values) const {
    VarId best = -1;
    double best_frac = params_.integrality_tol;
    for (VarId v : integer_vars_) {
      const double value = values[static_cast<std::size_t>(v)];
      const double frac = std::abs(value - std::round(value));
      if (frac > best_frac) {
        best_frac = frac;
        best = v;
      }
    }
    return best;
  }

  void acceptIncumbent(const LpResult& lp) {
    std::vector<double> values = lp.values;
    for (VarId v : integer_vars_) {
      auto& value = values[static_cast<std::size_t>(v)];
      value = std::round(value);
    }
    const double objective = model_.objective().evaluate(values);
    if (has_incumbent_ && objective >= incumbent_obj_ - absTol()) return;
    if (!model_.isFeasible(values, 1e-5)) {
      // Snapping pushed the point out of the feasible region (can happen on
      // near-degenerate LPs); keep searching instead of accepting it.
      PDW_LOG(Debug, "ilp") << "rejecting numerically infeasible incumbent";
      return;
    }
    incumbent_ = std::move(values);
    incumbent_obj_ = objective;
    has_incumbent_ = true;
    if (params_.log_progress) {
      PDW_LOG(Info, "ilp") << "incumbent " << incumbent_obj_ << " after "
                           << stats_.nodes_explored << " nodes";
    }
  }

  void pushChild(int parent, VarId var, double lower, double upper,
                 double bound) {
    if (lower > upper + 1e-9) return;  // empty branch
    Node node;
    node.parent = parent;
    node.var = var;
    node.lower = lower;
    node.upper = upper;
    node.bound = bound;
    node.depth = nodes_[static_cast<std::size_t>(parent)].depth + 1;
    nodes_.push_back(node);
    open_.push(QueueEntry{bound, static_cast<int>(nodes_.size()) - 1});
  }

  const Model& model_;
  const SolveParams& params_;
  Clock::time_point start_;

  std::vector<VarId> integer_vars_;
  std::vector<Node> nodes_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      open_;
  std::vector<double> base_lower_, base_upper_;
  std::vector<double> lower_, upper_;
  std::vector<int> chain_;

  std::vector<double> incumbent_;
  double incumbent_obj_ = kInfinity;
  bool has_incumbent_ = false;

  SolveStats stats_;
};

}  // namespace

Solution solveMip(const Model& model, const SolveParams& params) {
  if (model.numIntegerVars() == 0) {
    LpResult lp = solveLp(model, params);
    Solution result;
    result.stats.simplex_iterations = lp.iterations;
    switch (lp.status) {
      case LpStatus::Optimal:
        result.status = SolveStatus::Optimal;
        result.objective = lp.objective;
        result.values = std::move(lp.values);
        result.stats.best_bound = result.objective;
        break;
      case LpStatus::Infeasible:
        result.status = SolveStatus::Infeasible;
        break;
      case LpStatus::Unbounded:
        result.status = SolveStatus::Unbounded;
        break;
      case LpStatus::IterLimit:
        result.status = SolveStatus::IterLimit;
        break;
    }
    return result;
  }
  BranchAndBound solver(model, params);
  return solver.run();
}

}  // namespace pdw::ilp

#include "ilp/branch_bound.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <thread>

#include "ilp/cuts.h"
#include "ilp/lp_backend.h"
#include "ilp/simplex.h"
#include "obs/flight.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pdw::ilp {

namespace {

/// Fold one finished MIP solve into the registry. Counters are batched here
/// — once per solve, from the already-collected SolveStats — so the search
/// loop itself carries no per-node counter cost. The simplex call/iteration
/// counters are only added when the solve ran node LPs through the in-tree
/// engine (lp_solves > 0); pure-LP models delegate to solveLp, which counts
/// itself.
void recordMipSolve(const Solution& result, double wall_seconds) {
  namespace names = obs::names;
  obs::Registry& reg = obs::Registry::instance();
  static obs::Counter& solves = reg.counter(names::kBbSolves);
  static obs::Counter& nodes = reg.counter(names::kBbNodes);
  static obs::Counter& diver_nodes = reg.counter(names::kBbDiverNodes);
  static obs::Counter& certified = reg.counter(names::kBbRaceCertified);
  static obs::Counter& rc_fixed = reg.counter(names::kBbRcFixed);
  static obs::Counter& simplex_calls = reg.counter(names::kSimplexCalls);
  static obs::Counter& simplex_iters = reg.counter(names::kSimplexIterations);
  static obs::Counter& warm_hits = reg.counter(names::kSimplexWarmHits);
  static obs::Counter& warm_misses = reg.counter(names::kSimplexWarmMisses);
  static obs::Counter& dual_pivots = reg.counter(names::kSimplexDualPivots);
  static obs::Counter& refactorizations =
      reg.counter(names::kSimplexRefactorizations);
  static obs::Counter& cuts_added = reg.counter(names::kCutsAdded);
  static obs::Counter& cuts_gomory = reg.counter(names::kCutsGomory);
  static obs::Counter& cuts_cover = reg.counter(names::kCutsCover);
  static obs::Counter& cuts_active = reg.counter(names::kCutsActive);
  static obs::Counter& cuts_evicted = reg.counter(names::kCutsEvicted);
  static obs::Histogram& seconds = reg.histogram(names::kSolveSeconds);
  solves.increment();
  cuts_added.add(result.stats.cuts_added);
  cuts_gomory.add(result.stats.cuts_gomory);
  cuts_cover.add(result.stats.cuts_cover);
  cuts_active.add(result.stats.cuts_gomory_active +
                  result.stats.cuts_cover_active);
  cuts_evicted.add(result.stats.cuts_evicted);
  nodes.add(result.stats.nodes_explored);
  diver_nodes.add(result.stats.portfolio_nodes);
  if (result.stats.race_certified) certified.increment();
  rc_fixed.add(result.stats.rc_fixed);
  if (result.stats.lp_solves > 0) {
    simplex_calls.add(result.stats.lp_solves);
    simplex_iters.add(result.stats.simplex_iterations);
  }
  warm_hits.add(result.stats.warm_hits);
  warm_misses.add(result.stats.warm_misses);
  dual_pivots.add(result.stats.dual_pivots);
  refactorizations.add(result.stats.refactorizations);
  seconds.observe(wall_seconds);
}

using Clock = std::chrono::steady_clock;

struct Node {
  int parent = -1;    ///< index into the node arena, -1 for root
  VarId var = -1;     ///< variable whose bound this node changes
  double lower = 0.0;
  double upper = 0.0;
  double bound = -kInfinity;  ///< LP bound inherited from the parent
  int depth = 0;
  /// Reduced-cost fixes discovered at this node (range into the shared
  /// fix arena); they bind the whole subtree.
  int extra_begin = 0;
  int extra_count = 0;
  /// Pseudocost bookkeeping: which branch direction created this node and
  /// how far the parent's LP value was from the bound imposed (f for the
  /// down child, 1-f for the up child). When the node's own LP solves, the
  /// observed bound degradation divided by this distance updates `var`'s
  /// pseudocost in that direction.
  bool up_branch = false;
  double branch_dist = 0.0;
};

struct QueueEntry {
  double bound;
  int node;
  /// Best-bound first; among equal bounds, prefer the newest node (largest
  /// id). Freshly pushed children are popped right after their parent, so
  /// the simplex engine's warm state is usually one bound change away.
  bool operator>(const QueueEntry& other) const {
    if (bound != other.bound) return bound > other.bound;
    return node < other.node;
  }
};

/// Shared state of the portfolio race (one canonical best-bound search, one
/// depth-first diver). The canonical search only *publishes* its incumbents
/// and reads the `proven` certificate for early exit; it never lets the
/// diver's bound steer its exploration, which keeps its returned assignment
/// bit-identical to a single-threaded solve. The diver prunes against the
/// shared bound aggressively — its solutions are discarded, so only its
/// certificate has to be sound.
struct RaceState {
  std::atomic<double> best_obj{kInfinity};   ///< best feasible objective seen
  std::atomic<bool> proven{false};
  std::atomic<double> proven_obj{kInfinity};  ///< certified optimal objective
  std::atomic<bool> cancel{false};

  void publish(double objective) {
    double current = best_obj.load(std::memory_order_relaxed);
    while (objective < current &&
           !best_obj.compare_exchange_weak(current, objective,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
    }
  }

  void certify(double objective) {
    proven_obj.store(objective, std::memory_order_release);
    proven.store(true, std::memory_order_release);
  }
};

enum class Strategy {
  BestBound,   ///< canonical: global best-first (the sequential behavior)
  DepthFirst,  ///< diver: LIFO plunge to find incumbents early
};

class BranchAndBound {
 public:
  /// `external_flight`, when non-null, is a caller-owned recorder this lane
  /// records into instead of constructing its own — solveMip uses it to keep
  /// the root separation loop's cut events and the canonical search in one
  /// dump block. It must outlive the BranchAndBound.
  BranchAndBound(const Model& model, const SolveParams& params,
                 Strategy strategy = Strategy::BestBound,
                 RaceState* race = nullptr,
                 obs::FlightRecorder* external_flight = nullptr)
      : model_(model),
        params_(params),
        strategy_(strategy),
        race_(race),
        engine_(makeLpBackend(params.engine, model, params)),
        start_(Clock::now()) {
    for (VarId v = 0; v < model.numVars(); ++v)
      if (model.var(v).type != VarType::Continuous) integer_vars_.push_back(v);
    if (external_flight != nullptr) {
      flight_ = external_flight;
    } else if (params.flight.enabled) {
      flight_owned_ = std::make_unique<obs::FlightRecorder>(
          params.flight, canonical() ? "canonical" : "diver");
      flight_ = flight_owned_.get();
    }
    if (flight_) engine_->setFlightRecorder(flight_);
    if (params.branch_rule == BranchRule::Pseudocost) {
      const std::size_t n = static_cast<std::size_t>(model.numVars());
      pc_sum_[0].assign(n, 0.0);
      pc_sum_[1].assign(n, 0.0);
      pc_count_[0].assign(n, 0);
      pc_count_[1].assign(n, 0);
    }
  }

  Solution run() {
    Solution result;
    lower_.resize(static_cast<std::size_t>(model_.numVars()));
    upper_.resize(static_cast<std::size_t>(model_.numVars()));
    for (VarId v = 0; v < model_.numVars(); ++v) {
      lower_[static_cast<std::size_t>(v)] = model_.var(v).lower;
      upper_[static_cast<std::size_t>(v)] = model_.var(v).upper;
    }

    // Warm start: a feasible caller-provided point seeds the incumbent.
    if (params_.warm_start.size() ==
        static_cast<std::size_t>(model_.numVars())) {
      std::vector<double> warm = params_.warm_start;
      for (VarId v : integer_vars_)
        warm[static_cast<std::size_t>(v)] =
            std::round(warm[static_cast<std::size_t>(v)]);
      if (params_.warm_clamp) {
        // Warm re-entry: project the point into the variable box first
        // (stale-by-epsilon values from a previous solve of a perturbed
        // model); the full feasibility check below still decides.
        for (VarId v = 0; v < model_.numVars(); ++v) {
          double& value = warm[static_cast<std::size_t>(v)];
          value = std::clamp(value, model_.var(v).lower, model_.var(v).upper);
        }
      }
      const std::string violation = model_.firstViolation(warm, 1e-5);
      if (violation.empty()) {
        incumbent_ = std::move(warm);
        incumbent_obj_ = model_.objective().evaluate(incumbent_);
        has_incumbent_ = true;
        publishIncumbent();
      } else if (canonical()) {
        PDW_LOG(Info, "ilp") << "warm start rejected: " << violation;
      }
    }

    nodes_.push_back(Node{});  // root: no bound change
    on_path_.push_back(1);
    path_.push_back(Frame{0, 0});
    pushOpen(QueueEntry{-kInfinity, 0});

    static obs::Histogram& pivots_per_node = obs::Registry::instance()
        .histogram(obs::names::kSimplexPivotsPerNode);

    if (flight_)
      flight_->record(obs::FlightEventKind::SolveBegin, 0,
                      static_cast<double>(model_.numVars()),
                      static_cast<double>(integer_vars_.size()));

    bool hit_limit = false;
    bool lp_trouble = false;
    bool cancelled = false;

    while (!openEmpty()) {
      if (race_ && race_->cancel.load(std::memory_order_acquire)) {
        cancelled = true;
        break;
      }
      // Canonical early exit: once the diver has certified the optimal
      // objective and our own incumbent matches it, the incumbent can never
      // be replaced (incumbents must strictly improve), so the sequential
      // run would return this exact assignment too — stop proving.
      if (canonical() && race_ && has_incumbent_ &&
          race_->proven.load(std::memory_order_acquire) &&
          incumbent_obj_ <=
              race_->proven_obj.load(std::memory_order_acquire) + absTol()) {
        certified_ = true;
        break;
      }
      if (elapsedSeconds() > params_.time_limit_seconds ||
          stats_.nodes_explored >= params_.node_limit ||
          stats_.simplex_iterations >= params_.simplex_iteration_limit) {
        hit_limit = true;
        break;
      }

      const QueueEntry entry = popNext();
      if (entry.bound >= pruneBound() - absTol()) {
        // Pruned before its LP ran: the incumbent improved since this node
        // was queued. It gets a NodePruned event but no NodeOpen, so the
        // NodeOpen count stays equal to stats_.nodes_explored.
        if (flight_)
          flight_->record(obs::FlightEventKind::NodePruned, entry.node,
                          entry.bound, obs::kPruneReasonInheritedBound);
        continue;
      }

      moveTo(entry.node);
      ++stats_.nodes_explored;
      if (flight_) {
        // chain_ still holds the frames moveTo() just applied, so its size
        // is the path distance walked to reach this node.
        flight_->record(obs::FlightEventKind::BoundDelta, entry.node,
                        static_cast<double>(chain_.size()));
        flight_->record(
            obs::FlightEventKind::NodeOpen, entry.node, entry.bound,
            static_cast<double>(
                nodes_[static_cast<std::size_t>(entry.node)].depth));
      }

      // Node LP: warm dual re-solve from the engine's current basis when
      // possible, cold two-phase primal otherwise. The root is always cold
      // (there is no prior basis) and counts as neither hit nor miss.
      bool used_warm = false;
      std::int64_t dual_pivots = 0;
      LpResult lp =
          engine_->solve(lower_, upper_, params_.warm_lp && entry.node != 0,
                         &used_warm, &dual_pivots);
      ++stats_.lp_solves;
      stats_.simplex_iterations += lp.iterations;
      stats_.dual_pivots += dual_pivots;
      stats_.refactorizations += lp.factorizations;
      if (entry.node != 0) {
        if (used_warm) ++stats_.warm_hits;
        else ++stats_.warm_misses;
      }
      pivots_per_node.observe(static_cast<double>(lp.iterations));
      if (flight_) {
        // WarmMiss mirrors the stats_.warm_misses condition exactly, so the
        // dump's count reconciles with ilp.simplex.warm_misses.
        if (entry.node != 0 && !used_warm)
          flight_->record(obs::FlightEventKind::WarmMiss, entry.node);
        flight_->record(obs::FlightEventKind::NodeSolved, entry.node,
                        lp.objective, static_cast<double>(lp.iterations));
      }

      if (lp.status == LpStatus::Infeasible) {
        if (flight_)
          flight_->record(obs::FlightEventKind::NodePruned, entry.node, 0.0,
                          obs::kPruneReasonInfeasible);
        continue;
      }
      if (lp.status == LpStatus::Unbounded) {
        // Unboundedness of a node relaxation implies the MILP is unbounded
        // unless integrality cuts it off; we report it conservatively only
        // from the root node.
        if (entry.node == 0 && !has_incumbent_) {
          result.status = SolveStatus::Unbounded;
          fillStats(result);
          maybeDumpFlight(result, false);
          return result;
        }
        lp_trouble = true;
        continue;
      }
      if (lp.status == LpStatus::IterLimit) {
        lp_trouble = true;  // optimality can no longer be certified
        continue;
      }

      // Pseudocost learning: this node's LP bound degradation relative to
      // its parent, normalized by the fractional distance its branch
      // imposed. Updated before any pruning so pruned nodes teach too.
      if (params_.branch_rule == BranchRule::Pseudocost && entry.node != 0) {
        const Node& node = nodes_[static_cast<std::size_t>(entry.node)];
        if (node.var >= 0 && node.branch_dist > 1e-9 &&
            std::isfinite(node.bound)) {
          const int dir = node.up_branch ? 1 : 0;
          const double degradation =
              std::max(0.0, lp.objective - node.bound) / node.branch_dist;
          pc_sum_[dir][static_cast<std::size_t>(node.var)] += degradation;
          ++pc_count_[dir][static_cast<std::size_t>(node.var)];
          pc_total_[dir] += degradation;
          ++pc_observations_[dir];
        }
      }

      if (lp.objective >= pruneBound() - absTol()) {
        if (flight_)
          flight_->record(obs::FlightEventKind::NodePruned, entry.node,
                          lp.objective, obs::kPruneReasonLpBound);
        continue;
      }

      const VarId branch_var = pickBranchVariable(lp.values);
      if (branch_var < 0) {
        acceptIncumbent(lp);
        // The diver runs to exhaustion (pruning clears its stack once the
        // optimum is known) so that reaching an empty open set certifies
        // optimality; only the canonical search uses the gap early-stop.
        if (canonical() && gapClosed()) break;
        continue;
      }

      // Reduced-cost fixing: variables the node optimum proves immovable in
      // any improving solution are fixed for the whole subtree (both
      // children inherit the fixes through the node's extra range).
      if (params_.rc_fixing && has_incumbent_) {
        fix_buffer_.clear();
        engine_->collectReducedCostFixes(pruneBound() - lp.objective,
                                         params_.integrality_tol,
                                         &fix_buffer_);
        if (!fix_buffer_.empty()) applyRcFixes(entry.node);
      }

      const double value = lp.values[static_cast<std::size_t>(branch_var)];
      if (flight_)
        flight_->record(obs::FlightEventKind::NodeBranched, entry.node,
                        static_cast<double>(branch_var), value);
      const double floor_value = std::floor(value + params_.integrality_tol);
      const double frac =
          std::min(1.0, std::max(0.0, value - floor_value));
      pushChild(entry.node, branch_var,
                lower_[static_cast<std::size_t>(branch_var)], floor_value,
                lp.objective, frac, /*up_branch=*/false);
      pushChild(entry.node, branch_var, floor_value + 1.0,
                upper_[static_cast<std::size_t>(branch_var)], lp.objective,
                1.0 - frac, /*up_branch=*/true);
    }

    // Sound certificate for the racing canonical search: the diver pruned
    // only against objectives someone actually attained, so exhausting its
    // open set proves nothing beats the best shared objective.
    if (!canonical() && race_ && !hit_limit && !lp_trouble && !cancelled &&
        openEmpty()) {
      const double best = std::min(
          has_incumbent_ ? incumbent_obj_ : kInfinity,
          race_->best_obj.load(std::memory_order_acquire));
      if (best < kInfinity) race_->certify(best);
    }

    fillStats(result);
    if (has_incumbent_) {
      result.objective = incumbent_obj_;
      result.values = incumbent_;
      result.status = (hit_limit || lp_trouble || cancelled || !openEmpty())
                          ? SolveStatus::Feasible
                          : SolveStatus::Optimal;
      if (gapClosed() || certified_) result.status = SolveStatus::Optimal;
      result.stats.race_certified = certified_;
    } else if (hit_limit || cancelled) {
      result.status = elapsedSeconds() > params_.time_limit_seconds
                          ? SolveStatus::TimeLimit
                          : SolveStatus::NodeLimit;
    } else if (lp_trouble) {
      result.status = SolveStatus::IterLimit;
    } else {
      result.status = SolveStatus::Infeasible;
    }
    maybeDumpFlight(result, hit_limit);
    return result;
  }

 private:
  double absTol() const { return 1e-9; }

  bool canonical() const { return strategy_ == Strategy::BestBound; }

  void maybeDumpFlight(const Solution& result, bool hit_limit) const {
    if (flight_ &&
        flight_->shouldDump(hit_limit, result.stats.wall_seconds)) {
      flight_->dump(toString(result.status), result.stats.wall_seconds);
    }
  }

  /// Objective threshold for pruning. The canonical search prunes only
  /// against its *own* incumbent (determinism: its node sequence never
  /// depends on the race). The diver additionally prunes against the shared
  /// race bound — its job is certification, not its own incumbent.
  double pruneBound() const {
    double bound = has_incumbent_ ? incumbent_obj_ : kInfinity;
    if (!canonical() && race_)
      bound = std::min(bound,
                       race_->best_obj.load(std::memory_order_acquire));
    return bound;
  }

  void publishIncumbent() {
    if (race_) race_->publish(incumbent_obj_);
  }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // ---- open-set abstraction over the two strategies ----------------------
  bool openEmpty() const {
    return canonical() ? open_.empty() : stack_.empty();
  }

  QueueEntry popNext() {
    if (canonical()) {
      const QueueEntry entry = open_.top();
      open_.pop();
      return entry;
    }
    const QueueEntry entry = stack_.back();
    stack_.pop_back();
    stack_min_.pop_back();
    return entry;
  }

  void pushOpen(QueueEntry entry) {
    if (canonical()) {
      open_.push(entry);
    } else {
      stack_.push_back(entry);
      // Prefix minimum alongside the stack: bestOpenBound() in O(1).
      stack_min_.push_back(stack_min_.empty()
                               ? entry.bound
                               : std::min(entry.bound, stack_min_.back()));
    }
  }

  /// Tightest proven lower bound among open nodes (for stats/gap). O(1) for
  /// both strategies: the heap's top for best-bound, the prefix-minimum for
  /// the diver's stack.
  double bestOpenBound() const {
    if (canonical())
      return open_.empty() ? kInfinity : open_.top().bound;
    return stack_min_.empty() ? kInfinity : stack_min_.back();
  }

  void fillStats(Solution& result) {
    stats_.wall_seconds = elapsedSeconds();
    stats_.best_bound = openEmpty()
                            ? (has_incumbent_ ? incumbent_obj_ : kInfinity)
                            : bestOpenBound();
    result.stats = stats_;
  }

  bool gapClosed() const {
    if (!has_incumbent_) return false;
    if (openEmpty()) return true;
    const double bound = bestOpenBound();
    const double gap = (incumbent_obj_ - bound) /
                       std::max(1.0, std::abs(incumbent_obj_));
    return gap <= params_.mip_gap;
  }

  // ---- incremental bound tracking ----------------------------------------
  //
  // The current bound vectors mirror one root-to-node path of the tree.
  // Moving to another node undoes bound changes up to the lowest common
  // ancestor and applies the target's chain from there — O(path distance)
  // instead of the two full O(n) vector copies a per-node rebuild costs.

  struct Frame {
    int node = -1;
    std::size_t undo_begin = 0;  ///< first undo_ entry owned by this frame
  };
  struct Undo {
    VarId var = -1;
    double lower = 0.0;
    double upper = 0.0;
  };

  void setCurrentBounds(VarId var, double lower, double upper) {
    undo_.push_back(Undo{var, lower_[static_cast<std::size_t>(var)],
                         upper_[static_cast<std::size_t>(var)]});
    lower_[static_cast<std::size_t>(var)] = lower;
    upper_[static_cast<std::size_t>(var)] = upper;
  }

  void pushFrame(int node_id) {
    path_.push_back(Frame{node_id, undo_.size()});
    on_path_[static_cast<std::size_t>(node_id)] = 1;
    const Node& n = nodes_[static_cast<std::size_t>(node_id)];
    if (n.var >= 0) setCurrentBounds(n.var, n.lower, n.upper);
    for (int k = 0; k < n.extra_count; ++k) {
      const LpBackend::Fix& fix =
          rc_fixes_[static_cast<std::size_t>(n.extra_begin + k)];
      setCurrentBounds(fix.var, fix.value, fix.value);
    }
  }

  void popFrame() {
    const Frame frame = path_.back();
    path_.pop_back();
    on_path_[static_cast<std::size_t>(frame.node)] = 0;
    while (undo_.size() > frame.undo_begin) {
      const Undo& u = undo_.back();
      lower_[static_cast<std::size_t>(u.var)] = u.lower;
      upper_[static_cast<std::size_t>(u.var)] = u.upper;
      undo_.pop_back();
    }
  }

  void moveTo(int node) {
    chain_.clear();
    int n = node;
    while (!on_path_[static_cast<std::size_t>(n)]) {
      chain_.push_back(n);
      n = nodes_[static_cast<std::size_t>(n)].parent;
    }
    while (path_.back().node != n) popFrame();
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) pushFrame(*it);
  }

  /// Record the fixes in fix_buffer_ on `node_id` (the current path top) and
  /// apply them to the live bounds so both children see them.
  void applyRcFixes(int node_id) {
    Node& n = nodes_[static_cast<std::size_t>(node_id)];
    n.extra_begin = static_cast<int>(rc_fixes_.size());
    n.extra_count = static_cast<int>(fix_buffer_.size());
    for (const LpBackend::Fix& fix : fix_buffer_) {
      rc_fixes_.push_back(fix);
      setCurrentBounds(fix.var, fix.value, fix.value);
    }
    stats_.rc_fixed += static_cast<std::int64_t>(fix_buffer_.size());
  }

  /// Branch-variable selection per params_.branch_rule. Returns -1 when the
  /// LP point is integral within tolerance. Pseudocost mode falls back to
  /// most-fractional until at least one degradation has been observed.
  VarId pickBranchVariable(const std::vector<double>& values) const {
    if (params_.branch_rule == BranchRule::Pseudocost &&
        (pc_observations_[0] > 0 || pc_observations_[1] > 0))
      return pickPseudocost(values);
    return pickMostFractional(values);
  }

  /// Most-fractional branching: the integer variable whose LP value is
  /// farthest from the nearest integer (the pre-PR-6 rule).
  VarId pickMostFractional(const std::vector<double>& values) const {
    VarId best = -1;
    double best_frac = params_.integrality_tol;
    for (VarId v : integer_vars_) {
      const double value = values[static_cast<std::size_t>(v)];
      const double frac = std::abs(value - std::round(value));
      if (frac > best_frac) {
        best_frac = frac;
        best = v;
      }
    }
    return best;
  }

  /// Product-rule pseudocost branching: score each fractional variable by
  /// the product of its estimated down and up LP-bound degradations, using
  /// the direction's global average for variables without history. Strictly
  /// greater score wins and integer_vars_ is scanned in ascending id order,
  /// so ties resolve to the smallest variable id — deterministic.
  VarId pickPseudocost(const std::vector<double>& values) const {
    const double avg_down = pc_observations_[0] > 0
                                ? pc_total_[0] / static_cast<double>(
                                                     pc_observations_[0])
                                : 1.0;
    const double avg_up = pc_observations_[1] > 0
                              ? pc_total_[1] / static_cast<double>(
                                                   pc_observations_[1])
                              : 1.0;
    VarId best = -1;
    double best_score = -1.0;
    for (VarId v : integer_vars_) {
      const std::size_t vi = static_cast<std::size_t>(v);
      const double value = values[vi];
      if (std::abs(value - std::round(value)) <= params_.integrality_tol)
        continue;
      const double f_down = value - std::floor(value);
      const double f_up = 1.0 - f_down;
      const double pcd =
          pc_count_[0][vi] > 0
              ? pc_sum_[0][vi] / static_cast<double>(pc_count_[0][vi])
              : avg_down;
      const double pcu =
          pc_count_[1][vi] > 0
              ? pc_sum_[1][vi] / static_cast<double>(pc_count_[1][vi])
              : avg_up;
      const double score =
          std::max(1e-6, f_down * pcd) * std::max(1e-6, f_up * pcu);
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    return best;
  }

  void acceptIncumbent(const LpResult& lp) {
    std::vector<double> values = lp.values;
    for (VarId v : integer_vars_) {
      auto& value = values[static_cast<std::size_t>(v)];
      value = std::round(value);
    }
    const double objective = model_.objective().evaluate(values);
    if (has_incumbent_ && objective >= incumbent_obj_ - absTol()) return;
    if (!model_.isFeasible(values, 1e-5)) {
      // Snapping pushed the point out of the feasible region (can happen on
      // near-degenerate LPs); keep searching instead of accepting it.
      PDW_LOG(Debug, "ilp") << "rejecting numerically infeasible incumbent";
      return;
    }
    incumbent_ = std::move(values);
    incumbent_obj_ = objective;
    has_incumbent_ = true;
    publishIncumbent();
    if (flight_)
      flight_->record(obs::FlightEventKind::Incumbent, -1, incumbent_obj_,
                      static_cast<double>(stats_.nodes_explored));
    if (params_.log_progress) {
      PDW_LOG(Info, "ilp") << "incumbent " << incumbent_obj_ << " after "
                           << stats_.nodes_explored << " nodes";
    }
  }

  void pushChild(int parent, VarId var, double lower, double upper,
                 double bound, double branch_dist, bool up_branch) {
    if (lower > upper + 1e-9) return;  // empty branch
    Node node;
    node.parent = parent;
    node.var = var;
    node.lower = lower;
    node.upper = upper;
    node.bound = bound;
    node.depth = nodes_[static_cast<std::size_t>(parent)].depth + 1;
    node.branch_dist = branch_dist;
    node.up_branch = up_branch;
    nodes_.push_back(node);
    on_path_.push_back(0);
    pushOpen(QueueEntry{bound, static_cast<int>(nodes_.size()) - 1});
  }

  const Model& model_;
  const SolveParams& params_;
  Strategy strategy_;
  RaceState* race_;
  /// Declared before engine_ so an owned recorder outlives the backend
  /// holding a raw pointer to it (members destroy in reverse declaration
  /// order). flight_ aliases flight_owned_ or the caller's recorder.
  std::unique_ptr<obs::FlightRecorder> flight_owned_;
  obs::FlightRecorder* flight_ = nullptr;
  std::unique_ptr<LpBackend> engine_;  ///< selected via params.engine
  Clock::time_point start_;

  std::vector<VarId> integer_vars_;
  std::vector<Node> nodes_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      open_;               // BestBound strategy
  std::vector<QueueEntry> stack_;  // DepthFirst strategy
  std::vector<double> stack_min_;  // prefix minima of stack_ bounds

  std::vector<double> lower_, upper_;  // bounds of the current path
  std::vector<Frame> path_;
  std::vector<Undo> undo_;
  std::vector<char> on_path_;
  std::vector<int> chain_;
  std::vector<LpBackend::Fix> rc_fixes_;
  std::vector<LpBackend::Fix> fix_buffer_;

  std::vector<double> incumbent_;
  double incumbent_obj_ = kInfinity;
  bool has_incumbent_ = false;
  bool certified_ = false;

  /// Per-variable pseudocosts, indexed [direction][var] with direction
  /// 0 = down, 1 = up: running sum of per-unit LP-bound degradations and
  /// the number of observations. Empty unless BranchRule::Pseudocost.
  std::vector<double> pc_sum_[2];
  std::vector<std::int64_t> pc_count_[2];
  std::int64_t pc_observations_[2] = {0, 0};
  double pc_total_[2] = {0.0, 0.0};

  SolveStats stats_;
};

}  // namespace

Solution solveMip(const Model& model, const SolveParams& params) {
  PDW_TRACE_SPAN("ilp", "solve_mip");
  const auto start = Clock::now();
  const auto wallSeconds = [start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  if (model.numIntegerVars() == 0) {
    LpResult lp = solveLp(model, params);
    Solution result;
    result.stats.simplex_iterations = lp.iterations;
    switch (lp.status) {
      case LpStatus::Optimal:
        result.status = SolveStatus::Optimal;
        result.objective = lp.objective;
        result.values = std::move(lp.values);
        result.stats.best_bound = result.objective;
        break;
      case LpStatus::Infeasible:
        result.status = SolveStatus::Infeasible;
        break;
      case LpStatus::Unbounded:
        result.status = SolveStatus::Unbounded;
        break;
      case LpStatus::IterLimit:
        result.status = SolveStatus::IterLimit;
        break;
    }
    recordMipSolve(result, wallSeconds());
    return result;
  }

  // The canonical lane's flight recorder is constructed up front so the
  // root separation loop's cut events and the canonical search land in one
  // dump block (obs_check reconciles cut_added against ilp.cuts.added).
  std::unique_ptr<obs::FlightRecorder> canonical_flight;
  if (params.flight.enabled)
    canonical_flight =
        std::make_unique<obs::FlightRecorder>(params.flight, "canonical");

  // Root cutting planes, separated once on an augmented copy of the model
  // before any lane starts: both lanes inherit the same cut rows as
  // ordinary constraints, so the warm-start contract inside each lane is
  // untouched and the canonical assignment stays deterministic.
  Model augmented;
  const Model* search_model = &model;
  CutStats cut_stats;
  if (params.cuts.enabled) {
    std::vector<double> check_point;
    if (params.warm_start.size() ==
        static_cast<std::size_t>(model.numVars())) {
      std::vector<double> warm = params.warm_start;
      for (VarId v = 0; v < model.numVars(); ++v)
        if (model.var(v).type != VarType::Continuous)
          warm[static_cast<std::size_t>(v)] =
              std::round(warm[static_cast<std::size_t>(v)]);
      if (model.isFeasible(warm, 1e-5)) check_point = std::move(warm);
    }
    PDW_TRACE_SPAN("ilp", "root_cuts");
    augmented = model;
    cut_stats = separateRootCuts(augmented, params, check_point,
                                 canonical_flight.get());
    search_model = &augmented;
  }
  const auto mergeCutStats = [&cut_stats](Solution& r) {
    r.stats.cuts_added = cut_stats.added;
    r.stats.cuts_gomory = cut_stats.gomory;
    r.stats.cuts_cover = cut_stats.cover;
    r.stats.cuts_gomory_active = cut_stats.gomory_active;
    r.stats.cuts_cover_active = cut_stats.cover_active;
    r.stats.cuts_evicted = cut_stats.evicted;
    r.stats.cut_rounds = cut_stats.rounds;
  };

  if (params.portfolio_threads >= 2) {
    // Portfolio race: canonical best-bound search on this thread, a
    // depth-first diver on a second one. The diver feeds the shared
    // incumbent bound and certifies optimality early; the canonical search
    // supplies the returned assignment, so the race changes wall-clock and
    // stats but never the solution.
    RaceState race;
    Solution diver_result;
    std::thread diver([&] {
      obs::setThreadName("pdw-diver");
      PDW_TRACE_SPAN("ilp", "diver_lane");
      BranchAndBound d(*search_model, params, Strategy::DepthFirst, &race);
      diver_result = d.run();
    });
    Solution result;
    {
      PDW_TRACE_SPAN("ilp", "canonical_lane");
      BranchAndBound canonical(*search_model, params, Strategy::BestBound,
                               &race, canonical_flight.get());
      result = canonical.run();
    }
    race.cancel.store(true, std::memory_order_release);
    diver.join();
    result.stats.portfolio_nodes = diver_result.stats.nodes_explored;
    // Late certificate: the canonical search may have finished Feasible on a
    // limit right as the diver proved that very objective optimal.
    if (result.status == SolveStatus::Feasible &&
        race.proven.load(std::memory_order_acquire) &&
        result.objective <=
            race.proven_obj.load(std::memory_order_acquire) + 1e-9) {
      result.status = SolveStatus::Optimal;
      result.stats.race_certified = true;
    }
    mergeCutStats(result);
    recordMipSolve(result, wallSeconds());
    return result;
  }

  Solution result;
  {
    PDW_TRACE_SPAN("ilp", "canonical_lane");
    BranchAndBound solver(*search_model, params, Strategy::BestBound, nullptr,
                          canonical_flight.get());
    result = solver.run();
  }
  mergeCutStats(result);
  recordMipSolve(result, wallSeconds());
  return result;
}

}  // namespace pdw::ilp

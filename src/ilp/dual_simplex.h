// Persistent simplex engine with warm dual re-solves.
//
// A SimplexEngine is created once per branch-and-bound lane. It caches the
// bound-independent StandardForm (standard_form.h) and keeps its tableau,
// basis and complement flags alive between node LPs, so a child node —
// which differs from the engine's current state only in a few variable
// bounds — re-optimizes with the *dual* simplex instead of a full two-phase
// primal run:
//
//  * Reduced costs do not depend on variable bounds, so the optimal basis
//    of the previously solved node stays dual-feasible after any bound
//    change. Applying the bound deltas to the right-hand side (a rank-one
//    update per changed variable) and running dual pivots until primal
//    feasibility returns is therefore exact — no Phase 1, no basis repair.
//  * The engine warm-starts from its *current* state, whatever node that
//    was, rather than from snapshots of each node's parent basis: the
//    warm-start invariant holds between any two bound vectors, and the
//    branch-and-bound queue pops children right after their parent in the
//    common case, so the morph distance is small (DESIGN.md §11).
//  * Every guard falls back to a full cold solve deterministically: the
//    fallback decision depends only on the lane's own solve sequence, never
//    on wall-clock or other threads, so a lane's node ordering is
//    reproducible run-to-run and thread-count-independent.
//
// The engine also exposes reduced-cost fixing: at a node optimum, a
// nonbasic integer column whose reduced cost exceeds the incumbent gap
// cannot take any other integer value in an improving solution, so the
// variable can be fixed at its current bound for the whole subtree.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ilp/lp_backend.h"
#include "ilp/model.h"
#include "ilp/standard_form.h"
#include "ilp/types.h"

namespace pdw::ilp {

/// The dense-tableau backend, registered as "dense". Superseded by the
/// sparse revised simplex (revised_simplex.h) as the default engine, it is
/// kept as the cross-check oracle for the differential test suite — two
/// independent implementations agreeing on objectives within 1e-6 is the
/// main guard against silent numerics bugs in either.
class SimplexEngine final : public LpBackend {
 public:
  /// `model` and `params` must outlive the engine.
  SimplexEngine(const Model& model, const SolveParams& params);

  /// Solve the LP with the given bounds. When `allow_warm` and the engine
  /// holds a usable dual-feasible state, re-optimizes with the dual simplex
  /// (setting *used_warm); otherwise runs the cold two-phase primal. Either
  /// path returns the same status/objective (the warm path is exact, not
  /// approximate). `dual_pivots` receives the dual pivots of this call.
  LpResult solve(const std::vector<double>& lower,
                 const std::vector<double>& upper, bool allow_warm,
                 bool* used_warm = nullptr,
                 std::int64_t* dual_pivots = nullptr) override;

  /// Full two-phase primal solve from scratch (also resets the warm state).
  LpResult coldSolve(const std::vector<double>& lower,
                     const std::vector<double>& upper) override;

  /// True when the engine holds a dual-feasible basis a warm solve can
  /// start from.
  bool warmReady() const override { return ready_; }

  /// Reduced-cost fixings at the current optimum: every nonbasic integer
  /// variable whose reduced cost exceeds `gap` (incumbent objective minus
  /// this LP's objective) by a safety margin. Only valid immediately after
  /// a solve that returned Optimal.
  void collectReducedCostFixes(double gap, double integrality_tol,
                               std::vector<Fix>* out) const override;

  /// Canonical-space tableau row, reconstructed from the basis membership
  /// rather than the internal tableau: the dense column layout (free splits,
  /// complement flips, shifts, sign-flipped rows) never leaks out. Each
  /// basic tableau column is mapped to its canonical column (model variable
  /// or row slack), the canonical basis is factorized with BasisLu, and one
  /// BTRAN yields the row. Returns false on any mapping ambiguity (basic
  /// artificial, both halves of a free split basic, a nonbasic column
  /// resting away from its bounds) — the separator just skips the variable.
  bool tableauRow(VarId var, TableauRowView* out) const override;

  const char* name() const override { return "dense"; }

  void setFlightRecorder(obs::FlightRecorder* recorder) override {
    flight_ = recorder;
  }

  /// Test-only invariant probe: reconstructs the current point (all
  /// nonbasic columns at zero, basics at their rhs cells, complements and
  /// shifts unwound) and returns the worst absolute violation of the loaded
  /// row equations. A healthy tableau keeps this at rounding noise no
  /// matter how many warm deltas and pivots have been applied; anything
  /// macroscopic means the warm bookkeeping corrupted the representation.
  double debugMaxRowResidual() const;

 private:
  static constexpr double kEps = 1e-9;
  /// Minimum |pivot| admissible in the dual ratio test. kEps-sized pivots
  /// are valid in exact arithmetic but scale the pivot row by ~1/kEps,
  /// amplifying rounding noise into persistent tableau corruption; a row
  /// with only sub-tolerance candidates forces a cold rebuild instead.
  static constexpr double kDualPivotTol = 1e-7;
  /// Forced cold refresh cadence: every Nth would-be-warm solve runs cold
  /// instead, bounding numerical drift accumulated by long pivot chains.
  static constexpr std::int64_t kColdRefreshInterval = 256;

  double* rowPtr(int row);
  const double* rowPtr(int row) const;
  std::int64_t blandThreshold() const;
  bool isEnteringCandidate(int col, bool phase1) const;

  void loadCold(const std::vector<double>& lower,
                const std::vector<double>& upper);
  LpResult runCold(const std::vector<double>& lower,
                   const std::vector<double>& upper);
  std::optional<LpResult> warmSolve(const std::vector<double>& lower,
                                    const std::vector<double>& upper);

  LpStatus iterate(bool phase1);
  bool pivotPreferred(int row, double alpha, double best_mag, bool bland,
                      int current_row) const;
  void complementColumn(int col);
  void complementBasic(int row);
  void pivot(int row, int col);
  double phase1Infeasibility() const;
  void expelArtificials();
  std::vector<double> extractValues() const;

  enum class DualStatus { Optimal, Infeasible, Stalled };
  DualStatus dualIterate();

  const Model& model_;
  const SolveParams& params_;
  StandardForm form_;

  int num_rows_ = 0;
  int num_cols_ = 0;
  int width_ = 0;
  std::vector<double> tableau_;  // (num_rows_ + 2) x width_
  std::vector<int> basis_;
  std::vector<char> is_basic_;
  std::vector<char> complemented_;
  std::vector<double> shift_;      ///< per-column model-space offset
  std::vector<double> col_upper_;  ///< per-column upper bound (shifted)
  /// Model-space bounds of the last load; warm solves diff against these.
  std::vector<double> cur_lower_, cur_upper_;

  /// Load-time row bookkeeping consumed only by debugMaxRowResidual():
  /// whether the row was sign-flipped, and the post-flip slack coefficient.
  std::vector<char> debug_flip_;
  std::vector<double> debug_slack_sign_;

  /// Lazily built structural CSC over model variables, used only by
  /// tableauRow()'s canonical-basis reconstruction.
  mutable StandardForm::Csc canon_csc_;
  mutable bool canon_csc_built_ = false;

  bool has_artificials_ = false;
  bool ready_ = false;
  std::int64_t call_iterations_ = 0;
  std::int64_t call_dual_pivots_ = 0;
  std::int64_t warm_since_cold_ = 0;
  obs::FlightRecorder* flight_ = nullptr;  ///< not owned; may be null
};

}  // namespace pdw::ilp

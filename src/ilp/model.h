// Mixed-integer linear programming model container.
//
// A Model owns variables (with type, bounds, name), linear constraints and a
// minimization objective. It is solver-agnostic data; solving happens in
// `ilp::solve` (solver.h). The API deliberately mirrors the shape of the
// paper's formulation so constraint-building code in src/core reads like the
// equations (eqs. 1-26 of the paper).
#pragma once

#include <string>
#include <vector>

#include "ilp/expr.h"
#include "ilp/types.h"

namespace pdw::ilp {

struct Variable {
  std::string name;
  VarType type = VarType::Continuous;
  double lower = 0.0;
  double upper = kInfinity;
};

struct Constraint {
  std::string name;
  LinExpr expr;  ///< constant folded into rhs at solve time
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
};

class Model {
 public:
  /// Add a continuous variable with bounds [lower, upper].
  VarId addContinuous(double lower, double upper, std::string name = {});

  /// Add a general integer variable with bounds [lower, upper].
  VarId addInteger(double lower, double upper, std::string name = {});

  /// Add a 0-1 variable.
  VarId addBinary(std::string name = {});

  /// Add a constraint `expr (sense) rhs`. The expression's constant is moved
  /// to the right-hand side. Returns the constraint index.
  ConstraintId addConstr(const LinExpr& expr, Sense sense, double rhs,
                         std::string name = {});

  /// Convenience forms matching the paper's notation.
  ConstraintId addLessEqual(const LinExpr& expr, double rhs,
                            std::string name = {}) {
    return addConstr(expr, Sense::LessEqual, rhs, std::move(name));
  }
  ConstraintId addGreaterEqual(const LinExpr& expr, double rhs,
                               std::string name = {}) {
    return addConstr(expr, Sense::GreaterEqual, rhs, std::move(name));
  }
  ConstraintId addEqual(const LinExpr& expr, double rhs,
                        std::string name = {}) {
    return addConstr(expr, Sense::Equal, rhs, std::move(name));
  }

  /// Set the minimization objective (replaces any previous objective).
  void setObjective(LinExpr objective);

  /// Tighten a variable's bounds (used for branching and warm fixes).
  void setBounds(VarId var, double lower, double upper);

  /// Rewrite one coefficient of a constraint (coeff == 0 removes the term).
  /// Used by presolve coefficient strengthening, which must only apply
  /// changes that keep the integer solution set identical.
  void setConstraintCoefficient(ConstraintId c, VarId var, double coeff);

  /// Rewrite a constraint's right-hand side (companion of the above).
  void setConstraintRhs(ConstraintId c, double rhs);

  /// Remove the constraints whose index has `remove[id] != 0`. Survivors
  /// keep their relative order and are renumbered compactly, so previously
  /// held ConstraintIds are invalidated. Used by presolve to drop rows
  /// proven redundant; variable ids are unaffected.
  int removeConstraints(const std::vector<char>& remove);

  int numVars() const { return static_cast<int>(vars_.size()); }
  int numConstraints() const { return static_cast<int>(constraints_.size()); }
  int numIntegerVars() const;

  const Variable& var(VarId v) const {
    return vars_[static_cast<std::size_t>(v)];
  }
  const Constraint& constraint(ConstraintId c) const {
    return constraints_[static_cast<std::size_t>(c)];
  }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const LinExpr& objective() const { return objective_; }

  /// True if `values` satisfies every constraint, all bounds and all
  /// integrality requirements within `tol`. Used by tests and by the
  /// branch-and-bound incumbent check.
  bool isFeasible(const std::vector<double>& values, double tol = 1e-6) const;

  /// Empty string when feasible; otherwise a description of the first
  /// violated bound/integrality/constraint (diagnostics for warm starts).
  std::string firstViolation(const std::vector<double>& values,
                             double tol = 1e-6) const;

  /// Human-readable LP-format-ish dump for debugging.
  std::string debugString() const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> constraints_;
  LinExpr objective_;
};

}  // namespace pdw::ilp

#include "ilp/simplex.h"

#include "ilp/lp_backend.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pdw::ilp {

// Standalone entry point: one cold solve on the backend selected by
// `params.engine`. Branch-and-bound does not go through here — it owns a
// persistent LpBackend per lane so node LPs can warm-start (see
// lp_backend.h); this wrapper serves pure-LP models and tests, where there
// is no prior basis to reuse.
LpResult solveLp(const Model& model, const SolveParams& params,
                 const std::vector<double>* lower_override,
                 const std::vector<double>* upper_override) {
  std::vector<double> lower, upper;
  const std::size_t n = static_cast<std::size_t>(model.numVars());
  lower.reserve(n);
  upper.reserve(n);
  for (int j = 0; j < model.numVars(); ++j) {
    lower.push_back(lower_override
                        ? (*lower_override)[static_cast<std::size_t>(j)]
                        : model.var(j).lower);
    upper.push_back(upper_override
                        ? (*upper_override)[static_cast<std::size_t>(j)]
                        : model.var(j).upper);
  }
  std::unique_ptr<LpBackend> engine = makeLpBackend(params.engine, model, params);
  LpResult result = engine->coldSolve(lower, upper);
  // Batched per call, not per pivot: three relaxed adds per LP.
  static obs::Counter& calls =
      obs::Registry::instance().counter(obs::names::kSimplexCalls);
  static obs::Counter& iterations =
      obs::Registry::instance().counter(obs::names::kSimplexIterations);
  static obs::Counter& refactorizations =
      obs::Registry::instance().counter(obs::names::kSimplexRefactorizations);
  calls.increment();
  iterations.add(result.iterations);
  refactorizations.add(result.factorizations);
  return result;
}

}  // namespace pdw::ilp

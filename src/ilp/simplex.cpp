#include "ilp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "util/logging.h"

namespace pdw::ilp {

namespace {

constexpr double kEps = 1e-9;

/// One column of the standard-form problem and how it maps back to a model
/// variable: model_value += sign * (col_value + shift).
struct ColumnInfo {
  int model_var = -1;  ///< -1 for slack/surplus/artificial columns
  double sign = 1.0;
  double shift = 0.0;
  bool artificial = false;
};

class Simplex {
 public:
  Simplex(const Model& model, const SolveParams& params,
          const std::vector<double>* lower_override,
          const std::vector<double>* upper_override)
      : model_(model), params_(params) {
    buildStandardForm(lower_override, upper_override);
  }

  LpResult run() {
    LpResult result;
    if (trivially_infeasible_) {
      result.status = LpStatus::Infeasible;
      return result;
    }

    initCostRows();

    // Phase 1: minimize the sum of artificial variables.
    if (has_artificials_) {
      const LpStatus phase1 = iterate(/*phase1=*/true);
      result.iterations = iterations_;
      if (phase1 == LpStatus::IterLimit) {
        result.status = LpStatus::IterLimit;
        return result;
      }
      // Phase-1 objective is bounded below by zero, so Unbounded cannot
      // happen; any other non-optimal outcome is a numerical failure.
      if (phase1 != LpStatus::Optimal) {
        result.status = LpStatus::IterLimit;
        return result;
      }
      if (phase1Infeasibility() > 1e-6) {
        result.status = LpStatus::Infeasible;
        return result;
      }
      expelArtificials();
    }

    const LpStatus phase2 = iterate(/*phase1=*/false);
    result.iterations = iterations_;
    if (phase2 != LpStatus::Optimal) {
      result.status = phase2;
      return result;
    }

    result.status = LpStatus::Optimal;
    result.values = extractValues();
    result.objective = model_.objective().evaluate(result.values);
    return result;
  }

 private:
  // ---- standard-form construction -------------------------------------

  void buildStandardForm(const std::vector<double>* lower_override,
                         const std::vector<double>* upper_override) {
    const int n_model = model_.numVars();
    const auto lowerOf = [&](int j) {
      return lower_override ? (*lower_override)[static_cast<std::size_t>(j)]
                            : model_.var(j).lower;
    };
    const auto upperOf = [&](int j) {
      return upper_override ? (*upper_override)[static_cast<std::size_t>(j)]
                            : model_.var(j).upper;
    };

    // Map model variables to standard-form columns (all with lower bound 0).
    // `first_col_[j]` is the column of model var j; fully-free variables get
    // a second (negated) column recorded in `second_col_[j]`.
    first_col_.assign(static_cast<std::size_t>(n_model), -1);
    second_col_.assign(static_cast<std::size_t>(n_model), -1);
    for (int j = 0; j < n_model; ++j) {
      const double lb = lowerOf(j);
      const double ub = upperOf(j);
      if (lb > ub + kEps) {
        trivially_infeasible_ = true;
        return;
      }
      if (std::isfinite(lb)) {
        first_col_[static_cast<std::size_t>(j)] = addColumn(
            ColumnInfo{j, 1.0, lb, false}, std::isfinite(ub) ? ub - lb
                                                             : kInfinity);
      } else {
        // Fully free variable: x = x+ - x-.
        assert(!std::isfinite(ub) &&
               "variables must have a finite lower bound or be fully free");
        first_col_[static_cast<std::size_t>(j)] =
            addColumn(ColumnInfo{j, 1.0, 0.0, false}, kInfinity);
        second_col_[static_cast<std::size_t>(j)] =
            addColumn(ColumnInfo{j, -1.0, 0.0, false}, kInfinity);
      }
    }

    // Build rows: coefficients over structural columns, rhs shifted by the
    // lower bounds, all rhs made non-negative, slacks/artificials appended.
    const int m = model_.numConstraints();
    struct RowDraft {
      std::vector<std::pair<int, double>> cols;  // (column, coeff)
      double rhs = 0.0;
      Sense sense = Sense::LessEqual;
    };
    std::vector<RowDraft> drafts;
    drafts.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      const Constraint& c = model_.constraint(i);
      RowDraft draft;
      draft.sense = c.sense;
      draft.rhs = c.rhs;
      for (const auto& [var, coeff] : c.expr.terms()) {
        const int col = first_col_[static_cast<std::size_t>(var)];
        draft.cols.emplace_back(col, coeff);
        draft.rhs -= coeff * columns_[static_cast<std::size_t>(col)].shift;
        const int col2 = second_col_[static_cast<std::size_t>(var)];
        if (col2 >= 0) draft.cols.emplace_back(col2, -coeff);
      }
      if (draft.rhs < 0.0) {
        for (auto& [col, coeff] : draft.cols) coeff = -coeff;
        draft.rhs = -draft.rhs;
        if (draft.sense == Sense::LessEqual) draft.sense = Sense::GreaterEqual;
        else if (draft.sense == Sense::GreaterEqual)
          draft.sense = Sense::LessEqual;
      }
      drafts.push_back(std::move(draft));
    }

    // Append slack / surplus / artificial columns and fix the full width.
    std::vector<int> slack_col(drafts.size(), -1);
    std::vector<int> artificial_col(drafts.size(), -1);
    for (std::size_t i = 0; i < drafts.size(); ++i) {
      switch (drafts[i].sense) {
        case Sense::LessEqual:
          slack_col[i] = addColumn(ColumnInfo{-1, 1.0, 0.0, false}, kInfinity);
          break;
        case Sense::GreaterEqual:
          // Surplus column; written into the row with coefficient -1 below.
          slack_col[i] = addColumn(ColumnInfo{-1, 1.0, 0.0, false}, kInfinity);
          artificial_col[i] =
              addColumn(ColumnInfo{-1, 1.0, 0.0, true}, kInfinity);
          break;
        case Sense::Equal:
          artificial_col[i] =
              addColumn(ColumnInfo{-1, 1.0, 0.0, true}, kInfinity);
          break;
      }
    }

    num_rows_ = static_cast<int>(drafts.size());
    num_cols_ = static_cast<int>(columns_.size());
    width_ = num_cols_ + 1;  // + rhs column
    tableau_.assign(static_cast<std::size_t>(num_rows_ + 2) *
                        static_cast<std::size_t>(width_),
                    0.0);
    basis_.assign(static_cast<std::size_t>(num_rows_), -1);
    complemented_.assign(static_cast<std::size_t>(num_cols_), false);

    for (std::size_t i = 0; i < drafts.size(); ++i) {
      double* row = rowPtr(static_cast<int>(i));
      for (const auto& [col, coeff] : drafts[i].cols)
        row[col] += coeff;
      if (drafts[i].sense == Sense::LessEqual) {
        row[slack_col[i]] = 1.0;
        basis_[i] = slack_col[i];
      } else {
        if (slack_col[i] >= 0) row[slack_col[i]] = -1.0;
        row[artificial_col[i]] = 1.0;
        basis_[i] = artificial_col[i];
        has_artificials_ = true;
      }
      row[num_cols_] = drafts[i].rhs;
    }
  }

  int addColumn(ColumnInfo info, double upper) {
    columns_.push_back(info);
    upper_.push_back(upper);
    return static_cast<int>(columns_.size()) - 1;
  }

  void initCostRows() {
    // Phase-2 cost row: model objective mapped onto structural columns.
    double* cost2 = rowPtr(num_rows_);
    for (const auto& [var, coeff] : model_.objective().terms()) {
      const int col = first_col_[static_cast<std::size_t>(var)];
      cost2[col] += coeff;
      const int col2 = second_col_[static_cast<std::size_t>(var)];
      if (col2 >= 0) cost2[col2] -= coeff;
    }
    // Phase-1 cost row: +1 on artificials, then eliminate the entries of the
    // (artificial) basis so the row holds genuine reduced costs.
    double* cost1 = rowPtr(num_rows_ + 1);
    for (int col = 0; col < num_cols_; ++col)
      if (columns_[static_cast<std::size_t>(col)].artificial) cost1[col] = 1.0;
    for (int i = 0; i < num_rows_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (columns_[static_cast<std::size_t>(b)].artificial) {
        const double* row = rowPtr(i);
        for (int c = 0; c <= num_cols_; ++c) cost1[c] -= row[c];
      }
    }
  }

  // ---- simplex iterations ----------------------------------------------

  double* rowPtr(int row) {
    return tableau_.data() +
           static_cast<std::size_t>(row) * static_cast<std::size_t>(width_);
  }
  const double* rowPtr(int row) const {
    return tableau_.data() +
           static_cast<std::size_t>(row) * static_cast<std::size_t>(width_);
  }

  bool isEnteringCandidate(int col, bool phase1) const {
    const ColumnInfo& info = columns_[static_cast<std::size_t>(col)];
    if (!phase1 && info.artificial) return false;
    if (upper_[static_cast<std::size_t>(col)] < kEps) return false;  // fixed
    return true;
  }

  /// Runs pivots until the active cost row is optimal. Returns Optimal,
  /// Unbounded or IterLimit.
  LpStatus iterate(bool phase1) {
    const int cost_row = phase1 ? num_rows_ + 1 : num_rows_;
    const std::int64_t bland_threshold =
        2000 + 40LL * (num_rows_ + num_cols_);
    // Per-run cap: a healthy simplex finishes in O(rows + cols) pivots;
    // anything far beyond that is numerical trouble, and under
    // branch-and-bound one pathological LP must not eat the whole budget.
    const std::int64_t per_run_cap = std::min<std::int64_t>(
        params_.simplex_iteration_limit,
        120LL * (num_rows_ + num_cols_) + 5000);
    std::int64_t local_iterations = 0;

    while (true) {
      if (iterations_ >= per_run_cap) return LpStatus::IterLimit;
      const bool bland = local_iterations > bland_threshold;

      // Pricing: pick the entering column.
      const double* costs = rowPtr(cost_row);
      int entering = -1;
      double best = -params_.feasibility_tol;
      for (int col = 0; col < num_cols_; ++col) {
        if (costs[col] >= -params_.feasibility_tol) continue;
        if (!isEnteringCandidate(col, phase1)) continue;
        if (bland) {
          entering = col;
          break;
        }
        if (costs[col] < best) {
          best = costs[col];
          entering = col;
        }
      }
      if (entering < 0) return LpStatus::Optimal;

      ++iterations_;
      ++local_iterations;

      // Ratio test. Every nonbasic variable sits at zero (complement
      // invariant), so the entering variable increases from zero by t.
      double t_limit = upper_[static_cast<std::size_t>(entering)];
      int leave_row = -1;
      bool leave_at_upper = false;
      double best_pivot_mag = 0.0;
      for (int i = 0; i < num_rows_; ++i) {
        const double* row = rowPtr(i);
        const double alpha = row[entering];
        const double value = row[num_cols_];
        double ratio;
        bool at_upper;
        if (alpha > kEps) {
          ratio = value / alpha;  // basic drops to its lower bound (0)
          at_upper = false;
        } else if (alpha < -kEps) {
          const double ub = upper_[static_cast<std::size_t>(
              basis_[static_cast<std::size_t>(i)])];
          if (!std::isfinite(ub)) continue;
          ratio = (ub - value) / (-alpha);  // basic rises to its upper bound
          at_upper = true;
        } else {
          continue;
        }
        if (ratio < 0.0) ratio = 0.0;  // numerical noise on degenerate rows
        const bool strictly_better = ratio < t_limit - kEps;
        const bool tie =
            !strictly_better && ratio <= t_limit + kEps && leave_row >= 0 &&
            pivotPreferred(i, alpha, best_pivot_mag, bland, leave_row);
        if (strictly_better || tie) {
          t_limit = std::min(ratio, t_limit);
          leave_row = i;
          leave_at_upper = at_upper;
          best_pivot_mag = std::abs(alpha);
        }
      }

      if (!std::isfinite(t_limit)) return LpStatus::Unbounded;

      if (leave_row < 0) {
        // The entering variable's own upper bound binds first: bound flip.
        complementColumn(entering);
        continue;
      }

      if (leave_at_upper) {
        // The leaving basic variable exits at its upper bound; complement it
        // so it leaves at zero like every other nonbasic variable.
        complementBasic(leave_row);
      }
      pivot(leave_row, entering);
    }
  }

  /// Tie-break for rows achieving (numerically) the same min ratio.
  bool pivotPreferred(int row, double alpha, double best_mag, bool bland,
                      int current_row) const {
    if (bland) {
      return basis_[static_cast<std::size_t>(row)] <
             basis_[static_cast<std::size_t>(current_row)];
    }
    return std::abs(alpha) > best_mag;
  }

  /// Replace column `col` by its complement U - x. Valid only for finite
  /// upper bounds. Keeps every nonbasic variable at zero.
  void complementColumn(int col) {
    const double ub = upper_[static_cast<std::size_t>(col)];
    assert(std::isfinite(ub));
    for (int i = 0; i < num_rows_ + 2; ++i) {
      double* row = rowPtr(i);
      row[num_cols_] -= row[col] * ub;
      row[col] = -row[col];
    }
    complemented_[static_cast<std::size_t>(col)] =
        !complemented_[static_cast<std::size_t>(col)];
  }

  /// Complement the basic variable of `row` (used when it leaves at its
  /// upper bound), then re-normalize the row so the basis column is +1.
  void complementBasic(int row) {
    const int b = basis_[static_cast<std::size_t>(row)];
    complementColumn(b);
    double* r = rowPtr(row);
    for (int c = 0; c <= num_cols_; ++c) r[c] = -r[c];
  }

  void pivot(int row, int col) {
    double* pivot_row = rowPtr(row);
    const double pivot_value = pivot_row[col];
    assert(std::abs(pivot_value) > kEps);
    const double inv = 1.0 / pivot_value;
    for (int c = 0; c <= num_cols_; ++c) pivot_row[c] *= inv;
    pivot_row[col] = 1.0;  // exact

    for (int i = 0; i < num_rows_ + 2; ++i) {
      if (i == row) continue;
      double* r = rowPtr(i);
      const double factor = r[col];
      if (factor == 0.0) continue;
      for (int c = 0; c <= num_cols_; ++c) r[c] -= factor * pivot_row[c];
      r[col] = 0.0;  // exact
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  double phase1Infeasibility() const {
    double total = 0.0;
    for (int i = 0; i < num_rows_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (columns_[static_cast<std::size_t>(b)].artificial)
        total += std::max(0.0, rowPtr(i)[num_cols_]);
    }
    return total;
  }

  /// After phase 1: pivot basic artificials out on any usable column, or pin
  /// them (and the redundant row) to zero.
  void expelArtificials() {
    for (int i = 0; i < num_rows_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (!columns_[static_cast<std::size_t>(b)].artificial) continue;
      const double* row = rowPtr(i);
      int replacement = -1;
      for (int col = 0; col < num_cols_; ++col) {
        if (columns_[static_cast<std::size_t>(col)].artificial) continue;
        if (std::abs(row[col]) > 1e-7) {
          replacement = col;
          break;
        }
      }
      if (replacement >= 0) {
        pivot(i, replacement);
      }
      // else: the row is redundant; the artificial stays basic at zero.
    }
    // Pin every nonbasic artificial so it can never re-enter.
    for (int col = 0; col < num_cols_; ++col)
      if (columns_[static_cast<std::size_t>(col)].artificial)
        upper_[static_cast<std::size_t>(col)] = 0.0;
  }

  std::vector<double> extractValues() const {
    std::vector<double> col_value(static_cast<std::size_t>(num_cols_), 0.0);
    for (int i = 0; i < num_rows_; ++i)
      col_value[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(i)])] = rowPtr(i)[num_cols_];
    std::vector<double> values(static_cast<std::size_t>(model_.numVars()),
                               0.0);
    for (int col = 0; col < num_cols_; ++col) {
      const ColumnInfo& info = columns_[static_cast<std::size_t>(col)];
      if (info.model_var < 0) continue;
      double v = col_value[static_cast<std::size_t>(col)];
      if (complemented_[static_cast<std::size_t>(col)])
        v = upper_[static_cast<std::size_t>(col)] - v;
      values[static_cast<std::size_t>(info.model_var)] +=
          info.sign * (v + info.shift);
    }
    return values;
  }

  const Model& model_;
  const SolveParams& params_;

  std::vector<ColumnInfo> columns_;
  std::vector<double> upper_;
  std::vector<int> first_col_;
  std::vector<int> second_col_;

  int num_rows_ = 0;
  int num_cols_ = 0;
  int width_ = 0;
  std::vector<double> tableau_;  // (num_rows_ + 2) x width_
  std::vector<int> basis_;
  std::vector<bool> complemented_;

  bool has_artificials_ = false;
  bool trivially_infeasible_ = false;
  std::int64_t iterations_ = 0;
};

}  // namespace

LpResult solveLp(const Model& model, const SolveParams& params,
                 const std::vector<double>* lower_override,
                 const std::vector<double>* upper_override) {
  Simplex simplex(model, params, lower_override, upper_override);
  LpResult result = simplex.run();
  // Batched per call, not per pivot: solveLp is the hot path under branch &
  // bound, so the instrumentation is two relaxed adds per LP.
  static obs::Counter& calls =
      obs::Registry::instance().counter("ilp.simplex.calls");
  static obs::Counter& iterations =
      obs::Registry::instance().counter("ilp.simplex.iterations");
  calls.increment();
  iterations.add(result.iterations);
  return result;
}

}  // namespace pdw::ilp

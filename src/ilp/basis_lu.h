// Sparse LU factorization of a simplex basis, with product-form updates.
//
// The revised simplex (revised_simplex.h) keeps B = LU factorized instead of
// carrying an explicit tableau. Design:
//
//  * Markowitz pivoting: at each elimination step the pivot minimizes
//    (row_count-1)*(col_count-1) among entries passing a relative-magnitude
//    threshold, trading a little numerical greed for fill-in control — the
//    classic sparse-LU compromise. Ties break toward larger magnitude, then
//    smaller indices, so factorization is deterministic.
//  * Dense fallback: a basis whose nonzero density exceeds a threshold (or
//    whose sparse elimination fills in beyond it) is factorized with plain
//    dense partial pivoting instead — Markowitz bookkeeping on a dense
//    matrix only adds overhead. `lp_dense_*`-class models land here.
//  * Product-form updates: replacing basis position r with a column whose
//    FTRAN image is alpha appends an eta transform (B' = B·E with E = I
//    except column r = alpha); FTRAN applies the LU solve then the etas in
//    order, BTRAN applies eta transposes in reverse then the LU transpose
//    solve. The engine refactorizes periodically (update count / eta fill /
//    pivot quality), which also re-anchors numerical drift.
//
// Row/position vocabulary: a basis column lives at a *position* (0..m-1 in
// the basis heading); FTRAN maps row-indexed right-hand sides to
// position-indexed solutions of B x = b, BTRAN maps position-indexed costs
// to row-indexed duals of Bᵀ y = c.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace pdw::ilp {

class BasisLu {
 public:
  /// Entries of one sparse basis column: (constraint row, coefficient).
  using SparseColumn = std::vector<std::pair<int, double>>;

  /// Factorize the m x m basis given by `cols` (one column per basis
  /// position). Returns false when the basis is numerically singular; the
  /// previous factorization (if any) is invalidated either way.
  bool factor(int m, const std::vector<SparseColumn>& cols);

  /// Solve B x = b in place: `x` holds the row-indexed right-hand side on
  /// entry and the position-indexed solution on return.
  void ftran(std::vector<double>& x) const;

  /// Solve Bᵀ y = c in place: `x` holds the position-indexed costs on entry
  /// and the row-indexed duals on return.
  void btran(std::vector<double>& x) const;

  /// Product-form update after replacing basis position `pos` with a column
  /// whose FTRAN image is `alpha` (position-indexed, i.e. ftran() output of
  /// the entering column). Returns false — leaving the factorization
  /// untouched — when |alpha[pos]| is too small to pivot on; the caller
  /// must refactorize.
  bool update(int pos, const std::vector<double>& alpha);

  bool valid() const { return valid_; }
  int size() const { return m_; }
  int updates() const { return static_cast<int>(eta_start_.size()) - 1; }
  /// Total nonzeros across the appended eta transforms (refactor trigger).
  std::int64_t etaNonzeros() const { return eta_nnz_; }
  /// Nonzeros of the LU factors proper (fill-in diagnostics).
  std::int64_t factorNonzeros() const { return factor_nnz_; }
  bool usedDenseMode() const { return dense_mode_; }

 private:
  static constexpr double kAbsPivotTol = 1e-11;
  static constexpr double kRelPivotTol = 0.05;  ///< Markowitz threshold
  static constexpr double kDropTol = 1e-13;
  static constexpr double kUpdatePivotTol = 1e-9;

  bool factorSparse(const std::vector<SparseColumn>& cols);
  bool factorDense(const std::vector<SparseColumn>& cols);
  void clearFactors();
  void applyEtasFtran(std::vector<double>& x) const;
  void applyEtasBtran(std::vector<double>& x) const;

  int m_ = 0;
  bool valid_ = false;
  bool dense_mode_ = false;

  // ---- sparse factors ----------------------------------------------------
  // Step k eliminated row prow_[k] / position pcol_[k]. l_*: multipliers
  // (original row, value) that eliminated column pcol_[k] from later-pivotal
  // rows. u_*: the pivot row's surviving entries (position, value) over
  // later-eliminated positions; diag_[k] is its pivot value.
  std::vector<int> prow_, pcol_;
  std::vector<double> diag_;
  std::vector<int> l_start_;
  std::vector<std::pair<int, double>> l_entries_;
  std::vector<int> u_start_;
  std::vector<std::pair<int, double>> u_entries_;

  // ---- dense factors (in-place LU with row permutation) ------------------
  std::vector<double> dense_lu_;  // m x m row-major; L below diag, U above
  std::vector<int> dense_perm_;   // dense_perm_[k] = original row of step k

  // ---- product-form etas -------------------------------------------------
  // Eta e: pivot position eta_pos_[e] with pivot value eta_pivot_[e] and
  // off-pivot entries eta_entries_[eta_start_[e] .. eta_start_[e+1]).
  std::vector<int> eta_pos_;
  std::vector<double> eta_pivot_;
  std::vector<int> eta_start_{0};
  std::vector<std::pair<int, double>> eta_entries_;
  std::int64_t eta_nnz_ = 0;
  std::int64_t factor_nnz_ = 0;

  // scratch (mutable so const solves avoid per-call allocation)
  mutable std::vector<double> work_;
  mutable std::vector<double> work2_;
};

}  // namespace pdw::ilp

// Linear expressions over model variables.
//
// LinExpr is a small-coefficient-map value type used to build constraints
// and objectives:
//
//   LinExpr e = 2.0 * x + y - 3.0;
//   model.addConstr(e, Sense::LessEqual, 10.0);
#pragma once

#include <utility>
#include <vector>

#include "ilp/types.h"

namespace pdw::ilp {

/// A linear expression: sum of (coefficient * variable) terms plus a
/// constant. Terms are kept sorted by VarId with duplicates merged, so
/// expressions compare and hash deterministically.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(VarId var) { terms_.emplace_back(var, 1.0); }

  static LinExpr term(VarId var, double coeff);

  LinExpr& operator+=(const LinExpr& other);
  LinExpr& operator-=(const LinExpr& other);
  LinExpr& operator*=(double factor);

  friend LinExpr operator+(LinExpr lhs, const LinExpr& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend LinExpr operator-(LinExpr lhs, const LinExpr& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend LinExpr operator*(LinExpr e, double factor) {
    e *= factor;
    return e;
  }
  friend LinExpr operator*(double factor, LinExpr e) {
    e *= factor;
    return e;
  }
  friend LinExpr operator-(LinExpr e) {
    e *= -1.0;
    return e;
  }

  /// Add `coeff * var` to the expression.
  void add(VarId var, double coeff);

  /// Coefficient of `var` (0 when absent). Binary search over the sorted
  /// terms.
  double coefficient(VarId var) const;

  /// Set the coefficient of `var` to exactly `coeff` (removing the term when
  /// coeff == 0). Used by presolve coefficient strengthening.
  void setCoefficient(VarId var, double coeff);

  double constant() const { return constant_; }
  void setConstant(double c) { constant_ = c; }

  /// Sorted, merged (var, coeff) terms; zero coefficients removed.
  const std::vector<std::pair<VarId, double>>& terms() const { return terms_; }

  /// Evaluate against a full assignment vector.
  double evaluate(const std::vector<double>& values) const;

  bool empty() const { return terms_.empty(); }

 private:
  void normalize();

  std::vector<std::pair<VarId, double>> terms_;
  double constant_ = 0.0;
};

}  // namespace pdw::ilp

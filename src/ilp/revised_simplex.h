// Sparse revised simplex over a factorized basis (the "revised" LpBackend).
//
// Where the dense SimplexEngine (dual_simplex.h) carries an explicit
// (rows+2) x width tableau and pays O(rows x width) per pivot, this engine
// keeps only the basis factorized (basis_lu.h) and reconstructs what a
// pivot needs on demand — one FTRAN for the entering column, one BTRAN for
// the pivot row — so per-iteration cost tracks the *nonzeros* of the model,
// not its dimensions. Structural differences from the dense engine:
//
//  * Native bounded-variable columns. Every model variable is exactly one
//    column with its node bounds attached; a nonbasic column sits AtLower /
//    AtUpper / at-value (free). No free-variable splits, no complement
//    flips, no artificial columns reserved per row.
//  * Artificial-free cold start. The all-slack basis is always factorizable
//    and dual-feasible for the zero objective, so Phase 1 runs the *dual*
//    simplex with zero costs from it (every basis is trivially
//    dual-feasible; pivots drive out primal bound violations). Phase 2 is a
//    primal simplex with devex pricing from the feasible basis. Models
//    whose slack start is already feasible — b >= 0, the common case for
//    the PDW scheduling rows — skip Phase 1 entirely.
//  * Periodic refactorization. Product-form eta updates accumulate per
//    pivot; the basis is refactorized on a fixed update cadence (or early
//    on eta fill / tiny pivots), and each refactorization recomputes the
//    basic values and reduced costs from scratch, re-anchoring float drift.
//
// The warm-start contract is the SimplexEngine one, verbatim (DESIGN.md
// §11/§12): bound deltas are validated before any mutation, aggregated into
// a single FTRAN against the current basis, repaired to dual feasibility by
// bound flips where possible, then re-optimized with the dual simplex; every
// guard falls back to a cold solve deterministically, and every Nth
// would-be-warm solve runs cold to bound drift.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ilp/basis_lu.h"
#include "ilp/lp_backend.h"
#include "ilp/model.h"
#include "ilp/standard_form.h"
#include "ilp/types.h"

namespace pdw::ilp {

class RevisedSimplex final : public LpBackend {
 public:
  /// `model` and `params` must outlive the engine.
  RevisedSimplex(const Model& model, const SolveParams& params);

  LpResult solve(const std::vector<double>& lower,
                 const std::vector<double>& upper, bool allow_warm,
                 bool* used_warm = nullptr,
                 std::int64_t* dual_pivots = nullptr) override;
  LpResult coldSolve(const std::vector<double>& lower,
                     const std::vector<double>& upper) override;
  bool warmReady() const override { return ready_; }
  void collectReducedCostFixes(double gap, double integrality_tol,
                               std::vector<Fix>* out) const override;
  /// Canonical-space tableau row via one BTRAN against the factorized basis
  /// plus a pricing pass — the engine's native column space *is* the
  /// canonical space, so no translation is needed.
  bool tableauRow(VarId var, TableauRowView* out) const override;
  /// Incremental cut rows: extends the CSC, rhs and slack-bound arrays, adds
  /// each new row's slack to the basis (keeping it valid and dual-feasible)
  /// and refactorizes. A failed refactorization just clears the warm state —
  /// the next solve() runs cold over the extended row set.
  bool addCutRows(const std::vector<CutRow>& rows) override;
  const char* name() const override { return "revised"; }
  void setFlightRecorder(obs::FlightRecorder* recorder) override {
    flight_ = recorder;
  }

 private:
  static constexpr double kEps = 1e-9;
  /// Forced cold refresh cadence, mirrored from SimplexEngine.
  static constexpr std::int64_t kColdRefreshInterval = 256;
  /// Refactorization cadence in product-form updates. Dense-mode bases get
  /// a longer leash: their O(m^3) factorization dwarfs the O(m) extra eta
  /// cost per solve, and dense partial pivoting drifts less than sparse
  /// Markowitz elimination.
  static constexpr int kRefactorSparse = 64;
  static constexpr int kRefactorDense = 256;

  /// Where a column currently sits. A `Free` nonbasic column rests at its
  /// stored value (0 after a cold load) rather than at a bound.
  enum class VStat : std::uint8_t { Basic, Lower, Upper, Free };
  enum class DualStatus { Optimal, Infeasible, Stalled };

  std::int64_t blandThreshold() const;
  std::int64_t perRunCap() const;
  double cost(int col) const {
    return col < n_ ? cost_[static_cast<std::size_t>(col)] : 0.0;
  }
  bool fixedCol(int col) const {
    return ub_[static_cast<std::size_t>(col)] -
               lb_[static_cast<std::size_t>(col)] <
           kEps;
  }

  /// Sparse entries of column `col` (structural via CSC, slack = unit).
  void columnEntries(int col, BasisLu::SparseColumn* out) const;
  /// alpha = B^{-1} A_col, dense by basis position.
  void ftranColumn(int col, std::vector<double>* alpha) const;
  /// row = (e_pos^T B^{-1}) A over all *nonbasic* columns (dense by column;
  /// basic slots left stale — callers must only read nonbasic entries).
  void pivotRow(int pos, std::vector<double>* rho,
                std::vector<double>* row) const;

  /// Refactorize the current basis and recompute x_B and reduced costs from
  /// scratch. Returns false when the basis is numerically singular.
  bool refactor();
  void computeBasicValues();
  void computeDuals();
  void resetDevex();

  void loadCold(const std::vector<double>& lower,
                const std::vector<double>& upper);
  LpResult runCold(const std::vector<double>& lower,
                   const std::vector<double>& upper);
  std::optional<LpResult> warmSolve(const std::vector<double>& lower,
                                    const std::vector<double>& upper);

  bool hasPrimalViolation() const;
  LpStatus primalIterate();
  /// Dual simplex to primal feasibility. `zero_cost` is the Phase-1 mode:
  /// reduced costs are treated as identically zero (every basis is
  /// dual-feasible), so pivots only chase bound violations.
  DualStatus dualIterate(bool zero_cost, std::int64_t cap);

  std::vector<double> extractValues() const;

  const Model& model_;
  const SolveParams& params_;
  StandardForm::Csc csc_;

  int n_ = 0;      ///< structural columns (model variables)
  int m_ = 0;      ///< rows (== slack columns); slack of row i is column n_+i
  int total_ = 0;  ///< n_ + m_

  std::vector<double> cost_;  ///< structural objective (merged duplicates)
  std::vector<double> rhs_;
  std::vector<double> slack_lb_, slack_ub_;  ///< per-row, from the sense

  // ---- per-load state ----------------------------------------------------
  std::vector<double> lb_, ub_;  ///< per column
  std::vector<VStat> vstat_;
  std::vector<double> x_;  ///< per column value (exact bounds when nonbasic)
  std::vector<double> d_;  ///< reduced costs (0 on basic columns)
  std::vector<int> basis_;   ///< position -> column
  std::vector<int> pos_of_;  ///< column -> position, -1 when nonbasic
  std::vector<double> devex_;
  /// Model-space bounds of the last load; warm solves diff against these.
  std::vector<double> cur_lower_, cur_upper_;

  BasisLu lu_;

  bool ready_ = false;
  std::int64_t call_iterations_ = 0;
  std::int64_t call_dual_pivots_ = 0;
  std::int64_t call_factorizations_ = 0;
  std::int64_t warm_since_cold_ = 0;
  obs::FlightRecorder* flight_ = nullptr;  ///< not owned; may be null

  // scratch
  mutable std::vector<double> alpha_, rho_, row_;
  mutable BasisLu::SparseColumn col_scratch_;
};

}  // namespace pdw::ilp

// Evaluation metrics of the paper's §IV:
//   N_wash  - number of wash operations          (Table II)
//   L_wash  - total wash-path length, mm          (Table II, eq. 25)
//   T_assay - assay completion time, s            (Table II, eq. 22)
//   T_delay - wash-induced delay vs the base schedule, s (Table II)
//   avg waiting time of biochemical operations    (Fig. 4)
//   total wash time                               (Fig. 5)
#pragma once

#include <string>

#include "assay/schedule.h"

namespace pdw::sim {

struct WashMetrics {
  int n_wash = 0;
  double l_wash_mm = 0.0;
  double t_assay = 0.0;
  double t_delay = 0.0;
  double avg_wait = 0.0;
  double total_wash_time = 0.0;
  /// Buffer fluid consumed: one channel-volume per wash-path cell
  /// (reported in cell-volumes; multiply by channel cross-section times
  /// pitch for physical volume).
  double buffer_cell_volumes = 0.0;
  /// Fraction of total wash time that runs concurrently with some other
  /// fluidic task or operation (the paper's Fig. 3 point: PDW washes
  /// overlap other work instead of serializing behind it).
  double wash_concurrency = 0.0;

  std::string describe() const;
};

/// Compute all metrics of a washed schedule against its wash-oblivious base
/// schedule (same graph, same chip). The waiting time of an operation is how
/// far wash handling pushed its start past the base schedule's start.
WashMetrics computeMetrics(const assay::AssaySchedule& washed,
                           const assay::AssaySchedule& base);

}  // namespace pdw::sim

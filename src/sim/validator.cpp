#include "sim/validator.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace pdw::sim {

namespace {

using assay::AssaySchedule;
using assay::FluidTask;
using assay::OpSchedule;
using assay::TaskKind;

bool timeOverlap(double s1, double e1, double s2, double e2, double tol) {
  return s1 < e2 - tol && s2 < e1 - tol;
}

}  // namespace

std::string ValidationResult::summary() const {
  if (ok()) return "ok";
  return util::format("%d issue(s):\n  ", static_cast<int>(issues.size())) +
         util::join(issues, "\n  ");
}

ValidationResult validateSchedule(const AssaySchedule& schedule,
                                  const ValidatorOptions& options) {
  ValidationResult result;
  const auto issue = [&](std::string message) {
    result.issues.push_back(std::move(message));
  };
  if (!schedule.valid()) {
    issue("schedule has no graph/chip attached");
    return result;
  }
  const auto& graph = schedule.graph();
  const auto& chip = schedule.chip();
  const double tol = options.time_tol;

  // Every operation scheduled exactly once, long enough (eq. 1).
  std::map<assay::OpId, const OpSchedule*> by_op;
  for (const OpSchedule& s : schedule.opSchedules()) {
    if (by_op.count(s.op))
      issue(util::format("op %d scheduled more than once", s.op));
    by_op[s.op] = &s;
    if (s.end - s.start < graph.op(s.op).duration_s - tol)
      issue(util::format("op %d shorter than its protocol duration", s.op));
    if (s.device < 0 ||
        s.device >= static_cast<int>(chip.devices().size())) {
      issue(util::format("op %d bound to invalid device", s.op));
      continue;
    }
    if (assay::requiredDevice(graph.op(s.op).kind) !=
        chip.device(s.device).kind)
      issue(util::format("op %d bound to wrong device kind", s.op));
  }
  for (const assay::Operation& op : graph.ops())
    if (!by_op.count(op.id))
      issue(util::format("op %d missing from schedule", op.id));
  if (!result.ok()) return result;  // later checks need complete op data

  // Dependency order (eq. 2).
  for (const assay::Dependency& d : graph.dependencies())
    if (by_op[d.to]->start < by_op[d.from]->end - tol)
      issue(util::format("dependency %d->%d violated", d.from, d.to));

  // Device exclusivity (eq. 3).
  for (const OpSchedule& a : schedule.opSchedules())
    for (const OpSchedule& b : schedule.opSchedules())
      if (a.op < b.op && a.device == b.device &&
          timeOverlap(a.start, a.end, b.start, b.end, tol))
        issue(util::format("ops %d and %d overlap on device %d", a.op, b.op,
                           a.device));

  // Task well-formedness.
  for (const FluidTask& t : schedule.tasks()) {
    if (t.path.empty()) {
      issue(util::format("task %d has an empty path", t.id));
      continue;
    }
    if (!t.path.isConnected())
      issue(util::format("task %d path is disconnected", t.id));
    if (t.end < t.start - tol)
      issue(util::format("task %d ends before it starts", t.id));
    if (!chip.isPortCell(t.path.front()) || !chip.isPortCell(t.path.back()))
      issue(util::format("task %d path does not run port-to-port", t.id));
    const int n = static_cast<int>(t.path.size());
    if (t.payload_begin < 0 || t.payload_begin >= n ||
        (t.payload_end >= 0 &&
         (t.payload_end < t.payload_begin || t.payload_end >= n)))
      issue(util::format("task %d has an invalid payload span", t.id));
  }

  // Transport/removal windows (eqs. 4/5): for each dependency edge the
  // transport lies in [o_j.end, o_i.start]; its removal (if any) lies in
  // [transport.end, o_i.start].
  for (const assay::Dependency& d : graph.dependencies()) {
    const FluidTask* transport = nullptr;
    for (const FluidTask& t : schedule.tasks())
      if (t.kind == TaskKind::Transport && t.producer == d.from &&
          t.consumer == d.to)
        transport = &t;
    if (!transport) {
      issue(util::format("edge %d->%d has no transport task", d.from, d.to));
      continue;
    }
    if (transport->start < by_op[d.from]->end - tol)
      issue(util::format("transport %d->%d starts before producer ends",
                         d.from, d.to));
    if (transport->end > by_op[d.to]->start + tol)
      issue(util::format("transport %d->%d ends after consumer starts",
                         d.from, d.to));
    for (const FluidTask& t : schedule.tasks()) {
      if (t.kind != TaskKind::ExcessRemoval || t.producer != d.from ||
          t.consumer != d.to)
        continue;
      const bool integrated =
          options.allow_integrated_removals && t.duration() <= tol;
      if (integrated) continue;
      const FluidTask& own_transport =
          t.matching_transport >= 0 ? schedule.task(t.matching_transport)
                                    : *transport;
      if (t.start < own_transport.end - tol)
        issue(util::format("removal for %d->%d starts before its transport",
                           d.from, d.to));
      if (t.end > by_op[d.to]->start + tol)
        issue(util::format("removal for %d->%d ends after consumer starts",
                           d.from, d.to));
    }
  }

  // Injection removals (producer == -1) also follow their transport.
  for (const FluidTask& t : schedule.tasks()) {
    if (t.kind != TaskKind::ExcessRemoval || t.matching_transport < 0)
      continue;
    if (options.allow_integrated_removals && t.duration() <= tol) continue;
    if (t.start < schedule.task(t.matching_transport).end - tol)
      issue(util::format("removal %d starts before its transport %d", t.id,
                         t.matching_transport));
  }

  // Spatial conflicts between tasks (eqs. 8/19/20). Integrated (zero-length)
  // removals occupy no channel time.
  const auto active = [&](const FluidTask& t) { return t.duration() > tol; };
  for (const FluidTask& a : schedule.tasks())
    for (const FluidTask& b : schedule.tasks())
      if (a.id < b.id && active(a) && active(b) &&
          timeOverlap(a.start, a.end, b.start, b.end, tol) &&
          a.path.overlaps(b.path))
        issue(util::format("tasks %d and %d conflict in space and time", a.id,
                           b.id));

  // Tasks crossing a running operation's device cell.
  for (const FluidTask& t : schedule.tasks()) {
    if (!active(t)) continue;
    for (const OpSchedule& o : schedule.opSchedules())
      if (timeOverlap(t.start, t.end, o.start, o.end, tol) &&
          t.path.contains(chip.device(o.device).cell))
        issue(util::format("task %d crosses device of running op %d", t.id,
                           o.op));
  }

  return result;
}

}  // namespace pdw::sim

#include "sim/gantt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace pdw::sim {

namespace {

char glyphFor(assay::TaskKind kind) {
  switch (kind) {
    case assay::TaskKind::Transport: return '=';
    case assay::TaskKind::ExcessRemoval: return '-';
    case assay::TaskKind::WasteRemoval: return '-';
    case assay::TaskKind::Wash: return '~';
  }
  return '?';
}

}  // namespace

std::string renderGantt(const assay::AssaySchedule& schedule,
                        const GanttOptions& options) {
  const double total = schedule.completionTime();
  if (total <= 0.0) return "(empty schedule)\n";

  double spc = options.seconds_per_column;
  while (total / spc > options.max_width) spc *= 2.0;
  const int width = static_cast<int>(std::ceil(total / spc)) + 1;

  const auto column = [&](double t) {
    return std::min(width - 1, static_cast<int>(t / spc));
  };

  struct Row {
    std::string label;
    double start, end;
    char glyph;
  };
  std::vector<Row> rows;

  // Operations, sorted by device then start.
  std::vector<assay::OpSchedule> ops = schedule.opSchedules();
  std::sort(ops.begin(), ops.end(),
            [](const assay::OpSchedule& a, const assay::OpSchedule& b) {
              if (a.device != b.device) return a.device < b.device;
              return a.start < b.start;
            });
  for (const assay::OpSchedule& s : ops) {
    rows.push_back({util::format("%-10s %-8s",
                                 schedule.graph().op(s.op).name.c_str(),
                                 schedule.chip().device(s.device).name.c_str()),
                    s.start, s.end, '#'});
  }

  if (options.show_tasks) {
    for (assay::TaskId id : schedule.tasksByStart()) {
      const assay::FluidTask& t = schedule.task(id);
      if (t.duration() <= 1e-9) continue;  // integrated removals
      rows.push_back({util::format("%-10s #%-7d", toString(t.kind), t.id),
                      t.start, t.end, glyphFor(t.kind)});
    }
  }

  std::ostringstream out;
  const std::string indent(21, ' ');
  // Time axis: a tick every 10 columns.
  out << indent;
  for (int c = 0; c < width; c += 10)
    out << util::format("%-10.10s", util::format("|%g", c * spc).c_str());
  out << "\n";

  for (const Row& row : rows) {
    std::string bar(static_cast<std::size_t>(width), ' ');
    const int begin = column(row.start);
    const int end = std::max(begin, column(row.end - 1e-9));
    for (int c = begin; c <= end; ++c)
      bar[static_cast<std::size_t>(c)] = row.glyph;
    out << util::format("%-20s ", row.label.c_str()) << bar << "\n";
  }
  out << indent
      << util::format("(1 column = %g s; # op, = transport, - removal, "
                      "~ wash)\n",
                      spc);
  return out.str();
}

}  // namespace pdw::sim

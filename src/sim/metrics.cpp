#include "sim/metrics.h"

#include <algorithm>

#include "util/strings.h"

namespace pdw::sim {

std::string WashMetrics::describe() const {
  return util::format(
      "N_wash=%d L_wash=%.0fmm T_delay=%.1fs T_assay=%.1fs avg_wait=%.2fs "
      "wash_time=%.1fs buffer=%.0f concurrency=%.0f%%",
      n_wash, l_wash_mm, t_delay, t_assay, avg_wait, total_wash_time,
      buffer_cell_volumes, wash_concurrency * 100.0);
}

namespace {

/// Length of [s1,e1] that overlaps any interval in `others`.
double overlapSeconds(double s1, double e1,
                      const std::vector<std::pair<double, double>>& others) {
  // Merge-and-measure on the clipped intervals.
  std::vector<std::pair<double, double>> clipped;
  for (const auto& [s2, e2] : others) {
    const double lo = std::max(s1, s2);
    const double hi = std::min(e1, e2);
    if (hi > lo) clipped.emplace_back(lo, hi);
  }
  std::sort(clipped.begin(), clipped.end());
  double total = 0.0, cursor = s1;
  for (const auto& [lo, hi] : clipped) {
    const double begin = std::max(cursor, lo);
    if (hi > begin) {
      total += hi - begin;
      cursor = hi;
    }
  }
  return total;
}

}  // namespace

WashMetrics computeMetrics(const assay::AssaySchedule& washed,
                           const assay::AssaySchedule& base) {
  WashMetrics m;
  m.n_wash = washed.washCount();
  m.l_wash_mm = washed.washLengthMm();
  m.t_assay = washed.completionTime();
  m.t_delay = std::max(0.0, m.t_assay - base.completionTime());
  m.total_wash_time = washed.totalWashTime();

  double wait_total = 0.0;
  int count = 0;
  for (const assay::OpSchedule& w : washed.opSchedules()) {
    const assay::OpSchedule& b = base.opSchedule(w.op);
    wait_total += std::max(0.0, w.start - b.start);
    ++count;
  }
  m.avg_wait = count > 0 ? wait_total / count : 0.0;

  // Buffer consumption and wash concurrency.
  std::vector<std::pair<double, double>> busy;
  for (const assay::OpSchedule& o : washed.opSchedules())
    busy.emplace_back(o.start, o.end);
  for (const assay::FluidTask& t : washed.tasks())
    if (t.kind != assay::TaskKind::Wash && t.duration() > 1e-9)
      busy.emplace_back(t.start, t.end);
  double overlapped = 0.0;
  for (const assay::FluidTask& t : washed.tasks()) {
    if (t.kind != assay::TaskKind::Wash) continue;
    m.buffer_cell_volumes += static_cast<double>(t.path.size());
    overlapped += overlapSeconds(t.start, t.end, busy);
  }
  m.wash_concurrency =
      m.total_wash_time > 1e-9 ? overlapped / m.total_wash_time : 0.0;
  return m;
}

}  // namespace pdw::sim

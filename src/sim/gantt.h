// ASCII Gantt rendering of assay schedules — the textual counterpart of
// the paper's Fig. 2(b)/Fig. 3 timeline charts. One row per operation
// (grouped by device) and per fluidic task, with a second-resolution time
// axis.
#pragma once

#include <string>

#include "assay/schedule.h"

namespace pdw::sim {

struct GanttOptions {
  /// Seconds per character column (auto-scaled if the chart would exceed
  /// max_width).
  double seconds_per_column = 1.0;
  int max_width = 100;
  /// Include transport/removal/wash rows (operations always shown).
  bool show_tasks = true;
};

/// Render the schedule as an ASCII Gantt chart. Glyphs: '#' operation,
/// '=' transport, '-' excess/waste removal, '~' wash.
std::string renderGantt(const assay::AssaySchedule& schedule,
                        const GanttOptions& options = {});

}  // namespace pdw::sim

// Discrete-event schedule validator.
//
// Replays an AssaySchedule and checks every structural and physical
// invariant the paper's constraints encode:
//   * eq. 1: every operation runs at least its protocol duration,
//   * eq. 2: dependency order (o_i after o_j for every edge),
//   * eq. 3: device exclusivity,
//   * eq. 4: the transport p_{j,i,1} lies between o_j's end and o_i's start,
//   * eq. 5: the excess removal p_{j,i,2} lies between its transport's end
//            and o_i's start (unless integrated into a wash),
//   * eq. 8/19/20: no two tasks with intersecting paths overlap in time; no
//            task crosses a device cell while an operation runs on it,
//   * path well-formedness: connected, port-terminated, valid payload span.
//
// Contamination safety (no cross-fluid reuse without an intervening wash) is
// checked by wash::ContaminationTracker and exposed through
// validateWashedSchedule() once a wash plan is applied.
#pragma once

#include <string>
#include <vector>

#include "assay/schedule.h"

namespace pdw::sim {

struct ValidationResult {
  std::vector<std::string> issues;
  bool ok() const { return issues.empty(); }
  std::string summary() const;
};

struct ValidatorOptions {
  /// Integrated removals (zero-duration, paper eq. 7 with psi=1) are exempt
  /// from the "removal between transport and op" window check.
  bool allow_integrated_removals = true;
  double time_tol = 1e-6;
};

ValidationResult validateSchedule(const assay::AssaySchedule& schedule,
                                  const ValidatorOptions& options = {});

}  // namespace pdw::sim

// Fluid types.
//
// Cross-contamination is *type-sensitive*: residue of fluid f only
// contaminates a later flow of a different type (paper §II-A Type 2: "if the
// residue left in a device has the same type as the subsequent input fluid,
// wash ... can be avoided"). The registry assigns an id to every distinct
// fluid: input reagents, every operation's result (a new mixture type), the
// wash buffer, and waste.
#pragma once

#include <string>
#include <vector>

namespace pdw::assay {

using FluidId = int;

enum class FluidKind {
  Reagent,  ///< externally injected sample/reagent
  Mixture,  ///< intermediate result of a biochemical operation
  Buffer,   ///< wash buffer (neutral: leaves no contaminating residue)
  Waste,    ///< spent fluid on its way off-chip
};

class FluidRegistry {
 public:
  FluidRegistry();

  FluidId addReagent(std::string name);
  FluidId addMixture(std::string name);

  /// The singleton wash-buffer fluid.
  FluidId buffer() const { return buffer_; }
  /// The singleton waste fluid.
  FluidId waste() const { return waste_; }

  FluidKind kind(FluidId id) const {
    return kinds_[static_cast<std::size_t>(id)];
  }
  const std::string& name(FluidId id) const {
    return names_[static_cast<std::size_t>(id)];
  }
  int size() const { return static_cast<int>(names_.size()); }

  /// True if residue of `residue` contaminates a subsequent flow of
  /// `incoming`: different types, and the residue is not neutral buffer.
  /// (Waste residue does contaminate non-waste flows.)
  bool contaminates(FluidId residue, FluidId incoming) const;

 private:
  FluidId add(FluidKind kind, std::string name);

  std::vector<FluidKind> kinds_;
  std::vector<std::string> names_;
  FluidId buffer_ = -1;
  FluidId waste_ = -1;
};

}  // namespace pdw::assay

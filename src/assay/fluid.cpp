#include "assay/fluid.h"

namespace pdw::assay {

FluidRegistry::FluidRegistry() {
  buffer_ = add(FluidKind::Buffer, "buffer");
  waste_ = add(FluidKind::Waste, "waste");
}

FluidId FluidRegistry::add(FluidKind kind, std::string name) {
  kinds_.push_back(kind);
  names_.push_back(std::move(name));
  return static_cast<FluidId>(names_.size()) - 1;
}

FluidId FluidRegistry::addReagent(std::string name) {
  return add(FluidKind::Reagent, std::move(name));
}

FluidId FluidRegistry::addMixture(std::string name) {
  return add(FluidKind::Mixture, std::move(name));
}

bool FluidRegistry::contaminates(FluidId residue, FluidId incoming) const {
  if (residue == incoming) return false;  // Type 2: same type is harmless
  if (kind(residue) == FluidKind::Buffer) return false;  // buffer is neutral
  return true;
}

}  // namespace pdw::assay

// Assay schedule: timed biochemical operations plus timed fluidic tasks
// (transports p_{j,i,1}, excess-fluid removals p_{j,i,2}, waste removals $,
// wash operations w) with their flow paths — the structure of Fig. 2(b) /
// Fig. 3 / Table I of the paper.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/chip.h"
#include "arch/path.h"
#include "assay/sequencing_graph.h"

namespace pdw::assay {

enum class TaskKind {
  Transport,      ///< p_{j,i,1}: reagent injection, device-to-device move,
                  ///< or final output transport
  ExcessRemoval,  ///< p_{j,i,2}: flush excess fluid cached at device ends (*)
  WasteRemoval,   ///< waste-fluid flush of a device ($)
  Wash,           ///< buffer wash along a wash path (w)
};

const char* toString(TaskKind kind);

using TaskId = int;

struct FluidTask {
  TaskId id = -1;
  TaskKind kind = TaskKind::Transport;
  /// Producing operation o_j (-1 for reagent injections and washes).
  OpId producer = -1;
  /// Consuming operation o_i (-1 for output transports, removals, washes).
  OpId consumer = -1;
  FluidId fluid = -1;
  arch::FlowPath path;
  double start = 0.0;
  double end = 0.0;

  /// For ExcessRemoval tasks: the id of the transport whose cached excess
  /// this removal flushes (p_{j,i,1} of the same edge). Needed because an
  /// operation with several reagent inputs has several (transport, removal)
  /// pairs that share producer/consumer ids.
  TaskId matching_transport = -1;

  /// Payload span [payload_begin, payload_end] (indices into path.cells()):
  /// the cells the fluid plug actually touches. A transport path runs
  /// port-to-port — push medium enters from a flow port behind the plug and
  /// displaced air exits to a waste port ahead of it — so only the
  /// source-device..target-device span carries the fluid. This matches the
  /// paper's examples, e.g. transport #7 (in3->s9->det1->s10->s11->s15->s3->
  /// s4->mixer->s5->out1) contaminating exactly s10..s4. payload_end == -1
  /// means "last cell".
  int payload_begin = 0;
  int payload_end = -1;

  double duration() const { return end - start; }

  /// Resolved payload span as cell list.
  std::vector<arch::Cell> payloadCells() const;
  /// Payload cells excluding ports and the span's first/last device cells —
  /// the channel cells the plug contaminates (devices are contaminated by
  /// their operations, not by transit of their own content).
  std::vector<arch::Cell> payloadInterior() const;

  /// Q_{p} of paper eq. 10: the task carries fluid destined for waste, so
  /// pre-existing residue on its path is harmless (Type 3).
  bool isWasteBound() const {
    return kind == TaskKind::ExcessRemoval || kind == TaskKind::WasteRemoval;
  }

  std::string describe(const arch::ChipLayout* chip = nullptr) const;
};

struct OpSchedule {
  OpId op = -1;
  arch::DeviceId device = -1;
  double start = 0.0;
  double end = 0.0;
};

/// A complete timed execution of an assay on a chip. Used in two roles:
/// the wash-oblivious base schedule produced by synthesis (input to PDW and
/// DAWO), and the washed/re-timed schedule they output.
class AssaySchedule {
 public:
  AssaySchedule() = default;
  AssaySchedule(const SequencingGraph* graph, const arch::ChipLayout* chip)
      : graph_(graph), chip_(chip) {}

  const SequencingGraph& graph() const { return *graph_; }
  const arch::ChipLayout& chip() const { return *chip_; }
  bool valid() const { return graph_ != nullptr && chip_ != nullptr; }

  void addOpSchedule(OpSchedule op);
  TaskId addTask(FluidTask task);  ///< assigns the id, returns it

  const std::vector<OpSchedule>& opSchedules() const { return ops_; }
  const std::vector<FluidTask>& tasks() const { return tasks_; }
  FluidTask& task(TaskId id) { return tasks_[static_cast<std::size_t>(id)]; }
  const FluidTask& task(TaskId id) const {
    return tasks_[static_cast<std::size_t>(id)];
  }
  OpSchedule& opSchedule(OpId op);
  const OpSchedule& opSchedule(OpId op) const;

  /// Task ids sorted by (start, id) — replay order for contamination
  /// tracking and validation.
  std::vector<TaskId> tasksByStart() const;

  /// Completion time T_assay: max end over operations and tasks.
  double completionTime() const;

  /// Number of wash tasks.
  int washCount() const;
  /// Total wash-path length in millimetres (L_wash, eq. 25).
  double washLengthMm() const;
  /// Sum of wash durations (Fig. 5's "total wash time").
  double totalWashTime() const;

  /// Multi-line human-readable timeline, Fig. 2(b)-style.
  std::string describe() const;

 private:
  const SequencingGraph* graph_ = nullptr;
  const arch::ChipLayout* chip_ = nullptr;
  std::vector<OpSchedule> ops_;
  std::vector<FluidTask> tasks_;
};

}  // namespace pdw::assay

#include "assay/benchmarks.h"

#include <cassert>

namespace pdw::assay {

namespace {

using arch::DeviceKind;

/// Assert the reconstruction matches the published |O|/|D|/|E| triple.
void checkCounts(const Benchmark& b) {
  assert(b.graph->numOps() == b.expected_ops);
  assert(arch::totalDevices(b.library) == b.expected_devices);
  assert(b.graph->totalEdgeCount() == b.expected_edges);
  assert(b.graph->isAcyclic());
  (void)b;
}

/// PCR — 7/5/15. The paper's own motivating assay (Fig. 1(c), Fig. 2):
/// r1 is filtered, mixed with r2, the intermediates are detected on two
/// detectors, thermocycled on the heater and re-mixed for a final detection.
Benchmark makePcr() {
  Benchmark b;
  b.name = "PCR";
  b.expected_ops = 7;
  b.expected_devices = 5;
  b.expected_edges = 15;
  b.graph = std::make_unique<SequencingGraph>(b.name);
  SequencingGraph& g = *b.graph;
  const FluidId r1 = g.fluids().addReagent("r1");
  const FluidId r2 = g.fluids().addReagent("r2");
  const FluidId r3 = g.fluids().addReagent("r3");

  const OpId o1 = g.addOperation(OpKind::Filter, 4, {r1}, "o1");
  const OpId o2 = g.addOperation(OpKind::Mix, 3, {r2}, "o2");
  const OpId o3 = g.addOperation(OpKind::Detect, 4, {r3}, "o3");
  const OpId o4 = g.addOperation(OpKind::Detect, 4, {r3}, "o4");
  const OpId o5 = g.addOperation(OpKind::Heat, 5, {r2}, "o5");
  const OpId o6 = g.addOperation(OpKind::Mix, 3, {r2}, "o6");
  const OpId o7 = g.addOperation(OpKind::Detect, 4, {r3}, "o7");
  g.addDependency(o1, o2);
  g.addDependency(o1, o3);
  g.addDependency(o2, o4);
  g.addDependency(o3, o5);
  g.addDependency(o4, o6);
  g.addDependency(o5, o6);
  g.addDependency(o6, o7);
  g.setProducesWaste(o1);  // the filter keeps residue to flush ($-task)

  b.library = {{DeviceKind::Mixer, 1},
               {DeviceKind::Heater, 1},
               {DeviceKind::Detector, 2},
               {DeviceKind::Filter, 1}};
  checkCounts(b);
  return b;
}

/// IVD — 12/9/24. An in-vitro-diagnosis style immunoassay (paper §I's
/// chemiluminescence motivation): a filtered sample fans out into three
/// detection chains carrying different luminescence agents; two chain
/// results are differentially re-mixed and detected.
Benchmark makeIvd() {
  Benchmark b;
  b.name = "IVD";
  b.expected_ops = 12;
  b.expected_devices = 9;
  b.expected_edges = 24;
  b.graph = std::make_unique<SequencingGraph>(b.name);
  SequencingGraph& g = *b.graph;
  const FluidId sample = g.fluids().addReagent("sample");
  const FluidId agent1 = g.fluids().addReagent("agent1");
  const FluidId agent2 = g.fluids().addReagent("agent2");
  const FluidId agent3 = g.fluids().addReagent("agent3");
  const FluidId lumi = g.fluids().addReagent("luminol");
  const FluidId oil = g.fluids().addReagent("oil");

  const OpId filter = g.addOperation(OpKind::Filter, 4, {sample}, "filter");
  g.setProducesWaste(filter);
  const FluidId agents[3] = {agent1, agent2, agent3};
  OpId detect[3];
  for (int k = 0; k < 3; ++k) {
    const OpId mix =
        g.addOperation(OpKind::Mix, 3, {agents[static_cast<std::size_t>(k)]});
    // Two chains heat under oil; agent edges land the published |E|.
    std::vector<FluidId> heat_inputs;
    if (k < 2) heat_inputs.push_back(oil);
    const OpId heat = g.addOperation(OpKind::Heat, 4, heat_inputs);
    detect[k] = g.addOperation(OpKind::Detect, 5, {lumi});
    g.addDependency(filter, mix);
    g.addDependency(mix, heat);
    g.addDependency(heat, detect[k]);
  }
  const OpId remix = g.addOperation(OpKind::Mix, 3, {}, "remix");
  g.addDependency(detect[0], remix);
  g.addDependency(detect[1], remix);
  const OpId final_detect =
      g.addOperation(OpKind::Detect, 5, {lumi}, "final_detect");
  g.addDependency(remix, final_detect);

  b.library = {{DeviceKind::Mixer, 2},
               {DeviceKind::Heater, 2},
               {DeviceKind::Detector, 3},
               {DeviceKind::Filter, 1},
               {DeviceKind::Storage, 1}};
  checkCounts(b);
  return b;
}

/// ProteinSplit — 14/11/27. A two-level protein dilution/split tree: the
/// stock is serially split and diluted, two branches are heat-treated, all
/// four leaves are measured, one result is archived on-chip.
Benchmark makeProteinSplit() {
  Benchmark b;
  b.name = "ProteinSplit";
  b.expected_ops = 14;
  b.expected_devices = 11;
  b.expected_edges = 27;
  b.graph = std::make_unique<SequencingGraph>(b.name);
  SequencingGraph& g = *b.graph;
  const FluidId protein = g.fluids().addReagent("protein");
  const FluidId diluent_a = g.fluids().addReagent("diluentA");
  const FluidId diluent_b = g.fluids().addReagent("diluentB");
  const FluidId dye = g.fluids().addReagent("dye");

  const OpId o1 = g.addOperation(OpKind::Mix, 3, {protein, diluent_a}, "o1");
  const OpId o2 = g.addOperation(OpKind::Mix, 3, {diluent_a}, "o2");
  const OpId o3 = g.addOperation(OpKind::Mix, 3, {diluent_b}, "o3");
  g.addDependency(o1, o2);
  g.addDependency(o1, o3);
  const OpId o4 = g.addOperation(OpKind::Mix, 3, {diluent_a}, "o4");
  const OpId o5 = g.addOperation(OpKind::Mix, 3, {diluent_b}, "o5");
  const OpId o6 = g.addOperation(OpKind::Mix, 3, {diluent_a}, "o6");
  const OpId o7 = g.addOperation(OpKind::Mix, 3, {diluent_b}, "o7");
  g.addDependency(o2, o4);
  g.addDependency(o2, o5);
  g.addDependency(o3, o6);
  g.addDependency(o3, o7);
  const OpId o8 = g.addOperation(OpKind::Heat, 4, {}, "o8");
  const OpId o9 = g.addOperation(OpKind::Heat, 4, {}, "o9");
  g.addDependency(o4, o8);
  g.addDependency(o5, o9);
  const OpId o10 = g.addOperation(OpKind::Detect, 5, {dye}, "o10");
  const OpId o11 = g.addOperation(OpKind::Detect, 5, {dye}, "o11");
  const OpId o12 = g.addOperation(OpKind::Detect, 5, {}, "o12");
  const OpId o13 = g.addOperation(OpKind::Detect, 5, {}, "o13");
  g.addDependency(o8, o10);
  g.addDependency(o9, o11);
  g.addDependency(o6, o12);
  g.addDependency(o7, o13);
  const OpId o14 = g.addOperation(OpKind::Store, 2, {}, "o14");
  g.addDependency(o10, o14);

  b.library = {{DeviceKind::Mixer, 3},
               {DeviceKind::Heater, 2},
               {DeviceKind::Detector, 3},
               {DeviceKind::Filter, 1},
               {DeviceKind::Storage, 2}};
  checkCounts(b);
  return b;
}

/// Kinase act-1 — 4/9/16. A short kinase-activity protocol dominated by
/// reagent loading: substrate/kinase/ATP are combined, boosted with two
/// cofactors, incubated under oil+stop solution and read out with two
/// detection reagents.
Benchmark makeKinaseAct1() {
  Benchmark b;
  b.name = "Kinase act-1";
  b.expected_ops = 4;
  b.expected_devices = 9;
  b.expected_edges = 16;
  b.graph = std::make_unique<SequencingGraph>(b.name);
  SequencingGraph& g = *b.graph;
  const FluidId substrate = g.fluids().addReagent("substrate");
  const FluidId kinase = g.fluids().addReagent("kinase");
  const FluidId atp = g.fluids().addReagent("ATP");
  const FluidId mg = g.fluids().addReagent("Mg2+");
  const FluidId cofactor1 = g.fluids().addReagent("cofactor1");
  const FluidId cofactor2 = g.fluids().addReagent("cofactor2");
  const FluidId cofactor3 = g.fluids().addReagent("cofactor3");
  const FluidId oil = g.fluids().addReagent("oil");
  const FluidId stop = g.fluids().addReagent("stop");
  const FluidId lumi = g.fluids().addReagent("luminol");
  const FluidId enhancer = g.fluids().addReagent("enhancer");
  const FluidId probe = g.fluids().addReagent("probe");

  const OpId o1 =
      g.addOperation(OpKind::Mix, 3, {substrate, kinase, atp, mg}, "o1");
  const OpId o2 =
      g.addOperation(OpKind::Mix, 3, {cofactor1, cofactor2, cofactor3}, "o2");
  const OpId o3 = g.addOperation(OpKind::Heat, 6, {oil, stop}, "o3");
  const OpId o4 =
      g.addOperation(OpKind::Detect, 5, {lumi, enhancer, probe}, "o4");
  g.addDependency(o1, o2);
  g.addDependency(o2, o3);
  g.addDependency(o3, o4);

  b.library = {{DeviceKind::Mixer, 2},
               {DeviceKind::Heater, 2},
               {DeviceKind::Detector, 2},
               {DeviceKind::Filter, 1},
               {DeviceKind::Storage, 2}};
  checkCounts(b);
  return b;
}

/// Kinase act-2 — 12/9/48. A dense four-layer kinase panel: every layer
/// consumes all three results of the previous one (3x3 dependencies per
/// layer boundary), the hallmark of the published |E|=48 at only 12 ops.
Benchmark makeKinaseAct2() {
  Benchmark b;
  b.name = "Kinase act-2";
  b.expected_ops = 12;
  b.expected_devices = 9;
  b.expected_edges = 48;
  b.graph = std::make_unique<SequencingGraph>(b.name);
  SequencingGraph& g = *b.graph;
  const FluidId reagents[6] = {
      g.fluids().addReagent("substrate"), g.fluids().addReagent("kinase"),
      g.fluids().addReagent("ATP"),       g.fluids().addReagent("cofactor"),
      g.fluids().addReagent("stop"),      g.fluids().addReagent("luminol")};

  const OpKind layer_kinds[4][3] = {
      {OpKind::Mix, OpKind::Mix, OpKind::Mix},
      {OpKind::Heat, OpKind::Filter, OpKind::Mix},
      {OpKind::Mix, OpKind::Heat, OpKind::Detect},
      {OpKind::Detect, OpKind::Detect, OpKind::Store}};
  // Reagent-edge plan per op, summing to 18 (layer 0 gets 2 each; exactly
  // three later ops get 2, six get 1): 18 + 27 deps + 3 sinks = 48.
  const int reagent_counts[4][3] = {{2, 2, 2}, {2, 1, 1}, {2, 1, 1},
                                    {2, 1, 1}};

  OpId previous[3] = {-1, -1, -1};
  int reagent_cursor = 0;
  for (int layer = 0; layer < 4; ++layer) {
    OpId current[3];
    for (int k = 0; k < 3; ++k) {
      std::vector<FluidId> inputs;
      for (int r = 0; r < reagent_counts[layer][k]; ++r)
        inputs.push_back(reagents[(reagent_cursor++) % 6]);
      current[k] = g.addOperation(layer_kinds[layer][k],
                                  layer_kinds[layer][k] == OpKind::Detect
                                      ? 5
                                      : 3,
                                  std::move(inputs));
      if (layer_kinds[layer][k] == OpKind::Filter)
        g.setProducesWaste(current[k]);
      if (layer > 0)
        for (int p = 0; p < 3; ++p) g.addDependency(previous[p], current[k]);
    }
    for (int k = 0; k < 3; ++k) previous[k] = current[k];
  }

  b.library = {{DeviceKind::Mixer, 2},
               {DeviceKind::Heater, 2},
               {DeviceKind::Detector, 2},
               {DeviceKind::Filter, 1},
               {DeviceKind::Storage, 2}};
  checkCounts(b);
  return b;
}

/// Chain-structured synthetic benchmarks: `chains` parallel pipelines of
/// five operations each with a few cross-chain dependencies and enough
/// reagent edges to land the published |E|.
Benchmark makeSyntheticChains(const char* name, int chains, int cross_deps,
                              int extra_reagents, arch::DeviceLibrary library,
                              int expected_devices, int expected_edges) {
  Benchmark b;
  b.name = name;
  b.expected_ops = chains * 5;
  b.expected_devices = expected_devices;
  b.expected_edges = expected_edges;
  b.graph = std::make_unique<SequencingGraph>(b.name);
  SequencingGraph& g = *b.graph;

  const FluidId head_reagent = g.fluids().addReagent("stock");
  const FluidId aux = g.fluids().addReagent("aux");

  const OpKind patterns[2][5] = {
      {OpKind::Mix, OpKind::Heat, OpKind::Mix, OpKind::Detect, OpKind::Store},
      {OpKind::Filter, OpKind::Mix, OpKind::Heat, OpKind::Detect,
       OpKind::Store}};

  std::vector<std::vector<OpId>> chain_ops(static_cast<std::size_t>(chains));
  int reagents_left = extra_reagents;
  for (int c = 0; c < chains; ++c) {
    for (int i = 0; i < 5; ++i) {
      std::vector<FluidId> inputs;
      if (i == 0) inputs.push_back(head_reagent);
      else if (reagents_left > 0) {
        inputs.push_back(aux);
        --reagents_left;
      }
      const OpKind kind = patterns[c % 2][i];
      const OpId op = g.addOperation(kind, kind == OpKind::Detect ? 5 : 3,
                                     std::move(inputs));
      if (kind == OpKind::Filter) g.setProducesWaste(op);
      chain_ops[static_cast<std::size_t>(c)].push_back(op);
      if (i > 0)
        g.addDependency(chain_ops[static_cast<std::size_t>(c)][
                            static_cast<std::size_t>(i) - 1],
                        op);
    }
  }
  // Cross-chain dependencies: stage-2 of chain c feeds stage-3 of chain c+1.
  for (int c = 0; c + 1 < chains && c < cross_deps; ++c)
    g.addDependency(chain_ops[static_cast<std::size_t>(c)][1],
                    chain_ops[static_cast<std::size_t>(c) + 1][2]);

  b.library = std::move(library);
  checkCounts(b);
  return b;
}

}  // namespace

const char* toString(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::Pcr: return "PCR";
    case BenchmarkId::Ivd: return "IVD";
    case BenchmarkId::ProteinSplit: return "ProteinSplit";
    case BenchmarkId::KinaseAct1: return "Kinase act-1";
    case BenchmarkId::KinaseAct2: return "Kinase act-2";
    case BenchmarkId::Synthetic1: return "Synthetic1";
    case BenchmarkId::Synthetic2: return "Synthetic2";
    case BenchmarkId::Synthetic3: return "Synthetic3";
  }
  return "?";
}

std::vector<BenchmarkId> allBenchmarks() {
  return {BenchmarkId::Pcr,          BenchmarkId::Ivd,
          BenchmarkId::ProteinSplit, BenchmarkId::KinaseAct1,
          BenchmarkId::KinaseAct2,   BenchmarkId::Synthetic1,
          BenchmarkId::Synthetic2,   BenchmarkId::Synthetic3};
}

Benchmark makeBenchmark(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::Pcr: return makePcr();
    case BenchmarkId::Ivd: return makeIvd();
    case BenchmarkId::ProteinSplit: return makeProteinSplit();
    case BenchmarkId::KinaseAct1: return makeKinaseAct1();
    case BenchmarkId::KinaseAct2: return makeKinaseAct2();
    case BenchmarkId::Synthetic1:
      return makeSyntheticChains("Synthetic1", 2, 0, 3,
                                 {{DeviceKind::Mixer, 3},
                                  {DeviceKind::Heater, 3},
                                  {DeviceKind::Detector, 3},
                                  {DeviceKind::Filter, 2},
                                  {DeviceKind::Storage, 1}},
                                 12, 15);
    case BenchmarkId::Synthetic2:
      return makeSyntheticChains("Synthetic2", 3, 2, 4,
                                 {{DeviceKind::Mixer, 3},
                                  {DeviceKind::Heater, 3},
                                  {DeviceKind::Detector, 3},
                                  {DeviceKind::Filter, 2},
                                  {DeviceKind::Storage, 2}},
                                 13, 24);
    case BenchmarkId::Synthetic3:
      return makeSyntheticChains("Synthetic3", 4, 3, 1,
                                 {{DeviceKind::Mixer, 4},
                                  {DeviceKind::Heater, 4},
                                  {DeviceKind::Detector, 4},
                                  {DeviceKind::Filter, 3},
                                  {DeviceKind::Storage, 3}},
                                 18, 28);
  }
  return makePcr();
}

std::unique_ptr<arch::ChipLayout> makeMotivatingChip() {
  // A Fig. 2(a)-style layout: filter and detector1 across the top, the
  // mixer central, detector2 and heater across the bottom, four flow ports
  // on the west/north boundary, four waste ports on the east/south boundary.
  auto chip = std::make_unique<arch::ChipLayout>(13, 11, 3.0);
  chip->addDevice(arch::DeviceKind::Filter, {3, 2}, "filter");
  chip->addDevice(arch::DeviceKind::Detector, {9, 2}, "det1");
  chip->addDevice(arch::DeviceKind::Mixer, {5, 5}, "mixer");
  chip->addDevice(arch::DeviceKind::Detector, {3, 8}, "det2");
  chip->addDevice(arch::DeviceKind::Heater, {9, 8}, "heater");
  chip->addFlowPort({0, 2}, "in1");
  chip->addFlowPort({0, 8}, "in2");
  chip->addFlowPort({9, 0}, "in3");
  chip->addFlowPort({12, 8}, "in4");
  chip->addWastePort({5, 10}, "out1");
  chip->addWastePort({3, 0}, "out2");
  chip->addWastePort({12, 5}, "out3");
  chip->addWastePort({6, 0}, "out4");
  return chip;
}

}  // namespace pdw::assay

// Reconstruction of the paper's benchmark suite (Table II):
//
//   PCR           7/5/15    (the motivating assay of Fig. 1(c)/Fig. 2)
//   IVD          12/9/24
//   ProteinSplit 14/11/27
//   Kinase act-1  4/9/16
//   Kinase act-2 12/9/48
//   Synthetic1   10/12/15
//   Synthetic2   15/13/24
//   Synthetic3   20/18/28
//
// The numbers are |O| (operations) / |D| (devices in the library) / |E|
// (edges). The original assays are not distributed with the paper; these
// reconstructions are built to the published sizes under the edge-counting
// convention of DESIGN.md §7 (dependency edges + reagent-input edges + one
// output edge per sink operation). Every builder asserts its own counts, so
// a drifting reconstruction fails loudly in tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/chip.h"
#include "arch/device.h"
#include "assay/sequencing_graph.h"

namespace pdw::assay {

enum class BenchmarkId {
  Pcr,
  Ivd,
  ProteinSplit,
  KinaseAct1,
  KinaseAct2,
  Synthetic1,
  Synthetic2,
  Synthetic3,
};

const char* toString(BenchmarkId id);

/// All eight Table-II benchmarks in paper order.
std::vector<BenchmarkId> allBenchmarks();

struct Benchmark {
  std::string name;
  std::unique_ptr<SequencingGraph> graph;
  arch::DeviceLibrary library;
  int expected_ops = 0;
  int expected_devices = 0;
  int expected_edges = 0;
};

/// Build one benchmark. The returned graph's counts are asserted to match
/// the published |O|/|D|/|E| triple.
Benchmark makeBenchmark(BenchmarkId id);

/// A hand-built chip in the spirit of Fig. 2(a): mixer, heater, filter and
/// two detectors with four flow ports (in1..in4) and four waste ports
/// (out1..out4). Used by the motivating example and by golden tests.
std::unique_ptr<arch::ChipLayout> makeMotivatingChip();

}  // namespace pdw::assay

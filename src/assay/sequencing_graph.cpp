#include "assay/sequencing_graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "util/strings.h"

namespace pdw::assay {

const char* toString(OpKind kind) {
  switch (kind) {
    case OpKind::Mix: return "mix";
    case OpKind::Heat: return "heat";
    case OpKind::Detect: return "detect";
    case OpKind::Filter: return "filter";
    case OpKind::Store: return "store";
  }
  return "?";
}

arch::DeviceKind requiredDevice(OpKind kind) {
  switch (kind) {
    case OpKind::Mix: return arch::DeviceKind::Mixer;
    case OpKind::Heat: return arch::DeviceKind::Heater;
    case OpKind::Detect: return arch::DeviceKind::Detector;
    case OpKind::Filter: return arch::DeviceKind::Filter;
    case OpKind::Store: return arch::DeviceKind::Storage;
  }
  return arch::DeviceKind::Mixer;
}

SequencingGraph::SequencingGraph(std::string name) : name_(std::move(name)) {}

OpId SequencingGraph::addOperation(OpKind kind, double duration_s,
                                   std::vector<FluidId> reagent_inputs,
                                   std::string name) {
  assert(duration_s > 0);
  Operation op;
  op.id = static_cast<OpId>(ops_.size());
  op.kind = kind;
  op.duration_s = duration_s;
  op.reagent_inputs = std::move(reagent_inputs);
  op.name = name.empty() ? util::format("o%d", op.id + 1) : std::move(name);
  op.result = fluids_.addMixture(util::format("out(%s)", op.name.c_str()));
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void SequencingGraph::addDependency(OpId from, OpId to) {
  assert(from >= 0 && from < numOps());
  assert(to >= 0 && to < numOps());
  assert(from != to);
  deps_.push_back(Dependency{from, to});
}

std::vector<OpId> SequencingGraph::parents(OpId id) const {
  std::vector<OpId> out;
  for (const Dependency& d : deps_)
    if (d.to == id) out.push_back(d.from);
  return out;
}

std::vector<OpId> SequencingGraph::children(OpId id) const {
  std::vector<OpId> out;
  for (const Dependency& d : deps_)
    if (d.from == id) out.push_back(d.to);
  return out;
}

std::vector<OpId> SequencingGraph::sinkOps() const {
  std::vector<OpId> out;
  for (const Operation& op : ops_)
    if (children(op.id).empty()) out.push_back(op.id);
  return out;
}

bool SequencingGraph::isAcyclic() const {
  // Kahn's algorithm: acyclic iff all nodes get popped.
  std::vector<int> indegree(ops_.size(), 0);
  for (const Dependency& d : deps_)
    ++indegree[static_cast<std::size_t>(d.to)];
  std::deque<OpId> queue;
  for (const Operation& op : ops_)
    if (indegree[static_cast<std::size_t>(op.id)] == 0)
      queue.push_back(op.id);
  int popped = 0;
  while (!queue.empty()) {
    const OpId id = queue.front();
    queue.pop_front();
    ++popped;
    for (OpId child : children(id))
      if (--indegree[static_cast<std::size_t>(child)] == 0)
        queue.push_back(child);
  }
  return popped == numOps();
}

std::vector<OpId> SequencingGraph::topologicalOrder() const {
  assert(isAcyclic());
  std::vector<int> indegree(ops_.size(), 0);
  for (const Dependency& d : deps_)
    ++indegree[static_cast<std::size_t>(d.to)];
  std::deque<OpId> queue;
  for (const Operation& op : ops_)
    if (indegree[static_cast<std::size_t>(op.id)] == 0)
      queue.push_back(op.id);
  std::vector<OpId> order;
  order.reserve(ops_.size());
  while (!queue.empty()) {
    const OpId id = queue.front();
    queue.pop_front();
    order.push_back(id);
    for (OpId child : children(id))
      if (--indegree[static_cast<std::size_t>(child)] == 0)
        queue.push_back(child);
  }
  return order;
}

int SequencingGraph::totalEdgeCount() const {
  int total = numDependencies();
  for (const Operation& op : ops_)
    total += static_cast<int>(op.reagent_inputs.size());
  total += static_cast<int>(sinkOps().size());
  return total;
}

}  // namespace pdw::assay

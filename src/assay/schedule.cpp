#include "assay/schedule.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/strings.h"

namespace pdw::assay {

const char* toString(TaskKind kind) {
  switch (kind) {
    case TaskKind::Transport: return "transport";
    case TaskKind::ExcessRemoval: return "excess-removal";
    case TaskKind::WasteRemoval: return "waste-removal";
    case TaskKind::Wash: return "wash";
  }
  return "?";
}

std::string FluidTask::describe(const arch::ChipLayout* chip) const {
  return util::format("[%s] t=%.1f..%.1f %s", toString(kind), start, end,
                      path.toString(chip).c_str());
}

std::vector<arch::Cell> FluidTask::payloadCells() const {
  const auto& cells = path.cells();
  if (cells.empty()) return {};
  const std::size_t begin = static_cast<std::size_t>(
      std::clamp<int>(payload_begin, 0, static_cast<int>(cells.size()) - 1));
  const std::size_t end = payload_end < 0
                              ? cells.size() - 1
                              : static_cast<std::size_t>(std::clamp<int>(
                                    payload_end, static_cast<int>(begin),
                                    static_cast<int>(cells.size()) - 1));
  return std::vector<arch::Cell>(cells.begin() + static_cast<std::ptrdiff_t>(begin),
                                 cells.begin() + static_cast<std::ptrdiff_t>(end) + 1);
}

std::vector<arch::Cell> FluidTask::payloadInterior() const {
  std::vector<arch::Cell> cells = payloadCells();
  if (cells.size() <= 2) return {};
  return std::vector<arch::Cell>(cells.begin() + 1, cells.end() - 1);
}

void AssaySchedule::addOpSchedule(OpSchedule op) {
  assert(op.op >= 0);
  ops_.push_back(op);
}

TaskId AssaySchedule::addTask(FluidTask task) {
  task.id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(task));
  return tasks_.back().id;
}

OpSchedule& AssaySchedule::opSchedule(OpId op) {
  for (OpSchedule& s : ops_)
    if (s.op == op) return s;
  assert(false && "operation has no schedule entry");
  return ops_.front();
}

const OpSchedule& AssaySchedule::opSchedule(OpId op) const {
  return const_cast<AssaySchedule*>(this)->opSchedule(op);
}

std::vector<TaskId> AssaySchedule::tasksByStart() const {
  std::vector<TaskId> ids;
  ids.reserve(tasks_.size());
  for (const FluidTask& t : tasks_) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
    const FluidTask& ta = task(a);
    const FluidTask& tb = task(b);
    if (ta.start != tb.start) return ta.start < tb.start;
    return a < b;
  });
  return ids;
}

double AssaySchedule::completionTime() const {
  double t = 0.0;
  for (const OpSchedule& s : ops_) t = std::max(t, s.end);
  for (const FluidTask& s : tasks_) t = std::max(t, s.end);
  return t;
}

int AssaySchedule::washCount() const {
  int count = 0;
  for (const FluidTask& t : tasks_)
    if (t.kind == TaskKind::Wash) ++count;
  return count;
}

double AssaySchedule::washLengthMm() const {
  double total = 0.0;
  for (const FluidTask& t : tasks_)
    if (t.kind == TaskKind::Wash) total += t.path.lengthMm(chip_->pitchMm());
  return total;
}

double AssaySchedule::totalWashTime() const {
  double total = 0.0;
  for (const FluidTask& t : tasks_)
    if (t.kind == TaskKind::Wash) total += t.duration();
  return total;
}

std::string AssaySchedule::describe() const {
  std::ostringstream out;
  out << "schedule for " << graph_->name()
      << util::format(" (T_assay = %.1f s)\n", completionTime());
  std::vector<OpSchedule> ops = ops_;
  std::sort(ops.begin(), ops.end(), [](const OpSchedule& a,
                                       const OpSchedule& b) {
    return a.start < b.start;
  });
  for (const OpSchedule& s : ops) {
    out << util::format("  op %-10s on %-10s t=%5.1f..%5.1f\n",
                        graph_->op(s.op).name.c_str(),
                        chip_->device(s.device).name.c_str(), s.start, s.end);
  }
  for (TaskId id : tasksByStart()) {
    out << "  " << task(id).describe(chip_) << "\n";
  }
  return out.str();
}

}  // namespace pdw::assay

// Sequencing graph G(O, E) of a bioassay (paper §II, Fig. 1(c)).
//
// Nodes are biochemical operations with execution times; edges are fluid
// dependencies (the result of o_j is an input of o_i). Operations may
// additionally consume externally injected reagents; results not consumed by
// another operation leave the chip as assay outputs. The |E| bookkeeping of
// Table II counts dependency edges plus reagent-input and output edges (see
// DESIGN.md §7).
#pragma once

#include <string>
#include <vector>

#include "arch/device.h"
#include "assay/fluid.h"

namespace pdw::assay {

using OpId = int;

enum class OpKind {
  Mix,
  Heat,
  Detect,
  Filter,
  Store,
};

const char* toString(OpKind kind);

/// Device kind an operation must be bound to.
arch::DeviceKind requiredDevice(OpKind kind);

struct Operation {
  OpId id = -1;
  OpKind kind = OpKind::Mix;
  std::string name;
  double duration_s = 1.0;              ///< t(o_i) of eq. 1
  std::vector<FluidId> reagent_inputs;  ///< externally injected reagents
  FluidId result = -1;                  ///< out_i, assigned by the graph
  /// The operation leaves waste in its device that must be flushed to a
  /// waste port afterwards (a `$`-task in Table I terms).
  bool produces_waste = false;
};

struct Dependency {
  OpId from = -1;  ///< producer o_j
  OpId to = -1;    ///< consumer o_i
};

class SequencingGraph {
 public:
  explicit SequencingGraph(std::string name = "assay");

  /// Access to the fluid registry (reagents, op results, buffer, waste).
  FluidRegistry& fluids() { return fluids_; }
  const FluidRegistry& fluids() const { return fluids_; }

  /// Add an operation. Its result fluid is registered automatically.
  OpId addOperation(OpKind kind, double duration_s,
                    std::vector<FluidId> reagent_inputs = {},
                    std::string name = {});

  /// Add a dependency edge e_{j,i}: result of `from` feeds `to`.
  void addDependency(OpId from, OpId to);

  /// Mark an operation as leaving waste in its device (see
  /// Operation::produces_waste).
  void setProducesWaste(OpId id, bool value = true) {
    ops_[static_cast<std::size_t>(id)].produces_waste = value;
  }

  const std::string& name() const { return name_; }
  const Operation& op(OpId id) const {
    return ops_[static_cast<std::size_t>(id)];
  }
  const std::vector<Operation>& ops() const { return ops_; }
  const std::vector<Dependency>& dependencies() const { return deps_; }

  std::vector<OpId> parents(OpId id) const;
  std::vector<OpId> children(OpId id) const;

  /// Operations whose result no other operation consumes; their results are
  /// transported off-chip as assay outputs.
  std::vector<OpId> sinkOps() const;

  /// True if the dependency relation is acyclic.
  bool isAcyclic() const;

  /// Topological order; requires isAcyclic().
  std::vector<OpId> topologicalOrder() const;

  int numOps() const { return static_cast<int>(ops_.size()); }
  /// Dependency edges only.
  int numDependencies() const { return static_cast<int>(deps_.size()); }
  /// Paper |E| convention: dependencies + reagent-input edges + output
  /// edges (one per sink operation).
  int totalEdgeCount() const;

 private:
  std::string name_;
  FluidRegistry fluids_;
  std::vector<Operation> ops_;
  std::vector<Dependency> deps_;
};

}  // namespace pdw::assay

#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>
#include <vector>

#include "core/wash_path_ilp.h"
#include "obs/metric_names.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "wash/contamination.h"
#include "wash/necessity.h"
#include "wash/rescheduler.h"

namespace pdw {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Routing outcome of one wash operation (slot-per-index: workers write
/// only their own element, results merge in operation order). Per-call
/// routing stats live in the obs registry, not here.
struct RouteOutcome {
  std::optional<arch::FlowPath> path;
  bool cache_hit = false;
};

RouteOutcome routeOperation(const arch::ChipLayout& chip,
                            const std::vector<arch::Cell>& targets,
                            const core::PdwOptions& options,
                            core::RouteCache* cache) {
  RouteOutcome out;
  core::RouteKey key;
  std::uint64_t epoch = 0;
  if (cache != nullptr) {
    // Capture the epoch before the miss: if a shared cache is invalidated
    // while we route, the epoch-guarded insert below drops our (stale)
    // result instead of repopulating the new epoch with it.
    epoch = cache->epoch();
    key = core::RouteCache::makeKey(chip, targets, options.use_ilp_paths,
                                    options.path);
    if (auto cached = cache->lookup(key)) {
      PDW_TRACE_INSTANT("routing", "cache_hit");
      out.path = std::move(*cached);
      out.cache_hit = true;
      return out;
    }
  }

  if (options.use_ilp_paths) {
    out.path = core::routeWashPathIlp(chip, targets, options.path);
  } else {
    out.path = core::routeWashPathHeuristic(chip, targets,
                                            options.path.avoid_cells);
  }
  if (!out.path) {
    // Last resort: the heuristic on the whole grid (minus avoided cells —
    // those are hard constraints). Target cells are on used flow paths, so
    // ports can always reach them.
    out.path = core::routeWashPathHeuristic(chip, targets,
                                            options.path.avoid_cells);
  }
  if (cache != nullptr) cache->insert(key, out.path, epoch);
  return out;
}

/// Fold the per-run registry delta into the result: the metrics snapshot
/// itself, the path_* solver stats (views over pdw.path_ilp.*), and the
/// per-stage duration histograms.
void finalizeMetrics(PdwResult& result,
                     const obs::MetricsSnapshot& baseline) {
  obs::Registry& reg = obs::Registry::instance();
  static obs::Histogram& analysis_h =
      reg.histogram(obs::names::kStageAnalysisSeconds);
  static obs::Histogram& clustering_h =
      reg.histogram(obs::names::kStageClusteringSeconds);
  static obs::Histogram& routing_h =
      reg.histogram(obs::names::kStageRoutingSeconds);
  static obs::Histogram& scheduling_h =
      reg.histogram(obs::names::kStageSchedulingSeconds);
  analysis_h.observe(result.timings.analysis_s);
  clustering_h.observe(result.timings.clustering_s);
  routing_h.observe(result.timings.routing_s);
  scheduling_h.observe(result.timings.scheduling_s);

  result.metrics = reg.snapshot().since(baseline);
  result.solver.path_ilp_solves =
      static_cast<int>(result.metrics.counter(obs::names::kPathIlpSolves));
  result.solver.path_connectivity_cuts = static_cast<int>(
      result.metrics.counter(obs::names::kPathIlpConnectivityCuts));
  result.solver.path_fallbacks =
      static_cast<int>(result.metrics.counter(obs::names::kPathIlpFallbacks));
  result.solver.path_warm_hits =
      static_cast<int>(result.metrics.counter(obs::names::kPathIlpWarmHits));
}

}  // namespace

/// Everything resolve() needs from the previous solve: the base schedule it
/// was (re)based on, the memoized per-cell necessity analysis, and the
/// blocked cells accumulated from earlier deltas. run() re-primes it from
/// scratch; every successful resolve() re-bases it on the perturbed
/// schedule, so deltas compose.
struct Pipeline::ResolveState {
  assay::AssaySchedule base;
  wash::NecessityMemo memo;
  std::vector<arch::Cell> blocked;  ///< sorted, deduplicated
  bool primed = false;
};

Pipeline::Pipeline(core::PdwOptions options) : options_(std::move(options)) {
  obs::setThreadName("pdw-main");
  if (options_.num_threads <= 0)
    options_.num_threads = util::ThreadPool::hardwareConcurrency();

  // The PDW scheduling budget (8 s / 60000 nodes) historically replaced the
  // stock ilp::SolveParams limits silently inside PdwOptions's constructor;
  // the substitution now lives here, visibly. Fields the caller already
  // moved off their stock defaults are respected.
  if (!options_.solver.schedule_budget_pinned) {
    const ilp::SolveParams stock;
    bool substituted = false;
    if (options_.solver.schedule.time_limit_seconds ==
        stock.time_limit_seconds) {
      options_.solver.schedule.time_limit_seconds = 8.0;
      substituted = true;
    }
    if (options_.solver.schedule.node_limit == stock.node_limit) {
      options_.solver.schedule.node_limit = 60000;
      substituted = true;
    }
    if (substituted) {
      PDW_LOG(Info, "pipeline")
          << "scheduling solver budget defaulted to "
          << options_.solver.schedule.time_limit_seconds << " s / "
          << options_.solver.schedule.node_limit
          << " nodes (pin with SolverConfig::withScheduleBudget)";
    }
  }

  // Resolve the LP backend choice: the SolverConfig-wide engine fills any
  // stage that did not set its own (a non-empty per-stage engine wins).
  if (!options_.solver.engine.empty()) {
    if (options_.solver.schedule.engine.empty())
      options_.solver.schedule.engine = options_.solver.engine;
    if (options_.solver.path.engine.empty())
      options_.solver.path.engine = options_.solver.engine;
  }
  // SolverConfig is the authoritative source of the wash-path solver knobs;
  // the copy keeps routeOperation's WashPathOptions (and the route-cache
  // key, which hashes them) in sync with it.
  options_.path.solver = options_.solver.path;

  // Shared-runtime injection (pdwd): an externally-owned pool/cache wins
  // over per-instance construction, so N concurrent Pipelines multiplex one
  // work-stealing pool and serve repeat traffic from one warm route cache.
  if (options_.shared_pool) {
    pool_ = options_.shared_pool;
  } else {
    pool_ = std::make_shared<util::ThreadPool>(options_.num_threads);
  }
  if (options_.shared_route_cache) {
    cache_ = options_.shared_route_cache;
  } else if (options_.route_cache_capacity > 0) {
    cache_ = std::make_shared<core::RouteCache>(options_.route_cache_capacity);
  }
}

Pipeline::~Pipeline() = default;

core::RouteCacheStats Pipeline::cacheStats() const {
  return cache_ ? cache_->stats() : core::RouteCacheStats{};
}

PdwResult Pipeline::execute(const assay::AssaySchedule& base,
                            wash::NecessityDeltaStats* delta_stats) {
  const auto run_start = Clock::now();
  const bool incremental = delta_stats != nullptr;
  PDW_TRACE_SPAN("pipeline", incremental ? "resolve" : "run");
  obs::Registry& reg = obs::Registry::instance();
  const obs::MetricsSnapshot metrics_before = reg.snapshot();
  PdwResult result;
  result.plan.method = "PDW";
  result.threads = pool_->size();
  const core::RouteCacheStats cache_before = cacheStats();

  // Delta-blocked cells join any caller-configured avoidance for this
  // solve's routing (and its route-cache keys).
  core::PdwOptions solve_options = options_;
  if (resolve_state_ && !resolve_state_->blocked.empty()) {
    auto& avoid = solve_options.path.avoid_cells;
    avoid.insert(avoid.end(), resolve_state_->blocked.begin(),
                 resolve_state_->blocked.end());
    std::sort(avoid.begin(), avoid.end());
    avoid.erase(std::unique(avoid.begin(), avoid.end()), avoid.end());
  }

  // 1. Contamination replay + necessity analysis (eqs. 9-11). The
  // incremental path re-walks only cells whose use list the delta moved;
  // everything else is copied from the memo, so the merged result is
  // bit-identical to a full analysis of `base`.
  auto stage_start = Clock::now();
  wash::NecessityResult necessity;
  {
    PDW_TRACE_SPAN("pipeline", "necessity_analysis");
    const wash::ContaminationTracker tracker(base);
    if (incremental) {
      necessity = analyzeWashNecessityDelta(tracker, resolve_state_->memo,
                                            options_.necessity, delta_stats);
    } else {
      necessity = analyzeWashNecessity(
          tracker, options_.necessity,
          resolve_state_ ? &resolve_state_->memo : nullptr);
    }
  }
  result.plan.necessity = necessity.stats;
  reg.counter(obs::names::kNecessityTargets).add(necessity.stats.targets);
  reg.counter(obs::names::kNecessitySkippedType1)
      .add(necessity.stats.skipped_type1);
  reg.counter(obs::names::kNecessitySkippedType2)
      .add(necessity.stats.skipped_type2);
  reg.counter(obs::names::kNecessitySkippedType3)
      .add(necessity.stats.skipped_type3);
  result.timings.analysis_s = secondsSince(stage_start);

  if (necessity.targets.empty()) {
    result.plan.schedule = base;
    result.plan.proven_optimal = true;
    result.timings.total_s = secondsSince(run_start);
    result.plan.solve_seconds = result.timings.total_s;
    finalizeMetrics(result, metrics_before);
    return result;
  }

  // 2. Cluster targets into wash operations.
  stage_start = Clock::now();
  std::vector<wash::WashOperation> washes;
  {
    PDW_TRACE_SPAN("pipeline", "clustering");
    washes = clusterTargets(std::move(necessity.targets), options_.cluster);
  }
  result.wash_operations = static_cast<int>(washes.size());
  reg.counter(obs::names::kClusterOperations).add(result.wash_operations);
  result.timings.clustering_s = secondsSince(stage_start);

  // 3. Route a wash path per operation (eqs. 12-15), in parallel: the
  // routing problems are independent, each worker fills its own slot, and
  // the merge below walks slots in operation order — so the plan is the
  // same for any thread count.
  stage_start = Clock::now();
  std::vector<RouteOutcome> outcomes(washes.size());
  std::vector<std::vector<arch::Cell>> target_cells(washes.size());
  for (std::size_t i = 0; i < washes.size(); ++i)
    target_cells[i] = washes[i].targetCells();
  {
    PDW_TRACE_SPAN("pipeline", "routing");
    pool_->parallelFor(washes.size(), [&](std::size_t i) {
      PDW_TRACE_SPAN_ID("routing", "wash_op", i);
      outcomes[i] = routeOperation(base.chip(), target_cells[i], solve_options,
                                   cache_.get());
    });
  }
  for (std::size_t i = 0; i < washes.size(); ++i) {
    const RouteOutcome& out = outcomes[i];
    PDW_LOG(Debug, "pdw") << "wash path ("
                          << (out.path ? static_cast<int>(out.path->size())
                                       : -1)
                          << " cells) for " << washes[i].targets.size()
                          << " targets"
                          << (out.cache_hit ? " [cache]" : "");
    if (out.path) washes[i].path = *out.path;
  }
  // Drop unroutable operations only if truly unreachable (logged loudly:
  // this indicates a malformed chip).
  std::vector<wash::WashOperation> routed;
  for (wash::WashOperation& w : washes) {
    if (w.path.empty()) {
      PDW_LOG(Error, "pdw") << "wash operation unroutable; dropping "
                            << w.targets.size() << " targets";
      ++result.unroutable_operations;
      continue;
    }
    routed.push_back(std::move(w));
  }
  if (result.unroutable_operations > 0)
    reg.counter(obs::names::kRoutingUnroutableOperations)
        .add(result.unroutable_operations);
  result.timings.routing_s = secondsSince(stage_start);

  // 4. Re-time everything with the scheduling ILP (eqs. 1-8, 16-26).
  stage_start = Clock::now();
  {
  PDW_TRACE_SPAN("pipeline", "scheduling");
  bool scheduled = false;
  if (options_.use_ilp_schedule) {
    core::ScheduleIlpOptions ilp_options;
    ilp_options.alpha = options_.alpha;
    ilp_options.beta = options_.beta;
    ilp_options.gamma = options_.gamma;
    ilp_options.wash = options_.wash;
    ilp_options.order_horizon_s = options_.order_horizon_s;
    ilp_options.enable_integration = options_.enable_integration;
    ilp_options.solver = options_.solver.schedule;
    ilp_options.pool = pool_.get();
    ilp_options.repair_mode = incremental;
    // Portfolio race: a second lane dives for incumbents and certifies
    // optimality early; the canonical search still owns the returned
    // assignment (see ilp::SolveParams::portfolio_threads).
    if (pool_->size() >= 2 && ilp_options.solver.portfolio_threads < 2)
      ilp_options.solver.portfolio_threads = 2;
    core::ScheduleIlpResult ilp =
        solveWashSchedule(base, routed, ilp_options);
    result.solver.schedule = ilp.stats;
    result.solver.schedule_ilp_success = ilp.success;
    if (ilp.success) {
      result.plan.schedule = std::move(ilp.schedule);
      result.plan.integrated_removals = ilp.integrated_removals;
      result.plan.proven_optimal = ilp.proven_optimal;
      scheduled = true;
    } else {
      PDW_LOG(Warn, "pdw")
          << "scheduling ILP returned no incumbent within its budget; "
             "falling back to greedy insertion";
    }
  }
  if (!scheduled) {
    result.solver.schedule_greedy_fallback = true;
    reg.counter(obs::names::kScheduleIlpGreedyFallbacks).increment();
    result.plan.schedule =
        wash::rescheduleWithWashes(base, routed, options_.wash, pool_.get());
  }
  }
  result.timings.scheduling_s = secondsSince(stage_start);

  result.timings.total_s = secondsSince(run_start);
  result.plan.solve_seconds = result.timings.total_s;

  const core::RouteCacheStats cache_after = cacheStats();
  result.cache.hits = cache_after.hits - cache_before.hits;
  result.cache.misses = cache_after.misses - cache_before.misses;
  result.cache.inserts = cache_after.inserts - cache_before.inserts;
  result.cache.evictions = cache_after.evictions - cache_before.evictions;
  result.cache.stale_drops = cache_after.stale_drops - cache_before.stale_drops;
  result.cache.invalidations =
      cache_after.invalidations - cache_before.invalidations;

  finalizeMetrics(result, metrics_before);
  return result;
}

PdwResult Pipeline::run(const assay::AssaySchedule& base) {
  if (!resolve_state_) resolve_state_ = std::make_unique<ResolveState>();
  // Fresh priming: forget blocked cells and the old memo (execute() refills
  // the memo as a side effect of the full necessity analysis).
  resolve_state_->blocked.clear();
  resolve_state_->memo = wash::NecessityMemo{};
  resolve_state_->primed = false;
  PdwResult result = execute(base, nullptr);
  resolve_state_->base = base;
  resolve_state_->primed = true;
  return result;
}

bool Pipeline::canResolve() const {
  return resolve_state_ != nullptr && resolve_state_->primed;
}

PdwResult Pipeline::resolve(const core::ScheduleDelta& delta) {
  const auto t0 = Clock::now();
  obs::Registry& reg = obs::Registry::instance();
  reg.counter(obs::names::kResolveRequests).increment();

  auto reject = [&](std::string error) {
    reg.counter(obs::names::kResolveErrors).increment();
    PDW_LOG(Warn, "pdw") << "resolve rejected: " << error;
    PdwResult result;
    result.resolve.attempted = true;
    result.resolve.valid = false;
    result.resolve.error = std::move(error);
    return result;
  };

  if (!canResolve())
    return reject("resolve() requires a prior successful run()");

  core::AppliedDelta applied = core::applyDelta(resolve_state_->base, delta);
  if (!applied.valid) return reject(std::move(applied.error));

  // Commit the delta's blocked cells (they persist across later resolves,
  // like the re-based schedule does).
  if (!delta.blocked_cells.empty()) {
    auto& blocked = resolve_state_->blocked;
    blocked.insert(blocked.end(), delta.blocked_cells.begin(),
                   delta.blocked_cells.end());
    std::sort(blocked.begin(), blocked.end());
    blocked.erase(std::unique(blocked.begin(), blocked.end()), blocked.end());
  }
  // A removal renumbered the dense task ids; the memo's use lists and
  // targets embed the old ids, so per-cell reuse would splice stale ids
  // into the merged result. Drop it — the delta analysis falls back to a
  // full re-walk and reports full_fallback.
  if (applied.ids_renumbered) resolve_state_->memo = wash::NecessityMemo{};

  wash::NecessityDeltaStats dstats;
  PdwResult result = execute(applied.schedule, &dstats);

  result.resolve.attempted = true;
  result.resolve.valid = true;
  result.resolve.frontier_cells = dstats.frontier_cells;
  result.resolve.reused_cells = dstats.reused_cells;
  result.resolve.targets_recomputed = dstats.recomputed_targets;
  result.resolve.targets_reused = dstats.reused_targets;
  result.resolve.routes_reused = result.cache.hits;
  result.resolve.full_fallback = dstats.full_fallback;

  // Re-base: later deltas apply on top of the perturbed schedule.
  resolve_state_->base = std::move(applied.schedule);

  if (dstats.full_fallback)
    reg.counter(obs::names::kResolveFullFallbacks).increment();
  reg.counter(obs::names::kResolveCellsTotal)
      .add(dstats.frontier_cells + dstats.reused_cells);
  reg.counter(obs::names::kResolveFrontierCells).add(dstats.frontier_cells);
  reg.counter(obs::names::kResolveReusedCells).add(dstats.reused_cells);
  reg.counter(obs::names::kResolveTargetsTotal)
      .add(dstats.recomputed_targets + dstats.reused_targets);
  reg.counter(obs::names::kResolveTargetsRecomputed)
      .add(dstats.recomputed_targets);
  reg.counter(obs::names::kResolveTargetsReused).add(dstats.reused_targets);
  reg.counter(obs::names::kResolveRoutesReused).add(result.cache.hits);
  reg.histogram(obs::names::kResolveSeconds).observe(secondsSince(t0));
  return result;
}

}  // namespace pdw

#include "core/schedule_delta.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/strings.h"

namespace pdw::core {

namespace {

using assay::AssaySchedule;
using assay::FluidTask;
using assay::OpId;
using assay::TaskId;
using assay::TaskKind;

AppliedDelta fail(std::string message) {
  AppliedDelta out;
  out.error = std::move(message);
  return out;
}

}  // namespace

std::string ScheduleDelta::describe() const {
  return util::format("%d op delays, %d task delays, %d blocked cells, "
                      "%d removals",
                      static_cast<int>(op_delays.size()),
                      static_cast<int>(task_delays.size()),
                      static_cast<int>(blocked_cells.size()),
                      static_cast<int>(removed_tasks.size()));
}

AppliedDelta applyDelta(const AssaySchedule& base, const ScheduleDelta& delta) {
  if (!base.valid()) return fail("base schedule has no graph/chip");

  const auto& ops = base.opSchedules();
  const auto& tasks = base.tasks();
  std::map<OpId, std::size_t> op_index;
  for (std::size_t i = 0; i < ops.size(); ++i) op_index[ops[i].op] = i;

  // ---- validation -------------------------------------------------------
  std::map<OpId, double> op_delay;
  for (const ScheduleDelta::OpDelay& d : delta.op_delays) {
    if (!op_index.count(d.op))
      return fail(util::format("unknown operation %d in delta", d.op));
    if (!std::isfinite(d.delay_s))
      return fail("op delay must be finite");
    op_delay[d.op] += d.delay_s;
  }
  std::map<TaskId, double> task_delay;
  for (const ScheduleDelta::TaskDelay& d : delta.task_delays) {
    if (d.task < 0 || d.task >= static_cast<TaskId>(tasks.size()))
      return fail(util::format("unknown task %d in delta", d.task));
    if (!std::isfinite(d.delay_s))
      return fail("task delay must be finite");
    task_delay[d.task] += d.delay_s;
  }
  std::set<TaskId> removed;
  for (const TaskId id : delta.removed_tasks) {
    if (id < 0 || id >= static_cast<TaskId>(tasks.size()))
      return fail(util::format("unknown task %d in delta removal", id));
    const TaskKind kind = tasks[static_cast<std::size_t>(id)].kind;
    if (kind != TaskKind::ExcessRemoval && kind != TaskKind::WasteRemoval)
      return fail(util::format(
          "task %d is a %s; only waste-bound tasks can be removed", id,
          toString(kind)));
    if (task_delay.count(id))
      return fail(util::format("task %d both delayed and removed", id));
    removed.insert(id);
  }
  for (const arch::Cell& c : delta.blocked_cells)
    if (!base.chip().contains(c))
      return fail(util::format("blocked cell %d:%d outside the chip", c.x,
                               c.y));

  // ---- shift propagation -------------------------------------------------
  // new_start = max(base_start + own_delay, every structural predecessor's
  // new end); durations are preserved. Predecessor edges are exactly the
  // hard precedence rules of the synthesizer/validator: op dependencies,
  // producer op -> transport -> consumer op, removal-after-transport,
  // waste-removal-after-producer('s transports), removal-before-consumer,
  // and same-device exclusivity in base order. The base schedule satisfies
  // all of them, so iterating to a fixpoint converges (each pass only moves
  // starts forward, bounded by the total injected delay).
  std::vector<double> op_start(ops.size()), op_end(ops.size());
  std::vector<double> task_start(tasks.size()), task_end(tasks.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    op_start[i] = ops[i].start + (op_delay.count(ops[i].op)
                                      ? op_delay[ops[i].op]
                                      : 0.0);
    op_end[i] = op_start[i] + (ops[i].end - ops[i].start);
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskId id = tasks[i].id;
    task_start[i] =
        tasks[i].start + (task_delay.count(id) ? task_delay[id] : 0.0);
    task_end[i] = task_start[i] + tasks[i].duration();
  }

  // Same-device base order: for each device, op indices sorted by base start.
  std::map<arch::DeviceId, std::vector<std::size_t>> by_device;
  for (std::size_t i = 0; i < ops.size(); ++i)
    by_device[ops[i].device].push_back(i);
  for (auto& [dev, list] : by_device)
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      if (ops[a].start != ops[b].start) return ops[a].start < ops[b].start;
      return ops[a].op < ops[b].op;
    });

  const auto opLowerBound = [&](std::size_t i) {
    double lb = ops[i].start +
                (op_delay.count(ops[i].op) ? op_delay[ops[i].op] : 0.0);
    for (const assay::Dependency& d : base.graph().dependencies())
      if (d.to == ops[i].op) lb = std::max(lb, op_end[op_index.at(d.from)]);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (removed.count(tasks[t].id)) continue;
      const FluidTask& task = tasks[t];
      // Inbound transports and excess removals must finish before the
      // consumer starts.
      if (task.consumer == ops[i].op &&
          (task.kind == TaskKind::Transport ||
           task.kind == TaskKind::ExcessRemoval))
        lb = std::max(lb, task_end[t]);
    }
    const auto& peers = by_device.at(ops[i].device);
    for (std::size_t p : peers) {
      if (p == i) break;  // peers are in base order; predecessors precede i
      lb = std::max(lb, op_end[p]);
    }
    return lb;
  };

  const auto taskLowerBound = [&](std::size_t t) {
    const FluidTask& task = tasks[t];
    const TaskId id = task.id;
    double lb = task.start + (task_delay.count(id) ? task_delay[id] : 0.0);
    switch (task.kind) {
      case TaskKind::Transport:
        if (task.producer >= 0)
          lb = std::max(lb, op_end[op_index.at(task.producer)]);
        break;
      case TaskKind::ExcessRemoval:
        if (task.matching_transport >= 0 &&
            !removed.count(task.matching_transport))
          lb = std::max(
              lb, task_end[static_cast<std::size_t>(task.matching_transport)]);
        break;
      case TaskKind::WasteRemoval:
        if (task.producer >= 0) {
          lb = std::max(lb, op_end[op_index.at(task.producer)]);
          for (std::size_t o = 0; o < tasks.size(); ++o)
            if (tasks[o].kind == TaskKind::Transport &&
                tasks[o].producer == task.producer)
              lb = std::max(lb, task_end[o]);
        }
        break;
      case TaskKind::Wash:
        break;  // base schedules carry no washes
    }
    return lb;
  };

  const std::size_t max_passes = ops.size() + tasks.size() + 2;
  bool changed = true;
  for (std::size_t pass = 0; changed && pass < max_passes; ++pass) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const double lb = opLowerBound(i);
      if (lb > op_start[i] + 1e-12) {
        op_start[i] = lb;
        op_end[i] = lb + (ops[i].end - ops[i].start);
        changed = true;
      }
    }
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (removed.count(tasks[t].id)) continue;
      const double lb = taskLowerBound(t);
      if (lb > task_start[t] + 1e-12) {
        task_start[t] = lb;
        task_end[t] = lb + tasks[t].duration();
        changed = true;
      }
    }
  }
  if (changed)
    return fail("delta propagation did not converge (cyclic precedence?)");

  // ---- assemble the perturbed schedule -----------------------------------
  AppliedDelta out;
  out.valid = true;
  out.schedule = AssaySchedule(&base.graph(), &base.chip());
  OpId max_op = -1;
  for (const assay::OpSchedule& s : ops) max_op = std::max(max_op, s.op);
  out.op_shift.assign(static_cast<std::size_t>(max_op + 1), 0.0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    assay::OpSchedule copy = ops[i];
    copy.start = op_start[i];
    copy.end = op_end[i];
    out.schedule.addOpSchedule(copy);
    out.op_shift[static_cast<std::size_t>(ops[i].op)] =
        op_start[i] - ops[i].start;
  }
  out.task_shift.assign(tasks.size(), 0.0);
  out.task_remap.assign(tasks.size(), -1);
  out.removed.assign(removed.begin(), removed.end());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    if (removed.count(tasks[t].id)) continue;
    FluidTask copy = tasks[t];
    copy.start = task_start[t];
    copy.end = task_end[t];
    if (copy.matching_transport >= 0)
      copy.matching_transport =
          out.task_remap[static_cast<std::size_t>(copy.matching_transport)];
    const TaskId new_id = out.schedule.addTask(copy);
    out.task_remap[t] = new_id;
    out.task_shift[t] = task_start[t] - tasks[t].start;
    if (new_id != tasks[t].id) out.ids_renumbered = true;
  }
  return out;
}

}  // namespace pdw::core

// pdw::Pipeline — the stable facade over the whole PathDriver-Wash stack.
//
//   pdw::Pipeline pipeline(core::PdwOptions{}.withThreads(4));
//   pdw::PdwResult r = pipeline.run(base_schedule);
//   // r.plan       — the washed, re-timed schedule + necessity stats
//   // r.timings    — per-stage wall-clock breakdown
//   // r.solver     — path-ILP and scheduling-ILP statistics
//   // r.cache      — route-cache hits/misses/evictions for this run
//
// The Pipeline owns the parallel runtime: a work-stealing thread pool that
// routes the per-operation wash-path ILPs concurrently (they are
// independent given the necessity analysis), a solver portfolio race inside
// the scheduling ILP, and an LRU route cache that persists across run()
// calls so repeated sub-assays skip the ILP entirely.
//
// Determinism guarantee: for a fixed option set, run() produces the same
// wash plan for every num_threads value (parallel routing merges in
// wash-operation index order; the portfolio race never substitutes a
// differing assignment). num_threads = 1 executes the exact sequential
// code path.
#pragma once

#include <memory>

#include "assay/schedule.h"
#include "core/pathdriver_wash.h"
#include "core/route_cache.h"
#include "ilp/types.h"
#include "obs/metrics.h"
#include "wash/plan.h"

namespace pdw {

namespace util {
class ThreadPool;
}

/// Wall-clock seconds spent in each pipeline stage of one run().
struct StageTimings {
  double analysis_s = 0.0;    ///< contamination replay + necessity analysis
  double clustering_s = 0.0;  ///< wash-target clustering
  double routing_s = 0.0;     ///< per-operation wash-path routing
  double scheduling_s = 0.0;  ///< scheduling ILP (or greedy fallback)
  double total_s = 0.0;
};

/// Solver bookkeeping across both ILP stages of one run().
struct PipelineSolverStats {
  /// Scheduling-ILP statistics (zero when the stage was skipped).
  ilp::SolveStats schedule;
  bool schedule_ilp_success = false;
  bool schedule_greedy_fallback = false;
  /// Wash-path routing totals over all operations. These are views over the
  /// obs metrics registry: run() fills them from the per-run delta of the
  /// pdw.path_ilp.* counters rather than keeping separate books.
  int path_ilp_solves = 0;
  int path_connectivity_cuts = 0;
  int path_fallbacks = 0;   ///< operations that used the BFS fallback
  int path_warm_hits = 0;   ///< node LPs warm-solved across path ILPs
};

/// Consolidated result of one Pipeline::run().
struct PdwResult {
  wash::WashPlanResult plan;
  StageTimings timings;
  PipelineSolverStats solver;
  /// Route-cache activity during this run (deltas, not lifetime totals).
  core::RouteCacheStats cache;
  /// Every registry metric as a per-run delta (counters and histograms are
  /// this run's contribution; gauges are their value at run() end). Caveat:
  /// the registry is process-wide, so concurrent run() calls on *different*
  /// Pipeline instances fold into each other's deltas.
  obs::MetricsSnapshot metrics;
  int threads = 1;             ///< execution lanes used
  int wash_operations = 0;     ///< clustered wash operations routed
  int unroutable_operations = 0;  ///< dropped (malformed chip; logged)

  /// Convenience: the washed schedule.
  const assay::AssaySchedule& schedule() const { return plan.schedule; }
};

class Pipeline {
 public:
  /// Resolves num_threads (0 -> hardware concurrency), builds the runtime
  /// (thread pool + route cache) and — unless withScheduleBudget pinned one —
  /// applies the PDW scheduling-solver budget over the stock ilp defaults,
  /// logging the substitution.
  explicit Pipeline(core::PdwOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Run the four PDW stages on `base`. Reentrant with respect to distinct
  /// Pipeline instances; one instance must not be run() from two threads.
  PdwResult run(const assay::AssaySchedule& base);

  /// The options as resolved by the constructor (threads, budgets).
  const core::PdwOptions& options() const { return options_; }

  /// Lifetime route-cache statistics (accumulated over all run() calls).
  core::RouteCacheStats cacheStats() const;

 private:
  core::PdwOptions options_;
  /// Owned by this Pipeline unless the options injected shared instances
  /// (PdwOptions::shared_pool / shared_route_cache — the pdwd service model
  /// of N concurrent Pipelines over one pool and one warm cache).
  std::shared_ptr<util::ThreadPool> pool_;
  std::shared_ptr<core::RouteCache> cache_;
};

}  // namespace pdw

// pdw::Pipeline — the stable facade over the whole PathDriver-Wash stack.
//
//   pdw::Pipeline pipeline(core::PdwOptions{}.withThreads(4));
//   pdw::PdwResult r = pipeline.run(base_schedule);
//   // r.plan       — the washed, re-timed schedule + necessity stats
//   // r.timings    — per-stage wall-clock breakdown
//   // r.solver     — path-ILP and scheduling-ILP statistics
//   // r.cache      — route-cache hits/misses/evictions for this run
//
// The Pipeline owns the parallel runtime: a work-stealing thread pool that
// routes the per-operation wash-path ILPs concurrently (they are
// independent given the necessity analysis), a solver portfolio race inside
// the scheduling ILP, and an LRU route cache that persists across run()
// calls so repeated sub-assays skip the ILP entirely.
//
// Determinism guarantee: for a fixed option set, run() produces the same
// wash plan for every num_threads value (parallel routing merges in
// wash-operation index order; the portfolio race never substitutes a
// differing assignment). num_threads = 1 executes the exact sequential
// code path.
#pragma once

#include <memory>
#include <string>

#include "assay/schedule.h"
#include "core/pathdriver_wash.h"
#include "core/route_cache.h"
#include "core/schedule_delta.h"
#include "ilp/types.h"
#include "obs/metrics.h"
#include "wash/plan.h"

namespace pdw {

namespace util {
class ThreadPool;
}

/// Wall-clock seconds spent in each pipeline stage of one run().
struct StageTimings {
  double analysis_s = 0.0;    ///< contamination replay + necessity analysis
  double clustering_s = 0.0;  ///< wash-target clustering
  double routing_s = 0.0;     ///< per-operation wash-path routing
  double scheduling_s = 0.0;  ///< scheduling ILP (or greedy fallback)
  double total_s = 0.0;
};

/// Solver bookkeeping across both ILP stages of one run().
struct PipelineSolverStats {
  /// Scheduling-ILP statistics (zero when the stage was skipped).
  ilp::SolveStats schedule;
  bool schedule_ilp_success = false;
  bool schedule_greedy_fallback = false;
  /// Wash-path routing totals over all operations. These are views over the
  /// obs metrics registry: run() fills them from the per-run delta of the
  /// pdw.path_ilp.* counters rather than keeping separate books.
  int path_ilp_solves = 0;
  int path_connectivity_cuts = 0;
  int path_fallbacks = 0;   ///< operations that used the BFS fallback
  int path_warm_hits = 0;   ///< node LPs warm-solved across path ILPs
};

/// Bookkeeping of one Pipeline::resolve() — how much of the previous
/// solve's state the incremental path actually reused (the `pdw.resolve.*`
/// metrics mirror these as process-wide counters).
struct ResolveStats {
  bool attempted = false;  ///< this result came from resolve(), not run()
  bool valid = false;      ///< delta applied cleanly; the plan is meaningful
  std::string error;       ///< set when attempted && !valid
  int frontier_cells = 0;  ///< cells re-analyzed (use list changed)
  int reused_cells = 0;    ///< cells whose necessity carried over verbatim
  int targets_recomputed = 0;
  int targets_reused = 0;
  int routes_reused = 0;   ///< wash routes served by the route cache
  /// The necessity memo was unusable (options/horizon moved, or a task
  /// removal renumbered ids) and every cell was re-analyzed.
  bool full_fallback = false;
};

/// Consolidated result of one Pipeline::run().
struct PdwResult {
  wash::WashPlanResult plan;
  StageTimings timings;
  PipelineSolverStats solver;
  /// Route-cache activity during this run (deltas, not lifetime totals).
  core::RouteCacheStats cache;
  /// Every registry metric as a per-run delta (counters and histograms are
  /// this run's contribution; gauges are their value at run() end). Caveat:
  /// the registry is process-wide, so concurrent run() calls on *different*
  /// Pipeline instances fold into each other's deltas.
  obs::MetricsSnapshot metrics;
  int threads = 1;             ///< execution lanes used
  int wash_operations = 0;     ///< clustered wash operations routed
  int unroutable_operations = 0;  ///< dropped (malformed chip; logged)
  /// Incremental-solve bookkeeping (attempted == false for run() results).
  ResolveStats resolve;

  /// Convenience: the washed schedule.
  const assay::AssaySchedule& schedule() const { return plan.schedule; }
};

class Pipeline {
 public:
  /// Resolves num_threads (0 -> hardware concurrency), builds the runtime
  /// (thread pool + route cache) and — unless withScheduleBudget pinned one —
  /// applies the PDW scheduling-solver budget over the stock ilp defaults,
  /// logging the substitution.
  explicit Pipeline(core::PdwOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Run the four PDW stages on `base`. Reentrant with respect to distinct
  /// Pipeline instances; one instance must not be run() from two threads.
  /// Also (re)primes the incremental-solve state consumed by resolve():
  /// the base schedule is copied, so the caller's graph/chip must outlive
  /// later resolve() calls, and any blocked cells from earlier deltas are
  /// forgotten.
  PdwResult run(const assay::AssaySchedule& base);

  /// Incremental delta-solve (DESIGN.md §15): apply `delta` to the last
  /// solved base schedule, re-analyze wash necessity only on the
  /// contamination frontier the delta touched, route through the (warm)
  /// route cache with the delta's blocked cells excluded, and repair the
  /// scheduling MILP in fix-and-optimize mode instead of the cold two-phase
  /// solve. The wash plan equals what run() on the perturbed schedule would
  /// produce up to schedule re-timing: necessity, clustering and routing are
  /// bit-identical, so N_wash/L_wash match exactly. Requires a prior
  /// successful run(); deltas compose (each resolve() re-bases on the
  /// perturbed schedule it produced). An invalid delta (unknown id,
  /// transport removal, blocked target cell) leaves the state untouched and
  /// returns result.resolve.valid == false with the error message.
  PdwResult resolve(const core::ScheduleDelta& delta);

  /// True once run() has primed the state resolve() needs.
  bool canResolve() const;

  /// The options as resolved by the constructor (threads, budgets).
  const core::PdwOptions& options() const { return options_; }

  /// Lifetime route-cache statistics (accumulated over all run() calls).
  core::RouteCacheStats cacheStats() const;

 private:
  struct ResolveState;

  /// Shared stage driver behind run() and resolve(). `delta_stats` != null
  /// selects the incremental path (memoized necessity + repair scheduling).
  PdwResult execute(const assay::AssaySchedule& base,
                    wash::NecessityDeltaStats* delta_stats);

  core::PdwOptions options_;
  /// Owned by this Pipeline unless the options injected shared instances
  /// (PdwOptions::shared_pool / shared_route_cache — the pdwd service model
  /// of N concurrent Pipelines over one pool and one warm cache).
  std::shared_ptr<util::ThreadPool> pool_;
  std::shared_ptr<core::RouteCache> cache_;
  std::unique_ptr<ResolveState> resolve_state_;
};

}  // namespace pdw

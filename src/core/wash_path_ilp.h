// Wash-path routing.
//
// ILP formulation of paper eqs. 12-15: choose one flow port and one waste
// port (eq. 12), exactly one path cell adjacent to each chosen port
// (eq. 13), degree-2 continuity on interior path cells (eq. 14), and cover
// every wash target (eq. 15), minimizing path length (the L_wash term of
// eq. 26). Degree constraints alone admit disconnected cycles; the router
// adds lazy connectivity cuts (for a selected cycle component C:
// sum u_c <= |C|-1) and re-solves until the selection is a single path —
// the standard exact completion of the formulation (DESIGN.md §6).
//
// A BFS nearest-port chaining heuristic (the wash-path method of the DAWO
// baseline [10]) is provided both as a fallback and for the ablation bench.
#pragma once

#include <optional>
#include <vector>

#include "arch/chip.h"
#include "arch/path.h"
#include "ilp/types.h"

namespace pdw::core {

struct WashPathStats {
  int ilp_solves = 0;
  int connectivity_cuts = 0;
  bool used_fallback = false;
};

struct WashPathOptions {
  ilp::SolveParams solver;
  /// Candidate-region inflation around the targets' bounding box.
  int region_inflate = 2;
  /// Skip the ILP (straight to the heuristic) when the candidate region
  /// exceeds this many cells — the exact model is reserved for the
  /// localized routing problems it is meant for.
  int max_region_cells = 140;
  /// Fall back to the BFS heuristic when the ILP fails or times out; when
  /// both succeed the shorter path wins.
  bool fallback_heuristic = true;
  /// Cells no wash path may enter (stuck valves / damaged cells reported by
  /// a ScheduleDelta). Hard constraint for BOTH routers on every pass —
  /// unlike foreign devices, which only the restricted pass avoids. Part of
  /// the route-cache key (RouteCache::makeKey), so blocked and unblocked
  /// problems never alias.
  std::vector<arch::Cell> avoid_cells;

  WashPathOptions() {
    solver.time_limit_seconds = 1.5;
    solver.node_limit = 8000;
  }
};

/// Route an optimal wash path covering `targets` on `chip` via the ILP.
/// `occupied_devices` (optional) marks device cells the path must avoid
/// (devices holding fluids); target cells are always allowed.
std::optional<arch::FlowPath> routeWashPathIlp(
    const arch::ChipLayout& chip, const std::vector<arch::Cell>& targets,
    const WashPathOptions& options = {}, WashPathStats* stats = nullptr);

/// BFS heuristic: nearest flow port -> greedy target chain -> nearest waste
/// port (the DAWO baseline's wash-path construction). `avoid_cells` are
/// excluded on every pass.
std::optional<arch::FlowPath> routeWashPathHeuristic(
    const arch::ChipLayout& chip, const std::vector<arch::Cell>& targets,
    const std::vector<arch::Cell>& avoid_cells = {});

}  // namespace pdw::core

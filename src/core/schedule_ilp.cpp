#include "core/schedule_ilp.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "ilp/solver.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "wash/contamination.h"
#include "wash/rescheduler.h"

namespace pdw::core {

namespace {

using assay::AssaySchedule;
using assay::FluidTask;
using assay::OpId;
using assay::TaskId;
using assay::TaskKind;
using ilp::LinExpr;
using ilp::Model;
using ilp::VarId;
using wash::WashOperation;

/// Start variable plus the end as an affine expression of it — end
/// variables are substituted out (end = start + duration), which halves the
/// model size versus the literal eqs. 1/6/7/18 without changing the
/// optimum (durations are tight at any optimum of eq. 26).
struct TimeItem {
  VarId start = -1;
  LinExpr end;
};

/// Bookkeeping for warm-starting order binaries.
struct OrderBinary {
  VarId var = -1;
  VarId a_start = -1;  // order = 1  <=>  a before b
  VarId b_start = -1;
};

class Builder {
 public:
  Builder(const AssaySchedule& base, const std::vector<WashOperation>& washes,
          const ScheduleIlpOptions& options)
      : base_(base), washes_(washes), options_(options) {
    PDW_TRACE_SPAN("scheduling", "greedy_warm_start");
    double wash_total = 0.0;
    for (const WashOperation& w : washes_)
      wash_total += w.duration(options_.wash, base_.chip().pitchMm());
    horizon_ = base_.completionTime() + wash_total + 20.0;
    greedy_ = wash::rescheduleWithWashes(base_, washes_, options_.wash,
                                         options_.pool);
    horizon_ = std::max(horizon_, greedy_.completionTime() + 5.0);
  }

  ScheduleIlpResult solve() {
    {
      PDW_TRACE_SPAN("scheduling", "build_model");
      buildTimeVariables();
      buildPsiVariables();
      defineEnds();
      buildOpConstraints();
      buildTaskConstraints();
      buildWashConstraints();
      buildIntegrationWindows();
      buildConflicts();
      buildObjective();
    }
    obs::Registry& reg = obs::Registry::instance();
    reg.gauge(obs::names::kScheduleIlpOrderBinaries)
        .set(static_cast<double>(num_order_binaries_));
    reg.gauge(obs::names::kScheduleIlpPsiVars)
        .set(static_cast<double>(psi_count_));

    ScheduleIlpResult result;
    result.num_order_binaries = num_order_binaries_;
    result.num_fixed_orders = num_fixed_orders_;
    result.num_psi_vars = static_cast<int>(psi_count_);

    const std::vector<double> warm = buildWarmStart();

    // Phase A — fix-and-optimize: pin every order binary to the greedy
    // order and solve the remaining small MILP (continuous start times + psi
    // integration binaries). This re-times the greedy order optimally and
    // activates removal integration; it is fast because the disjunctions
    // collapse to plain precedence constraints.
    ilp::SolveParams params_a = options_.solver;
    params_a.warm_start = warm;
    params_a.time_limit_seconds =
        options_.repair_mode
            ? options_.solver.time_limit_seconds
            : std::max(0.5, options_.solver.time_limit_seconds * 0.4);
    // Repair solves re-enter with a warm point projected from the previous
    // plan; clamp it into the (slightly moved) variable box so it survives
    // the incumbent-seeding feasibility check.
    params_a.warm_clamp = options_.repair_mode;
    Model fixed = model_;
    for (const OrderBinary& ob : order_binaries_) {
      const double v = warm[static_cast<std::size_t>(ob.var)];
      fixed.setBounds(ob.var, v, v);
    }
    ilp::Solution best = [&] {
      PDW_TRACE_SPAN("scheduling", "phase_a_fixed_orders");
      return ilp::solve(fixed, params_a);
    }();
    result.stats = best.stats;

    if (options_.repair_mode) {
      // Phase A is the whole repair: the pinned-order optimum re-times the
      // perturbed schedule; proving full-model optimality is what the cold
      // path is for.
      result.proven_optimal = false;
      if (!best.hasSolution()) return result;  // success = false
      result.success = true;
      result.objective = best.objective;
      result.schedule = extract(best, &result.integrated_removals);
      return result;
    }

    // Phase B — full model with free orders, warm-started from phase A.
    ilp::SolveParams params_b = options_.solver;
    params_b.time_limit_seconds = std::max(
        0.5, options_.solver.time_limit_seconds - params_a.time_limit_seconds);
    params_b.warm_start = best.hasSolution() ? best.values : warm;
    const ilp::Solution full = [&] {
      PDW_TRACE_SPAN("scheduling", "phase_b_full_model");
      return ilp::solve(model_, params_b);
    }();
    result.stats.nodes_explored += full.stats.nodes_explored;
    result.stats.simplex_iterations += full.stats.simplex_iterations;
    result.stats.wall_seconds += full.stats.wall_seconds;
    result.stats.lp_solves += full.stats.lp_solves;
    result.stats.warm_hits += full.stats.warm_hits;
    result.stats.warm_misses += full.stats.warm_misses;
    result.stats.dual_pivots += full.stats.dual_pivots;
    result.stats.rc_fixed += full.stats.rc_fixed;
    result.stats.cuts_added += full.stats.cuts_added;
    result.stats.cuts_gomory += full.stats.cuts_gomory;
    result.stats.cuts_cover += full.stats.cuts_cover;
    result.stats.cuts_gomory_active += full.stats.cuts_gomory_active;
    result.stats.cuts_cover_active += full.stats.cuts_cover_active;
    result.stats.cuts_evicted += full.stats.cuts_evicted;
    result.stats.cut_rounds += full.stats.cut_rounds;
    if (full.hasSolution() &&
        (!best.hasSolution() || full.objective < best.objective)) {
      best = full;
      result.proven_optimal = full.status == ilp::SolveStatus::Optimal;
    } else {
      result.proven_optimal = false;
    }

    if (!best.hasSolution()) return result;  // success = false
    result.success = true;
    result.objective = best.objective;
    result.schedule = extract(best, &result.integrated_removals);
    return result;
  }

 private:
  double bigM() const { return horizon_; }

  VarId addTime(const std::string& name) {
    return model_.addContinuous(0.0, horizon_, name);
  }

  double washDuration(std::size_t w) const {
    return washes_[w].duration(options_.wash, base_.chip().pitchMm());
  }

  void buildTimeVariables() {
    for (const assay::OpSchedule& s : base_.opSchedules())
      op_vars_[s.op].start = addTime("to" + std::to_string(s.op));
    for (const FluidTask& t : base_.tasks())
      task_vars_[t.id].start = addTime("tp" + std::to_string(t.id));
    wash_vars_.resize(washes_.size());
    for (std::size_t w = 0; w < washes_.size(); ++w)
      wash_vars_[w].start = addTime("tw" + std::to_string(w));
    t_assay_ = model_.addContinuous(0.0, horizon_, "T_assay");
  }

  /// psi_{r,w} = 1: removal r is integrated into wash w (paper §II-B,
  /// eqs. 7/21). Candidate pairs: the wash path covers the removal's
  /// payload cells (the cells that actually hold excess fluid).
  void buildPsiVariables() {
    if (!options_.enable_integration) return;
    for (const FluidTask& t : base_.tasks()) {
      if (t.kind != TaskKind::ExcessRemoval) continue;
      std::vector<arch::Cell> channel_payload;
      for (const arch::Cell& c : t.payloadCells())
        if (!base_.chip().isPortCell(c)) channel_payload.push_back(c);
      for (std::size_t w = 0; w < washes_.size(); ++w) {
        if (!washes_[w].path.coversAll(channel_payload)) continue;
        const VarId psi = model_.addBinary(
            "psi_r" + std::to_string(t.id) + "_w" + std::to_string(w));
        psi_by_removal_[t.id].push_back({static_cast<int>(w), psi});
        ++psi_count_;
      }
    }
  }

  void defineEnds() {
    for (const assay::OpSchedule& s : base_.opSchedules()) {
      op_vars_[s.op].end = LinExpr(op_vars_[s.op].start) +
                           base_.graph().op(s.op).duration_s;  // eq. 1
    }
    for (const FluidTask& t : base_.tasks()) {
      LinExpr end = LinExpr(task_vars_[t.id].start) + t.duration();
      // Eq. 7: integrated removals shrink to zero duration.
      const auto it = psi_by_removal_.find(t.id);
      if (it != psi_by_removal_.end())
        for (const auto& [w, psi] : it->second)
          end += -t.duration() * LinExpr(psi);
      task_vars_[t.id].end = std::move(end);
    }
    for (std::size_t w = 0; w < washes_.size(); ++w)
      wash_vars_[w].end =
          LinExpr(wash_vars_[w].start) + washDuration(w);  // eqs. 17/18
  }

  // Eq. 2 (precedence), eq. 3 (device exclusivity), eq. 22 (T_assay).
  void buildOpConstraints() {
    for (const assay::OpSchedule& s : base_.opSchedules())
      model_.addGreaterEqual(LinExpr(t_assay_) - op_vars_.at(s.op).end, 0.0);
    for (const assay::Dependency& d : base_.graph().dependencies())
      model_.addGreaterEqual(
          LinExpr(op_vars_.at(d.to).start) - op_vars_.at(d.from).end, 0.0);
    const auto& ops = base_.opSchedules();
    for (std::size_t i = 0; i < ops.size(); ++i)
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (ops[i].device != ops[j].device) continue;
        // Device residue depends on execution order: keep the base order
        // the necessity analysis saw (kappa pinned; DESIGN.md §7).
        const auto& gi = greedy_.opSchedule(ops[i].op);
        const auto& gj = greedy_.opSchedule(ops[j].op);
        addDisjunction(op_vars_.at(ops[i].op), gi.start, gi.end,
                       op_vars_.at(ops[j].op), gj.start, gj.end,
                       LinExpr(0.0), /*allow_reorder=*/false);
      }
  }

  // Eqs. 4/5 plus T_assay coverage of trailing tasks.
  void buildTaskConstraints() {
    for (const FluidTask& t : base_.tasks()) {
      const TimeItem& v = task_vars_.at(t.id);
      model_.addGreaterEqual(LinExpr(t_assay_) - v.end, 0.0);

      switch (t.kind) {
        case TaskKind::Transport:
          if (t.producer >= 0)
            model_.addGreaterEqual(
                LinExpr(v.start) - op_vars_.at(t.producer).end, 0.0);
          if (t.consumer >= 0)
            model_.addLessEqual(
                v.end - LinExpr(op_vars_.at(t.consumer).start), 0.0);
          break;
        case TaskKind::ExcessRemoval: {
          const TaskId transport = matchingTransport(t);
          if (transport >= 0)
            model_.addGreaterEqual(
                LinExpr(v.start) - task_vars_.at(transport).end, 0.0);
          if (t.consumer >= 0)
            model_.addLessEqual(
                v.end - LinExpr(op_vars_.at(t.consumer).start), 0.0);
          break;
        }
        case TaskKind::WasteRemoval:
          if (t.producer >= 0) {
            model_.addGreaterEqual(
                LinExpr(v.start) - op_vars_.at(t.producer).end, 0.0);
            for (const FluidTask& other : base_.tasks())
              if (other.kind == TaskKind::Transport &&
                  other.producer == t.producer)
                model_.addGreaterEqual(
                    LinExpr(v.start) - task_vars_.at(other.id).end, 0.0);
          }
          break;
        case TaskKind::Wash:
          break;  // base schedules carry no washes
      }
    }
  }

  // Eq. 16: wash windows.
  void buildWashConstraints() {
    for (std::size_t w = 0; w < washes_.size(); ++w) {
      const WashOperation& wash = washes_[w];
      const TimeItem& v = wash_vars_[w];
      model_.addGreaterEqual(LinExpr(t_assay_) - v.end, 0.0);
      for (const wash::WashTarget& target : wash.targets) {
        if (target.contaminating_task >= 0)
          model_.addGreaterEqual(
              LinExpr(v.start) -
                  task_vars_.at(target.contaminating_task).end,
              0.0);
        if (target.contaminating_op >= 0)
          model_.addGreaterEqual(
              LinExpr(v.start) - op_vars_.at(target.contaminating_op).end,
              0.0);
        if (target.blocking_task >= 0)
          model_.addLessEqual(
              v.end - LinExpr(task_vars_.at(target.blocking_task).start),
              0.0);
      }
    }
  }

  // Eq. 21: when psi=1 the wash must run inside the removal's service
  // window (after its transport, before its consumer starts).
  void buildIntegrationWindows() {
    for (const auto& [removal_id, pairs] : psi_by_removal_) {
      const FluidTask& t = base_.task(removal_id);
      LinExpr psi_sum;
      for (const auto& [w, psi] : pairs) {
        psi_sum += LinExpr(psi);
        const TimeItem& wv = wash_vars_[static_cast<std::size_t>(w)];
        const TaskId transport = matchingTransport(t);
        if (transport >= 0)
          model_.addGreaterEqual(LinExpr(wv.start) -
                                     task_vars_.at(transport).end -
                                     bigM() * LinExpr(psi),
                                 -bigM(), "psi_window_lo");
        if (t.consumer >= 0)
          model_.addLessEqual(wv.end -
                                  LinExpr(op_vars_.at(t.consumer).start) +
                                  bigM() * LinExpr(psi),
                              bigM(), "psi_window_hi");
      }
      model_.addLessEqual(psi_sum, 1.0);  // at most one wash absorbs it
    }
  }

  /// Order disjunction between two intervals with big-M (eqs. 3/8/19/20).
  void addDisjunction(const TimeItem& a, double base_a_start,
                      double base_a_end, const TimeItem& b,
                      double base_b_start, double base_b_end,
                      const LinExpr& relax, bool allow_reorder = true) {
    const double gap_ab = base_b_start - base_a_end;  // a before b
    const double gap_ba = base_a_start - base_b_end;  // b before a
    if (!allow_reorder) {
      if (base_a_start <= base_b_start)
        model_.addGreaterEqual(LinExpr(b.start) - a.end + relax, 0.0);
      else
        model_.addGreaterEqual(LinExpr(a.start) - b.end + relax, 0.0);
      ++num_fixed_orders_;
      return;
    }
    if (gap_ab >= options_.order_horizon_s) {
      model_.addGreaterEqual(LinExpr(b.start) - a.end + relax, 0.0);
      ++num_fixed_orders_;
      return;
    }
    if (gap_ba >= options_.order_horizon_s) {
      model_.addGreaterEqual(LinExpr(a.start) - b.end + relax, 0.0);
      ++num_fixed_orders_;
      return;
    }
    const VarId order = model_.addBinary();
    order_binaries_.push_back({order, a.start, b.start});
    ++num_order_binaries_;
    // order=1: a before b; order=0: b before a.
    model_.addGreaterEqual(LinExpr(b.start) - a.end +
                               bigM() * (LinExpr(1.0) - LinExpr(order)) +
                               relax,
                           0.0);
    model_.addGreaterEqual(
        LinExpr(a.start) - b.end + bigM() * LinExpr(order) + relax, 0.0);
  }

  /// Eqs. 8/19/20: spatial-conflict serialization.
  void buildConflicts() {
    const auto relaxOf = [&](const FluidTask& t) {
      LinExpr relax;
      const auto it = psi_by_removal_.find(t.id);
      if (it != psi_by_removal_.end())
        for (const auto& [w, psi] : it->second)
          relax += bigM() * LinExpr(psi);
      return relax;
    };

    // Greedy reference times: base tasks keep ids; washes are appended.
    const auto greedyTask = [&](TaskId id) -> const FluidTask& {
      return greedy_.task(id);
    };
    const auto greedyWash = [&](std::size_t w) -> const FluidTask& {
      return greedy_.task(
          static_cast<TaskId>(base_.tasks().size() + w));
    };

    // Task-task (eq. 8).
    const auto& tasks = base_.tasks();
    for (std::size_t i = 0; i < tasks.size(); ++i)
      for (std::size_t j = i + 1; j < tasks.size(); ++j) {
        const FluidTask& a = tasks[i];
        const FluidTask& b = tasks[j];
        if (!a.path.overlaps(b.path)) continue;
        if (isOrderedByPrecedence(a, b)) continue;
        addDisjunction(task_vars_.at(a.id), greedyTask(a.id).start,
                       greedyTask(a.id).end, task_vars_.at(b.id),
                       greedyTask(b.id).start, greedyTask(b.id).end,
                       relaxOf(a) + relaxOf(b),
                       wash::reorderSafe(base_.graph().fluids(), a, b));
      }

    // Tasks crossing device cells of unrelated operations.
    for (const FluidTask& t : base_.tasks()) {
      for (const assay::OpSchedule& o : base_.opSchedules()) {
        if (!t.path.contains(base_.chip().device(o.device).cell)) continue;
        if (t.producer == o.op || t.consumer == o.op) continue;
        const auto& go = greedy_.opSchedule(o.op);
        addDisjunction(task_vars_.at(t.id), greedyTask(t.id).start,
                       greedyTask(t.id).end, op_vars_.at(o.op), go.start,
                       go.end, relaxOf(t), /*allow_reorder=*/false);
      }
    }

    // Wash-task (eq. 19), wash-op, wash-wash (eq. 20).
    for (std::size_t w = 0; w < washes_.size(); ++w) {
      const WashOperation& wash = washes_[w];
      const double w_lo = greedyWash(w).start;
      const double w_hi = greedyWash(w).end;
      for (const FluidTask& t : base_.tasks()) {
        if (!wash.path.overlaps(t.path)) continue;
        if (isWashOrdered(wash, t.id)) continue;
        addDisjunction(wash_vars_[w], w_lo, w_hi, task_vars_.at(t.id),
                       greedyTask(t.id).start, greedyTask(t.id).end,
                       relaxOf(t));
      }
      for (const assay::OpSchedule& o : base_.opSchedules()) {
        if (!wash.path.contains(base_.chip().device(o.device).cell))
          continue;
        const auto& go = greedy_.opSchedule(o.op);
        addDisjunction(wash_vars_[w], w_lo, w_hi, op_vars_.at(o.op), go.start,
                       go.end, LinExpr(0.0));
      }
      for (std::size_t w2 = w + 1; w2 < washes_.size(); ++w2) {
        if (!wash.path.overlaps(washes_[w2].path)) continue;
        addDisjunction(wash_vars_[w], w_lo, w_hi, wash_vars_[w2],
                       greedyWash(w2).start, greedyWash(w2).end,
                       LinExpr(0.0));
      }
    }
  }

  bool isOrderedByPrecedence(const FluidTask& a, const FluidTask& b) const {
    if (a.kind == TaskKind::Transport && b.kind == TaskKind::ExcessRemoval &&
        b.matching_transport == a.id)
      return true;
    if (b.kind == TaskKind::Transport && a.kind == TaskKind::ExcessRemoval &&
        a.matching_transport == b.id)
      return true;
    if (a.kind == TaskKind::WasteRemoval && b.kind == TaskKind::Transport &&
        b.producer == a.producer)
      return true;
    if (b.kind == TaskKind::WasteRemoval && a.kind == TaskKind::Transport &&
        a.producer == b.producer)
      return true;
    return false;
  }

  bool isWashOrdered(const WashOperation& wash, TaskId task) const {
    for (const wash::WashTarget& t : wash.targets)
      if (t.contaminating_task == task || t.blocking_task == task)
        return true;
    return false;
  }

  TaskId matchingTransport(const FluidTask& removal) const {
    if (removal.matching_transport >= 0) return removal.matching_transport;
    for (const FluidTask& t : base_.tasks())
      if (t.kind == TaskKind::Transport && t.producer == removal.producer &&
          t.consumer == removal.consumer)
        return t.id;
    return -1;
  }

  // Eq. 26.
  void buildObjective() {
    LinExpr objective = options_.gamma * LinExpr(t_assay_);
    double l_wash = 0.0;
    for (const WashOperation& w : washes_)
      l_wash += w.path.lengthMm(base_.chip().pitchMm());
    objective += LinExpr(options_.alpha * static_cast<double>(washes_.size()) +
                         options_.beta * l_wash);
    for (const auto& [removal_id, pairs] : psi_by_removal_)
      for (const auto& [w, psi] : pairs)
        objective += -0.01 * LinExpr(psi);  // prefer integration on ties
    model_.setObjective(objective);
  }

  /// Seed branch-and-bound with the greedy insertion schedule (the paper's
  /// best-effort semantics: the ILP can only improve on it).
  std::vector<double> buildWarmStart() {
    const AssaySchedule& greedy = greedy_;
    std::vector<double> warm(static_cast<std::size_t>(model_.numVars()), 0.0);
    for (const assay::OpSchedule& s : greedy.opSchedules())
      warm[static_cast<std::size_t>(op_vars_.at(s.op).start)] = s.start;
    // Base tasks keep their ids in the greedy schedule; washes are the
    // trailing tasks in input order.
    for (const FluidTask& t : base_.tasks())
      warm[static_cast<std::size_t>(task_vars_.at(t.id).start)] =
          greedy.task(t.id).start;
    const std::size_t wash_base = base_.tasks().size();
    for (std::size_t w = 0; w < washes_.size(); ++w)
      warm[static_cast<std::size_t>(wash_vars_[w].start)] =
          greedy.task(static_cast<TaskId>(wash_base + w)).start;
    warm[static_cast<std::size_t>(t_assay_)] = greedy.completionTime();
    // psi = 0 everywhere (greedy performs full removals).
    for (const OrderBinary& ob : order_binaries_) {
      warm[static_cast<std::size_t>(ob.var)] =
          warm[static_cast<std::size_t>(ob.a_start)] <=
                  warm[static_cast<std::size_t>(ob.b_start)]
              ? 1.0
              : 0.0;
    }
    return warm;
  }

  AssaySchedule extract(const ilp::Solution& sol, int* integrated) const {
    AssaySchedule out(&base_.graph(), &base_.chip());
    for (const assay::OpSchedule& s : base_.opSchedules()) {
      assay::OpSchedule copy = s;
      copy.start = sol.value(op_vars_.at(s.op).start);
      copy.end = op_vars_.at(s.op).end.evaluate(sol.values);
      out.addOpSchedule(copy);
    }
    *integrated = 0;
    for (const FluidTask& t : base_.tasks()) {
      FluidTask copy = t;
      copy.start = sol.value(task_vars_.at(t.id).start);
      copy.end = task_vars_.at(t.id).end.evaluate(sol.values);
      if (t.kind == TaskKind::ExcessRemoval && copy.duration() < 1e-5) {
        copy.end = copy.start;  // integrated: exact zero duration
        ++*integrated;
      }
      out.addTask(copy);
    }
    for (std::size_t w = 0; w < washes_.size(); ++w) {
      FluidTask task;
      task.kind = TaskKind::Wash;
      task.fluid = base_.graph().fluids().buffer();
      task.path = washes_[w].path;
      task.start = sol.value(wash_vars_[w].start);
      task.end = task.start + washDuration(w);
      out.addTask(task);
    }
    return out;
  }

  const AssaySchedule& base_;
  const std::vector<WashOperation>& washes_;
  const ScheduleIlpOptions& options_;
  AssaySchedule greedy_;
  double horizon_ = 0.0;

  Model model_;
  std::map<OpId, TimeItem> op_vars_;
  std::map<TaskId, TimeItem> task_vars_;
  std::vector<TimeItem> wash_vars_;
  VarId t_assay_ = -1;
  /// removal task id -> (wash index, psi var).
  std::map<TaskId, std::vector<std::pair<int, VarId>>> psi_by_removal_;
  std::size_t psi_count_ = 0;
  std::vector<OrderBinary> order_binaries_;
  int num_order_binaries_ = 0;
  int num_fixed_orders_ = 0;
};

}  // namespace

ScheduleIlpResult solveWashSchedule(const AssaySchedule& base,
                                    const std::vector<WashOperation>& washes,
                                    const ScheduleIlpOptions& options) {
  Builder builder(base, washes, options);
  return builder.solve();
}

}  // namespace pdw::core

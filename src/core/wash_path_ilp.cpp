#include "core/wash_path_ilp.h"

#include <algorithm>
#include <map>
#include <set>

#include "arch/router.h"
#include "ilp/solver.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace pdw::core {

namespace {

using arch::Cell;
using arch::ChipLayout;
using arch::FlowPath;
using ilp::LinExpr;
using ilp::Model;
using ilp::VarId;

/// Candidate region: non-port, non-foreign-device cells inside the inflated
/// bounding box of targets and the listed port cells.
std::vector<Cell> buildRegion(const ChipLayout& chip,
                              const std::vector<Cell>& targets, int inflate,
                              bool whole_grid,
                              const std::set<Cell>& avoid) {
  int min_x = chip.width(), min_y = chip.height(), max_x = -1, max_y = -1;
  const auto extend = [&](Cell c) {
    min_x = std::min(min_x, c.x);
    min_y = std::min(min_y, c.y);
    max_x = std::max(max_x, c.x);
    max_y = std::max(max_y, c.y);
  };
  for (const Cell& t : targets) extend(t);
  // Extend toward the two nearest flow ports and two nearest waste ports
  // only — extending by every port would always inflate the region to the
  // whole grid (ports line the boundary). Ports outside the region are
  // automatically unselectable (their adjacency constraint forces fp=0).
  const Cell center{(min_x + max_x) / 2, (min_y + max_y) / 2};
  const auto extendNearest = [&](const std::vector<arch::PortId>& ports) {
    std::vector<arch::PortId> sorted = ports;
    std::sort(sorted.begin(), sorted.end(),
              [&](arch::PortId a, arch::PortId b) {
                return arch::manhattan(chip.port(a).cell, center) <
                       arch::manhattan(chip.port(b).cell, center);
              });
    for (std::size_t i = 0; i < sorted.size() && i < 2; ++i)
      extend(chip.port(sorted[i]).cell);
  };
  extendNearest(chip.flowPorts());
  extendNearest(chip.wastePorts());
  if (whole_grid) {
    min_x = 0;
    min_y = 0;
    max_x = chip.width() - 1;
    max_y = chip.height() - 1;
  } else {
    min_x = std::max(0, min_x - inflate);
    min_y = std::max(0, min_y - inflate);
    max_x = std::min(chip.width() - 1, max_x + inflate);
    max_y = std::min(chip.height() - 1, max_y + inflate);
  }

  const std::set<Cell> target_set(targets.begin(), targets.end());
  std::vector<Cell> region;
  for (int y = min_y; y <= max_y; ++y)
    for (int x = min_x; x <= max_x; ++x) {
      const Cell c{x, y};
      if (chip.isPortCell(c)) continue;
      if (avoid.count(c)) continue;  // hard blockage, both passes
      // Foreign devices are avoided in the restricted pass; the whole-grid
      // retry admits them (the scheduler serializes washes against the
      // operations of any device they cross).
      if (!whole_grid && chip.isDeviceCell(c) && !target_set.count(c))
        continue;
      region.push_back(c);
    }
  return region;
}

struct PathModel {
  Model model;
  std::map<Cell, VarId> cell_var;
  std::map<Cell, VarId> flow_end;   // e^f: flow-side endpoint marker
  std::map<Cell, VarId> waste_end;  // e^w: waste-side endpoint marker
  std::vector<std::pair<arch::PortId, VarId>> flow_ports;
  std::vector<std::pair<arch::PortId, VarId>> waste_ports;
};

PathModel buildModel(const ChipLayout& chip, const std::vector<Cell>& region,
                     const std::vector<Cell>& targets,
                     const std::set<Cell>& avoid) {
  PathModel pm;
  Model& m = pm.model;
  const std::set<Cell> region_set(region.begin(), region.end());

  for (const Cell& c : region) {
    pm.cell_var[c] = m.addBinary("u" + arch::toString(c));
    pm.flow_end[c] = m.addBinary("ef" + arch::toString(c));
    pm.waste_end[c] = m.addBinary("ew" + arch::toString(c));
  }

  // Eq. 15: every target is covered (fixed to 1).
  for (const Cell& t : targets) m.setBounds(pm.cell_var.at(t), 1.0, 1.0);

  // Endpoint markers imply selection; exactly one of each.
  LinExpr sum_ef, sum_ew;
  for (const Cell& c : region) {
    m.addLessEqual(LinExpr(pm.flow_end[c]) - LinExpr(pm.cell_var[c]), 0.0);
    m.addLessEqual(LinExpr(pm.waste_end[c]) - LinExpr(pm.cell_var[c]), 0.0);
    sum_ef += LinExpr(pm.flow_end[c]);
    sum_ew += LinExpr(pm.waste_end[c]);
  }
  m.addEqual(sum_ef, 1.0, "one_flow_end");
  m.addEqual(sum_ew, 1.0, "one_waste_end");

  // Eq. 12: exactly one flow port and one waste port. A port whose own
  // cell is avoided is unusable (the assembled path traverses it), so it
  // gets no binary; if every port of a side is avoided the model is
  // infeasible and the operation is reported unroutable.
  LinExpr sum_fp, sum_wp;
  for (arch::PortId p : chip.flowPorts()) {
    if (avoid.count(chip.port(p).cell)) continue;
    const VarId v = m.addBinary("fp" + std::to_string(p));
    pm.flow_ports.emplace_back(p, v);
    sum_fp += LinExpr(v);
  }
  for (arch::PortId p : chip.wastePorts()) {
    if (avoid.count(chip.port(p).cell)) continue;
    const VarId v = m.addBinary("wp" + std::to_string(p));
    pm.waste_ports.emplace_back(p, v);
    sum_wp += LinExpr(v);
  }
  m.addEqual(sum_fp, 1.0, "one_flow_port");
  m.addEqual(sum_wp, 1.0, "one_waste_port");

  // Eq. 13: the chosen port has its endpoint in an adjacent region cell,
  // and an endpoint cell must neighbour the chosen port.
  const auto linkPorts =
      [&](const std::vector<std::pair<arch::PortId, VarId>>& ports,
          const std::map<Cell, VarId>& ends) {
        // endpoint -> some adjacent chosen port
        for (const Cell& c : region) {
          LinExpr adjacent_ports;
          for (const auto& [pid, pvar] : ports)
            if (arch::adjacent(chip.port(pid).cell, c))
              adjacent_ports += LinExpr(pvar);
          m.addLessEqual(LinExpr(ends.at(c)) - adjacent_ports, 0.0);
        }
        // chosen port -> some adjacent endpoint
        for (const auto& [pid, pvar] : ports) {
          LinExpr adjacent_ends;
          for (const Cell& n : chip.neighbors(chip.port(pid).cell))
            if (region_set.count(n)) adjacent_ends += LinExpr(ends.at(n));
          m.addLessEqual(LinExpr(pvar) - adjacent_ends, 0.0);
        }
      };
  linkPorts(pm.flow_ports, pm.flow_end);
  linkPorts(pm.waste_ports, pm.waste_end);

  // Eq. 14 (generalized to endpoints): a selected cell has exactly
  // 2 - e^f - e^w selected neighbours; unselected cells are unconstrained.
  for (const Cell& c : region) {
    LinExpr neighbors;
    for (const Cell& n : chip.neighbors(c))
      if (region_set.count(n)) neighbors += LinExpr(pm.cell_var.at(n));
    const LinExpr degree_req = 2.0 * LinExpr(pm.cell_var[c]) -
                               LinExpr(pm.flow_end[c]) -
                               LinExpr(pm.waste_end[c]);
    // neighbors >= degree_req - 2*(1-u): inactive when u=0.
    m.addGreaterEqual(
        neighbors - degree_req - 2.0 * LinExpr(pm.cell_var[c]), -2.0);
    // neighbors <= degree_req + 4*(1-u).
    m.addLessEqual(
        neighbors - degree_req + 4.0 * LinExpr(pm.cell_var[c]), 4.0);
  }

  // Objective: minimize path length (the beta * L_wash term of eq. 26).
  LinExpr objective;
  for (const Cell& c : region) objective += LinExpr(pm.cell_var[c]);
  m.setObjective(objective);
  return pm;
}

/// Extract the ordered path from an integral solution, or report the cells
/// of a disconnected cycle component for a cut.
struct Extraction {
  std::optional<FlowPath> path;
  std::vector<Cell> cycle_component;  // non-empty => add a cut
};

Extraction extractPath(const ChipLayout& chip, const PathModel& pm,
                       const ilp::Solution& sol) {
  Extraction out;
  std::set<Cell> selected;
  Cell flow_cell{}, waste_cell{};
  for (const auto& [c, v] : pm.cell_var)
    if (sol.boolValue(v)) selected.insert(c);
  for (const auto& [c, v] : pm.flow_end)
    if (sol.boolValue(v)) flow_cell = c;
  for (const auto& [c, v] : pm.waste_end)
    if (sol.boolValue(v)) waste_cell = c;

  // Walk from the flow endpoint along selected cells.
  std::vector<Cell> ordered{flow_cell};
  std::set<Cell> visited{flow_cell};
  Cell current = flow_cell;
  while (current != waste_cell || ordered.size() == 1) {
    Cell next{-1, -1};
    for (const Cell& n : chip.neighbors(current))
      if (selected.count(n) && !visited.count(n)) {
        next = n;
        break;
      }
    if (next.x < 0) break;
    ordered.push_back(next);
    visited.insert(next);
    current = next;
    if (current == waste_cell) break;
  }

  if (current == waste_cell && visited.size() == selected.size()) {
    // Single connected path covering all selected cells: attach the ports.
    Cell flow_port{}, waste_port{};
    for (const auto& [pid, v] : pm.flow_ports)
      if (sol.boolValue(v)) flow_port = chip.port(pid).cell;
    for (const auto& [pid, v] : pm.waste_ports)
      if (sol.boolValue(v)) waste_port = chip.port(pid).cell;
    std::vector<Cell> cells;
    cells.push_back(flow_port);
    cells.insert(cells.end(), ordered.begin(), ordered.end());
    cells.push_back(waste_port);
    out.path = FlowPath(std::move(cells));
    return out;
  }

  // Disconnected: some selected component is a cycle. Report one.
  for (const Cell& c : selected) {
    if (visited.count(c)) continue;
    // Flood-fill the component containing c.
    std::vector<Cell> component{c};
    std::set<Cell> seen{c};
    for (std::size_t i = 0; i < component.size(); ++i)
      for (const Cell& n : chip.neighbors(component[i]))
        if (selected.count(n) && !seen.count(n)) {
          seen.insert(n);
          component.push_back(n);
        }
    out.cycle_component = std::move(component);
    return out;
  }
  // Walk stalled inside the main component (should not happen with valid
  // degree constraints); report it as a cut to force a different solution.
  out.cycle_component.assign(selected.begin(), selected.end());
  return out;
}

}  // namespace

std::optional<FlowPath> routeWashPathIlp(const ChipLayout& chip,
                                         const std::vector<Cell>& targets,
                                         const WashPathOptions& options,
                                         WashPathStats* stats) {
  WashPathStats local;
  WashPathStats& s = stats ? *stats : local;
  if (targets.empty()) return std::nullopt;
  PDW_TRACE_SPAN("routing", "path_ilp");
  // The per-call WashPathStats out-param serves direct callers (unit tests);
  // the registry carries the same events as process-wide totals, which the
  // pipeline reads back as per-run deltas.
  obs::Registry& reg = obs::Registry::instance();
  static obs::Counter& ilp_solves = reg.counter(obs::names::kPathIlpSolves);
  static obs::Counter& cuts = reg.counter(obs::names::kPathIlpConnectivityCuts);
  static obs::Counter& fallbacks = reg.counter(obs::names::kPathIlpFallbacks);
  static obs::Counter& warm_hits = reg.counter(obs::names::kPathIlpWarmHits);

  std::optional<FlowPath> ilp_path;
  const std::set<Cell> avoid(options.avoid_cells.begin(),
                             options.avoid_cells.end());
  // A blocked cell that is itself a wash target cannot be flushed at all —
  // the operation is unroutable by definition, not a solver failure (and
  // buildRegion excludes the cell, so the model could not bind it anyway).
  for (const Cell& t : targets)
    if (avoid.count(t)) return std::nullopt;
  for (const bool whole_grid : {false, true}) {
    const std::vector<Cell> region = buildRegion(
        chip, targets, options.region_inflate, whole_grid, avoid);
    if (static_cast<int>(region.size()) > options.max_region_cells) break;
    PathModel pm = buildModel(chip, region, targets, avoid);

    // Lazy connectivity-cut loop.
    for (int round = 0; round < 25 && !ilp_path; ++round) {
      ++s.ilp_solves;
      ilp_solves.increment();
      const ilp::Solution sol = ilp::solve(pm.model, options.solver);
      warm_hits.add(sol.stats.warm_hits);
      if (!sol.hasSolution()) break;  // infeasible/limits: try wider region
      Extraction ex = extractPath(chip, pm, sol);
      if (ex.path) {
        ilp_path = std::move(ex.path);
        break;
      }
      // Add the cut sum_{c in C} u_c <= |C| - 1 and re-solve.
      LinExpr cut;
      for (const Cell& c : ex.cycle_component)
        cut += LinExpr(pm.cell_var.at(c));
      pm.model.addLessEqual(
          cut, static_cast<double>(ex.cycle_component.size()) - 1.0,
          "connectivity_cut");
      ++s.connectivity_cuts;
      cuts.increment();
      PDW_TRACE_INSTANT("routing", "connectivity_cut");
    }
    if (ilp_path) break;
  }

  if (!options.fallback_heuristic) return ilp_path;

  // The restricted-region ILP can be beaten by the grid-wide heuristic;
  // keep whichever path is shorter.
  std::optional<FlowPath> heuristic =
      routeWashPathHeuristic(chip, targets, options.avoid_cells);
  if (!ilp_path) {
    s.used_fallback = true;
    fallbacks.increment();
    return heuristic;
  }
  if (heuristic && heuristic->size() < ilp_path->size()) return heuristic;
  return ilp_path;
}

std::optional<FlowPath> routeWashPathHeuristic(
    const ChipLayout& chip, const std::vector<Cell>& targets,
    const std::vector<Cell>& avoid_cells) {
  if (targets.empty()) return std::nullopt;
  PDW_TRACE_SPAN("routing", "path_bfs");
  static obs::Counter& routes =
      obs::Registry::instance().counter(obs::names::kPathBfsRoutes);
  routes.increment();
  arch::Router router(chip);

  // First pass blocks foreign devices (devices that are not wash targets);
  // if some target is only reachable through a device — e.g. a boundary
  // cell pocketed between a device and waste ports — retry allowing device
  // traversal (flushing buffer through an idle device is harmless; the
  // scheduler serializes the wash against that device's operations).
  // Caller-blocked cells stay excluded on both passes.
  const std::set<Cell> target_set(targets.begin(), targets.end());
  arch::CellSet foreign_devices = chip.makeCellSet();
  for (const arch::Device& d : chip.devices())
    if (!target_set.count(d.cell)) foreign_devices.insert(d.cell);
  arch::CellSet no_blockage = chip.makeCellSet();
  for (const Cell& c : avoid_cells) {
    foreign_devices.insert(c);
    no_blockage.insert(c);
  }

  // The router exempts a route's own endpoints from blockage checks, so a
  // blocked port cell must be filtered here: its port is unusable outright.
  // Likewise a blocked target is unwashable — unroutable by definition.
  const std::set<Cell> avoid_set(avoid_cells.begin(), avoid_cells.end());
  for (const Cell& t : targets)
    if (avoid_set.count(t)) return std::nullopt;

  const arch::CellSet* blockages[2] = {&foreign_devices, &no_blockage};
  for (const arch::CellSet* blocked : blockages) {
    std::optional<FlowPath> best;
    for (arch::PortId fp : chip.flowPorts()) {
      if (avoid_set.count(chip.port(fp).cell)) continue;
      for (arch::PortId wp : chip.wastePorts()) {
        if (avoid_set.count(chip.port(wp).cell)) continue;
        const auto path = router.routeVia(
            chip.port(fp).cell, targets, chip.port(wp).cell, blocked);
        if (!path) continue;
        if (!best || path->size() < best->size()) best = path;
      }
    }
    if (best) return best;
  }
  return std::nullopt;
}

}  // namespace pdw::core

// The PDW scheduling ILP (paper §III, eqs. 1-26).
//
// Given the base schedule (operations + fluidic tasks with fixed paths and
// durations) and the routed wash operations, recompute every start time so
// that washes execute inside their contamination windows, conflicts are
// serialized via big-M disjunctions, excess removals may be integrated into
// covering washes (psi variables, eqs. 7/21), and the weighted objective
// alpha*N_wash + beta*L_wash + gamma*T_assay (eq. 26) is minimized —
// N_wash and L_wash are constants once necessity analysis and path routing
// have run, so the variable part is gamma*T_assay (minus a small integration
// reward to break ties toward psi=1).
//
// Windowed ordering pruning (DESIGN.md §7): an order binary is created only
// for conflicting pairs whose base-schedule intervals are within
// `order_horizon_s` of each other; pairs farther apart keep their base
// order as a fixed constraint.
#pragma once

#include <vector>

#include "assay/schedule.h"
#include "ilp/types.h"
#include "wash/wash_op.h"

namespace pdw::util {
class ThreadPool;
}

namespace pdw::core {

struct ScheduleIlpOptions {
  double alpha = 0.3;
  double beta = 0.3;
  double gamma = 0.4;
  wash::WashParams wash;
  double order_horizon_s = 12.0;
  bool enable_integration = true;
  ilp::SolveParams solver;
  /// Optional runtime (non-owning): accelerates the greedy warm start's
  /// conflict precomputation. nullptr = sequential.
  util::ThreadPool* pool = nullptr;
  /// Incremental repair (Pipeline::resolve): run only the fix-and-optimize
  /// phase — order binaries pinned to the greedy order, warm point clamped
  /// into the perturbed model's box (ilp::SolveParams::warm_clamp) — and
  /// skip the free-order Phase B entirely. The pinned model's disjunctions
  /// collapse to plain precedences, so a repair solve costs a small
  /// fraction of a cold two-phase solve; the result is never reported
  /// proven_optimal (optimality holds only for the pinned order).
  bool repair_mode = false;

  ScheduleIlpOptions() {
    solver.time_limit_seconds = 8.0;
    solver.node_limit = 60000;
  }
};

struct ScheduleIlpResult {
  bool success = false;
  assay::AssaySchedule schedule;
  int integrated_removals = 0;
  bool proven_optimal = false;
  double objective = 0.0;
  ilp::SolveStats stats;
  /// Model size bookkeeping (for the solver-scaling bench).
  int num_order_binaries = 0;
  int num_fixed_orders = 0;
  int num_psi_vars = 0;
};

ScheduleIlpResult solveWashSchedule(
    const assay::AssaySchedule& base,
    const std::vector<wash::WashOperation>& washes,
    const ScheduleIlpOptions& options = {});

}  // namespace pdw::core

// Online re-wash perturbations (DESIGN.md §15).
//
// A ScheduleDelta describes what changed between the base schedule a
// Pipeline last solved and the situation now on the chip: operations or
// tasks that slipped (a delayed thermocycler, a slow pump), cells whose
// valves jammed and must be avoided by wash routing, and waste-bound tasks
// that were cancelled. applyDelta() turns the previous base schedule plus a
// delta into the *perturbed* base schedule — the exact input a from-scratch
// re-solve would receive — together with the per-item shift bookkeeping the
// incremental pipeline (Pipeline::resolve) uses to bound the contamination
// frontier.
//
// Shift propagation: delayed items push their structural successors
// (operation dependencies, producer -> transport -> consumer chains,
// removal-after-transport edges, same-device exclusivity in base order)
// forward just enough to stay consistent; everything untouched keeps its
// base start bit-for-bit, which is what makes per-cell necessity reuse
// possible. Spatial (path-overlap) conflicts are deliberately NOT
// re-serialized here: the scheduling stage re-times everything anyway, and
// both the cold and the incremental path see the same perturbed schedule.
#pragma once

#include <string>
#include <vector>

#include "assay/schedule.h"

namespace pdw::core {

struct ScheduleDelta {
  struct OpDelay {
    assay::OpId op = -1;
    double delay_s = 0.0;
  };
  struct TaskDelay {
    assay::TaskId task = -1;
    double delay_s = 0.0;
  };

  std::vector<OpDelay> op_delays;
  std::vector<TaskDelay> task_delays;
  /// Cells wash routing must avoid from now on (stuck valve, damaged cell).
  /// Routing-only: the base schedule's own paths are already committed.
  std::vector<arch::Cell> blocked_cells;
  /// Cancelled waste-bound tasks (ExcessRemoval / WasteRemoval only —
  /// removing a Transport would orphan its consumer operation).
  std::vector<assay::TaskId> removed_tasks;

  bool empty() const {
    return op_delays.empty() && task_delays.empty() &&
           blocked_cells.empty() && removed_tasks.empty();
  }
  /// Compact human-readable summary for logs ("2 op delays, 1 blocked cell").
  std::string describe() const;
};

/// Result of applying a delta to a base schedule.
struct AppliedDelta {
  bool valid = false;
  std::string error;  ///< set when !valid (unknown id, transport removal...)
  /// The perturbed base schedule (same graph/chip as the input).
  assay::AssaySchedule schedule;
  /// Start-time shift per op id (seconds; 0 = untouched). Indexed by OpId.
  std::vector<double> op_shift;
  /// Start-time shift per ORIGINAL task id; removed tasks carry shift 0 but
  /// appear in `removed`. Indexed by the input schedule's TaskId.
  std::vector<double> task_shift;
  std::vector<assay::TaskId> removed;  ///< validated removed task ids
  /// Original task id -> perturbed task id (-1 for removed tasks). Identity
  /// unless tasks were removed (AssaySchedule ids are dense).
  std::vector<assay::TaskId> task_remap;
  /// True when any task id changed (a removal renumbered the tail): per-cell
  /// necessity reuse is then unsound for uses referencing shifted ids.
  bool ids_renumbered = false;
};

/// Validate `delta` against `base` and produce the perturbed schedule.
/// Deterministic: the same (base, delta) always yields the same schedule,
/// so an incremental resolve and a cold re-solve start from identical input.
AppliedDelta applyDelta(const assay::AssaySchedule& base,
                        const ScheduleDelta& delta);

}  // namespace pdw::core

// PathDriver-Wash (PDW): the paper's primary contribution.
//
// Pipeline (paper §III):
//   1. contamination replay + wash-necessity analysis (Type 1/2/3,
//      eqs. 9-11) on the given base schedule,
//   2. clustering of wash targets into wash operations,
//   3. ILP wash-path routing per operation (eqs. 12-15 + connectivity cuts),
//   4. scheduling ILP with integration (eqs. 1-8, 16-26) — with a greedy
//      insertion fallback when the solver budget is exhausted (best-effort,
//      like the paper's 15-minute cap).
//
// Every stage is individually switchable for the ablation benches.
#pragma once

#include "assay/schedule.h"
#include "core/schedule_ilp.h"
#include "core/wash_path_ilp.h"
#include "wash/plan.h"
#include "wash/wash_op.h"

namespace pdw::core {

struct PdwOptions {
  /// Objective weights of eq. 26 (paper §IV: 0.3 / 0.3 / 0.4).
  double alpha = 0.3;
  double beta = 0.3;
  double gamma = 0.4;

  wash::WashParams wash;
  wash::NecessityOptions necessity;
  wash::ClusterOptions cluster;
  WashPathOptions path;

  /// Route wash paths with the ILP (false: BFS heuristic — ablation).
  bool use_ilp_paths = true;
  /// Re-time with the scheduling ILP (false: greedy insertion — ablation).
  bool use_ilp_schedule = true;
  /// Integrate excess removals into washes (paper §II-B; ablation).
  bool enable_integration = true;

  double order_horizon_s = 12.0;
  ilp::SolveParams schedule_solver;

  PdwOptions() {
    schedule_solver.time_limit_seconds = 8.0;
    schedule_solver.node_limit = 60000;
  }
};

/// Run PDW on a wash-oblivious base schedule. The returned schedule points
/// to the same graph/chip as `base`.
wash::WashPlanResult runPathDriverWash(const assay::AssaySchedule& base,
                                       const PdwOptions& options = {});

}  // namespace pdw::core

// PathDriver-Wash (PDW): the paper's primary contribution.
//
// Pipeline (paper §III):
//   1. contamination replay + wash-necessity analysis (Type 1/2/3,
//      eqs. 9-11) on the given base schedule,
//   2. clustering of wash targets into wash operations,
//   3. ILP wash-path routing per operation (eqs. 12-15 + connectivity cuts),
//   4. scheduling ILP with integration (eqs. 1-8, 16-26) — with a greedy
//      insertion fallback when the solver budget is exhausted (best-effort,
//      like the paper's 15-minute cap).
//
// Every stage is individually switchable for the ablation benches.
//
// The preferred entry point is the pdw::Pipeline facade (core/pipeline.h),
// which adds the parallel routing runtime, the route cache, per-stage
// timings and solver statistics. `runPathDriverWash` below survives as a
// thin wrapper over it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "assay/schedule.h"
#include "core/schedule_ilp.h"
#include "core/wash_path_ilp.h"
#include "wash/plan.h"
#include "wash/wash_op.h"

namespace pdw::util {
class ThreadPool;
}

namespace pdw::core {

class RouteCache;  // core/route_cache.h

/// All solver knobs of the pipeline in one place: per-stage ilp::SolveParams
/// for the scheduling ILP and the per-operation wash-path ILPs, plus the LP
/// backend choice (lp_backend.h). Within `PdwOptions`, this struct is the
/// authoritative source — the Pipeline facade copies `path` over
/// `PdwOptions::path.solver` before routing, so standalone
/// `routeWashPathIlp(..., WashPathOptions)` use is unaffected.
///
/// Migration note: the former scattered knobs (`PdwOptions::schedule_solver`
/// member, `withSolverBudget`, `withPathSolverBudget`, `withWarmNodeLps`)
/// moved here; the old PdwOptions setters survive as deprecated delegates.
struct SolverConfig {
  /// Scheduling-ILP knobs (eqs. 1-8, 16-26). NOTE: unless
  /// `withScheduleBudget` pins a budget, the Pipeline facade replaces stock
  /// `ilp::SolveParams` limits (10 s / 200000 nodes) with the PDW defaults
  /// (8 s / 60000 nodes) and logs that it did so.
  ilp::SolveParams schedule;

  /// Per-operation wash-path ILP knobs (eqs. 12-15). Defaults mirror the
  /// standalone WashPathOptions (1.5 s / 8000 nodes).
  ilp::SolveParams path;

  /// LP backend for both ILP stages: "revised" (sparse revised simplex, the
  /// default) or "dense" (the dense-tableau oracle); "" picks the library
  /// default. Per-stage override: set `schedule.engine` / `path.engine`
  /// directly — a non-empty per-stage engine wins over this field.
  std::string engine;

  /// True once withScheduleBudget() pinned an explicit budget (suppresses
  /// the facade's default-budget substitution).
  bool schedule_budget_pinned = false;

  SolverConfig() {
    path.time_limit_seconds = 1.5;
    path.node_limit = 8000;
  }

  /// Select the LP backend for both stages (see `engine`).
  SolverConfig& withEngine(std::string name) {
    engine = std::move(name);
    return *this;
  }

  /// Pin the scheduling-ILP budget (wall-clock seconds and, optionally, a
  /// branch-and-bound node cap). Suppresses the facade's default budget.
  SolverConfig& withScheduleBudget(double seconds, std::int64_t nodes = 0) {
    schedule.time_limit_seconds = seconds;
    if (nodes > 0) schedule.node_limit = nodes;
    schedule_budget_pinned = true;
    return *this;
  }

  /// Budget of each per-operation wash-path ILP.
  SolverConfig& withPathBudget(double seconds, std::int64_t nodes = 0) {
    path.time_limit_seconds = seconds;
    if (nodes > 0) path.node_limit = nodes;
    return *this;
  }

  /// Toggle warm dual re-solves of branch-and-bound node LPs in both ILP
  /// stages (on by default; off forces every node through the cold primal —
  /// an ablation/debugging knob, results are identical either way).
  SolverConfig& withWarmNodeLps(bool enabled) {
    schedule.warm_lp = enabled;
    path.warm_lp = enabled;
    return *this;
  }

  /// Toggle the root cutting-plane loop (ilp/cuts.h) in both ILP stages.
  /// The two-argument form additionally switches individual separator
  /// families (Gomory mixed-integer / knapsack cover) while leaving the
  /// master switch on. Cuts never change the optimum — only the size of
  /// the branch-and-bound tree — so this is a perf/ablation knob.
  SolverConfig& withCuts(bool enabled) {
    schedule.cuts.enabled = enabled;
    path.cuts.enabled = enabled;
    return *this;
  }
  SolverConfig& withCuts(bool gomory, bool cover) {
    schedule.cuts.enabled = path.cuts.enabled = gomory || cover;
    schedule.cuts.gomory = path.cuts.gomory = gomory;
    schedule.cuts.cover = path.cuts.cover = cover;
    return *this;
  }

  /// Enable the solver flight recorder (obs/flight.h) in both ILP stages.
  /// Applies one FlightConfig to every branch-and-bound lane: events are
  /// recorded per lane and dumped as `pdw-flight-1` JSONL to
  /// `config.path` per the config's triggers.
  SolverConfig& withFlightRecording(obs::FlightConfig config) {
    config.enabled = true;
    schedule.flight = config;
    path.flight = std::move(config);
    return *this;
  }

  /// One-line description of the solver knobs that affect results or
  /// performance, stamped into `pdw-run-1` records (obs/runs.h).
  std::string fingerprint() const {
    return "schedule{" + ilp::fingerprint(schedule) + "} path{" +
           ilp::fingerprint(path) + "}";
  }
};

/// One consolidated option block for the whole pipeline. The builder-style
/// `with*` setters below are the supported way to configure a run — they
/// cover every knob of the nested stage structs (wash physics, necessity
/// exemptions, clustering, path routing, scheduling solver) so callers
/// never have to reach into four namespaces. DESIGN.md §"Unified options"
/// documents the mapping. Plain member access stays valid for the ablation
/// benches.
struct PdwOptions {
  /// Objective weights of eq. 26 (paper §IV: 0.3 / 0.3 / 0.4).
  double alpha = 0.3;
  double beta = 0.3;
  double gamma = 0.4;

  wash::WashParams wash;
  wash::NecessityOptions necessity;
  wash::ClusterOptions cluster;
  WashPathOptions path;

  /// Route wash paths with the ILP (false: BFS heuristic — ablation).
  bool use_ilp_paths = true;
  /// Re-time with the scheduling ILP (false: greedy insertion — ablation).
  bool use_ilp_schedule = true;
  /// Integrate excess removals into washes (paper §II-B; ablation).
  bool enable_integration = true;

  double order_horizon_s = 12.0;

  /// All solver knobs (per-stage SolveParams, LP backend choice, pinned
  /// budget flag). Authoritative within the pipeline; see SolverConfig.
  SolverConfig solver;

  /// Execution lanes for the parallel runtime (per-operation wash-path
  /// routing, solver portfolio race, rescheduler precomputation).
  /// 0 = hardware concurrency; 1 = fully sequential, reproducing the
  /// pre-runtime behavior bit-for-bit. Results are identical for every
  /// value — only wall-clock changes.
  int num_threads = 0;

  /// Memoize routing results across wash operations and across run() calls
  /// of one Pipeline (LRU, `route_cache_capacity` problems). 0 disables.
  std::size_t route_cache_capacity = 256;

  /// Shared-runtime injection (the pdwd service): when set, the Pipeline
  /// uses this route cache instead of constructing its own, so several
  /// concurrent Pipelines serve repeat traffic from one warm cache
  /// (`route_cache_capacity` is ignored). The cache's epoch guard
  /// (RouteCache::invalidate) keeps concurrent readers safe across version
  /// bumps. Lookup/insert are thread-safe; sharing never changes results.
  std::shared_ptr<RouteCache> shared_route_cache;

  /// When set, the Pipeline multiplexes its parallel stages onto this
  /// work-stealing pool instead of constructing one per instance.
  /// ThreadPool::parallelFor supports concurrent batches from distinct
  /// caller threads, so N Pipelines can share one pool — the pdwd daemon's
  /// execution model. Do not run() a *single* Pipeline from two threads.
  std::shared_ptr<util::ThreadPool> shared_pool;

  // ---- builder-style setters (each returns *this for chaining) ----------

  /// Objective weights alpha (N_wash), beta (L_wash), gamma (T_assay).
  PdwOptions& withWeights(double a, double b, double g) {
    alpha = a;
    beta = b;
    gamma = g;
    return *this;
  }

  /// Runtime width; see num_threads.
  PdwOptions& withThreads(int threads) {
    num_threads = threads;
    return *this;
  }

  /// Select the LP backend ("revised" / "dense") for both ILP stages.
  PdwOptions& withEngine(std::string name) {
    solver.withEngine(std::move(name));
    return *this;
  }

  /// Pin the scheduling-ILP budget (wall-clock seconds and, optionally, a
  /// branch-and-bound node cap). Suppresses the facade's default budget.
  PdwOptions& withScheduleBudget(double seconds, std::int64_t nodes = 0) {
    solver.withScheduleBudget(seconds, nodes);
    return *this;
  }

  /// Toggle root cutting planes for both ILP stages (see SolverConfig).
  PdwOptions& withCuts(bool enabled) {
    solver.withCuts(enabled);
    return *this;
  }
  PdwOptions& withCuts(bool gomory, bool cover) {
    solver.withCuts(gomory, cover);
    return *this;
  }

  /// Budget of each per-operation wash-path ILP.
  PdwOptions& withPathBudget(double seconds, std::int64_t nodes = 0) {
    solver.withPathBudget(seconds, nodes);
    return *this;
  }

  /// Deprecated alias of withScheduleBudget (knob moved to SolverConfig).
  [[deprecated("use withScheduleBudget / PdwOptions::solver")]] PdwOptions&
  withSolverBudget(double seconds, std::int64_t nodes = 0) {
    return withScheduleBudget(seconds, nodes);
  }

  /// Deprecated alias of withPathBudget (knob moved to SolverConfig).
  [[deprecated("use withPathBudget / PdwOptions::solver")]] PdwOptions&
  withPathSolverBudget(double seconds, std::int64_t nodes = 0) {
    return withPathBudget(seconds, nodes);
  }

  /// Deprecated: warm-LP toggle moved to SolverConfig::withWarmNodeLps.
  [[deprecated("use PdwOptions::solver.withWarmNodeLps")]] PdwOptions&
  withWarmNodeLps(bool enabled) {
    solver.withWarmNodeLps(enabled);
    return *this;
  }

  /// Enable the solver flight recorder in both ILP stages (see
  /// SolverConfig::withFlightRecording).
  PdwOptions& withFlightRecording(obs::FlightConfig config) {
    solver.withFlightRecording(std::move(config));
    return *this;
  }

  /// Disable excess-removal integration (paper §II-B ablation).
  PdwOptions& withoutIntegration() {
    enable_integration = false;
    return *this;
  }

  /// BFS heuristic wash paths instead of the path ILP.
  PdwOptions& withoutIlpPaths() {
    use_ilp_paths = false;
    return *this;
  }

  /// Greedy insertion instead of the scheduling ILP.
  PdwOptions& withoutIlpSchedule() {
    use_ilp_schedule = false;
    return *this;
  }

  /// Toggle the Type 1/2/3 wash-necessity exemptions (eqs. 9-11).
  PdwOptions& withNecessityExemptions(bool type1, bool type2, bool type3) {
    necessity.enable_type1 = type1;
    necessity.enable_type2 = type2;
    necessity.enable_type3 = type3;
    return *this;
  }

  /// Clustering window slack and maximum cluster span (wash::ClusterOptions).
  PdwOptions& withClusterWindow(double min_window_s, int max_span) {
    cluster.min_window_s = min_window_s;
    cluster.max_span = max_span;
    return *this;
  }

  /// Wash physics: flow velocity v_f [mm/s] and dissolution time t_d [s]
  /// (wash::WashParams, eq. 17).
  PdwOptions& withWashPhysics(double flow_velocity_mm_s,
                              double dissolution_s) {
    wash.flow_velocity_mm_s = flow_velocity_mm_s;
    wash.dissolution_s = dissolution_s;
    return *this;
  }

  /// Ordering-binary pruning horizon of the scheduling ILP (DESIGN.md §7).
  PdwOptions& withOrderHorizon(double seconds) {
    order_horizon_s = seconds;
    return *this;
  }

  /// Route-cache capacity in problems; 0 disables caching.
  PdwOptions& withRouteCache(std::size_t capacity) {
    route_cache_capacity = capacity;
    return *this;
  }

  /// Share an external route cache across Pipelines (see
  /// `shared_route_cache`). Passing nullptr reverts to a per-Pipeline cache.
  PdwOptions& withSharedRouteCache(std::shared_ptr<RouteCache> cache) {
    shared_route_cache = std::move(cache);
    return *this;
  }

  /// Share an external work-stealing pool across Pipelines (see
  /// `shared_pool`). Passing nullptr reverts to a per-Pipeline pool.
  PdwOptions& withSharedPool(std::shared_ptr<util::ThreadPool> pool) {
    shared_pool = std::move(pool);
    return *this;
  }
};

/// Run PDW on a wash-oblivious base schedule. The returned schedule points
/// to the same graph/chip as `base`.
///
/// Deprecated: thin compatibility wrapper over pdw::Pipeline
/// (core/pipeline.h), which returns stage timings, solver statistics and
/// route-cache metrics alongside the plan. New code should construct a
/// Pipeline — and hold on to it, so the route cache persists across runs.
[[deprecated("construct a pdw::Pipeline (core/pipeline.h) instead")]]
wash::WashPlanResult runPathDriverWash(const assay::AssaySchedule& base,
                                       const PdwOptions& options = {});

}  // namespace pdw::core

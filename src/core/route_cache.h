// LRU cache for wash-path routing results.
//
// Repeated sub-assays across batch requests pose the same localized routing
// problem over and over: same chip, same target-cell set, same blocked
// (foreign-device) cells, same routing knobs. The routed path depends on
// nothing else, so the result — including "unroutable" — can be memoized
// and the per-operation ILP skipped entirely on a hit.
//
// Keys capture every routing input: a fingerprint of the chip (grid extent,
// pitch, every port, every device — the flow/waste port set the ILP chooses
// from), the sorted target-cell set, a hash of the blocked cells (devices
// not in the target set, which both routers avoid on their first pass), and
// the routing options (ILP on/off, region knobs, solver budget). Lookups
// and inserts are thread-safe; the parallel routing stage shares one cache.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include <mutex>

#include "arch/chip.h"
#include "arch/path.h"

namespace pdw::core {

struct WashPathOptions;  // wash_path_ilp.h

/// 64-bit fingerprint of everything routing-relevant about a chip: grid
/// extent, pitch, every port (cell + waste/flow role), every device (cell +
/// kind). Shared by the route-cache key and the service layer's request
/// fingerprints.
std::uint64_t chipFingerprint(const arch::ChipLayout& chip);

/// Full routing-problem identity. Kept verbatim (not just hashed) so a hash
/// collision can never alias two different problems.
struct RouteKey {
  std::uint64_t chip_fingerprint = 0;
  std::uint64_t blocked_hash = 0;
  std::uint64_t options_hash = 0;
  std::vector<arch::Cell> targets;  ///< sorted, deduplicated

  friend bool operator==(const RouteKey&, const RouteKey&) = default;
};

struct RouteKeyHash {
  std::size_t operator()(const RouteKey& key) const;
};

struct RouteCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;
  /// Epoch-guarded inserts dropped because invalidate() ran between the
  /// caller's lookup and its insert (the result was computed against stale
  /// chip/schedule state and must not repopulate the new epoch).
  std::int64_t stale_drops = 0;
  /// invalidate() calls over the cache lifetime.
  std::int64_t invalidations = 0;
  double hitRate() const {
    const std::int64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(lookups);
  }
};

class RouteCache {
 public:
  /// `capacity` = maximum cached routing problems (LRU eviction beyond it).
  explicit RouteCache(std::size_t capacity);

  /// Outer nullopt: not cached. Inner value: the memoized routing result,
  /// where an empty inner optional is a memoized *failure* (unroutable).
  std::optional<std::optional<arch::FlowPath>> lookup(const RouteKey& key);

  /// Memoize `path` for `key`, evicting the least-recently-used entry when
  /// full. Re-inserting an existing key refreshes its recency.
  void insert(const RouteKey& key, std::optional<arch::FlowPath> path);

  /// Epoch-guarded insert for shared use: memoize only when the cache is
  /// still in `epoch` (as captured via epoch() before the miss that
  /// triggered the computation). A concurrent invalidate() between the
  /// lookup and this call makes the result stale — it is dropped and false
  /// is returned, so pre-bump work can never leak into the post-bump cache.
  bool insert(const RouteKey& key, std::optional<arch::FlowPath> path,
              std::uint64_t epoch);

  /// The current cache epoch. Entries only ever belong to the current
  /// epoch; invalidate() starts the next one.
  std::uint64_t epoch() const;

  /// Version bump: drop every entry and advance the epoch, atomically with
  /// respect to concurrent lookup()/insert() (readers either see the old
  /// fully-populated cache or the new empty one, never a mix). In-flight
  /// computations that captured the previous epoch will have their inserts
  /// dropped (see the epoch-guarded insert overload).
  void invalidate();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  RouteCacheStats stats() const;
  void clear();

  /// Build the key for routing `targets` on `chip` under `options`.
  /// `use_ilp` distinguishes ILP routing from the pure BFS heuristic.
  static RouteKey makeKey(const arch::ChipLayout& chip,
                          const std::vector<arch::Cell>& targets,
                          bool use_ilp, const WashPathOptions& options);

 private:
  struct Entry {
    RouteKey key;
    std::optional<arch::FlowPath> path;
  };

  /// Insert body shared by both public overloads; mutex_ must be held.
  void insertLocked(const RouteKey& key, std::optional<arch::FlowPath> path);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t epoch_ = 0;  ///< guarded by mutex_; bumped by invalidate()
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<RouteKey, std::list<Entry>::iterator, RouteKeyHash> map_;
  RouteCacheStats stats_;
};

}  // namespace pdw::core

#include "core/pathdriver_wash.h"

#include <chrono>

#include "util/logging.h"
#include "wash/contamination.h"
#include "wash/rescheduler.h"

namespace pdw::core {

namespace {
using Clock = std::chrono::steady_clock;
}

wash::WashPlanResult runPathDriverWash(const assay::AssaySchedule& base,
                                       const PdwOptions& options) {
  const auto start = Clock::now();
  wash::WashPlanResult result;
  result.method = "PDW";

  // 1. Contamination replay + necessity analysis (eqs. 9-11).
  const wash::ContaminationTracker tracker(base);
  wash::NecessityResult necessity =
      analyzeWashNecessity(tracker, options.necessity);
  result.necessity = necessity.stats;

  if (necessity.targets.empty()) {
    result.schedule = base;
    result.proven_optimal = true;
    result.solve_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

  // 2. Cluster targets into wash operations.
  std::vector<wash::WashOperation> washes =
      clusterTargets(std::move(necessity.targets), options.cluster);

  // 3. Route a wash path per operation (eqs. 12-15).
  for (wash::WashOperation& w : washes) {
    std::optional<arch::FlowPath> path;
    if (options.use_ilp_paths) {
      path = routeWashPathIlp(base.chip(), w.targetCells(), options.path);
    } else {
      path = routeWashPathHeuristic(base.chip(), w.targetCells());
    }
    if (!path) {
      // Last resort: the heuristic on the whole grid. Target cells are on
      // used flow paths, so ports can always reach them.
      path = routeWashPathHeuristic(base.chip(), w.targetCells());
    }
    PDW_LOG(Debug, "pdw") << "wash path ("
                          << (path ? static_cast<int>(path->size()) : -1)
                          << " cells) for " << w.targets.size()
                          << " targets";
    if (path) w.path = *path;
  }
  // Drop unroutable operations only if truly unreachable (logged loudly:
  // this indicates a malformed chip).
  std::vector<wash::WashOperation> routed;
  for (wash::WashOperation& w : washes) {
    if (w.path.empty()) {
      PDW_LOG(Error, "pdw") << "wash operation unroutable; dropping "
                            << w.targets.size() << " targets";
      continue;
    }
    routed.push_back(std::move(w));
  }

  // 4. Re-time everything with the scheduling ILP (eqs. 1-8, 16-26).
  bool scheduled = false;
  if (options.use_ilp_schedule) {
    ScheduleIlpOptions ilp_options;
    ilp_options.alpha = options.alpha;
    ilp_options.beta = options.beta;
    ilp_options.gamma = options.gamma;
    ilp_options.wash = options.wash;
    ilp_options.order_horizon_s = options.order_horizon_s;
    ilp_options.enable_integration = options.enable_integration;
    ilp_options.solver = options.schedule_solver;
    ScheduleIlpResult ilp = solveWashSchedule(base, routed, ilp_options);
    if (ilp.success) {
      result.schedule = std::move(ilp.schedule);
      result.integrated_removals = ilp.integrated_removals;
      result.proven_optimal = ilp.proven_optimal;
      scheduled = true;
    } else {
      PDW_LOG(Warn, "pdw")
          << "scheduling ILP returned no incumbent within its budget; "
             "falling back to greedy insertion";
    }
  }
  if (!scheduled) {
    result.schedule =
        wash::rescheduleWithWashes(base, routed, options.wash);
  }

  result.solve_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace pdw::core

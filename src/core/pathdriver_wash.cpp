#include "core/pathdriver_wash.h"

#include "core/pipeline.h"

namespace pdw::core {

wash::WashPlanResult runPathDriverWash(const assay::AssaySchedule& base,
                                       const PdwOptions& options) {
  // Compatibility wrapper: the real pipeline lives behind pdw::Pipeline.
  // A per-call Pipeline means a per-call route cache; callers who want
  // cross-run cache reuse (batch serving) should hold a Pipeline instead.
  Pipeline pipeline(options);
  return std::move(pipeline.run(base).plan);
}

}  // namespace pdw::core

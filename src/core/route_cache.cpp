#include "core/route_cache.h"

#include <algorithm>
#include <set>

#include "core/wash_path_ilp.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/hash.h"

namespace pdw::core {

namespace {

// Per-instance stats_ stay authoritative for this cache object; the same
// events are mirrored into the process-wide registry so trace/metrics
// exports see cache behavior without a handle on the instance.
obs::Counter& hitCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kRouteCacheHits);
  return c;
}

obs::Counter& missCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kRouteCacheMisses);
  return c;
}

obs::Counter& insertCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kRouteCacheInserts);
  return c;
}

obs::Counter& evictionCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kRouteCacheEvictions);
  return c;
}

obs::Counter& staleDropCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter(obs::names::kRouteCacheStaleDrops);
  return c;
}

obs::Counter& invalidationCounter() {
  static obs::Counter& c = obs::Registry::instance().counter(
      obs::names::kRouteCacheInvalidations);
  return c;
}

using util::hash::combine;
using util::hash::combineDouble;

std::uint64_t combineCell(std::uint64_t seed, arch::Cell c) {
  return combine(seed, (static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(c.x))
                        << 32) |
                           static_cast<std::uint32_t>(c.y));
}

}  // namespace

std::uint64_t chipFingerprint(const arch::ChipLayout& chip) {
  std::uint64_t h = combine(
      combine(static_cast<std::uint64_t>(chip.width()),
              static_cast<std::uint64_t>(chip.height())),
      0);
  h = combineDouble(h, chip.pitchMm());
  for (const arch::Port& p : chip.ports()) {
    h = combineCell(h, p.cell);
    h = combine(h, p.is_waste ? 1 : 2);
  }
  for (const arch::Device& d : chip.devices()) {
    h = combineCell(h, d.cell);
    h = combine(h, static_cast<std::uint64_t>(d.kind));
  }
  return h;
}

std::size_t RouteKeyHash::operator()(const RouteKey& key) const {
  std::uint64_t h = combine(key.chip_fingerprint, key.blocked_hash);
  h = combine(h, key.options_hash);
  for (const arch::Cell& c : key.targets) h = combineCell(h, c);
  return static_cast<std::size_t>(h);
}

RouteCache::RouteCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::optional<std::optional<arch::FlowPath>> RouteCache::lookup(
    const RouteKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    missCounter().increment();
    return std::nullopt;
  }
  ++stats_.hits;
  hitCounter().increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->path;
}

void RouteCache::insert(const RouteKey& key,
                        std::optional<arch::FlowPath> path) {
  std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(key, std::move(path));
}

void RouteCache::insertLocked(const RouteKey& key,
                              std::optional<arch::FlowPath> path) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->path = std::move(path);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(path)});
  map_.emplace(key, lru_.begin());
  ++stats_.inserts;
  insertCounter().increment();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    evictionCounter().increment();
  }
}

bool RouteCache::insert(const RouteKey& key,
                        std::optional<arch::FlowPath> path,
                        std::uint64_t epoch) {
  // Checked and inserted under one critical section: an invalidate()
  // serializes either before (stale, dropped) or after (entry cleared with
  // the rest of its epoch) — a stale result can never land in a newer epoch.
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch != epoch_) {
    ++stats_.stale_drops;
    staleDropCounter().increment();
    return false;
  }
  insertLocked(key, std::move(path));
  return true;
}

std::uint64_t RouteCache::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void RouteCache::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
  map_.clear();
  lru_.clear();
  ++stats_.invalidations;
  invalidationCounter().increment();
}

std::size_t RouteCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

RouteCacheStats RouteCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void RouteCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

RouteKey RouteCache::makeKey(const arch::ChipLayout& chip,
                             const std::vector<arch::Cell>& targets,
                             bool use_ilp, const WashPathOptions& options) {
  RouteKey key;
  key.chip_fingerprint = chipFingerprint(chip);

  key.targets = targets;
  std::sort(key.targets.begin(), key.targets.end());
  key.targets.erase(std::unique(key.targets.begin(), key.targets.end()),
                    key.targets.end());

  // Blocked cells: devices that are not wash targets (both the ILP region
  // builder and the BFS heuristic treat exactly these as obstacles on the
  // restricted pass).
  const std::set<arch::Cell> target_set(key.targets.begin(),
                                        key.targets.end());
  std::uint64_t blocked_h = 0x5bd1e995;
  for (const arch::Device& d : chip.devices())
    if (!target_set.count(d.cell)) blocked_h = combineCell(blocked_h, d.cell);
  // Caller-blocked cells (ScheduleDelta blockages) are routing inputs too:
  // fold them in sorted+deduplicated so a blocked problem never aliases the
  // unblocked entry (and insertion order cannot split identical problems).
  std::vector<arch::Cell> avoid = options.avoid_cells;
  std::sort(avoid.begin(), avoid.end());
  avoid.erase(std::unique(avoid.begin(), avoid.end()), avoid.end());
  for (const arch::Cell& c : avoid) {
    blocked_h = combine(blocked_h, 0x9e37u);
    blocked_h = combineCell(blocked_h, c);
  }
  key.blocked_hash = blocked_h;

  std::uint64_t opt_h = use_ilp ? 0x1234 : 0x4321;
  opt_h = combine(opt_h, static_cast<std::uint64_t>(options.region_inflate));
  opt_h = combine(opt_h,
                  static_cast<std::uint64_t>(options.max_region_cells));
  opt_h = combine(opt_h, options.fallback_heuristic ? 1 : 0);
  opt_h = combineDouble(opt_h, options.solver.time_limit_seconds);
  opt_h = combine(opt_h, static_cast<std::uint64_t>(options.solver.node_limit));
  opt_h = combine(opt_h, static_cast<std::uint64_t>(
                             options.solver.simplex_iteration_limit));
  key.options_hash = opt_h;

  return key;
}

}  // namespace pdw::core

#include "arch/router.h"

#include <algorithm>
#include <deque>
#include <map>

namespace pdw::arch {

bool Router::traversable(Cell c, Cell from, Cell to,
                         const CellSet* blocked) const {
  if (!chip_->contains(c)) return false;
  if (c == from || c == to) return true;
  if (chip_->isPortCell(c)) return false;  // ports only terminate paths
  if (blocked && blocked->contains(c)) return false;
  return true;
}

std::optional<FlowPath> Router::route(Cell from, Cell to,
                                      const CellSet* blocked) const {
  if (!chip_->contains(from) || !chip_->contains(to)) return std::nullopt;
  if (from == to) return FlowPath({from});

  // BFS with parent tracking; deterministic neighbour order.
  std::map<Cell, Cell> parent;
  std::deque<Cell> queue;
  queue.push_back(from);
  parent[from] = from;
  while (!queue.empty()) {
    const Cell current = queue.front();
    queue.pop_front();
    for (const Cell& next : chip_->neighbors(current)) {
      if (parent.count(next)) continue;
      if (!traversable(next, from, to, blocked)) continue;
      parent[next] = current;
      if (next == to) {
        std::vector<Cell> cells;
        for (Cell c = to; c != from; c = parent[c]) cells.push_back(c);
        cells.push_back(from);
        std::reverse(cells.begin(), cells.end());
        return FlowPath(std::move(cells));
      }
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

std::optional<int> Router::distance(Cell from, Cell to,
                                    const CellSet* blocked) const {
  const auto path = route(from, to, blocked);
  if (!path) return std::nullopt;
  return static_cast<int>(path->size()) - 1;
}

std::optional<FlowPath> Router::routeVia(Cell from, std::vector<Cell> waypoints,
                                         Cell to,
                                         const CellSet* blocked) const {
  // Greedy nearest-waypoint chaining: repeatedly extend the path to the
  // closest unvisited waypoint, then to the sink.
  std::vector<Cell> cells{from};
  Cell current = from;

  // Drop waypoints equal to endpoints; they are covered by construction.
  waypoints.erase(std::remove_if(waypoints.begin(), waypoints.end(),
                                 [&](Cell c) { return c == from || c == to; }),
                  waypoints.end());

  while (!waypoints.empty()) {
    std::optional<FlowPath> best;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < waypoints.size(); ++i) {
      auto leg = route(current, waypoints[i], blocked);
      if (!leg) continue;
      if (!best || leg->size() < best->size()) {
        best = std::move(leg);
        best_index = i;
      }
    }
    if (!best) return std::nullopt;  // some waypoint unreachable
    cells.insert(cells.end(), best->cells().begin() + 1, best->cells().end());
    current = waypoints[best_index];
    waypoints.erase(waypoints.begin() +
                    static_cast<std::ptrdiff_t>(best_index));
  }

  auto tail = route(current, to, blocked);
  if (!tail) return std::nullopt;
  cells.insert(cells.end(), tail->cells().begin() + 1, tail->cells().end());

  // Loop erasure: remove revisit cycles (cells between two visits of the
  // same cell) as long as no waypoint coverage is lost. Keeps the physical
  // path simple whenever the greedy chain backtracked.
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<Cell, std::size_t> last_seen;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      auto it = last_seen.find(cells[i]);
      if (it != last_seen.end()) {
        // Candidate loop (it->second, i]. Erase if it contains no cell that
        // appears nowhere else... simpler: the cells inside the loop are
        // reachable again later only if re-added; they were waypoints only
        // if they appear elsewhere. Erase the loop when none of its interior
        // cells is a required waypoint occurring exactly once.
        const std::size_t begin = it->second + 1;
        const std::size_t end = i + 1;  // exclusive
        bool safe = true;
        for (std::size_t k = begin; k + 1 < end && safe; ++k) {
          const Cell c = cells[k];
          // Required coverage: c must still appear outside [begin, end).
          bool appears_elsewhere = false;
          for (std::size_t m = 0; m < cells.size() && !appears_elsewhere; ++m)
            if ((m < begin || m >= end) && cells[m] == c)
              appears_elsewhere = true;
          // Interior cells were only waypoints if the greedy chain targeted
          // them; conservatively keep loops containing former waypoints.
          // (Former waypoints are exactly the cells the chain *ended* legs
          // on; all of those are retained at indices outside erased loops
          // on the first pass, so this conservative rule is sufficient.)
          if (!appears_elsewhere) safe = false;
        }
        if (safe) {
          cells.erase(cells.begin() + static_cast<std::ptrdiff_t>(begin),
                      cells.begin() + static_cast<std::ptrdiff_t>(end));
          changed = true;
          break;
        }
      }
      last_seen[cells[i]] = i;
    }
  }

  return FlowPath(std::move(cells));
}

}  // namespace pdw::arch

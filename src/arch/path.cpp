#include "arch/path.h"

#include <algorithm>
#include <set>

namespace pdw::arch {

FlowPath::FlowPath(std::vector<Cell> cells) : cells_(std::move(cells)) {}

bool FlowPath::isConnected() const {
  for (std::size_t i = 1; i < cells_.size(); ++i)
    if (!adjacent(cells_[i - 1], cells_[i])) return false;
  return true;
}

bool FlowPath::isSimpleConnected() const {
  if (!isConnected()) return false;
  std::set<Cell> seen(cells_.begin(), cells_.end());
  return seen.size() == cells_.size();
}

bool FlowPath::contains(Cell c) const {
  return std::find(cells_.begin(), cells_.end(), c) != cells_.end();
}

bool FlowPath::overlaps(const FlowPath& other) const {
  // Quadratic scan is fine: paths are tens of cells. Iterate the shorter.
  const FlowPath& small = size() <= other.size() ? *this : other;
  const FlowPath& large = size() <= other.size() ? other : *this;
  std::set<Cell> cells(large.cells_.begin(), large.cells_.end());
  for (const Cell& c : small.cells_)
    if (cells.count(c)) return true;
  return false;
}

bool FlowPath::covers(const FlowPath& other) const {
  return coversAll(other.cells_);
}

bool FlowPath::coversAll(const std::vector<Cell>& cells) const {
  std::set<Cell> mine(cells_.begin(), cells_.end());
  for (const Cell& c : cells)
    if (!mine.count(c)) return false;
  return true;
}

double FlowPath::lengthMm(double pitch_mm) const {
  if (cells_.size() < 2) return 0.0;
  return static_cast<double>(cells_.size() - 1) * pitch_mm;
}

CellSet FlowPath::toCellSet(int width, int height) const {
  CellSet set(width, height);
  for (const Cell& c : cells_) set.insert(c);
  return set;
}

std::string FlowPath::toString(const ChipLayout* chip) const {
  std::string out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (i > 0) out += " -> ";
    bool named = false;
    if (chip) {
      if (auto p = chip->portAt(cells_[i])) {
        out += chip->port(*p).name;
        named = true;
      } else if (auto d = chip->deviceAt(cells_[i])) {
        out += chip->device(*d).name;
        named = true;
      }
    }
    if (!named) out += arch::toString(cells_[i]);
  }
  return out;
}

}  // namespace pdw::arch

// ChipLayout: the virtual grid R with devices, flow ports and waste ports.
//
// Matches the paper's architecture model (§III): devices and channels are
// placed on the cells of a W_G x H_G grid; flow ports inject
// reagents/buffer, waste ports release waste fluids and displaced air. Any
// non-device cell can carry a channel segment; a concrete chip's channel
// network is the union of all flow paths routed on it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/cell.h"
#include "arch/device.h"

namespace pdw::arch {

/// Index of a port within its ChipLayout (flow and waste ports share the id
/// space so tasks can reference either uniformly).
using PortId = int;

struct Port {
  PortId id = -1;
  std::string name;
  Cell cell;
  bool is_waste = false;
};

class ChipLayout {
 public:
  ChipLayout(int width, int height, double pitch_mm = 3.0);

  int width() const { return width_; }
  int height() const { return height_; }
  /// Physical channel pitch: length of one grid edge in millimetres.
  double pitchMm() const { return pitch_mm_; }

  bool contains(Cell c) const {
    return c.x >= 0 && c.y >= 0 && c.x < width_ && c.y < height_;
  }

  /// 4-neighbourhood of `c`, clipped to the grid.
  std::vector<Cell> neighbors(Cell c) const;

  // ---- devices ----------------------------------------------------------
  DeviceId addDevice(DeviceKind kind, Cell cell, std::string name = {});
  const Device& device(DeviceId id) const {
    return devices_[static_cast<std::size_t>(id)];
  }
  const std::vector<Device>& devices() const { return devices_; }
  /// Device occupying `c`, if any.
  std::optional<DeviceId> deviceAt(Cell c) const;
  /// All devices of a kind.
  std::vector<DeviceId> devicesOfKind(DeviceKind kind) const;

  // ---- ports -------------------------------------------------------------
  PortId addFlowPort(Cell cell, std::string name = {});
  PortId addWastePort(Cell cell, std::string name = {});
  const Port& port(PortId id) const {
    return ports_[static_cast<std::size_t>(id)];
  }
  const std::vector<Port>& ports() const { return ports_; }
  std::vector<PortId> flowPorts() const;
  std::vector<PortId> wastePorts() const;
  std::optional<PortId> portAt(Cell c) const;

  /// Cells occupied by devices or ports (not routable "through" freely —
  /// ports terminate paths, devices are traversable; see Router).
  bool isPortCell(Cell c) const { return portAt(c).has_value(); }
  bool isDeviceCell(Cell c) const { return deviceAt(c).has_value(); }

  /// An empty CellSet dimensioned for this grid.
  CellSet makeCellSet() const { return CellSet(width_, height_); }

  /// ASCII rendering for debugging/examples: '.' empty, 'M/H/D/F/S' devices,
  /// 'i' flow port, 'o' waste port.
  std::string render() const;

 private:
  int width_;
  int height_;
  double pitch_mm_;
  std::vector<Device> devices_;
  std::vector<Port> ports_;
};

}  // namespace pdw::arch

// FlowPath: an ordered, connected sequence of grid cells from a source to a
// sink — the unit of fluid movement on the chip. Transportation tasks,
// excess/waste removal tasks and wash operations all carry a FlowPath
// (Table I of the paper lists these paths explicitly).
#pragma once

#include <string>
#include <vector>

#include "arch/cell.h"
#include "arch/chip.h"

namespace pdw::arch {

class FlowPath {
 public:
  FlowPath() = default;
  /// Cells in traversal order, source first. Consecutive cells must be
  /// 4-adjacent (checked by isConnected / validate in tests).
  explicit FlowPath(std::vector<Cell> cells);

  const std::vector<Cell>& cells() const { return cells_; }
  bool empty() const { return cells_.empty(); }
  std::size_t size() const { return cells_.size(); }
  Cell front() const { return cells_.front(); }
  Cell back() const { return cells_.back(); }

  /// True if consecutive cells are all 4-adjacent (no teleports) and no cell
  /// repeats (a physical flow path is simple).
  bool isSimpleConnected() const;

  /// True if consecutive cells are adjacent (repeats allowed).
  bool isConnected() const;

  bool contains(Cell c) const;

  /// True if the two paths share at least one cell (paper's
  /// `l_a ∩ l_b ≠ ∅` conflict predicate, eqs. 8/19/20).
  bool overlaps(const FlowPath& other) const;

  /// True if every cell of `other` is on this path (paper eq. 21's
  /// `l_removal ⊆ l_wash` integration predicate).
  bool covers(const FlowPath& other) const;

  /// True if every cell in `cells` is on this path.
  bool coversAll(const std::vector<Cell>& cells) const;

  /// Channel length in millimetres: (#edges) * pitch.
  double lengthMm(double pitch_mm) const;

  /// Membership set over the given grid extent.
  CellSet toCellSet(int width, int height) const;

  /// "in1 -> (2,3) -> ..." style rendering; device/port names are resolved
  /// against the layout when provided.
  std::string toString(const ChipLayout* chip = nullptr) const;

 private:
  std::vector<Cell> cells_;
};

}  // namespace pdw::arch

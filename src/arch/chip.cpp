#include "arch/chip.h"

#include <cassert>

#include "util/strings.h"

namespace pdw::arch {

const char* toString(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Mixer: return "mixer";
    case DeviceKind::Heater: return "heater";
    case DeviceKind::Detector: return "detector";
    case DeviceKind::Filter: return "filter";
    case DeviceKind::Storage: return "storage";
  }
  return "?";
}

int totalDevices(const DeviceLibrary& library) {
  int total = 0;
  for (const DeviceSpec& spec : library) total += spec.count;
  return total;
}

ChipLayout::ChipLayout(int width, int height, double pitch_mm)
    : width_(width), height_(height), pitch_mm_(pitch_mm) {
  assert(width > 0 && height > 0 && pitch_mm > 0);
}

std::vector<Cell> ChipLayout::neighbors(Cell c) const {
  std::vector<Cell> out;
  out.reserve(4);
  const Cell candidates[4] = {{c.x - 1, c.y}, {c.x + 1, c.y},
                              {c.x, c.y - 1}, {c.x, c.y + 1}};
  for (const Cell& n : candidates)
    if (contains(n)) out.push_back(n);
  return out;
}

DeviceId ChipLayout::addDevice(DeviceKind kind, Cell cell, std::string name) {
  assert(contains(cell));
  assert(!deviceAt(cell).has_value() && !portAt(cell).has_value());
  Device d;
  d.id = static_cast<DeviceId>(devices_.size());
  d.kind = kind;
  d.cell = cell;
  d.name = name.empty()
               ? util::format("%s%d", toString(kind), d.id)
               : std::move(name);
  devices_.push_back(std::move(d));
  return devices_.back().id;
}

std::optional<DeviceId> ChipLayout::deviceAt(Cell c) const {
  for (const Device& d : devices_)
    if (d.cell == c) return d.id;
  return std::nullopt;
}

std::vector<DeviceId> ChipLayout::devicesOfKind(DeviceKind kind) const {
  std::vector<DeviceId> out;
  for (const Device& d : devices_)
    if (d.kind == kind) out.push_back(d.id);
  return out;
}

PortId ChipLayout::addFlowPort(Cell cell, std::string name) {
  assert(contains(cell));
  assert(!deviceAt(cell).has_value() && !portAt(cell).has_value());
  Port p;
  p.id = static_cast<PortId>(ports_.size());
  p.cell = cell;
  p.is_waste = false;
  p.name = name.empty() ? util::format("in%d", p.id) : std::move(name);
  ports_.push_back(std::move(p));
  return ports_.back().id;
}

PortId ChipLayout::addWastePort(Cell cell, std::string name) {
  assert(contains(cell));
  assert(!deviceAt(cell).has_value() && !portAt(cell).has_value());
  Port p;
  p.id = static_cast<PortId>(ports_.size());
  p.cell = cell;
  p.is_waste = true;
  p.name = name.empty() ? util::format("out%d", p.id) : std::move(name);
  ports_.push_back(std::move(p));
  return ports_.back().id;
}

std::vector<PortId> ChipLayout::flowPorts() const {
  std::vector<PortId> out;
  for (const Port& p : ports_)
    if (!p.is_waste) out.push_back(p.id);
  return out;
}

std::vector<PortId> ChipLayout::wastePorts() const {
  std::vector<PortId> out;
  for (const Port& p : ports_)
    if (p.is_waste) out.push_back(p.id);
  return out;
}

std::optional<PortId> ChipLayout::portAt(Cell c) const {
  for (const Port& p : ports_)
    if (p.cell == c) return p.id;
  return std::nullopt;
}

std::string ChipLayout::render() const {
  std::string out;
  out.reserve(static_cast<std::size_t>((width_ + 1) * height_));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Cell c{x, y};
      char glyph = '.';
      if (auto d = deviceAt(c)) {
        switch (device(*d).kind) {
          case DeviceKind::Mixer: glyph = 'M'; break;
          case DeviceKind::Heater: glyph = 'H'; break;
          case DeviceKind::Detector: glyph = 'D'; break;
          case DeviceKind::Filter: glyph = 'F'; break;
          case DeviceKind::Storage: glyph = 'S'; break;
        }
      } else if (auto p = portAt(c)) {
        glyph = port(*p).is_waste ? 'o' : 'i';
      }
      out.push_back(glyph);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace pdw::arch

// On-chip devices of the continuous-flow architecture.
//
// Devices (mixers, heaters, detectors, filters, storage) occupy grid cells;
// fluids are transported *through* them along flow paths (see Table I of the
// paper, e.g. "in1 -> s1 -> filter -> s2 -> ..."). A device executes at most
// one biochemical operation at a time (paper eq. 3).
#pragma once

#include <string>
#include <vector>

#include "arch/cell.h"

namespace pdw::arch {

enum class DeviceKind {
  Mixer,
  Heater,
  Detector,
  Filter,
  Storage,
};

const char* toString(DeviceKind kind);

/// Index of a device within its ChipLayout.
using DeviceId = int;

struct Device {
  DeviceId id = -1;
  DeviceKind kind = DeviceKind::Mixer;
  std::string name;
  /// The grid cell the device sits on. Flow paths traverse this cell; the
  /// two "ends" of the device are the cells adjacent to it on a path.
  Cell cell;
};

/// A device library entry: how many devices of each kind a chip offers.
struct DeviceSpec {
  DeviceKind kind = DeviceKind::Mixer;
  int count = 0;
};

using DeviceLibrary = std::vector<DeviceSpec>;

/// Total device count in a library.
int totalDevices(const DeviceLibrary& library);

}  // namespace pdw::arch

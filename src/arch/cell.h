// Grid cells and cell sets for the virtual chip grid R (paper §III: "PDW
// uses a virtual grid R of size W_G x H_G to represent the chip layout,
// where devices and channels are placed on the cells of R").
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace pdw::arch {

/// One cell (x, y) of the virtual grid.
struct Cell {
  int x = -1;
  int y = -1;

  friend bool operator==(const Cell&, const Cell&) = default;
  friend auto operator<=>(const Cell&, const Cell&) = default;
};

/// Manhattan distance between two cells.
int manhattan(Cell a, Cell b);

/// True if the two cells are 4-neighbours.
bool adjacent(Cell a, Cell b);

std::string toString(Cell c);

/// Dense bitset of cells over a fixed grid extent. O(1) insert/contains;
/// used for path membership, blockage maps and contaminated-cell sets.
class CellSet {
 public:
  CellSet() = default;
  CellSet(int width, int height);

  void insert(Cell c);
  void erase(Cell c);
  bool contains(Cell c) const;
  void clear();

  /// Number of cells in the set.
  int size() const { return count_; }
  bool empty() const { return count_ == 0; }

  int width() const { return width_; }
  int height() const { return height_; }

  /// Enumerate members in row-major order.
  std::vector<Cell> toVector() const;

  /// True if any member of `other` is also in this set.
  bool intersects(const CellSet& other) const;

  /// True if every member of `other` is in this set.
  bool containsAll(const CellSet& other) const;

 private:
  std::size_t index(Cell c) const {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(c.x);
  }
  bool inRange(Cell c) const {
    return c.x >= 0 && c.y >= 0 && c.x < width_ && c.y < height_;
  }

  int width_ = 0;
  int height_ = 0;
  int count_ = 0;
  std::vector<bool> bits_;
};

struct CellHash {
  std::size_t operator()(const Cell& c) const {
    return std::hash<long long>()(
        (static_cast<long long>(c.x) << 32) ^ static_cast<long long>(c.y));
  }
};

}  // namespace pdw::arch

// Grid router: BFS shortest paths on the chip's virtual grid.
//
// Used by the synthesis substrate to build transport/removal flow paths and
// by the DAWO baseline's wash-path heuristic (the paper describes DAWO as
// employing "the breadth-first-search algorithm ... to compute wash paths").
// Routing rules:
//   * device cells are traversable (fluids flow through devices),
//   * port cells terminate paths — they are never interior cells,
//   * cells in the caller's blocked set are avoided.
#pragma once

#include <optional>
#include <vector>

#include "arch/chip.h"
#include "arch/path.h"

namespace pdw::arch {

class Router {
 public:
  explicit Router(const ChipLayout& chip) : chip_(&chip) {}

  /// Shortest path from `from` to `to` (both inclusive). Returns nullopt if
  /// unreachable. `blocked` cells are avoided (endpoints exempt).
  std::optional<FlowPath> route(Cell from, Cell to,
                                const CellSet* blocked = nullptr) const;

  /// Route a path visiting all `waypoints` (in greedy nearest-first order)
  /// between `from` and `to`. The result is connected and covers every
  /// waypoint; it is made simple (loop-free) when possible by erasing
  /// revisit loops that do not drop waypoint coverage.
  std::optional<FlowPath> routeVia(Cell from, std::vector<Cell> waypoints,
                                   Cell to,
                                   const CellSet* blocked = nullptr) const;

  /// Distance in grid edges, or nullopt if unreachable.
  std::optional<int> distance(Cell from, Cell to,
                              const CellSet* blocked = nullptr) const;

 private:
  bool traversable(Cell c, Cell from, Cell to, const CellSet* blocked) const;

  const ChipLayout* chip_;
};

}  // namespace pdw::arch

#include "arch/cell.h"

#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace pdw::arch {

int manhattan(Cell a, Cell b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

bool adjacent(Cell a, Cell b) { return manhattan(a, b) == 1; }

std::string toString(Cell c) { return util::format("(%d,%d)", c.x, c.y); }

CellSet::CellSet(int width, int height)
    : width_(width),
      height_(height),
      bits_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            false) {
  assert(width >= 0 && height >= 0);
}

void CellSet::insert(Cell c) {
  assert(inRange(c));
  const std::size_t i = index(c);
  if (!bits_[i]) {
    bits_[i] = true;
    ++count_;
  }
}

void CellSet::erase(Cell c) {
  if (!inRange(c)) return;
  const std::size_t i = index(c);
  if (bits_[i]) {
    bits_[i] = false;
    --count_;
  }
}

bool CellSet::contains(Cell c) const { return inRange(c) && bits_[index(c)]; }

void CellSet::clear() {
  bits_.assign(bits_.size(), false);
  count_ = 0;
}

std::vector<Cell> CellSet::toVector() const {
  std::vector<Cell> cells;
  cells.reserve(static_cast<std::size_t>(count_));
  for (int y = 0; y < height_; ++y)
    for (int x = 0; x < width_; ++x)
      if (bits_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                static_cast<std::size_t>(x)])
        cells.push_back(Cell{x, y});
  return cells;
}

bool CellSet::intersects(const CellSet& other) const {
  // Iterate the smaller set.
  const CellSet& small = size() <= other.size() ? *this : other;
  const CellSet& large = size() <= other.size() ? other : *this;
  for (const Cell& c : small.toVector())
    if (large.contains(c)) return true;
  return false;
}

bool CellSet::containsAll(const CellSet& other) const {
  for (const Cell& c : other.toVector())
    if (!contains(c)) return false;
  return true;
}

}  // namespace pdw::arch

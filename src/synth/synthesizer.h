// PathDriver-style architectural synthesis facade (DESIGN.md §2): builds the
// chip layout and the wash-oblivious base schedule that PDW / DAWO consume.
//
// The flow mirrors the reference tool chain of the paper ([7]/[12]):
//   placement -> binding -> resource-constrained list scheduling with
//   port-to-port flow-path generation for every fluidic task.
// Every transport path is a complete [flow port -> src device -> dst device
// -> waste port] path with a payload span (see FluidTask::payload_begin);
// each transport into a device is followed by an excess-fluid removal task
// (paper §II-B), and waste-producing operations get a waste-removal task.
#pragma once

#include <memory>
#include <vector>

#include "arch/chip.h"
#include "assay/schedule.h"
#include "assay/sequencing_graph.h"
#include "synth/placer.h"

namespace pdw::synth {

struct SynthOptions {
  PlacerOptions placer;
  /// Flow velocity v_f in mm/s (paper §IV: 10 mm/s).
  double flow_velocity_mm_s = 10.0;
  /// Tasks take at least this long (valve switching etc.).
  double min_task_duration_s = 1.0;
};

struct SynthResult {
  std::unique_ptr<arch::ChipLayout> chip;
  assay::AssaySchedule schedule;               ///< points into *chip
  std::vector<arch::DeviceId> binding;         ///< device per OpId
};

/// Synthesize layout + base schedule for `graph`. The graph must outlive the
/// result (the schedule holds a pointer to it).
SynthResult synthesize(const assay::SequencingGraph& graph,
                       const SynthOptions& options = {});

/// Schedule `graph` onto an existing chip layout (used by the motivating
/// example, which hand-builds the Fig. 2(a) chip).
SynthResult synthesizeOnChip(const assay::SequencingGraph& graph,
                             std::unique_ptr<arch::ChipLayout> chip,
                             const SynthOptions& options = {});

}  // namespace pdw::synth

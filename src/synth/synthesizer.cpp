#include "synth/synthesizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "arch/router.h"
#include "synth/binder.h"
#include "util/logging.h"

namespace pdw::synth {

namespace {

using arch::Cell;
using arch::ChipLayout;
using arch::DeviceId;
using arch::FlowPath;
using arch::PortId;
using arch::Router;
using assay::AssaySchedule;
using assay::FluidTask;
using assay::OpId;
using assay::SequencingGraph;
using assay::TaskKind;

class Scheduler {
 public:
  Scheduler(const SequencingGraph& graph, const ChipLayout& chip,
            const SynthOptions& options)
      : graph_(graph),
        chip_(chip),
        options_(options),
        router_(chip),
        schedule_(&graph, &chip),
        binding_(bindOperations(graph, chip)) {
    all_devices_ = chip_.makeCellSet();
    for (const arch::Device& d : chip_.devices()) all_devices_.insert(d.cell);
  }

  SynthResult run(std::unique_ptr<ChipLayout> owned_chip) {
    std::map<DeviceId, double> device_free;   // last op end per device
    std::map<DeviceId, double> device_clear;  // content departed per device
    std::map<OpId, int> pending_children;
    std::map<OpId, double> last_outgoing;     // latest outgoing transport end
    for (const assay::Operation& op : graph_.ops())
      pending_children[op.id] =
          static_cast<int>(graph_.children(op.id).size());

    for (OpId op_id : graph_.topologicalOrder()) {
      const assay::Operation& op = graph_.op(op_id);
      const DeviceId device = binding_[static_cast<std::size_t>(op_id)];

      double ready = std::max(device_free[device], device_clear[device]);

      // Reagent injections into the device.
      for (assay::FluidId reagent : op.reagent_inputs)
        ready = std::max(ready, scheduleInjection(reagent, op_id, device,
                                                  ready));

      // Parent-result transports p_{j,i,1} (+ excess removals p_{j,i,2}).
      std::vector<OpId> parents = graph_.parents(op_id);
      std::sort(parents.begin(), parents.end());
      for (OpId parent : parents) {
        const DeviceId src = binding_[static_cast<std::size_t>(parent)];
        const double lb = std::max(ready, schedule_.opSchedule(parent).end);
        const double end = scheduleTransport(parent, op_id, src, device, lb);
        ready = std::max(ready, end);
        device_clear[src] = std::max(device_clear[src], end);
        last_outgoing[parent] = std::max(last_outgoing[parent], end);
        if (--pending_children[parent] == 0 &&
            graph_.op(parent).produces_waste) {
          scheduleWasteRemoval(parent, src, last_outgoing[parent]);
        }
      }

      // The biochemical operation itself (paper eqs. 1/3/4/5: starts after
      // all transports and removals, exclusive on its device).
      const double start = std::max(ready, device_free[device]);
      schedule_.addOpSchedule({op_id, device, start, start + op.duration_s});
      device_free[device] = start + op.duration_s;
    }

    // Sink results leave the chip; device waste is flushed afterwards.
    for (OpId op_id : graph_.sinkOps()) {
      const DeviceId device = binding_[static_cast<std::size_t>(op_id)];
      const double op_end = schedule_.opSchedule(op_id).end;
      const double end = scheduleOutput(op_id, device, op_end);
      if (graph_.op(op_id).produces_waste)
        scheduleWasteRemoval(op_id, device, end);
    }

    SynthResult result;
    result.chip = std::move(owned_chip);
    result.schedule = std::move(schedule_);
    result.binding = std::move(binding_);
    return result;
  }

 private:
  // ---- routing helpers ---------------------------------------------------

  /// Blockage set: every device cell except the listed exemptions.
  arch::CellSet blockedExcept(std::initializer_list<Cell> exempt) const {
    arch::CellSet blocked = all_devices_;
    for (Cell c : exempt) blocked.erase(c);
    return blocked;
  }

  /// Nearest reachable flow/waste port cell to `target` by routed distance.
  Cell nearestPort(Cell target, bool waste,
                   const arch::CellSet& blocked) const {
    const std::vector<PortId> ports =
        waste ? chip_.wastePorts() : chip_.flowPorts();
    assert(!ports.empty());
    Cell best{};
    int best_distance = -1;
    for (PortId p : ports) {
      const Cell cell = chip_.port(p).cell;
      const auto d = router_.distance(cell, target, &blocked);
      if (!d) continue;
      if (best_distance < 0 || *d < best_distance) {
        best_distance = *d;
        best = cell;
      }
    }
    assert(best_distance >= 0 && "no port reachable from target");
    return best;
  }

  /// A routed port-to-port path with the payload span [index_a, index_b].
  struct RoutedPath {
    FlowPath path;
    int index_a = 0;
    int index_b = 0;
  };

  /// Build: flow port -> a [-> b] -> nearest waste port. Each later
  /// segment avoids the cells of earlier ones when a detour exists (a
  /// physical flow path should be simple); if the only route back to a
  /// waste port reuses cells, the reuse is accepted. `fixed_entry` pins the
  /// flow port (dedicated reagent inlets); otherwise the nearest one is
  /// used.
  RoutedPath routeFull(Cell a, std::optional<Cell> b,
                       const arch::CellSet& blocked,
                       std::optional<Cell> fixed_entry = std::nullopt) const {
    RoutedPath out;
    std::vector<Cell> cells;
    arch::CellSet used = blocked;

    const Cell entry =
        fixed_entry ? *fixed_entry : nearestPort(a, /*waste=*/false, blocked);
    const auto prefix = router_.route(entry, a, &blocked);
    assert(prefix && "flow port unreachable");
    cells = prefix->cells();
    out.index_a = static_cast<int>(cells.size()) - 1;
    for (const Cell& c : cells)
      if (c != a) used.insert(c);

    Cell tail_from = a;
    if (b && *b != a) {
      auto mid = router_.route(a, *b, &used);
      if (!mid) mid = router_.route(a, *b, &blocked);
      assert(mid && "device-to-device route failed");
      cells.insert(cells.end(), mid->cells().begin() + 1, mid->cells().end());
      for (const Cell& c : mid->cells())
        if (c != *b) used.insert(c);
      tail_from = *b;
    }
    out.index_b = static_cast<int>(cells.size()) - 1;

    Cell exit{};
    std::optional<FlowPath> suffix;
    // Prefer a waste port reachable without touching the path so far.
    const arch::CellSet* avoid_sets[2] = {&used, &blocked};
    for (const arch::CellSet* avoid : avoid_sets) {
      const std::vector<PortId> ports = chip_.wastePorts();
      int best_distance = -1;
      for (PortId p : ports) {
        const Cell cell = chip_.port(p).cell;
        const auto d = router_.distance(tail_from, cell, avoid);
        if (!d) continue;
        if (best_distance < 0 || *d < best_distance) {
          best_distance = *d;
          exit = cell;
        }
      }
      if (best_distance >= 0) {
        suffix = router_.route(tail_from, exit, avoid);
        break;
      }
    }
    assert(suffix && "waste port unreachable");
    cells.insert(cells.end(), suffix->cells().begin() + 1,
                 suffix->cells().end());

    out.path = FlowPath(std::move(cells));
    return out;
  }

  double taskDuration(const FlowPath& path) const {
    const double travel =
        path.lengthMm(chip_.pitchMm()) / options_.flow_velocity_mm_s;
    return std::max(options_.min_task_duration_s, std::ceil(travel));
  }

  // ---- conflict-aware slot search -----------------------------------------

  /// Earliest start >= lower_bound at which `path` conflicts with no
  /// scheduled task (shared cell + overlapping time) and no scheduled
  /// operation whose device cell lies on `path` (paper eq. 8).
  double earliestSlot(const FlowPath& path, double lower_bound,
                      double duration) const {
    double start = lower_bound;
    bool moved = true;
    while (moved) {
      moved = false;
      const double end = start + duration;
      for (const FluidTask& t : schedule_.tasks()) {
        if (t.end <= start || t.start >= end) continue;
        if (t.path.overlaps(path)) {
          start = t.end;
          moved = true;
          break;
        }
      }
      if (moved) continue;
      for (const assay::OpSchedule& o : schedule_.opSchedules()) {
        if (o.end <= start || o.start >= end) continue;
        if (path.contains(chip_.device(o.device).cell)) {
          start = o.end;
          moved = true;
          break;
        }
      }
    }
    return start;
  }

  /// Create, time and record one task. Returns its end time; the created
  /// id is available as lastTaskId() immediately afterwards.
  double addTask(TaskKind kind, OpId producer, OpId consumer,
                 assay::FluidId fluid, RoutedPath routed, double lower_bound,
                 assay::TaskId matching_transport = -1) {
    FluidTask task;
    task.kind = kind;
    task.producer = producer;
    task.consumer = consumer;
    task.fluid = fluid;
    task.matching_transport = matching_transport;
    task.path = std::move(routed.path);
    task.payload_begin = routed.index_a;
    task.payload_end = routed.index_b;
    const double duration = taskDuration(task.path);
    task.start = earliestSlot(task.path, lower_bound, duration);
    task.end = task.start + duration;
    last_task_id_ = schedule_.addTask(task);
    return task.end;
  }

  assay::TaskId lastTaskId() const { return last_task_id_; }

  // ---- task constructors ---------------------------------------------------

  /// Reagent injection: payload flows from the flow port into the device.
  /// Followed by an excess-fluid removal (fluid caches at the device end).
  double scheduleInjection(assay::FluidId reagent, OpId consumer,
                           DeviceId device, double lower_bound) {
    const Cell device_cell = chip_.device(device).cell;
    const arch::CellSet blocked = blockedExcept({device_cell});
    // Dedicated reagent inlet: each reagent keeps its own flow port (the
    // paper's chips do the same — r1 at in1, r2 at in2 in Fig. 2), so
    // repeated injections of one reagent reuse a corridor Type-2-safely.
    const std::vector<PortId> flow_ports = chip_.flowPorts();
    const Cell inlet =
        chip_.port(flow_ports[static_cast<std::size_t>(reagent) %
                              flow_ports.size()])
            .cell;
    RoutedPath routed =
        routeFull(device_cell, std::nullopt, blocked, inlet);
    routed.index_a = 0;  // payload starts at the flow port
    routed.index_b = static_cast<int>(routed.path.size()) - 1;
    // Find where the device sits on the path: payload ends there.
    const auto& cells = routed.path.cells();
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i] == device_cell)
        routed.index_b = static_cast<int>(i);
    const Cell excess_cell = excessCellBefore(routed, device_cell);
    double end = addTask(TaskKind::Transport, -1, consumer, reagent, routed,
                         lower_bound);
    end = std::max(end, scheduleExcessRemoval(-1, consumer, reagent,
                                              excess_cell, end,
                                              lastTaskId()));
    return end;
  }

  /// Inter-device transport p_{j,i,1} followed by excess removal p_{j,i,2}.
  double scheduleTransport(OpId producer, OpId consumer, DeviceId src,
                           DeviceId dst, double lower_bound) {
    const Cell src_cell = chip_.device(src).cell;
    const Cell dst_cell = chip_.device(dst).cell;
    const arch::CellSet blocked = blockedExcept({src_cell, dst_cell});
    RoutedPath routed = routeFull(src_cell, dst_cell, blocked);
    const Cell excess_cell = excessCellBefore(routed, dst_cell);
    const assay::FluidId fluid = graph_.op(producer).result;
    double end = addTask(TaskKind::Transport, producer, consumer, fluid,
                         routed, lower_bound);
    end = std::max(end, scheduleExcessRemoval(producer, consumer, fluid,
                                              excess_cell, end,
                                              lastTaskId()));
    return end;
  }

  /// The channel cell immediately before `device_cell` on the payload —
  /// where excess fluid caches after the transport (paper §II-B).
  Cell excessCellBefore(const RoutedPath& routed, Cell device_cell) const {
    const auto& cells = routed.path.cells();
    for (std::size_t i = 1; i < cells.size(); ++i)
      if (cells[i] == device_cell) return cells[i - 1];
    return Cell{};  // device adjacent to port: no cached excess
  }

  /// Excess-fluid removal p_{j,i,2}: flush the cached-excess cell to waste.
  /// Returns the removal's end time (or lower_bound if nothing to flush).
  /// `producer`/`consumer` identify the transport edge it belongs to.
  double scheduleExcessRemoval(OpId producer, OpId consumer,
                               assay::FluidId fluid, Cell excess_cell,
                               double lower_bound,
                               assay::TaskId transport_id) {
    if (!chip_.contains(excess_cell) || chip_.isPortCell(excess_cell) ||
        chip_.isDeviceCell(excess_cell))
      return lower_bound;
    const arch::CellSet blocked = blockedExcept({});
    RoutedPath routed = routeFull(excess_cell, std::nullopt, blocked);
    // The excess plug travels from its cached cell all the way to waste.
    routed.index_b = static_cast<int>(routed.path.size()) - 1;
    return addTask(TaskKind::ExcessRemoval, producer, consumer, fluid, routed,
                   lower_bound, transport_id);
  }

  /// Waste-fluid removal ($): flush the device itself to a waste port.
  void scheduleWasteRemoval(OpId op, DeviceId device, double lower_bound) {
    const Cell device_cell = chip_.device(device).cell;
    const arch::CellSet blocked = blockedExcept({device_cell});
    RoutedPath routed = routeFull(device_cell, std::nullopt, blocked);
    routed.index_b = static_cast<int>(routed.path.size()) - 1;
    addTask(TaskKind::WasteRemoval, op, -1, graph_.fluids().waste(), routed,
            lower_bound);
  }

  /// Final output transport: payload from the device to the waste port.
  double scheduleOutput(OpId op, DeviceId device, double lower_bound) {
    const Cell device_cell = chip_.device(device).cell;
    const arch::CellSet blocked = blockedExcept({device_cell});
    RoutedPath routed = routeFull(device_cell, std::nullopt, blocked);
    routed.index_b = static_cast<int>(routed.path.size()) - 1;
    return addTask(TaskKind::Transport, op, -1, graph_.op(op).result, routed,
                   lower_bound);
  }

  const SequencingGraph& graph_;
  const ChipLayout& chip_;
  const SynthOptions& options_;
  Router router_;
  AssaySchedule schedule_;
  std::vector<DeviceId> binding_;
  arch::CellSet all_devices_;
  assay::TaskId last_task_id_ = -1;
};

}  // namespace

SynthResult synthesize(const assay::SequencingGraph& graph,
                       const SynthOptions& options) {
  // Derive a minimal device library: one device per kind used.
  arch::DeviceLibrary library;
  std::map<arch::DeviceKind, int> counts;
  for (const assay::Operation& op : graph.ops())
    counts[requiredDevice(op.kind)] =
        std::max(counts[requiredDevice(op.kind)], 1);
  for (const auto& [kind, count] : counts) library.push_back({kind, count});
  auto chip = placeChip(library, options.placer);
  return synthesizeOnChip(graph, std::move(chip), options);
}

SynthResult synthesizeOnChip(const assay::SequencingGraph& graph,
                             std::unique_ptr<arch::ChipLayout> chip,
                             const SynthOptions& options) {
  assert(graph.isAcyclic());
  Scheduler scheduler(graph, *chip, options);
  return scheduler.run(std::move(chip));
}

}  // namespace pdw::synth

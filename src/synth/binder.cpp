#include "synth/binder.h"

#include <cassert>
#include <map>

namespace pdw::synth {

std::vector<arch::DeviceId> bindOperations(const assay::SequencingGraph& graph,
                                           const arch::ChipLayout& chip) {
  std::vector<arch::DeviceId> binding(
      static_cast<std::size_t>(graph.numOps()), -1);
  std::map<arch::DeviceId, int> load;

  // Topological order so parents bind before children; a child prefers a
  // lightly-loaded device, tie-broken toward lower id (deterministic).
  for (assay::OpId op : graph.topologicalOrder()) {
    const arch::DeviceKind kind = requiredDevice(graph.op(op).kind);
    const std::vector<arch::DeviceId> candidates = chip.devicesOfKind(kind);
    assert(!candidates.empty() && "chip lacks a device kind the assay needs");
    arch::DeviceId best = candidates.front();
    for (arch::DeviceId d : candidates)
      if (load[d] < load[best]) best = d;
    binding[static_cast<std::size_t>(op)] = best;
    ++load[best];
  }
  return binding;
}

}  // namespace pdw::synth

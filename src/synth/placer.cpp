#include "synth/placer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace pdw::synth {

namespace {

/// Evenly spread `count` positions over [1, extent-2] (keeping corners free).
std::vector<int> spreadPositions(int count, int extent) {
  std::vector<int> out;
  if (count <= 0) return out;
  const int span = extent - 2;
  for (int i = 0; i < count; ++i) {
    const int pos = 1 + (span * (2 * i + 1)) / (2 * count);
    out.push_back(std::min(pos, extent - 2));
  }
  // De-duplicate on tiny grids by nudging forward.
  for (std::size_t i = 1; i < out.size(); ++i)
    if (out[i] <= out[i - 1]) out[i] = std::min(out[i - 1] + 1, extent - 2);
  return out;
}

}  // namespace

std::unique_ptr<arch::ChipLayout> placeChip(const arch::DeviceLibrary& library,
                                            const PlacerOptions& options) {
  const int n = arch::totalDevices(library);
  assert(n > 0);

  // Interior lattice with stride 3 starting at (2,2): channels can pass on
  // every side of every device.
  const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(n))));
  const int rows = (n + cols - 1) / cols;
  const int width = 3 * cols + 1;
  const int height = 3 * rows + 1;

  auto chip =
      std::make_unique<arch::ChipLayout>(width, height, options.pitch_mm);

  // Devices, kind by kind so names number naturally (mixer0, mixer1, ...).
  int placed = 0;
  for (const arch::DeviceSpec& spec : library) {
    for (int i = 0; i < spec.count; ++i) {
      const int c = placed % cols;
      const int r = placed / cols;
      const arch::Cell cell{3 * c + 2, 3 * r + 2};
      chip->addDevice(spec.kind, cell,
                      util::format("%s%d", arch::toString(spec.kind), i + 1));
      ++placed;
    }
  }

  // Port-rich boundaries, as the paper's reference chips (Fig. 2(a) has
  // four flow and four waste ports for five devices): shared port
  // corridors are the main source of avoidable cross-contamination.
  const int flow_ports =
      options.flow_ports > 0 ? options.flow_ports
                             : std::clamp(3 + n / 2, 4, 8);
  const int waste_ports =
      options.waste_ports > 0 ? options.waste_ports
                              : std::clamp(3 + n / 2, 4, 8);

  // Flow ports: left edge, then top edge.
  int flow_index = 0;
  {
    const int left = (flow_ports + 1) / 2;
    const int top = flow_ports - left;
    for (int y : spreadPositions(left, height))
      chip->addFlowPort({0, y}, util::format("in%d", ++flow_index));
    for (int x : spreadPositions(top, width))
      chip->addFlowPort({x, 0}, util::format("in%d", ++flow_index));
  }
  // Waste ports: right edge, then bottom edge.
  int waste_index = 0;
  {
    const int right = (waste_ports + 1) / 2;
    const int bottom = waste_ports - right;
    for (int y : spreadPositions(right, height))
      chip->addWastePort({width - 1, y}, util::format("out%d", ++waste_index));
    for (int x : spreadPositions(bottom, width))
      chip->addWastePort({x, height - 1},
                         util::format("out%d", ++waste_index));
  }

  return chip;
}

}  // namespace pdw::synth

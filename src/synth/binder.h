// Operation-to-device binding.
#pragma once

#include <vector>

#include "arch/chip.h"
#include "assay/sequencing_graph.h"

namespace pdw::synth {

/// Bind every operation to a device of its required kind, balancing load
/// (round-robin by bound-op count, ties to the lower device id). Returns the
/// device id per operation, indexed by OpId.
///
/// Precondition: the chip has at least one device of every kind the graph
/// uses (checked with assertions).
std::vector<arch::DeviceId> bindOperations(const assay::SequencingGraph& graph,
                                           const arch::ChipLayout& chip);

}  // namespace pdw::synth

// Device and port placement.
//
// Builds a chip layout for a device library in the style of the paper's
// reference flow ([12], PathDriver+): devices on a spaced interior lattice
// (so channels can route between them), flow ports on the left/top boundary
// and waste ports on the right/bottom boundary.
#pragma once

#include <memory>

#include "arch/chip.h"
#include "assay/sequencing_graph.h"

namespace pdw::synth {

struct PlacerOptions {
  double pitch_mm = 3.0;
  /// 0 = derive from device count.
  int flow_ports = 0;
  int waste_ports = 0;
};

/// Place all devices of `library` plus ports on a fresh grid sized to fit.
std::unique_ptr<arch::ChipLayout> placeChip(const arch::DeviceLibrary& library,
                                            const PlacerOptions& options = {});

}  // namespace pdw::synth

#include "obs/flight.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "obs/json.h"

namespace pdw::obs {

namespace {

/// JSON has no infinity/NaN, but bound payloads start at -inf (the root
/// node's inherited bound). Clamp to the double range so every event line
/// stays parseable.
double jsonFinite(double x) {
  if (std::isnan(x)) return 0.0;
  if (std::isinf(x)) return x > 0 ? 1.7976931348623157e308
                                  : -1.7976931348623157e308;
  return x;
}

/// One lock for all JSONL appends: solve blocks from concurrent lanes must
/// land contiguously (header + its events), and fopen("a") alone only
/// guarantees atomicity per fwrite.
std::mutex& dumpMutex() {
  static std::mutex m;
  return m;
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* toString(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::SolveBegin: return "solve_begin";
    case FlightEventKind::NodeOpen: return "node_open";
    case FlightEventKind::NodeSolved: return "node_solved";
    case FlightEventKind::NodePruned: return "node_pruned";
    case FlightEventKind::NodeBranched: return "node_branched";
    case FlightEventKind::Incumbent: return "incumbent";
    case FlightEventKind::BoundDelta: return "bound_delta";
    case FlightEventKind::WarmMiss: return "warm_miss";
    case FlightEventKind::Refactorization: return "refactorization";
    case FlightEventKind::DualStall: return "dual_stall";
    case FlightEventKind::CutAdded: return "cut_added";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(const FlightConfig& config, std::string lane)
    : config_(config), lane_(std::move(lane)), start_ns_(nowNs()) {
  ring_.resize(config_.ring_capacity > 0 ? config_.ring_capacity : 1);
}

void FlightRecorder::record(FlightEventKind kind, std::int64_t node,
                            double value, double extra) {
  FlightEvent& slot =
      ring_[static_cast<std::size_t>(recorded_) % ring_.size()];
  slot.t_us = (nowNs() - start_ns_) / 1000;
  slot.node = node;
  slot.value = value;
  slot.extra = extra;
  slot.seq = static_cast<std::uint32_t>(recorded_);
  slot.kind = kind;
  ++counts_[static_cast<int>(kind)];
  ++recorded_;
}

std::size_t FlightRecorder::retained() const {
  return recorded_ < static_cast<std::int64_t>(ring_.size())
             ? static_cast<std::size_t>(recorded_)
             : ring_.size();
}

const FlightEvent& FlightRecorder::event(std::size_t i) const {
  // Oldest retained event sits at the write cursor once the ring wrapped.
  const std::size_t base =
      recorded_ < static_cast<std::int64_t>(ring_.size())
          ? 0
          : static_cast<std::size_t>(recorded_) % ring_.size();
  return ring_[(base + i) % ring_.size()];
}

bool FlightRecorder::shouldDump(bool hit_limit, double wall_seconds) const {
  if (config_.path.empty()) return false;
  if (config_.dump_all) return true;
  if (config_.dump_on_limit && hit_limit) return true;
  return wall_seconds > config_.slow_solve_seconds;
}

bool FlightRecorder::dump(const char* status, double wall_seconds) const {
  if (config_.path.empty()) return false;
  std::string out;
  out.reserve(128 + retained() * 96);
  char buf[160];

  out += "{\"schema\":\"pdw-flight-1\",\"type\":\"solve\",\"lane\":";
  out += json::quote(lane_);
  out += ",\"status\":";
  out += json::quote(status);
  std::snprintf(buf, sizeof(buf), ",\"wall_seconds\":%.6g", wall_seconds);
  out += buf;
  out += ",\"counts\":{";
  bool first = true;
  for (int k = 0; k < kFlightEventKinds; ++k) {
    if (counts_[k] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += json::quote(toString(static_cast<FlightEventKind>(k)));
    std::snprintf(buf, sizeof(buf), ":%lld",
                  static_cast<long long>(counts_[k]));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "},\"dropped\":%lld,\"events\":%zu}\n",
                static_cast<long long>(dropped()), retained());
  out += buf;

  for (std::size_t i = 0; i < retained(); ++i) {
    const FlightEvent& e = event(i);
    out += "{\"type\":\"event\",\"kind\":";
    out += json::quote(toString(e.kind));
    std::snprintf(buf, sizeof(buf),
                  ",\"seq\":%u,\"t_us\":%llu,\"node\":%lld,\"value\":%.9g,"
                  "\"extra\":%.9g}\n",
                  e.seq, static_cast<unsigned long long>(e.t_us),
                  static_cast<long long>(e.node), jsonFinite(e.value),
                  jsonFinite(e.extra));
    out += buf;
  }

  std::lock_guard<std::mutex> lock(dumpMutex());
  std::FILE* f = std::fopen(config_.path.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace pdw::obs

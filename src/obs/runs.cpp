#include "obs/runs.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace pdw::obs {

namespace {

void appendNumber(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

/// Rebuild a MetricsSnapshot from the `"metrics"` object of an embedded
/// pdw-metrics-1 export (inverse of MetricsSnapshot::toJson).
MetricsSnapshot metricsFromJson(const json::Value& metrics_object) {
  MetricsSnapshot snap;
  if (!metrics_object.isObject()) return snap;
  for (const auto& [name, entry] : metrics_object.object) {
    const json::Value* type = entry.find("type");
    if (!type || !type->isString()) continue;
    MetricValue v;
    if (type->string == "counter") {
      v.kind = MetricValue::Kind::Counter;
      if (const json::Value* value = entry.find("value");
          value && value->isNumber())
        v.count = static_cast<std::int64_t>(value->number);
    } else if (type->string == "gauge") {
      v.kind = MetricValue::Kind::Gauge;
      if (const json::Value* value = entry.find("value");
          value && value->isNumber())
        v.value = value->number;
    } else if (type->string == "histogram") {
      v.kind = MetricValue::Kind::Histogram;
      if (const json::Value* count = entry.find("count");
          count && count->isNumber())
        v.count = static_cast<std::int64_t>(count->number);
      if (const json::Value* sum = entry.find("sum");
          sum && sum->isNumber())
        v.value = sum->number;
      if (const json::Value* min = entry.find("min");
          min && min->isNumber())
        v.min = min->number;
      if (const json::Value* max = entry.find("max");
          max && max->isNumber())
        v.max = max->number;
      if (const json::Value* buckets = entry.find("buckets");
          buckets && buckets->isArray())
        for (const json::Value& b : buckets->array)
          v.buckets.push_back(
              b.isNumber() ? static_cast<std::int64_t>(b.number) : 0);
    } else {
      continue;
    }
    snap.values.emplace(name, std::move(v));
  }
  return snap;
}

std::string stringField(const json::Value& doc, const char* key) {
  const json::Value* v = doc.find(key);
  return v && v->isString() ? v->string : std::string();
}

}  // namespace

std::string RunRecord::toJson() const {
  std::string out = "{\"schema\":\"pdw-run-1\",\"label\":";
  out += json::quote(label);
  out += ",\"bench\":";
  out += json::quote(bench);
  out += ",\"timestamp\":";
  out += json::quote(timestamp);
  out += ",\"git_sha\":";
  out += json::quote(git_sha);
  out += ",\"build\":";
  out += json::quote(build);
  out += ",\"engine\":";
  out += json::quote(engine);
  out += ",\"config\":";
  out += json::quote(config);
  out += ",\"quick\":";
  out += quick ? "true" : "false";
  out += ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunRow& row = rows[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    out += json::quote(row.name);
    out += ",\"family\":";
    out += json::quote(row.family);
    out += ",\"values\":{";
    bool first = true;
    for (const auto& [key, value] : row.values) {
      if (!first) out += ',';
      first = false;
      out += json::quote(key);
      out += ':';
      appendNumber(out, value);
    }
    out += "}}";
  }
  out += "],\"metrics\":";
  // Embedded verbatim as the pdw-metrics-1 document, schema tag included.
  out += metrics.toJson();
  out += '}';
  return out;
}

std::optional<RunRecord> RunRecord::fromJson(const json::Value& doc) {
  if (!doc.isObject()) return std::nullopt;
  const json::Value* schema = doc.find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-run-1")
    return std::nullopt;

  RunRecord record;
  record.label = stringField(doc, "label");
  record.bench = stringField(doc, "bench");
  record.timestamp = stringField(doc, "timestamp");
  record.git_sha = stringField(doc, "git_sha");
  record.build = stringField(doc, "build");
  record.engine = stringField(doc, "engine");
  record.config = stringField(doc, "config");
  if (const json::Value* quick = doc.find("quick"))
    record.quick = quick->kind == json::Value::Kind::Bool && quick->boolean;

  const json::Value* rows = doc.find("rows");
  if (rows && rows->isArray()) {
    for (const json::Value& r : rows->array) {
      const json::Value* name = r.find("name");
      if (!name || !name->isString()) continue;
      RunRow row;
      row.name = name->string;
      row.family = stringField(r, "family");
      if (const json::Value* values = r.find("values");
          values && values->isObject())
        for (const auto& [key, v] : values->object)
          if (v.isNumber()) row.values[key] = v.number;
      record.rows.push_back(std::move(row));
    }
  }

  if (const json::Value* metrics = doc.find("metrics");
      metrics && metrics->isObject())
    if (const json::Value* inner = metrics->find("metrics"))
      record.metrics = metricsFromJson(*inner);
  return record;
}

bool RunStore::append(const RunRecord& record) const {
  const std::string line = record.toJson() + "\n";
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  return std::fclose(f) == 0 && ok;
}

std::vector<RunRecord> RunStore::loadAll() const {
  std::vector<RunRecord> records;
  std::ifstream in(path_, std::ios::binary);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto doc = json::parse(line);
    if (!doc) continue;
    if (auto record = RunRecord::fromJson(*doc))
      records.push_back(std::move(*record));
  }
  return records;
}

std::optional<RunRecord> RunStore::findLabel(const std::string& label) const {
  std::optional<RunRecord> found;
  for (RunRecord& record : loadAll())
    if (record.label == label) found = std::move(record);  // latest wins
  return found;
}

std::optional<RunRecord> runRecordFromBenchDoc(const json::Value& doc) {
  if (!doc.isObject()) return std::nullopt;
  const json::Value* schema = doc.find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-bench-1")
    return std::nullopt;
  const json::Value* benchmarks = doc.find("benchmarks");
  if (!benchmarks || !benchmarks->isArray()) return std::nullopt;

  RunRecord record;
  record.label = stringField(doc, "label");
  record.bench = "pdw-bench-1";
  record.engine = stringField(doc, "engine");
  for (const json::Value& b : benchmarks->array) {
    const json::Value* name = b.find("name");
    if (!name || !name->isString()) continue;
    RunRow row;
    row.name = name->string;
    row.family = stringField(b, "family");
    for (const auto& [key, v] : b.object)
      if (v.isNumber()) row.values[key] = v.number;
    record.rows.push_back(std::move(row));
  }
  return record;
}

RunDiff diffRuns(const RunRecord& base, const RunRecord& current,
                 const DiffThresholds& thresholds) {
  RunDiff diff;
  std::map<std::string, const RunRow*> base_rows;
  for (const RunRow& row : base.rows) base_rows[row.name] = &row;

  for (const RunRow& row : current.rows) {
    const auto it = base_rows.find(row.name);
    if (it == base_rows.end()) continue;
    ++diff.common_rows;
    for (const std::string& metric : thresholds.metrics) {
      const auto cur_it = row.values.find(metric);
      const auto base_it = it->second->values.find(metric);
      if (cur_it == row.values.end() ||
          base_it == it->second->values.end())
        continue;
      RowDiff d;
      d.name = row.name;
      d.metric = metric;
      d.base = base_it->second;
      d.current = cur_it->second;
      d.pct = d.base > 0.0
                  ? (d.current - d.base) / d.base * 100.0
                  : (d.current > 0.0
                         ? std::numeric_limits<double>::infinity()
                         : 0.0);
      const bool noise_floor =
          metric == "wall_seconds" &&
          d.base < thresholds.min_wall_seconds &&
          d.current < thresholds.min_wall_seconds;
      d.regressed = !noise_floor && d.pct > thresholds.max_regression_pct;
      if (d.regressed) ++diff.regressions;
      diff.rows.push_back(std::move(d));
    }
  }
  return diff;
}

std::string currentGitSha() {
  if (const char* env = std::getenv("PDW_GIT_SHA");
      env != nullptr && env[0] != '\0')
    return env;
  std::string sha = "unknown";
  if (std::FILE* pipe =
          ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
      if (!line.empty()) sha = line;
    }
    ::pclose(pipe);
  }
  return sha;
}

std::string buildDescription() {
#if defined(PDW_BUILD_TYPE) && defined(PDW_COMPILER_ID)
  return std::string(PDW_BUILD_TYPE) + " " + PDW_COMPILER_ID;
#else
  return "unknown";
#endif
}

std::string timestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc = {};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace pdw::obs

// pdw::obs — structured run-record store (`pdw-run-1`).
//
// A durable, diffable record of every benchmark run, in the spirit of
// TCPSPSuite's db/ result store: an append-only JSONL file where each line
// is one complete run record — label, git SHA, build description, LP engine
// name, SolverConfig fingerprint, a full metrics-registry snapshot, and one
// row of named numeric values per benchmark. The bench binaries append via
// `--run-store=FILE`; `tools/pdw_report` loads two labels (or a label vs a
// frozen `pdw-bench-1` document) and prints a regression/improvement table
// with a machine-readable exit code, superseding one-off `--json-out`
// files and the ad-hoc `obs_check --baseline` totals gate.
//
// Rows carry an open-ended `values` map instead of a fixed struct so every
// bench family (solver benches, Table-II metrics, pipeline stage timings)
// stores what it measures and the comparator (`diffRuns`) aligns rows by
// name and diffs whatever metrics the caller asks for. All tracked metrics
// are lower-is-better.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pdw::obs::json {
struct Value;
}

namespace pdw::obs {

/// One benchmark row of a run record.
struct RunRow {
  std::string name;
  std::string family;  ///< "synthetic" | "pipeline" | "table2" | ...
  std::map<std::string, double> values;

  double value(const std::string& key) const {
    const auto it = values.find(key);
    return it == values.end() ? 0.0 : it->second;
  }
};

/// One appended line of a `pdw-run-1` store.
struct RunRecord {
  std::string label;
  std::string bench;      ///< producing binary ("bench_ilp_solver", ...)
  std::string timestamp;  ///< ISO-8601 UTC, informational only
  std::string git_sha;
  std::string build;      ///< build type + compiler ("RelWithDebInfo GNU 13")
  std::string engine;     ///< LP backend name
  std::string config;     ///< SolverConfig / SolveParams fingerprint
  bool quick = false;
  std::vector<RunRow> rows;
  /// Full registry snapshot at record time (may be empty for synthetic or
  /// baseline-converted records).
  MetricsSnapshot metrics;

  /// One JSONL line (no trailing newline).
  std::string toJson() const;
  static std::optional<RunRecord> fromJson(const json::Value& doc);
};

class RunStore {
 public:
  explicit RunStore(std::string path) : path_(std::move(path)) {}

  /// Append `record` as one line. False on I/O failure.
  bool append(const RunRecord& record) const;

  /// Every parseable record, in file order (malformed lines are skipped).
  std::vector<RunRecord> loadAll() const;

  /// Latest record carrying `label`; nullopt when absent.
  std::optional<RunRecord> findLabel(const std::string& label) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Convert a frozen `pdw-bench-1` document (bench_ilp_solver --json-out /
/// BENCH_ilp.json) into a pseudo run record so the comparator can diff a
/// run against the committed baseline. Nullopt when the schema tag or the
/// benchmarks array is missing.
std::optional<RunRecord> runRecordFromBenchDoc(const json::Value& doc);

// ---- comparator ----------------------------------------------------------

struct DiffThresholds {
  /// A row regresses when a compared metric grows by more than this many
  /// percent over the baseline (all tracked metrics are lower-is-better).
  double max_regression_pct = 10.0;
  /// Metrics compared per row pair (missing-on-either-side keys are
  /// skipped). `nodes` gates branch-and-bound tree growth: a search-order
  /// or cut regression can balloon the tree long before wall-clock shows
  /// it on a fast machine (rows that never branch diff 0 vs 0, never
  /// regress).
  std::vector<std::string> metrics = {"wall_seconds", "simplex_iterations",
                                      "nodes"};
  /// Wall-clock readings where both sides sit under this many seconds are
  /// noise, not signal — such pairs never regress (other metrics compare
  /// exactly).
  double min_wall_seconds = 0.05;
};

struct RowDiff {
  std::string name;
  std::string metric;
  double base = 0.0;
  double current = 0.0;
  /// (current - base) / base * 100. A zero base is special-cased: 0 -> 0
  /// compares equal (pct 0, never a regression — delta-resolve runs
  /// legitimately report 0 cold nodes), 0 -> positive is +inf.
  double pct = 0.0;
  bool regressed = false;
};

struct RunDiff {
  std::vector<RowDiff> rows;  ///< row-major: every (common row, metric) pair
  int common_rows = 0;
  int regressions = 0;
  bool anyRegression() const { return regressions > 0; }
};

/// Align `current` against `base` by row name and diff the configured
/// metrics. Rows present on only one side are ignored (they cannot regress).
RunDiff diffRuns(const RunRecord& base, const RunRecord& current,
                 const DiffThresholds& thresholds = {});

// ---- environment stamps --------------------------------------------------

/// Current git HEAD (short SHA) of the working directory, "unknown" when
/// git or the repository is unavailable. PDW_GIT_SHA overrides (CI).
std::string currentGitSha();

/// Compile-time build description ("RelWithDebInfo GNU 13.2.0").
std::string buildDescription();

/// Current wall-clock time as ISO-8601 UTC ("2026-08-09T12:34:56Z").
std::string timestampUtc();

}  // namespace pdw::obs

// Canonical metric names (DESIGN.md §10.2).
//
// Every `ilp.*` / `pdw.*` / `pool.*` registry name lives here as a single
// constant, so instrumented call sites (branch_bound.cpp, simplex.cpp, the
// pipeline stages, the thread pool), the flight recorder's reconciliation
// mapping, the benches and tools/obs_check all spell one literal — a typo'd
// or drifted name is a compile error at the call site instead of a silently
// always-zero reading. Plain `constexpr const char*` so the constants cost
// nothing and stay usable in function-local statics.
#pragma once

namespace pdw::obs::names {

// ---- wash pipeline (pdw.*) ----------------------------------------------
inline constexpr const char* kNecessityTargets = "pdw.necessity.targets";
inline constexpr const char* kNecessitySkippedType1 =
    "pdw.necessity.skipped_type1";
inline constexpr const char* kNecessitySkippedType2 =
    "pdw.necessity.skipped_type2";
inline constexpr const char* kNecessitySkippedType3 =
    "pdw.necessity.skipped_type3";
inline constexpr const char* kClusterOperations = "pdw.cluster.operations";
inline constexpr const char* kPathIlpSolves = "pdw.path_ilp.solves";
inline constexpr const char* kPathIlpConnectivityCuts =
    "pdw.path_ilp.connectivity_cuts";
inline constexpr const char* kPathIlpFallbacks = "pdw.path_ilp.fallbacks";
inline constexpr const char* kPathIlpWarmHits = "pdw.path_ilp.warm_hits";
inline constexpr const char* kPathBfsRoutes = "pdw.path_bfs.routes";
inline constexpr const char* kRouteCacheHits = "pdw.route_cache.hits";
inline constexpr const char* kRouteCacheMisses = "pdw.route_cache.misses";
inline constexpr const char* kRouteCacheInserts = "pdw.route_cache.inserts";
inline constexpr const char* kRouteCacheEvictions =
    "pdw.route_cache.evictions";
inline constexpr const char* kRouteCacheStaleDrops =
    "pdw.route_cache.stale_drops";
inline constexpr const char* kRouteCacheInvalidations =
    "pdw.route_cache.invalidations";
inline constexpr const char* kRoutingUnroutableOperations =
    "pdw.routing.unroutable_operations";
inline constexpr const char* kScheduleIlpOrderBinaries =
    "pdw.schedule_ilp.order_binaries";
inline constexpr const char* kScheduleIlpPsiVars =
    "pdw.schedule_ilp.psi_vars";
inline constexpr const char* kScheduleIlpGreedyFallbacks =
    "pdw.schedule_ilp.greedy_fallbacks";
// Incremental re-wash (Pipeline::resolve). Exact partition invariants,
// reconciled by tools/obs_check --resolve: cells_total == frontier_cells +
// reused_cells, targets_total == targets_recomputed + targets_reused, and
// full_fallbacks <= requests. errors counts rejected deltas (they bump
// requests too but contribute nothing to the partitions).
inline constexpr const char* kResolveRequests = "pdw.resolve.requests";
inline constexpr const char* kResolveErrors = "pdw.resolve.errors";
inline constexpr const char* kResolveFullFallbacks =
    "pdw.resolve.full_fallbacks";
inline constexpr const char* kResolveCellsTotal = "pdw.resolve.cells_total";
inline constexpr const char* kResolveFrontierCells =
    "pdw.resolve.frontier_cells";
inline constexpr const char* kResolveReusedCells =
    "pdw.resolve.reused_cells";
inline constexpr const char* kResolveTargetsTotal =
    "pdw.resolve.targets_total";
inline constexpr const char* kResolveTargetsRecomputed =
    "pdw.resolve.targets_recomputed";
inline constexpr const char* kResolveTargetsReused =
    "pdw.resolve.targets_reused";
inline constexpr const char* kResolveRoutesReused =
    "pdw.resolve.routes_reused";
inline constexpr const char* kResolveSeconds = "pdw.resolve.seconds";
inline constexpr const char* kStageAnalysisSeconds =
    "pdw.stage.analysis_seconds";
inline constexpr const char* kStageClusteringSeconds =
    "pdw.stage.clustering_seconds";
inline constexpr const char* kStageRoutingSeconds =
    "pdw.stage.routing_seconds";
inline constexpr const char* kStageSchedulingSeconds =
    "pdw.stage.scheduling_seconds";

// ---- MILP solver (ilp.*) -------------------------------------------------
inline constexpr const char* kBbSolves = "ilp.bb.solves";
inline constexpr const char* kBbNodes = "ilp.bb.nodes";
inline constexpr const char* kBbDiverNodes = "ilp.bb.diver_nodes";
inline constexpr const char* kBbRaceCertified = "ilp.bb.race_certified";
inline constexpr const char* kBbRcFixed = "ilp.bb.rc_fixed";
inline constexpr const char* kSimplexCalls = "ilp.simplex.calls";
inline constexpr const char* kSimplexIterations = "ilp.simplex.iterations";
inline constexpr const char* kSimplexWarmHits = "ilp.simplex.warm_hits";
inline constexpr const char* kSimplexWarmMisses = "ilp.simplex.warm_misses";
inline constexpr const char* kSimplexDualPivots = "ilp.simplex.dual_pivots";
inline constexpr const char* kSimplexRefactorizations =
    "ilp.simplex.refactorizations";
inline constexpr const char* kSimplexPivotsPerNode =
    "ilp.simplex.pivots_per_node";
inline constexpr const char* kCutsAdded = "ilp.cuts.added";
inline constexpr const char* kCutsGomory = "ilp.cuts.gomory";
inline constexpr const char* kCutsCover = "ilp.cuts.cover";
inline constexpr const char* kCutsActive = "ilp.cuts.active";
inline constexpr const char* kCutsEvicted = "ilp.cuts.evicted";
inline constexpr const char* kSolveSeconds = "ilp.solve_seconds";

// ---- wash-optimization service (pdwd.*) ---------------------------------
// Daemon request accounting. `pdwd.requests` counts every parsed protocol
// line (solves, scrapes, pings); the outcome counters partition the solve
// requests: every admitted solve ends as exactly one of solve_ok /
// budget_hits / deadline_expired, and rejected_queue_full counts solves
// never admitted. errors counts malformed/oversize/unparseable lines.
inline constexpr const char* kPdwdRequests = "pdwd.requests";
inline constexpr const char* kPdwdSolveOk = "pdwd.solve_ok";
inline constexpr const char* kPdwdBudgetHits = "pdwd.budget_hits";
inline constexpr const char* kPdwdDeadlineExpired = "pdwd.deadline_expired";
inline constexpr const char* kPdwdRejectedQueueFull =
    "pdwd.rejected_queue_full";
inline constexpr const char* kPdwdErrors = "pdwd.errors";
inline constexpr const char* kPdwdPlanCacheHits = "pdwd.plan_cache.hits";
inline constexpr const char* kPdwdPlanCacheMisses = "pdwd.plan_cache.misses";
inline constexpr const char* kPdwdPlanCacheStaleDrops =
    "pdwd.plan_cache.stale_drops";
inline constexpr const char* kPdwdCacheInvalidations =
    "pdwd.cache_invalidations";
inline constexpr const char* kPdwdQueueDepth = "pdwd.queue_depth";
inline constexpr const char* kPdwdRequestSeconds = "pdwd.request_seconds";
inline constexpr const char* kPdwdQueueWaitSeconds =
    "pdwd.queue_wait_seconds";
inline constexpr const char* kPdwdSlowRequests = "pdwd.slow_requests";

// ---- parallel runtime (pool.*) ------------------------------------------
inline constexpr const char* kPoolTasksExecuted = "pool.tasks_executed";
inline constexpr const char* kPoolTasksStolen = "pool.tasks_stolen";
inline constexpr const char* kPoolQueueDepth = "pool.queue_depth";

}  // namespace pdw::obs::names

#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json.h"

namespace pdw::obs {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kChunkEvents = 1024;
/// Soft cap per thread (~1M events); beyond it events are counted as
/// dropped rather than recorded, so a runaway trace cannot exhaust memory.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

/// Per-thread event buffer. Only the owning thread appends; a slot write is
/// published by a release store of `size`, so collectors that acquire `size`
/// see fully-written events without taking a lock on the append path. The
/// mutex guards only the chunk table (growth by the owner, reads by
/// collectors).
struct ThreadBuffer {
  using Chunk = std::array<TraceEvent, kChunkEvents>;

  std::uint32_t tid = 0;
  mutable std::mutex chunk_mutex;
  std::vector<std::unique_ptr<Chunk>> chunks;
  std::atomic<std::size_t> size{0};
  std::atomic<std::int64_t> dropped{0};

  void append(TraceEvent event) {
    const std::size_t i = size.load(std::memory_order_relaxed);
    if (i >= kMaxEventsPerThread) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t chunk = i / kChunkEvents;
    if (chunk >= chunks.size()) {
      std::lock_guard<std::mutex> lock(chunk_mutex);
      chunks.push_back(std::make_unique<Chunk>());
    }
    (*chunks[chunk])[i % kChunkEvents] = std::move(event);
    size.store(i + 1, std::memory_order_release);
  }

  void collect(std::vector<TraceEvent>& out) const {
    std::lock_guard<std::mutex> lock(chunk_mutex);
    const std::size_t n = size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i)
      out.push_back((*chunks[i / kChunkEvents])[i % kChunkEvents]);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(chunk_mutex);
    size.store(0, std::memory_order_release);
    dropped.store(0, std::memory_order_relaxed);
  }
};

struct TraceState {
  std::atomic<bool> enabled{false};
  Clock::time_point epoch = Clock::now();
  std::mutex mutex;  ///< guards buffers / names / next_tid
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::map<std::uint32_t, std::string> names;
  std::uint32_t next_tid = 1;
};

TraceState& state() {
  // Leaked singleton: worker threads may record during static destruction.
  static TraceState* s = new TraceState;
  return *s;
}

ThreadBuffer& localBuffer() {
  // The registry holds a shared_ptr too, so the buffer (and its recorded
  // events) outlives the thread.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::uint64_t nowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            state().epoch)
          .count());
}

/// Open spans of the calling thread, so the end event can carry the same
/// category/name as its begin (viewers tolerate nameless 'E' events, our
/// JSON checker does not have to).
thread_local std::vector<std::pair<const char*, std::string>> t_open_spans;

}  // namespace

bool tracingEnabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void setTracingEnabled(bool enabled) {
  state().enabled.store(enabled, std::memory_order_relaxed);
}

std::uint32_t currentThreadId() { return localBuffer().tid; }

void setThreadName(std::string_view name) {
  const std::uint32_t tid = currentThreadId();
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.names[tid] = std::string(name);
}

std::vector<TraceEvent> snapshotTraceEvents() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  std::vector<TraceEvent> events;
  for (const auto& b : buffers) b->collect(events);
  return events;
}

std::vector<std::pair<std::uint32_t, std::string>> threadNames() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return {s.names.begin(), s.names.end()};
}

std::int64_t droppedTraceEvents() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  std::int64_t dropped = 0;
  for (const auto& b : buffers)
    dropped += b->dropped.load(std::memory_order_relaxed);
  return dropped;
}

void clearTrace() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  for (const auto& b : buffers) b->clear();
}

std::string exportTraceJson() {
  std::vector<TraceEvent> events = snapshotTraceEvents();
  // Viewers want begin-before-end at equal timestamps; a stable sort keeps
  // each thread's recording order (timestamps are monotonic per thread).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const auto& [tid, name] : threadNames()) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":";
    out += json::quote(name);
    out += "}}";
  }
  char head[96];
  for (const TraceEvent& e : events) {
    comma();
    std::snprintf(head, sizeof(head),
                  "{\"ph\":\"%c\",\"ts\":%llu,\"pid\":1,\"tid\":%u,",
                  e.phase, static_cast<unsigned long long>(e.ts_us), e.tid);
    out += head;
    if (e.phase == 'i') out += "\"s\":\"t\",";
    out += "\"cat\":";
    out += json::quote(e.category);
    out += ",\"name\":";
    out += json::quote(e.name);
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  out += std::to_string(droppedTraceEvents());
  out += "}}";
  return out;
}

bool writeTraceJson(const std::string& path) {
  const std::string text = exportTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

namespace detail {

void beginSpan(const char* category, std::string name) {
  ThreadBuffer& b = localBuffer();
  t_open_spans.emplace_back(category, name);
  b.append(TraceEvent{nowUs(), b.tid, 'B', category, std::move(name)});
}

void endSpan() {
  ThreadBuffer& b = localBuffer();
  const char* category = "";
  std::string name;
  if (!t_open_spans.empty()) {
    category = t_open_spans.back().first;
    name = std::move(t_open_spans.back().second);
    t_open_spans.pop_back();
  }
  b.append(TraceEvent{nowUs(), b.tid, 'E', category, std::move(name)});
}

void instantEvent(const char* category, std::string name) {
  ThreadBuffer& b = localBuffer();
  b.append(TraceEvent{nowUs(), b.tid, 'i', category, std::move(name)});
}

}  // namespace detail

}  // namespace pdw::obs

// pdw::obs — structured span tracing.
//
// A thread-aware span tracer: PDW_TRACE_SPAN("routing", "wash_op") records
// a begin event on construction and an end event on scope exit into a
// per-thread buffer (appends are lock-free: the owning thread writes a slot
// and publishes it with one release store; exporters read up to an acquired
// count, so recording never blocks on a collector). The collected events
// export as Chrome trace_event JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev.
//
// Cost model: tracing is off by default. A disabled span site is one
// relaxed atomic load and two untouched bytes of stack — no allocation, no
// clock read, no buffer write (tests/test_obs.cpp locks this in by counting
// operator-new calls). Compiling with PDW_OBS_DISABLE_TRACING removes the
// sites entirely. When enabled, a span costs two buffer appends (one
// steady_clock read + one small-string write each).
//
// This layer depends only on the C++ standard library — pdw::util sits on
// top of it (thread-pool task spans, log-line thread ids), never the other
// way around.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdw::obs {

/// One trace record. `phase` follows the Chrome trace_event vocabulary:
/// 'B' span begin, 'E' span end, 'i' instant.
struct TraceEvent {
  std::uint64_t ts_us = 0;    ///< microseconds since the process trace epoch
  std::uint32_t tid = 0;      ///< obs thread id (dense, assigned on first use)
  char phase = 'B';
  const char* category = "";  ///< static-lifetime string
  std::string name;
};

/// Runtime switch. Off by default; spans and instants recorded only while
/// enabled (an end event is still recorded for a span begun while enabled).
bool tracingEnabled();
void setTracingEnabled(bool enabled);

/// Dense per-thread id (1-based, assigned on first obs use of the thread).
/// Stable for the thread's lifetime; used as `tid` in exported traces.
std::uint32_t currentThreadId();

/// Name the calling thread in exported traces (Chrome `thread_name`
/// metadata). Recorded even while tracing is disabled; last call wins.
void setThreadName(std::string_view name);

/// Copy out every recorded event, in per-thread recording order, threads
/// concatenated. Safe to call while other threads are still recording: each
/// thread's prefix published so far is returned.
std::vector<TraceEvent> snapshotTraceEvents();

/// All (tid, name) pairs registered via setThreadName, sorted by tid.
std::vector<std::pair<std::uint32_t, std::string>> threadNames();

/// Events recorded beyond the per-thread buffer cap are counted, not stored.
std::int64_t droppedTraceEvents();

/// Serialize everything recorded so far as Chrome trace_event JSON
/// ({"traceEvents": [...]} object form, with thread_name metadata events).
std::string exportTraceJson();

/// exportTraceJson() to a file. Returns false on I/O failure.
bool writeTraceJson(const std::string& path);

/// Drop all recorded events (buffers are kept for reuse). Not synchronized
/// against threads that are concurrently *recording* — quiesce first.
void clearTrace();

namespace detail {
void beginSpan(const char* category, std::string name);
void endSpan();
void instantEvent(const char* category, std::string name);
}  // namespace detail

/// RAII span. Prefer the PDW_TRACE_SPAN* macros; they compile out under
/// PDW_OBS_DISABLE_TRACING.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name) {
    if (tracingEnabled()) {
      detail::beginSpan(category, name);
      active_ = true;
    }
  }
  /// Formats "name#id" — the id is only stringified when tracing is on.
  SpanGuard(const char* category, const char* name, long long id) {
    if (tracingEnabled()) {
      detail::beginSpan(category,
                        std::string(name) + "#" + std::to_string(id));
      active_ = true;
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (active_) detail::endSpan();
  }

 private:
  bool active_ = false;
};

/// Record an instant event (a point-in-time marker, 'i' phase).
inline void traceInstant(const char* category, const char* name) {
  if (tracingEnabled()) detail::instantEvent(category, name);
}

}  // namespace pdw::obs

#define PDW_OBS_CONCAT_(a, b) a##b
#define PDW_OBS_CONCAT(a, b) PDW_OBS_CONCAT_(a, b)

#if defined(PDW_OBS_DISABLE_TRACING)
#define PDW_TRACE_SPAN(category, name) \
  do {                                 \
  } while (false)
#define PDW_TRACE_SPAN_ID(category, name, id) \
  do {                                        \
  } while (false)
#define PDW_TRACE_INSTANT(category, name) \
  do {                                    \
  } while (false)
#else
/// Open a span covering the rest of the enclosing scope.
#define PDW_TRACE_SPAN(category, name)                             \
  ::pdw::obs::SpanGuard PDW_OBS_CONCAT(pdw_obs_span_, __LINE__) {  \
    (category), (name)                                             \
  }
/// Same, with a numeric id appended to the span name ("name#42").
#define PDW_TRACE_SPAN_ID(category, name, id)                      \
  ::pdw::obs::SpanGuard PDW_OBS_CONCAT(pdw_obs_span_, __LINE__) {  \
    (category), (name), static_cast<long long>(id)                 \
  }
#define PDW_TRACE_INSTANT(category, name) \
  ::pdw::obs::traceInstant((category), (name))
#endif

// pdw::obs — solver flight recorder.
//
// A bounded per-lane ring buffer of structured branch-and-bound search
// events: node open/solved/pruned/branched, incumbent updates, bound-delta
// sizes, warm-miss→cold fallbacks, basis refactorizations, degenerate
// dual-pivot stalls. One recorder per solver lane (canonical / diver), like
// the LpBackend it instruments — recording is single-threaded by design and
// costs one branch plus a ring-slot write per event. A lane with no
// recorder attached pays exactly one null-pointer check per site, so the
// search loop is unchanged when the feature is off.
//
// The ring keeps the *latest* `ring_capacity` events (the tail of the
// search is what explains where a slow solve went); per-kind counts stay
// exact regardless of overflow, so dumps always reconcile with the metrics
// registry's batched `ilp.*` counters even when events were dropped.
//
// Dumps append to a JSONL file (`pdw-flight-1`): one `"type":"solve"`
// header line per dumped solve — lane, final status, wall seconds, exact
// per-kind counts, dropped count — followed by one `"type":"event"` line
// per retained event, oldest first. Triggers (FlightConfig): every solve
// (`dump_all`, the explicit --flight-out mode), solves that hit their
// time/node/iteration budget (`dump_on_limit`), or solves slower than
// `slow_solve_seconds`. tools/obs_check --flight validates the stream and
// reconciles its counts against a pdw-metrics-1 export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdw::obs {

enum class FlightEventKind : std::uint8_t {
  SolveBegin,      ///< value = model vars, extra = integer vars
  NodeOpen,        ///< node popped for exploration; value = inherited bound
  NodeSolved,      ///< node LP finished; value = LP objective, extra = pivots
  NodePruned,      ///< value = bound/objective, extra = reason (see below)
  NodeBranched,    ///< value = branch variable id, extra = fractional value
  Incumbent,       ///< value = objective, extra = nodes explored so far
  BoundDelta,      ///< value = bound changes applied moving to this node
  WarmMiss,        ///< non-root node LP fell back to a cold solve
  Refactorization, ///< sparse basis (re)factorized (revised engine)
  DualStall,       ///< degenerate dual-pivot stall aborted a warm re-solve
  CutAdded,        ///< root cut materialized; value = violation,
                   ///< extra = family (0 = Gomory, 1 = cover)
};
inline constexpr int kFlightEventKinds = 11;

/// NodePruned reason codes (the `extra` payload).
enum : int {
  kPruneReasonInheritedBound = 0,  ///< pruned before its LP ran
  kPruneReasonInfeasible = 1,      ///< node LP infeasible
  kPruneReasonLpBound = 2,         ///< LP objective at/above the incumbent
};

/// Dump-event-kind name ("node_open", ...), stable schema vocabulary.
const char* toString(FlightEventKind kind);

struct FlightEvent {
  std::uint64_t t_us = 0;  ///< microseconds since recorder construction
  std::int64_t node = -1;  ///< branch-and-bound node id, -1 when n/a
  double value = 0.0;      ///< kind-specific payload (see FlightEventKind)
  double extra = 0.0;      ///< kind-specific secondary payload
  std::uint32_t seq = 0;   ///< 0-based sequence number within the recorder
  FlightEventKind kind = FlightEventKind::SolveBegin;
};

/// Recording/dump policy; carried by ilp::SolveParams so it reaches every
/// lane without new plumbing.
struct FlightConfig {
  /// Master switch: lanes only construct a recorder when true.
  bool enabled = false;
  /// JSONL sink (appended to, possibly by many lanes/solves). Empty
  /// disables dumping; events are still recorded and inspectable in-process.
  std::string path;
  /// Dump every solve regardless of outcome (the --flight-out mode, where
  /// the whole stream must reconcile with the registry counters).
  bool dump_all = false;
  /// Dump solves that ended on their time/node/iteration budget.
  bool dump_on_limit = true;
  /// Dump solves slower than this many wall-clock seconds.
  double slow_solve_seconds = 5.0;
  /// Ring size in events; older events beyond it are counted, not kept.
  std::size_t ring_capacity = 8192;
};

class FlightRecorder {
 public:
  /// `lane` labels the dump ("canonical", "diver"). A zero ring capacity is
  /// clamped to 1.
  FlightRecorder(const FlightConfig& config, std::string lane);

  void record(FlightEventKind kind, std::int64_t node = -1,
              double value = 0.0, double extra = 0.0);

  /// Exact per-kind count, unaffected by ring overflow.
  std::int64_t count(FlightEventKind kind) const {
    return counts_[static_cast<int>(kind)];
  }
  /// Total events recorded / retained in the ring / overwritten.
  std::int64_t recorded() const { return recorded_; }
  std::size_t retained() const;
  std::int64_t dropped() const {
    return recorded_ - static_cast<std::int64_t>(retained());
  }
  /// Retained event by position, oldest first (0 <= i < retained()).
  const FlightEvent& event(std::size_t i) const;

  const std::string& lane() const { return lane_; }
  const FlightConfig& config() const { return config_; }

  /// Dump policy for a finished solve (pure; does not write).
  bool shouldDump(bool hit_limit, double wall_seconds) const;

  /// Append one solve block (header + retained events) to config().path.
  /// Serialized process-wide so concurrent lanes never interleave blocks.
  /// False when the path is empty or on I/O failure.
  bool dump(const char* status, double wall_seconds) const;

 private:
  FlightConfig config_;
  std::string lane_;
  std::uint64_t start_ns_ = 0;
  std::vector<FlightEvent> ring_;  ///< write cursor = recorded_ % capacity
  std::int64_t counts_[kFlightEventKinds] = {};
  std::int64_t recorded_ = 0;
};

}  // namespace pdw::obs

// Minimal JSON support for the observability exporters and their checkers.
//
// Writing: quote() escapes a string per RFC 8259 (the exporters assemble
// their documents by hand — the schemas are flat and fixed). Reading: a
// small recursive-descent parser into a tagged Value tree, enough to
// round-trip the trace/metrics exports in tests and to validate them in
// tools/obs_check. Not a general-purpose JSON library: numbers are doubles,
// \uXXXX escapes decode the BMP only, and inputs are trusted to be small.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdw::obs::json {

/// Escape `text` and wrap it in double quotes.
std::string quote(std::string_view text);

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool isObject() const { return kind == Kind::Object; }
  bool isArray() const { return kind == Kind::Array; }
  bool isString() const { return kind == Kind::String; }
  bool isNumber() const { return kind == Kind::Number; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parse a complete JSON document. nullopt on any syntax error or trailing
/// garbage.
std::optional<Value> parse(std::string_view text);

}  // namespace pdw::obs::json

#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace pdw::obs::json {

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    std::optional<Value> value = parseValue();
    if (!value) return std::nullopt;
    skipSpace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Value> parseValue() {
    skipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't':
        if (!literal("true")) return std::nullopt;
        return makeBool(true);
      case 'f':
        if (!literal("false")) return std::nullopt;
        return makeBool(false);
      case 'n':
        if (!literal("null")) return std::nullopt;
        return Value{};
      default: return parseNumber();
    }
  }

  static Value makeBool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  std::optional<Value> parseObject() {
    ++pos_;  // '{'
    Value v;
    v.kind = Value::Kind::Object;
    skipSpace();
    if (consume('}')) return v;
    for (;;) {
      skipSpace();
      std::optional<Value> key = parseString();
      if (!key || !consume(':')) return std::nullopt;
      std::optional<Value> member = parseValue();
      if (!member) return std::nullopt;
      v.object.emplace(std::move(key->string), std::move(*member));
      if (consume(',')) continue;
      if (consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<Value> parseArray() {
    ++pos_;  // '['
    Value v;
    v.kind = Value::Kind::Array;
    skipSpace();
    if (consume(']')) return v;
    for (;;) {
      std::optional<Value> element = parseValue();
      if (!element) return std::nullopt;
      v.array.push_back(std::move(*element));
      if (consume(',')) continue;
      if (consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<Value> parseString() {
    skipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    Value v;
    v.kind = Value::Kind::String;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          const std::optional<unsigned> first = readHex4();
          if (!first) return std::nullopt;
          unsigned code = *first;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // UTF-16 high surrogate: the next escape MUST be the matching
            // low surrogate (RFC 8259 §7); anything else mangles the astral
            // code point, so treat it as a parse error.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return std::nullopt;
            pos_ += 2;
            const std::optional<unsigned> second = readHex4();
            if (!second || *second < 0xDC00 || *second > 0xDFFF)
              return std::nullopt;
            code = 0x10000 + ((code - 0xD800) << 10) + (*second - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return std::nullopt;  // lone low surrogate
          }
          appendUtf8(v.string, code);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  /// Exactly four hex digits at pos_, or nullopt (pos_ advances over what
  /// was consumed either way).
  std::optional<unsigned> readHex4() {
    if (pos_ + 4 > text_.size()) return std::nullopt;
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code += static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code += static_cast<unsigned>(h - 'A' + 10);
      else
        return std::nullopt;
    }
    return code;
  }

  static void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::optional<Value> parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    Value v;
    v.kind = Value::Kind::Number;
    const auto result = std::from_chars(text_.data() + start,
                                        text_.data() + pos_, v.number);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_)
      return std::nullopt;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace pdw::obs::json

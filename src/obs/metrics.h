// pdw::obs — metrics registry.
//
// A process-wide registry of named counters, gauges and histograms, built
// for hot solver loops: a metric handle is looked up once (call sites cache
// the returned reference, typically in a function-local static) and every
// update after that is a single relaxed atomic operation — no locks, no
// allocation, safe from any thread. Handles are stable for the process
// lifetime; reset() zeroes values but never invalidates a reference.
//
// Naming convention: dot-separated "<subsystem>.<what>[_<unit>]", e.g.
// "ilp.bb.nodes", "pdw.stage.routing_seconds". The full name table lives in
// DESIGN.md §10. Readings are exported as a MetricsSnapshot — a plain value
// map that can be diffed against an earlier snapshot (per-run deltas) and
// serialized to JSON. The pipeline's per-run stat structs are views over
// such deltas rather than separately maintained books.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pdw::obs {

class Counter {
 public:
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucket histogram: bucket 0 counts observations < 1, bucket
/// i counts [2^(i-1), 2^i). Unitless by design — the metric name carries
/// the unit. Tracks count / sum / min / max alongside the buckets.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void observe(double value);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 while empty (the ±inf identity values never leak into readings).
  double min() const {
    const double v = min_.load(std::memory_order_relaxed);
    return v == kEmptyMin ? 0.0 : v;
  }
  double max() const {
    const double v = max_.load(std::memory_order_relaxed);
    return v == kEmptyMax ? 0.0 : v;
  }
  std::int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  // ±inf identities make concurrent first observations race-free: every
  // observe() is a plain CAS-min/CAS-max, no seeding branch.
  static constexpr double kEmptyMin =
      std::numeric_limits<double>::infinity();
  static constexpr double kEmptyMax =
      -std::numeric_limits<double>::infinity();

  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{kEmptyMin};
  std::atomic<double> max_{kEmptyMax};
};

/// One exported reading.
struct MetricValue {
  enum class Kind { Counter, Gauge, Histogram };
  Kind kind = Kind::Counter;
  std::int64_t count = 0;  ///< counter value, or histogram observation count
  double value = 0.0;      ///< gauge value, or histogram sum
  double min = 0.0;        ///< histogram only
  double max = 0.0;        ///< histogram only
  std::vector<std::int64_t> buckets;  ///< histogram only (trailing zeros cut)

  /// Histogram percentile estimate (`p` in percent, e.g. 50 / 90 / 99):
  /// locates the bucket holding the target rank and interpolates linearly
  /// inside its power-of-two range, clamped to the recorded [min, max].
  /// Works on per-run deltas too (bucket counts subtract; min/max are the
  /// current snapshot's, so the clamp only ever tightens). 0 when empty or
  /// not a histogram.
  double percentile(double p) const;
};

struct MetricsSnapshot {
  std::map<std::string, MetricValue> values;

  /// Counter reading by name; 0 when absent.
  std::int64_t counter(std::string_view name) const;
  /// Gauge reading by name; 0.0 when absent.
  double gauge(std::string_view name) const;

  /// This snapshot minus `baseline`: counters and histogram counts/sums
  /// subtract (metrics absent from the baseline pass through); gauges and
  /// histogram min/max keep this snapshot's reading.
  MetricsSnapshot since(const MetricsSnapshot& baseline) const;

  /// {"schema":"pdw-metrics-1","metrics":{name:{...}}}, keys sorted.
  std::string toJson() const;
};

class Registry {
 public:
  /// The process-wide registry.
  static Registry& instance();

  /// Find-or-create. The returned reference is valid forever; kind
  /// mismatches on one name are a programming error (first kind wins, and
  /// the name gets one entry per kind in the export).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  std::string exportJson() const { return snapshot().toJson(); }
  bool writeJson(const std::string& path) const;

  /// Zero every registered metric (references stay valid).
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace pdw::obs

#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"

namespace pdw::obs {

namespace {

/// fetch_add for atomic<double> via CAS (std::atomic<double>::fetch_add is
/// C++20 but not universally lock-free-lowered; the CAS loop always is).
void atomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

int bucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  const int exponent = std::ilogb(value) + 1;
  return exponent >= Histogram::kBuckets ? Histogram::kBuckets - 1
                                         : exponent;
}

}  // namespace

void Histogram::observe(double value) {
  buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(sum_, value);
  atomicMin(min_, value);
  atomicMax(max_, value);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(kEmptyMax, std::memory_order_relaxed);
}

double MetricValue::percentile(double p) const {
  if (kind != Kind::Histogram || count <= 0 || buckets.empty()) return 0.0;
  const double clamped_p = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
  const double target = clamped_p / 100.0 * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= target) {
      // Bucket 0 spans [0, 1); bucket i spans [2^(i-1), 2^i).
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i));
      const double fraction = (target - cumulative) / in_bucket;
      double estimate = lo + fraction * (hi - lo);
      if (estimate < min) estimate = min;
      if (max > 0.0 && estimate > max) estimate = max;
      return estimate;
    }
    cumulative += in_bucket;
  }
  return max;
}

std::int64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = values.find(std::string(name));
  return it == values.end() || it->second.kind != MetricValue::Kind::Counter
             ? 0
             : it->second.count;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = values.find(std::string(name));
  return it == values.end() || it->second.kind != MetricValue::Kind::Gauge
             ? 0.0
             : it->second.value;
}

MetricsSnapshot MetricsSnapshot::since(
    const MetricsSnapshot& baseline) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.values) {
    const auto it = baseline.values.find(name);
    if (it == baseline.values.end()) continue;
    const MetricValue& before = it->second;
    switch (value.kind) {
      case MetricValue::Kind::Counter:
        value.count -= before.count;
        break;
      case MetricValue::Kind::Gauge:
        break;  // point-in-time reading: keep the current value
      case MetricValue::Kind::Histogram:
        value.count -= before.count;
        value.value -= before.value;
        for (std::size_t i = 0;
             i < value.buckets.size() && i < before.buckets.size(); ++i)
          value.buckets[i] -= before.buckets[i];
        break;
    }
  }
  return delta;
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\"schema\":\"pdw-metrics-1\",\"metrics\":{";
  char buf[128];
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ',';
    first = false;
    out += json::quote(name);
    out += ':';
    switch (value.kind) {
      case MetricValue::Kind::Counter:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value.count));
        out += "{\"type\":\"counter\",\"value\":";
        out += buf;
        out += '}';
        break;
      case MetricValue::Kind::Gauge:
        std::snprintf(buf, sizeof(buf), "%.9g", value.value);
        out += "{\"type\":\"gauge\",\"value\":";
        out += buf;
        out += '}';
        break;
      case MetricValue::Kind::Histogram:
        out += "{\"type\":\"histogram\",\"count\":";
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value.count));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"sum\":%.9g", value.value);
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"min\":%.9g,\"max\":%.9g",
                      value.min, value.max);
        out += buf;
        std::snprintf(buf, sizeof(buf),
                      ",\"p50\":%.9g,\"p90\":%.9g,\"p99\":%.9g",
                      value.percentile(50), value.percentile(90),
                      value.percentile(99));
        out += buf;
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < value.buckets.size(); ++i) {
          if (i != 0) out += ',';
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(value.buckets[i]));
          out += buf;
        }
        out += "]}";
        break;
    }
  }
  out += "}}";
  return out;
}

Registry& Registry::instance() {
  // Leaked singleton: metric handles must stay valid during static
  // destruction (worker threads may still be counting).
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    MetricValue v;
    v.kind = MetricValue::Kind::Counter;
    v.count = counter->value();
    snap.values.emplace(name, std::move(v));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue v;
    v.kind = MetricValue::Kind::Gauge;
    v.value = gauge->value();
    snap.values.emplace(name, std::move(v));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricValue v;
    v.kind = MetricValue::Kind::Histogram;
    v.count = histogram->count();
    v.value = histogram->sum();
    v.min = histogram->min();
    v.max = histogram->max();
    int last = Histogram::kBuckets - 1;
    while (last > 0 && histogram->bucket(last) == 0) --last;
    v.buckets.reserve(static_cast<std::size_t>(last) + 1);
    for (int i = 0; i <= last; ++i) v.buckets.push_back(histogram->bucket(i));
    snap.values.emplace(name, std::move(v));
  }
  return snap;
}

bool Registry::writeJson(const std::string& path) const {
  const std::string text = exportJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace pdw::obs

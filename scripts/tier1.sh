#!/usr/bin/env bash
# Tier-1 verification: the full test suite in a normal build, an
# observability export smoke check (pdw_cli trace/metrics JSON validated by
# tools/obs_check), a flight-recorder smoke (single-threaded pdw_cli run
# with --flight-out, stream validated and reconciled against the metrics
# registry by obs_check --flight), an ILP perf smoke (bench_ilp_solver
# --quick writing both a pdw-bench-1 JSON and a pdw-run-1 run-store record,
# gated by tools/pdw_report against the committed BENCH_ilp.json baseline;
# obs_check --bench still schema-validates and requires warm hits), a
# root-cut reconciliation (the same bench run's flight stream must report
# exactly ilp.cuts.added canonical cut_added events), the ILP numerics
# tests under ASan+UBSan, then the parallel-runtime + obs tests
# (determinism, route cache, tracing/metrics/logging) under
# ThreadSanitizer.
#
#   scripts/tier1.sh            # all stages
#   PDW_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSAN stage
#   PDW_SKIP_ASAN=1 scripts/tier1.sh   # skip the ASan/UBSan stage
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tier-1: observability export smoke check =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./build/examples/pdw_cli --benchmark PCR --method pdw --threads 4 \
  --time-limit 2 --trace-out "$obs_dir/trace.json" \
  --metrics-out "$obs_dir/metrics.json"
# 4 lanes = 3 pool workers + the calling thread.
./build/tools/obs_check --trace "$obs_dir/trace.json" \
  --metrics "$obs_dir/metrics.json" --expect-workers 3

echo "== tier-1: flight recorder smoke (pdw_cli --flight-out) =="
# Single-threaded so every lane is canonical and the flight stream's event
# counts reconcile EXACTLY with the registry's ilp.bb.* / ilp.simplex.*
# counters (portfolio diver lanes would add solve blocks the batched
# counters don't see).
./build/examples/pdw_cli --benchmark PCR --method pdw --threads 1 \
  --time-limit 2 --flight-out "$obs_dir/flight.jsonl" \
  --metrics-out "$obs_dir/flight_metrics.json"
./build/tools/obs_check --flight "$obs_dir/flight.jsonl" \
  --metrics "$obs_dir/flight_metrics.json"

echo "== tier-1: ILP perf smoke (bench_ilp_solver --quick + pdw_report) =="
# One quick run produces both the pdw-bench-1 document (schema-validated,
# warm dual path must have fired, engine label checked) and a pdw-run-1
# run-store record; pdw_report gates wall time + simplex iterations on the
# rows shared with the committed perf baseline (exit 1 = regression).
./build/bench/bench_ilp_solver --json-out="$obs_dir/bench.json" \
  --run-store="$obs_dir/runs.jsonl" --label tier1-smoke --quick \
  --flight-out "$obs_dir/bench_flight.jsonl" \
  --metrics-out "$obs_dir/bench_metrics.json"
./build/tools/obs_check --bench "$obs_dir/bench.json" --expect-warm-hits \
  --expect-engine revised
./build/tools/pdw_report --store "$obs_dir/runs.jsonl" --label tier1-smoke \
  --against BENCH_ilp.json --max-regression 10% --min-wall 0.05

echo "== tier-1: root-cut reconciliation (bench flight vs registry) =="
# Cuts are on by default in the quick bench above; the root separation loop
# records one cut_added flight event per materialized cut into the
# canonical lane, and obs_check asserts the stream's canonical cut_added
# total equals the registry's ilp.cuts.added counter exactly (alongside the
# node_open / warm_miss reconciliations).
./build/tools/obs_check --flight "$obs_dir/bench_flight.jsonl" \
  --metrics "$obs_dir/bench_metrics.json"

if [[ "${PDW_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== tier-1: ASan/UBSan stage skipped (PDW_SKIP_ASAN=1) =="
else
  echo "== tier-1: ASan/UBSan build + ILP numerics tests =="
  cmake -B build-asan -S . -DPDW_ASAN=ON >/dev/null
  cmake --build build-asan -j --target pdw_tests
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="print_stacktrace=1" \
    ./build-asan/tests/pdw_tests \
    --gtest_filter='BasisLu.*:BackendDifferential.*:BothEngines/*:DenseWarmPath.*:Simplex.*:Mip.*:WarmStart.*:Model.*:Presolve.*:LinExpr.*'
fi

if [[ "${PDW_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== tier-1: TSAN stage skipped (PDW_SKIP_TSAN=1) =="
  exit 0
fi

echo "== tier-1: ThreadSanitizer build + parallel-runtime/obs tests =="
cmake -B build-tsan -S . -DPDW_TSAN=ON >/dev/null
cmake --build build-tsan -j --target pdw_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/pdw_tests \
  --gtest_filter='*ParallelDeterminism*:*IlpPathDeterminism*:RouteCache.*:ObsTrace.*:ObsMetrics.*:ObsLogging.*'

echo "== tier-1: OK =="

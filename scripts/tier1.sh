#!/usr/bin/env bash
# Tier-1 verification: the full test suite in a normal build, an
# observability export smoke check (pdw_cli trace/metrics JSON validated by
# tools/obs_check), a flight-recorder smoke (single-threaded pdw_cli run
# with --flight-out, stream validated and reconciled against the metrics
# registry by obs_check --flight), an ILP perf smoke (bench_ilp_solver
# --quick writing both a pdw-bench-1 JSON and a pdw-run-1 run-store record,
# gated by tools/pdw_report against the committed BENCH_ilp.json baseline;
# obs_check --bench still schema-validates and requires warm hits), a
# root-cut reconciliation (the same bench run's flight stream must report
# exactly ilp.cuts.added canonical cut_added events), a pdwd service smoke
# (a stdio request batch through the resident daemon, then a unix-socket
# daemon loaded by bench_pdwd --quick: warm-rate/speedup gates, counters
# reconciled by obs_check --pdwd, run record diffed against the frozen
# pdwd-quick-baseline label in BENCH_runs.jsonl by pdw_report), an online
# re-wash smoke (bench_rewash --quick replays seeded delta streams, asserts
# N_wash identity between incremental resolve and cold re-solve, gates a
# >= 5x speedup, pdw.resolve.* partition invariants reconciled by obs_check
# --resolve, run record diffed against the frozen rewash-quick-baseline
# label), the ILP numerics + JSON decoder tests under ASan+UBSan, then the
# parallel-runtime + obs + daemon-concurrency tests (determinism, route
# cache + epochs, tracing/metrics/logging, byte-identical concurrent pdwd
# plans, rescheduler thread-count determinism, invalidate coherence) under
# ThreadSanitizer.
#
#   scripts/tier1.sh            # all stages
#   PDW_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSAN stage
#   PDW_SKIP_ASAN=1 scripts/tier1.sh   # skip the ASan/UBSan stage
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tier-1: observability export smoke check =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./build/examples/pdw_cli --benchmark PCR --method pdw --threads 4 \
  --time-limit 2 --trace-out "$obs_dir/trace.json" \
  --metrics-out "$obs_dir/metrics.json"
# 4 lanes = 3 pool workers + the calling thread.
./build/tools/obs_check --trace "$obs_dir/trace.json" \
  --metrics "$obs_dir/metrics.json" --expect-workers 3

echo "== tier-1: flight recorder smoke (pdw_cli --flight-out) =="
# Single-threaded so every lane is canonical and the flight stream's event
# counts reconcile EXACTLY with the registry's ilp.bb.* / ilp.simplex.*
# counters (portfolio diver lanes would add solve blocks the batched
# counters don't see).
./build/examples/pdw_cli --benchmark PCR --method pdw --threads 1 \
  --time-limit 2 --flight-out "$obs_dir/flight.jsonl" \
  --metrics-out "$obs_dir/flight_metrics.json"
./build/tools/obs_check --flight "$obs_dir/flight.jsonl" \
  --metrics "$obs_dir/flight_metrics.json"

echo "== tier-1: ILP perf smoke (bench_ilp_solver --quick + pdw_report) =="
# One quick run produces both the pdw-bench-1 document (schema-validated,
# warm dual path must have fired, engine label checked) and a pdw-run-1
# run-store record; pdw_report gates wall time + simplex iterations on the
# rows shared with the committed perf baseline (exit 1 = regression).
./build/bench/bench_ilp_solver --json-out="$obs_dir/bench.json" \
  --run-store="$obs_dir/runs.jsonl" --label tier1-smoke --quick \
  --flight-out "$obs_dir/bench_flight.jsonl" \
  --metrics-out "$obs_dir/bench_metrics.json"
./build/tools/obs_check --bench "$obs_dir/bench.json" --expect-warm-hits \
  --expect-engine revised
./build/tools/pdw_report --store "$obs_dir/runs.jsonl" --label tier1-smoke \
  --against BENCH_ilp.json --max-regression 10% --min-wall 0.05

echo "== tier-1: root-cut reconciliation (bench flight vs registry) =="
# Cuts are on by default in the quick bench above; the root separation loop
# records one cut_added flight event per materialized cut into the
# canonical lane, and obs_check asserts the stream's canonical cut_added
# total equals the registry's ilp.cuts.added counter exactly (alongside the
# node_open / warm_miss reconciliations).
./build/tools/obs_check --flight "$obs_dir/bench_flight.jsonl" \
  --metrics "$obs_dir/bench_metrics.json"

echo "== tier-1: pdwd service smoke (stdio batch) =="
# A canned request batch piped through the resident daemon: two identical
# solves (the second must be served from the plan cache), a metrics scrape,
# then shutdown. The scraped pdw-resp-1 line feeds obs_check --pdwd, which
# reconciles the daemon's outcome-partition invariant and demands exactly 2
# completed solves with at least one warm.
printf '%s\n' \
  '{"schema":"pdw-req-1","type":"ping","id":"t1"}' \
  '{"schema":"pdw-req-1","type":"solve","id":"t2","benchmark":"Kinase act-1"}' \
  '{"schema":"pdw-req-1","type":"solve","id":"t3","benchmark":"Kinase act-1"}' \
  '{"schema":"pdw-req-1","type":"metrics","id":"t4"}' \
  '{"schema":"pdw-req-1","type":"shutdown","id":"t5"}' \
  | ./build/tools/pdwd --stdio --lanes 1 > "$obs_dir/pdwd_stdio.out"
grep '"type":"metrics"' "$obs_dir/pdwd_stdio.out" > "$obs_dir/pdwd_scrape.json"
./build/tools/obs_check --pdwd "$obs_dir/pdwd_scrape.json" \
  --expect-solves 2 --expect-warm-solves

echo "== tier-1: pdwd service smoke (socket bench + pdw_report) =="
# A real daemon on a unix socket, loaded by bench_pdwd over the wire:
# 3 passes x 2 clients over the quick Table-II mix, gated on warm service
# rate >= 0.9 and warm latency >= 2x better than cold p50. The run record
# is then diffed against the frozen pdwd-quick-baseline label committed in
# BENCH_runs.jsonl — warm_miss_rate is the deterministic gate (baseline 0,
# any miss is +inf); wall_seconds has a generous threshold plus a 5 s noise
# floor because cold solves are wall-clock noisy on a loaded machine.
./build/tools/pdwd --socket "$obs_dir/pdwd.sock" --lanes 2 \
  --metrics-out "$obs_dir/pdwd_metrics.json" &
pdwd_pid=$!
for _ in $(seq 100); do [[ -S "$obs_dir/pdwd.sock" ]] && break; sleep 0.1; done
./build/bench/bench_pdwd --quick --connect "$obs_dir/pdwd.sock" \
  --run-store "$obs_dir/pdwd_runs.jsonl" --label tier1-pdwd \
  --scrape-out "$obs_dir/pdwd_socket_scrape.json" --shutdown \
  --expect-warm-rate 0.9 --expect-warm-speedup 2
wait "$pdwd_pid"
./build/tools/obs_check --pdwd "$obs_dir/pdwd_socket_scrape.json" \
  --expect-warm-solves
cp BENCH_runs.jsonl "$obs_dir/pdwd_store.jsonl"
cat "$obs_dir/pdwd_runs.jsonl" >> "$obs_dir/pdwd_store.jsonl"
./build/tools/pdw_report --store "$obs_dir/pdwd_store.jsonl" \
  --label tier1-pdwd --against-label pdwd-quick-baseline \
  --metrics warm_miss_rate,wall_seconds --max-regression 300% --min-wall 5

echo "== tier-1: online re-wash smoke (bench_rewash --quick + pdw_report) =="
# A resident pipeline replays a seeded perturbation stream (op/task delays)
# per quick benchmark, solving each delta both incrementally
# (Pipeline::resolve) and cold from scratch. The bench itself asserts
# N_wash identity on every delta and gates a >= 5x speedup (latency or
# simplex iterations); obs_check --resolve reconciles the pdw.resolve.*
# partition invariants from the metrics scrape; pdw_report then diffs the
# run record against the frozen rewash-quick-baseline label committed in
# BENCH_runs.jsonl — nwash_mismatches is the deterministic gate (baseline
# 0, any mismatch is +inf); wall_seconds gets a generous threshold plus a
# noise floor because cold re-solves dominate wall time and are noisy.
./build/bench/bench_rewash --quick --expect-speedup 5 \
  --json-out "$obs_dir/rewash.json" \
  --run-store "$obs_dir/rewash_runs.jsonl" --label tier1-rewash \
  --metrics-out "$obs_dir/rewash_metrics.json"
./build/tools/obs_check --resolve "$obs_dir/rewash_metrics.json"
cp BENCH_runs.jsonl "$obs_dir/rewash_store.jsonl"
cat "$obs_dir/rewash_runs.jsonl" >> "$obs_dir/rewash_store.jsonl"
./build/tools/pdw_report --store "$obs_dir/rewash_store.jsonl" \
  --label tier1-rewash --against-label rewash-quick-baseline \
  --metrics nwash_mismatches,wall_seconds --max-regression 300% --min-wall 10

if [[ "${PDW_SKIP_ASAN:-0}" == "1" ]]; then
  echo "== tier-1: ASan/UBSan stage skipped (PDW_SKIP_ASAN=1) =="
else
  echo "== tier-1: ASan/UBSan build + ILP numerics / JSON decoder tests =="
  cmake -B build-asan -S . -DPDW_ASAN=ON >/dev/null
  cmake --build build-asan -j --target pdw_tests
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="print_stacktrace=1" \
    ./build-asan/tests/pdw_tests \
    --gtest_filter='BasisLu.*:BackendDifferential.*:BothEngines/*:DenseWarmPath.*:Simplex.*:Mip.*:WarmStart.*:Model.*:Presolve.*:LinExpr.*:ObsJson.*'
fi

if [[ "${PDW_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== tier-1: TSAN stage skipped (PDW_SKIP_TSAN=1) =="
  exit 0
fi

echo "== tier-1: ThreadSanitizer build + parallel-runtime/obs tests =="
cmake -B build-tsan -S . -DPDW_TSAN=ON >/dev/null
cmake --build build-tsan -j --target pdw_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/pdw_tests \
  --gtest_filter='*ParallelDeterminism*:*IlpPathDeterminism*:RouteCache.*:ObsTrace.*:ObsMetrics.*:ObsLogging.*:PdwdConcurrency.*:RouteCacheEpoch.*:*ByteIdenticalAcrossThreadCounts*'

echo "== tier-1: OK =="

#!/usr/bin/env bash
# Tier-1 verification: the full test suite in a normal build, an
# observability export smoke check (pdw_cli trace/metrics JSON validated by
# tools/obs_check), an ILP perf smoke (bench_ilp_solver --quick JSON
# validated by obs_check --bench, warm-hit rate must be positive), then the
# parallel-runtime + obs tests (determinism, route cache,
# tracing/metrics/logging) under ThreadSanitizer.
#
#   scripts/tier1.sh            # all stages
#   PDW_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSAN stage
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tier-1: observability export smoke check =="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./build/examples/pdw_cli --benchmark PCR --method pdw --threads 4 \
  --time-limit 2 --trace-out "$obs_dir/trace.json" \
  --metrics-out "$obs_dir/metrics.json"
# 4 lanes = 3 pool workers + the calling thread.
./build/tools/obs_check --trace "$obs_dir/trace.json" \
  --metrics "$obs_dir/metrics.json" --expect-workers 3

echo "== tier-1: ILP perf smoke (bench_ilp_solver --json-out --quick) =="
./build/bench/bench_ilp_solver --json-out="$obs_dir/bench.json" \
  --label tier1-smoke --quick
# Schema-validate the pdw-bench-1 document and require the warm dual path
# to have actually fired (a silent all-cold regression fails here).
./build/tools/obs_check --bench "$obs_dir/bench.json" --expect-warm-hits

if [[ "${PDW_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== tier-1: TSAN stage skipped (PDW_SKIP_TSAN=1) =="
  exit 0
fi

echo "== tier-1: ThreadSanitizer build + parallel-runtime/obs tests =="
cmake -B build-tsan -S . -DPDW_TSAN=ON >/dev/null
cmake --build build-tsan -j --target pdw_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/pdw_tests \
  --gtest_filter='*ParallelDeterminism*:*IlpPathDeterminism*:RouteCache.*:ObsTrace.*:ObsMetrics.*:ObsLogging.*'

echo "== tier-1: OK =="

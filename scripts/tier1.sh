#!/usr/bin/env bash
# Tier-1 verification: the full test suite in a normal build, then the
# parallel-runtime tests (determinism + route cache) under ThreadSanitizer.
#
#   scripts/tier1.sh            # both stages
#   PDW_SKIP_TSAN=1 scripts/tier1.sh   # normal build + ctest only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${PDW_SKIP_TSAN:-0}" == "1" ]]; then
  echo "== tier-1: TSAN stage skipped (PDW_SKIP_TSAN=1) =="
  exit 0
fi

echo "== tier-1: ThreadSanitizer build + parallel-runtime tests =="
cmake -B build-tsan -S . -DPDW_TSAN=ON >/dev/null
cmake --build build-tsan -j --target pdw_tests
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/pdw_tests \
  --gtest_filter='*ParallelDeterminism*:*IlpPathDeterminism*:RouteCache.*'

echo "== tier-1: OK =="

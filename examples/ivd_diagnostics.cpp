// In-vitro-diagnosis walkthrough — the paper's §I motivation.
//
// A chemiluminescence immunoassay fans a filtered patient sample into three
// detection chains carrying different luminescence agents. When two agents
// traverse the same channel back-to-back, the residue of the first corrupts
// the second's luminous intensity and the tumormarker readout is wrong.
// This example shows where that would happen on the synthesized chip, and
// how PathDriver-Wash prevents it at minimal cost.
#include <iostream>

#include "assay/benchmarks.h"
#include "core/pipeline.h"
#include "sim/metrics.h"
#include "sim/validator.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "wash/contamination.h"
#include "wash/necessity.h"

int main() {
  using namespace pdw;

  assay::Benchmark ivd = assay::makeBenchmark(assay::BenchmarkId::Ivd);
  synth::SynthResult base =
      synth::synthesizeOnChip(*ivd.graph, synth::placeChip(ivd.library));

  std::cout << "IVD immunoassay: " << ivd.graph->numOps()
            << " operations on " << base.chip->devices().size()
            << " devices\n"
            << base.chip->render() << "\n";

  // Where would cross-contamination corrupt the assay?
  const wash::ContaminationTracker tracker(base.schedule);
  const wash::NecessityResult necessity = analyzeWashNecessity(tracker);
  std::cout << "Contamination hazards (cell, residue -> blocked use):\n";
  for (const wash::WashTarget& t : necessity.targets) {
    std::cout << "  cell " << arch::toString(t.cell) << ": residue of '"
              << ivd.graph->fluids().name(t.residue)
              << "' would corrupt the task at t=" << t.deadline << " s\n";
  }
  std::cout << "Exemptions applied: " << necessity.stats.describe()
            << "\n\n";

  Pipeline pipeline;
  const PdwResult result = pipeline.run(base.schedule);
  const wash::WashPlanResult& plan = result.plan;
  const sim::WashMetrics metrics =
      sim::computeMetrics(plan.schedule, base.schedule);

  const sim::ValidatorOptions tol{.time_tol = 1e-4};
  const bool valid = sim::validateSchedule(plan.schedule, tol).ok();
  const wash::ContaminationTracker after(plan.schedule);
  const bool clean = analyzeWashNecessity(after).targets.empty();

  std::cout << "PathDriver-Wash plan: " << metrics.describe() << "\n";
  std::cout << "Integrated excess removals: " << plan.integrated_removals
            << "\n";
  std::cout << "Schedule valid: " << (valid ? "yes" : "NO")
            << ", contamination-free: " << (clean ? "yes" : "NO") << "\n";
  return valid && clean ? 0 : 1;
}

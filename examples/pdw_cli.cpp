// pdw_cli — command-line front end of the library.
//
//   pdw_cli --benchmark PCR --method both --gantt
//   pdw_cli --all --csv
//   pdw_cli --benchmark IVD --no-type3 --no-integration --time-limit 4
//
// Runs PDW and/or DAWO on a Table-II benchmark (or all of them) and prints
// the paper's metrics, optionally as CSV or with an ASCII Gantt chart.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "assay/benchmarks.h"
#include "baseline/dawo.h"
#include "core/pipeline.h"
#include "core/schedule_delta.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/gantt.h"
#include "sim/metrics.h"
#include "sim/validator.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace pdw;

struct CliOptions {
  std::vector<assay::BenchmarkId> benchmarks;
  bool run_pdw = true;
  bool run_dawo = true;
  bool gantt = false;
  bool csv = false;
  std::string trace_out;    ///< Chrome trace JSON path (enables tracing)
  std::string metrics_out;  ///< metrics registry JSON path
  std::string flight_out;   ///< flight-recorder JSONL path (dump all solves)
  double flight_slow = 0;   ///< >0: dump only solves slower than this (s)
  std::vector<std::string> resolve_deltas;  ///< --resolve-delta specs, in order
  core::PdwOptions pdw;
};

void printUsage() {
  std::cout <<
      "usage: pdw_cli [options]\n"
      "  --benchmark NAME   one of: PCR, IVD, ProteinSplit, 'Kinase act-1',\n"
      "                     'Kinase act-2', Synthetic1..3 (repeatable)\n"
      "  --all              run every Table-II benchmark\n"
      "  --method M         pdw | dawo | both (default both)\n"
      "  --alpha/--beta/--gamma X   objective weights (default .3/.3/.4)\n"
      "  --time-limit S     scheduling-ILP budget in seconds (default 8)\n"
      "  --engine NAME      LP backend for both ILP stages: revised\n"
      "                     (default) | dense (tableau oracle)\n"
      "  --threads N        execution lanes (default 0 = hardware\n"
      "                     concurrency; results are identical for any N)\n"
      "  --cuts MODE        root cutting planes for both ILP stages:\n"
      "                     on (default) | off | gomory | cover (enable one\n"
      "                     separator family only; perf/ablation knob,\n"
      "                     plans are identical either way)\n"
      "  --no-type1|2|3     disable a necessity exemption (ablation)\n"
      "  --no-integration   disable removal integration\n"
      "  --no-ilp-paths     BFS wash paths instead of the ILP\n"
      "  --no-ilp-schedule  greedy insertion instead of the scheduling ILP\n"
      "  --resolve-delta S  after the PDW solve, replay a perturbation\n"
      "                     through the incremental resolver (repeatable;\n"
      "                     deltas compose in order). Spec forms:\n"
      "                       op:ID:SECONDS     delay operation ID\n"
      "                       task:ID:SECONDS   delay fluidic task ID\n"
      "                       block:X:Y         block cell (x, y)\n"
      "                       remove:ID         cancel waste-bound task ID\n"
      "  --gantt            print ASCII Gantt charts\n"
      "  --csv              machine-readable output\n"
      "  --trace-out=FILE   write a Chrome trace (chrome://tracing,\n"
      "                     ui.perfetto.dev) of the run; enables tracing\n"
      "  --metrics-out=FILE write the metrics registry as JSON\n"
      "  --flight-out=FILE  dump every ILP solve's flight recording (JSONL,\n"
      "                     pdw-flight-1); with --threads 1 the stream\n"
      "                     reconciles against the registry counters via\n"
      "                     obs_check --flight FILE --metrics M.json\n"
      "  --flight-slow=S    with --flight-out: record always but dump only\n"
      "                     solves slower than S seconds (or on budget)\n"
      "  --log-level LEVEL  trace|debug|info|warn|error|off (also via the\n"
      "                     PDW_LOG_LEVEL environment variable)\n"
      "  --log LEVEL        alias for --log-level\n";
}

/// Parse one --resolve-delta spec (see printUsage) into a ScheduleDelta.
bool parseDeltaSpec(const std::string& spec, core::ScheduleDelta* delta) {
  const std::vector<std::string> parts = util::split(spec, ':');
  const auto integer = [](const std::string& s, int* out) {
    if (s.empty() || s.size() > 9) return false;
    for (const char c : s)
      if (c < '0' || c > '9') return false;
    *out = std::atoi(s.c_str());
    return true;
  };
  int id = -1;
  if (parts.size() == 3 && (parts[0] == "op" || parts[0] == "task")) {
    const double seconds = std::atof(parts[2].c_str());
    if (!integer(parts[1], &id) || seconds <= 0.0) return false;
    if (parts[0] == "op")
      delta->op_delays.push_back({id, seconds});
    else
      delta->task_delays.push_back({id, seconds});
    return true;
  }
  if (parts.size() == 3 && parts[0] == "block") {
    int x = -1, y = -1;
    if (!integer(parts[1], &x) || !integer(parts[2], &y)) return false;
    delta->blocked_cells.push_back(arch::Cell{x, y});
    return true;
  }
  if (parts.size() == 2 && parts[0] == "remove") {
    if (!integer(parts[1], &id)) return false;
    delta->removed_tasks.push_back(id);
    return true;
  }
  return false;
}

std::optional<assay::BenchmarkId> parseBenchmark(const std::string& name) {
  for (assay::BenchmarkId id : assay::allBenchmarks())
    if (name == assay::toString(id)) return id;
  return std::nullopt;
}

std::optional<CliOptions> parseArgs(int argc, char** argv) {
  CliOptions options;
  const auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // --flag=value spelling: split once, so every flag accepts both forms.
    std::string inline_value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('=');
        eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    const auto value_of = [&](int& i) -> std::optional<std::string> {
      if (has_inline_value) return inline_value;
      const char* v = next(i);
      if (!v) return std::nullopt;
      return std::string(v);
    };
    if (arg == "--benchmark") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      const auto id = parseBenchmark(*value);
      if (!id) {
        std::cerr << "unknown benchmark '" << *value << "'\n";
        return std::nullopt;
      }
      options.benchmarks.push_back(*id);
    } else if (arg == "--all") {
      options.benchmarks = assay::allBenchmarks();
    } else if (arg == "--method") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      const std::string& m = *value;
      options.run_pdw = m == "pdw" || m == "both";
      options.run_dawo = m == "dawo" || m == "both";
      if (!options.run_pdw && !options.run_dawo) {
        std::cerr << "unknown method '" << m << "'\n";
        return std::nullopt;
      }
    } else if (arg == "--alpha" || arg == "--beta" || arg == "--gamma" ||
               arg == "--time-limit") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      const double x = std::atof(value->c_str());
      if (arg == "--alpha") options.pdw.alpha = x;
      else if (arg == "--beta") options.pdw.beta = x;
      else if (arg == "--gamma") options.pdw.gamma = x;
      else options.pdw.withScheduleBudget(x, 60000);
    } else if (arg == "--engine") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      options.pdw.withEngine(*value);
    } else if (arg == "--cuts") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      if (*value == "on") options.pdw.withCuts(true);
      else if (*value == "off") options.pdw.withCuts(false);
      else if (*value == "gomory") options.pdw.withCuts(true, false);
      else if (*value == "cover") options.pdw.withCuts(false, true);
      else {
        std::cerr << "unknown --cuts mode '" << *value
                  << "' (on|off|gomory|cover)\n";
        return std::nullopt;
      }
    } else if (arg == "--threads") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      options.pdw.withThreads(std::atoi(value->c_str()));
    } else if (arg == "--no-type1") {
      options.pdw.necessity.enable_type1 = false;
    } else if (arg == "--no-type2") {
      options.pdw.necessity.enable_type2 = false;
    } else if (arg == "--no-type3") {
      options.pdw.necessity.enable_type3 = false;
    } else if (arg == "--no-integration") {
      options.pdw.enable_integration = false;
    } else if (arg == "--no-ilp-paths") {
      options.pdw.use_ilp_paths = false;
    } else if (arg == "--no-ilp-schedule") {
      options.pdw.use_ilp_schedule = false;
    } else if (arg == "--resolve-delta") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      core::ScheduleDelta probe;  // validate the spec shape up front
      if (!parseDeltaSpec(*value, &probe)) {
        std::cerr << "bad --resolve-delta spec '" << *value
                  << "' (op:ID:SECONDS | task:ID:SECONDS | block:X:Y | "
                     "remove:ID)\n";
        return std::nullopt;
      }
      options.resolve_deltas.push_back(*value);
    } else if (arg == "--gantt") {
      options.gantt = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--trace-out") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      options.trace_out = *value;
    } else if (arg == "--metrics-out") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      options.metrics_out = *value;
    } else if (arg == "--flight-out") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      options.flight_out = *value;
    } else if (arg == "--flight-slow") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      options.flight_slow = std::atof(value->c_str());
    } else if (arg == "--log" || arg == "--log-level") {
      const auto value = value_of(i);
      if (!value) return std::nullopt;
      util::setLogLevel(util::parseLogLevel(*value));
    } else if (arg == "--help" || arg == "-h") {
      printUsage();
      std::exit(0);
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (options.benchmarks.empty())
    options.benchmarks.push_back(assay::BenchmarkId::Pcr);
  if (!options.flight_out.empty()) {
    obs::FlightConfig flight;
    flight.path = options.flight_out;
    if (options.flight_slow > 0) {
      flight.slow_solve_seconds = options.flight_slow;
    } else {
      flight.dump_all = true;
    }
    options.pdw.withFlightRecording(flight);
  } else if (options.flight_slow > 0) {
    std::cerr << "--flight-slow needs --flight-out\n";
    return std::nullopt;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parseArgs(argc, argv);
  if (!parsed) {
    printUsage();
    return 2;
  }
  const CliOptions& options = *parsed;
  if (!options.trace_out.empty()) obs::setTracingEnabled(true);

  util::Table table({"Benchmark", "Method", "N_wash", "L_wash (mm)",
                     "T_delay (s)", "T_assay (s)", "avg wait (s)",
                     "wash time (s)", "concurrency %", "valid"});

  bool all_valid = true;
  for (assay::BenchmarkId id : options.benchmarks) {
    const assay::Benchmark b = assay::makeBenchmark(id);
    synth::SynthResult base =
        synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));

    const auto report = [&](const char* method,
                            const wash::WashPlanResult& plan) {
      const sim::WashMetrics m =
          sim::computeMetrics(plan.schedule, base.schedule);
      sim::ValidatorOptions tol;
      tol.time_tol = 1e-4;
      const bool valid = sim::validateSchedule(plan.schedule, tol).ok();
      all_valid = all_valid && valid;
      table.addRow({b.name, method, util::format("%d", m.n_wash),
                    util::fixed(m.l_wash_mm, 0), util::fixed(m.t_delay, 1),
                    util::fixed(m.t_assay, 1), util::fixed(m.avg_wait, 2),
                    util::fixed(m.total_wash_time, 1),
                    util::fixed(m.wash_concurrency * 100, 0),
                    valid ? "yes" : "NO"});
      if (options.gantt) {
        std::cout << "\n" << b.name << " / " << method << ":\n"
                  << sim::renderGantt(plan.schedule);
      }
    };

    if (options.run_pdw) {
      Pipeline pipeline(options.pdw);
      report("PDW", pipeline.run(base.schedule).plan);
      // One-shot replay: each --resolve-delta composes on the previous one
      // through the resident pipeline, exactly like a pdwd resolve stream.
      int nth = 0;
      for (const std::string& spec : options.resolve_deltas) {
        core::ScheduleDelta delta;
        parseDeltaSpec(spec, &delta);  // shape was validated at parse time
        const PdwResult result = pipeline.resolve(delta);
        ++nth;
        if (!result.resolve.valid) {
          std::cerr << "resolve-delta " << nth << " (" << spec
                    << ") rejected: " << result.resolve.error << "\n";
          all_valid = false;
          continue;
        }
        report(("PDW+d" + std::to_string(nth)).c_str(), result.plan);
        std::cerr << "resolve-delta " << nth << " (" << spec << "): "
                  << result.resolve.frontier_cells << " frontier / "
                  << result.resolve.reused_cells << " reused cells, "
                  << result.resolve.routes_reused << " routes reused"
                  << (result.resolve.full_fallback ? ", full fallback" : "")
                  << "\n";
      }
    } else if (!options.resolve_deltas.empty()) {
      std::cerr << "--resolve-delta needs the PDW method\n";
      all_valid = false;
    }
    if (options.run_dawo) report("DAWO", baseline::runDawo(base.schedule));
  }

  if (options.csv) {
    table.renderCsv(std::cout);
  } else {
    table.render(std::cout);
  }

  if (!options.trace_out.empty()) {
    if (obs::writeTraceJson(options.trace_out)) {
      std::cerr << "trace written to " << options.trace_out
                << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
    } else {
      std::cerr << "failed to write trace to " << options.trace_out << "\n";
      all_valid = false;
    }
  }
  if (!options.flight_out.empty()) {
    // Solver lanes append their dumps themselves; just point at the file.
    std::cerr << "flight recordings (per dumped solve) in "
              << options.flight_out << "\n";
  }
  if (!options.metrics_out.empty()) {
    if (obs::Registry::instance().writeJson(options.metrics_out)) {
      std::cerr << "metrics written to " << options.metrics_out << "\n";
    } else {
      std::cerr << "failed to write metrics to " << options.metrics_out
                << "\n";
      all_valid = false;
    }
  }
  return all_valid ? 0 : 1;
}

// The paper's motivating example (Figs. 1-3): the 7-operation PCR-style
// assay on a chip with a filter, a mixer, a heater and two detectors
// (in1..in4 flow ports, out1..out4 waste ports).
//
// Prints the chip, the Table-I-style flow paths of the base schedule, the
// wash targets the necessity analysis finds (with their Type-1/2/3
// exemption counts), and the optimized schedule — the paper's Fig. 3
// counterpart, where washes run concurrently with other fluidic tasks and
// excess-fluid removals are integrated into washes.
#include <iostream>

#include "assay/benchmarks.h"
#include "baseline/dawo.h"
#include "core/pipeline.h"
#include "sim/metrics.h"
#include "synth/synthesizer.h"
#include "util/strings.h"
#include "wash/contamination.h"
#include "wash/necessity.h"

int main() {
  using namespace pdw;

  assay::Benchmark pcr = assay::makeBenchmark(assay::BenchmarkId::Pcr);
  synth::SynthResult base =
      synth::synthesizeOnChip(*pcr.graph, assay::makeMotivatingChip());

  std::cout << "Motivating chip (Fig. 2(a) style; M mixer, H heater, "
               "F filter, D detector, i flow port, o waste port):\n"
            << base.chip->render() << "\n";

  std::cout << "Flow paths of the base schedule (Table I style):\n";
  int transport = 0, removal = 0, waste = 0;
  for (const assay::FluidTask& t : base.schedule.tasks()) {
    std::string tag;
    switch (t.kind) {
      case assay::TaskKind::Transport:
        tag = util::format("#%d", ++transport);
        break;
      case assay::TaskKind::ExcessRemoval:
        tag = util::format("*%d", ++removal);
        break;
      case assay::TaskKind::WasteRemoval:
        tag = util::format("$%d", ++waste);
        break;
      case assay::TaskKind::Wash:
        tag = "w";
        break;
    }
    std::cout << "  " << tag << "  " << t.path.toString(base.chip.get())
              << "\n";
  }
  std::cout << "\nBase completion time: " << base.schedule.completionTime()
            << " s (no washes -> cross-contamination!)\n\n";

  // Necessity analysis detail (paper §II-A).
  const wash::ContaminationTracker tracker(base.schedule);
  const wash::NecessityResult necessity = analyzeWashNecessity(tracker);
  std::cout << "Wash-necessity analysis: " << necessity.stats.describe()
            << "\n";
  std::cout << "  (Type 1: never reused; Type 2: same-fluid reuse; "
               "Type 3: waste-bound reuse)\n\n";

  Pipeline pipeline;
  const wash::WashPlanResult pdw = pipeline.run(base.schedule).plan;
  const wash::WashPlanResult dawo = baseline::runDawo(base.schedule);

  std::cout << "PDW wash paths:\n";
  for (const assay::FluidTask& t : pdw.schedule.tasks())
    if (t.kind == assay::TaskKind::Wash)
      std::cout << "  w  [" << t.start << ".." << t.end << "s]  "
                << t.path.toString(base.chip.get()) << "\n";

  const sim::WashMetrics mp = sim::computeMetrics(pdw.schedule, base.schedule);
  const sim::WashMetrics md =
      sim::computeMetrics(dawo.schedule, base.schedule);
  std::cout << "\nPDW : " << mp.describe() << "\n";
  std::cout << "DAWO: " << md.describe() << "\n";
  std::cout << "Integrated excess removals (PDW): "
            << pdw.integrated_removals << "\n";
  std::cout << "\nPaper's Fig. 3 outcome on its testbed: 3 wash operations, "
               "3 integrated removals, 1 s completion delay.\n";
  return 0;
}

// Building a custom assay against the public API and comparing wash
// strategies side by side:
//   * DAWO            (demand-driven baseline)
//   * PDW, greedy     (necessity analysis + BFS paths + greedy insertion)
//   * PDW, full       (both ILP stages + removal integration)
// Demonstrates the knobs a downstream user can turn (PdwOptions' builder
// setters) through the pdw::Pipeline facade.
#include <iostream>

#include "assay/sequencing_graph.h"
#include "baseline/dawo.h"
#include "core/pipeline.h"
#include "sim/metrics.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "util/table.h"
#include "util/strings.h"

int main() {
  using namespace pdw;

  // A two-sample comparative protocol: both samples are prepared in
  // parallel on shared mixers, thermocycled, then cross-detected — plenty
  // of channel sharing, so wash strategy matters.
  assay::SequencingGraph graph("custom");
  const auto sample_a = graph.fluids().addReagent("sampleA");
  const auto sample_b = graph.fluids().addReagent("sampleB");
  const auto buffer_r = graph.fluids().addReagent("diluent");
  const auto dye = graph.fluids().addReagent("dye");

  const auto mix_a =
      graph.addOperation(assay::OpKind::Mix, 3.0, {sample_a, buffer_r});
  const auto mix_b =
      graph.addOperation(assay::OpKind::Mix, 3.0, {sample_b, buffer_r});
  const auto heat_a = graph.addOperation(assay::OpKind::Heat, 4.0);
  const auto heat_b = graph.addOperation(assay::OpKind::Heat, 4.0);
  const auto det_a = graph.addOperation(assay::OpKind::Detect, 5.0, {dye});
  const auto det_b = graph.addOperation(assay::OpKind::Detect, 5.0, {dye});
  const auto final_mix = graph.addOperation(assay::OpKind::Mix, 3.0);
  const auto final_det =
      graph.addOperation(assay::OpKind::Detect, 5.0, {dye});
  graph.addDependency(mix_a, heat_a);
  graph.addDependency(mix_b, heat_b);
  graph.addDependency(heat_a, det_a);
  graph.addDependency(heat_b, det_b);
  graph.addDependency(det_a, final_mix);
  graph.addDependency(det_b, final_mix);
  graph.addDependency(final_mix, final_det);

  // One shared mixer/heater/detector pair each: heavy resource sharing.
  const arch::DeviceLibrary library = {{arch::DeviceKind::Mixer, 2},
                                       {arch::DeviceKind::Heater, 1},
                                       {arch::DeviceKind::Detector, 2}};
  synth::SynthResult base =
      synth::synthesizeOnChip(graph, synth::placeChip(library));
  std::cout << "Base completion (wash-free): "
            << base.schedule.completionTime() << " s\n\n";

  struct Row {
    std::string name;
    sim::WashMetrics metrics;
    int integrated;
  };
  std::vector<Row> rows;

  {
    const wash::WashPlanResult r = baseline::runDawo(base.schedule);
    rows.push_back({"DAWO", sim::computeMetrics(r.schedule, base.schedule),
                    r.integrated_removals});
  }
  {
    Pipeline greedy(
        core::PdwOptions{}.withoutIlpPaths().withoutIlpSchedule());
    const PdwResult r = greedy.run(base.schedule);
    rows.push_back({"PDW (greedy)",
                    sim::computeMetrics(r.schedule(), base.schedule),
                    r.plan.integrated_removals});
  }
  {
    Pipeline full;
    const PdwResult r = full.run(base.schedule);
    rows.push_back({"PDW (full ILP)",
                    sim::computeMetrics(r.schedule(), base.schedule),
                    r.plan.integrated_removals});
  }

  util::Table table({"Method", "N_wash", "L_wash (mm)", "T_delay (s)",
                     "T_assay (s)", "avg wait (s)", "integrated"});
  for (const Row& row : rows) {
    table.addRow({row.name, util::format("%d", row.metrics.n_wash),
                  util::fixed(row.metrics.l_wash_mm, 0),
                  util::fixed(row.metrics.t_delay, 1),
                  util::fixed(row.metrics.t_assay, 1),
                  util::fixed(row.metrics.avg_wait, 2),
                  util::format("%d", row.integrated)});
  }
  table.render(std::cout);
  return 0;
}

// Quickstart: the minimal PathDriver-Wash workflow.
//
//   1. Describe a bioassay as a sequencing graph.
//   2. Synthesize a chip layout and a wash-oblivious base schedule.
//   3. Run PathDriver-Wash to get a contamination-safe, re-timed schedule.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "assay/sequencing_graph.h"
#include "core/pipeline.h"
#include "sim/metrics.h"
#include "synth/synthesizer.h"

int main() {
  using namespace pdw;

  // 1. A small protocol: mix two reagents, heat the mixture, mix the result
  //    with a third reagent, and read it out on a detector.
  assay::SequencingGraph graph("quickstart");
  const assay::FluidId sample = graph.fluids().addReagent("sample");
  const assay::FluidId reagent = graph.fluids().addReagent("reagent");
  const assay::FluidId dye = graph.fluids().addReagent("dye");

  const assay::OpId mix1 =
      graph.addOperation(assay::OpKind::Mix, 3.0, {sample, reagent});
  const assay::OpId heat =
      graph.addOperation(assay::OpKind::Heat, 5.0);
  const assay::OpId mix2 =
      graph.addOperation(assay::OpKind::Mix, 3.0, {dye});
  const assay::OpId detect =
      graph.addOperation(assay::OpKind::Detect, 4.0);
  graph.addDependency(mix1, heat);
  graph.addDependency(heat, mix2);
  graph.addDependency(mix2, detect);

  // 2. Architectural synthesis: places devices/ports on a virtual grid,
  //    binds operations, routes every fluidic task port-to-port.
  synth::SynthResult base = synth::synthesize(graph);
  std::cout << "Chip layout (" << base.chip->width() << "x"
            << base.chip->height() << "):\n"
            << base.chip->render() << "\n";
  std::cout << "Base schedule (no washes):\n"
            << base.schedule.describe() << "\n";

  // 3. PathDriver-Wash: necessity analysis, wash-path ILP, scheduling ILP —
  //    all behind the Pipeline facade, which also reports stage timings.
  Pipeline pipeline;
  const PdwResult result = pipeline.run(base.schedule);
  std::cout << "Washed schedule:\n" << result.schedule().describe() << "\n";

  const sim::WashMetrics metrics =
      sim::computeMetrics(result.schedule(), base.schedule);
  std::cout << "Necessity analysis: " << result.plan.necessity.describe()
            << "\n";
  std::cout << "Result: " << metrics.describe() << "\n";
  std::cout << "Integrated removals: " << result.plan.integrated_removals
            << "\n";
  std::cout << "Stage timings [s]: analysis " << result.timings.analysis_s
            << ", clustering " << result.timings.clustering_s << ", routing "
            << result.timings.routing_s << ", scheduling "
            << result.timings.scheduling_s << " (threads " << result.threads
            << ")\n";
  return 0;
}

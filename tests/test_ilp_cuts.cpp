// Cutting-plane and probing-presolve tests (ilp/cuts.h, ilp/presolve.h):
//  * Gomory mixed-integer cuts derived from either engine's optimal tableau
//    cut off the fractional vertex they came from but never an
//    integer-feasible point (brute-force checked),
//  * knapsack-cover cuts separate violated minimal covers and stay valid,
//  * the root separation loop never changes the MIP optimum (cuts on/off
//    solve equivalence) while shrinking the tree,
//  * probing fixes binaries whose one branch propagates to infeasibility,
//  * coefficient strengthening shrinks big-M coefficients without touching
//    the 0/1 solution set.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "ilp/cuts.h"
#include "ilp/lp_backend.h"
#include "ilp/model.h"
#include "ilp/presolve.h"
#include "ilp/solver.h"
#include "util/rng.h"

namespace pdw::ilp {
namespace {

double evalCut(const Cut& cut, const std::vector<double>& x) {
  double lhs = 0.0;
  for (const auto& [v, c] : cut.terms)
    lhs += c * x[static_cast<std::size_t>(v)];
  return lhs;
}

/// Every 0/1 assignment of the model's variables that is model-feasible
/// (all variables must be binary; brute force, so keep n small).
std::vector<std::vector<double>> feasibleBinaryPoints(const Model& model) {
  const int n = model.numVars();
  std::vector<std::vector<double>> points;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) x[static_cast<std::size_t>(j)] = (mask >> j) & 1;
    if (model.isFeasible(x)) points.push_back(std::move(x));
  }
  return points;
}

std::vector<double> lowerBounds(const Model& model) {
  std::vector<double> out;
  for (const Variable& v : model.vars()) out.push_back(v.lower);
  return out;
}

std::vector<double> upperBounds(const Model& model) {
  std::vector<double> out;
  for (const Variable& v : model.vars()) out.push_back(v.upper);
  return out;
}

class CutsEngineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CutsEngineTest, GmiCutsOffFractionalVertexKeepsIntegerPoints) {
  // min -2x - y  s.t. 2x + 2y <= 3, x,y binary. Unique LP optimum
  // (1, 0.5): x at its upper bound, y basic and fractional. The GMI cut
  // from y's tableau row must cut the vertex off while every feasible 0/1
  // point — (0,0), (1,0), (0,1) — survives.
  Model m;
  const VarId x = m.addBinary("x");
  const VarId y = m.addBinary("y");
  m.addLessEqual(2.0 * LinExpr(x) + 2.0 * LinExpr(y), 3.0);
  m.setObjective(-2.0 * LinExpr(x) - 1.0 * LinExpr(y));

  SolveParams params;
  const auto backend = makeLpBackend(GetParam(), m, params);
  const LpResult lp = backend->coldSolve(lowerBounds(m), upperBounds(m));
  ASSERT_EQ(lp.status, LpStatus::Optimal);
  EXPECT_NEAR(lp.values[static_cast<std::size_t>(x)], 1.0, 1e-7);
  EXPECT_NEAR(lp.values[static_cast<std::size_t>(y)], 0.5, 1e-7);

  LpBackend::TableauRowView view;
  ASSERT_TRUE(backend->tableauRow(y, &view)) << GetParam();
  const std::optional<Cut> cut = gmiCut(view, y, m, 1e-6);
  ASSERT_TRUE(cut.has_value()) << GetParam();

  EXPECT_GT(evalCut(*cut, lp.values), cut->rhs + 1e-6)
      << "cut must cut off the fractional vertex";
  for (const std::vector<double>& p : feasibleBinaryPoints(m))
    EXPECT_LE(evalCut(*cut, p), cut->rhs + 1e-7)
        << "cut removed integer point (" << p[0] << ", " << p[1] << ")";
}

TEST_P(CutsEngineTest, GmiValidOnRandomKnapsacks) {
  // Randomized sweep: on small random knapsacks, derive a GMI cut from
  // every fractional basic structural variable of the optimal tableau and
  // brute-force check it against all feasible 0/1 points.
  util::Rng rng(99);
  int cuts_checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 6 + static_cast<int>(rng.intIn(0, 4));  // 6..10 binaries
    Model m;
    LinExpr weight, value;
    double capacity = 0;
    for (int j = 0; j < n; ++j) {
      const VarId v = m.addBinary();
      const double w = static_cast<double>(rng.intIn(1, 15));
      weight += w * LinExpr(v);
      value += static_cast<double>(rng.intIn(1, 20)) * LinExpr(v);
      capacity += w;
    }
    m.addLessEqual(weight, std::floor(capacity * 0.45));
    m.setObjective(-1.0 * value);

    SolveParams params;
    const auto backend = makeLpBackend(GetParam(), m, params);
    const LpResult lp = backend->coldSolve(lowerBounds(m), upperBounds(m));
    if (lp.status != LpStatus::Optimal) continue;

    const std::vector<std::vector<double>> points = feasibleBinaryPoints(m);
    for (VarId v = 0; v < m.numVars(); ++v) {
      const double val = lp.values[static_cast<std::size_t>(v)];
      if (std::abs(val - std::round(val)) < 1e-6) continue;
      LpBackend::TableauRowView view;
      if (!backend->tableauRow(v, &view)) continue;
      const std::optional<Cut> cut = gmiCut(view, v, m, 1e-6);
      if (!cut) continue;
      ++cuts_checked;
      EXPECT_GT(evalCut(*cut, lp.values), cut->rhs - 1e-9)
          << "trial " << trial << " var " << v;
      for (const std::vector<double>& p : points)
        ASSERT_LE(evalCut(*cut, p), cut->rhs + 1e-7)
            << "trial " << trial << " var " << v
            << ": GMI cut removed a feasible integer point";
    }
  }
  EXPECT_GT(cuts_checked, 5) << "sweep separated almost no cuts";
}

INSTANTIATE_TEST_SUITE_P(BothEngines, CutsEngineTest,
                         ::testing::Values("revised", "dense"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(CoverCuts, SeparatesViolatedMinimalCover) {
  // 3a + 4b + 2c <= 6. LP point (1, 0.75, 0) violates the cover {a, b}
  // (weight 7 > 6): a + b <= 1 is valid and cuts the point off.
  Model m;
  const VarId a = m.addBinary("a");
  const VarId b = m.addBinary("b");
  m.addBinary("c");
  m.addLessEqual(3.0 * LinExpr(a) + 4.0 * LinExpr(b), 6.0);

  const std::vector<double> x = {1.0, 0.75, 0.0};
  std::vector<Cut> cuts;
  coverCuts(m, x, &cuts);
  ASSERT_FALSE(cuts.empty());
  const std::vector<std::vector<double>> points = feasibleBinaryPoints(m);
  for (const Cut& cut : cuts) {
    EXPECT_EQ(cut.family, CutFamily::Cover);
    EXPECT_GT(evalCut(cut, x), cut.rhs + 1e-6);
    for (const std::vector<double>& p : points)
      EXPECT_LE(evalCut(cut, p), cut.rhs + 1e-7)
          << "cover cut removed a feasible integer point";
  }
}

TEST(CoverCuts, HandlesNegativeCoefficientsByComplementing) {
  // 4a - 3b <= 1 complements b (z = 1 - b): 4a + 3z <= 4. The fractional
  // point (0.9, 0.2) violates the cover {a, z}; the emitted cut (with b
  // substituted back) must hold on all four feasible 0/1 points.
  Model m;
  const VarId a = m.addBinary("a");
  const VarId b = m.addBinary("b");
  m.addLessEqual(4.0 * LinExpr(a) - 3.0 * LinExpr(b), 1.0);

  const std::vector<double> x = {0.9, 0.2};
  std::vector<Cut> cuts;
  coverCuts(m, x, &cuts);
  ASSERT_FALSE(cuts.empty());
  for (const Cut& cut : cuts) {
    EXPECT_GT(evalCut(cut, x), cut.rhs + 1e-6);
    for (const std::vector<double>& p : feasibleBinaryPoints(m))
      EXPECT_LE(evalCut(cut, p), cut.rhs + 1e-7);
  }
}

TEST(CutPoolTest, DeduplicatesScaledRederivations) {
  CutPool pool;
  Cut cut;
  cut.terms = {{0, 1.0}, {2, -0.5}};
  cut.rhs = 1.0;
  EXPECT_TRUE(pool.add(cut));
  EXPECT_FALSE(pool.add(cut)) << "exact duplicate must be rejected";
  Cut scaled;  // same halfspace, scaled by 2: also a duplicate
  scaled.terms = {{0, 2.0}, {2, -1.0}};
  scaled.rhs = 2.0;
  EXPECT_FALSE(pool.add(scaled));
  Cut other;
  other.terms = {{0, 1.0}, {3, -0.5}};
  other.rhs = 1.0;
  EXPECT_TRUE(pool.add(other));
  EXPECT_EQ(pool.size(), 2u);
}

/// Cuts must never change the optimum, only the tree size.
TEST(CutsSolve, OnOffObjectiveEquivalence) {
  util::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 8 + static_cast<int>(rng.intIn(0, 6));
    Model m;
    LinExpr weight, value;
    double capacity = 0;
    for (int j = 0; j < n; ++j) {
      const VarId v = m.addBinary();
      const double w = static_cast<double>(rng.intIn(1, 20));
      weight += w * LinExpr(v);
      value += static_cast<double>(rng.intIn(1, 30)) * LinExpr(v);
      capacity += w;
    }
    m.addLessEqual(weight, capacity * 0.4);
    m.setObjective(-1.0 * value);

    SolveParams with_cuts;
    SolveParams without = with_cuts;
    without.cuts.enabled = false;
    without.probing = false;
    without.coef_tightening = false;
    without.branch_rule = BranchRule::MostFractional;

    const Solution a = solve(m, with_cuts);
    const Solution b = solve(m, without);
    ASSERT_EQ(a.status, SolveStatus::Optimal) << "trial " << trial;
    ASSERT_EQ(b.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
  }
}

TEST(CutsSolve, RootSeparationReportsStats) {
  // 2x + 2y <= 3 with min -2x - y has the fractional root (1, 0.5); the
  // cover {x, y} (and usually a GMI) must fire, and the stats must
  // propagate into the solution.
  Model m;
  const VarId x = m.addBinary("x");
  const VarId y = m.addBinary("y");
  m.addLessEqual(2.0 * LinExpr(x) + 2.0 * LinExpr(y), 3.0);
  m.setObjective(-2.0 * LinExpr(x) - 1.0 * LinExpr(y));

  SolveParams params;
  params.enable_presolve = false;  // keep the fractional root intact
  const Solution s = solve(m, params);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-6);
  EXPECT_GE(s.stats.cuts_added, 1);
  EXPECT_GE(s.stats.cut_rounds, 1);
  EXPECT_EQ(s.stats.cuts_added, s.stats.cuts_gomory + s.stats.cuts_cover);
}

TEST(Probing, FixesBinaryWhoseBranchPropagatesInfeasible) {
  // x=1 forces y=1 (y >= x) and z=1 (z >= x), but y + z <= 1 — so probing
  // must fix x=0 permanently. Plain activity propagation cannot see this:
  // no single row tightens any bound on its own.
  Model m;
  const VarId x = m.addBinary("x");
  const VarId y = m.addBinary("y");
  const VarId z = m.addBinary("z");
  m.addGreaterEqual(LinExpr(y) - LinExpr(x), 0.0);
  m.addGreaterEqual(LinExpr(z) - LinExpr(x), 0.0);
  m.addLessEqual(LinExpr(y) + LinExpr(z), 1.0);
  m.setObjective(-1.0 * LinExpr(x) - 1.0 * LinExpr(y));

  Model probed = m;
  PresolveOptions options;
  const PresolveResult r = presolve(probed, options);
  EXPECT_FALSE(r.infeasible);
  EXPECT_GE(r.probed_fixings, 1);
  EXPECT_DOUBLE_EQ(probed.var(x).upper, 0.0) << "x must be fixed to 0";

  // The reduced model solves to the same optimum as the original.
  const Solution full = solve(m, SolveParams{});
  ASSERT_EQ(full.status, SolveStatus::Optimal);
  EXPECT_NEAR(full.objective, -1.0, 1e-6);  // x=0, y=1 (or z): obj -1
  EXPECT_NEAR(full.values[static_cast<std::size_t>(x)], 0.0, 1e-6);
}

TEST(Probing, DetectsInfeasibleModel) {
  // Both probe directions of x die: x=1 violates the pair row as above,
  // x=0 violates x >= 1 - 0*... via the row x + y >= 2 with y <= 1 - x
  // style chain. Simplest: x=1 infeasible by the chain, x=0 infeasible by
  // a direct row x >= 1 (which propagation applies before probing).
  Model m;
  const VarId x = m.addBinary("x");
  const VarId y = m.addBinary("y");
  const VarId z = m.addBinary("z");
  m.addGreaterEqual(LinExpr(y) - LinExpr(x), 0.0);
  m.addGreaterEqual(LinExpr(z) - LinExpr(x), 0.0);
  m.addLessEqual(LinExpr(y) + LinExpr(z), 1.0);
  m.addGreaterEqual(LinExpr(x), 1.0);  // forces x = 1: contradiction

  Model probed = m;
  PresolveOptions options;
  const PresolveResult r = presolve(probed, options);
  EXPECT_TRUE(r.infeasible);

  const Solution s = solve(m, SolveParams{});
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Probing, JoinedBoundsTightenAcrossBranches) {
  // Both branches of x force w >= 2: x=0 -> w >= 2 (row w + 5x >= 2),
  // x=1 -> w >= 3 (row w - 3x >= 0 gives w >= 3... actually w >= 3 only
  // when x=1; when x=0 it gives w >= 0). Joined lower bound:
  // min(2, 3) = 2 > 0, which activity propagation alone cannot prove.
  Model m;
  const VarId x = m.addBinary("x");
  const VarId w = m.addContinuous(0.0, 10.0, "w");
  m.addGreaterEqual(LinExpr(w) + 5.0 * LinExpr(x), 2.0);
  m.addGreaterEqual(LinExpr(w) - 3.0 * LinExpr(x), 0.0);

  Model probed = m;
  PresolveOptions options;
  const PresolveResult r = presolve(probed, options);
  EXPECT_FALSE(r.infeasible);
  EXPECT_GE(probed.var(w).lower, 2.0 - 1e-9);
  EXPECT_GE(r.probed_bounds, 1);
}

TEST(CoefStrengthening, ShrinksPositiveBigM) {
  // 10x + y <= 12 with y in [0, 5]: when x = 0 the row is slack by
  // 12 - 5 = 7, so the x coefficient shrinks by 7 to 3 and the rhs to 5.
  // Both 0/1 faces are preserved (x=0: y <= 5; x=1: y <= 2).
  Model m;
  const VarId x = m.addBinary("x");
  const VarId y = m.addContinuous(0.0, 5.0, "y");
  const ConstraintId row =
      m.addLessEqual(10.0 * LinExpr(x) + LinExpr(y), 12.0);
  m.setObjective(-1.0 * LinExpr(y) - 0.1 * LinExpr(x));

  Model tight = m;
  PresolveOptions options;
  options.probing = false;
  const PresolveResult r = presolve(tight, options);
  EXPECT_FALSE(r.infeasible);
  EXPECT_GE(r.coefficients_tightened, 1);
  EXPECT_NEAR(tight.constraint(row).expr.coefficient(x), 3.0, 1e-9);
  EXPECT_NEAR(tight.constraint(row).rhs, 5.0, 1e-9);

  const Solution a = solve(m, SolveParams{});
  const Solution b = solve(tight, SolveParams{});
  ASSERT_EQ(a.status, SolveStatus::Optimal);
  ASSERT_EQ(b.status, SolveStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
}

TEST(CoefStrengthening, ShrinksNegativeBigMIndicator) {
  // y <= 100x (y - 100x <= 0) with y in [0, 5]: the classic indicator
  // big-M. The x coefficient must tighten from -100 to -5.
  Model m;
  const VarId y = m.addContinuous(0.0, 5.0, "y");
  const VarId x = m.addBinary("x");
  const ConstraintId row =
      m.addLessEqual(LinExpr(y) - 100.0 * LinExpr(x), 0.0);
  m.setObjective(-1.0 * LinExpr(y) + 0.5 * LinExpr(x));

  Model tight = m;
  PresolveOptions options;
  options.probing = false;
  const PresolveResult r = presolve(tight, options);
  EXPECT_FALSE(r.infeasible);
  EXPECT_GE(r.coefficients_tightened, 1);
  EXPECT_NEAR(tight.constraint(row).expr.coefficient(x), -5.0, 1e-9);

  const Solution a = solve(m, SolveParams{});
  const Solution b = solve(tight, SolveParams{});
  ASSERT_EQ(a.status, SolveStatus::Optimal);
  ASSERT_EQ(b.status, SolveStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
  EXPECT_NEAR(a.objective, -4.5, 1e-6);  // x=1, y=5
}

TEST(BranchRuleTest, PseudocostAndMostFractionalAgreeOnOptimum) {
  util::Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 10;
    Model m;
    LinExpr weight, value;
    double capacity = 0;
    for (int j = 0; j < n; ++j) {
      const VarId v = m.addBinary();
      const double w = static_cast<double>(rng.intIn(1, 12));
      weight += w * LinExpr(v);
      value += static_cast<double>(rng.intIn(1, 25)) * LinExpr(v);
      capacity += w;
    }
    m.addLessEqual(weight, capacity * 0.5);
    m.setObjective(-1.0 * value);

    SolveParams pc;
    pc.branch_rule = BranchRule::Pseudocost;
    SolveParams mf = pc;
    mf.branch_rule = BranchRule::MostFractional;
    const Solution a = solve(m, pc);
    const Solution b = solve(m, mf);
    ASSERT_EQ(a.status, SolveStatus::Optimal);
    ASSERT_EQ(b.status, SolveStatus::Optimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace pdw::ilp

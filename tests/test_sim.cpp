// Validator fault-injection and metric-computation tests: every invariant
// the validator enforces is violated on purpose once.
#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/validator.h"

namespace pdw::sim {
namespace {

using arch::Cell;

/// Tiny valid fixture: one mixer on a corridor, one op, one injection.
class SimFixture : public ::testing::Test {
 protected:
  SimFixture() : chip_(7, 3, 3.0), graph_("sim") {
    chip_.addFlowPort({0, 1}, "in");
    mixer_ = chip_.addDevice(arch::DeviceKind::Mixer, {3, 1}, "mixer");
    chip_.addWastePort({6, 1}, "out");
    r_ = graph_.fluids().addReagent("r");
    op_ = graph_.addOperation(assay::OpKind::Mix, 3.0, {r_});
  }

  arch::FlowPath corridor() {
    return arch::FlowPath(
        {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 1}});
  }

  assay::AssaySchedule makeValid() {
    assay::AssaySchedule s(&graph_, &chip_);
    assay::FluidTask inject;
    inject.kind = assay::TaskKind::Transport;
    inject.fluid = r_;
    inject.consumer = op_;
    inject.path = corridor();
    inject.payload_begin = 0;
    inject.payload_end = 3;
    inject.start = 0;
    inject.end = 2;
    s.addTask(inject);
    s.addOpSchedule({op_, mixer_, 2.0, 5.0});
    return s;
  }

  arch::ChipLayout chip_;
  assay::SequencingGraph graph_;
  arch::DeviceId mixer_ = -1;
  assay::FluidId r_ = -1;
  assay::OpId op_ = -1;
};

TEST_F(SimFixture, ValidScheduleIsClean) {
  const ValidationResult v = validateSchedule(makeValid());
  EXPECT_TRUE(v.ok()) << v.summary();
  EXPECT_EQ(v.summary(), "ok");
}

TEST_F(SimFixture, DetectsTooShortOperation) {
  auto s = makeValid();
  s.opSchedule(op_).end = s.opSchedule(op_).start + 1.0;  // needs 3 s
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("shorter than"), std::string::npos);
}

TEST_F(SimFixture, DetectsMissingOperation) {
  assay::AssaySchedule s(&graph_, &chip_);
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("missing"), std::string::npos);
}

TEST_F(SimFixture, DetectsWrongDeviceKind) {
  auto s = makeValid();
  // Bind the mix op to... there is only a mixer; fake by re-typing the op's
  // schedule to a second device of wrong kind.
  const auto heater = chip_.addDevice(arch::DeviceKind::Heater, {5, 0});
  s.opSchedule(op_).device = heater;
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("wrong device kind"), std::string::npos);
}

TEST_F(SimFixture, DetectsTransportAfterConsumerStart) {
  auto s = makeValid();
  s.task(0).end = 2.5;  // op starts at 2.0
  const assay::Operation& op = graph_.op(op_);
  (void)op;
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
}

TEST_F(SimFixture, DetectsDisconnectedPath) {
  auto s = makeValid();
  s.task(0).path = arch::FlowPath({{0, 1}, {3, 1}, {6, 1}});  // teleports
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("disconnected"), std::string::npos);
}

TEST_F(SimFixture, DetectsNonPortEndpoints) {
  auto s = makeValid();
  s.task(0).path = arch::FlowPath({{1, 1}, {2, 1}, {3, 1}});
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("port-to-port"), std::string::npos);
}

TEST_F(SimFixture, DetectsSpatialTemporalConflict) {
  auto s = makeValid();
  assay::FluidTask clash;
  clash.kind = assay::TaskKind::ExcessRemoval;
  clash.fluid = r_;
  clash.path = corridor();
  clash.start = 1.0;  // overlaps the injection [0, 2)
  clash.end = 3.0;
  s.addTask(clash);
  // Give the op more room so only the task conflict fires.
  s.opSchedule(op_).start = 4.0;
  s.opSchedule(op_).end = 7.0;
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("conflict in space and time"),
            std::string::npos);
}

TEST_F(SimFixture, ZeroDurationTasksDoNotConflict) {
  auto s = makeValid();
  assay::FluidTask integrated;
  integrated.kind = assay::TaskKind::ExcessRemoval;
  integrated.fluid = r_;
  integrated.path = corridor();
  integrated.start = 1.0;
  integrated.end = 1.0;  // integrated into a wash: zero duration
  s.addTask(integrated);
  const ValidationResult v = validateSchedule(s);
  EXPECT_TRUE(v.ok()) << v.summary();
}

TEST_F(SimFixture, DetectsTaskCrossingRunningOp) {
  auto s = makeValid();
  assay::FluidTask crossing;
  crossing.kind = assay::TaskKind::Wash;
  crossing.fluid = graph_.fluids().buffer();
  crossing.path = corridor();  // contains the mixer cell
  crossing.start = 3.0;        // op runs [2, 5)
  crossing.end = 4.0;
  s.addTask(crossing);
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("crosses device of running op"),
            std::string::npos);
}

TEST_F(SimFixture, DetectsDeviceDoubleBooking) {
  auto s = makeValid();
  const assay::OpId second = graph_.addOperation(assay::OpKind::Mix, 2.0);
  s.addOpSchedule({second, mixer_, 3.0, 5.0});  // overlaps op_ [2, 5)
  const ValidationResult v = validateSchedule(s);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.summary().find("overlap on device"), std::string::npos);
}

TEST_F(SimFixture, MetricsComputation) {
  auto base = makeValid();
  auto washed = makeValid();
  // Add one wash and shift the op by 2 s.
  assay::FluidTask washTask;
  washTask.kind = assay::TaskKind::Wash;
  washTask.fluid = graph_.fluids().buffer();
  washTask.path = corridor();
  washTask.start = 2.0;
  washTask.end = 4.0;
  washed.addTask(washTask);
  washed.opSchedule(op_).start = 4.0;
  washed.opSchedule(op_).end = 7.0;

  const WashMetrics m = computeMetrics(washed, base);
  EXPECT_EQ(m.n_wash, 1);
  EXPECT_DOUBLE_EQ(m.l_wash_mm, 6 * 3.0);  // 6 edges * 3mm pitch
  EXPECT_DOUBLE_EQ(m.t_assay, 7.0);
  EXPECT_DOUBLE_EQ(m.t_delay, 2.0);
  EXPECT_DOUBLE_EQ(m.avg_wait, 2.0);
  EXPECT_DOUBLE_EQ(m.total_wash_time, 2.0);
  EXPECT_FALSE(m.describe().empty());
}

TEST_F(SimFixture, MetricsClampNegativeDelay) {
  auto base = makeValid();
  auto washed = makeValid();
  washed.opSchedule(op_).start = 1.0;  // somehow faster than base
  washed.opSchedule(op_).end = 4.0;
  const WashMetrics m = computeMetrics(washed, base);
  EXPECT_DOUBLE_EQ(m.t_delay, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_wait, 0.0);
}

}  // namespace
}  // namespace pdw::sim

// pdw::obs — flight recorder ring/dump semantics, run-record store
// round-trips, and the diffRuns regression comparator.
//
// The solver-integration test drives a real (tiny) MILP with a
// zero-seconds slow-solve threshold and asserts the lane dumped a valid
// `pdw-flight-1` block whose header counts reconcile with the retained
// events — the same invariants tools/obs_check --flight enforces on full
// benchmark runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ilp/solver.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/runs.h"

namespace pdw {
namespace {

using obs::FlightConfig;
using obs::FlightEventKind;
using obs::FlightRecorder;

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "pdw_" + name;
}

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// ---- flight recorder ring ------------------------------------------------

TEST(FlightRecorder, RingOverflowKeepsLatestWithExactCounts) {
  FlightConfig config;
  config.enabled = true;
  config.ring_capacity = 8;
  FlightRecorder rec(config, "canonical");

  for (int i = 0; i < 20; ++i)
    rec.record(FlightEventKind::NodeOpen, /*node=*/i, /*value=*/double(i));
  rec.record(FlightEventKind::Incumbent, -1, 42.0);

  // Counts are exact regardless of overflow.
  EXPECT_EQ(rec.count(FlightEventKind::NodeOpen), 20);
  EXPECT_EQ(rec.count(FlightEventKind::Incumbent), 1);
  EXPECT_EQ(rec.recorded(), 21);
  EXPECT_EQ(rec.retained(), 8u);
  EXPECT_EQ(rec.dropped(), 13);

  // The ring keeps the LATEST events, oldest-first: NodeOpen 13..19 then
  // the Incumbent, with strictly increasing sequence numbers.
  for (std::size_t i = 0; i + 1 < rec.retained(); ++i) {
    EXPECT_LT(rec.event(i).seq, rec.event(i + 1).seq);
  }
  EXPECT_EQ(rec.event(0).kind, FlightEventKind::NodeOpen);
  EXPECT_EQ(rec.event(0).node, 13);
  EXPECT_EQ(rec.event(rec.retained() - 1).kind, FlightEventKind::Incumbent);
  EXPECT_DOUBLE_EQ(rec.event(rec.retained() - 1).value, 42.0);
}

TEST(FlightRecorder, ShouldDumpPolicy) {
  FlightConfig config;
  config.enabled = true;
  config.dump_all = false;
  config.dump_on_limit = true;
  config.slow_solve_seconds = 1.0;

  // Empty path: never dump, whatever the trigger.
  EXPECT_FALSE(FlightRecorder(config, "canonical").shouldDump(true, 99.0));

  config.path = tempPath("never_written.jsonl");
  const FlightRecorder rec(config, "canonical");
  EXPECT_TRUE(rec.shouldDump(/*hit_limit=*/true, 0.0));   // budget trigger
  EXPECT_TRUE(rec.shouldDump(false, 2.0));                // slow trigger
  EXPECT_FALSE(rec.shouldDump(false, 0.5));               // fast, no limit

  FlightConfig all = config;
  all.dump_all = true;
  EXPECT_TRUE(FlightRecorder(all, "canonical").shouldDump(false, 0.0));
}

TEST(FlightRecorder, DumpRoundTripReconciles) {
  const std::string path = tempPath("flight_roundtrip.jsonl");
  std::remove(path.c_str());

  FlightConfig config;
  config.enabled = true;
  config.path = path;
  config.dump_all = true;
  config.ring_capacity = 4;  // force drops: 6 recorded, 4 retained
  FlightRecorder rec(config, "diver");
  rec.record(FlightEventKind::SolveBegin, 0, 10.0, 3.0);
  for (int i = 0; i < 4; ++i) rec.record(FlightEventKind::NodeOpen, i);
  rec.record(FlightEventKind::NodePruned, 3, -5.0,
             obs::kPruneReasonLpBound);
  ASSERT_TRUE(rec.dump("optimal", 0.25));

  const std::vector<std::string> lines = readLines(path);
  ASSERT_EQ(lines.size(), 1u + rec.retained());

  const auto header = obs::json::parse(lines[0]);
  ASSERT_TRUE(header && header->isObject());
  EXPECT_EQ(header->find("type")->string, "solve");
  EXPECT_EQ(header->find("schema")->string, "pdw-flight-1");
  EXPECT_EQ(header->find("lane")->string, "diver");
  EXPECT_EQ(header->find("status")->string, "optimal");
  EXPECT_DOUBLE_EQ(header->find("wall_seconds")->number, 0.25);
  EXPECT_DOUBLE_EQ(header->find("dropped")->number, 2.0);
  EXPECT_DOUBLE_EQ(header->find("events")->number, 4.0);

  // Header counts are the EXACT per-kind totals; their sum must equal
  // dropped + retained events (the obs_check reconciliation invariant).
  const obs::json::Value* counts = header->find("counts");
  ASSERT_TRUE(counts && counts->isObject());
  EXPECT_DOUBLE_EQ(counts->find("solve_begin")->number, 1.0);
  EXPECT_DOUBLE_EQ(counts->find("node_open")->number, 4.0);
  EXPECT_DOUBLE_EQ(counts->find("node_pruned")->number, 1.0);
  double counts_sum = 0.0;
  for (const auto& [kind, value] : counts->object) counts_sum += value.number;
  EXPECT_DOUBLE_EQ(counts_sum, header->find("dropped")->number +
                                   header->find("events")->number);

  // Event lines: known kinds, strictly increasing seq, oldest first.
  double prev_seq = -1.0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto event = obs::json::parse(lines[i]);
    ASSERT_TRUE(event && event->isObject()) << lines[i];
    EXPECT_EQ(event->find("type")->string, "event");
    EXPECT_GT(event->find("seq")->number, prev_seq);
    prev_seq = event->find("seq")->number;
  }
  const auto last = obs::json::parse(lines.back());
  EXPECT_EQ(last->find("kind")->string, "node_pruned");
  EXPECT_DOUBLE_EQ(last->find("extra")->number, obs::kPruneReasonLpBound);
  std::remove(path.c_str());
}

// ---- run-record store ----------------------------------------------------

obs::RunRecord makeRecord(const std::string& label,
                          const std::string& git_sha, double wall,
                          double iterations) {
  obs::RunRecord record;
  record.label = label;
  record.bench = "test_bench";
  record.timestamp = "2026-08-09T00:00:00Z";
  record.git_sha = git_sha;
  record.build = "Test GNU";
  record.engine = "revised";
  record.config = "engine=revised";
  obs::RunRow row;
  row.name = "knapsack_small";
  row.family = "synthetic";
  row.values = {{"wall_seconds", wall}, {"simplex_iterations", iterations}};
  record.rows.push_back(std::move(row));
  return record;
}

TEST(RunStore, AppendReloadLatestLabelWins) {
  const std::string path = tempPath("run_store.jsonl");
  std::remove(path.c_str());
  const obs::RunStore store(path);

  ASSERT_TRUE(store.append(makeRecord("main", "aaaa111", 1.0, 100)));
  ASSERT_TRUE(store.append(makeRecord("pr", "bbbb222", 1.5, 140)));
  ASSERT_TRUE(store.append(makeRecord("main", "cccc333", 0.9, 90)));

  const std::vector<obs::RunRecord> all = store.loadAll();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].git_sha, "aaaa111");
  EXPECT_EQ(all[0].engine, "revised");
  EXPECT_EQ(all[0].rows.size(), 1u);
  EXPECT_DOUBLE_EQ(all[0].rows[0].value("wall_seconds"), 1.0);

  // findLabel returns the LATEST record of a label (appends supersede).
  const auto latest = store.findLabel("main");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->git_sha, "cccc333");
  EXPECT_FALSE(store.findLabel("nonexistent").has_value());
  std::remove(path.c_str());
}

TEST(RunStore, DiffDetectsRegressionAboveThreshold) {
  const obs::RunRecord base = makeRecord("base", "a", 1.0, 100);
  const obs::RunRecord slower = makeRecord("cur", "b", 1.25, 104);

  obs::DiffThresholds thresholds;  // 10%, {wall_seconds, simplex_iterations}
  const obs::RunDiff diff = obs::diffRuns(base, slower, thresholds);
  ASSERT_EQ(diff.common_rows, 1);
  ASSERT_EQ(diff.rows.size(), 2u);  // one per metric
  EXPECT_TRUE(diff.anyRegression());
  EXPECT_EQ(diff.regressions, 1);  // wall +25% regresses, iterations +4% not
  const obs::RowDiff& wall = diff.rows[0].metric == "wall_seconds"
                                 ? diff.rows[0]
                                 : diff.rows[1];
  EXPECT_TRUE(wall.regressed);
  EXPECT_NEAR(wall.pct, 25.0, 1e-9);

  // Within threshold: no regression.
  const obs::RunDiff ok =
      obs::diffRuns(base, makeRecord("cur", "b", 1.05, 100), thresholds);
  EXPECT_FALSE(ok.anyRegression());
}

TEST(RunStore, DiffNoiseFloorAndInfinityAndAlignment) {
  obs::DiffThresholds thresholds;  // min_wall_seconds = 0.05

  // Both sides under the wall noise floor: a 2x blowup is still jitter.
  const obs::RunDiff noise = obs::diffRuns(makeRecord("b", "a", 0.010, 50),
                                           makeRecord("c", "b", 0.020, 50),
                                           thresholds);
  EXPECT_FALSE(noise.anyRegression());

  // Zero baseline growing to nonzero: +inf percent, regressed (iterations
  // have no noise floor).
  const obs::RunDiff inf = obs::diffRuns(makeRecord("b", "a", 0.5, 0),
                                         makeRecord("c", "b", 0.5, 10),
                                         thresholds);
  ASSERT_TRUE(inf.anyRegression());
  bool saw_inf = false;
  for (const obs::RowDiff& row : inf.rows)
    if (row.metric == "simplex_iterations") {
      EXPECT_TRUE(std::isinf(row.pct));
      EXPECT_TRUE(row.regressed);
      saw_inf = true;
    }
  EXPECT_TRUE(saw_inf);

  // Rows present on only one side are ignored — they cannot regress.
  obs::RunRecord extra = makeRecord("cur", "b", 99.0, 9999);
  extra.rows[0].name = "only_in_current";
  const obs::RunDiff disjoint =
      obs::diffRuns(makeRecord("base", "a", 1.0, 100), extra, thresholds);
  EXPECT_EQ(disjoint.common_rows, 0);
  EXPECT_TRUE(disjoint.rows.empty());
  EXPECT_FALSE(disjoint.anyRegression());
}

TEST(RunStore, DiffZeroBaseZeroCurrentComparesEqual) {
  // 0 -> 0 is equal, pct 0, never a regression — delta-resolve bench rows
  // legitimately report 0 for counters a warm repair never touches, and a
  // 0 -> 0 row must not read as an infinite blowup. 0 -> positive stays
  // +inf / regressed (previous test); this pins the other half.
  obs::DiffThresholds thresholds;
  const obs::RunDiff same = obs::diffRuns(makeRecord("b", "a", 0.5, 0),
                                          makeRecord("c", "b", 0.5, 0),
                                          thresholds);
  EXPECT_FALSE(same.anyRegression());
  bool saw_iterations = false;
  for (const obs::RowDiff& row : same.rows)
    if (row.metric == "simplex_iterations") {
      EXPECT_DOUBLE_EQ(row.pct, 0.0);
      EXPECT_FALSE(row.regressed);
      EXPECT_FALSE(std::isinf(row.pct));
      saw_iterations = true;
    }
  EXPECT_TRUE(saw_iterations);
}

TEST(RunStore, BenchDocConvertsToComparableRecord) {
  const auto doc = obs::json::parse(R"({
    "schema": "pdw-bench-1",
    "label": "baseline",
    "engine": "revised",
    "benchmarks": [
      {"name": "knapsack_small", "wall_seconds": 0.5,
       "simplex_iterations": 120, "nodes": 7}
    ]
  })");
  ASSERT_TRUE(doc.has_value());
  const auto record = obs::runRecordFromBenchDoc(*doc);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->label, "baseline");
  ASSERT_EQ(record->rows.size(), 1u);
  EXPECT_EQ(record->rows[0].name, "knapsack_small");
  EXPECT_DOUBLE_EQ(record->rows[0].value("wall_seconds"), 0.5);
  EXPECT_DOUBLE_EQ(record->rows[0].value("simplex_iterations"), 120.0);
  EXPECT_DOUBLE_EQ(record->rows[0].value("nodes"), 7.0);

  // The converted record diffs cleanly against a live run row using the
  // same value keys — this is the tier1 `--against BENCH_ilp.json` path.
  const obs::RunDiff diff =
      obs::diffRuns(*record, makeRecord("cur", "b", 0.52, 121), {});
  EXPECT_EQ(diff.common_rows, 1);
  EXPECT_FALSE(diff.anyRegression());
}

// ---- solver integration: slow-solve threshold trigger --------------------

TEST(FlightSolver, SlowSolveThresholdTriggersValidDump) {
  const std::string path = tempPath("flight_slow.jsonl");
  std::remove(path.c_str());

  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary (branches for sure).
  ilp::Model m;
  const ilp::VarId a = m.addBinary("a");
  const ilp::VarId b = m.addBinary("b");
  const ilp::VarId c = m.addBinary("c");
  m.addLessEqual(
      3.0 * ilp::LinExpr(a) + 4.0 * ilp::LinExpr(b) + 2.0 * ilp::LinExpr(c),
      6);
  m.setObjective(-10.0 * ilp::LinExpr(a) - 13.0 * ilp::LinExpr(b) -
                 7.0 * ilp::LinExpr(c));

  ilp::SolveParams params;
  params.time_limit_seconds = 10.0;
  params.flight.enabled = true;
  params.flight.path = path;
  params.flight.dump_all = false;
  params.flight.dump_on_limit = false;
  params.flight.slow_solve_seconds = 0.0;  // any wall > 0 counts as slow

  const ilp::Solution s = ilp::solve(m, params);
  ASSERT_EQ(s.status, ilp::SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);

  const std::vector<std::string> lines = readLines(path);
  ASSERT_FALSE(lines.empty()) << "slow-solve threshold produced no dump";
  const auto header = obs::json::parse(lines[0]);
  ASSERT_TRUE(header && header->isObject());
  EXPECT_EQ(header->find("type")->string, "solve");
  EXPECT_EQ(header->find("schema")->string, "pdw-flight-1");
  EXPECT_EQ(header->find("status")->string, "Optimal");
  const obs::json::Value* counts = header->find("counts");
  ASSERT_TRUE(counts && counts->isObject());
  EXPECT_GE(counts->find("solve_begin")->number, 1.0);
  EXPECT_GE(counts->find("node_open")->number, 1.0);

  // A threshold-only config with an impossible threshold must stay silent.
  std::remove(path.c_str());
  params.flight.slow_solve_seconds = 1e9;
  const ilp::Solution s2 = ilp::solve(m, params);
  ASSERT_EQ(s2.status, ilp::SolveStatus::Optimal);
  EXPECT_TRUE(readLines(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdw

// util layer: strings, tables, deterministic RNG, logging plumbing.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace pdw::util {
namespace {

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("abc", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("benchmark", "bench"));
  EXPECT_FALSE(startsWith("bench", "benchmark"));
}

TEST(Strings, ImprovementPercent) {
  EXPECT_EQ(improvementPercent(100, 75), "25.00");
  EXPECT_EQ(improvementPercent(0, 5), "0.00");     // guarded division
  EXPECT_EQ(improvementPercent(80, 80), "0.00");
  EXPECT_EQ(improvementPercent(50, 60), "-20.00");  // regressions show sign
}

TEST(Table, AlignsColumns) {
  Table t({"name", "v"});
  t.addRow({"a", "1"});
  t.addRow({"long-name", "22"});
  const std::string out = t.toString();
  // Every data line has the same width.
  std::istringstream stream(out);
  std::string line;
  std::set<std::size_t> widths;
  while (std::getline(stream, line)) widths.insert(line.size());
  EXPECT_EQ(widths.size(), 1u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.addRow({"only-one"});
  EXPECT_EQ(t.rowCount(), 1u);
  EXPECT_NE(t.toString().find("only-one"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.addRow({"plain"});
  t.addRow({"with,comma"});
  t.addRow({"with\"quote"});
  std::ostringstream out;
  t.renderCsv(out);
  EXPECT_NE(out.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, IntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.intIn(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
  EXPECT_EQ(rng.intIn(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);  // rough uniformity
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Logging, LevelParsingAndFiltering) {
  EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
  EXPECT_EQ(parseLogLevel("off"), LogLevel::Off);
  EXPECT_EQ(parseLogLevel("bogus"), LogLevel::Warn);

  const LogLevel before = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  // A below-threshold statement must not crash (it is simply dropped).
  PDW_LOG(Debug, "test") << "dropped";
  setLogLevel(before);
}

}  // namespace
}  // namespace pdw::util

// Wash-path routing: the eq. 12-15 ILP (with lazy connectivity cuts) and
// the BFS heuristic, cross-checked against each other.
#include <gtest/gtest.h>

#include "core/wash_path_ilp.h"

namespace pdw::core {
namespace {

using arch::Cell;

/// Open 9x7 chip, ports on opposite corners-ish, two devices.
class WashPathFixture : public ::testing::Test {
 protected:
  WashPathFixture() : chip_(9, 7, 3.0) {
    chip_.addFlowPort({0, 1}, "in1");
    chip_.addFlowPort({0, 5}, "in2");
    chip_.addWastePort({8, 1}, "out1");
    chip_.addWastePort({8, 5}, "out2");
    chip_.addDevice(arch::DeviceKind::Mixer, {4, 3}, "mixer");
  }
  arch::ChipLayout chip_;
};

void expectValidWashPath(const arch::ChipLayout& chip,
                         const arch::FlowPath& path,
                         const std::vector<Cell>& targets) {
  EXPECT_TRUE(path.isConnected());
  EXPECT_TRUE(chip.isPortCell(path.front()));
  EXPECT_TRUE(chip.isPortCell(path.back()));
  EXPECT_FALSE(chip.port(*chip.portAt(path.front())).is_waste)
      << "must start at a flow port";
  EXPECT_TRUE(chip.port(*chip.portAt(path.back())).is_waste)
      << "must end at a waste port";
  for (const Cell& t : targets) EXPECT_TRUE(path.contains(t));
}

TEST_F(WashPathFixture, IlpRoutesSingleTarget) {
  const std::vector<Cell> targets = {{3, 1}};
  WashPathStats stats;
  const auto path = routeWashPathIlp(chip_, targets, {}, &stats);
  ASSERT_TRUE(path.has_value());
  expectValidWashPath(chip_, *path, targets);
  EXPECT_TRUE(path->isSimpleConnected());
  EXPECT_GE(stats.ilp_solves, 1);
}

TEST_F(WashPathFixture, IlpSingleTargetIsOptimalLength) {
  // Target adjacent to in1's corridor: the shortest flow->target->waste
  // path along row 1 has 9 cells (x=0..8).
  const std::vector<Cell> targets = {{4, 1}};
  const auto path = routeWashPathIlp(chip_, targets);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 9u);
}

TEST_F(WashPathFixture, IlpCoversMultipleTargets) {
  const std::vector<Cell> targets = {{2, 1}, {5, 1}, {5, 4}};
  const auto path = routeWashPathIlp(chip_, targets);
  ASSERT_TRUE(path.has_value());
  expectValidWashPath(chip_, *path, targets);
}

TEST_F(WashPathFixture, IlpNeverLongerThanHeuristic) {
  const std::vector<Cell> target_sets[] = {
      {{2, 2}},
      {{2, 1}, {6, 1}},
      {{1, 3}, {4, 5}},
      {{3, 2}, {3, 4}, {6, 3}},
  };
  for (const auto& targets : target_sets) {
    const auto ilp = routeWashPathIlp(chip_, targets);
    const auto heuristic = routeWashPathHeuristic(chip_, targets);
    ASSERT_TRUE(ilp.has_value());
    ASSERT_TRUE(heuristic.has_value());
    // routeWashPathIlp keeps the better of the two, so <= always holds;
    // the interesting assertion is that it is never *worse*.
    EXPECT_LE(ilp->size(), heuristic->size());
  }
}

TEST_F(WashPathFixture, HeuristicRoutesAroundDevices) {
  // Target behind the mixer row: path must avoid the device cell.
  const std::vector<Cell> targets = {{5, 3}};
  const auto path = routeWashPathHeuristic(chip_, targets);
  ASSERT_TRUE(path.has_value());
  expectValidWashPath(chip_, *path, targets);
  EXPECT_FALSE(path->contains({4, 3}));  // mixer avoided
}

TEST_F(WashPathFixture, DeviceCellAsTargetIsWashable) {
  const std::vector<Cell> targets = {{4, 3}};  // the mixer itself
  const auto path = routeWashPathHeuristic(chip_, targets);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->contains({4, 3}));
}

TEST_F(WashPathFixture, PocketedTargetTraversesIdleDevice) {
  // Wall the corridor so the only way to the target crosses the device:
  // build a chip where the target's sole neighbours are a device and a
  // waste port.
  arch::ChipLayout chip(5, 3, 3.0);
  chip.addFlowPort({0, 1}, "in");
  chip.addDevice(arch::DeviceKind::Heater, {2, 1}, "heater");
  chip.addWastePort({4, 1}, "out");
  // (3,1) sits between heater (2,1) and port-adjacent (4,1); its other
  // neighbours (3,0) and (3,2) exist, so block them with devices too.
  chip.addDevice(arch::DeviceKind::Storage, {3, 0}, "s1");
  chip.addDevice(arch::DeviceKind::Storage, {3, 2}, "s2");
  const auto path = routeWashPathHeuristic(chip, {{3, 1}});
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->contains({3, 1}));
  EXPECT_TRUE(path->contains({2, 1}));  // had to flush through the heater
}

TEST_F(WashPathFixture, EmptyTargetsRejected) {
  EXPECT_FALSE(routeWashPathIlp(chip_, {}).has_value());
  EXPECT_FALSE(routeWashPathHeuristic(chip_, {}).has_value());
}

TEST_F(WashPathFixture, NoFallbackReportsFailureHonestly) {
  WashPathOptions options;
  options.fallback_heuristic = false;
  options.solver.time_limit_seconds = 0.001;  // starve the solver
  options.solver.node_limit = 1;
  const auto path = routeWashPathIlp(chip_, {{2, 1}, {6, 4}}, options);
  // Either it solved within one node (tiny model) or reported nullopt;
  // both are acceptable, but a returned path must be valid.
  if (path) expectValidWashPath(chip_, *path, {{2, 1}, {6, 4}});
}

}  // namespace
}  // namespace pdw::core

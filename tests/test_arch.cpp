// Grid, cell-set, chip layout, flow path and router tests.
#include <gtest/gtest.h>

#include "arch/cell.h"
#include "arch/chip.h"
#include "arch/path.h"
#include "arch/router.h"

namespace pdw::arch {
namespace {

TEST(Cell, ManhattanAndAdjacency) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_TRUE(adjacent({2, 2}, {2, 3}));
  EXPECT_TRUE(adjacent({2, 2}, {1, 2}));
  EXPECT_FALSE(adjacent({2, 2}, {3, 3}));
  EXPECT_FALSE(adjacent({2, 2}, {2, 2}));
}

TEST(CellSet, InsertEraseContains) {
  CellSet set(10, 8);
  EXPECT_TRUE(set.empty());
  set.insert({3, 4});
  set.insert({3, 4});  // idempotent
  set.insert({0, 0});
  EXPECT_EQ(set.size(), 2);
  EXPECT_TRUE(set.contains({3, 4}));
  EXPECT_FALSE(set.contains({4, 3}));
  EXPECT_FALSE(set.contains({-1, 0}));  // out of range is never contained
  set.erase({3, 4});
  EXPECT_FALSE(set.contains({3, 4}));
  EXPECT_EQ(set.size(), 1);
}

TEST(CellSet, IntersectionAndSubset) {
  CellSet a(6, 6), b(6, 6), c(6, 6);
  a.insert({1, 1});
  a.insert({2, 2});
  b.insert({2, 2});
  c.insert({3, 3});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(a.containsAll(b));
  EXPECT_FALSE(b.containsAll(a));
}

TEST(CellSet, ToVectorIsRowMajorSorted) {
  CellSet set(5, 5);
  set.insert({4, 0});
  set.insert({0, 1});
  set.insert({1, 0});
  const auto cells = set.toVector();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], (Cell{1, 0}));
  EXPECT_EQ(cells[1], (Cell{4, 0}));
  EXPECT_EQ(cells[2], (Cell{0, 1}));
}

TEST(ChipLayout, DevicesAndPorts) {
  ChipLayout chip(8, 8, 3.0);
  const DeviceId mixer = chip.addDevice(DeviceKind::Mixer, {3, 3});
  const DeviceId heater = chip.addDevice(DeviceKind::Heater, {5, 5});
  const PortId in = chip.addFlowPort({0, 2}, "in1");
  const PortId out = chip.addWastePort({7, 4}, "out1");

  EXPECT_EQ(chip.device(mixer).kind, DeviceKind::Mixer);
  EXPECT_EQ(chip.deviceAt({3, 3}), std::optional<DeviceId>(mixer));
  EXPECT_EQ(chip.deviceAt({3, 4}), std::nullopt);
  EXPECT_EQ(chip.devicesOfKind(DeviceKind::Heater),
            std::vector<DeviceId>{heater});
  EXPECT_TRUE(chip.devicesOfKind(DeviceKind::Filter).empty());

  EXPECT_FALSE(chip.port(in).is_waste);
  EXPECT_TRUE(chip.port(out).is_waste);
  EXPECT_EQ(chip.flowPorts().size(), 1u);
  EXPECT_EQ(chip.wastePorts().size(), 1u);
  EXPECT_TRUE(chip.isPortCell({0, 2}));
  EXPECT_FALSE(chip.isPortCell({1, 2}));
}

TEST(ChipLayout, NeighborsClippedAtBorders) {
  ChipLayout chip(4, 4);
  EXPECT_EQ(chip.neighbors({0, 0}).size(), 2u);
  EXPECT_EQ(chip.neighbors({1, 0}).size(), 3u);
  EXPECT_EQ(chip.neighbors({1, 1}).size(), 4u);
}

TEST(ChipLayout, RenderShowsGlyphs) {
  ChipLayout chip(3, 2);
  chip.addDevice(DeviceKind::Mixer, {1, 0});
  chip.addFlowPort({0, 0});
  chip.addWastePort({2, 1});
  EXPECT_EQ(chip.render(), "iM.\n..o\n");
}

TEST(FlowPath, ConnectivityChecks) {
  FlowPath good({{0, 0}, {1, 0}, {1, 1}});
  EXPECT_TRUE(good.isConnected());
  EXPECT_TRUE(good.isSimpleConnected());

  FlowPath teleport({{0, 0}, {2, 0}});
  EXPECT_FALSE(teleport.isConnected());

  FlowPath revisits({{0, 0}, {1, 0}, {0, 0}});
  EXPECT_TRUE(revisits.isConnected());
  EXPECT_FALSE(revisits.isSimpleConnected());
}

TEST(FlowPath, OverlapAndCoverage) {
  FlowPath a({{0, 0}, {1, 0}, {2, 0}});
  FlowPath b({{2, 0}, {2, 1}});
  FlowPath c({{5, 5}, {5, 6}});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.covers(FlowPath({{1, 0}, {2, 0}})));
  EXPECT_FALSE(a.covers(b));
  EXPECT_TRUE(a.coversAll({{0, 0}, {2, 0}}));
}

TEST(FlowPath, LengthInMm) {
  FlowPath p({{0, 0}, {1, 0}, {2, 0}, {2, 1}});
  EXPECT_DOUBLE_EQ(p.lengthMm(3.0), 9.0);  // 3 edges * 3mm
  EXPECT_DOUBLE_EQ(FlowPath({{0, 0}}).lengthMm(3.0), 0.0);
  EXPECT_DOUBLE_EQ(FlowPath().lengthMm(3.0), 0.0);
}

TEST(FlowPath, ToStringUsesChipNames) {
  ChipLayout chip(4, 4);
  chip.addFlowPort({0, 0}, "in1");
  chip.addDevice(DeviceKind::Mixer, {1, 0}, "mixer");
  FlowPath p({{0, 0}, {1, 0}, {2, 0}});
  EXPECT_EQ(p.toString(&chip), "in1 -> mixer -> (2,0)");
}

class RouterFixture : public ::testing::Test {
 protected:
  RouterFixture() : chip_(9, 9, 3.0), router_(chip_) {}
  ChipLayout chip_;
  Router router_;
};

TEST_F(RouterFixture, FindsShortestPath) {
  const auto path = router_.route({0, 0}, {4, 0});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
  EXPECT_TRUE(path->isSimpleConnected());
  EXPECT_EQ(path->front(), (Cell{0, 0}));
  EXPECT_EQ(path->back(), (Cell{4, 0}));
}

TEST_F(RouterFixture, AvoidsBlockedCells) {
  // Wall across x=2, leaving only y=8 open.
  CellSet blocked(9, 9);
  for (int y = 0; y < 8; ++y) blocked.insert({2, y});
  const auto path = router_.route({0, 0}, {4, 0}, &blocked);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->isSimpleConnected());
  for (int y = 0; y < 8; ++y) EXPECT_FALSE(path->contains({2, y}));
  EXPECT_GT(path->size(), 5u);  // detour is longer
}

TEST_F(RouterFixture, ReportsUnreachable) {
  CellSet blocked(9, 9);
  for (int y = 0; y < 9; ++y) blocked.insert({2, y});
  EXPECT_FALSE(router_.route({0, 0}, {4, 0}, &blocked).has_value());
  EXPECT_FALSE(router_.distance({0, 0}, {4, 0}, &blocked).has_value());
}

TEST_F(RouterFixture, DoesNotRouteThroughPorts) {
  // A port in the middle of the only corridor blocks it.
  ChipLayout chip(5, 1, 3.0);
  chip.addFlowPort({2, 0}, "mid");
  Router router(chip);
  EXPECT_FALSE(router.route({0, 0}, {4, 0}).has_value());
  // But the port can be an endpoint.
  EXPECT_TRUE(router.route({0, 0}, {2, 0}).has_value());
}

TEST_F(RouterFixture, RouteViaCoversWaypoints) {
  const std::vector<Cell> waypoints = {{3, 3}, {1, 5}, {6, 2}};
  const auto path = router_.routeVia({0, 0}, waypoints, {8, 8});
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->isConnected());
  for (const Cell& w : waypoints) EXPECT_TRUE(path->contains(w));
  EXPECT_EQ(path->front(), (Cell{0, 0}));
  EXPECT_EQ(path->back(), (Cell{8, 8}));
}

TEST_F(RouterFixture, RouteViaCollinearWaypointsIsShortest) {
  const auto path = router_.routeVia({0, 0}, {{2, 0}, {5, 0}}, {8, 0});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 9u);  // straight line, no detours
  EXPECT_TRUE(path->isSimpleConnected());
}

TEST_F(RouterFixture, TrivialRoute) {
  const auto path = router_.route({3, 3}, {3, 3});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

}  // namespace
}  // namespace pdw::arch

// MILP solver tests: knapsacks, big-M disjunctions (the paper's scheduling
// pattern), set covering (the wash-path pattern), infeasible integer models,
// limits, and randomized cross-checks against brute force.
#include <gtest/gtest.h>

#include <cmath>

#include "ilp/solver.h"
#include "util/rng.h"

namespace pdw::ilp {
namespace {

SolveParams quickParams() {
  SolveParams p;
  p.time_limit_seconds = 10.0;
  return p;
}

TEST(Mip, SmallKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a=1,c=1 (17)
  // vs b=1,c=1 (20, weight 6 ok) -> optimum 20.
  Model m;
  VarId a = m.addBinary("a");
  VarId b = m.addBinary("b");
  VarId c = m.addBinary("c");
  m.addLessEqual(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c), 6);
  m.setObjective(-10.0 * LinExpr(a) - 13.0 * LinExpr(b) - 7.0 * LinExpr(c));

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);
  EXPECT_FALSE(s.boolValue(a));
  EXPECT_TRUE(s.boolValue(b));
  EXPECT_TRUE(s.boolValue(c));
}

TEST(Mip, IntegerRounding) {
  // min x s.t. 2x >= 7, x integer -> x = 4 (LP gives 3.5).
  Model m;
  VarId x = m.addInteger(0, 100, "x");
  m.addGreaterEqual(2.0 * LinExpr(x), 7);
  m.setObjective(LinExpr(x));

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[x], 4.0, 1e-6);
}

TEST(Mip, BigMDisjunction) {
  // Two "tasks" of duration 5 on one resource: t1, t2 in [0, 100],
  // either t1 + 5 <= t2 or t2 + 5 <= t1 (big-M with order binary).
  // Minimize makespan -> 10.
  constexpr double kBigM = 1000.0;
  Model m;
  VarId t1 = m.addContinuous(0, 100, "t1");
  VarId t2 = m.addContinuous(0, 100, "t2");
  VarId order = m.addBinary("order");
  VarId makespan = m.addContinuous(0, 200, "makespan");
  // t2 >= t1 + 5 - M*(1-order)
  m.addGreaterEqual(LinExpr(t2) - LinExpr(t1) + kBigM * LinExpr(order),
                    5.0);
  // t1 >= t2 + 5 - M*order
  m.addGreaterEqual(LinExpr(t1) - LinExpr(t2) - kBigM * LinExpr(order),
                    5.0 - kBigM);
  m.addGreaterEqual(LinExpr(makespan) - LinExpr(t1), 5.0);
  m.addGreaterEqual(LinExpr(makespan) - LinExpr(t2), 5.0);
  m.setObjective(LinExpr(makespan));

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-5);
  EXPECT_NEAR(std::abs(s.values[t1] - s.values[t2]), 5.0, 1e-5);
}

TEST(Mip, SetCover) {
  // Universe {1..4}; sets A={1,2}, B={2,3}, C={3,4}, D={1,4}, E={1,2,3,4}
  // with cost 1 each except E costs 1.5. Optimal: E (1.5) vs A+C (2) -> E.
  Model m;
  VarId A = m.addBinary("A");
  VarId B = m.addBinary("B");
  VarId C = m.addBinary("C");
  VarId D = m.addBinary("D");
  VarId E = m.addBinary("E");
  m.addGreaterEqual(LinExpr(A) + LinExpr(D) + LinExpr(E), 1);  // elem 1
  m.addGreaterEqual(LinExpr(A) + LinExpr(B) + LinExpr(E), 1);  // elem 2
  m.addGreaterEqual(LinExpr(B) + LinExpr(C) + LinExpr(E), 1);  // elem 3
  m.addGreaterEqual(LinExpr(C) + LinExpr(D) + LinExpr(E), 1);  // elem 4
  m.setObjective(LinExpr(A) + LinExpr(B) + LinExpr(C) + LinExpr(D) +
                 1.5 * LinExpr(E));

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-6);
  EXPECT_TRUE(s.boolValue(E));
}

TEST(Mip, InfeasibleIntegerModel) {
  // 2 <= 3x <= 4 has no integer solution (x would be in [2/3, 4/3], only
  // x=1 -> 3, which IS in range... make it truly empty: 4 <= 3x <= 5).
  Model m;
  VarId x = m.addInteger(0, 10, "x");
  m.addGreaterEqual(3.0 * LinExpr(x), 4);
  m.addLessEqual(3.0 * LinExpr(x), 5);
  m.setObjective(LinExpr(x));

  Solution s = solve(m, quickParams());
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(Mip, PureLpPassThrough) {
  Model m;
  VarId x = m.addContinuous(0, 4, "x");
  m.setObjective(-1.0 * LinExpr(x));
  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-6);
}

TEST(Mip, EqualityWithBinaries) {
  // x + y + z = 2 (binary), minimize x -> x=0, exactly two of y,z set.
  Model m;
  VarId x = m.addBinary("x");
  VarId y = m.addBinary("y");
  VarId z = m.addBinary("z");
  m.addEqual(LinExpr(x) + LinExpr(y) + LinExpr(z), 2);
  m.setObjective(LinExpr(x));

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-6);
  EXPECT_TRUE(s.boolValue(y));
  EXPECT_TRUE(s.boolValue(z));
}

TEST(Mip, GeneralIntegerVariables) {
  // min 3x + 4y s.t. 5x + 7y >= 31, x,y integer >= 0.
  // Brute force best: y=3,x=2 -> 18 (5*2+21=31). Check.
  Model m;
  VarId x = m.addInteger(0, 20, "x");
  VarId y = m.addInteger(0, 20, "y");
  m.addGreaterEqual(5.0 * LinExpr(x) + 7.0 * LinExpr(y), 31);
  m.setObjective(3.0 * LinExpr(x) + 4.0 * LinExpr(y));

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  double best = 1e18;
  for (int xi = 0; xi <= 20; ++xi)
    for (int yi = 0; yi <= 20; ++yi)
      if (5 * xi + 7 * yi >= 31) best = std::min(best, 3.0 * xi + 4.0 * yi);
  EXPECT_NEAR(s.objective, best, 1e-6);
}

TEST(Mip, StatsArePopulated) {
  Model m;
  VarId x = m.addBinary("x");
  VarId y = m.addBinary("y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 1);
  m.setObjective(-1.0 * LinExpr(x) - 1.0 * LinExpr(y));
  Solution s = solve(m, quickParams());
  ASSERT_TRUE(s.hasSolution());
  EXPECT_GE(s.stats.nodes_explored + s.stats.simplex_iterations, 1);
  EXPECT_GE(s.stats.wall_seconds, 0.0);
}

// Randomized cross-check: small binary knapsacks vs exhaustive enumeration.
class MipRandomKnapsack : public ::testing::TestWithParam<int> {};

TEST_P(MipRandomKnapsack, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = rng.intIn(4, 9);
  std::vector<double> weight(static_cast<std::size_t>(n));
  std::vector<double> value(static_cast<std::size_t>(n));
  double capacity = 0;
  for (int i = 0; i < n; ++i) {
    weight[static_cast<std::size_t>(i)] = rng.intIn(1, 12);
    value[static_cast<std::size_t>(i)] = rng.intIn(1, 20);
    capacity += weight[static_cast<std::size_t>(i)];
  }
  capacity = std::floor(capacity * 0.45);

  Model m;
  std::vector<VarId> vars;
  LinExpr total_weight, total_value;
  for (int i = 0; i < n; ++i) {
    VarId v = m.addBinary();
    vars.push_back(v);
    total_weight += weight[static_cast<std::size_t>(i)] * LinExpr(v);
    total_value += value[static_cast<std::size_t>(i)] * LinExpr(v);
  }
  m.addLessEqual(total_weight, capacity);
  m.setObjective(-1.0 * total_value);

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal) << "seed " << GetParam();

  double best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    double w = 0, val = 0;
    for (int i = 0; i < n; ++i)
      if (mask & (1 << i)) {
        w += weight[static_cast<std::size_t>(i)];
        val += value[static_cast<std::size_t>(i)];
      }
    if (w <= capacity) best = std::max(best, val);
  }
  EXPECT_NEAR(-s.objective, best, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipRandomKnapsack, ::testing::Range(0, 25));

// Randomized cross-check: big-M single-machine scheduling vs permutation
// brute force (this is exactly the structure of the paper's eqs. 3/8/19/20).
class MipRandomScheduling : public ::testing::TestWithParam<int> {};

TEST_P(MipRandomScheduling, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int n = rng.intIn(2, 4);
  std::vector<double> duration(static_cast<std::size_t>(n));
  std::vector<double> release(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    duration[static_cast<std::size_t>(i)] = rng.intIn(1, 6);
    release[static_cast<std::size_t>(i)] = rng.intIn(0, 8);
  }

  constexpr double kBigM = 1000.0;
  Model m;
  std::vector<VarId> start(static_cast<std::size_t>(n));
  VarId makespan = m.addContinuous(0, kBigM, "makespan");
  for (int i = 0; i < n; ++i) {
    start[static_cast<std::size_t>(i)] = m.addContinuous(
        release[static_cast<std::size_t>(i)], kBigM);
    m.addGreaterEqual(LinExpr(makespan) -
                          LinExpr(start[static_cast<std::size_t>(i)]),
                      duration[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      VarId order = m.addBinary();
      // start_j >= start_i + dur_i - M*(1-order)
      m.addGreaterEqual(LinExpr(start[static_cast<std::size_t>(j)]) -
                            LinExpr(start[static_cast<std::size_t>(i)]) +
                            kBigM * LinExpr(order),
                        duration[static_cast<std::size_t>(i)]);
      // start_i >= start_j + dur_j - M*order
      m.addGreaterEqual(LinExpr(start[static_cast<std::size_t>(i)]) -
                            LinExpr(start[static_cast<std::size_t>(j)]) -
                            kBigM * LinExpr(order),
                        duration[static_cast<std::size_t>(j)] - kBigM);
    }
  m.setObjective(LinExpr(makespan));

  Solution s = solve(m, quickParams());
  ASSERT_EQ(s.status, SolveStatus::Optimal) << "seed " << GetParam();

  // Brute force over all permutations.
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  double best = 1e18;
  do {
    double t = 0;
    for (int idx : perm) {
      t = std::max(t, release[static_cast<std::size_t>(idx)]) +
          duration[static_cast<std::size_t>(idx)];
    }
    best = std::min(best, t);
  } while (std::next_permutation(perm.begin(), perm.end()));

  EXPECT_NEAR(s.objective, best, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipRandomScheduling, ::testing::Range(0, 20));

}  // namespace
}  // namespace pdw::ilp

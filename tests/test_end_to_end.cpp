// End-to-end properties of PDW and DAWO on every benchmark:
//  * the washed schedules pass all validator invariants,
//  * re-analyzing the washed schedule finds no remaining wash target
//    (contamination safety — the central correctness property),
//  * PDW never uses more wash operations than DAWO and never finishes later
//    (the dominance the paper's Table II shows on every row).
#include <gtest/gtest.h>

#include <utility>

#include "assay/benchmarks.h"
#include "baseline/dawo.h"
#include "core/pipeline.h"
#include "sim/metrics.h"
#include "sim/validator.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "wash/contamination.h"

namespace pdw {
namespace {

using assay::Benchmark;
using assay::BenchmarkId;

struct EndToEnd {
  Benchmark benchmark;
  synth::SynthResult synth;
};

EndToEnd makeBase(BenchmarkId id) {
  EndToEnd e{assay::makeBenchmark(id), {}};
  e.synth =
      synth::synthesizeOnChip(*e.benchmark.graph,
                              synth::placeChip(e.benchmark.library));
  return e;
}

/// No wash target may remain after the plan is applied.
int remainingTargets(const assay::AssaySchedule& washed) {
  const wash::ContaminationTracker tracker(washed);
  return static_cast<int>(analyzeWashNecessity(tracker).targets.size());
}

/// One PDW run through the Pipeline facade (the supported entry point).
wash::WashPlanResult runPdw(const assay::AssaySchedule& base,
                            core::PdwOptions options = {}) {
  return std::move(Pipeline(std::move(options)).run(base).plan);
}

sim::ValidatorOptions looseTol() {
  sim::ValidatorOptions v;
  v.time_tol = 1e-4;  // ILP times carry big-M-scaled float noise
  return v;
}

class EndToEndTest : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(EndToEndTest, PdwScheduleIsValidAndClean) {
  EndToEnd e = makeBase(GetParam());
  core::PdwOptions options;
  options.solver.schedule.time_limit_seconds = 6.0;
  const wash::WashPlanResult pdw = runPdw(e.synth.schedule, options);

  const sim::ValidationResult v =
      sim::validateSchedule(pdw.schedule, looseTol());
  EXPECT_TRUE(v.ok()) << e.benchmark.name << ": " << v.summary();
  EXPECT_EQ(remainingTargets(pdw.schedule), 0) << e.benchmark.name;
  EXPECT_GT(pdw.schedule.washCount(), 0) << e.benchmark.name;
}

TEST_P(EndToEndTest, DawoScheduleIsValidAndClean) {
  EndToEnd e = makeBase(GetParam());
  const wash::WashPlanResult dawo = baseline::runDawo(e.synth.schedule);

  const sim::ValidationResult v =
      sim::validateSchedule(dawo.schedule, looseTol());
  EXPECT_TRUE(v.ok()) << e.benchmark.name << ": " << v.summary();
  EXPECT_EQ(remainingTargets(dawo.schedule), 0) << e.benchmark.name;
  EXPECT_GT(dawo.schedule.washCount(), 0) << e.benchmark.name;
}

TEST_P(EndToEndTest, PdwDominatesDawo) {
  EndToEnd e = makeBase(GetParam());
  core::PdwOptions options;
  options.solver.schedule.time_limit_seconds = 6.0;
  const wash::WashPlanResult pdw = runPdw(e.synth.schedule, options);
  const wash::WashPlanResult dawo = baseline::runDawo(e.synth.schedule);

  const sim::WashMetrics mp = sim::computeMetrics(pdw.schedule,
                                                  e.synth.schedule);
  const sim::WashMetrics md = sim::computeMetrics(dawo.schedule,
                                                  e.synth.schedule);

  EXPECT_LE(mp.n_wash, md.n_wash) << e.benchmark.name;
  EXPECT_LE(mp.t_assay, md.t_assay + 1e-6) << e.benchmark.name;
  EXPECT_LE(mp.t_delay, md.t_delay + 1e-6) << e.benchmark.name;
}

TEST_P(EndToEndTest, CutsOnOffPlansMatch) {
  // Root cutting planes (ilp/cuts.h) only ever remove fractional LP points,
  // so the wash plan — in particular N_wash, the paper's headline metric —
  // must be identical with the separation loop on and off; only the
  // branch-and-bound tree size may differ.
  EndToEnd e = makeBase(GetParam());
  core::PdwOptions with_cuts;
  with_cuts.solver.schedule.time_limit_seconds = 6.0;
  core::PdwOptions without = with_cuts;
  without.withCuts(false);
  without.solver.schedule.probing = false;
  without.solver.path.probing = false;

  const wash::WashPlanResult on = runPdw(e.synth.schedule, with_cuts);
  const wash::WashPlanResult off = runPdw(e.synth.schedule, without);
  const sim::WashMetrics mon = sim::computeMetrics(on.schedule,
                                                   e.synth.schedule);
  const sim::WashMetrics moff = sim::computeMetrics(off.schedule,
                                                    e.synth.schedule);
  EXPECT_EQ(mon.n_wash, moff.n_wash) << e.benchmark.name;
  EXPECT_EQ(remainingTargets(on.schedule), 0) << e.benchmark.name;
  EXPECT_TRUE(sim::validateSchedule(on.schedule, looseTol()).ok())
      << e.benchmark.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EndToEndTest, ::testing::ValuesIn(assay::allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId>& info) {
      std::string name = assay::toString(info.param);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

TEST(EndToEnd, PdwReportsNecessityStats) {
  EndToEnd e = makeBase(BenchmarkId::Pcr);
  const wash::WashPlanResult pdw = runPdw(e.synth.schedule);
  EXPECT_GT(pdw.necessity.contaminated_cell_states, 0);
  EXPECT_GT(pdw.necessity.targets, 0);
  // Necessity analysis must drop something on PCR (the paper's own example
  // has Type-1, Type-2 and Type-3 cases).
  EXPECT_GT(pdw.necessity.skipped_type1 + pdw.necessity.skipped_type2 +
                pdw.necessity.skipped_type3,
            0);
}

TEST(EndToEnd, DawoSkipsFewerThanPdw) {
  EndToEnd e = makeBase(BenchmarkId::Ivd);
  const wash::WashPlanResult pdw = runPdw(e.synth.schedule);
  const wash::WashPlanResult dawo = baseline::runDawo(e.synth.schedule);
  // DAWO has no Type-3 (waste-flow) analysis: it must emit at least as
  // many targets as PDW and never skip a Type-3 case.
  EXPECT_GE(dawo.necessity.targets, pdw.necessity.targets);
  EXPECT_EQ(dawo.necessity.skipped_type3, 0);
}

TEST(EndToEnd, MotivatingExampleSmallDelay) {
  // Paper Fig. 3: on the motivating chip the optimized wash scheme adds
  // only a small delay (1 s in the paper). Assert the shape: PDW's delay is
  // a small fraction of the base completion time and below DAWO's.
  const Benchmark b = assay::makeBenchmark(BenchmarkId::Pcr);
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, assay::makeMotivatingChip());

  const wash::WashPlanResult pdw = runPdw(base.schedule);
  const wash::WashPlanResult dawo = baseline::runDawo(base.schedule);
  const sim::WashMetrics mp = sim::computeMetrics(pdw.schedule, base.schedule);
  const sim::WashMetrics md = sim::computeMetrics(dawo.schedule,
                                                  base.schedule);
  EXPECT_LE(mp.t_delay, md.t_delay + 1e-6);
  EXPECT_LE(mp.t_delay, base.schedule.completionTime() * 0.5)
      << "PDW delay should stay a small fraction of the assay time";
  EXPECT_EQ(remainingTargets(pdw.schedule), 0);
}

TEST(EndToEnd, NoContaminationMeansNoWash) {
  // A single-op assay leaves residue but never reuses anything.
  assay::SequencingGraph g("single");
  const auto r = g.fluids().addReagent("r");
  g.addOperation(assay::OpKind::Mix, 3, {r});
  synth::SynthResult base = synth::synthesize(g);
  const wash::WashPlanResult pdw = runPdw(base.schedule);
  EXPECT_EQ(pdw.schedule.washCount(), 0);
  EXPECT_TRUE(pdw.proven_optimal);
  EXPECT_DOUBLE_EQ(pdw.schedule.completionTime(),
                   base.schedule.completionTime());
}

}  // namespace
}  // namespace pdw

// Synthesis substrate tests: placement, binding, and end-to-end base
// schedules validated by the discrete-event validator on every benchmark.
#include <gtest/gtest.h>

#include "assay/benchmarks.h"
#include "sim/validator.h"
#include "synth/binder.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"

namespace pdw::synth {
namespace {

using assay::Benchmark;
using assay::BenchmarkId;

TEST(Placer, PlacesAllDevicesAndPorts) {
  arch::DeviceLibrary library = {{arch::DeviceKind::Mixer, 2},
                                 {arch::DeviceKind::Heater, 1},
                                 {arch::DeviceKind::Detector, 2}};
  const auto chip = placeChip(library);
  EXPECT_EQ(chip->devices().size(), 5u);
  EXPECT_GE(chip->flowPorts().size(), 2u);
  EXPECT_GE(chip->wastePorts().size(), 2u);
  // Devices on the interior, ports on the boundary.
  for (const arch::Device& d : chip->devices()) {
    EXPECT_GT(d.cell.x, 0);
    EXPECT_GT(d.cell.y, 0);
    EXPECT_LT(d.cell.x, chip->width() - 1);
    EXPECT_LT(d.cell.y, chip->height() - 1);
  }
  for (const arch::Port& p : chip->ports()) {
    const bool on_boundary = p.cell.x == 0 || p.cell.y == 0 ||
                             p.cell.x == chip->width() - 1 ||
                             p.cell.y == chip->height() - 1;
    EXPECT_TRUE(on_boundary) << p.name;
  }
}

TEST(Placer, DevicesAreSpacedApart) {
  arch::DeviceLibrary library = {{arch::DeviceKind::Mixer, 9}};
  const auto chip = placeChip(library);
  for (const arch::Device& a : chip->devices())
    for (const arch::Device& b : chip->devices())
      if (a.id < b.id) EXPECT_GE(arch::manhattan(a.cell, b.cell), 3);
}

TEST(Binder, BalancesLoadAcrossSameKindDevices) {
  assay::SequencingGraph g;
  for (int i = 0; i < 6; ++i) g.addOperation(assay::OpKind::Mix, 2);
  arch::ChipLayout chip(10, 10);
  const auto m1 = chip.addDevice(arch::DeviceKind::Mixer, {2, 2});
  const auto m2 = chip.addDevice(arch::DeviceKind::Mixer, {5, 5});
  const auto binding = bindOperations(g, chip);
  int on_m1 = 0, on_m2 = 0;
  for (arch::DeviceId d : binding) {
    if (d == m1) ++on_m1;
    if (d == m2) ++on_m2;
  }
  EXPECT_EQ(on_m1, 3);
  EXPECT_EQ(on_m2, 3);
}

TEST(Binder, RespectsDeviceKinds) {
  assay::SequencingGraph g;
  const auto mix = g.addOperation(assay::OpKind::Mix, 2);
  const auto heat = g.addOperation(assay::OpKind::Heat, 2);
  arch::ChipLayout chip(10, 10);
  chip.addDevice(arch::DeviceKind::Heater, {2, 2});
  chip.addDevice(arch::DeviceKind::Mixer, {5, 5});
  const auto binding = bindOperations(g, chip);
  EXPECT_EQ(chip.device(binding[static_cast<std::size_t>(mix)]).kind,
            arch::DeviceKind::Mixer);
  EXPECT_EQ(chip.device(binding[static_cast<std::size_t>(heat)]).kind,
            arch::DeviceKind::Heater);
}

// End-to-end: the synthesized base schedule of every benchmark passes all
// validator invariants (precedence, exclusivity, spatial conflicts, paths).
class SynthesisValidity : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(SynthesisValidity, BaseScheduleIsValid) {
  const Benchmark b = assay::makeBenchmark(GetParam());
  const auto chip = placeChip(b.library);
  SynthResult result =
      synthesizeOnChip(*b.graph, placeChip(b.library));

  const sim::ValidationResult v = sim::validateSchedule(result.schedule);
  EXPECT_TRUE(v.ok()) << b.name << ": " << v.summary();

  // Structural expectations.
  EXPECT_EQ(static_cast<int>(result.schedule.opSchedules().size()),
            b.graph->numOps());
  EXPECT_EQ(result.schedule.washCount(), 0);  // base schedule has no wash
  EXPECT_GT(result.schedule.completionTime(), 0.0);

  // One transport per dependency edge.
  for (const assay::Dependency& d : b.graph->dependencies()) {
    int count = 0;
    for (const assay::FluidTask& t : result.schedule.tasks())
      if (t.kind == assay::TaskKind::Transport && t.producer == d.from &&
          t.consumer == d.to)
        ++count;
    EXPECT_EQ(count, 1) << b.name << " edge " << d.from << "->" << d.to;
  }

  // One output transport per sink op.
  for (assay::OpId sink : b.graph->sinkOps()) {
    int count = 0;
    for (const assay::FluidTask& t : result.schedule.tasks())
      if (t.kind == assay::TaskKind::Transport && t.producer == sink &&
          t.consumer == -1)
        ++count;
    EXPECT_EQ(count, 1) << b.name << " sink " << sink;
  }

  // Waste-producing ops got a waste-removal task.
  for (const assay::Operation& op : b.graph->ops()) {
    if (!op.produces_waste) continue;
    int count = 0;
    for (const assay::FluidTask& t : result.schedule.tasks())
      if (t.kind == assay::TaskKind::WasteRemoval && t.producer == op.id)
        ++count;
    EXPECT_EQ(count, 1) << b.name << " op " << op.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SynthesisValidity,
    ::testing::ValuesIn(assay::allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId>& info) {
      std::string name = assay::toString(info.param);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

TEST(Synthesizer, DeterministicAcrossRuns) {
  const Benchmark b1 = assay::makeBenchmark(BenchmarkId::Ivd);
  const Benchmark b2 = assay::makeBenchmark(BenchmarkId::Ivd);
  SynthResult r1 = synthesizeOnChip(*b1.graph, placeChip(b1.library));
  SynthResult r2 = synthesizeOnChip(*b2.graph, placeChip(b2.library));
  EXPECT_EQ(r1.schedule.completionTime(), r2.schedule.completionTime());
  ASSERT_EQ(r1.schedule.tasks().size(), r2.schedule.tasks().size());
  for (std::size_t i = 0; i < r1.schedule.tasks().size(); ++i) {
    EXPECT_EQ(r1.schedule.tasks()[i].start, r2.schedule.tasks()[i].start);
    EXPECT_EQ(r1.schedule.tasks()[i].path.cells(),
              r2.schedule.tasks()[i].path.cells());
  }
}

TEST(Synthesizer, WorksOnMotivatingChip) {
  const Benchmark b = assay::makeBenchmark(BenchmarkId::Pcr);
  SynthResult result =
      synthesizeOnChip(*b.graph, assay::makeMotivatingChip());
  const sim::ValidationResult v = sim::validateSchedule(result.schedule);
  EXPECT_TRUE(v.ok()) << v.summary();
}

TEST(Synthesizer, TransportPayloadSpansDevices) {
  const Benchmark b = assay::makeBenchmark(BenchmarkId::Pcr);
  SynthResult result = synthesizeOnChip(*b.graph, placeChip(b.library));
  const auto& chip = *result.chip;
  for (const assay::FluidTask& t : result.schedule.tasks()) {
    if (t.kind != assay::TaskKind::Transport || t.producer < 0 ||
        t.consumer < 0)
      continue;
    const auto payload = t.payloadCells();
    ASSERT_GE(payload.size(), 1u);
    // Payload starts at the producer's device and ends at the consumer's.
    EXPECT_TRUE(chip.isDeviceCell(payload.front()));
    EXPECT_TRUE(chip.isDeviceCell(payload.back()));
  }
}

}  // namespace
}  // namespace pdw::synth

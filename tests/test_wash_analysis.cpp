// Contamination tracking and Type-1/2/3 necessity analysis, tested on
// hand-built micro-schedules that mirror the paper's §II-A examples.
#include <gtest/gtest.h>

#include <memory>

#include "wash/contamination.h"
#include "wash/necessity.h"
#include "wash/wash_op.h"

namespace pdw::wash {
namespace {

using arch::Cell;

// Fixture chip: one corridor y=1 from a flow port (0,1) to a waste port
// (6,1), with two devices on it.
//
//   i . d1 . d2 . o     (x = 0..6, y = 1)
class WashFixture : public ::testing::Test {
 protected:
  WashFixture() : chip_(7, 3, 3.0), graph_("micro") {
    chip_.addFlowPort({0, 1}, "in");
    d1_ = chip_.addDevice(arch::DeviceKind::Mixer, {2, 1}, "d1");
    d2_ = chip_.addDevice(arch::DeviceKind::Heater, {4, 1}, "d2");
    chip_.addWastePort({6, 1}, "out");
    r1_ = graph_.fluids().addReagent("r1");
    r2_ = graph_.fluids().addReagent("r2");
  }

  /// Corridor path covering x in [from, to] at y=1.
  arch::FlowPath corridor(int from, int to) {
    std::vector<Cell> cells;
    if (from <= to)
      for (int x = from; x <= to; ++x) cells.push_back({x, 1});
    else
      for (int x = from; x >= to; --x) cells.push_back({x, 1});
    return arch::FlowPath(cells);
  }

  assay::TaskId addTransport(assay::AssaySchedule& s, double start,
                             double end, assay::FluidId fluid,
                             int payload_begin, int payload_end,
                             assay::OpId producer = -1,
                             assay::OpId consumer = -1) {
    assay::FluidTask t;
    t.kind = assay::TaskKind::Transport;
    t.fluid = fluid;
    t.path = corridor(0, 6);
    t.payload_begin = payload_begin;
    t.payload_end = payload_end;
    t.start = start;
    t.end = end;
    t.producer = producer;
    t.consumer = consumer;
    return s.addTask(t);
  }

  assay::TaskId addRemoval(assay::AssaySchedule& s, double start, double end,
                           assay::FluidId fluid) {
    assay::FluidTask t;
    t.kind = assay::TaskKind::ExcessRemoval;
    t.fluid = fluid;
    t.path = corridor(0, 6);
    t.payload_begin = 1;  // plug from cell (1,1) to the waste port
    t.payload_end = -1;
    t.start = start;
    t.end = end;
    return s.addTask(t);
  }

  assay::TaskId addWash(assay::AssaySchedule& s, double start, double end) {
    assay::FluidTask t;
    t.kind = assay::TaskKind::Wash;
    t.fluid = graph_.fluids().buffer();
    t.path = corridor(0, 6);
    t.start = start;
    t.end = end;
    return s.addTask(t);
  }

  arch::ChipLayout chip_;
  assay::SequencingGraph graph_;
  arch::DeviceId d1_ = -1, d2_ = -1;
  assay::FluidId r1_ = -1, r2_ = -1;
};

TEST_F(WashFixture, TransportContaminatesPayloadInterior) {
  assay::AssaySchedule s(&graph_, &chip_);
  // Payload from the port (index 0) to d1 (index 2).
  addTransport(s, 0, 2, r1_, 0, 2);
  ContaminationTracker tracker(s);

  // Channel cell (1,1) has a critical, depositing use.
  const auto& uses = tracker.usesOf({1, 1});
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_TRUE(uses[0].critical);
  EXPECT_TRUE(uses[0].deposits);
  EXPECT_EQ(uses[0].fluid, r1_);
  // The port cell is never tracked.
  EXPECT_TRUE(tracker.usesOf({0, 1}).empty());
  // Cells beyond the payload (air displacement) are untouched.
  EXPECT_TRUE(tracker.usesOf({3, 1}).empty());
  EXPECT_TRUE(tracker.usesOf({5, 1}).empty());
}

TEST_F(WashFixture, ZeroDurationTaskIsIgnored) {
  assay::AssaySchedule s(&graph_, &chip_);
  addRemoval(s, 5, 5, r1_);  // integrated removal: start == end
  ContaminationTracker tracker(s);
  EXPECT_TRUE(tracker.usedCells().empty());
}

TEST_F(WashFixture, OperationContaminatesItsDevice) {
  assay::AssaySchedule s(&graph_, &chip_);
  const assay::OpId op = graph_.addOperation(assay::OpKind::Mix, 3, {r1_});
  s.addOpSchedule({op, d1_, 2.0, 5.0});
  ContaminationTracker tracker(s);
  const auto& uses = tracker.usesOf({2, 1});
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_TRUE(uses[0].deposits);
  EXPECT_EQ(uses[0].fluid, graph_.op(op).result);
}

TEST_F(WashFixture, Type1NeverReusedNeedsNoWash) {
  assay::AssaySchedule s(&graph_, &chip_);
  addTransport(s, 0, 2, r1_, 0, 2);  // contaminates (1,1), never reused
  ContaminationTracker tracker(s);
  NecessityResult r = analyzeWashNecessity(tracker);
  EXPECT_TRUE(r.targets.empty());
  EXPECT_GT(r.stats.skipped_type1, 0);
}

TEST_F(WashFixture, Type2SameFluidNeedsNoWash) {
  assay::AssaySchedule s(&graph_, &chip_);
  addTransport(s, 0, 2, r1_, 0, 2);
  addTransport(s, 4, 6, r1_, 0, 2);  // same fluid over the same cells
  ContaminationTracker tracker(s);
  NecessityResult r = analyzeWashNecessity(tracker);
  EXPECT_TRUE(r.targets.empty());
  EXPECT_GT(r.stats.skipped_type2, 0);
}

TEST_F(WashFixture, Type3WasteBoundReuseNeedsNoWash) {
  assay::AssaySchedule s(&graph_, &chip_);
  addTransport(s, 0, 2, r1_, 0, 2);  // contaminate (1,1) with r1
  addRemoval(s, 4, 6, r2_);          // waste-bound flush over it
  ContaminationTracker tracker(s);
  NecessityResult r = analyzeWashNecessity(tracker);
  EXPECT_TRUE(r.targets.empty());
  EXPECT_GT(r.stats.skipped_type3, 0);
}

TEST_F(WashFixture, CrossFluidReuseNeedsWash) {
  assay::AssaySchedule s(&graph_, &chip_);
  const auto t1 = addTransport(s, 0, 2, r1_, 0, 2);
  const auto t2 = addTransport(s, 5, 7, r2_, 0, 2);  // r2 over r1 residue
  ContaminationTracker tracker(s);
  NecessityResult r = analyzeWashNecessity(tracker);
  // Both the channel cell (1,1) and the device cell (2,1) carry r1 residue
  // that would corrupt the r2 plug.
  ASSERT_EQ(r.targets.size(), 2u);
  const WashTarget& channel = r.targets[0].cell == (Cell{1, 1})
                                  ? r.targets[0]
                                  : r.targets[1];
  EXPECT_EQ(channel.cell, (Cell{1, 1}));
  EXPECT_EQ(channel.residue, r1_);
  EXPECT_EQ(channel.contaminating_task, t1);
  EXPECT_EQ(channel.blocking_task, t2);
  EXPECT_DOUBLE_EQ(channel.ready, 2.0);
  EXPECT_DOUBLE_EQ(channel.deadline, 5.0);
}

TEST_F(WashFixture, WashClearsResidue) {
  assay::AssaySchedule s(&graph_, &chip_);
  addTransport(s, 0, 2, r1_, 0, 2);
  addWash(s, 3, 4);
  addTransport(s, 5, 7, r2_, 0, 2);  // clean after wash
  ContaminationTracker tracker(s);
  NecessityResult r = analyzeWashNecessity(tracker);
  EXPECT_TRUE(r.targets.empty());
}

TEST_F(WashFixture, ResidueAfterWasteFlushStillTracked) {
  assay::AssaySchedule s(&graph_, &chip_);
  addTransport(s, 0, 2, r1_, 0, 2);
  addRemoval(s, 3, 4, r2_);          // Type 3: no wash for r1 residue...
  addTransport(s, 6, 8, r1_, 0, 2);  // ...but now r2 residue blocks r1!
  ContaminationTracker tracker(s);
  NecessityResult r = analyzeWashNecessity(tracker);
  ASSERT_GE(r.targets.size(), 1u);
  EXPECT_EQ(r.targets[0].residue, r2_);
}

TEST_F(WashFixture, DisablingType2CreatesTargets) {
  assay::AssaySchedule s(&graph_, &chip_);
  addTransport(s, 0, 2, r1_, 0, 2);
  addTransport(s, 4, 6, r1_, 0, 2);
  ContaminationTracker tracker(s);
  NecessityOptions options;
  options.enable_type2 = false;
  NecessityResult r = analyzeWashNecessity(tracker, options);
  EXPECT_FALSE(r.targets.empty());
}

TEST_F(WashFixture, DisablingType1CreatesOpenDeadlineTargets) {
  assay::AssaySchedule s(&graph_, &chip_);
  addTransport(s, 0, 2, r1_, 0, 2);
  ContaminationTracker tracker(s);
  NecessityOptions options;
  options.enable_type1 = false;
  NecessityResult r = analyzeWashNecessity(tracker, options);
  // Channel cell (1,1) and device cell (2,1) both hold dead residue.
  ASSERT_EQ(r.targets.size(), 2u);
  for (const WashTarget& t : r.targets) EXPECT_EQ(t.blocking_task, -1);
}

TEST_F(WashFixture, DeviceResidueExemptWhenInputOfConsumer) {
  // Residue of a parent's result in the consumer's device is harmless when
  // that result is an input of the consumer (generalized Type 2).
  assay::AssaySchedule s(&graph_, &chip_);
  const assay::OpId parent = graph_.addOperation(assay::OpKind::Mix, 2, {r1_});
  const assay::OpId child = graph_.addOperation(assay::OpKind::Heat, 2);
  graph_.addDependency(parent, child);
  s.addOpSchedule({parent, d1_, 0.0, 2.0});
  s.addOpSchedule({child, d2_, 6.0, 8.0});
  // Transport parent result d1 -> d2 (payload indices 2..4 on corridor).
  addTransport(s, 3, 5, graph_.op(parent).result, 2, 4, parent, child);
  ContaminationTracker tracker(s);
  NecessityResult r = analyzeWashNecessity(tracker);
  // d1's residue (parent result) is exempt at d2?? No: check that the d2
  // device cell got no target (the incoming fluid IS the parent's result
  // deposited... the device d2 had no prior residue). Assert no targets at
  // all: the only residues are the parent result along (3,1) and at both
  // devices, never reused by a conflicting fluid.
  EXPECT_TRUE(r.targets.empty());
}

TEST(WashOperation, DurationFollowsEq17) {
  WashOperation op;
  op.path = arch::FlowPath({{0, 0}, {1, 0}, {2, 0}, {3, 0}});  // 3 edges
  WashParams params;
  params.flow_velocity_mm_s = 10.0;
  params.dissolution_s = 2.0;
  // L = 3 * 3mm = 9mm; 9/10 + 2 = 2.9 s.
  EXPECT_NEAR(op.duration(params, 3.0), 2.9, 1e-9);
}

TEST(WashOperation, WindowRefresh) {
  WashOperation op;
  WashTarget a, b;
  a.ready = 2.0;
  a.deadline = 10.0;
  a.blocking_task = 5;
  b.ready = 4.0;
  b.deadline = 8.0;
  b.blocking_task = 7;
  op.targets = {a, b};
  op.refreshWindow();
  EXPECT_DOUBLE_EQ(op.ready, 4.0);
  EXPECT_DOUBLE_EQ(op.deadline, 8.0);
}

TEST(ClusterTargets, MergesOverlappingWindows) {
  std::vector<WashTarget> targets;
  for (int i = 0; i < 3; ++i) {
    WashTarget t;
    t.cell = {i, 0};
    t.ready = 1.0;
    t.deadline = 20.0;
    t.blocking_task = 9;
    targets.push_back(t);
  }
  const auto ops = clusterTargets(targets);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].targets.size(), 3u);
}

TEST(ClusterTargets, SplitsDisjointWindows) {
  WashTarget a, b;
  a.cell = {0, 0};
  a.ready = 0.0;
  a.deadline = 3.0;
  a.blocking_task = 1;
  b.cell = {1, 0};
  b.ready = 10.0;
  b.deadline = 20.0;
  b.blocking_task = 2;
  const auto ops = clusterTargets({a, b});
  EXPECT_EQ(ops.size(), 2u);
}

TEST(ClusterTargets, SplitsSpatiallyDistantTargets) {
  WashTarget a, b;
  a.cell = {0, 0};
  a.ready = 0.0;
  a.deadline = 100.0;
  a.blocking_task = 1;
  b.cell = {40, 0};  // farther than max_span
  b.ready = 0.0;
  b.deadline = 100.0;
  b.blocking_task = 2;
  const auto ops = clusterTargets({a, b});
  EXPECT_EQ(ops.size(), 2u);
}

}  // namespace
}  // namespace pdw::wash

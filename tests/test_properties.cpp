// Cross-cutting property tests, parameterized over all eight benchmarks:
//  * contamination-tracker structural invariants,
//  * necessity-analysis monotonicity (disabling an exemption never reduces
//    the target count),
//  * wash-plan invariants shared by PDW and DAWO.
#include <gtest/gtest.h>

#include "assay/benchmarks.h"
#include "baseline/dawo.h"
#include "core/pipeline.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "wash/contamination.h"
#include "wash/necessity.h"

namespace pdw {
namespace {

using assay::BenchmarkId;

class PropertyTest : public ::testing::TestWithParam<BenchmarkId> {
 protected:
  void SetUp() override {
    benchmark_ = assay::makeBenchmark(GetParam());
    base_ = synth::synthesizeOnChip(*benchmark_.graph,
                                    synth::placeChip(benchmark_.library));
  }
  assay::Benchmark benchmark_;
  synth::SynthResult base_;
};

TEST_P(PropertyTest, TrackerNeverTracksPortsAndKeepsTimeOrder) {
  const wash::ContaminationTracker tracker(base_.schedule);
  for (const arch::Cell& cell : tracker.usedCells()) {
    EXPECT_FALSE(base_.chip->isPortCell(cell));
    const auto& uses = tracker.usesOf(cell);
    for (std::size_t i = 1; i < uses.size(); ++i)
      EXPECT_LE(uses[i - 1].start, uses[i].start);
    for (const wash::CellUse& use : uses) {
      EXPECT_LE(use.start, use.end);
      EXPECT_GE(use.fluid, 0);
    }
  }
}

TEST_P(PropertyTest, EveryTargetHasConsistentWindow) {
  const wash::ContaminationTracker tracker(base_.schedule);
  const auto result = analyzeWashNecessity(tracker);
  for (const wash::WashTarget& t : result.targets) {
    EXPECT_LE(t.ready, t.deadline) << benchmark_.name;
    EXPECT_TRUE(t.contaminating_task >= 0 || t.contaminating_op >= 0);
    // Deposit source is exactly one of task/op.
    EXPECT_FALSE(t.contaminating_task >= 0 && t.contaminating_op >= 0);
    EXPECT_GE(t.blocking_task, 0);  // base analysis: every target blocks
    // The blocking task's start is the deadline.
    EXPECT_NEAR(base_.schedule.task(t.blocking_task).start, t.deadline,
                1e-9);
  }
}

TEST_P(PropertyTest, DisablingExemptionsIsMonotone) {
  const wash::ContaminationTracker tracker(base_.schedule);
  const auto full = analyzeWashNecessity(tracker);
  for (int which = 1; which <= 3; ++which) {
    wash::NecessityOptions options;
    options.enable_type1 = which != 1;
    options.enable_type2 = which != 2;
    options.enable_type3 = which != 3;
    const auto ablated = analyzeWashNecessity(tracker, options);
    EXPECT_GE(ablated.targets.size(), full.targets.size())
        << benchmark_.name << " type" << which;
  }
}

TEST_P(PropertyTest, SkipStatisticsAddUp) {
  const wash::ContaminationTracker tracker(base_.schedule);
  const auto r = analyzeWashNecessity(tracker);
  // Every inspected contaminated state is either skipped or becomes a
  // target... states are counted per use-transition, targets/skips are a
  // subset; the invariant we can assert exactly:
  EXPECT_GE(r.stats.contaminated_cell_states,
            r.stats.skipped_type1 + r.stats.skipped_type2 +
                r.stats.skipped_type3);
  EXPECT_EQ(r.stats.targets, static_cast<int>(r.targets.size()));
}

TEST_P(PropertyTest, WashTasksAreWellFormedInBothMethods) {
  core::PdwOptions quick;
  quick.use_ilp_schedule = false;  // keep this property run fast
  quick.use_ilp_paths = false;
  const auto pdw = Pipeline(quick).run(base_.schedule).plan;
  const auto dawo = baseline::runDawo(base_.schedule);
  for (const auto* plan : {&pdw, &dawo}) {
    for (const assay::FluidTask& t : plan->schedule.tasks()) {
      if (t.kind != assay::TaskKind::Wash) continue;
      EXPECT_TRUE(t.path.isConnected()) << plan->method;
      EXPECT_TRUE(base_.chip->isPortCell(t.path.front())) << plan->method;
      EXPECT_TRUE(base_.chip->isPortCell(t.path.back())) << plan->method;
      EXPECT_FALSE(
          base_.chip->port(*base_.chip->portAt(t.path.front())).is_waste);
      EXPECT_TRUE(
          base_.chip->port(*base_.chip->portAt(t.path.back())).is_waste);
      EXPECT_GT(t.duration(), 0.0);
      EXPECT_EQ(t.fluid, benchmark_.graph->fluids().buffer());
    }
  }
}

TEST_P(PropertyTest, GreedyPdwNeverSlowerThanDawo) {
  // Even without its ILP stages, PDW's necessity analysis alone should not
  // lose to DAWO on wash count.
  core::PdwOptions quick;
  quick.use_ilp_schedule = false;
  quick.use_ilp_paths = false;
  const auto pdw = Pipeline(quick).run(base_.schedule).plan;
  const auto dawo = baseline::runDawo(base_.schedule);
  EXPECT_LE(pdw.schedule.washCount(), dawo.schedule.washCount())
      << benchmark_.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PropertyTest, ::testing::ValuesIn(assay::allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId>& info) {
      std::string name = assay::toString(info.param);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace pdw

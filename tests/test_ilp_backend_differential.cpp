// Dense-vs-revised differential suite: the two LpBackend implementations
// are independent codebases (dense tableau with free-splits vs sparse
// revised simplex over a factorized basis with native bounds), so agreement
// on status and objective across random LPs, random MIPs and the
// Table-II-derived PDW models is the main guard against silent numerics
// bugs in either (DESIGN.md §12).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "assay/benchmarks.h"
#include "core/pipeline.h"
#include "ilp/dual_simplex.h"
#include "ilp/lp_backend.h"
#include "ilp/simplex.h"
#include "ilp/solver.h"
#include "sim/metrics.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "util/rng.h"

namespace pdw::ilp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Random bounded LP. Variables are mostly boxed [lo, hi] with lo
/// occasionally negative; a few are fully free (exercising the dense
/// engine's free-split against the revised engine's native handling).
Model makeRandomLp(util::Rng& rng, int n, int rows) {
  Model m;
  std::vector<VarId> xs;
  LinExpr objective;
  for (int j = 0; j < n; ++j) {
    if (rng.chance(0.15)) {
      xs.push_back(m.addContinuous(-kInf, kInf));
    } else {
      const double lo = rng.chance(0.3)
                            ? -static_cast<double>(rng.intIn(1, 4))
                            : 0.0;
      xs.push_back(m.addContinuous(lo, lo + rng.intIn(3, 12)));
    }
    objective += static_cast<double>(rng.intIn(-5, 5)) * LinExpr(xs.back());
  }
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    int terms = 0;
    for (int j = 0; j < n; ++j) {
      if (!rng.chance(0.5)) continue;
      e += static_cast<double>(rng.intIn(-3, 5)) *
           LinExpr(xs[static_cast<std::size_t>(j)]);
      ++terms;
    }
    if (terms == 0) e += LinExpr(xs[rng.index(xs.size())]);
    const double rhs = static_cast<double>(rng.intIn(-5, 6 * n));
    switch (rng.intIn(0, 2)) {
      case 0: m.addLessEqual(e, rhs); break;
      case 1: m.addGreaterEqual(e, -rhs); break;
      default: m.addEqual(e, static_cast<double>(rng.intIn(0, n))); break;
    }
  }
  m.setObjective(objective);
  return m;
}

/// Small MIP with enough branching to produce non-root node LPs.
Model makeBranchyMip(util::Rng& rng, int n) {
  Model m;
  std::vector<VarId> xs;
  LinExpr objective, capacity;
  for (int j = 0; j < n; ++j) {
    xs.push_back(m.addInteger(0, 3));
    objective += -static_cast<double>(rng.intIn(1, 9)) * LinExpr(xs.back());
    capacity += static_cast<double>(rng.intIn(1, 7)) * LinExpr(xs.back());
  }
  m.addLessEqual(capacity, 5.0 * n / 2.0);
  for (int i = 0; i + 1 < n; i += 2)
    m.addLessEqual(LinExpr(xs[static_cast<std::size_t>(i)]) +
                       LinExpr(xs[static_cast<std::size_t>(i + 1)]),
                   4);
  m.setObjective(objective);
  return m;
}

SolveParams engineParams(const char* engine) {
  SolveParams p;
  p.time_limit_seconds = 10.0;
  p.engine = engine;
  return p;
}

TEST(BackendDifferential, RandomLpsAgreeOnStatusAndObjective) {
  // ~100 random bounded LPs (feasible, infeasible and unbounded draws all
  // occur): both backends must report the same status, and the same
  // objective within 1e-6 when Optimal.
  util::Rng rng(20260809);
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int inst = 0; inst < 100; ++inst) {
    const Model m = makeRandomLp(rng, 3 + inst % 10, 2 + inst % 8);
    const LpResult dense = solveLp(m, engineParams("dense"));
    const LpResult revised = solveLp(m, engineParams("revised"));
    ASSERT_EQ(dense.status, revised.status) << "instance " << inst;
    switch (dense.status) {
      case LpStatus::Optimal:
        ++optimal;
        EXPECT_NEAR(dense.objective, revised.objective, 1e-6)
            << "instance " << inst;
        break;
      case LpStatus::Infeasible: ++infeasible; break;
      case LpStatus::Unbounded: ++unbounded; break;
      default: break;
    }
  }
  // The generator must actually exercise the interesting regimes.
  EXPECT_GT(optimal, 40);
  EXPECT_GT(infeasible + unbounded, 5);
}

TEST(BackendDifferential, RandomMipsAgreeOnObjective) {
  // Full branch-and-bound differential: every node LP (warm and cold) runs
  // on the engine under test, so equal final objectives transitively check
  // thousands of node-LP agreements.
  util::Rng rng(31);
  for (int inst = 0; inst < 20; ++inst) {
    const Model m = makeBranchyMip(rng, 6 + inst % 5);
    const Solution dense = solve(m, engineParams("dense"));
    const Solution revised = solve(m, engineParams("revised"));
    ASSERT_EQ(dense.status, revised.status) << "instance " << inst;
    ASSERT_TRUE(dense.hasSolution()) << "instance " << inst;
    EXPECT_NEAR(dense.objective, revised.objective, 1e-6)
        << "instance " << inst;
  }
}

TEST(BackendDifferential, UnknownEngineFallsBackToDefault) {
  util::Rng rng(5);
  const Model m = makeRandomLp(rng, 6, 4);
  const LpResult fallback = solveLp(m, engineParams("no-such-engine"));
  const LpResult standard = solveLp(m, engineParams(""));
  ASSERT_EQ(fallback.status, standard.status);
  if (standard.status == LpStatus::Optimal) {
    EXPECT_NEAR(fallback.objective, standard.objective, 1e-9);
  }
}

// ---- Table-II node-LP differential ---------------------------------------
//
// A wrapper backend registered through the public seam: every node LP the
// branch-and-bound issues (warm and cold alike) is solved by BOTH engines on
// the identical bound vector, and their objectives are compared on the
// spot. Driving a real PDW pipeline run through it covers every
// Table-II-derived node LP — thousands of instances with the exact bound
// patterns branching produces — rather than a hand-picked sample. The
// search itself follows the revised engine's results, so the run stays
// deterministic.

int g_node_lps = 0;
int g_compared = 0;
int g_mismatches = 0;

class DifferentialBackend final : public LpBackend {
 public:
  DifferentialBackend(const Model& model, const SolveParams& params)
      : dense_(std::make_unique<SimplexEngine>(model, params)),
        revised_(makeLpBackend("revised", model, params)) {}

  LpResult solve(const std::vector<double>& lower,
                 const std::vector<double>& upper, bool allow_warm,
                 bool* used_warm = nullptr,
                 std::int64_t* dual_pivots = nullptr) override {
    const LpResult d = dense_->solve(lower, upper, allow_warm);
    // Representation invariant: warm deltas and dual pivots must keep the
    // dense tableau consistent with the loaded row system. This is the probe
    // that caught the near-kEps dual pivots amplifying rounding noise into
    // persistent state corruption (see kDualPivotTol in dual_simplex.h).
    EXPECT_LT(dense_->debugMaxRowResidual(), 1e-6);
    const LpResult r =
        revised_->solve(lower, upper, allow_warm, used_warm, dual_pivots);
    compare(d, r);
    return r;
  }

  LpResult coldSolve(const std::vector<double>& lower,
                     const std::vector<double>& upper) override {
    const LpResult d = dense_->coldSolve(lower, upper);
    const LpResult r = revised_->coldSolve(lower, upper);
    compare(d, r);
    return r;
  }

  bool warmReady() const override { return revised_->warmReady(); }

  void collectReducedCostFixes(double gap, double integrality_tol,
                               std::vector<Fix>* out) const override {
    revised_->collectReducedCostFixes(gap, integrality_tol, out);
  }

  const char* name() const override { return "differential-test"; }

 private:
  static void compare(const LpResult& d, const LpResult& r) {
    ++g_node_lps;
    // Iteration caps trip at different points in the two implementations,
    // so statuses are only required to agree when neither run truncated.
    if (d.status != LpStatus::IterLimit && r.status != LpStatus::IterLimit) {
      EXPECT_EQ(d.status, r.status);
    }
    if (d.status != LpStatus::Optimal || r.status != LpStatus::Optimal)
      return;
    ++g_compared;
    if (std::abs(d.objective - r.objective) > 1e-6) {
      ++g_mismatches;
      ADD_FAILURE() << "node-LP objective mismatch: dense=" << d.objective
                    << " revised=" << r.objective;
    }
  }

  std::unique_ptr<SimplexEngine> dense_;
  std::unique_ptr<LpBackend> revised_;
};

class TableIIBackendDifferential
    : public ::testing::TestWithParam<assay::BenchmarkId> {};

TEST_P(TableIIBackendDifferential, NodeLpsAgreeAcrossBackends) {
  registerLpBackend("differential-test",
                    [](const Model& m, const SolveParams& p) {
                      return std::make_unique<DifferentialBackend>(m, p);
                    });
  g_node_lps = g_compared = g_mismatches = 0;

  const assay::Benchmark b = assay::makeBenchmark(GetParam());
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));

  // The node/iteration-bound deterministic budgets of
  // test_parallel_determinism.cpp keep the run cheap and reproducible.
  core::PdwOptions options = core::PdwOptions{}
                                 .withThreads(1)
                                 .withEngine("differential-test")
                                 .withScheduleBudget(1e6, 200)
                                 .withPathBudget(1e6, 400);
  options.solver.schedule.simplex_iteration_limit = 4000;
  options.solver.path.simplex_iteration_limit = 10000;
  const PdwResult result = Pipeline(std::move(options)).run(base.schedule);

  EXPECT_GT(result.schedule().washCount(), 0);
  EXPECT_GT(g_node_lps, 100) << "pipeline issued suspiciously few node LPs";
  EXPECT_GT(g_compared, 100);
  EXPECT_EQ(g_mismatches, 0)
      << "of " << g_compared << " optimal node-LP pairs";
}

INSTANTIATE_TEST_SUITE_P(
    SmallBenchmarks, TableIIBackendDifferential,
    ::testing::Values(assay::BenchmarkId::Pcr, assay::BenchmarkId::Ivd),
    [](const ::testing::TestParamInfo<assay::BenchmarkId>& info) {
      std::string name = assay::toString(info.param);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace pdw::ilp

// AssaySchedule container and FluidTask payload-span helpers.
#include <gtest/gtest.h>

#include "assay/schedule.h"

namespace pdw::assay {
namespace {

using arch::Cell;

class ScheduleModelFixture : public ::testing::Test {
 protected:
  ScheduleModelFixture() : chip_(6, 2, 3.0), graph_("model") {
    chip_.addFlowPort({0, 0}, "in");
    device_ = chip_.addDevice(arch::DeviceKind::Mixer, {3, 0});
    chip_.addWastePort({5, 0}, "out");
    r_ = graph_.fluids().addReagent("r");
    op_ = graph_.addOperation(OpKind::Mix, 2.0, {r_});
  }
  arch::ChipLayout chip_;
  SequencingGraph graph_;
  arch::DeviceId device_ = -1;
  FluidId r_ = -1;
  OpId op_ = -1;
};

FluidTask makeTask(double start, double end) {
  FluidTask t;
  t.kind = TaskKind::Transport;
  t.path = arch::FlowPath(
      {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}});
  t.start = start;
  t.end = end;
  return t;
}

TEST_F(ScheduleModelFixture, TaskIdsAssignedSequentially) {
  AssaySchedule s(&graph_, &chip_);
  EXPECT_EQ(s.addTask(makeTask(0, 1)), 0);
  EXPECT_EQ(s.addTask(makeTask(1, 2)), 1);
  EXPECT_EQ(s.task(1).start, 1.0);
}

TEST_F(ScheduleModelFixture, TasksByStartSortsByTimeThenId) {
  AssaySchedule s(&graph_, &chip_);
  s.addTask(makeTask(5, 6));
  s.addTask(makeTask(1, 2));
  s.addTask(makeTask(5, 7));
  const auto order = s.tasksByStart();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);  // tie at t=5: lower id first
  EXPECT_EQ(order[2], 2);
}

TEST_F(ScheduleModelFixture, CompletionTimeSpansOpsAndTasks) {
  AssaySchedule s(&graph_, &chip_);
  s.addOpSchedule({op_, device_, 0.0, 4.0});
  s.addTask(makeTask(3, 9));
  EXPECT_DOUBLE_EQ(s.completionTime(), 9.0);
}

TEST_F(ScheduleModelFixture, WashAccounting) {
  AssaySchedule s(&graph_, &chip_);
  FluidTask wash = makeTask(0, 3);
  wash.kind = TaskKind::Wash;
  s.addTask(wash);
  FluidTask wash2 = makeTask(4, 6);
  wash2.kind = TaskKind::Wash;
  s.addTask(wash2);
  s.addTask(makeTask(0, 1));  // not a wash
  EXPECT_EQ(s.washCount(), 2);
  EXPECT_DOUBLE_EQ(s.washLengthMm(), 2 * 5 * 3.0);  // 5 edges * 3mm each
  EXPECT_DOUBLE_EQ(s.totalWashTime(), 3.0 + 2.0);
}

TEST_F(ScheduleModelFixture, PayloadSpanDefaultsToWholePath) {
  const FluidTask t = makeTask(0, 1);
  EXPECT_EQ(t.payloadCells().size(), 6u);
  EXPECT_EQ(t.payloadCells().front(), (Cell{0, 0}));
  EXPECT_EQ(t.payloadCells().back(), (Cell{5, 0}));
}

TEST_F(ScheduleModelFixture, PayloadSpanClampsIndices) {
  FluidTask t = makeTask(0, 1);
  t.payload_begin = 2;
  t.payload_end = 4;
  const auto cells = t.payloadCells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells.front(), (Cell{2, 0}));
  EXPECT_EQ(cells.back(), (Cell{4, 0}));

  t.payload_begin = -5;  // clamped to 0
  t.payload_end = 100;   // clamped to last
  EXPECT_EQ(t.payloadCells().size(), 6u);
}

TEST_F(ScheduleModelFixture, PayloadInteriorDropsEndpoints) {
  FluidTask t = makeTask(0, 1);
  t.payload_begin = 1;
  t.payload_end = 4;
  const auto interior = t.payloadInterior();
  ASSERT_EQ(interior.size(), 2u);
  EXPECT_EQ(interior.front(), (Cell{2, 0}));
  EXPECT_EQ(interior.back(), (Cell{3, 0}));

  t.payload_end = 2;  // span of 2: no interior
  EXPECT_TRUE(t.payloadInterior().empty());
}

TEST_F(ScheduleModelFixture, WasteBoundFlagPerKind) {
  FluidTask t = makeTask(0, 1);
  t.kind = TaskKind::Transport;
  EXPECT_FALSE(t.isWasteBound());
  t.kind = TaskKind::ExcessRemoval;
  EXPECT_TRUE(t.isWasteBound());
  t.kind = TaskKind::WasteRemoval;
  EXPECT_TRUE(t.isWasteBound());
  t.kind = TaskKind::Wash;
  EXPECT_FALSE(t.isWasteBound());
}

TEST_F(ScheduleModelFixture, DescribeMentionsKindAndNames) {
  AssaySchedule s(&graph_, &chip_);
  s.addOpSchedule({op_, device_, 0.0, 2.0});
  s.addTask(makeTask(2, 3));
  const std::string text = s.describe();
  EXPECT_NE(text.find("transport"), std::string::npos);
  EXPECT_NE(text.find("T_assay"), std::string::npos);
}

}  // namespace
}  // namespace pdw::assay

// Online re-wash (DESIGN.md §15): ScheduleDelta application, incremental
// necessity re-analysis, and Pipeline::resolve() end to end.
//
// Suites:
//   ScheduleDeltaApply    applyDelta validation + shift propagation (every
//                         rejected delta names its reason; untouched items
//                         keep their base times bit-for-bit)
//   IncrementalNecessity  the delta analysis returns exactly what a full
//                         recompute on the perturbed schedule would
//   PipelineResolve       resolve(delta) vs a cold run() on the perturbed
//                         schedule: identical N_wash / L_wash, blocked
//                         cells excluded from wash routes, invalid deltas
//                         leave the resident state usable
//
// Budgets are node/iteration-bound (never wall-clock) so the cold-vs-warm
// comparisons are deterministic under sanitizers and load.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "assay/benchmarks.h"
#include "core/pipeline.h"
#include "core/schedule_delta.h"
#include "sim/metrics.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "wash/contamination.h"
#include "wash/necessity.h"

namespace {

using namespace pdw;
using assay::BenchmarkId;
using assay::TaskKind;
using core::ScheduleDelta;

/// Benchmark bundle whose graph outlives the schedule (Pipeline::resolve
/// keeps a copy of the schedule, which points into the graph and chip).
struct BaseBundle {
  assay::Benchmark benchmark;
  synth::SynthResult synth;
};

BaseBundle makeBundle(BenchmarkId id) {
  BaseBundle bundle;
  bundle.benchmark = assay::makeBenchmark(id);
  bundle.synth = synth::synthesizeOnChip(
      *bundle.benchmark.graph, synth::placeChip(bundle.benchmark.library));
  return bundle;
}

/// Node-bound deterministic options (mirrors test_parallel_determinism).
core::PdwOptions fastOptions() {
  core::PdwOptions options = core::PdwOptions{}
                                 .withThreads(1)
                                 .withoutIlpPaths()
                                 .withScheduleBudget(1e6, 200);
  options.solver.schedule.simplex_iteration_limit = 1500;
  return options;
}

assay::TaskId findRemovableTask(const assay::AssaySchedule& schedule) {
  for (const assay::FluidTask& task : schedule.tasks())
    if (task.kind == TaskKind::ExcessRemoval ||
        task.kind == TaskKind::WasteRemoval)
      return task.id;
  return -1;
}

// ---- ScheduleDeltaApply --------------------------------------------------

TEST(ScheduleDeltaApply, RejectsUnknownIdsAndBadRemovals) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Pcr);
  const assay::AssaySchedule& base = bundle.synth.schedule;

  ScheduleDelta unknown_op;
  unknown_op.op_delays.push_back({9999, 5.0});
  EXPECT_FALSE(core::applyDelta(base, unknown_op).valid);
  EXPECT_NE(core::applyDelta(base, unknown_op).error.find("unknown"),
            std::string::npos);

  ScheduleDelta unknown_task;
  unknown_task.task_delays.push_back({9999, 5.0});
  EXPECT_FALSE(core::applyDelta(base, unknown_task).valid);

  // Transports cannot be removed (their consumer would starve).
  assay::TaskId transport = -1;
  for (const assay::FluidTask& task : base.tasks())
    if (task.kind == TaskKind::Transport) transport = task.id;
  ASSERT_GE(transport, 0);
  ScheduleDelta remove_transport;
  remove_transport.removed_tasks.push_back(transport);
  const core::AppliedDelta applied = core::applyDelta(base, remove_transport);
  EXPECT_FALSE(applied.valid);
  EXPECT_NE(applied.error.find("waste-bound"), std::string::npos);

  ScheduleDelta outside;
  outside.blocked_cells.push_back({10000, 10000});
  EXPECT_FALSE(core::applyDelta(base, outside).valid);

  const assay::TaskId removable = findRemovableTask(base);
  ASSERT_GE(removable, 0);
  ScheduleDelta both;
  both.task_delays.push_back({removable, 2.0});
  both.removed_tasks.push_back(removable);
  EXPECT_FALSE(core::applyDelta(base, both).valid);
}

TEST(ScheduleDeltaApply, DelayPropagatesOnlyForward) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Pcr);
  const assay::AssaySchedule& base = bundle.synth.schedule;
  const assay::OpId delayed = base.opSchedules().front().op;

  ScheduleDelta delta;
  delta.op_delays.push_back({delayed, 7.5});
  const core::AppliedDelta applied = core::applyDelta(base, delta);
  ASSERT_TRUE(applied.valid) << applied.error;
  EXPECT_FALSE(applied.ids_renumbered);
  ASSERT_EQ(applied.schedule.opSchedules().size(), base.opSchedules().size());
  ASSERT_EQ(applied.schedule.tasks().size(), base.tasks().size());

  // The delayed op moved by exactly the delay; nothing moved backwards, and
  // items with zero shift kept their base times bit-for-bit.
  for (std::size_t i = 0; i < base.opSchedules().size(); ++i) {
    const assay::OpSchedule& b = base.opSchedules()[i];
    const assay::OpSchedule& p = applied.schedule.opSchedules()[i];
    ASSERT_EQ(b.op, p.op);
    EXPECT_GE(p.start, b.start);
    const double shift = applied.op_shift[static_cast<std::size_t>(b.op)];
    if (b.op == delayed) EXPECT_DOUBLE_EQ(shift, 7.5);
    if (shift == 0.0) {
      EXPECT_EQ(p.start, b.start);
      EXPECT_EQ(p.end, b.end);
    }
    // Durations are preserved.
    EXPECT_DOUBLE_EQ(p.end - p.start, b.end - b.start);
  }
  for (std::size_t i = 0; i < base.tasks().size(); ++i) {
    const assay::FluidTask& b = base.tasks()[i];
    const assay::FluidTask& p = applied.schedule.tasks()[i];
    EXPECT_GE(p.start, b.start);
    if (applied.task_shift[i] == 0.0) EXPECT_EQ(p.start, b.start);
    EXPECT_DOUBLE_EQ(p.end - p.start, b.end - b.start);
  }
}

TEST(ScheduleDeltaApply, RemovalRenumbersAndRemaps) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Pcr);
  const assay::AssaySchedule& base = bundle.synth.schedule;
  const assay::TaskId removable = findRemovableTask(base);
  ASSERT_GE(removable, 0);

  ScheduleDelta delta;
  delta.removed_tasks.push_back(removable);
  const core::AppliedDelta applied = core::applyDelta(base, delta);
  ASSERT_TRUE(applied.valid) << applied.error;
  EXPECT_EQ(applied.schedule.tasks().size(), base.tasks().size() - 1);
  EXPECT_EQ(applied.task_remap[static_cast<std::size_t>(removable)], -1);
  // Ids are dense, so removing any task but the last renumbers the tail.
  const bool was_last =
      removable == static_cast<assay::TaskId>(base.tasks().size()) - 1;
  EXPECT_EQ(applied.ids_renumbered, !was_last);
  // Every surviving task is found at its remapped id with the same kind.
  for (std::size_t t = 0; t < base.tasks().size(); ++t) {
    const assay::TaskId mapped = applied.task_remap[t];
    if (mapped < 0) continue;
    EXPECT_EQ(applied.schedule.tasks()[static_cast<std::size_t>(mapped)].kind,
              base.tasks()[t].kind);
  }
}

// ---- IncrementalNecessity ------------------------------------------------

TEST(IncrementalNecessity, DeltaAnalysisMatchesFullRecompute) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Ivd);
  const assay::AssaySchedule& base = bundle.synth.schedule;

  wash::NecessityMemo memo;
  const wash::ContaminationTracker tracker(base);
  analyzeWashNecessity(tracker, {}, &memo);
  ASSERT_TRUE(memo.valid);

  ScheduleDelta delta;
  delta.op_delays.push_back({base.opSchedules().front().op, 4.0});
  const core::AppliedDelta applied = core::applyDelta(base, delta);
  ASSERT_TRUE(applied.valid) << applied.error;

  const wash::ContaminationTracker perturbed(applied.schedule);
  wash::NecessityDeltaStats dstats;
  const wash::NecessityResult incremental =
      analyzeWashNecessityDelta(perturbed, memo, {}, &dstats);
  const wash::NecessityResult full = analyzeWashNecessity(perturbed);

  EXPECT_FALSE(dstats.full_fallback);
  EXPECT_GT(dstats.reused_cells, 0);
  ASSERT_EQ(incremental.targets.size(), full.targets.size());
  for (std::size_t i = 0; i < full.targets.size(); ++i) {
    const wash::WashTarget& a = incremental.targets[i];
    const wash::WashTarget& b = full.targets[i];
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_EQ(a.residue, b.residue);
    EXPECT_EQ(a.ready, b.ready);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.contaminating_task, b.contaminating_task);
    EXPECT_EQ(a.contaminating_op, b.contaminating_op);
    EXPECT_EQ(a.blocking_task, b.blocking_task);
  }
  EXPECT_EQ(incremental.stats.targets, full.stats.targets);
  EXPECT_EQ(incremental.stats.skipped_type1, full.stats.skipped_type1);
  EXPECT_EQ(incremental.stats.skipped_type2, full.stats.skipped_type2);
  EXPECT_EQ(incremental.stats.skipped_type3, full.stats.skipped_type3);
  EXPECT_EQ(incremental.stats.contaminated_cell_states,
            full.stats.contaminated_cell_states);
}

TEST(IncrementalNecessity, OptionChangeForcesFullFallback) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Pcr);
  const wash::ContaminationTracker tracker(bundle.synth.schedule);

  wash::NecessityMemo memo;
  analyzeWashNecessity(tracker, {}, &memo);

  wash::NecessityOptions no_type2;
  no_type2.enable_type2 = false;
  wash::NecessityDeltaStats dstats;
  const wash::NecessityResult incremental =
      analyzeWashNecessityDelta(tracker, memo, no_type2, &dstats);
  EXPECT_TRUE(dstats.full_fallback);
  EXPECT_EQ(dstats.reused_cells, 0);

  const wash::NecessityResult full = analyzeWashNecessity(tracker, no_type2);
  EXPECT_EQ(incremental.targets.size(), full.targets.size());
  EXPECT_EQ(incremental.stats.targets, full.stats.targets);
}

// ---- PipelineResolve -----------------------------------------------------

TEST(PipelineResolve, RequiresPriorRun) {
  Pipeline pipeline(fastOptions());
  EXPECT_FALSE(pipeline.canResolve());
  ScheduleDelta delta;
  delta.op_delays.push_back({0, 1.0});
  const PdwResult r = pipeline.resolve(delta);
  EXPECT_TRUE(r.resolve.attempted);
  EXPECT_FALSE(r.resolve.valid);
  EXPECT_FALSE(r.resolve.error.empty());
}

class ResolveVsCold : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(ResolveVsCold, DelayDeltaMatchesColdResolve) {
  const BaseBundle bundle = makeBundle(GetParam());
  const assay::AssaySchedule& base = bundle.synth.schedule;

  Pipeline warm(fastOptions());
  const PdwResult first = warm.run(base);
  ASSERT_TRUE(warm.canResolve());

  ScheduleDelta delta;
  delta.op_delays.push_back({base.opSchedules().front().op, 6.0});
  const core::AppliedDelta applied = core::applyDelta(base, delta);
  ASSERT_TRUE(applied.valid) << applied.error;

  const PdwResult incremental = warm.resolve(delta);
  ASSERT_TRUE(incremental.resolve.valid) << incremental.resolve.error;

  Pipeline cold(fastOptions());
  const PdwResult scratch = cold.run(applied.schedule);

  // The tentpole's correctness bar: the wash set is identical to a
  // from-scratch re-solve on the perturbed schedule (necessity, clustering
  // and routing are bit-identical; only the repair-mode re-timing differs).
  const sim::WashMetrics mi = sim::computeMetrics(incremental.schedule(), base);
  const sim::WashMetrics mc = sim::computeMetrics(scratch.schedule(), base);
  EXPECT_EQ(mi.n_wash, mc.n_wash);
  EXPECT_DOUBLE_EQ(mi.l_wash_mm, mc.l_wash_mm);
  EXPECT_EQ(incremental.wash_operations, scratch.wash_operations);

  // Reuse accounting: the partitions hold and the frontier is partial.
  const ResolveStats& rs = incremental.resolve;
  EXPECT_GT(rs.reused_cells, 0);
  EXPECT_FALSE(rs.full_fallback);
  EXPECT_EQ(first.wash_operations > 0, rs.routes_reused > 0)
      << "unchanged wash routes should be served by the warm route cache";
}

INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, ResolveVsCold,
                         ::testing::Values(BenchmarkId::Pcr, BenchmarkId::Ivd,
                                           BenchmarkId::ProteinSplit),
                         [](const ::testing::TestParamInfo<BenchmarkId>& info) {
                           std::string name = assay::toString(info.param);
                           for (char& c : name)
                             if (c == ' ' || c == '-') c = '_';
                           return name;
                         });

TEST(PipelineResolve, DeltasComposeAndInvalidDeltaLeavesStateUsable) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Pcr);
  const assay::AssaySchedule& base = bundle.synth.schedule;

  Pipeline pipeline(fastOptions());
  pipeline.run(base);

  ScheduleDelta first;
  first.op_delays.push_back({base.opSchedules().front().op, 3.0});
  ASSERT_TRUE(pipeline.resolve(first).resolve.valid);

  // Invalid delta: rejected, state untouched.
  ScheduleDelta bogus;
  bogus.op_delays.push_back({424242, 1.0});
  const PdwResult rejected = pipeline.resolve(bogus);
  EXPECT_FALSE(rejected.resolve.valid);

  // A second valid delta composes on the re-based (doubly-perturbed)
  // schedule: the wash set matches a cold solve of base + 3s + 2s. (The
  // scheduler itself may re-time ops freely — the delta perturbs the
  // *input* schedule; it is not an output pin.)
  ScheduleDelta second;
  const assay::OpId op = base.opSchedules().front().op;
  second.op_delays.push_back({op, 2.0});
  const PdwResult composed = pipeline.resolve(second);
  ASSERT_TRUE(composed.resolve.valid) << composed.resolve.error;

  const core::AppliedDelta once = core::applyDelta(base, first);
  ASSERT_TRUE(once.valid);
  const core::AppliedDelta twice = core::applyDelta(once.schedule, second);
  ASSERT_TRUE(twice.valid);
  Pipeline cold(fastOptions());
  const PdwResult scratch = cold.run(twice.schedule);
  const sim::WashMetrics mi = sim::computeMetrics(composed.schedule(), base);
  const sim::WashMetrics mc = sim::computeMetrics(scratch.schedule(), base);
  EXPECT_EQ(mi.n_wash, mc.n_wash);
  EXPECT_DOUBLE_EQ(mi.l_wash_mm, mc.l_wash_mm);
}

TEST(PipelineResolve, RemovalFallsBackToFullRecompute) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Pcr);
  const assay::AssaySchedule& base = bundle.synth.schedule;
  const assay::TaskId removable = findRemovableTask(base);
  ASSERT_GE(removable, 0);

  Pipeline pipeline(fastOptions());
  pipeline.run(base);

  ScheduleDelta delta;
  delta.removed_tasks.push_back(removable);
  const core::AppliedDelta applied = core::applyDelta(base, delta);
  ASSERT_TRUE(applied.valid) << applied.error;

  const PdwResult r = pipeline.resolve(delta);
  ASSERT_TRUE(r.resolve.valid) << r.resolve.error;
  // Renumbered ids invalidate the memo — correctness over reuse.
  EXPECT_EQ(r.resolve.full_fallback, applied.ids_renumbered);

  Pipeline cold(fastOptions());
  const PdwResult scratch = cold.run(applied.schedule);
  const sim::WashMetrics mi = sim::computeMetrics(r.schedule(), base);
  const sim::WashMetrics mc = sim::computeMetrics(scratch.schedule(), base);
  EXPECT_EQ(mi.n_wash, mc.n_wash);
  EXPECT_DOUBLE_EQ(mi.l_wash_mm, mc.l_wash_mm);
}

TEST(PipelineResolve, BlockedCellExcludedFromWashRoutes) {
  const BaseBundle bundle = makeBundle(BenchmarkId::Ivd);
  const assay::AssaySchedule& base = bundle.synth.schedule;

  Pipeline pipeline(fastOptions());
  const PdwResult first = pipeline.run(base);

  // Pick a wash-route transit cell the base schedule never uses: blocking
  // it cannot invalidate a wash *target*, only force a different route.
  std::set<arch::Cell> used;
  for (const arch::Cell& cell : wash::ContaminationTracker(base).usedCells())
    used.insert(cell);
  arch::Cell blocked{-1, -1};
  for (const assay::FluidTask& task : first.schedule().tasks()) {
    if (task.kind != TaskKind::Wash) continue;
    for (const arch::Cell& c : task.path.cells())
      if (!used.count(c)) {
        blocked = c;
        break;
      }
    if (blocked.x >= 0) break;
  }
  if (blocked.x < 0) GTEST_SKIP() << "no blockable transit cell";

  ScheduleDelta delta;
  delta.blocked_cells.push_back(blocked);
  const PdwResult r = pipeline.resolve(delta);
  ASSERT_TRUE(r.resolve.valid) << r.resolve.error;
  for (const assay::FluidTask& task : r.schedule().tasks()) {
    if (task.kind != TaskKind::Wash) continue;
    for (const arch::Cell& c : task.path.cells())
      EXPECT_FALSE(c == blocked)
          << "wash route crosses blocked cell " << c.x << ":" << c.y;
  }

  // Cold equivalence: a from-scratch solve told to avoid the same cell
  // produces the same wash set.
  core::PdwOptions cold_options = fastOptions();
  cold_options.path.avoid_cells.push_back(blocked);
  Pipeline cold(cold_options);
  const PdwResult scratch = cold.run(base);
  const sim::WashMetrics mi = sim::computeMetrics(r.schedule(), base);
  const sim::WashMetrics mc = sim::computeMetrics(scratch.schedule(), base);
  EXPECT_EQ(mi.n_wash, mc.n_wash);
}

TEST(PipelineResolve, BlockedTargetCellDropsItsWashNotTheProcess) {
  // Blocking a cell that itself needs washing makes that wash physically
  // impossible: the operation must be dropped as unroutable (loud log,
  // unroutable_operations count) — regression for a map::at crash when a
  // blocked target survived into the path ILP's region-excluded model.
  const BaseBundle bundle = makeBundle(BenchmarkId::Pcr);
  const assay::AssaySchedule& base = bundle.synth.schedule;

  Pipeline pipeline(fastOptions());
  const PdwResult first = pipeline.run(base);
  ASSERT_GT(first.schedule().washCount(), 0);

  // Block an actual wash-target cell, straight from necessity analysis.
  const wash::ContaminationTracker tracker(base);
  const wash::NecessityResult necessity =
      wash::analyzeWashNecessity(tracker, fastOptions().necessity);
  ASSERT_FALSE(necessity.targets.empty());
  const arch::Cell target = necessity.targets.front().cell;

  ScheduleDelta delta;
  delta.blocked_cells.push_back(target);
  const PdwResult r = pipeline.resolve(delta);
  ASSERT_TRUE(r.resolve.valid) << r.resolve.error;
  EXPECT_GT(r.unroutable_operations, 0);
  EXPECT_LT(r.schedule().washCount(), first.schedule().washCount());
  for (const assay::FluidTask& task : r.schedule().tasks()) {
    if (task.kind != TaskKind::Wash) continue;
    for (const arch::Cell& c : task.path.cells()) EXPECT_FALSE(c == target);
  }

  // Both routing modes agree on the semantics (ILP path mode too).
  core::PdwOptions ilp_options = fastOptions();
  ilp_options.use_ilp_paths = true;
  ilp_options.path.avoid_cells.push_back(target);
  const PdwResult scratch = Pipeline(ilp_options).run(base);
  EXPECT_GT(scratch.unroutable_operations, 0);
  EXPECT_EQ(scratch.schedule().washCount(), r.schedule().washCount());
}

}  // namespace

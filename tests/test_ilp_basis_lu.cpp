// BasisLu unit tests: factor/solve residuals in both sparse-Markowitz and
// dense-fallback modes, singular-basis rejection, product-form update
// correctness against a fresh factorization, and drift across long eta
// chains (the refactorization policy's safety margin).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "ilp/basis_lu.h"
#include "util/rng.h"

namespace pdw::ilp {
namespace {

using Columns = std::vector<BasisLu::SparseColumn>;

/// Random strictly column-diagonally-dominant basis (hence nonsingular):
/// position p owns row perm[p] with a dominant entry, plus off-diagonal
/// noise whose total magnitude stays below the dominant entry.
Columns randomBasis(util::Rng& rng, int m, double density) {
  std::vector<int> perm(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);

  Columns cols(static_cast<std::size_t>(m));
  const double off_mag = 1.5 / static_cast<double>(m);
  for (int p = 0; p < m; ++p) {
    BasisLu::SparseColumn& col = cols[static_cast<std::size_t>(p)];
    const int diag_row = perm[static_cast<std::size_t>(p)];
    for (int r = 0; r < m; ++r) {
      if (r == diag_row) {
        col.emplace_back(r, 2.0 + 4.0 * rng.uniform());
      } else if (rng.chance(density)) {
        col.emplace_back(r, off_mag * (2.0 * rng.uniform() - 1.0));
      }
    }
  }
  return cols;
}

std::vector<double> randomVector(util::Rng& rng, int m) {
  std::vector<double> v(static_cast<std::size_t>(m));
  for (double& x : v) x = 2.0 * rng.uniform() - 1.0;
  return v;
}

/// max_r | (B x)_r - rhs_r | with x position-indexed (ftran output).
double ftranResidual(const Columns& cols, const std::vector<double>& x,
                     const std::vector<double>& rhs) {
  std::vector<double> bx(rhs.size(), 0.0);
  for (std::size_t p = 0; p < cols.size(); ++p)
    for (const auto& [row, value] : cols[p])
      bx[static_cast<std::size_t>(row)] += value * x[p];
  double worst = 0.0;
  for (std::size_t r = 0; r < rhs.size(); ++r)
    worst = std::max(worst, std::abs(bx[r] - rhs[r]));
  return worst;
}

/// max_p | (Bᵀ y)_p - c_p | with y row-indexed (btran output).
double btranResidual(const Columns& cols, const std::vector<double>& y,
                     const std::vector<double>& c) {
  double worst = 0.0;
  for (std::size_t p = 0; p < cols.size(); ++p) {
    double dot = 0.0;
    for (const auto& [row, value] : cols[p])
      dot += value * y[static_cast<std::size_t>(row)];
    worst = std::max(worst, std::abs(dot - c[p]));
  }
  return worst;
}

void expectSolves(BasisLu& lu, const Columns& cols, util::Rng& rng,
                  double tol) {
  const int m = static_cast<int>(cols.size());
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<double> rhs = randomVector(rng, m);
    std::vector<double> x = rhs;
    lu.ftran(x);
    EXPECT_LT(ftranResidual(cols, x, rhs), tol);

    const std::vector<double> c = randomVector(rng, m);
    std::vector<double> y = c;
    lu.btran(y);
    EXPECT_LT(btranResidual(cols, y, c), tol);
  }
}

TEST(BasisLu, PermutedIdentitySolvesExactly) {
  util::Rng rng(1);
  const int m = 7;
  std::vector<int> perm{3, 0, 6, 1, 5, 2, 4};
  Columns cols(static_cast<std::size_t>(m));
  for (int p = 0; p < m; ++p)
    cols[static_cast<std::size_t>(p)].emplace_back(
        perm[static_cast<std::size_t>(p)], 1.0);

  BasisLu lu;
  ASSERT_TRUE(lu.factor(m, cols));
  EXPECT_TRUE(lu.valid());
  EXPECT_EQ(lu.size(), m);
  expectSolves(lu, cols, rng, 1e-12);
}

TEST(BasisLu, SparseModeRandomBasesSolve) {
  util::Rng rng(42);
  for (int m : {6, 24, 48}) {
    const Columns cols = randomBasis(rng, m, 0.10);
    BasisLu lu;
    ASSERT_TRUE(lu.factor(m, cols)) << "m=" << m;
    if (m >= 32) {
      EXPECT_FALSE(lu.usedDenseMode()) << "m=" << m;
    }
    expectSolves(lu, cols, rng, 1e-8);
  }
}

TEST(BasisLu, DenseModeRandomBasesSolve) {
  util::Rng rng(43);
  const int m = 48;
  const Columns cols = randomBasis(rng, m, 0.7);
  BasisLu lu;
  ASSERT_TRUE(lu.factor(m, cols));
  EXPECT_TRUE(lu.usedDenseMode());
  expectSolves(lu, cols, rng, 1e-8);
}

TEST(BasisLu, SingularBasisRejected) {
  util::Rng rng(7);
  for (int m : {5, 40}) {
    Columns cols = randomBasis(rng, m, 0.2);
    // Duplicate one column over another: rank deficiency.
    cols[1] = cols[0];
    BasisLu lu;
    EXPECT_FALSE(lu.factor(m, cols)) << "duplicate column, m=" << m;
    EXPECT_FALSE(lu.valid());

    cols = randomBasis(rng, m, 0.2);
    cols[2].clear();  // structurally empty column
    EXPECT_FALSE(lu.factor(m, cols)) << "empty column, m=" << m;
    EXPECT_FALSE(lu.valid());
  }
}

TEST(BasisLu, SingularThenRecoverByRefactor) {
  // The engine's recovery path: a failed factor() must leave the object in
  // a state from which a factor() of a good basis succeeds cleanly.
  util::Rng rng(8);
  const int m = 12;
  Columns good = randomBasis(rng, m, 0.25);
  Columns bad = good;
  bad[4] = bad[9];

  BasisLu lu;
  EXPECT_FALSE(lu.factor(m, bad));
  ASSERT_TRUE(lu.factor(m, good));
  expectSolves(lu, good, rng, 1e-8);
}

TEST(BasisLu, ProductFormUpdateMatchesFreshFactor) {
  util::Rng rng(1234);
  const int m = 20;
  Columns cols = randomBasis(rng, m, 0.3);
  BasisLu lu;
  ASSERT_TRUE(lu.factor(m, cols));

  int applied = 0;
  for (int step = 0; step < 12; ++step) {
    // Entering column: another dominant random column.
    const int pos = rng.intIn(0, m - 1);
    const Columns fresh_col = randomBasis(rng, m, 0.3);
    const BasisLu::SparseColumn& entering = fresh_col[static_cast<std::size_t>(pos)];

    std::vector<double> alpha(static_cast<std::size_t>(m), 0.0);
    for (const auto& [row, value] : entering)
      alpha[static_cast<std::size_t>(row)] = value;
    lu.ftran(alpha);  // alpha := B⁻¹ a, position-indexed
    if (std::abs(alpha[static_cast<std::size_t>(pos)]) < 1e-6) continue;

    ASSERT_TRUE(lu.update(pos, alpha));
    cols[static_cast<std::size_t>(pos)] = entering;
    ++applied;

    // The eta-updated solves must match a from-scratch factorization of
    // the modified basis.
    BasisLu oracle;
    ASSERT_TRUE(oracle.factor(m, cols));
    const std::vector<double> rhs = randomVector(rng, m);
    std::vector<double> x_eta = rhs, x_oracle = rhs;
    lu.ftran(x_eta);
    oracle.ftran(x_oracle);
    for (int p = 0; p < m; ++p)
      EXPECT_NEAR(x_eta[static_cast<std::size_t>(p)],
                  x_oracle[static_cast<std::size_t>(p)], 1e-7)
          << "step " << step << " pos " << p;

    const std::vector<double> c = randomVector(rng, m);
    std::vector<double> y_eta = c, y_oracle = c;
    lu.btran(y_eta);
    oracle.btran(y_oracle);
    for (int r = 0; r < m; ++r)
      EXPECT_NEAR(y_eta[static_cast<std::size_t>(r)],
                  y_oracle[static_cast<std::size_t>(r)], 1e-7)
          << "step " << step << " row " << r;
  }
  EXPECT_GE(applied, 6);
  EXPECT_EQ(lu.updates(), applied);
}

TEST(BasisLu, UpdateRefusesTinyPivot) {
  util::Rng rng(5);
  const int m = 8;
  const Columns cols = randomBasis(rng, m, 0.3);
  BasisLu lu;
  ASSERT_TRUE(lu.factor(m, cols));
  std::vector<double> alpha(static_cast<std::size_t>(m), 1.0);
  alpha[3] = 1e-12;  // below kUpdatePivotTol
  EXPECT_FALSE(lu.update(3, alpha));
  EXPECT_EQ(lu.updates(), 0);  // factorization untouched
  expectSolves(lu, cols, rng, 1e-8);
}

TEST(BasisLu, DriftStaysBoundedAcrossLongEtaChain) {
  // 40 consecutive product-form updates — well past the engine's sparse
  // refactorization interval — must keep solve residuals within the drift
  // tolerance the post-warm-solve scan assumes (1e-6).
  util::Rng rng(99);
  const int m = 30;
  Columns cols = randomBasis(rng, m, 0.2);
  BasisLu lu;
  ASSERT_TRUE(lu.factor(m, cols));

  int applied = 0;
  while (applied < 40) {
    const int pos = rng.intIn(0, m - 1);
    const BasisLu::SparseColumn entering =
        randomBasis(rng, m, 0.2)[static_cast<std::size_t>(pos)];
    std::vector<double> alpha(static_cast<std::size_t>(m), 0.0);
    for (const auto& [row, value] : entering)
      alpha[static_cast<std::size_t>(row)] = value;
    lu.ftran(alpha);
    if (std::abs(alpha[static_cast<std::size_t>(pos)]) < 1e-6) continue;
    ASSERT_TRUE(lu.update(pos, alpha));
    cols[static_cast<std::size_t>(pos)] = entering;
    ++applied;
  }
  EXPECT_EQ(lu.updates(), 40);

  const std::vector<double> rhs = randomVector(rng, m);
  std::vector<double> x = rhs;
  lu.ftran(x);
  EXPECT_LT(ftranResidual(cols, x, rhs), 1e-6);

  // Refactorizing re-anchors: residual returns to fresh-factor accuracy.
  ASSERT_TRUE(lu.factor(m, cols));
  EXPECT_EQ(lu.updates(), 0);
  std::vector<double> x2 = rhs;
  lu.ftran(x2);
  EXPECT_LT(ftranResidual(cols, x2, rhs), 1e-9);
}

}  // namespace
}  // namespace pdw::ilp

// pdwd integration + robustness suite (DESIGN.md §14).
//
// Everything here drives the daemon in-process through the same
// handleLine() surface every transport uses, so the full protocol, the
// admission queue, the solver lanes and both shared caches are exercised
// without a socket — plus one real unix-socket round trip at the end.
//
// Suites:
//   PdwdProtocol     strict parsing: malformed / truncated / oversized /
//                    type-confused input always yields a structured error
//                    (deterministic fuzz corpus included — an LCG, not
//                    rand(), so failures replay)
//   PdwdDaemon       solve -> warm hit (byte-identical plan, metrics
//                    delta), scrape / ping / invalidate, stdio batch,
//                    shutdown drains in-flight work
//   PdwdConcurrency  N concurrent identical requests produce byte-identical
//                    plans (TSAN target; budgets are optimality-bound so a
//                    10x sanitizer slowdown cannot change the answer)
//   PdwdOverload     bounded queue rejects, queued deadlines expire,
//                    tiny budgets answer budget_hit with a usable plan
//   RouteCacheEpoch  epoch-guarded inserts drop stale results, concurrent
//                    readers survive repeated invalidation (TSAN target)
//   PlanCacheVersion versioned plan-cache unit tests (bumpTo, stale drop)
//   PdwdSocket       SocketServer + LineClient round trip, oversize
//                    recovery, disconnect-before-read survival (SIGPIPE),
//                    shutdown ends the accept loop
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/path.h"
#include "core/route_cache.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/plan_cache.h"
#include "service/protocol.h"
#include "service/server.h"

namespace {

using namespace pdw;
using service::Daemon;
using service::DaemonOptions;
using service::parseRequest;

// ---- helpers -------------------------------------------------------------

obs::json::Value parseResponse(const std::string& line) {
  const std::optional<obs::json::Value> doc = obs::json::parse(line);
  EXPECT_TRUE(doc.has_value()) << "unparseable response: " << line;
  if (!doc) return obs::json::Value{};
  EXPECT_TRUE(doc->isObject()) << line;
  const obs::json::Value* schema = doc->find("schema");
  EXPECT_TRUE(schema && schema->isString() &&
              schema->string == service::kResponseSchema)
      << line;
  return *doc;
}

std::string str(const obs::json::Value& doc, const std::string& key) {
  const obs::json::Value* v = doc.find(key);
  return v && v->isString() ? v->string : std::string();
}

double num(const obs::json::Value& doc, const std::string& key) {
  const obs::json::Value* v = doc.find(key);
  return v && v->isNumber() ? v->number : 0.0;
}

bool boolean(const obs::json::Value& doc, const std::string& key) {
  const obs::json::Value* v = doc.find(key);
  return v && v->kind == obs::json::Value::Kind::Bool && v->boolean;
}

std::int64_t counterDelta(const obs::MetricsSnapshot& baseline,
                          const char* name) {
  return obs::Registry::instance().snapshot().since(baseline).counter(name);
}

/// Histogram observation count (0 when the metric is absent).
std::int64_t histCount(const obs::MetricsSnapshot& snapshot,
                       const char* name) {
  const auto it = snapshot.values.find(name);
  return it == snapshot.values.end() ? 0 : it->second.count;
}

/// Spin (with sleeps) until `pred` holds; fails the test on timeout.
void awaitTrue(const std::function<bool()>& pred, const char* what,
               double timeout_s = 30.0) {
  const auto t0 = std::chrono::steady_clock::now();
  while (!pred()) {
    ASSERT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count(),
              timeout_s)
        << "timed out waiting for " << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::string solveLine(const std::string& id, const std::string& benchmark,
                      const std::string& extra = "") {
  return "{\"schema\":\"pdw-req-1\",\"type\":\"solve\",\"id\":\"" + id +
         "\",\"benchmark\":\"" + benchmark + "\"" + extra + "}";
}

std::string sleepLine(const std::string& id, double sleep_ms,
                      const std::string& extra = "") {
  std::ostringstream out;
  out << "{\"schema\":\"pdw-req-1\",\"type\":\"solve\",\"id\":\"" << id
      << "\",\"sleep_ms\":" << sleep_ms << extra << "}";
  return out.str();
}

// ---- PdwdProtocol --------------------------------------------------------

TEST(PdwdProtocol, ValidSolveRequestParses) {
  const auto parsed = parseRequest(
      "{\"schema\":\"pdw-req-1\",\"type\":\"solve\",\"id\":\"r1\","
      "\"benchmark\":\"PCR\",\"budget_s\":2.5,\"deadline_ms\":4000,"
      "\"cache\":false,\"cuts\":\"gomory\",\"engine\":\"revised\","
      "\"cache_version\":3,\"sleep_ms\":0}");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const service::Request& req = *parsed.request;
  EXPECT_EQ(req.type, service::RequestType::Solve);
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.benchmark, "PCR");
  EXPECT_DOUBLE_EQ(req.budget_s, 2.5);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 4000.0);
  EXPECT_FALSE(req.use_cache);
  EXPECT_EQ(req.cuts, "gomory");
  EXPECT_EQ(req.engine, "revised");
  EXPECT_EQ(req.cache_version, 3u);
}

TEST(PdwdProtocol, DefaultsAndUnknownKeysIgnored) {
  // Unknown keys pass through silently (forward compatibility); type
  // defaults to solve; cache defaults to on.
  const auto parsed = parseRequest(
      "{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\","
      "\"future_knob\":{\"nested\":[1,2,3]},\"another\":null}");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.request->type, service::RequestType::Solve);
  EXPECT_TRUE(parsed.request->use_cache);
  EXPECT_DOUBLE_EQ(parsed.request->budget_s, 0.0);
}

TEST(PdwdProtocol, RejectsMalformedAndSchemaErrors) {
  EXPECT_EQ(parseRequest("").error_code, "parse");
  EXPECT_EQ(parseRequest("{not json").error_code, "parse");
  EXPECT_EQ(parseRequest("42").error_code, "parse");       // not an object
  EXPECT_EQ(parseRequest("[1,2,3]").error_code, "parse");  // not an object
  EXPECT_EQ(parseRequest("{}").error_code, "schema");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-9\"}").error_code, "schema");
  EXPECT_EQ(parseRequest("{\"schema\":1}").error_code, "schema");
}

TEST(PdwdProtocol, RejectsTypeConfusion) {
  // Present-but-wrong-type is a protocol error, never a silent default.
  EXPECT_EQ(
      parseRequest(
          "{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\",\"budget_s\":\"4\"}")
          .error_code,
      "type");
  EXPECT_EQ(parseRequest(
                "{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\",\"cache\":1}")
                .error_code,
            "type");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"benchmark\":7}")
                .error_code,
            "type");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":[\"solve\"]}")
                .error_code,
            "type");
}

TEST(PdwdProtocol, RejectsValueErrors) {
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\","
                         "\"budget_s\":-1}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\","
                         "\"deadline_ms\":-5}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\","
                         "\"cuts\":\"zigzag\"}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\","
                         "\"cache_version\":1.5}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"dance\"}")
                .error_code,
            "value");
  // A solve with neither benchmark nor sleep_ms has nothing to do.
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"solve\"}")
                .error_code,
            "value");
}

TEST(PdwdProtocol, ResolveRequestParsesAndValidates) {
  const auto parsed = parseRequest(
      "{\"schema\":\"pdw-req-1\",\"type\":\"resolve\",\"id\":\"r1\","
      "\"benchmark\":\"PCR\",\"delay_op\":3,\"delay_s\":2.5,"
      "\"block_cell\":\"4:7\",\"remove_task\":9}");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const service::Request& req = *parsed.request;
  EXPECT_EQ(req.type, service::RequestType::Resolve);
  EXPECT_EQ(req.delay_op, 3);
  EXPECT_EQ(req.delay_task, -1);
  EXPECT_DOUBLE_EQ(req.delay_s, 2.5);
  EXPECT_EQ(req.block_cell, "4:7");
  EXPECT_EQ(req.remove_task, 9);
  int x = -1, y = -1;
  EXPECT_TRUE(service::parseCellSpec(req.block_cell, &x, &y));
  EXPECT_EQ(x, 4);
  EXPECT_EQ(y, 7);

  // A benchmark is mandatory: there is no resident pipeline without one.
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"delay_op\":0,\"delay_s\":1}")
                .error_code,
            "value");
  // Delay target and delay seconds come as a pair, both ways round.
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"benchmark\":\"PCR\",\"delay_op\":0}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"benchmark\":\"PCR\",\"delay_s\":2}")
                .error_code,
            "value");
  // A resolve with no perturbation at all has nothing to repair.
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"benchmark\":\"PCR\"}")
                .error_code,
            "value");
  // Ids are non-negative integers — fractional or negative is refused.
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"benchmark\":\"PCR\",\"delay_op\":1.5,"
                         "\"delay_s\":2}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"benchmark\":\"PCR\",\"remove_task\":-1}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"benchmark\":\"PCR\",\"delay_op\":\"0\","
                         "\"delay_s\":2}")
                .error_code,
            "type");
}

TEST(PdwdProtocol, RejectsMalformedCellSpecs) {
  int x = 0, y = 0;
  for (const char* bad : {"", ":", "4:", ":7", "4", "4:7:2", "x:y", "4 :7",
                          "-1:3", "4:+7", "0x4:7", "1234567890:1"})
    EXPECT_FALSE(service::parseCellSpec(bad, &x, &y)) << bad;
  EXPECT_TRUE(service::parseCellSpec("0:0", &x, &y));
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 0);
  // The parse-level gate uses the same predicate.
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"resolve\","
                         "\"benchmark\":\"PCR\",\"block_cell\":\"4x7\"}")
                .error_code,
            "value");
}

TEST(PdwdProtocol, SurrogateEscapesOnTheWire) {
  // Astral-plane ids arrive as surrogate-pair escapes (RFC 8259 §7) and
  // must decode to 4-byte UTF-8 — and echo back intact in the response.
  const auto parsed = parseRequest(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\","
      "\"id\":\"\\uD83D\\uDE00\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.request->id, "\xF0\x9F\x98\x80");

  DaemonOptions options;
  options.lanes = 1;
  options.threads = 1;
  Daemon daemon(options);
  const obs::json::Value doc = parseResponse(daemon.handleLine(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\","
      "\"id\":\"\\uD83D\\uDE00\"}"));
  EXPECT_EQ(str(doc, "id"), "\xF0\x9F\x98\x80");

  // Lone or malformed surrogates are structured parse errors, not mangled
  // ids reaching the admission path.
  for (const char* line :
       {"{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"\\uD83D\"}",
        "{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"\\uDE00\"}",
        "{\"schema\":\"pdw-req-1\",\"type\":\"ping\","
        "\"id\":\"\\uD83D\\u0041\"}"}) {
    EXPECT_EQ(parseRequest(line).error_code, "parse") << line;
    EXPECT_EQ(str(parseResponse(daemon.handleLine(line)), "code"), "parse")
        << line;
  }
  daemon.shutdown();
}

TEST(PdwdProtocol, RejectsCacheVersionBeyondExactDoubles) {
  // 2^53 is the last double-exact integer: a larger value is ambiguous and
  // the uint64 cast would be UB for huge magnitudes (e.g. 1e300), while a
  // value near UINT64_MAX would park the version one ++ away from wrapping.
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"ping\","
                         "\"cache_version\":1e300}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"ping\","
                         "\"cache_version\":9007199254740992}")
                .error_code,
            "value");
  EXPECT_EQ(parseRequest("{\"schema\":\"pdw-req-1\",\"type\":\"ping\","
                         "\"cache_version\":18446744073709551615}")
                .error_code,
            "value");
  // The largest exact integer below the bound round-trips precisely.
  const auto ok = parseRequest(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\","
      "\"cache_version\":9007199254740991}");
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.request->cache_version, 9007199254740991ull);
}

TEST(PdwdProtocol, RejectsOversizedLines) {
  // One byte over the documented cap is refused before any JSON parsing.
  std::string big = "{\"schema\":\"pdw-req-1\",\"id\":\"";
  big.append(service::kMaxRequestBytes, 'x');
  big += "\"}";
  const auto parsed = parseRequest(big);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error_code, "oversize");

  // At the cap exactly, size is not the reason to refuse.
  std::string fits = "{\"schema\":\"pdw-req-1\",\"benchmark\":\"PCR\",";
  fits += "\"id\":\"";
  fits.append(service::kMaxRequestBytes - fits.size() - 2, 'y');
  fits += "\"}";
  ASSERT_EQ(fits.size(), service::kMaxRequestBytes);
  EXPECT_TRUE(parseRequest(fits).ok());
}

TEST(PdwdProtocol, TruncationsNeverParse) {
  const std::string full =
      "{\"schema\":\"pdw-req-1\",\"type\":\"solve\",\"benchmark\":\"PCR\","
      "\"budget_s\":0.5,\"cache\":true}";
  for (std::size_t n = 0; n < full.size(); ++n) {
    const auto parsed = parseRequest(std::string_view(full).substr(0, n));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << n << " parsed";
    EXPECT_FALSE(parsed.error_code.empty());
  }
}

TEST(PdwdProtocol, SerializersRoundTripThroughJson) {
  const std::string err = service::errorResponse("id-1", "parse", "bad \"x\"");
  obs::json::Value doc = parseResponse(err);
  EXPECT_EQ(str(doc, "status"), "error");
  EXPECT_EQ(str(doc, "code"), "parse");
  EXPECT_EQ(str(doc, "error"), "bad \"x\"");

  doc = parseResponse(service::ackResponse(service::RequestType::Invalidate,
                                           "id-2", "t-9", 7));
  EXPECT_EQ(str(doc, "status"), "ok");
  EXPECT_EQ(str(doc, "type"), "invalidate");
  EXPECT_DOUBLE_EQ(num(doc, "cache_version"), 7.0);

  doc = parseResponse(service::metricsResponse(
      "id-3", "t-10", obs::Registry::instance().exportJson()));
  const obs::json::Value* metrics = doc.find("metrics");
  ASSERT_TRUE(metrics && metrics->isObject());
  EXPECT_EQ(str(*metrics, "schema"), "pdw-metrics-1");
}

/// Deterministic fuzz: random bytes, truncations and single-edit mutations
/// of a valid request. The invariant under test is the protocol's promise —
/// any input yields either a parsed request or a structured error, and the
/// daemon always answers with one pdw-resp-1 line. Seeded LCG, no rand():
/// a failure reproduces from the iteration index alone.
TEST(PdwdProtocol, FuzzAlwaysAnswersStructured) {
  DaemonOptions options;
  options.lanes = 1;
  options.queue_capacity = 4;
  options.threads = 1;
  Daemon daemon(options);

  std::uint64_t state = 0x243f6a8885a308d3ull;  // fixed seed
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const std::string valid =
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"fuzz\"}";
  const std::string known_codes[] = {"oversize", "parse", "schema", "type",
                                     "value"};

  for (int i = 0; i < 400; ++i) {
    std::string line;
    if (i % 2 == 0) {
      // Random bytes (printable-heavy so JSON-ish fragments appear).
      const std::size_t len = next() % 120;
      for (std::size_t j = 0; j < len; ++j)
        line.push_back(static_cast<char>(next() % 96 + 32));
    } else {
      // Single-edit mutation of the valid ping (replace/insert/delete).
      line = valid;
      const std::size_t pos = next() % line.size();
      switch (next() % 3) {
        case 0: line[pos] = static_cast<char>(next() % 96 + 32); break;
        case 1:
          line.insert(pos, 1, static_cast<char>(next() % 96 + 32));
          break;
        default: line.erase(pos, 1); break;
      }
    }

    const auto parsed = parseRequest(line);
    if (!parsed.ok()) {
      bool known = false;
      for (const std::string& code : known_codes)
        if (parsed.error_code == code) known = true;
      EXPECT_TRUE(known) << "iteration " << i << ": unknown error code \""
                         << parsed.error_code << "\" for: " << line;
      EXPECT_FALSE(parsed.error.empty()) << "iteration " << i;
    }

    // The daemon answers every line, parseable or not, with one response.
    const std::string response = daemon.handleLine(line);
    const obs::json::Value doc = parseResponse(response);
    EXPECT_FALSE(str(doc, "status").empty())
        << "iteration " << i << ": " << response;
  }
  daemon.shutdown();
}

// ---- PdwdDaemon ----------------------------------------------------------

TEST(PdwdDaemon, SolveWarmsAndInvalidates) {
  const obs::MetricsSnapshot baseline = obs::Registry::instance().snapshot();
  DaemonOptions options;
  options.lanes = 1;
  options.threads = 1;
  options.default_budget_s = 60.0;  // Kinase act-1 proves optimal in ~0.5 s
  Daemon daemon(options);

  // Cold solve: full pipeline, plan present, not warm.
  obs::json::Value cold =
      parseResponse(daemon.handleLine(solveLine("c1", "Kinase act-1")));
  EXPECT_EQ(str(cold, "id"), "c1");
  EXPECT_EQ(str(cold, "status"), "ok");
  EXPECT_FALSE(boolean(cold, "warm"));
  EXPECT_TRUE(boolean(cold, "proven_optimal"));
  const std::string plan = str(cold, "plan");
  EXPECT_FALSE(plan.empty());
  EXPECT_GT(num(cold, "n_wash"), 0.0);

  // Identical request: served from the plan cache, byte-identical plan.
  obs::json::Value warm =
      parseResponse(daemon.handleLine(solveLine("c2", "Kinase act-1")));
  EXPECT_EQ(str(warm, "status"), "ok");
  EXPECT_TRUE(boolean(warm, "warm"));
  EXPECT_EQ(str(warm, "plan"), plan);
  EXPECT_EQ(counterDelta(baseline, obs::names::kPdwdPlanCacheHits), 1);

  // Metrics scrape embeds the full registry export.
  obs::json::Value scrape = parseResponse(daemon.handleLine(
      "{\"schema\":\"pdw-req-1\",\"type\":\"metrics\",\"id\":\"m1\"}"));
  const obs::json::Value* metrics = scrape.find("metrics");
  ASSERT_TRUE(metrics && metrics->isObject());
  const obs::json::Value* values = metrics->find("metrics");
  ASSERT_TRUE(values && values->isObject());
  EXPECT_TRUE(values->find(obs::names::kPdwdRequests));

  // Ping reports the cache version; invalidate bumps it...
  obs::json::Value ping = parseResponse(daemon.handleLine(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"p1\"}"));
  const double v0 = num(ping, "cache_version");
  obs::json::Value inval = parseResponse(daemon.handleLine(
      "{\"schema\":\"pdw-req-1\",\"type\":\"invalidate\",\"id\":\"i1\"}"));
  EXPECT_EQ(num(inval, "cache_version"), v0 + 1.0);

  // ...and the next identical solve is cold again — with the same bytes
  // (determinism across invalidation, not just across requests).
  obs::json::Value recold =
      parseResponse(daemon.handleLine(solveLine("c3", "Kinase act-1")));
  EXPECT_FALSE(boolean(recold, "warm"));
  EXPECT_EQ(str(recold, "plan"), plan);

  // A client cache_version above the daemon's bumps it the same way.
  const std::uint64_t before = daemon.cacheVersion();
  parseResponse(daemon.handleLine(
      solveLine("c4", "Kinase act-1",
                ",\"cache_version\":" + std::to_string(before + 5))));
  EXPECT_EQ(daemon.cacheVersion(), before + 5);

  // Unknown benchmarks are refused at admission (partition invariant).
  obs::json::Value unknown =
      parseResponse(daemon.handleLine(solveLine("u1", "NotABenchmark")));
  EXPECT_EQ(str(unknown, "status"), "error");
  EXPECT_EQ(str(unknown, "code"), "value");

  daemon.shutdown();

  // Outcome partition: every admitted solve landed in exactly one bucket.
  const obs::MetricsSnapshot delta =
      obs::Registry::instance().snapshot().since(baseline);
  EXPECT_LE(delta.counter(obs::names::kPdwdSolveOk) +
                delta.counter(obs::names::kPdwdBudgetHits) +
                delta.counter(obs::names::kPdwdDeadlineExpired) +
                delta.counter(obs::names::kPdwdRejectedQueueFull),
            delta.counter(obs::names::kPdwdRequests));
}

/// The cache_version bump is an admission-gated side effect: a rejected
/// request, or one opting out of the caches, must not wipe shared state
/// for every other client.
TEST(PdwdDaemon, CacheVersionBumpRequiresAdmission) {
  const obs::MetricsSnapshot baseline = obs::Registry::instance().snapshot();
  DaemonOptions options;
  options.lanes = 1;
  options.queue_capacity = 1;
  options.threads = 1;
  Daemon daemon(options);
  const std::uint64_t v0 = daemon.cacheVersion();

  // cache:false never bumps, whatever generation it claims.
  obs::json::Value optout = parseResponse(daemon.handleLine(
      sleepLine("no-cache", 1, ",\"cache\":false,\"cache_version\":50")));
  EXPECT_EQ(str(optout, "status"), "ok");
  EXPECT_EQ(daemon.cacheVersion(), v0);

  // Occupy the lane and the single queue slot (the opt-out solve above
  // already contributed one queue-wait observation).
  std::string reply_a, reply_b;
  std::thread ta([&] { reply_a = daemon.handleLine(sleepLine("a", 600)); });
  awaitTrue(
      [&] {
        return histCount(obs::Registry::instance().snapshot().since(baseline),
                         obs::names::kPdwdQueueWaitSeconds) >= 2;
      },
      "the holder to reach the lane");
  std::thread tb([&] { reply_b = daemon.handleLine(sleepLine("b", 5)); });
  awaitTrue(
      [&] {
        return obs::Registry::instance()
                   .snapshot()
                   .gauge(obs::names::kPdwdQueueDepth) >= 1.0;
      },
      "the filler to be queued");

  // Queue-full rejection happens before the bump: version is untouched.
  obs::json::Value rejected = parseResponse(
      daemon.handleLine(sleepLine("r", 5, ",\"cache_version\":50")));
  EXPECT_EQ(str(rejected, "status"), "rejected");
  EXPECT_EQ(daemon.cacheVersion(), v0);

  ta.join();
  tb.join();
  EXPECT_EQ(str(parseResponse(reply_a), "status"), "ok");
  EXPECT_EQ(str(parseResponse(reply_b), "status"), "ok");

  // An admitted cache-using solve with a higher generation does bump.
  obs::json::Value bumped = parseResponse(
      daemon.handleLine(sleepLine("ok", 1, ",\"cache_version\":50")));
  EXPECT_EQ(str(bumped, "status"), "ok");
  EXPECT_EQ(daemon.cacheVersion(), 50u);
  daemon.shutdown();
}

/// A deadline that caps the solver budget folds a measured wall-clock value
/// into the config fingerprint; such requests must bypass the plan cache on
/// both lookup and insert (near-unique keys would never warm-hit and would
/// LRU-evict useful entries).
TEST(PdwdDaemon, DeadlineCappedSolvesBypassPlanCache) {
  DaemonOptions options;
  options.lanes = 1;
  options.threads = 1;
  options.default_budget_s = 60.0;
  Daemon daemon(options);

  // The 30 s deadline caps the 60 s budget. Kinase act-1 proves optimal in
  // well under a second, so the solve itself is unaffected — but nothing
  // may be inserted under the deadline-derived key.
  obs::json::Value capped = parseResponse(daemon.handleLine(
      solveLine("d1", "Kinase act-1", ",\"deadline_ms\":30000")));
  EXPECT_EQ(str(capped, "status"), "ok");
  EXPECT_FALSE(boolean(capped, "warm"));
  const std::string plan = str(capped, "plan");
  EXPECT_FALSE(plan.empty());

  // An identical uncapped request is still cold: the capped solve did not
  // populate the cache.
  obs::json::Value cold =
      parseResponse(daemon.handleLine(solveLine("d2", "Kinase act-1")));
  EXPECT_EQ(str(cold, "status"), "ok");
  EXPECT_FALSE(boolean(cold, "warm"));
  EXPECT_EQ(str(cold, "plan"), plan);  // same deterministic answer

  // A further capped request skips lookup too — cold again by design.
  obs::json::Value capped2 = parseResponse(daemon.handleLine(
      solveLine("d3", "Kinase act-1", ",\"deadline_ms\":30000")));
  EXPECT_FALSE(boolean(capped2, "warm"));
  daemon.shutdown();
}

std::string resolveLine(const std::string& id, const std::string& benchmark,
                        const std::string& perturbation) {
  return "{\"schema\":\"pdw-req-1\",\"type\":\"resolve\",\"id\":\"" + id +
         "\",\"benchmark\":\"" + benchmark + "\"" + perturbation + "}";
}

TEST(PdwdDaemon, ResolveColdPrimesThenServesWarmDeltas) {
  const obs::MetricsSnapshot baseline = obs::Registry::instance().snapshot();
  DaemonOptions options;
  options.lanes = 1;
  options.threads = 1;
  options.default_budget_s = 60.0;
  Daemon daemon(options);

  // First resolve: no resident pipeline yet, so the daemon cold-primes the
  // benchmark's base solve and then repairs it — warm:false.
  obs::json::Value first = parseResponse(daemon.handleLine(
      resolveLine("r1", "Kinase act-1", ",\"delay_op\":0,\"delay_s\":2")));
  EXPECT_EQ(str(first, "status"), "ok") << str(first, "error");
  EXPECT_FALSE(boolean(first, "warm"));
  EXPECT_FALSE(str(first, "plan").empty());
  const obs::json::Value* stats = first.find("resolve");
  ASSERT_TRUE(stats && stats->isObject());
  EXPECT_FALSE(boolean(*stats, "full_fallback"));
  EXPECT_GT(num(*stats, "reused_cells"), 0.0);

  // Second delta against the now-resident pipeline composes on the first —
  // warm:true, still incremental.
  obs::json::Value second = parseResponse(daemon.handleLine(
      resolveLine("r2", "Kinase act-1", ",\"delay_op\":1,\"delay_s\":1.5")));
  EXPECT_EQ(str(second, "status"), "ok");
  EXPECT_TRUE(boolean(second, "warm"));
  const obs::json::Value* stats2 = second.find("resolve");
  ASSERT_TRUE(stats2 && stats2->isObject());
  EXPECT_FALSE(boolean(*stats2, "full_fallback"));

  // A structurally invalid delta is a per-request error; the resident
  // state stays usable and the next valid delta is still warm.
  obs::json::Value bad = parseResponse(daemon.handleLine(
      resolveLine("r3", "Kinase act-1", ",\"delay_op\":9999,\"delay_s\":1")));
  EXPECT_EQ(str(bad, "status"), "error");
  EXPECT_EQ(str(bad, "code"), "value");
  obs::json::Value third = parseResponse(daemon.handleLine(
      resolveLine("r4", "Kinase act-1", ",\"delay_op\":0,\"delay_s\":1")));
  EXPECT_EQ(str(third, "status"), "ok");
  EXPECT_TRUE(boolean(third, "warm"));

  // Unknown benchmarks are refused at admission, same as solve.
  obs::json::Value unknown = parseResponse(daemon.handleLine(
      resolveLine("r5", "NotABenchmark", ",\"delay_op\":0,\"delay_s\":1")));
  EXPECT_EQ(str(unknown, "status"), "error");
  EXPECT_EQ(str(unknown, "code"), "value");

  daemon.shutdown();

  // The pipeline-level resolve metrics reconcile with what was served:
  // four attempts (three valid, one rejected delta).
  const obs::MetricsSnapshot delta =
      obs::Registry::instance().snapshot().since(baseline);
  EXPECT_EQ(delta.counter(obs::names::kResolveRequests), 4);
  EXPECT_EQ(delta.counter(obs::names::kResolveErrors), 1);
  EXPECT_EQ(delta.counter(obs::names::kResolveCellsTotal),
            delta.counter(obs::names::kResolveFrontierCells) +
                delta.counter(obs::names::kResolveReusedCells));
}

TEST(PdwdDaemon, StdioBatchStopsAtShutdown) {
  DaemonOptions options;
  options.lanes = 1;
  options.threads = 1;
  Daemon daemon(options);

  std::istringstream in(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"a\"}\n"
      "\n"  // blank lines are skipped, not answered
      + sleepLine("b", 5) + "\n" +
      "{\"schema\":\"pdw-req-1\",\"type\":\"shutdown\",\"id\":\"c\"}\n" +
      sleepLine("after-shutdown", 5) + "\n");
  std::ostringstream out;
  const std::size_t served = service::serveStdio(daemon, in, out);
  EXPECT_EQ(served, 3u);  // the post-shutdown line is never read

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> ids;
  while (std::getline(lines, line))
    ids.push_back(str(parseResponse(line), "id"));
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], "a");
  EXPECT_EQ(ids[1], "b");
  EXPECT_EQ(ids[2], "c");
  EXPECT_TRUE(daemon.shutdownRequested());
  daemon.shutdown();
}

TEST(PdwdDaemon, ShutdownDrainsInFlightWork) {
  const obs::MetricsSnapshot baseline = obs::Registry::instance().snapshot();
  DaemonOptions options;
  options.lanes = 2;
  options.threads = 1;
  Daemon daemon(options);

  // Two in-flight sleeps occupy both lanes...
  std::vector<std::string> replies(2);
  std::thread t0([&] { replies[0] = daemon.handleLine(sleepLine("s0", 400)); });
  std::thread t1([&] { replies[1] = daemon.handleLine(sleepLine("s1", 400)); });
  awaitTrue(
      [&] {
        return histCount(obs::Registry::instance().snapshot().since(baseline),
                         obs::names::kPdwdQueueWaitSeconds) >= 2;
      },
      "both sleeps to reach a lane");

  // ...shutdown is acknowledged immediately, and the sleeps still finish.
  obs::json::Value ack = parseResponse(daemon.handleLine(
      "{\"schema\":\"pdw-req-1\",\"type\":\"shutdown\",\"id\":\"sd\"}"));
  EXPECT_EQ(str(ack, "status"), "ok");
  EXPECT_TRUE(daemon.shutdownRequested());
  t0.join();
  t1.join();
  EXPECT_EQ(str(parseResponse(replies[0]), "status"), "ok");
  EXPECT_EQ(str(parseResponse(replies[1]), "status"), "ok");

  // New work after shutdown is rejected, never queued.
  obs::json::Value late = parseResponse(daemon.handleLine(sleepLine("s2", 5)));
  EXPECT_EQ(str(late, "status"), "rejected");
  daemon.shutdown();
}

// ---- PdwdConcurrency (TSAN target) ---------------------------------------

/// The cross-socket extension of the PR 1 determinism guarantee: N clients
/// sending the same request concurrently — caches off, so each lane runs
/// the full pipeline — receive byte-identical canonical plans. Kinase act-1
/// proves optimality well inside the node budget, so termination is
/// optimality-driven and a sanitizer slowdown cannot change the plan.
TEST(PdwdConcurrency, ConcurrentClientsGetByteIdenticalPlans) {
  constexpr int kClients = 4;
  DaemonOptions options;
  options.lanes = kClients;
  options.threads = 1;
  Daemon daemon(options);

  std::vector<std::string> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&daemon, &responses, i] {
      responses[static_cast<std::size_t>(i)] = daemon.handleLine(
          solveLine("cc" + std::to_string(i), "Kinase act-1",
                    ",\"budget_s\":60,\"cache\":false"));
    });
  for (std::thread& t : clients) t.join();
  daemon.shutdown();

  std::string reference;
  for (int i = 0; i < kClients; ++i) {
    const obs::json::Value doc =
        parseResponse(responses[static_cast<std::size_t>(i)]);
    EXPECT_EQ(str(doc, "status"), "ok") << responses[i];
    EXPECT_FALSE(boolean(doc, "warm"));
    const std::string plan = str(doc, "plan");
    ASSERT_FALSE(plan.empty()) << responses[i];
    if (reference.empty()) reference = plan;
    EXPECT_EQ(plan, reference) << "client " << i << " diverged";
  }
}

/// The invalidate-coherence contract (TSAN target): the route-cache epoch
/// bumps BEFORE the plan-cache version, both under invalidate_mutex_, on
/// every invalidation path. An observer that reads the version first and
/// the epoch second must therefore never see the version ahead of the
/// epoch — the regression this pins was two independent bumps with a
/// window where a lane could warm-hit a new-generation plan while route
/// lookups still served pre-invalidation paths.
TEST(PdwdConcurrency, InvalidateAdvancesRouteEpochBeforePlanVersion) {
  constexpr int kInvalidators = 2;
  constexpr int kPerThread = 50;
  DaemonOptions options;
  options.lanes = 2;
  options.threads = 1;
  Daemon daemon(options);
  const std::uint64_t v0 = daemon.cacheVersion();
  const std::uint64_t e0 = daemon.routeCacheEpoch();

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        // Read order matters: version first, epoch second. The writer
        // bumps epoch first, so a coherent daemon can only over-report
        // the epoch here, never under-report it.
        const std::uint64_t version = daemon.cacheVersion();
        const std::uint64_t epoch = daemon.routeCacheEpoch();
        if (epoch - e0 < version - v0)
          violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (int t = 0; t < kInvalidators; ++t)
    threads.emplace_back([&daemon, t] {
      for (int i = 0; i < kPerThread; ++i)
        daemon.handleLine(
            "{\"schema\":\"pdw-req-1\",\"type\":\"invalidate\",\"id\":\"i" +
            std::to_string(t) + "-" + std::to_string(i) + "\"}");
    });
  for (int t = kInvalidators; t-- > 0;) {
    threads.back().join();
    threads.pop_back();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(daemon.cacheVersion(), v0 + kInvalidators * kPerThread);
  EXPECT_EQ(daemon.routeCacheEpoch(), e0 + kInvalidators * kPerThread);

  // The admission bumpTo path obeys the same contract: a client-driven
  // version jump advances the epoch exactly once, route first.
  const std::uint64_t v1 = daemon.cacheVersion();
  const std::uint64_t e1 = daemon.routeCacheEpoch();
  parseResponse(daemon.handleLine(
      sleepLine("bump", 1, ",\"cache_version\":" + std::to_string(v1 + 5))));
  EXPECT_EQ(daemon.cacheVersion(), v1 + 5);
  EXPECT_EQ(daemon.routeCacheEpoch(), e1 + 1);
  daemon.shutdown();
}

// ---- PdwdOverload --------------------------------------------------------

TEST(PdwdOverload, QueueFullRejects) {
  const obs::MetricsSnapshot baseline = obs::Registry::instance().snapshot();
  DaemonOptions options;
  options.lanes = 1;
  options.queue_capacity = 1;
  options.threads = 1;
  Daemon daemon(options);

  // Occupy the single lane; wait until it has actually dequeued the job.
  std::string reply_a, reply_b;
  std::thread ta([&] { reply_a = daemon.handleLine(sleepLine("a", 1200)); });
  awaitTrue(
      [&] {
        return histCount(obs::Registry::instance().snapshot().since(baseline),
                         obs::names::kPdwdQueueWaitSeconds) >= 1;
      },
      "the first sleep to reach the lane");

  // Fill the one queue slot; wait until the queue-depth gauge shows it.
  std::thread tb([&] { reply_b = daemon.handleLine(sleepLine("b", 5)); });
  awaitTrue(
      [&] {
        return obs::Registry::instance()
                   .snapshot()
                   .gauge(obs::names::kPdwdQueueDepth) >= 1.0;
      },
      "the second sleep to be queued");

  // The queue is full: the third request is rejected immediately.
  obs::json::Value rejected =
      parseResponse(daemon.handleLine(sleepLine("c", 5)));
  EXPECT_EQ(str(rejected, "status"), "rejected");
  EXPECT_EQ(counterDelta(baseline, obs::names::kPdwdRejectedQueueFull), 1);

  ta.join();
  tb.join();
  EXPECT_EQ(str(parseResponse(reply_a), "status"), "ok");
  EXPECT_EQ(str(parseResponse(reply_b), "status"), "ok");
  daemon.shutdown();
}

TEST(PdwdOverload, DeadlineExpiresInQueue) {
  const obs::MetricsSnapshot baseline = obs::Registry::instance().snapshot();
  DaemonOptions options;
  options.lanes = 1;
  options.queue_capacity = 4;
  options.threads = 1;
  Daemon daemon(options);

  // Hold the lane for 800 ms; the follow-up request's 50 ms deadline must
  // expire while it waits (even if the holder was dequeued instantly, it
  // occupies the lane far past the deadline).
  std::string holder;
  std::thread th([&] { holder = daemon.handleLine(sleepLine("hold", 800)); });
  awaitTrue(
      [&] {
        return histCount(obs::Registry::instance().snapshot().since(baseline),
                         obs::names::kPdwdQueueWaitSeconds) >= 1;
      },
      "the holder to reach the lane");

  obs::json::Value late = parseResponse(
      daemon.handleLine(sleepLine("late", 5, ",\"deadline_ms\":50")));
  EXPECT_EQ(str(late, "status"), "deadline");
  EXPECT_GE(num(late, "queue_ms"), 50.0);
  EXPECT_EQ(counterDelta(baseline, obs::names::kPdwdDeadlineExpired), 1);

  th.join();
  EXPECT_EQ(str(parseResponse(holder), "status"), "ok");
  daemon.shutdown();
}

TEST(PdwdOverload, TinyBudgetAnswersBudgetHitWithPlan) {
  DaemonOptions options;
  options.lanes = 1;
  options.threads = 1;
  Daemon daemon(options);

  // A 50 ms scheduling budget cannot prove optimality on PCR, but the
  // pipeline still returns a feasible plan — budget_hit, never an error.
  obs::json::Value doc = parseResponse(
      daemon.handleLine(solveLine("tb", "PCR", ",\"budget_s\":0.05")));
  EXPECT_EQ(str(doc, "status"), "budget_hit");
  EXPECT_FALSE(boolean(doc, "proven_optimal"));
  EXPECT_FALSE(str(doc, "plan").empty());
  EXPECT_GT(num(doc, "n_wash"), 0.0);
  daemon.shutdown();
}

// ---- RouteCacheEpoch (TSAN target) ---------------------------------------

arch::FlowPath epochPath(int n) {
  std::vector<arch::Cell> cells;
  for (int i = 0; i < n; ++i) cells.push_back({i, 1});
  return arch::FlowPath(std::move(cells));
}

core::RouteKey epochKey(std::uint64_t fingerprint) {
  core::RouteKey key;
  key.chip_fingerprint = fingerprint;
  key.targets = {{5, 6}};
  return key;
}

TEST(RouteCacheEpoch, StaleInsertIsDropped) {
  core::RouteCache cache(8);
  const std::uint64_t e0 = cache.epoch();

  // Same-epoch insert lands.
  EXPECT_TRUE(cache.insert(epochKey(1), epochPath(2), e0));
  EXPECT_EQ(cache.size(), 1u);

  // invalidate() clears, bumps the epoch, and counts.
  cache.invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch(), e0 + 1);
  EXPECT_FALSE(cache.lookup(epochKey(1)).has_value());

  // An insert computed under the old epoch must not repopulate the new one.
  EXPECT_FALSE(cache.insert(epochKey(2), epochPath(3), e0));
  EXPECT_EQ(cache.size(), 0u);

  const core::RouteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.stale_drops, 1);
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(stats.inserts, 1);  // only the pre-invalidation insert landed
}

TEST(RouteCacheEpoch, MemoizedFailureSurvivesEpochDiscipline) {
  core::RouteCache cache(4);
  // A memoized routing *failure* (inner nullopt) obeys the same epoch rule.
  EXPECT_TRUE(cache.insert(epochKey(9), std::nullopt, cache.epoch()));
  const auto cached = cache.lookup(epochKey(9));
  ASSERT_TRUE(cached.has_value());
  EXPECT_FALSE(cached->has_value());
  cache.invalidate();
  EXPECT_FALSE(cache.lookup(epochKey(9)).has_value());
}

/// Readers and epoch-guarded writers race a repeated invalidator. The
/// invariants: no torn reads (TSAN), every insert either lands in its own
/// epoch or is dropped as stale, and a final invalidation leaves the cache
/// empty with a consistent epoch count.
TEST(RouteCacheEpoch, ConcurrentInvalidationIsSafe) {
  core::RouteCache cache(64);
  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 300;
  constexpr int kInvalidations = 40;

  std::atomic<std::int64_t> attempted{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&cache, &attempted, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::uint64_t fp =
            static_cast<std::uint64_t>(w) * kOpsPerWriter +
            static_cast<std::uint64_t>(i % 17);
        const std::uint64_t epoch = cache.epoch();
        if (!cache.lookup(epochKey(fp)).has_value()) {
          cache.insert(epochKey(fp), epochPath(2), epoch);
          attempted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  threads.emplace_back([&cache] {
    for (int i = 0; i < kInvalidations; ++i) {
      cache.invalidate();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) t.join();

  const core::RouteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts + stats.stale_drops, attempted.load());
  EXPECT_EQ(stats.invalidations, kInvalidations);
  EXPECT_EQ(cache.epoch(), static_cast<std::uint64_t>(kInvalidations));

  cache.invalidate();
  EXPECT_EQ(cache.size(), 0u);
}

// ---- PlanCacheVersion ----------------------------------------------------

service::PlanKey planKey(std::uint64_t n) {
  service::PlanKey key;
  key.chip_fingerprint = n;
  key.schedule_fingerprint = n * 31;
  key.config_fingerprint = 7;
  return key;
}

service::CachedPlan cachedPlan(const std::string& status) {
  service::CachedPlan plan;
  plan.status = status;
  plan.n_wash = 2;
  plan.plan = "ops;0,d0,0,1|tasks";
  plan.proven_optimal = status == "ok";
  return plan;
}

TEST(PlanCacheVersion, VersionedInsertAndStaleDrop) {
  service::PlanCache cache(4);
  EXPECT_EQ(cache.version(), 0u);

  // Budget-capped outcomes are first-class cacheable results.
  EXPECT_TRUE(cache.insert(planKey(1), cachedPlan("budget_hit"), 0));
  const auto hit = cache.lookup(planKey(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, "budget_hit");
  EXPECT_FALSE(hit->proven_optimal);

  EXPECT_EQ(cache.invalidate(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(planKey(1)).has_value());

  // Stale insert (computed under version 0) is dropped.
  EXPECT_FALSE(cache.insert(planKey(2), cachedPlan("ok"), 0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stale_drops, 1);
}

TEST(PlanCacheVersion, BumpToOnlyMovesForward) {
  service::PlanCache cache(4);
  ASSERT_TRUE(cache.insert(planKey(1), cachedPlan("ok"), 0));

  // A bump to a higher target clears and lands exactly on the target.
  EXPECT_EQ(cache.bumpTo(5), 5u);
  EXPECT_EQ(cache.size(), 0u);

  // Equal or lower targets are no-ops (repeated client bumps converge).
  ASSERT_TRUE(cache.insert(planKey(2), cachedPlan("ok"), 5));
  EXPECT_EQ(cache.bumpTo(5), 5u);
  EXPECT_EQ(cache.bumpTo(3), 5u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheVersion, LruEvictsBeyondCapacity) {
  service::PlanCache cache(2);
  EXPECT_TRUE(cache.insert(planKey(1), cachedPlan("ok"), 0));
  EXPECT_TRUE(cache.insert(planKey(2), cachedPlan("ok"), 0));
  ASSERT_TRUE(cache.lookup(planKey(1)).has_value());  // refresh 1's recency
  EXPECT_TRUE(cache.insert(planKey(3), cachedPlan("ok"), 0));
  EXPECT_FALSE(cache.lookup(planKey(2)).has_value());  // 2 was the LRU
  EXPECT_TRUE(cache.lookup(planKey(1)).has_value());
  EXPECT_TRUE(cache.lookup(planKey(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

// ---- PdwdSocket ----------------------------------------------------------

TEST(PdwdSocket, RoundTripOversizeRecoveryAndShutdown) {
  DaemonOptions options;
  options.lanes = 1;
  options.threads = 1;
  Daemon daemon(options);
  const std::string path =
      "/tmp/pdw_test_" + std::to_string(::getpid()) + ".sock";
  service::SocketServer server(daemon, path);
  std::thread accept_loop([&server] { server.run(); });

  service::LineClient client;
  awaitTrue([&] { return client.connect(path); }, "socket connect", 10.0);

  // Ping round trip.
  std::optional<std::string> response = client.roundTrip(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"p\"}");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(str(parseResponse(*response), "type"), "ping");

  // A solve through the real transport.
  response = client.roundTrip(sleepLine("s", 20));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(str(parseResponse(*response), "status"), "ok");

  // An oversized line gets the structured error and — the part framing has
  // to get right — the connection stays usable afterwards.
  response = client.roundTrip(std::string(service::kMaxRequestBytes + 64, 'x'));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(str(parseResponse(*response), "code"), "oversize");
  response = client.roundTrip(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"p2\"}");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(str(parseResponse(*response), "status"), "ok");

  // A client that hangs up before reading its response must not bring the
  // daemon down: the connection thread's write sees EPIPE (MSG_NOSIGNAL),
  // never a process-fatal SIGPIPE. Several in a row to make a racy escape
  // unlikely, then prove the daemon is still alive on the first connection.
  for (int i = 0; i < 3; ++i) {
    service::LineClient impatient;
    awaitTrue([&] { return impatient.connect(path); }, "impatient connect",
              10.0);
    ASSERT_TRUE(impatient.send(sleepLine("gone-" + std::to_string(i), 30)));
    impatient.close();  // disconnect with the response still unwritten
  }
  response = client.roundTrip(
      "{\"schema\":\"pdw-req-1\",\"type\":\"ping\",\"id\":\"alive\"}");
  ASSERT_TRUE(response.has_value()) << "daemon died after client hangups";
  EXPECT_EQ(str(parseResponse(*response), "status"), "ok");

  // A shutdown request ends the accept loop; run() joins and returns.
  response = client.roundTrip(
      "{\"schema\":\"pdw-req-1\",\"type\":\"shutdown\",\"id\":\"sd\"}");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(str(parseResponse(*response), "type"), "shutdown");
  client.close();
  accept_loop.join();
  EXPECT_TRUE(daemon.shutdownRequested());
  daemon.shutdown();
  ::unlink(path.c_str());
}

}  // namespace

// Greedy rescheduler (wash insertion engine shared by DAWO's sweep-line and
// PDW's fallback): precedence preservation, wash windows, cascading delays.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/validator.h"
#include "util/thread_pool.h"
#include "wash/rescheduler.h"

namespace pdw::wash {
namespace {

using arch::Cell;

class ReschedulerFixture : public ::testing::Test {
 protected:
  ReschedulerFixture() : chip_(9, 3, 3.0), graph_("resched") {
    chip_.addFlowPort({0, 1}, "in");
    mixer_ = chip_.addDevice(arch::DeviceKind::Mixer, {4, 1}, "mixer");
    chip_.addWastePort({8, 1}, "out");
    r1_ = graph_.fluids().addReagent("r1");
    r2_ = graph_.fluids().addReagent("r2");
  }

  arch::FlowPath corridor() {
    std::vector<Cell> cells;
    for (int x = 0; x <= 8; ++x) cells.push_back({x, 1});
    return arch::FlowPath(cells);
  }

  /// Base: inject r1 (0..2), op (2..5), inject r2 for op2 (5..7), op2
  /// (7..10). Both injections share the corridor.
  assay::AssaySchedule makeBase() {
    assay::AssaySchedule s(&graph_, &chip_);
    // Two independent ops serialized by sharing the mixer (no dependency
    // edge: the fixture carries no producer-result transport).
    op1_ = graph_.addOperation(assay::OpKind::Mix, 3.0, {r1_});
    op2_ = graph_.addOperation(assay::OpKind::Mix, 3.0, {r2_});

    assay::FluidTask t1;
    t1.kind = assay::TaskKind::Transport;
    t1.fluid = r1_;
    t1.consumer = op1_;
    t1.path = corridor();
    t1.payload_begin = 0;
    t1.payload_end = 4;
    t1.start = 0;
    t1.end = 2;
    t1_ = s.addTask(t1);

    assay::FluidTask t2 = t1;
    t2.fluid = r2_;
    t2.consumer = op2_;
    t2.start = 5;
    t2.end = 7;
    t2_ = s.addTask(t2);

    s.addOpSchedule({op1_, mixer_, 2.0, 5.0});
    s.addOpSchedule({op2_, mixer_, 7.0, 10.0});
    return s;
  }

  WashOperation makeWash(double ready, assay::TaskId contaminator,
                         assay::TaskId blocker) {
    WashOperation w;
    WashTarget target;
    target.cell = {2, 1};
    target.residue = r1_;
    target.ready = ready;
    target.deadline = 5.0;
    target.contaminating_task = contaminator;
    target.blocking_task = blocker;
    w.targets = {target};
    w.path = corridor();
    w.refreshWindow();
    return w;
  }

  arch::ChipLayout chip_;
  assay::SequencingGraph graph_;
  arch::DeviceId mixer_ = -1;
  assay::FluidId r1_ = -1, r2_ = -1;
  assay::OpId op1_ = -1, op2_ = -1;
  assay::TaskId t1_ = -1, t2_ = -1;
};

TEST_F(ReschedulerFixture, NoWashesReproducesBase) {
  const auto base = makeBase();
  const auto out = rescheduleWithWashes(base, {}, {});
  EXPECT_DOUBLE_EQ(out.completionTime(), base.completionTime());
  for (const assay::FluidTask& t : out.tasks())
    EXPECT_DOUBLE_EQ(t.start, base.task(t.id).start);
}

TEST_F(ReschedulerFixture, WashInsertedBetweenContaminatorAndBlocker) {
  const auto base = makeBase();
  const auto out =
      rescheduleWithWashes(base, {makeWash(2.0, t1_, t2_)}, {});
  // One wash task appended.
  ASSERT_EQ(out.washCount(), 1);
  const assay::FluidTask& wash = out.task(2);
  EXPECT_EQ(wash.kind, assay::TaskKind::Wash);
  // Wash after contaminating task, blocker after wash.
  EXPECT_GE(wash.start, out.task(t1_).end - 1e-9);
  EXPECT_GE(out.task(t2_).start, wash.end - 1e-9);
  // Result is structurally valid.
  const auto v = sim::validateSchedule(out);
  EXPECT_TRUE(v.ok()) << v.summary();
}

TEST_F(ReschedulerFixture, BlockedTaskCascadesIntoItsConsumer) {
  const auto base = makeBase();
  const auto out =
      rescheduleWithWashes(base, {makeWash(2.0, t1_, t2_)}, {});
  // op2 starts only after its (pushed) injection completes.
  EXPECT_GE(out.opSchedule(op2_).start, out.task(t2_).end - 1e-9);
  // And the whole schedule got longer than the base.
  EXPECT_GT(out.completionTime(), base.completionTime() - 1e-9);
}

TEST_F(ReschedulerFixture, WashDurationFollowsParams) {
  const auto base = makeBase();
  WashParams params;
  params.flow_velocity_mm_s = 12.0;
  params.dissolution_s = 1.5;
  const auto out =
      rescheduleWithWashes(base, {makeWash(2.0, t1_, t2_)}, params);
  const assay::FluidTask& wash = out.task(2);
  // 8 edges * 3mm = 24mm; 24/12 + 1.5 = 3.5 s.
  EXPECT_NEAR(wash.duration(), 3.5, 1e-9);
}

TEST_F(ReschedulerFixture, ByteIdenticalAcrossThreadCounts) {
  // Several washes sharing one blocker get the same order_key, so the
  // sweep's total order rests entirely on the (kind, index) tie-break.
  // The parallel precomputation must not leak thread scheduling into the
  // result: 1 thread, 8 threads, and no pool all describe() byte-equal.
  const auto base = makeBase();
  std::vector<WashOperation> washes;
  for (int i = 0; i < 4; ++i) washes.push_back(makeWash(2.0, t1_, t2_));
  const std::string serial =
      rescheduleWithWashes(base, washes, {}).describe();
  util::ThreadPool one(1);
  util::ThreadPool eight(8);
  EXPECT_EQ(rescheduleWithWashes(base, washes, {}, &one).describe(), serial);
  for (int round = 0; round < 3; ++round)
    EXPECT_EQ(rescheduleWithWashes(base, washes, {}, &eight).describe(),
              serial);
}

TEST_F(ReschedulerFixture, TwoWashesSerializeOnSharedPath) {
  const auto base = makeBase();
  const auto w1 = makeWash(2.0, t1_, t2_);
  WashOperation w2 = makeWash(2.0, t1_, t2_);
  const auto out = rescheduleWithWashes(base, {w1, w2}, {});
  const assay::FluidTask& a = out.task(2);
  const assay::FluidTask& b = out.task(3);
  EXPECT_TRUE(a.end <= b.start + 1e-9 || b.end <= a.start + 1e-9);
}

}  // namespace
}  // namespace pdw::wash

// Model container, LinExpr algebra and presolve tests.
#include <gtest/gtest.h>

#include "ilp/presolve.h"
#include "ilp/solver.h"

namespace pdw::ilp {
namespace {

TEST(LinExpr, MergesAndSortsTerms) {
  LinExpr e;
  e.add(3, 2.0);
  e.add(1, 1.0);
  e.add(3, -2.0);  // cancels
  e.add(2, 4.0);
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_EQ(e.terms()[0].first, 1);
  EXPECT_EQ(e.terms()[1].first, 2);
  EXPECT_DOUBLE_EQ(e.terms()[1].second, 4.0);
}

TEST(LinExpr, ArithmeticOperators) {
  LinExpr a = LinExpr(0) + 2.0 * LinExpr(1) + 5.0;
  LinExpr b = a - LinExpr(1);
  EXPECT_DOUBLE_EQ(b.constant(), 5.0);
  ASSERT_EQ(b.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(b.terms()[1].second, 1.0);

  LinExpr c = -b;
  EXPECT_DOUBLE_EQ(c.constant(), -5.0);
  EXPECT_DOUBLE_EQ(c.terms()[0].second, -1.0);

  LinExpr zero = b * 0.0;
  EXPECT_TRUE(zero.empty());
  EXPECT_DOUBLE_EQ(zero.constant(), 0.0);
}

TEST(LinExpr, Evaluate) {
  LinExpr e = 2.0 * LinExpr(0) - 3.0 * LinExpr(2) + 1.0;
  std::vector<double> x = {4.0, 9.0, 2.0};
  EXPECT_DOUBLE_EQ(e.evaluate(x), 8.0 - 6.0 + 1.0);
}

TEST(Model, ConstantFoldedIntoRhs) {
  Model m;
  VarId x = m.addContinuous(0, 10);
  m.addLessEqual(LinExpr(x) + 4.0, 10.0);  // x <= 6
  EXPECT_DOUBLE_EQ(m.constraint(0).rhs, 6.0);
  EXPECT_DOUBLE_EQ(m.constraint(0).expr.constant(), 0.0);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  VarId x = m.addBinary("x");
  VarId y = m.addContinuous(0, 5, "y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 3);

  EXPECT_TRUE(m.isFeasible({1.0, 2.0}));
  EXPECT_FALSE(m.isFeasible({1.0, 2.5}));   // constraint violated
  EXPECT_FALSE(m.isFeasible({0.5, 1.0}));   // integrality violated
  EXPECT_FALSE(m.isFeasible({1.0, 6.0}));   // bound violated
  EXPECT_FALSE(m.isFeasible({1.0}));        // wrong arity
}

TEST(Model, DebugStringMentionsPieces) {
  Model m;
  VarId x = m.addBinary("kappa");
  m.addLessEqual(2.0 * LinExpr(x), 1, "order");
  m.setObjective(LinExpr(x));
  const std::string dump = m.debugString();
  EXPECT_NE(dump.find("kappa"), std::string::npos);
  EXPECT_NE(dump.find("order"), std::string::npos);
  EXPECT_NE(dump.find("minimize"), std::string::npos);
}

TEST(Presolve, TightensSingletonRows) {
  Model m;
  VarId x = m.addContinuous(0, 100, "x");
  m.addLessEqual(2.0 * LinExpr(x), 10);  // x <= 5
  m.addGreaterEqual(LinExpr(x), 2);      // x >= 2
  PresolveResult r = presolve(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_NEAR(m.var(x).upper, 5.0, 1e-9);
  EXPECT_NEAR(m.var(x).lower, 2.0, 1e-9);
}

TEST(Presolve, RoundsIntegerBounds) {
  Model m;
  VarId x = m.addInteger(0, 100, "x");
  m.addLessEqual(2.0 * LinExpr(x), 7);  // x <= 3.5 -> 3
  PresolveResult r = presolve(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_NEAR(m.var(x).upper, 3.0, 1e-9);
}

TEST(Presolve, PropagatesThroughChains) {
  // x <= 3, y <= x (y - x <= 0) with y in [0, 100]: y <= 3 after 2 rounds.
  Model m;
  VarId x = m.addContinuous(0, 100, "x");
  VarId y = m.addContinuous(0, 100, "y");
  m.addLessEqual(LinExpr(x), 3);
  m.addLessEqual(LinExpr(y) - LinExpr(x), 0);
  PresolveResult r = presolve(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_NEAR(m.var(y).upper, 3.0, 1e-9);
}

TEST(Presolve, DetectsIntervalInfeasibility) {
  Model m;
  VarId x = m.addContinuous(0, 1, "x");
  VarId y = m.addContinuous(0, 1, "y");
  m.addGreaterEqual(LinExpr(x) + LinExpr(y), 3);  // max activity is 2
  PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(Presolve, InfiniteBoundsDoNotPoison) {
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, 5, "y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 10);
  PresolveResult r = presolve(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_NEAR(m.var(x).upper, 10.0, 1e-9);  // x <= 10 - min(y) = 10
}

TEST(Presolve, SolutionUnchangedBySolveWithPresolve) {
  Model m;
  VarId x = m.addInteger(0, 50, "x");
  VarId y = m.addInteger(0, 50, "y");
  m.addLessEqual(LinExpr(x) + 2.0 * LinExpr(y), 14);
  m.addLessEqual(3.0 * LinExpr(x) - LinExpr(y), 0);
  m.setObjective(-1.0 * LinExpr(x) - LinExpr(y));

  SolveParams with, without;
  without.enable_presolve = false;
  Solution a = solve(m, with);
  Solution b = solve(m, without);
  ASSERT_EQ(a.status, SolveStatus::Optimal);
  ASSERT_EQ(b.status, SolveStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
}

}  // namespace
}  // namespace pdw::ilp

// obs::json unit tests — the `\uXXXX` decoder, including UTF-16 surrogate
// pairs (RFC 8259 §7). The parser fronts the pdwd wire protocol, so every
// rejection here is a structured protocol error rather than a mangled
// string reaching a plan-cache key or a canonical plan.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "obs/json.h"

namespace {

using pdw::obs::json::parse;
using pdw::obs::json::quote;
using pdw::obs::json::Value;

std::optional<std::string> parseString(const std::string& text) {
  const std::optional<Value> doc = parse(text);
  if (!doc || !doc->isString()) return std::nullopt;
  return doc->string;
}

TEST(ObsJson, DecodesBmpEscapes) {
  EXPECT_EQ(parseString("\"\\u0041\""), "A");
  EXPECT_EQ(parseString("\"\\u00e9\""), "\xC3\xA9");          // é
  EXPECT_EQ(parseString("\"\\u20AC\""), "\xE2\x82\xAC");      // €
  EXPECT_EQ(parseString("\"\\uFFFD\""), "\xEF\xBF\xBD");      // U+FFFD
  // Case-insensitive hex digits.
  EXPECT_EQ(parseString("\"\\u20ac\""), parseString("\"\\u20AC\""));
}

TEST(ObsJson, DecodesSurrogatePairsToFourByteUtf8) {
  // U+1F600 (😀) = \uD83D\uDE00 = F0 9F 98 80.
  EXPECT_EQ(parseString("\"\\uD83D\\uDE00\""), "\xF0\x9F\x98\x80");
  // U+10000, the first astral code point = \uD800\uDC00.
  EXPECT_EQ(parseString("\"\\uD800\\uDC00\""), "\xF0\x90\x80\x80");
  // U+10FFFF, the last code point = \uDBFF\uDFFF.
  EXPECT_EQ(parseString("\"\\uDBFF\\uDFFF\""), "\xF4\x8F\xBF\xBF");
  // Pairs embedded mid-string, twice.
  EXPECT_EQ(parseString("\"a\\uD83D\\uDE00b\\uD83D\\uDE01c\""),
            "a\xF0\x9F\x98\x80"
            "b\xF0\x9F\x98\x81"
            "c");
}

TEST(ObsJson, RejectsLoneAndMalformedSurrogates) {
  // Lone high surrogate: end of string, non-escape follow, wrong escape.
  EXPECT_FALSE(parse("\"\\uD83D\"").has_value());
  EXPECT_FALSE(parse("\"\\uD83Dx\"").has_value());
  EXPECT_FALSE(parse("\"\\uD83D\\n\"").has_value());
  // High surrogate followed by a non-low-surrogate escape.
  EXPECT_FALSE(parse("\"\\uD83D\\u0041\"").has_value());
  // High followed by another high.
  EXPECT_FALSE(parse("\"\\uD83D\\uD83D\"").has_value());
  // Lone low surrogate.
  EXPECT_FALSE(parse("\"\\uDE00\"").has_value());
  // Truncated hex in the second unit.
  EXPECT_FALSE(parse("\"\\uD83D\\uDE\"").has_value());
  EXPECT_FALSE(parse("\"\\uD83D\\uZZZZ\"").has_value());
}

TEST(ObsJson, RejectsBadHex) {
  EXPECT_FALSE(parse("\"\\u12\"").has_value());
  EXPECT_FALSE(parse("\"\\u12G4\"").has_value());
  EXPECT_FALSE(parse("\"\\u\"").has_value());
}

TEST(ObsJson, SurrogateDecodedStringsRoundTripThroughQuote) {
  // quote() passes raw UTF-8 through, so parse(quote(parse(escaped)))
  // yields the same bytes — the invariant canonical plans rely on.
  const std::optional<std::string> decoded =
      parseString("\"\\uD83D\\uDE00 caf\\u00e9\"");
  ASSERT_TRUE(decoded.has_value());
  const std::optional<std::string> round = parseString(quote(*decoded));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, *decoded);
}

TEST(ObsJson, SurrogatePairInsideObjectKeyAndValue) {
  const std::optional<Value> doc =
      parse("{\"\\uD83D\\uDE00\":\"\\uD83D\\uDCA9\"}");
  ASSERT_TRUE(doc.has_value());
  const Value* v = doc->find("\xF0\x9F\x98\x80");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->string, "\xF0\x9F\x92\xA9");
}

}  // namespace

// pdw::obs — tracer, metrics registry, logging integration.
//
// The span-balance tests drive the full pipeline over every Table-II
// benchmark at 1 and 8 threads with tracing on and then replay the recorded
// event stream per thread: every 'E' must close the most recent 'B' on its
// thread and no span may be left open. Budgets mirror the determinism tests
// (BFS paths, node/iteration-bound solves — never wall-clock). The
// disabled-mode test counts global operator-new calls across a burst of
// span sites to pin down the "no allocation in the fast path" contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "assay/benchmarks.h"
#include "core/pipeline.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "util/logging.h"

// ---- global allocation counter (for the disabled-mode no-op test) --------
//
// Defining operator new/delete in any TU replaces them binary-wide; every
// other test is unaffected beyond a relaxed counter bump per allocation.

namespace {
std::atomic<long long> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pdw;
using assay::BenchmarkId;

/// Deterministic, cheap budgets (mirrors test_parallel_determinism.cpp):
/// BFS wash paths, node/iteration-bound scheduling solve.
core::PdwOptions cheapOptions(int threads) {
  core::PdwOptions options = core::PdwOptions{}
                                 .withThreads(threads)
                                 .withoutIlpPaths()
                                 .withScheduleBudget(1e6, 200);
  options.solver.schedule.simplex_iteration_limit = 1500;
  return options;
}

/// Replay `events` per thread: every E closes the most recent B of its
/// thread, and nothing is left open at the end.
void expectBalancedSpans(const std::vector<obs::TraceEvent>& events) {
  std::map<std::uint32_t, std::vector<std::string>> stacks;
  for (const obs::TraceEvent& e : events) {
    if (e.phase == 'B') {
      stacks[e.tid].push_back(e.name);
    } else if (e.phase == 'E') {
      auto& stack = stacks[e.tid];
      ASSERT_FALSE(stack.empty())
          << "unbalanced E '" << e.name << "' on tid " << e.tid;
      EXPECT_EQ(stack.back(), e.name) << "on tid " << e.tid;
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left '" << stack.back()
                               << "' open";
}

class ObsSpanBalance : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(ObsSpanBalance, NestAndBalanceAt1And8Threads) {
  const assay::Benchmark b = assay::makeBenchmark(GetParam());
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));

  for (const int threads : {1, 8}) {
    obs::clearTrace();
    obs::setTracingEnabled(true);
    {
      // Scoped: the pool joins its workers in the destructor, so every
      // worker's open "task" span is closed before the snapshot below.
      Pipeline pipeline(cheapOptions(threads));
      pipeline.run(base.schedule);
    }
    obs::setTracingEnabled(false);
    const std::vector<obs::TraceEvent> events = obs::snapshotTraceEvents();
    ASSERT_FALSE(events.empty());
    expectBalancedSpans(events);

    int run_spans = 0, wash_ops = 0;
    for (const obs::TraceEvent& e : events) {
      if (e.phase != 'B') continue;
      if (e.name == "run") ++run_spans;
      if (e.name.rfind("wash_op#", 0) == 0) ++wash_ops;
    }
    EXPECT_EQ(run_spans, 1) << "threads=" << threads;
    EXPECT_GE(wash_ops, 1) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ObsSpanBalance,
    ::testing::ValuesIn(assay::allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId>& info) {
      std::string name = assay::toString(info.param);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

TEST(ObsTrace, ExportRoundTripsThroughParser) {
  obs::clearTrace();
  obs::setTracingEnabled(true);
  obs::setThreadName("round-trip");
  {
    PDW_TRACE_SPAN("test", "outer");
    {
      PDW_TRACE_SPAN_ID("test", "inner", 42);
      PDW_TRACE_INSTANT("test", "marker \"quoted\"");
    }
  }
  obs::setTracingEnabled(false);

  const std::string text = obs::exportTraceJson();
  const auto doc = obs::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  ASSERT_TRUE(doc->isObject());
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());

  int begins = 0, ends = 0, instants = 0;
  bool saw_inner = false, saw_marker = false, saw_thread_name = false;
  for (const obs::json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->string;
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
    if (ph == "M") {
      saw_thread_name = true;
      continue;
    }
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_TRUE(e.find("ts")->isNumber());
    ASSERT_NE(e.find("tid"), nullptr);
    const obs::json::Value* name = e.find("name");
    ASSERT_NE(name, nullptr);
    if (name->string == "inner#42") saw_inner = true;
    if (name->string == "marker \"quoted\"") saw_marker = true;
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_marker);  // exercises JSON escaping both ways
  EXPECT_TRUE(saw_thread_name);
  const obs::json::Value* unit = doc->find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
}

TEST(ObsTrace, ConcurrentRecordingAndExport) {
  obs::clearTrace();
  obs::setTracingEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 400;
  std::atomic<bool> stop{false};

  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t)
    recorders.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        PDW_TRACE_SPAN("test", "work");
        PDW_TRACE_INSTANT("test", "tick");
      }
    });
  // Export concurrently with the recording: collectors must only ever see
  // fully-published events — each snapshot is a clean per-thread prefix
  // (every E closes a B; trailing open spans are fine mid-recording).
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<obs::TraceEvent> prefix = obs::snapshotTraceEvents();
      std::map<std::uint32_t, int> depth;
      for (const obs::TraceEvent& e : prefix) {
        if (e.phase == 'B') ++depth[e.tid];
        if (e.phase == 'E') {
          --depth[e.tid];
          ASSERT_GE(depth[e.tid], 0) << "E before its B on tid " << e.tid;
        }
      }
      (void)obs::exportTraceJson();
    }
  });

  for (std::thread& r : recorders) r.join();
  stop.store(true, std::memory_order_release);
  exporter.join();
  obs::setTracingEnabled(false);

  const std::vector<obs::TraceEvent> events = obs::snapshotTraceEvents();
  int begins = 0, ends = 0, instants = 0;
  for (const obs::TraceEvent& e : events) {
    begins += e.phase == 'B';
    ends += e.phase == 'E';
    instants += e.phase == 'i';
  }
  EXPECT_EQ(begins, kThreads * kSpansPerThread);
  EXPECT_EQ(ends, kThreads * kSpansPerThread);
  EXPECT_EQ(instants, kThreads * kSpansPerThread);
  expectBalancedSpans(events);
}

TEST(ObsTrace, DisabledModeRecordsNothing) {
  obs::clearTrace();
  obs::setTracingEnabled(false);
  {
    PDW_TRACE_SPAN("test", "invisible");
    PDW_TRACE_INSTANT("test", "also_invisible");
  }
  EXPECT_TRUE(obs::snapshotTraceEvents().empty());
}

TEST(ObsTrace, DisabledSpanSiteDoesNotAllocate) {
  obs::setTracingEnabled(false);
  // Warm the singletons (first touch allocates the leaked state objects).
  (void)obs::tracingEnabled();
  obs::Registry::instance().counter("obs_test.warm").increment();

  const long long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    PDW_TRACE_SPAN("test", "off");
    PDW_TRACE_SPAN_ID("test", "off_id", i);
    PDW_TRACE_INSTANT("test", "off_instant");
    obs::Registry::instance().counter("obs_test.warm").add(1);
  }
  const long long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "disabled span sites / cached counter handles must not allocate";
}

// ---- metrics registry ----------------------------------------------------

TEST(ObsMetrics, CounterGaugeHistogramBasics) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("obs_test.counter");
  const std::int64_t base = c.value();
  c.increment();
  c.add(4);
  EXPECT_EQ(c.value(), base + 5);

  obs::Gauge& g = reg.gauge("obs_test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  obs::Histogram& h = reg.histogram("obs_test.histogram");
  h.reset();
  h.observe(0.5);   // bucket 0: < 1
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(3.9);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 7.4);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.9);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(2), 2);

  // Same name, same handle — the stability call sites rely on.
  EXPECT_EQ(&c, &reg.counter("obs_test.counter"));
}

TEST(ObsMetrics, RegistryIsConcurrencySafe) {
  obs::Registry& reg = obs::Registry::instance();
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  const std::int64_t counter_base = reg.counter("obs_test.mt.counter").value();
  const std::int64_t histo_base =
      reg.histogram("obs_test.mt.histogram").count();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        // Find-or-create races on the same names on purpose.
        reg.counter("obs_test.mt.counter").increment();
        reg.gauge("obs_test.mt.gauge").set(static_cast<double>(t));
        reg.histogram("obs_test.mt.histogram")
            .observe(static_cast<double>(i % 7));
        if (i % 512 == 0) (void)reg.snapshot();
      }
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(reg.counter("obs_test.mt.counter").value(),
            counter_base + static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("obs_test.mt.histogram").count(),
            histo_base + static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(ObsMetrics, SnapshotDeltaSemantics) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("obs_test.delta.counter").add(10);
  reg.histogram("obs_test.delta.histogram").observe(2.0);
  const obs::MetricsSnapshot before = reg.snapshot();

  reg.counter("obs_test.delta.counter").add(7);
  reg.gauge("obs_test.delta.gauge").set(1.25);
  reg.histogram("obs_test.delta.histogram").observe(8.0);
  const obs::MetricsSnapshot delta = reg.snapshot().since(before);

  EXPECT_EQ(delta.counter("obs_test.delta.counter"), 7);
  EXPECT_DOUBLE_EQ(delta.gauge("obs_test.delta.gauge"), 1.25);
  const auto it = delta.values.find("obs_test.delta.histogram");
  ASSERT_NE(it, delta.values.end());
  EXPECT_EQ(it->second.count, 1);  // one new observation
  EXPECT_DOUBLE_EQ(it->second.value, 8.0);
  EXPECT_EQ(delta.counter("obs_test.never_registered"), 0);

  // The JSON export parses and carries the schema tag.
  const auto doc = obs::json::parse(delta.toJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->string, "pdw-metrics-1");
  EXPECT_NE(doc->find("metrics")->find("obs_test.delta.counter"), nullptr);
}

TEST(ObsMetrics, PipelineResultCarriesRunDelta) {
  const assay::Benchmark b = assay::makeBenchmark(BenchmarkId::Pcr);
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));
  Pipeline pipeline(cheapOptions(1));
  const PdwResult r = pipeline.run(base.schedule);

  // The metrics snapshot is this run's contribution, and the legacy stat
  // struct fields are views over it.
  EXPECT_GT(r.metrics.counter("pdw.necessity.targets"), 0);
  EXPECT_GT(r.metrics.counter("ilp.simplex.calls"), 0);
  EXPECT_EQ(r.metrics.counter("pdw.path_ilp.solves"),
            r.solver.path_ilp_solves);  // BFS-only run: both zero
  EXPECT_EQ(r.metrics.counter("pdw.cluster.operations"),
            r.wash_operations);
  EXPECT_EQ(r.metrics.counter("pdw.route_cache.misses"), r.cache.misses);

  // A second run's delta counts only its own work (cache hits, no misses).
  const PdwResult r2 = pipeline.run(base.schedule);
  EXPECT_EQ(r2.metrics.counter("pdw.route_cache.misses"), 0);
  EXPECT_GT(r2.metrics.counter("pdw.route_cache.hits"), 0);
}

// ---- logging integration -------------------------------------------------

TEST(ObsLogging, LinesNeverShearUnderConcurrency) {
  std::vector<std::string> lines;  // sink runs under the emit lock
  util::setLogSink([&lines](std::string_view line) {
    lines.emplace_back(line);
  });
  const util::LogLevel saved = util::logLevel();
  util::setLogLevel(util::LogLevel::Info);

  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i)
        PDW_LOG(Info, "shear") << "thread " << t << " line " << i << " end";
    });
  for (std::thread& t : threads) t.join();

  util::setLogLevel(saved);
  util::setLogSink(nullptr);

  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kLines);
  for (const std::string& line : lines) {
    // One complete, well-formed record per sink call: level prefix, obs
    // thread id, tag, the full message, one trailing newline.
    EXPECT_EQ(line.rfind("[INFO] (t", 0), 0) << line;
    EXPECT_NE(line.find(") shear: thread "), std::string::npos) << line;
    EXPECT_NE(line.find(" end\n"), std::string::npos) << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
  }
}

TEST(ObsLogging, ReloadsLevelFromEnvironment) {
  const util::LogLevel saved = util::logLevel();
  ASSERT_EQ(setenv("PDW_LOG_LEVEL", "debug", 1), 0);
  EXPECT_EQ(util::reloadLogLevelFromEnv(), util::LogLevel::Debug);
  EXPECT_EQ(util::logLevel(), util::LogLevel::Debug);

  ASSERT_EQ(setenv("PDW_LOG_LEVEL", "off", 1), 0);
  EXPECT_EQ(util::reloadLogLevelFromEnv(), util::LogLevel::Off);

  ASSERT_EQ(unsetenv("PDW_LOG_LEVEL"), 0);
  EXPECT_EQ(util::reloadLogLevelFromEnv(), util::LogLevel::Warn);
  util::setLogLevel(saved);
}

}  // namespace

// The Pipeline's determinism guarantee: for a fixed option set the wash
// plan is identical for every thread count (parallel routing merges in
// wash-operation index order; the solver portfolio race never substitutes a
// differing assignment; the rescheduler's parallel precomputation feeds a
// sequential sweep). Plus unit tests of the LRU route cache.
//
// Wall-clock solver limits are the enemy of this comparison — a loaded
// machine can cut the two runs at different points — so every budget here
// is node/iteration-bound with an effectively-infinite time limit.
#include <gtest/gtest.h>

#include <string>

#include "assay/benchmarks.h"
#include "core/pipeline.h"
#include "core/route_cache.h"
#include "sim/metrics.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"

namespace {

using namespace pdw;
using assay::BenchmarkId;

/// Deterministic budgets for every benchmark: the schedule ILP is
/// node-bound; wash paths come from the BFS heuristic (budget-free and
/// deterministic by construction). The ILP path router has its own
/// node-bound determinism test below on the small benchmarks — on the big
/// synthetics an untimed ILP cut loop is intractable, and a wall-clock cap
/// is exactly what this test must not depend on.
core::PdwOptions deterministicOptions(int threads) {
  core::PdwOptions options = core::PdwOptions{}
                                 .withThreads(threads)
                                 .withoutIlpPaths()
                                 .withScheduleBudget(1e6, 200);
  // Node caps alone bound the search poorly when individual LPs turn
  // degenerate; the solver's global simplex-iteration cap is the budget
  // that actually limits work, and it is just as deterministic.
  options.solver.schedule.simplex_iteration_limit = 1500;
  return options;
}

void expectIdenticalPlans(const assay::AssaySchedule& base,
                          core::PdwOptions sequential_options,
                          core::PdwOptions parallel_options) {
  Pipeline sequential(std::move(sequential_options));
  Pipeline parallel(std::move(parallel_options));
  const PdwResult r1 = sequential.run(base);
  const PdwResult r8 = parallel.run(base);

  EXPECT_EQ(r1.threads, 1);
  EXPECT_EQ(r8.threads, 8);

  const sim::WashMetrics m1 = sim::computeMetrics(r1.schedule(), base);
  const sim::WashMetrics m8 = sim::computeMetrics(r8.schedule(), base);
  EXPECT_EQ(m1.n_wash, m8.n_wash);
  EXPECT_DOUBLE_EQ(m1.l_wash_mm, m8.l_wash_mm);
  EXPECT_DOUBLE_EQ(m1.t_assay, m8.t_assay);

  // The strongest check: the full schedule dumps are byte-identical.
  EXPECT_EQ(r1.schedule().describe(), r8.schedule().describe());
}

class ParallelDeterminism : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(ParallelDeterminism, PlanIdenticalAt1And8Threads) {
  const assay::Benchmark b = assay::makeBenchmark(GetParam());
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));
  expectIdenticalPlans(base.schedule, deterministicOptions(1),
                       deterministicOptions(8));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ParallelDeterminism,
    ::testing::ValuesIn(assay::allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId>& info) {
      std::string name = assay::toString(info.param);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

/// ILP wash-path routing under the parallel runtime, node-bound so the two
/// runs cut identically. Small benchmarks only: without a wall-clock cap
/// the per-operation cut loop is only affordable there.
class IlpPathDeterminism : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(IlpPathDeterminism, PlanIdenticalAt1And8Threads) {
  const assay::Benchmark b = assay::makeBenchmark(GetParam());
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));
  const auto options = [](int threads) {
    core::PdwOptions o = core::PdwOptions{}
                             .withThreads(threads)
                             .withScheduleBudget(1e6, 200)
                             .withPathBudget(1e6, 400);
    o.solver.schedule.simplex_iteration_limit = 4000;
    o.solver.path.simplex_iteration_limit = 10000;
    return o;
  };
  expectIdenticalPlans(base.schedule, options(1), options(8));
}

INSTANTIATE_TEST_SUITE_P(
    SmallBenchmarks, IlpPathDeterminism,
    ::testing::Values(BenchmarkId::Pcr, BenchmarkId::Ivd),
    [](const ::testing::TestParamInfo<BenchmarkId>& info) {
      std::string name = assay::toString(info.param);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

// ---- route-cache unit tests ----------------------------------------------

arch::FlowPath pathOfLength(int n) {
  std::vector<arch::Cell> cells;
  for (int i = 0; i < n; ++i) cells.push_back({i, 0});
  return arch::FlowPath(std::move(cells));
}

core::RouteKey keyFor(std::uint64_t fingerprint) {
  core::RouteKey key;
  key.chip_fingerprint = fingerprint;
  key.targets = {{1, 2}, {3, 4}};
  return key;
}

TEST(RouteCache, MissThenHit) {
  core::RouteCache cache(4);
  const core::RouteKey key = keyFor(1);
  EXPECT_FALSE(cache.lookup(key).has_value());

  cache.insert(key, pathOfLength(3));
  const auto cached = cache.lookup(key);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(cached->has_value());
  EXPECT_EQ((*cached)->size(), 3u);

  const core::RouteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(RouteCache, MemoizesRoutingFailure) {
  core::RouteCache cache(4);
  const core::RouteKey key = keyFor(2);
  cache.insert(key, std::nullopt);

  // A memoized failure is a *hit* whose inner optional is empty — distinct
  // from an uncached key.
  const auto cached = cache.lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_FALSE(cached->has_value());
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(RouteCache, EvictsLeastRecentlyUsed) {
  core::RouteCache cache(2);
  cache.insert(keyFor(1), pathOfLength(1));
  cache.insert(keyFor(2), pathOfLength(2));
  // Touch key 1 so key 2 becomes the LRU entry.
  EXPECT_TRUE(cache.lookup(keyFor(1)).has_value());

  cache.insert(keyFor(3), pathOfLength(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.lookup(keyFor(1)).has_value());
  EXPECT_FALSE(cache.lookup(keyFor(2)).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(keyFor(3)).has_value());
}

TEST(RouteCache, ReinsertRefreshesRecency) {
  core::RouteCache cache(2);
  cache.insert(keyFor(1), pathOfLength(1));
  cache.insert(keyFor(2), pathOfLength(2));
  cache.insert(keyFor(1), pathOfLength(5));  // refresh, no growth
  EXPECT_EQ(cache.size(), 2u);

  cache.insert(keyFor(3), pathOfLength(3));  // evicts key 2, not key 1
  EXPECT_FALSE(cache.lookup(keyFor(2)).has_value());
  const auto refreshed = cache.lookup(keyFor(1));
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_EQ((*refreshed)->size(), 5u);
}

TEST(RouteCache, DistinctProblemsDoNotAlias) {
  core::RouteCache cache(8);
  core::RouteKey a = keyFor(1);
  core::RouteKey b = keyFor(1);
  b.targets.push_back({9, 9});  // same fingerprint, different target set
  cache.insert(a, pathOfLength(2));
  EXPECT_FALSE(cache.lookup(b).has_value());
}

TEST(RouteCache, PipelineReusesCacheAcrossRuns) {
  const assay::Benchmark b = assay::makeBenchmark(BenchmarkId::Pcr);
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));

  Pipeline pipeline(deterministicOptions(1));
  const PdwResult first = pipeline.run(base.schedule);
  const PdwResult second = pipeline.run(base.schedule);

  // Every routing problem of the second run was memoized by the first.
  EXPECT_EQ(first.cache.hits, 0);
  EXPECT_GT(first.cache.inserts, 0);
  EXPECT_GT(second.cache.hits, 0);
  EXPECT_EQ(second.cache.misses, 0);
  EXPECT_EQ(first.schedule().describe(), second.schedule().describe());

  const core::RouteCacheStats lifetime = pipeline.cacheStats();
  EXPECT_EQ(lifetime.hits, second.cache.hits);
  EXPECT_EQ(lifetime.misses, first.cache.misses);
}

TEST(RouteCache, ZeroCapacityDisablesCaching) {
  const assay::Benchmark b = assay::makeBenchmark(BenchmarkId::Pcr);
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));

  Pipeline pipeline(deterministicOptions(1).withRouteCache(0));
  const PdwResult first = pipeline.run(base.schedule);
  const PdwResult second = pipeline.run(base.schedule);
  EXPECT_EQ(second.cache.hits + second.cache.misses, 0);
  EXPECT_EQ(first.schedule().describe(), second.schedule().describe());
}

}  // namespace

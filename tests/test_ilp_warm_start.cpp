// Warm-start behaviour of the MILP solver and the firstViolation
// diagnostic — the mechanisms behind PDW's "never worse than greedy"
// guarantee.
#include <gtest/gtest.h>

#include "ilp/solver.h"

namespace pdw::ilp {
namespace {

Model knapsack() {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6 -> optimum {b, c} = 20.
  Model m;
  const VarId a = m.addBinary("a");
  const VarId b = m.addBinary("b");
  const VarId c = m.addBinary("c");
  m.addLessEqual(3.0 * LinExpr(a) + 4.0 * LinExpr(b) + 2.0 * LinExpr(c), 6);
  m.setObjective(-10.0 * LinExpr(a) - 13.0 * LinExpr(b) - 7.0 * LinExpr(c));
  return m;
}

TEST(WarmStart, FeasibleWarmStartIsAccepted) {
  Model m = knapsack();
  SolveParams params;
  params.warm_start = {1.0, 0.0, 1.0};  // {a, c}: feasible, value 17
  const Solution s = solve(m, params);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);  // still finds the true optimum
}

TEST(WarmStart, SolverNeverReturnsWorseThanWarmStart) {
  Model m = knapsack();
  SolveParams params;
  params.warm_start = {1.0, 0.0, 1.0};  // objective -17
  params.node_limit = 1;               // starve the search
  const Solution s = solve(m, params);
  ASSERT_TRUE(s.hasSolution());
  EXPECT_LE(s.objective, -17.0 + 1e-9);
}

TEST(WarmStart, InfeasibleWarmStartIsRejectedSafely) {
  Model m = knapsack();
  SolveParams params;
  params.warm_start = {1.0, 1.0, 1.0};  // weight 9 > 6: infeasible
  const Solution s = solve(m, params);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-6);
}

TEST(WarmStart, WrongArityIsIgnored) {
  Model m = knapsack();
  SolveParams params;
  params.warm_start = {1.0};  // wrong size
  const Solution s = solve(m, params);
  EXPECT_EQ(s.status, SolveStatus::Optimal);
}

TEST(WarmStart, FractionalIntegerValuesAreRounded) {
  Model m = knapsack();
  SolveParams params;
  params.warm_start = {0.99, 0.01, 0.98};  // rounds to feasible {a, c}
  params.node_limit = 1;
  const Solution s = solve(m, params);
  ASSERT_TRUE(s.hasSolution());
  EXPECT_LE(s.objective, -17.0 + 1e-9);
}

TEST(FirstViolation, ReportsBounds) {
  Model m;
  const VarId x = m.addContinuous(0, 5, "speed");
  (void)x;
  const std::string msg = m.firstViolation({7.0});
  EXPECT_NE(msg.find("bound violated"), std::string::npos);
  EXPECT_NE(msg.find("speed"), std::string::npos);
}

TEST(FirstViolation, ReportsIntegrality) {
  Model m;
  m.addBinary("flag");
  const std::string msg = m.firstViolation({0.5});
  EXPECT_NE(msg.find("integrality"), std::string::npos);
}

TEST(FirstViolation, ReportsConstraintWithTerms) {
  Model m;
  const VarId x = m.addContinuous(0, 10, "x");
  m.addLessEqual(2.0 * LinExpr(x), 4, "cap");
  const std::string msg = m.firstViolation({5.0});
  EXPECT_NE(msg.find("cap"), std::string::npos);
  EXPECT_NE(msg.find("x"), std::string::npos);
}

TEST(FirstViolation, EmptyForFeasiblePoint) {
  Model m;
  const VarId x = m.addContinuous(0, 10, "x");
  m.addLessEqual(LinExpr(x), 4);
  EXPECT_TRUE(m.firstViolation({3.0}).empty());
}

}  // namespace
}  // namespace pdw::ilp

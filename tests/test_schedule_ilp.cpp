// Scheduling ILP (paper eqs. 1-8, 16-26): windows, integration, fallback
// parity with the greedy rescheduler, and improvement over greedy.
#include <gtest/gtest.h>

#include "core/schedule_ilp.h"
#include "sim/validator.h"
#include "wash/rescheduler.h"

namespace pdw::core {
namespace {

using arch::Cell;

class ScheduleIlpFixture : public ::testing::Test {
 protected:
  ScheduleIlpFixture() : chip_(9, 5, 3.0), graph_("ilp") {
    chip_.addFlowPort({0, 1}, "in1");
    chip_.addFlowPort({0, 3}, "in2");
    mixer_ = chip_.addDevice(arch::DeviceKind::Mixer, {4, 1}, "mixer");
    chip_.addWastePort({8, 1}, "out1");
    chip_.addWastePort({8, 3}, "out2");
    r1_ = graph_.fluids().addReagent("r1");
    r2_ = graph_.fluids().addReagent("r2");
  }

  arch::FlowPath row(int y) {
    std::vector<Cell> cells;
    for (int x = 0; x <= 8; ++x) cells.push_back({x, y});
    return arch::FlowPath(cells);
  }

  /// Base schedule: two sequential ops on the mixer fed over the shared
  /// row-1 corridor; the second injection needs the corridor washed.
  assay::AssaySchedule makeBase() {
    assay::AssaySchedule s(&graph_, &chip_);
    // Two independent ops serialized by sharing the mixer (no dependency
    // edge: the fixture carries no producer-result transport).
    op1_ = graph_.addOperation(assay::OpKind::Mix, 3.0, {r1_});
    op2_ = graph_.addOperation(assay::OpKind::Mix, 3.0, {r2_});

    assay::FluidTask inject1;
    inject1.kind = assay::TaskKind::Transport;
    inject1.fluid = r1_;
    inject1.consumer = op1_;
    inject1.path = row(1);
    inject1.payload_begin = 0;
    inject1.payload_end = 4;
    inject1.start = 0;
    inject1.end = 2;
    t1_ = s.addTask(inject1);

    assay::FluidTask removal;
    removal.kind = assay::TaskKind::ExcessRemoval;
    removal.fluid = r1_;
    removal.producer = -1;
    removal.consumer = op1_;
    removal.path = row(1);
    removal.payload_begin = 3;
    removal.payload_end = -1;
    removal.start = 2;
    removal.end = 4;
    removal_ = s.addTask(removal);

    assay::FluidTask inject2 = inject1;
    inject2.fluid = r2_;
    inject2.consumer = op2_;
    inject2.start = 8;
    inject2.end = 10;
    t2_ = s.addTask(inject2);

    s.addOpSchedule({op1_, mixer_, 4.0, 7.0});
    s.addOpSchedule({op2_, mixer_, 10.0, 13.0});
    return s;
  }

  wash::WashOperation corridorWash() {
    wash::WashOperation w;
    wash::WashTarget target;
    target.cell = {2, 1};
    target.residue = r1_;
    target.ready = 4.0;  // after the removal spread residue
    target.deadline = 8.0;
    target.contaminating_task = removal_;
    target.blocking_task = t2_;
    w.targets = {target};
    w.path = row(1);
    w.refreshWindow();
    return w;
  }

  arch::ChipLayout chip_;
  assay::SequencingGraph graph_;
  arch::DeviceId mixer_ = -1;
  assay::FluidId r1_ = -1, r2_ = -1;
  assay::OpId op1_ = -1, op2_ = -1;
  assay::TaskId t1_ = -1, t2_ = -1, removal_ = -1;
};

TEST_F(ScheduleIlpFixture, SolvesAndRespectsWashWindow) {
  const auto base = makeBase();
  ScheduleIlpOptions options;
  options.solver.time_limit_seconds = 4.0;
  const ScheduleIlpResult r =
      solveWashSchedule(base, {corridorWash()}, options);
  ASSERT_TRUE(r.success);

  const assay::FluidTask* wash = nullptr;
  for (const assay::FluidTask& t : r.schedule.tasks())
    if (t.kind == assay::TaskKind::Wash) wash = &t;
  ASSERT_NE(wash, nullptr);
  // eq. 16: after the contaminating removal, before the blocked injection.
  EXPECT_GE(wash->start, r.schedule.task(removal_).end - 1e-5);
  EXPECT_LE(wash->end, r.schedule.task(t2_).start + 1e-5);

  sim::ValidatorOptions tol;
  tol.time_tol = 1e-4;
  const auto v = sim::validateSchedule(r.schedule, tol);
  EXPECT_TRUE(v.ok()) << v.summary();
}

TEST_F(ScheduleIlpFixture, IntegrationAbsorbsCoveredRemoval) {
  const auto base = makeBase();
  ScheduleIlpOptions options;
  options.solver.time_limit_seconds = 4.0;
  const ScheduleIlpResult r =
      solveWashSchedule(base, {corridorWash()}, options);
  ASSERT_TRUE(r.success);
  // The wash path (row 1) covers the removal payload, and the wash fits
  // inside the removal's service window -> psi should fire.
  EXPECT_EQ(r.integrated_removals, 1);
  EXPECT_NEAR(r.schedule.task(removal_).duration(), 0.0, 1e-6);
  EXPECT_GT(r.num_psi_vars, 0);
}

TEST_F(ScheduleIlpFixture, IntegrationDisabledKeepsRemoval) {
  const auto base = makeBase();
  ScheduleIlpOptions options;
  options.enable_integration = false;
  options.solver.time_limit_seconds = 4.0;
  const ScheduleIlpResult r =
      solveWashSchedule(base, {corridorWash()}, options);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.integrated_removals, 0);
  EXPECT_NEAR(r.schedule.task(removal_).duration(), 2.0, 1e-5);
  EXPECT_EQ(r.num_psi_vars, 0);
}

TEST_F(ScheduleIlpFixture, NeverWorseThanGreedy) {
  const auto base = makeBase();
  const auto washes = std::vector<wash::WashOperation>{corridorWash()};
  ScheduleIlpOptions options;
  options.solver.time_limit_seconds = 4.0;
  const ScheduleIlpResult r = solveWashSchedule(base, washes, options);
  ASSERT_TRUE(r.success);
  const auto greedy = wash::rescheduleWithWashes(base, washes, options.wash);
  EXPECT_LE(r.schedule.completionTime(),
            greedy.completionTime() + 1e-6);
}

TEST_F(ScheduleIlpFixture, EmptyWashListKeepsCompletionTime) {
  const auto base = makeBase();
  const ScheduleIlpResult r = solveWashSchedule(base, {}, {});
  ASSERT_TRUE(r.success);
  EXPECT_LE(r.schedule.completionTime(), base.completionTime() + 1e-6);
  const auto v = sim::validateSchedule(r.schedule);
  EXPECT_TRUE(v.ok()) << v.summary();
}

TEST_F(ScheduleIlpFixture, ReportsModelSizeBookkeeping) {
  const auto base = makeBase();
  const ScheduleIlpResult r =
      solveWashSchedule(base, {corridorWash()}, {});
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.num_order_binaries + r.num_fixed_orders, 1);
  EXPECT_GE(r.stats.simplex_iterations, 1);
}

}  // namespace
}  // namespace pdw::core

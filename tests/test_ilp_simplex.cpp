// LP engine tests: textbook problems with known optima, bound handling,
// infeasibility/unboundedness detection, degenerate cases.
#include <gtest/gtest.h>

#include "ilp/simplex.h"

namespace pdw::ilp {
namespace {

SolveParams quickParams() {
  SolveParams p;
  p.time_limit_seconds = 5.0;
  return p;
}

TEST(Simplex, SolvesBasicTwoVarMax) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier-Lieberman)
  // => min -3x - 5y; optimum x=2, y=6, obj = -36.
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, kInfinity, "y");
  m.addLessEqual(LinExpr(x), 4);
  m.addLessEqual(2.0 * LinExpr(y), 12);
  m.addLessEqual(3.0 * LinExpr(x) + 2.0 * LinExpr(y), 18);
  m.setObjective(-3.0 * LinExpr(x) - 5.0 * LinExpr(y));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-6);
  EXPECT_NEAR(r.values[x], 2.0, 1e-6);
  EXPECT_NEAR(r.values[y], 6.0, 1e-6);
}

TEST(Simplex, HandlesGreaterEqualAndEquality) {
  // min 2x + 3y s.t. x + y = 10, x >= 3, y >= 2. Optimum x=8, y=2 -> 22.
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, kInfinity, "y");
  m.addEqual(LinExpr(x) + LinExpr(y), 10);
  m.addGreaterEqual(LinExpr(x), 3);
  m.addGreaterEqual(LinExpr(y), 2);
  m.setObjective(2.0 * LinExpr(x) + 3.0 * LinExpr(y));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 22.0, 1e-6);
  EXPECT_NEAR(r.values[x], 8.0, 1e-6);
  EXPECT_NEAR(r.values[y], 2.0, 1e-6);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  // min -(x + y) with x in [0, 3], y in [0, 5], x + y <= 6.
  // Optimum x=3 (its own bound), y=3 (constraint), obj=-6... wait: y can go
  // to min(5, 6-3)=3 -> total 6.
  Model m;
  VarId x = m.addContinuous(0, 3, "x");
  VarId y = m.addContinuous(0, 5, "y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 6);
  m.setObjective(-(LinExpr(x) + LinExpr(y)));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-6);
  EXPECT_LE(r.values[x], 3.0 + 1e-6);
  EXPECT_LE(r.values[y], 5.0 + 1e-6);
}

TEST(Simplex, UpperBoundOnlyBindingSolution) {
  // Pure bound-flip solution: min -x - 2y with x in [0,1], y in [0,1] and a
  // vacuous constraint. Optimum at both upper bounds.
  Model m;
  VarId x = m.addContinuous(0, 1, "x");
  VarId y = m.addContinuous(0, 1, "y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 100);
  m.setObjective(-1.0 * LinExpr(x) - 2.0 * LinExpr(y));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.values[x], 1.0, 1e-6);
  EXPECT_NEAR(r.values[y], 1.0, 1e-6);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  m.addGreaterEqual(LinExpr(x), 10);
  m.addLessEqual(LinExpr(x), 5);
  m.setObjective(LinExpr(x));

  LpResult r = solveLp(m, quickParams());
  EXPECT_EQ(r.status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsInconsistentEqualities) {
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, kInfinity, "y");
  m.addEqual(LinExpr(x) + LinExpr(y), 4);
  m.addEqual(LinExpr(x) + LinExpr(y), 7);
  m.setObjective(LinExpr(x));

  LpResult r = solveLp(m, quickParams());
  EXPECT_EQ(r.status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, kInfinity, "y");
  m.addGreaterEqual(LinExpr(x) - LinExpr(y), 0);
  m.setObjective(-1.0 * LinExpr(x));

  LpResult r = solveLp(m, quickParams());
  EXPECT_EQ(r.status, LpStatus::Unbounded);
}

TEST(Simplex, HandlesNegativeRhs) {
  // x - y >= -5 with min x, y <= 3  => x = 0 feasible (0 - 3 = -3 >= -5).
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, 3, "y");
  m.addGreaterEqual(LinExpr(x) - LinExpr(y), -5);
  m.addGreaterEqual(LinExpr(y), 3);
  m.setObjective(LinExpr(x));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-6);
}

TEST(Simplex, ShiftedLowerBounds) {
  // min x + y with x >= 2, y >= 3, x + y >= 7 -> optimum 7.
  Model m;
  VarId x = m.addContinuous(2, kInfinity, "x");
  VarId y = m.addContinuous(3, kInfinity, "y");
  m.addGreaterEqual(LinExpr(x) + LinExpr(y), 7);
  m.setObjective(LinExpr(x) + LinExpr(y));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
  EXPECT_GE(r.values[x], 2.0 - 1e-6);
  EXPECT_GE(r.values[y], 3.0 - 1e-6);
}

TEST(Simplex, FreeVariableSplit) {
  // min |x|-style: min y s.t. y >= x, y >= -x, x free, x >= -inf; with
  // x + 3 = 0 forced via equality  => x = -3, y = 3.
  Model m;
  VarId x = m.addContinuous(-kInfinity, kInfinity, "x");
  VarId y = m.addContinuous(0, kInfinity, "y");
  m.addEqual(LinExpr(x), -3);
  m.addGreaterEqual(LinExpr(y) - LinExpr(x), 0);
  m.addGreaterEqual(LinExpr(y) + LinExpr(x), 0);
  m.setObjective(LinExpr(y));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.values[x], -3.0, 1e-6);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints through the same vertex.
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, kInfinity, "y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 1);
  m.addLessEqual(LinExpr(x), 1);
  m.addLessEqual(LinExpr(y), 1);
  m.addLessEqual(2.0 * LinExpr(x) + 2.0 * LinExpr(y), 2);
  m.setObjective(-1.0 * LinExpr(x) - 1.0 * LinExpr(y));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(Simplex, FixedVariable) {
  Model m;
  VarId x = m.addContinuous(4, 4, "x");
  VarId y = m.addContinuous(0, 10, "y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 9);
  m.setObjective(-1.0 * LinExpr(y));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.values[x], 4.0, 1e-6);
  EXPECT_NEAR(r.values[y], 5.0, 1e-6);
}

TEST(Simplex, BoundOverridesReplaceModelBounds) {
  Model m;
  VarId x = m.addContinuous(0, 10, "x");
  m.setObjective(-1.0 * LinExpr(x));
  m.addLessEqual(LinExpr(x), 100);

  std::vector<double> lower = {2.0};
  std::vector<double> upper = {3.0};
  LpResult r = solveLp(m, quickParams(), &lower, &upper);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.values[x], 3.0, 1e-6);
}

TEST(Simplex, EmptyObjectiveReturnsFeasiblePoint) {
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  m.addGreaterEqual(LinExpr(x), 5);
  m.setObjective(LinExpr(0.0));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_GE(r.values[x], 5.0 - 1e-6);
}

TEST(Simplex, BlandRuleSolvesBealeCyclingExample) {
  // Beale's classic cycling instance: Dantzig pricing with naive tie-breaks
  // cycles forever on this problem. With the Bland threshold forced to the
  // very first pivot, every iteration runs under Bland's rule, which is
  // provably cycle-free; the solve must terminate at the optimum -1/20.
  Model m;
  VarId x1 = m.addContinuous(0, kInfinity, "x1");
  VarId x2 = m.addContinuous(0, kInfinity, "x2");
  VarId x3 = m.addContinuous(0, kInfinity, "x3");
  VarId x4 = m.addContinuous(0, kInfinity, "x4");
  m.addLessEqual(0.25 * LinExpr(x1) - 60.0 * LinExpr(x2) -
                     (1.0 / 25.0) * LinExpr(x3) + 9.0 * LinExpr(x4),
                 0);
  m.addLessEqual(0.5 * LinExpr(x1) - 90.0 * LinExpr(x2) -
                     (1.0 / 50.0) * LinExpr(x3) + 3.0 * LinExpr(x4),
                 0);
  m.addLessEqual(LinExpr(x3), 1);
  m.setObjective(-0.75 * LinExpr(x1) + 150.0 * LinExpr(x2) -
                 (1.0 / 50.0) * LinExpr(x3) + 6.0 * LinExpr(x4));

  SolveParams params = quickParams();
  params.bland_iteration_override = 1;
  LpResult r = solveLp(m, params);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-6);
}

TEST(Simplex, BlandRuleMatchesDefaultOnDegenerateVertex) {
  // The anti-cycling path must land on the same optimum as default pricing
  // even when several bases describe the same degenerate vertex.
  Model m;
  VarId x = m.addContinuous(0, kInfinity, "x");
  VarId y = m.addContinuous(0, kInfinity, "y");
  m.addLessEqual(LinExpr(x) + LinExpr(y), 1);
  m.addLessEqual(LinExpr(x), 1);
  m.addLessEqual(LinExpr(y), 1);
  m.addLessEqual(2.0 * LinExpr(x) + 2.0 * LinExpr(y), 2);
  m.setObjective(-1.0 * LinExpr(x) - 1.0 * LinExpr(y));

  LpResult base = solveLp(m, quickParams());
  SolveParams bland = quickParams();
  bland.bland_iteration_override = 1;
  LpResult r = solveLp(m, bland);
  ASSERT_EQ(base.status, LpStatus::Optimal);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, base.objective, 1e-6);
}

TEST(Simplex, LargerDiet) {
  // Stigler-style diet fragment:
  // min 0.2a + 0.3b + 0.8c
  //   s.t. 60a + 80b + 150c >= 300 (cal)
  //        10a + 20b + 40c  >= 60  (protein)
  //        a, b, c >= 0
  Model m;
  VarId a = m.addContinuous(0, kInfinity, "a");
  VarId b = m.addContinuous(0, kInfinity, "b");
  VarId c = m.addContinuous(0, kInfinity, "c");
  m.addGreaterEqual(60.0 * LinExpr(a) + 80.0 * LinExpr(b) + 150.0 * LinExpr(c),
                    300);
  m.addGreaterEqual(10.0 * LinExpr(a) + 20.0 * LinExpr(b) + 40.0 * LinExpr(c),
                    60);
  m.setObjective(0.2 * LinExpr(a) + 0.3 * LinExpr(b) + 0.8 * LinExpr(c));

  LpResult r = solveLp(m, quickParams());
  ASSERT_EQ(r.status, LpStatus::Optimal);
  // Verify feasibility and local optimality versus a few alternatives.
  EXPECT_GE(60 * r.values[a] + 80 * r.values[b] + 150 * r.values[c],
            300 - 1e-5);
  EXPECT_GE(10 * r.values[a] + 20 * r.values[b] + 40 * r.values[c], 60 - 1e-5);
  EXPECT_LE(r.objective, 0.2 * 6.0 + 1e-6);   // a=6 alone is feasible
  EXPECT_LE(r.objective, 0.3 * 3.75 + 1e-6);  // b=3.75 alone is feasible
}

}  // namespace
}  // namespace pdw::ilp

// Fluid registry, sequencing graph and benchmark reconstruction tests.
#include <gtest/gtest.h>

#include "assay/benchmarks.h"
#include "assay/sequencing_graph.h"

namespace pdw::assay {
namespace {

TEST(FluidRegistry, KindsAndContamination) {
  FluidRegistry fluids;
  const FluidId r1 = fluids.addReagent("r1");
  const FluidId r2 = fluids.addReagent("r2");
  const FluidId mix = fluids.addMixture("mix");

  EXPECT_EQ(fluids.kind(r1), FluidKind::Reagent);
  EXPECT_EQ(fluids.kind(mix), FluidKind::Mixture);
  EXPECT_EQ(fluids.kind(fluids.buffer()), FluidKind::Buffer);
  EXPECT_EQ(fluids.kind(fluids.waste()), FluidKind::Waste);

  // Same type never contaminates (Type 2 of the paper).
  EXPECT_FALSE(fluids.contaminates(r1, r1));
  // Different types contaminate.
  EXPECT_TRUE(fluids.contaminates(r1, r2));
  EXPECT_TRUE(fluids.contaminates(mix, r1));
  // Buffer residue is neutral.
  EXPECT_FALSE(fluids.contaminates(fluids.buffer(), r1));
  // Waste residue contaminates ordinary fluids.
  EXPECT_TRUE(fluids.contaminates(fluids.waste(), r1));
}

TEST(SequencingGraph, BasicTopology) {
  SequencingGraph g("test");
  const FluidId r1 = g.fluids().addReagent("r1");
  const OpId a = g.addOperation(OpKind::Mix, 3, {r1});
  const OpId b = g.addOperation(OpKind::Heat, 4);
  const OpId c = g.addOperation(OpKind::Detect, 5);
  g.addDependency(a, b);
  g.addDependency(b, c);

  EXPECT_TRUE(g.isAcyclic());
  EXPECT_EQ(g.parents(b), std::vector<OpId>{a});
  EXPECT_EQ(g.children(b), std::vector<OpId>{c});
  EXPECT_EQ(g.sinkOps(), std::vector<OpId>{c});
  EXPECT_EQ(g.topologicalOrder(), (std::vector<OpId>{a, b, c}));
  // |E| = 2 deps + 1 reagent + 1 sink.
  EXPECT_EQ(g.totalEdgeCount(), 4);
}

TEST(SequencingGraph, DetectsCycles) {
  SequencingGraph g;
  const OpId a = g.addOperation(OpKind::Mix, 1);
  const OpId b = g.addOperation(OpKind::Mix, 1);
  g.addDependency(a, b);
  g.addDependency(b, a);
  EXPECT_FALSE(g.isAcyclic());
}

TEST(SequencingGraph, ResultFluidsAreDistinctMixtures) {
  SequencingGraph g;
  const OpId a = g.addOperation(OpKind::Mix, 1);
  const OpId b = g.addOperation(OpKind::Mix, 1);
  EXPECT_NE(g.op(a).result, g.op(b).result);
  EXPECT_EQ(g.fluids().kind(g.op(a).result), FluidKind::Mixture);
  // Results of different ops contaminate each other.
  EXPECT_TRUE(g.fluids().contaminates(g.op(a).result, g.op(b).result));
}

TEST(SequencingGraph, RequiredDeviceMapping) {
  EXPECT_EQ(requiredDevice(OpKind::Mix), arch::DeviceKind::Mixer);
  EXPECT_EQ(requiredDevice(OpKind::Heat), arch::DeviceKind::Heater);
  EXPECT_EQ(requiredDevice(OpKind::Detect), arch::DeviceKind::Detector);
  EXPECT_EQ(requiredDevice(OpKind::Filter), arch::DeviceKind::Filter);
  EXPECT_EQ(requiredDevice(OpKind::Store), arch::DeviceKind::Storage);
}

// Every reconstructed benchmark must match the published |O|/|D|/|E| triple
// of Table II (PCR 7/5/15, ..., Synthetic3 20/18/28).
struct BenchmarkSizes {
  BenchmarkId id;
  int ops;
  int devices;
  int edges;
};

class BenchmarkSizeTest : public ::testing::TestWithParam<BenchmarkSizes> {};

TEST_P(BenchmarkSizeTest, MatchesTableII) {
  const BenchmarkSizes expected = GetParam();
  const Benchmark b = makeBenchmark(expected.id);
  EXPECT_EQ(b.graph->numOps(), expected.ops);
  EXPECT_EQ(arch::totalDevices(b.library), expected.devices);
  EXPECT_EQ(b.graph->totalEdgeCount(), expected.edges);
  EXPECT_TRUE(b.graph->isAcyclic());
  EXPECT_EQ(b.name, toString(expected.id));
}

INSTANTIATE_TEST_SUITE_P(
    TableII, BenchmarkSizeTest,
    ::testing::Values(BenchmarkSizes{BenchmarkId::Pcr, 7, 5, 15},
                      BenchmarkSizes{BenchmarkId::Ivd, 12, 9, 24},
                      BenchmarkSizes{BenchmarkId::ProteinSplit, 14, 11, 27},
                      BenchmarkSizes{BenchmarkId::KinaseAct1, 4, 9, 16},
                      BenchmarkSizes{BenchmarkId::KinaseAct2, 12, 9, 48},
                      BenchmarkSizes{BenchmarkId::Synthetic1, 10, 12, 15},
                      BenchmarkSizes{BenchmarkId::Synthetic2, 15, 13, 24},
                      BenchmarkSizes{BenchmarkId::Synthetic3, 20, 18, 28}),
    [](const ::testing::TestParamInfo<BenchmarkSizes>& info) {
      std::string name = toString(info.param.id);
      for (char& c : name)
        if (c == ' ' || c == '-') c = '_';
      return name;
    });

TEST(Benchmarks, LibraryCoversEveryOpKind) {
  for (BenchmarkId id : allBenchmarks()) {
    const Benchmark b = makeBenchmark(id);
    for (const Operation& op : b.graph->ops()) {
      const arch::DeviceKind needed = requiredDevice(op.kind);
      bool covered = false;
      for (const arch::DeviceSpec& spec : b.library)
        if (spec.kind == needed && spec.count > 0) covered = true;
      EXPECT_TRUE(covered) << b.name << " op " << op.id;
    }
  }
}

TEST(Benchmarks, MotivatingChipMatchesPaperStructure) {
  const auto chip = makeMotivatingChip();
  EXPECT_EQ(chip->devices().size(), 5u);
  EXPECT_EQ(chip->flowPorts().size(), 4u);
  EXPECT_EQ(chip->wastePorts().size(), 4u);
  EXPECT_EQ(chip->devicesOfKind(arch::DeviceKind::Detector).size(), 2u);
  EXPECT_EQ(chip->devicesOfKind(arch::DeviceKind::Mixer).size(), 1u);
  EXPECT_EQ(chip->devicesOfKind(arch::DeviceKind::Heater).size(), 1u);
  EXPECT_EQ(chip->devicesOfKind(arch::DeviceKind::Filter).size(), 1u);
}

TEST(Benchmarks, PcrHasWasteProducingFilter) {
  const Benchmark b = makeBenchmark(BenchmarkId::Pcr);
  bool any = false;
  for (const Operation& op : b.graph->ops())
    if (op.produces_waste) {
      any = true;
      EXPECT_EQ(op.kind, OpKind::Filter);
    }
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace pdw::assay

// Gantt rendering and the extended metrics (buffer volume, concurrency).
#include <gtest/gtest.h>

#include "sim/gantt.h"
#include "sim/metrics.h"

namespace pdw::sim {
namespace {

using arch::Cell;

class GanttFixture : public ::testing::Test {
 protected:
  GanttFixture() : chip_(7, 3, 3.0), graph_("gantt") {
    chip_.addFlowPort({0, 1}, "in");
    mixer_ = chip_.addDevice(arch::DeviceKind::Mixer, {3, 1}, "mixer");
    chip_.addWastePort({6, 1}, "out");
    r_ = graph_.fluids().addReagent("r");
    op_ = graph_.addOperation(assay::OpKind::Mix, 3.0, {r_}, "mix");
  }

  arch::FlowPath corridor() {
    return arch::FlowPath(
        {{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 1}});
  }

  assay::AssaySchedule makeSchedule() {
    assay::AssaySchedule s(&graph_, &chip_);
    assay::FluidTask t;
    t.kind = assay::TaskKind::Transport;
    t.fluid = r_;
    t.consumer = op_;
    t.path = corridor();
    t.start = 0;
    t.end = 2;
    s.addTask(t);
    s.addOpSchedule({op_, mixer_, 2.0, 5.0});
    return s;
  }

  arch::ChipLayout chip_;
  assay::SequencingGraph graph_;
  arch::DeviceId mixer_ = -1;
  assay::FluidId r_ = -1;
  assay::OpId op_ = -1;
};

TEST_F(GanttFixture, RendersOpsAndTasks) {
  const std::string chart = renderGantt(makeSchedule());
  EXPECT_NE(chart.find("mix"), std::string::npos);
  EXPECT_NE(chart.find("mixer"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);   // op bar
  EXPECT_NE(chart.find('='), std::string::npos);   // transport bar
  EXPECT_NE(chart.find("transport"), std::string::npos);
}

TEST_F(GanttFixture, EmptyScheduleHandled) {
  assay::AssaySchedule s(&graph_, &chip_);
  EXPECT_EQ(renderGantt(s), "(empty schedule)\n");
}

TEST_F(GanttFixture, ScalesDownLongSchedules) {
  auto s = makeSchedule();
  assay::FluidTask late;
  late.kind = assay::TaskKind::Transport;
  late.fluid = r_;
  late.path = corridor();
  late.start = 990;
  late.end = 1000;
  s.addTask(late);
  GanttOptions options;
  options.max_width = 50;
  const std::string chart = renderGantt(s, options);
  // No rendered line may exceed label + width + slack.
  std::istringstream stream(chart);
  std::string line;
  while (std::getline(stream, line)) EXPECT_LE(line.size(), 90u);
}

TEST_F(GanttFixture, HidesTasksOnRequest) {
  GanttOptions options;
  options.show_tasks = false;
  const std::string chart = renderGantt(makeSchedule(), options);
  // No task row (the legend still mentions "= transport" textually).
  EXPECT_EQ(chart.find("transport  #"), std::string::npos);
  EXPECT_NE(chart.find("mix"), std::string::npos);
}

TEST_F(GanttFixture, IntegratedRemovalsHiddenFromGantt) {
  auto s = makeSchedule();
  assay::FluidTask integrated;
  integrated.kind = assay::TaskKind::ExcessRemoval;
  integrated.fluid = r_;
  integrated.path = corridor();
  integrated.start = 1;
  integrated.end = 1;  // zero duration
  s.addTask(integrated);
  const std::string chart = renderGantt(s);
  EXPECT_EQ(chart.find("excess-removal"), std::string::npos);
}

TEST_F(GanttFixture, ConcurrencyMetric) {
  auto base = makeSchedule();
  auto washed = makeSchedule();
  // Wash [2, 4): fully inside the op interval [2, 5) -> 100 % concurrent.
  assay::FluidTask wash;
  wash.kind = assay::TaskKind::Wash;
  wash.fluid = graph_.fluids().buffer();
  wash.path = corridor();
  wash.start = 2;
  wash.end = 4;
  washed.addTask(wash);
  const WashMetrics m = computeMetrics(washed, base);
  EXPECT_NEAR(m.wash_concurrency, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.buffer_cell_volumes, 7.0);  // 7 path cells

  // Wash [6, 8): nothing else runs -> 0 % concurrent.
  auto washed2 = makeSchedule();
  wash.start = 6;
  wash.end = 8;
  washed2.addTask(wash);
  const WashMetrics m2 = computeMetrics(washed2, base);
  EXPECT_NEAR(m2.wash_concurrency, 0.0, 1e-9);

  // Wash [4, 6): half inside the op interval -> 50 %.
  auto washed3 = makeSchedule();
  wash.start = 4;
  wash.end = 6;
  washed3.addTask(wash);
  const WashMetrics m3 = computeMetrics(washed3, base);
  EXPECT_NEAR(m3.wash_concurrency, 0.5, 1e-9);
}

TEST_F(GanttFixture, ConcurrencyNotDoubleCountedOnOverlaps) {
  auto base = makeSchedule();
  auto washed = makeSchedule();
  // Two busy intervals covering the same span must not yield > 100 %.
  assay::FluidTask extra;
  extra.kind = assay::TaskKind::Transport;
  extra.fluid = r_;
  extra.path = arch::FlowPath({{0, 1}, {1, 1}});
  extra.start = 2;
  extra.end = 5;
  washed.addTask(extra);
  assay::FluidTask wash;
  wash.kind = assay::TaskKind::Wash;
  wash.fluid = graph_.fluids().buffer();
  wash.path = corridor();
  wash.start = 2;
  wash.end = 4;
  washed.addTask(wash);
  const WashMetrics m = computeMetrics(washed, base);
  EXPECT_LE(m.wash_concurrency, 1.0 + 1e-9);
}

}  // namespace
}  // namespace pdw::sim

// LpBackend warm-path tests, parameterized over both registered engines
// ("dense" tableau and "revised" sparse simplex): the dual-simplex re-solve
// must be exact — same status and objective as a cold solve — across
// randomly perturbed bound vectors, and the MIP-level warm/rc-fixing knobs
// must be pure speed knobs (identical solutions either way).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ilp/dual_simplex.h"
#include "ilp/lp_backend.h"
#include "ilp/solver.h"
#include "util/rng.h"

namespace pdw::ilp {
namespace {

class DualSimplexEngine : public ::testing::TestWithParam<const char*> {
 protected:
  SolveParams quickParams() const {
    SolveParams p;
    p.engine = GetParam();
    p.time_limit_seconds = 10.0;
    return p;
  }
};

/// Random bounded LP: n variables in [0, u_j], dense-ish random rows. The
/// generosity of the rhs keeps most instances feasible, but infeasible draws
/// are fine — warm and cold must agree on those too.
Model makeRandomLp(util::Rng& rng, int n, int rows) {
  Model m;
  std::vector<VarId> xs;
  LinExpr objective;
  for (int j = 0; j < n; ++j) {
    xs.push_back(m.addContinuous(0.0, static_cast<double>(rng.intIn(5, 15))));
    objective += static_cast<double>(rng.intIn(-5, 5)) * LinExpr(xs.back());
  }
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    int terms = 0;
    for (int j = 0; j < n; ++j) {
      if (!rng.chance(0.6)) continue;
      e += static_cast<double>(rng.intIn(-3, 5)) * LinExpr(xs[static_cast<std::size_t>(j)]);
      ++terms;
    }
    if (terms == 0) e += LinExpr(xs[rng.index(xs.size())]);
    const double rhs = static_cast<double>(rng.intIn(-5, 8 * n));
    switch (rng.intIn(0, 2)) {
      case 0: m.addLessEqual(e, rhs); break;
      case 1: m.addGreaterEqual(e, -rhs); break;
      default: m.addLessEqual(e, rhs + 10.0); break;
    }
  }
  m.setObjective(objective);
  return m;
}

TEST_P(DualSimplexEngine, WarmMatchesColdAcrossPerturbedBounds) {
  // ~100 perturbed-bound re-solves across several random instances: the
  // warm dual path must report exactly the cold status, and the cold
  // objective when Optimal. Perturbations tighten AND loosen (loosening
  // exercises the resurrected-column repair in warmSolve).
  util::Rng rng(20240807);
  const SolveParams params = quickParams();
  int warm_used_total = 0;
  for (int inst = 0; inst < 5; ++inst) {
    const Model m = makeRandomLp(rng, 8, 6);
    const std::unique_ptr<LpBackend> warm_engine =
        makeLpBackend(GetParam(), m, params);
    const std::unique_ptr<LpBackend> cold_engine =
        makeLpBackend(GetParam(), m, params);

    std::vector<double> base_lower, base_upper;
    for (int j = 0; j < m.numVars(); ++j) {
      base_lower.push_back(m.var(j).lower);
      base_upper.push_back(m.var(j).upper);
    }
    warm_engine->coldSolve(base_lower, base_upper);

    for (int iter = 0; iter < 20; ++iter) {
      std::vector<double> lower = base_lower;
      std::vector<double> upper = base_upper;
      for (int j = 0; j < m.numVars(); ++j) {
        if (!rng.chance(0.4)) continue;
        const int hi = static_cast<int>(base_upper[static_cast<std::size_t>(j)]);
        const int a = rng.intIn(0, hi);
        const int b = rng.intIn(0, hi);
        lower[static_cast<std::size_t>(j)] = std::min(a, b);
        upper[static_cast<std::size_t>(j)] = std::max(a, b);
      }
      bool used_warm = false;
      const LpResult warm = warm_engine->solve(
          lower, upper, /*allow_warm=*/true, &used_warm);
      const LpResult cold = cold_engine->coldSolve(lower, upper);
      ASSERT_EQ(warm.status, cold.status)
          << "instance " << inst << " iteration " << iter;
      if (cold.status == LpStatus::Optimal) {
        EXPECT_NEAR(warm.objective, cold.objective, 1e-6)
            << "instance " << inst << " iteration " << iter;
      }
      warm_used_total += used_warm ? 1 : 0;
    }
  }
  // The warm path must actually carry most of the load, not silently fall
  // back cold on every perturbation. (Not all 100: infeasible boxes are
  // always cold-confirmed, and stalls legitimately fall back.)
  EXPECT_GT(warm_used_total, 40);
}

TEST(DenseWarmPath, TableauStaysConsistentAcrossWarmSolves) {
  // Regression guard for the near-kEps dual-pivot corruption: long chains
  // of warm bound deltas (including branch-style pin/flip patterns) must
  // keep the dense tableau an exact representation of the loaded rows.
  // Pivoting on a ~1e-9 ratio-test element used to amplify rounding noise
  // into a persistently corrupt warm state (see kDualPivotTol).
  util::Rng rng(99);
  SolveParams params;
  params.time_limit_seconds = 10.0;
  for (int inst = 0; inst < 3; ++inst) {
    const Model m = makeRandomLp(rng, 10, 8);
    SimplexEngine engine(m, params);
    std::vector<double> lower, upper, base_upper;
    for (int j = 0; j < m.numVars(); ++j) {
      lower.push_back(m.var(j).lower);
      base_upper.push_back(m.var(j).upper);
    }
    upper = base_upper;
    engine.coldSolve(lower, upper);
    for (int iter = 0; iter < 40; ++iter) {
      // Branch-style moves: pin a variable to one of its bounds, or release
      // a previous pin, a few variables at a time.
      for (int k = 0; k < 3; ++k) {
        const int j = rng.intIn(0, m.numVars() - 1);
        switch (rng.intIn(0, 2)) {
          case 0:
            lower[static_cast<std::size_t>(j)] =
                upper[static_cast<std::size_t>(j)];
            break;
          case 1:
            upper[static_cast<std::size_t>(j)] =
                lower[static_cast<std::size_t>(j)];
            break;
          default:
            lower[static_cast<std::size_t>(j)] = 0.0;
            upper[static_cast<std::size_t>(j)] =
                base_upper[static_cast<std::size_t>(j)];
            break;
        }
      }
      engine.solve(lower, upper, /*allow_warm=*/true);
      ASSERT_LT(engine.debugMaxRowResidual(), 1e-6)
          << "instance " << inst << " iteration " << iter;
    }
  }
}

/// Small MIP with enough branching to produce non-root node LPs.
Model makeBranchyMip(util::Rng& rng, int n) {
  Model m;
  std::vector<VarId> xs;
  LinExpr objective, capacity;
  for (int j = 0; j < n; ++j) {
    xs.push_back(m.addInteger(0, 3));
    objective += -static_cast<double>(rng.intIn(1, 9)) * LinExpr(xs.back());
    capacity += static_cast<double>(rng.intIn(1, 7)) * LinExpr(xs.back());
  }
  m.addLessEqual(capacity, 5.0 * n / 2.0);
  for (int i = 0; i + 1 < n; i += 2)
    m.addLessEqual(LinExpr(xs[static_cast<std::size_t>(i)]) +
                       LinExpr(xs[static_cast<std::size_t>(i + 1)]),
                   4);
  m.setObjective(objective);
  return m;
}

TEST_P(DualSimplexEngine, MipWarmLpOnOffSameObjective) {
  util::Rng rng(11);
  for (int inst = 0; inst < 10; ++inst) {
    const Model m = makeBranchyMip(rng, 8);
    SolveParams warm = quickParams();
    warm.warm_lp = true;
    SolveParams cold = quickParams();
    cold.warm_lp = false;
    const Solution a = solve(m, warm);
    const Solution b = solve(m, cold);
    ASSERT_EQ(a.status, b.status) << "instance " << inst;
    ASSERT_TRUE(a.hasSolution());
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "instance " << inst;
    EXPECT_EQ(b.stats.warm_hits, 0);
  }
}

TEST_P(DualSimplexEngine, MipRcFixingOnOffSameObjective) {
  util::Rng rng(12);
  for (int inst = 0; inst < 10; ++inst) {
    const Model m = makeBranchyMip(rng, 8);
    SolveParams with_rc = quickParams();
    with_rc.rc_fixing = true;
    SolveParams without_rc = quickParams();
    without_rc.rc_fixing = false;
    const Solution a = solve(m, with_rc);
    const Solution b = solve(m, without_rc);
    ASSERT_EQ(a.status, b.status) << "instance " << inst;
    ASSERT_TRUE(a.hasSolution());
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "instance " << inst;
    EXPECT_EQ(b.stats.rc_fixed, 0);
  }
}

TEST_P(DualSimplexEngine, MipStatsAccountWarmHits) {
  util::Rng rng(13);
  const Model m = makeBranchyMip(rng, 10);
  const Solution s = solve(m, quickParams());
  ASSERT_TRUE(s.hasSolution());
  // Hits and misses partition the non-root node LPs, and the hit rate on a
  // plain branchy MIP must be high — children differ from their parent by a
  // single bound.
  EXPECT_GT(s.stats.lp_solves, 1);
  EXPECT_LE(s.stats.warm_hits + s.stats.warm_misses, s.stats.lp_solves);
  EXPECT_GT(s.stats.warm_hits, 0);
  EXPECT_GE(s.stats.warm_hits,
            4 * (s.stats.warm_hits + s.stats.warm_misses) / 5);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, DualSimplexEngine,
                         ::testing::Values("dense", "revised"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace pdw::ilp

file(REMOVE_RECURSE
  "CMakeFiles/ivd_diagnostics.dir/ivd_diagnostics.cpp.o"
  "CMakeFiles/ivd_diagnostics.dir/ivd_diagnostics.cpp.o.d"
  "ivd_diagnostics"
  "ivd_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivd_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ivd_diagnostics.
# This may be replaced when dependencies are built.

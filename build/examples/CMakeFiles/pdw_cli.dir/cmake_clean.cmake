file(REMOVE_RECURSE
  "CMakeFiles/pdw_cli.dir/pdw_cli.cpp.o"
  "CMakeFiles/pdw_cli.dir/pdw_cli.cpp.o.d"
  "pdw_cli"
  "pdw_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pdw_cli.
# This may be replaced when dependencies are built.

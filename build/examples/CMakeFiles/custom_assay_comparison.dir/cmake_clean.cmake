file(REMOVE_RECURSE
  "CMakeFiles/custom_assay_comparison.dir/custom_assay_comparison.cpp.o"
  "CMakeFiles/custom_assay_comparison.dir/custom_assay_comparison.cpp.o.d"
  "custom_assay_comparison"
  "custom_assay_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_assay_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
